package sortnets

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"sortnets/internal/network"
	"sortnets/internal/streamtab"
	"sortnets/internal/verify"
)

// genTables writes tables for the properties this test suite touches
// and returns an open Dir over them.
func genTables(t *testing.T) *streamtab.Dir {
	t.Helper()
	dir := t.TempDir()
	for _, spec := range []struct {
		h  streamtab.Header
		it VecIterator
	}{
		{streamtab.Header{Property: "sorter", N: 8}, verify.Sorter{N: 8}.BinaryTests()},
		{streamtab.Header{Property: "sorter", N: 6}, verify.Sorter{N: 6}.BinaryTests()},
		{streamtab.Header{Property: "selector", N: 8, K: 3}, verify.Selector{N: 8, K: 3}.BinaryTests()},
		{streamtab.Header{Property: "merger", N: 8}, verify.Merger{N: 8}.BinaryTests()},
	} {
		if _, err := streamtab.Write(dir, spec.h, spec.it); err != nil {
			t.Fatalf("write table %+v: %v", spec.h, err)
		}
	}
	d := streamtab.OpenDir(dir)
	t.Cleanup(func() { d.Close() })
	return d
}

// TestStreamTablesVerdictsIdentical runs the same request mix through
// a plain Session and a table-backed Session: every verdict must be
// deeply identical (tables carry exactly the live stream in exactly
// stream order), including for properties with NO table on disk
// (transparent fallback) and for the fault paths that replay the
// stream per fault.
func TestStreamTablesVerdictsIdentical(t *testing.T) {
	tables := genTables(t)
	plain := NewSession()
	defer plain.Close()
	tabbed := NewSession(WithStreamTables(tables))
	defer tabbed.Close()

	rng := rand.New(rand.NewSource(7))
	ctx := context.Background()

	var reqs []Request
	for i := 0; i < 12; i++ {
		reqs = append(reqs, Request{Network: network.Random(8, 14+i%8, rng).Format()})
	}
	reqs = append(reqs,
		Request{Network: network.Random(8, 16, rng).Format(), Property: "selector", K: 3},
		Request{Network: network.Random(8, 16, rng).Format(), Property: "merger"},
		// n=10 has no table: must fall back to live enumeration.
		Request{Network: network.Random(10, 20, rng).Format()},
		// Known-good sorter so at least one verdict holds.
		Request{Network: "n=4: [1,2][3,4][1,3][2,4][2,3]"},
		Request{Op: OpFaults, Network: network.Random(6, 10, rng).Format()},
		Request{Op: OpMinset, Network: network.Random(6, 10, rng).Format()},
		Request{Op: OpFaults, Network: network.Random(8, 12, rng).Format(), Property: "selector", K: 3, Mode: "by-golden"},
	)

	for i, req := range reqs {
		want, werr := plain.Do(ctx, req)
		got, gerr := tabbed.Do(ctx, req)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("request %d: errors diverge: plain %v, tabbed %v", i, werr, gerr)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("request %d: verdicts diverge\nplain:  %+v\ntabbed: %+v", i, want, got)
		}
	}
}

// TestStreamTablesBatchIdentical drives the grouped batch engine pass
// through tables and compares against the plain grouped pass.
func TestStreamTablesBatchIdentical(t *testing.T) {
	tables := genTables(t)
	plain := NewSession()
	defer plain.Close()
	tabbed := NewSession(WithStreamTables(tables))
	defer tabbed.Close()

	rng := rand.New(rand.NewSource(11))
	reqs := make([]Request, 96)
	for i := range reqs {
		reqs[i] = Request{Network: network.Random(8, 12+i%10, rng).Format()}
	}
	want, werr := plain.DoBatch(context.Background(), reqs)
	got, gerr := tabbed.DoBatch(context.Background(), reqs)
	if werr != nil || gerr != nil {
		t.Fatalf("batch errors: plain %v, tabbed %v", werr, gerr)
	}
	if len(want) != len(got) {
		t.Fatalf("batch sizes diverge: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("batch entry %d diverges\nplain:  %+v\ntabbed: %+v", i, want[i], got[i])
		}
	}
}
