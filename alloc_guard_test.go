package sortnets

import (
	"context"
	"math/rand"
	"testing"

	"sortnets/internal/network"
)

// TestDoBatchCacheHitAllocs guards the Session's batched cache-hit
// path: once every verdict in a batch is cached, DoBatch must cost a
// small constant number of allocations per request (key building,
// entry bookkeeping) — not a parse, compile or encode per entry. The
// bound is ~4x the measured value (≈2.2/request on go1.24), loose
// enough for scheduler noise, tight enough to catch a regression to
// per-request resolution.
func TestDoBatchCacheHitAllocs(t *testing.T) {
	sess := NewSession(WithWorkers(1))
	defer sess.Close()

	const batch = 64
	rng := rand.New(rand.NewSource(5))
	reqs := make([]Request, batch)
	for i := range reqs {
		reqs[i] = Request{Network: network.Random(8, 15+i%6, rng).Format()}
	}
	ctx := context.Background()
	// Warm: every verdict and resolution enters its cache.
	if _, err := sess.DoBatch(ctx, reqs); err != nil {
		t.Fatalf("warm batch: %v", err)
	}

	perBatch := testing.AllocsPerRun(100, func() {
		if _, err := sess.DoBatch(ctx, reqs); err != nil {
			t.Fatalf("hit batch: %v", err)
		}
	})
	perReq := perBatch / batch
	t.Logf("cache-hit DoBatch: %.1f allocs per %d-request batch, %.2f per request", perBatch, batch, perReq)
	if perReq > 8 {
		t.Fatalf("cache-hit DoBatch allocates %.2f per request (%.1f per batch); the batched hit path has regressed", perReq, perBatch)
	}
}
