// Merge-unit audit: a database sort accelerator contains an
// (n/2,n/2) merge stage. Theorem 2.5 certifies merge units with just
// n²/4 binary tests — or n/2 permutation tests, LINEAR in the width —
// against the 2ⁿ of a naive sweep. This example audits Batcher's
// odd-even merger, then mutates it comparator by comparator to show
// the tiny test set still catches every real defect.
//
// Run with: go run ./examples/mergeraudit
package main

import (
	"fmt"

	"sortnets"
	"sortnets/internal/core"
	"sortnets/internal/network"
	"sortnets/internal/verify"
)

func main() {
	const n = 16
	merger := sortnets.BatcherMerger(n)
	prop := verify.Merger{N: n}

	fmt.Printf("Merge unit: Batcher odd-even (%d,%d)-merger, %d comparators, depth %d.\n",
		n/2, n/2, merger.Size(), merger.Depth())
	fmt.Printf("Certification cost (Theorem 2.5): %s binary tests or %d permutation tests\n",
		sortnets.MergerTestSetSize(n), len(sortnets.MergerPermTests(n)))
	fmt.Printf("(a naive sweep would use %d inputs)\n\n", 1<<n)

	fmt.Printf("binary audit:      %s\n", sortnets.CheckMerger(merger))
	fmt.Printf("permutation audit: %s\n", sortnets.CheckPerms(merger, prop))

	// Mutation audit: delete each comparator in turn. Redundant
	// comparators exist in no optimal merger, so every deletion must
	// be caught by the n²/4-test program.
	fmt.Printf("\nmutation audit (%d single-comparator deletions):\n", merger.Size())
	caught, benign := 0, 0
	for i := 0; i < merger.Size(); i++ {
		mutant := network.New(n)
		for j, c := range merger.Comps {
			if j != i {
				mutant.AddPair(c.A, c.B)
			}
		}
		r := sortnets.CheckMerger(mutant)
		switch {
		case !r.Holds:
			caught++
		case core.IsMergerBinary(mutant):
			benign++ // genuinely redundant comparator
		default:
			panic(fmt.Sprintf("mutant %d broken but undetected: impossible by Theorem 2.5", i))
		}
	}
	fmt.Printf("  %d mutants caught, %d benign (redundant comparator)\n", caught, benign)

	// Scale table: the linear permutation bill.
	fmt.Println("\ncertification bill by merge width:")
	fmt.Printf("%-8s %-16s %-16s %s\n", "n", "binary n^2/4", "perm n/2", "naive 2^n")
	for _, width := range []int{8, 16, 32, 64} {
		fmt.Printf("%-8d %-16s %-16d %s\n", width,
			sortnets.MergerTestSetSize(width), width/2, pow2str(width))
	}
}

func pow2str(n int) string {
	if n < 63 {
		return fmt.Sprint(int64(1) << uint(n))
	}
	return fmt.Sprintf("2^%d", n)
}
