// VLSI burn-in scenario: a batch of sorting-network chips comes off
// the line; some have manufacturing defects. The paper's motivation
// ("testing VLSI circuits for possible hardware failures") becomes a
// test program: apply the minimal test set to every chip and bin the
// defective ones, then measure single-fault coverage.
//
// Run with: go run ./examples/vlsitest
package main

import (
	"fmt"
	"math/rand"

	"sortnets"
	"sortnets/internal/bitvec"
	"sortnets/internal/core"
	"sortnets/internal/eval"
	"sortnets/internal/faults"
	"sortnets/internal/gen"
)

func main() {
	const n = 6
	golden := gen.Sorter(n) // the chip's intended design

	fmt.Printf("Design under test: optimal %d-line sorter, %d comparators.\n", n, golden.Size())
	fmt.Printf("Test program: the %s-vector minimal test set of Theorem 2.2.\n\n",
		sortnets.SorterTestSetSize(n))

	// Simulate a production batch: most chips are good; some carry a
	// random single fault.
	rng := rand.New(rand.NewSource(7))
	universe := faults.Enumerate(golden)
	type chip struct {
		id    int
		fault faults.Fault // nil = good die
	}
	var batch []chip
	for i := 0; i < 20; i++ {
		c := chip{id: i}
		if rng.Intn(3) == 0 {
			c.fault = universe[rng.Intn(len(universe))]
		}
		batch = append(batch, c)
	}

	// Burn-in: run the minimal test set against each chip. Each die —
	// healthy or faulty — compiles once to an eval.Program and streams
	// the tests through the 64-lane engine.
	tests := func() bitvec.Iterator { return core.SorterBinaryTests(n) }
	goldenProg := eval.Compile(golden)
	pass, fail := 0, 0
	for _, c := range batch {
		prog := goldenProg
		if c.fault != nil {
			prog = faults.Compile(golden, c.fault)
		}
		verdict := eval.New(prog, 1).Run(tests(), eval.SortedJudge())
		defective := !verdict.Holds
		if defective {
			fmt.Printf("chip %2d: REJECT  (test %s -> %s", c.id, verdict.In, verdict.Out)
			fmt.Printf(", fault: %s)\n", c.fault.Describe())
		}
		if defective {
			fail++
		} else {
			label := "good die"
			if c.fault != nil {
				label = "fault latent: " + c.fault.Describe()
			}
			fmt.Printf("chip %2d: PASS    (%s)\n", c.id, label)
			pass++
		}
	}
	fmt.Printf("\nbinned: %d pass, %d reject\n\n", pass, fail)

	// Coverage report over the whole single-fault universe.
	rep := faults.Measure(golden, universe, tests, faults.ByProperty)
	fmt.Printf("single-fault coverage of the minimal test set: %s\n", rep)
	aug := faults.Measure(golden, universe,
		func() bitvec.Iterator { return bitvec.All(n) }, faults.ByProperty)
	fmt.Printf("with the n+1 sorted vectors added:              %s\n", aug)
	fmt.Println("\nFaults that survive the minimal set are visible only on sorted inputs")
	fmt.Println("(outside the theorem's scope); appending the n+1 sorted vectors closes the gap.")
}
