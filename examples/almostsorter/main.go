// Adversarial lower bound, live: pick any non-sorted string σ and
// watch Lemma 2.1 build a network that fools every test except σ
// itself — the construction that makes the paper's bounds exact
// rather than merely asymptotic.
//
// Run with: go run ./examples/almostsorter
package main

import (
	"fmt"

	"sortnets"
	"sortnets/internal/bitvec"
	"sortnets/internal/core"
)

func main() {
	// Walk the induction: base case, case C, case A/B, mirrored.
	for _, s := range []string{"10", "100", "0110", "10101", "110100"} {
		sigma := sortnets.MustVec(s)
		h := sortnets.MustAlmostSorter(sigma)
		fmt.Printf("σ = %-8s case %-8s |H_σ| = %-3d depth %d\n",
			sigma, core.ClassifyAlmostSorter(sigma), h.Size(), h.Depth())
	}

	// Deep dive on one adversary.
	sigma := sortnets.MustVec("110100")
	h := sortnets.MustAlmostSorter(sigma)
	fmt.Printf("\nH_σ for σ = %s:\n%s\n", sigma, h.Diagram())

	// Its output on σ is one interchange away from sorted — the
	// subtlest possible failure.
	out := h.ApplyVec(sigma)
	fmt.Printf("H_σ(σ) = %s  (needs exactly one more exchange)\n\n", out)

	// Sweep the whole universe: exactly one failure.
	failures := 0
	it := bitvec.All(sigma.N)
	for {
		v, ok := it.Next()
		if !ok {
			break
		}
		if !h.ApplyVec(v).IsSorted() {
			failures++
			fmt.Printf("the only input H_σ mishandles: %s\n", v)
		}
	}
	fmt.Printf("failures over all %d inputs: %d\n\n", bitvec.Universe(sigma.N), failures)

	// Consequence: a test set that omits σ certifies this non-sorter.
	fmt.Println("run the minimal test set WITHOUT σ:")
	passedAll := true
	tests := core.SorterBinaryTests(sigma.N)
	for {
		v, ok := tests.Next()
		if !ok {
			break
		}
		if v == sigma {
			continue // the dropped test
		}
		if !h.ApplyVec(v).IsSorted() {
			passedAll = false
		}
	}
	fmt.Printf("  adversary passes every remaining test: %v\n", passedAll)
	fmt.Println("  → every non-sorted string is irreplaceable; the bound 2ⁿ−n−1 is exact.")
}
