// The paper's closing open problem, explored live: Section 3 asks for
// exact test-set bounds for height-k networks ("It would be
// interesting to obtain exact bounds on the number of tests required
// to test if a height-2 network is a sorter"). This example exhausts
// the behaviour space of height-restricted networks and solves the
// minimum hitting set exactly, for both input models.
//
// Run with: go run ./examples/openproblem
package main

import (
	"fmt"

	"sortnets"
	"sortnets/internal/search"
)

func main() {
	fmt.Println("Section 3's open problem: minimal test sets for height-k networks")
	fmt.Println()

	// Binary inputs: the full ladder height 1..n-1 for small n.
	fmt.Printf("%-4s %-7s %-12s %-11s %-10s\n", "n", "height", "behaviours", "min tests", "2^n-n-1")
	for n := 3; n <= 5; n++ {
		for h := 1; h < n; h++ {
			r, err := sortnets.ExactMinimumTestSet(n, h)
			if err != nil {
				fmt.Printf("%-4d %-7d (search infeasible: %v)\n", n, h, err)
				continue
			}
			full := (1 << uint(n)) - n - 1
			fmt.Printf("%-4d %-7d %-12d %-11d %-10d\n", n, h, r.Behaviors, r.Size, full)
		}
	}
	fmt.Println()
	fmt.Println("Reading the table: height 1 needs only n-1 tests (de Bruijn's class),")
	fmt.Println("but already at height 2 the FULL unrestricted bound 2^n-n-1 is forced.")
	fmt.Println()

	// Permutation inputs: the same cliff.
	fmt.Printf("%-4s %-7s %-16s %-18s\n", "n", "height", "min perm tests", "C(n,n/2)-1")
	paper := map[int]int{3: 2, 4: 5, 5: 9}
	for n := 3; n <= 5; n++ {
		for _, h := range []int{1, 2} {
			r, err := sortnets.ExactMinimumPermTestSet(n, h)
			if err != nil {
				fmt.Printf("%-4d %-7d (search infeasible: %v)\n", n, h, err)
				continue
			}
			fmt.Printf("%-4d %-7d %-16d %-18d\n", n, h, r.Size, paper[n])
		}
	}
	fmt.Println()
	fmt.Println("Height 1 needs exactly ONE permutation (the reverse, as de Bruijn proved);")
	fmt.Println("height 2 already needs the full C(n,floor(n/2))-1 of Theorem 2.2(ii).")
	fmt.Println()

	// Show a witness: the minimal test set for height-1, n=5, and why
	// it is the cover of the reverse permutation.
	r, err := sortnets.ExactMinimumTestSet(5, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("height-1, n=5 minimal binary tests: ")
	for i, v := range r.Tests {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(v)
	}
	fmt.Println("  — precisely the non-trivial covers of (5 4 3 2 1).")

	// And the merger/selector properties through the same lens.
	rm, err := search.MinimumPermTestSet(4, 3, search.PermMergerAccepts, 0, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nmerger n=4, permutation inputs: exact minimum %d (= n/2, Theorem 2.5(ii));\n", rm.Size)
	fmt.Printf("witness tests: %v\n", rm.Tests)
}
