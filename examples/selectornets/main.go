// Top-k selection hardware: a router ASIC must expose the k smallest
// of n priority tags on its first k output lanes — a (k,n)-selector.
// Theorem 2.4 says certifying that costs Σᵢ₌₀..k C(n,i) − k − 1 tests,
// polynomial for fixed k, instead of 2ⁿ: this example certifies
// selection datapaths and demonstrates the cost cliff as k grows.
//
// Run with: go run ./examples/selectornets
package main

import (
	"fmt"

	"sortnets"
	"sortnets/internal/verify"
)

func main() {
	const n = 16

	fmt.Printf("Certifying (k,%d)-selector datapaths (Theorem 2.4):\n\n", n)
	fmt.Printf("%-4s %-22s %-22s %s\n", "k", "selector tests", "full sorter tests", "saving")
	for _, k := range []int{1, 2, 3, 4} {
		sel := sortnets.SelectorTestSetSize(n, k)
		full := sortnets.SorterTestSetSize(n)
		fmt.Printf("%-4d %-22s %-22s 2^n-style sweep avoided\n", k, sel, full)
	}
	fmt.Println()

	// Certify a correct selection datapath for k = 3.
	const k = 3
	good := sortnets.SelectionNetwork(n, k)
	res := sortnets.CheckSelector(good, k)
	fmt.Printf("selection datapath (%d comparators): %s\n", good.Size(), res)

	// A subtle bug: the designer budgeted only k−1 selection passes.
	buggy := sortnets.SelectionNetwork(n, k-1)
	res = sortnets.CheckSelector(buggy, k)
	fmt.Printf("under-provisioned datapath:          %s\n", res)
	if res.Holds {
		panic("the test set must catch the missing pass")
	}

	// A sorter is always a selector — certification is compositional.
	sorter := sortnets.BatcherSorter(n)
	fmt.Printf("full Batcher sorter as selector:     %s\n", sortnets.CheckSelector(sorter, k))

	// Permutation tests shrink the bill further: C(n,k)−1 for k ≤ n/2.
	fmt.Printf("\npermutation tests for k=%d: %d permutations (binary: %s)\n",
		k, len(sortnets.SelectorPermTests(n, k)), sortnets.SelectorTestSetSize(n, k))

	// Cross-check the verdicts against exhaustive ground truth.
	gt := sortnets.GroundTruth(good, verify.Selector{N: n, K: k})
	fmt.Printf("ground truth agrees: %v (%d inputs swept)\n", gt.Holds, gt.TestsRun)
}
