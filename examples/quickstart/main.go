// Quickstart: verify a sorting network with the paper's minimal test
// set instead of all 2ⁿ inputs — and see why not one test can be
// dropped.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sortnets"
)

func main() {
	const n = 8

	// Build Batcher's odd-even mergesort network for 8 lines.
	w := sortnets.BatcherSorter(n)
	fmt.Printf("Batcher sorter, n=%d: %d comparators, depth %d\n", n, w.Size(), w.Depth())

	// Decide sorter-ness with the minimal test set: 2⁸−8−1 = 247
	// inputs instead of the 256 of the exhaustive sweep — and the
	// paper proves 247 is exactly optimal: no test set is smaller.
	res := sortnets.CheckSorter(w)
	fmt.Printf("minimal test set verdict: %s\n", res)
	fmt.Printf("exhaustive ground truth:  %s\n", sortnets.GroundTruth(w, sortnets.SorterProp{N: n}))

	// Permutation tests are cheaper still (Yao's observation):
	// C(8,4)−1 = 69 permutations suffice.
	perms := sortnets.SorterPermTests(n)
	fmt.Printf("permutation test set size: %d (binary: %s)\n",
		len(perms), sortnets.SorterTestSetSize(n))

	// Why can't we drop a test? For ANY non-sorted σ there is a
	// network sorting everything except σ (Lemma 2.1). Drop σ from
	// the test set and this adversary slips through.
	sigma := sortnets.MustVec("01101000")
	h, err := sortnets.AlmostSorter(sigma)
	if err != nil {
		log.Fatal(err)
	}
	r := sortnets.CheckSorter(h)
	fmt.Printf("\nadversary H_σ for σ=%s (%d comparators):\n", sigma, h.Size())
	fmt.Printf("  full test set verdict: %s\n", r)
	fmt.Printf("  → only σ itself exposes it; every other of the %s tests passes.\n",
		sortnets.SorterTestSetSize(n))

	// The exact sizes scale to any n without enumeration.
	for _, big := range []int{16, 32, 64} {
		fmt.Printf("n=%2d: binary tests %s, permutation tests %s\n",
			big, sortnets.SorterTestSetSize(big), sortnets.SorterPermTestSetSize(big))
	}
}
