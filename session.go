package sortnets

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"sortnets/internal/canon"
	"sortnets/internal/eval"
	"sortnets/internal/faults"
	"sortnets/internal/network"
	"sortnets/internal/streamtab"
	"sortnets/internal/verify"
)

// Session is the context-aware verdict engine of the package: a
// reusable handle owning a compiled-program cache (keyed on the
// canonical digest of internal/canon), a verdict cache, a coalescing
// worker pool, and default options. It unifies the three historical
// request surfaces — the facade's Check* functions, the
// program-reuse entry points, and sortnetd's HTTP bodies — behind
// one request model:
//
//	sess := sortnets.NewSession(sortnets.WithWorkers(0))
//	v, err := sess.Do(ctx, sortnets.Request{Network: "n=4: [1,2][3,4][1,3][2,4][2,3]"})
//
// plus typed conveniences (Check, CheckPerms, FaultCoverage, MinSet,
// Wide, …) for library callers holding real *Network values.
//
// Cancellation: every entry point takes a context.Context that is
// propagated into the engine loops, where it is checked once per
// 64-lane block — deadlines and client disconnects actually stop
// work, on the minimal-test, exhaustive-universe, wide, closure-BFS
// and hitting-set-solver paths alike.
//
// Caching: verdicts are cached by (operation, canonical digest,
// property, flags) and programs by digest, so repeated requests for
// structurally equivalent circuits — same circuit, parallel layers
// interleaved differently — share one compilation and one verdict.
// Everything that feeds the cache is deterministic (single-worker
// engines, stream-order counterexamples, deterministic greedy/solver
// tie-breaks), so cached, coalesced and recomputed verdicts can
// never disagree. Do's cache/coalescing pipeline is exactly the one
// sortnetd serves over HTTP: the semantics are identical in-process
// and over the wire.
//
// Worker semantics (the ONE rule, used by every option, flag and
// function in the repository): 0 or negative means AUTOMATIC — a
// plain worker pool uses all cores, the streaming engine stays
// sequential below its work threshold and uses all cores above it; 1
// pins strictly sequential, deterministic execution; k > 1 forces
// exactly k workers.
type Session struct {
	workers       int
	cacheSize     int
	maxLines      int
	maxFaultLines int
	faultMode     faults.DetectMode
	streamTag     string
	stream        func(Property) VecIterator
	tables        *streamtab.Dir
	computeHook   func()
	fill          func(ctx context.Context, req Request) (*Verdict, bool)

	results  *lru[any]           // verdict cache: key → *Verdict or typed result
	progs    *lru[*eval.Program] // digest → compiled healthy program
	resolved *lru[resolvedNet]   // network text → canonical form + digest

	poolOnce sync.Once
	pool     *pool

	uncached atomic.Int64 // unique-key source for uncacheable requests
	stats    sessionCounters
}

// Option configures a Session.
type Option func(*Session)

// WithWorkers sets the size of the Session's compute pool — how many
// verdicts may compute concurrently through Do (each on a
// deterministic single-worker engine). 0 or negative means automatic
// (all cores); 1 serializes; k > 1 forces exactly k. The typed
// conveniences compute on the caller's goroutine and are not bounded
// by the pool.
func WithWorkers(n int) Option { return func(s *Session) { s.workers = n } }

// WithCache sets the verdict-cache capacity in entries. 0 or
// negative disables verdict caching (request coalescing still
// applies); the default is 4096.
func WithCache(entries int) Option { return func(s *Session) { s.cacheSize = entries } }

// WithMaxLines caps the line count Do accepts for OpVerify requests
// (minimal sorter test sets grow like 2ⁿ). 0 or negative keeps the
// default of 20. The typed conveniences are a trusted library
// surface and are not capped.
func WithMaxLines(n int) Option { return func(s *Session) { s.maxLines = n } }

// WithMaxFaultLines caps the line count Do accepts for OpFaults and
// OpMinset requests (fault detectability sweeps the 2ⁿ universe per
// fault). 0 or negative keeps the default of 12.
func WithMaxFaultLines(n int) Option { return func(s *Session) { s.maxFaultLines = n } }

// WithFaultMode sets the default fault-detection mode used by
// FaultCoverage/MinSet and by Do requests that omit one. The default
// is ByProperty (the paper's observation model).
func WithFaultMode(m DetectMode) Option { return func(s *Session) { s.faultMode = m } }

// WithTestStream overrides the binary test stream the Session's
// verify paths run, replacing each property's minimal test set with
// factory(p). tag names the stream in cache keys, so verdicts under
// different streams never alias; an empty tag disables verdict
// caching for the overridden stream. Use it to score alternative
// test families (e.g. a fault-selected subset) on the same engines.
func WithTestStream(tag string, factory func(p Property) VecIterator) Option {
	return func(s *Session) {
		s.streamTag = tag
		s.stream = factory
	}
}

// WithStreamTables points the Session at a directory of persisted
// minimal-test-stream tables (package streamtab). When the property
// of a verify, faults or minset request has a table on disk, its
// pre-enumerated (mmap-backed) stream replaces live enumeration —
// same vectors, same order, so verdicts and cache keys are unchanged;
// properties without a table fall back transparently. An explicit
// WithTestStream override always wins over tables.
func WithStreamTables(d *streamtab.Dir) Option {
	return func(s *Session) { s.tables = d }
}

// WithComputeHook installs a function invoked on the pool worker
// immediately before each underlying Do computation — an
// instrumentation/test seam (hold it open to observe coalescing).
func WithComputeHook(fn func()) Option { return func(s *Session) { s.computeHook = fn } }

// WithPeerFill installs the cluster's cache-fill hook: on a verdict-
// cache miss for a wire Request, fill is consulted BEFORE computing
// locally. Returning (v, true) adopts v as the verdict — it is cached
// and replayed exactly as a computed one (verdicts are deterministic,
// so a peer's bytes and a local compute's bytes are the same bytes).
// Returning false falls through to the local compute.
//
// The hook runs inside the coalescing pool's registered call, so
// concurrent identical misses trigger at most ONE fill consultation
// (single-flight comes from the same inflight table that already
// guarantees one compute). The context it receives is the compute
// context — detached from any one caller, cancelled only when every
// waiter is gone — so the hook must bound its own network budget.
// Typed conveniences and explicit stream overrides never consult the
// hook; internal/serve installs it when sortnetd runs with -peers.
func WithPeerFill(fill func(ctx context.Context, req Request) (*Verdict, bool)) Option {
	return func(s *Session) { s.fill = fill }
}

// NewSession builds a Session. The zero configuration — automatic
// pool size, 4096 verdict entries, line caps 20/12, ByProperty fault
// detection — is right for both library use and serving.
func NewSession(opts ...Option) *Session {
	s := &Session{
		workers:       0,
		cacheSize:     4096,
		maxLines:      20,
		maxFaultLines: 12,
		faultMode:     faults.ByProperty,
	}
	for _, o := range opts {
		o(s)
	}
	if s.maxLines <= 0 {
		s.maxLines = 20
	}
	if s.maxFaultLines <= 0 {
		s.maxFaultLines = 12
	}
	if s.cacheSize > 0 {
		s.results = newLRU[any](s.cacheSize)
	}
	// Programs and resolutions are tiny next to verdict payloads and
	// cap the serve path's hot-loop allocations (compilation and
	// parse/canonicalize/digest respectively), so they get serving-
	// sized caches regardless of the verdict-cache setting.
	s.progs = newLRU[*eval.Program](4096)
	s.resolved = newLRU[resolvedNet](8192)
	return s
}

// resolvedNet is one resolve-memo entry: the canonical network and
// digest for a network-text request form. Canonical networks are
// immutable once built (every downstream consumer — compile, fault
// enumeration, canonical formatting — only reads), so one entry is
// safe to share across requests and goroutines.
type resolvedNet struct {
	w      *network.Network
	digest string
}

// resolveRequest is Request.resolve behind the session's resolve
// memo: the text form's parse → untangle → canonicalize → sha256
// pipeline runs once per distinct network string, not once per
// request. The line cap is re-checked on every hit because the caps
// differ per op (verify vs faults/minset), with the error
// byte-identical to resolve's. Comparator-form and malformed
// requests pass straight through uncached.
func (s *Session) resolveRequest(req *Request, maxLines int) (*network.Network, string, error) {
	if req.Network == "" || req.Comparators != nil || req.Lines > 0 {
		return req.resolve(maxLines)
	}
	if r, ok := s.resolved.Get(req.Network); ok {
		if r.w.N > maxLines {
			return nil, "", lineLimitError(r.w.N, maxLines)
		}
		return r.w, r.digest, nil
	}
	w, digest, err := req.resolve(maxLines)
	if err == nil {
		s.resolved.Add(req.Network, resolvedNet{w: w, digest: digest})
	}
	return w, digest, err
}

// Workers resolves the session's pool size under the one worker rule.
func (s *Session) Workers() int {
	if s.workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return s.workers
}

// startPool lazily spins up the compute pool: a Session used only
// through the typed conveniences never spawns a goroutine.
func (s *Session) startPool() *pool {
	s.poolOnce.Do(func() { s.pool = newPool(s.Workers(), func() { s.stats.panics.Add(1) }) })
	return s.pool
}

// Close stops the pool workers, if any were started. No Do calls may
// be in flight or follow.
func (s *Session) Close() {
	if s.pool != nil {
		s.pool.close()
	}
}

// Doer is the one-request-model interface: *Session implements it
// in-process and *client.Client implements it against a sortnetd
// URL, so callers swap local ↔ remote by swapping a value. The
// batch-first redesign grew it a second method; an implementation
// that only has Do (the PR 4 shape) is adapted losslessly with
// AdaptDoer, whose DoBatch loops Do — callers of either method are
// untouched.
type Doer interface {
	Do(ctx context.Context, req Request) (*Verdict, error)
	// DoBatch renders verdicts for a whole batch in one call, with
	// Session.DoBatch's contract: the result is index-aligned with
	// reqs, per-entry failures land in a *BatchError, and every
	// verdict is byte-identical to what sequential Do calls would
	// produce.
	DoBatch(ctx context.Context, reqs []Request) ([]*Verdict, error)
}

// SingleDoer is the historical one-method surface of the request
// model, kept so PR 4-era implementations still have a name.
type SingleDoer interface {
	Do(ctx context.Context, req Request) (*Verdict, error)
}

// AdaptDoer upgrades a single-shot implementation to the batched Doer
// interface: DoBatch loops Do sequentially, collecting per-entry
// failures into a *BatchError exactly like Session.DoBatch (minus the
// dedup/grouping — an adapter cannot see inside its delegate).
func AdaptDoer(d SingleDoer) Doer { return &adaptedDoer{d} }

type adaptedDoer struct{ d SingleDoer }

func (a *adaptedDoer) Do(ctx context.Context, req Request) (*Verdict, error) {
	return a.d.Do(ctx, req)
}

func (a *adaptedDoer) DoBatch(ctx context.Context, reqs []Request) ([]*Verdict, error) {
	verdicts := make([]*Verdict, len(reqs))
	errs := make([]error, len(reqs))
	failed := false
	for i := range reqs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		v, err := a.d.Do(ctx, reqs[i])
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			errs[i], failed = err, true
			continue
		}
		verdicts[i] = v
	}
	if failed {
		return verdicts, &BatchError{Errs: errs}
	}
	return verdicts, nil
}

// --- Stats --------------------------------------------------------------

type opCounters struct {
	requests  atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	computes  atomic.Int64
	canceled  atomic.Int64
	errors    atomic.Int64
}

type sessionCounters struct {
	verify  opCounters
	faults  opCounters
	minset  opCounters
	unknown opCounters // requests naming no known op (counted, then rejected)
	batch   batchCounters
	panics  atomic.Int64 // compute panics recovered by the pool (*PanicError)
}

// batchCounters observe the DoBatch pipeline: how many batches and
// entries arrived, how many entries were deduplicated against an
// identical entry in the same batch, and how many computed through a
// shared eval.RunMany pass (groups counts the passes themselves).
type batchCounters struct {
	batches atomic.Int64
	entries atomic.Int64
	deduped atomic.Int64
	grouped atomic.Int64
	groups  atomic.Int64
}

func (s *sessionCounters) forOp(op string) *opCounters {
	switch op {
	case OpVerify:
		return &s.verify
	case OpFaults:
		return &s.faults
	case OpMinset:
		return &s.minset
	}
	return nil
}

// OpStats is a point-in-time snapshot of one operation's counters.
// Canceled counts callers that abandoned a verdict (context cancelled
// or deadline exceeded) — their pool slot is released, not leaked.
type OpStats struct {
	Requests  int64 `json:"requests"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Computes  int64 `json:"computes"`
	Canceled  int64 `json:"canceled"`
	Errors    int64 `json:"errors"`
}

func (c *opCounters) snapshot() OpStats {
	return OpStats{
		Requests:  c.requests.Load(),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Computes:  c.computes.Load(),
		Canceled:  c.canceled.Load(),
		Errors:    c.errors.Load(),
	}
}

// CacheStats reports verdict-cache occupancy.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
	Evictions int64 `json:"evictions"`
}

// BatchStats is a point-in-time snapshot of the DoBatch counters.
// Deduped entries were answered by an identical entry in the same
// batch; Grouped entries computed through a shared eval.RunMany pass
// (Groups counts the passes), so Grouped − Groups is the number of
// program runs the batch-first model saved enumeration work for.
type BatchStats struct {
	Batches int64 `json:"batches"`
	Entries int64 `json:"entries"`
	Deduped int64 `json:"deduped"`
	Grouped int64 `json:"grouped"`
	Groups  int64 `json:"groups"`
}

// SessionStats is the Stats snapshot: per-operation counters, batch
// pipeline counters, cache occupancy, the resolved pool size, and the
// count of compute panics the pool recovered into *PanicError (each
// cost one caller an error, not the process its life).
type SessionStats struct {
	Ops     map[string]OpStats `json:"ops"`
	Batch   BatchStats         `json:"batch"`
	Cache   CacheStats         `json:"cache"`
	Workers int                `json:"workers"`
	Panics  int64              `json:"panics"`
}

// Stats returns a point-in-time snapshot of all counters.
func (s *Session) Stats() SessionStats {
	st := SessionStats{
		Ops: map[string]OpStats{
			OpVerify:  s.stats.verify.snapshot(),
			OpFaults:  s.stats.faults.snapshot(),
			OpMinset:  s.stats.minset.snapshot(),
			"unknown": s.stats.unknown.snapshot(),
		},
		Batch: BatchStats{
			Batches: s.stats.batch.batches.Load(),
			Entries: s.stats.batch.entries.Load(),
			Deduped: s.stats.batch.deduped.Load(),
			Grouped: s.stats.batch.grouped.Load(),
			Groups:  s.stats.batch.groups.Load(),
		},
		Workers: s.Workers(),
		Panics:  s.stats.panics.Load(),
	}
	if s.results != nil {
		st.Cache = CacheStats{
			Entries:   s.results.Len(),
			Capacity:  s.results.Cap(),
			Evictions: s.results.Evictions(),
		}
	}
	return st
}

// --- The single entry point ---------------------------------------------

// Do renders the verdict for one Request: parse/untangle/canonicalize
// the network, route through the verdict cache and the coalescing
// pool, compute on a deterministic single-worker engine under the
// call's context, and shape the unified Verdict. This is the exact
// pipeline sortnetd serves: internal/serve decodes HTTP bodies into
// the same Request and encodes the same Verdict.
//
// Errors: *RequestError for malformed requests (a 4xx over the
// wire), the context's error when cancelled, and nothing else.
func (s *Session) Do(ctx context.Context, req Request) (*Verdict, error) {
	op := req.Op
	if op == "" {
		op = OpVerify
	}
	ctrs := s.stats.forOp(op)
	if ctrs == nil {
		s.stats.unknown.requests.Add(1)
		s.stats.unknown.errors.Add(1)
		return nil, badRequest("unknown op %q (want %s, %s or %s)", req.Op, OpVerify, OpFaults, OpMinset)
	}
	ctrs.requests.Add(1)
	v, err := s.dispatch(ctx, op, &req, ctrs)
	switch {
	case err == nil:
		stampID(v, req.ID)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		ctrs.canceled.Add(1)
	default:
		ctrs.errors.Add(1)
	}
	return v, err
}

// stampID echoes the request's tag onto a verdict. v is always the
// per-caller shallow copy made by withSource — cached verdicts are
// shared and stored ID-less, so two requests differing only in ID
// share one cache entry yet each hears its own tag back.
func stampID(v *Verdict, id string) {
	if v != nil && id != "" {
		v.ID = id
	}
}

func (s *Session) dispatch(ctx context.Context, op string, req *Request, ctrs *opCounters) (*Verdict, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch op {
	case OpVerify:
		return s.doVerify(ctx, req, ctrs)
	case OpFaults:
		return s.doFaults(ctx, req, ctrs)
	default:
		return s.doMinset(ctx, req, ctrs)
	}
}

func (s *Session) doVerify(ctx context.Context, req *Request, ctrs *opCounters) (*Verdict, error) {
	w, digest, err := s.resolveRequest(req, s.maxLines)
	if err != nil {
		return nil, err
	}
	p, err := propertyFor(req.Property, w.N, req.K)
	if err != nil {
		return nil, err
	}
	return s.doVerifyResolved(ctx, ctrs, req, w, digest, p, req.Exhaustive)
}

// doVerifyResolved is doVerify past resolution — the entry point
// DoBatch uses for verify entries it has already canonicalized (and
// decided not to group), so a batch never parses a network twice.
// req is the original wire request (for the cluster fill hook); nil
// on surfaces with no wire form.
func (s *Session) doVerifyResolved(ctx context.Context, ctrs *opCounters, req *Request, w *network.Network, digest string, p verify.Property, exhaustive bool) (*Verdict, error) {
	key := s.verifyKey(digest, p.Name(), exhaustive)
	return s.cached(ctx, ctrs, key, s.withPeerFill(ctrs, req, OpVerify, digest, func(cctx context.Context) (*Verdict, error) {
		r, err := s.checkProgram(cctx, s.program(digest, w), p, exhaustive)
		if err != nil {
			return nil, err
		}
		return checkVerdict(digest, p.Name(), exhaustive, r), nil
	}))
}

// The cache keys are plain concatenations (byte-identical to the
// historical fmt.Sprintf forms, without the reflection allocations —
// they are built once per request on the serve hot path).

func (s *Session) verifyKey(digest, prop string, exhaustive bool) string {
	key := "verify|" + digest + "|" + prop + "|exhaustive=" + strconv.FormatBool(exhaustive)
	if s.stream != nil {
		if s.streamTag == "" {
			return "" // unnamed override: uncacheable
		}
		key += "|stream=" + s.streamTag
	}
	return key
}

func faultsKey(digest string, p verify.Property, mode faults.DetectMode) string {
	return "faults|" + digest + "|" + p.Name() + "|" + mode.String()
}

func minsetKey(digest string, p verify.Property, mode faults.DetectMode, exact bool) string {
	return "minset|" + digest + "|" + p.Name() + "|" + mode.String() + "|exact=" + strconv.FormatBool(exact)
}

// tableFor maps a paper property to its persisted stream table, when
// the session has a table directory and the directory has the table.
func (s *Session) tableFor(p Property) (*streamtab.Table, bool) {
	if s.tables == nil {
		return nil, false
	}
	switch q := p.(type) {
	case verify.Sorter:
		return s.tables.Lookup("sorter", q.N, 0)
	case verify.Selector:
		return s.tables.Lookup("selector", q.N, q.K)
	case verify.Merger:
		return s.tables.Lookup("merger", q.N, 0)
	}
	return nil, false
}

// binaryTests picks the minimal binary test stream for p: an explicit
// WithTestStream override first, then a persisted stream table, then
// live enumeration. Tables hold exactly the live stream in exactly
// stream order, so the choice never changes a verdict.
func (s *Session) binaryTests(p Property) VecIterator {
	if s.stream != nil {
		return s.stream(p)
	}
	if t, ok := s.tableFor(p); ok {
		return t.Iter()
	}
	return p.BinaryTests()
}

// binaryTestsFactory is binaryTests as a restartable factory, for the
// fault paths that replay the stream once per fault. WithTestStream
// overrides deliberately do NOT apply here (they never have: the
// option scores alternative VERIFY streams; fault coverage is defined
// over the paper's minimal test set), but tables do — the replay per
// fault is exactly where skipping re-enumeration pays most.
func (s *Session) binaryTestsFactory(p Property) func() VecIterator {
	if t, ok := s.tableFor(p); ok {
		return t.Iter
	}
	return p.BinaryTests
}

// checkProgram runs the verify engine for one compiled program:
// minimal test set (table-backed when available, or the session's
// stream override) or the exhaustive universe.
func (s *Session) checkProgram(ctx context.Context, prog *eval.Program, p Property, exhaustive bool) (Result, error) {
	if exhaustive {
		return verify.GroundTruthProgramCtx(ctx, prog, p)
	}
	if s.stream != nil || s.tables != nil {
		if prog.N() != p.Lines() {
			panic(fmt.Sprintf("sortnets: program has %d lines, property wants %d", prog.N(), p.Lines()))
		}
		v, err := eval.New(prog, 1).RunCtx(ctx, s.binaryTests(p), verify.JudgeFor(p))
		if err != nil {
			return Result{}, err
		}
		return Result{Holds: v.Holds, TestsRun: v.TestsRun, Counterexample: v.In, Output: v.Out}, nil
	}
	return verify.VerdictProgramCtx(ctx, prog, p)
}

func checkVerdict(digest, prop string, exhaustive bool, r Result) *Verdict {
	cv := &CheckVerdict{Exhaustive: exhaustive, Holds: r.Holds, TestsRun: r.TestsRun}
	if !r.Holds {
		cv.Counterexample = r.Counterexample.String()
		cv.Output = r.Output.String()
	}
	return &Verdict{Op: OpVerify, Digest: digest, Property: prop, Check: cv}
}

// faultArgs validates the shared OpFaults/OpMinset request shape.
func (s *Session) faultArgs(req *Request) (*network.Network, string, Property, faults.DetectMode, error) {
	w, digest, err := s.resolveRequest(req, s.maxFaultLines)
	if err != nil {
		return nil, "", nil, 0, err
	}
	p, err := propertyFor(req.Property, w.N, req.K)
	if err != nil {
		return nil, "", nil, 0, err
	}
	mode := s.faultMode
	if req.Mode != "" {
		if mode, err = detectModeFor(req.Mode); err != nil {
			return nil, "", nil, 0, err
		}
	}
	if mode == faults.ByProperty {
		if _, ok := p.(verify.Sorter); !ok {
			return nil, "", nil, 0, badRequest("by-property detection judges outputs as a sorter; use property=sorter or mode=by-golden")
		}
	}
	return w, digest, p, mode, nil
}

func (s *Session) doFaults(ctx context.Context, req *Request, ctrs *opCounters) (*Verdict, error) {
	w, digest, p, mode, err := s.faultArgs(req)
	if err != nil {
		return nil, err
	}
	return s.doFaultsResolved(ctx, ctrs, req, w, digest, p, mode)
}

// doFaultsResolved is doFaults past resolution (see doVerifyResolved).
func (s *Session) doFaultsResolved(ctx context.Context, ctrs *opCounters, req *Request, w *network.Network, digest string, p verify.Property, mode faults.DetectMode) (*Verdict, error) {
	key := faultsKey(digest, p, mode)
	return s.cached(ctx, ctrs, key, s.withPeerFill(ctrs, req, OpFaults, digest, func(cctx context.Context) (*Verdict, error) {
		rep, err := faults.MeasureCtx(cctx, w, s.program(digest, w), faults.Enumerate(w), s.binaryTestsFactory(p), mode)
		if err != nil {
			return nil, err
		}
		return &Verdict{Op: OpFaults, Digest: digest, Property: p.Name(), Faults: &FaultsVerdict{
			Mode:       mode.String(),
			Faults:     rep.Faults,
			Detectable: rep.Detectable,
			Detected:   rep.Detected,
			Coverage:   rep.Coverage(),
		}}, nil
	}))
}

// minsetNodeBudget caps the exact hitting-set branch and bound per
// request; exhausted budgets fall back to the (still valid) greedy
// witness with exact=false.
const minsetNodeBudget = 2_000_000

func (s *Session) doMinset(ctx context.Context, req *Request, ctrs *opCounters) (*Verdict, error) {
	w, digest, p, mode, err := s.faultArgs(req)
	if err != nil {
		return nil, err
	}
	return s.doMinsetResolved(ctx, ctrs, req, w, digest, p, mode, req.Exact)
}

// doMinsetResolved is doMinset past resolution (see doVerifyResolved).
func (s *Session) doMinsetResolved(ctx context.Context, ctrs *opCounters, req *Request, w *network.Network, digest string, p verify.Property, mode faults.DetectMode, exactReq bool) (*Verdict, error) {
	key := minsetKey(digest, p, mode, exactReq)
	return s.cached(ctx, ctrs, key, s.withPeerFill(ctrs, req, OpMinset, digest, func(cctx context.Context) (*Verdict, error) {
		m, err := faults.DetectionMatrixCtx(cctx, w, s.program(digest, w), faults.Enumerate(w), s.binaryTestsFactory(p), mode)
		if err != nil {
			return nil, err
		}
		var picks []int
		exact := false
		if exactReq {
			// Deterministic witness: the exact solver runs sequential.
			picks, exact, err = m.ExactMinimalDetectingSetCtx(cctx, minsetNodeBudget, 1)
			if err != nil {
				return nil, err
			}
		}
		if picks == nil {
			picks = m.MinimalDetectingSet()
		}
		mv := &MinsetVerdict{
			Mode:       mode.String(),
			Faults:     len(m.Faults),
			Detectable: m.Detectable.Count(),
			Detected:   m.Detected().Count(),
			FullTests:  len(m.Tests),
			Size:       len(picks),
			Exact:      exact,
			Tests:      make([]string, 0, len(picks)),
		}
		for _, t := range picks {
			mv.Tests = append(mv.Tests, m.Tests[t].String())
		}
		return &Verdict{Op: OpMinset, Digest: digest, Property: p.Name(), Minset: mv}, nil
	}))
}

// withPeerFill wraps a compute closure with the cluster fill hook:
// probe the peers first, adopt a valid answer, else compute locally.
// The compute counter and hook live HERE, on the local branch, so an
// adopted verdict is a miss that cost no compute — the property the
// cluster's "sum of per-shard computes == distinct work" accounting
// rests on. Fill is skipped without a hook, without a wire request to
// forward, or under a stream override (an overridden stream's
// verdicts are not the peers' verdicts). Runs inside the pooled call,
// so the cache re-check, the cache fill, and single-flight all apply
// unchanged.
func (s *Session) withPeerFill(ctrs *opCounters, req *Request, op, digest string, compute func(context.Context) (*Verdict, error)) func(context.Context) (*Verdict, error) {
	counted := func(cctx context.Context) (*Verdict, error) {
		ctrs.computes.Add(1)
		if s.computeHook != nil {
			s.computeHook()
		}
		return compute(cctx)
	}
	if s.fill == nil || req == nil || s.stream != nil {
		return counted
	}
	return func(cctx context.Context) (*Verdict, error) {
		if v, ok := s.peerProbe(cctx, req, op, digest); ok {
			return v, nil
		}
		return counted(cctx)
	}
}

// peerProbe runs one fill consultation and validates the answer: a
// peer's verdict is adopted only if it is for the same operation and
// the same canonical digest (a confused or stale peer must never
// poison the cache). The adopted copy is stripped of correlation and
// provenance — it enters the cache exactly as a computed verdict
// would.
func (s *Session) peerProbe(cctx context.Context, req *Request, op, digest string) (*Verdict, bool) {
	if s.fill == nil || req == nil {
		return nil, false
	}
	probe := *req
	probe.ID = ""
	probe.Op = op
	v, ok := s.fill(cctx, probe)
	if !ok || v == nil || v.Op != op || v.Digest != digest {
		return nil, false
	}
	cp := *v
	cp.ID, cp.Source = "", ""
	return &cp, true
}

// Lookup is the fill-only read path of the cluster: it reports the
// verdict cached for req — resolving and key-building exactly like Do
// — WITHOUT computing, coalescing, or consulting peers, and without
// touching the op counters. sortnetd answers X-Sortnetd-Fill probes
// from it, which is what makes peer fill structurally loop-free: a
// probe can only ever read a sibling's cache, never start work there.
func (s *Session) Lookup(req Request) (*Verdict, bool) {
	if s.results == nil {
		return nil, false
	}
	op := req.Op
	if op == "" {
		op = OpVerify
	}
	var key string
	switch op {
	case OpVerify:
		w, digest, err := s.resolveRequest(&req, s.maxLines)
		if err != nil {
			return nil, false
		}
		p, err := propertyFor(req.Property, w.N, req.K)
		if err != nil {
			return nil, false
		}
		key = s.verifyKey(digest, p.Name(), req.Exhaustive)
	case OpFaults, OpMinset:
		_, digest, p, mode, err := s.faultArgs(&req)
		if err != nil {
			return nil, false
		}
		if op == OpFaults {
			key = faultsKey(digest, p, mode)
		} else {
			key = minsetKey(digest, p, mode, req.Exact)
		}
	default:
		return nil, false
	}
	if key == "" {
		return nil, false
	}
	if v, ok := s.results.Get(key); ok {
		if verdict, ok := v.(*Verdict); ok {
			return withSource(verdict, "hit"), true
		}
	}
	return nil, false
}

// cached runs the cache → coalesce → compute pipeline for one Do
// request. compute must be deterministic: its verdict is stored and
// replayed (and, over the wire, marshals byte-identically). An empty
// key skips the cache AND coalescing (distinct uncacheable requests
// must never share an in-flight result) but still runs on the pool.
func (s *Session) cached(ctx context.Context, ctrs *opCounters, key string, compute func(context.Context) (*Verdict, error)) (*Verdict, error) {
	cacheable := key != ""
	if !cacheable {
		// A unique key: uncacheable requests run on the pool but must
		// never coalesce with each other.
		key = "!uncached|" + strconv.FormatInt(s.uncached.Add(1), 10)
	}
	if s.results != nil && cacheable {
		if v, ok := s.results.Get(key); ok {
			ctrs.hits.Add(1)
			return withSource(v.(*Verdict), "hit"), nil
		}
	}
	ctrs.misses.Add(1)
	return s.pooled(ctx, ctrs, key, cacheable, compute)
}

// pooled is cached's coalesce → compute tail, re-entered on the rare
// abandoned-submission retry.
func (s *Session) pooled(ctx context.Context, ctrs *opCounters, key string, cacheable bool, compute func(context.Context) (*Verdict, error)) (*Verdict, error) {
	v, coalesced, err := s.startPool().do(ctx, key, func(cctx context.Context) (*Verdict, error) {
		// Re-check the cache from inside the registered call: a twin
		// that was in flight during our lookup may have filled the
		// cache and left the inflight table in the gap before our
		// registration. Its Add happens before its deregistration, so
		// if we registered fresh, the result is already visible here —
		// without this, two "concurrent identical" requests could both
		// compute.
		if s.results != nil && cacheable {
			if v, ok := s.results.Get(key); ok {
				return v.(*Verdict), nil
			}
		}
		// The compute counter and hook fire inside compute itself (the
		// withPeerFill wrapper): a peer-filled verdict is a miss that
		// cost no local compute.
		v, err := compute(cctx)
		if err == nil && s.results != nil && cacheable {
			// Fill the cache on the pool worker, before the in-flight
			// entry is dropped, so there is no window where neither
			// the cache nor the inflight table knows the result.
			s.results.Add(key, v)
		}
		return v, err
	}, func() { ctrs.coalesced.Add(1) })
	if err != nil {
		// The compute context dies only when every waiter is gone; a
		// waiter that is still here was cancelled itself. Either way
		// the caller's context error is the honest answer.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		if errors.Is(err, errSubmitterGone) {
			// We coalesced onto a call whose submitter abandoned it
			// before a worker picked it up; our context is fine, so
			// resubmit (the dead call has left the inflight table).
			return s.pooled(ctx, ctrs, key, cacheable, compute)
		}
		return nil, err
	}
	if coalesced {
		return withSource(v, "coalesced"), nil
	}
	return withSource(v, "miss"), nil
}

// withSource stamps how the verdict was obtained on a shallow copy
// (cached Verdicts are shared and must stay immutable).
func withSource(v *Verdict, source string) *Verdict {
	cp := *v
	cp.Source = source
	return &cp
}

// program returns the compiled healthy program for a canonical
// network, sharing compilations across operations and properties via
// the digest-keyed program cache. Programs are immutable, so a cached
// one is safe for concurrent engines.
func (s *Session) program(digest string, w *network.Network) *eval.Program {
	if p, ok := s.progs.Get(digest); ok {
		return p
	}
	p := eval.Compile(w)
	s.progs.Add(digest, p)
	return p
}

// resolveNetwork canonicalizes a trusted in-process network and
// returns its cached program: the convenience-path counterpart of
// Request.resolve (no line caps — the caller already holds the
// network).
func (s *Session) resolveNetwork(w *network.Network) (*network.Network, string, *eval.Program) {
	c, digest := canon.Canonicalize(w)
	return c, digest, s.program(digest, c)
}

// MarshalVerdict renders the wire body of a Verdict (the exact bytes
// sortnetd sends). It uses the hand-rolled append encoder, which the
// wire tests pin byte-identical to json.Marshal.
func MarshalVerdict(v *Verdict) ([]byte, error) { return AppendVerdict(nil, v), nil }

// --- Default session ----------------------------------------------------

var (
	defaultSessionOnce sync.Once
	defaultSession     *Session
)

// DefaultSession returns the package-level Session backing the plain
// facade functions (CheckSorter, GroundTruth, FaultCoverage, …). It
// is built lazily with NewSession's defaults and is never closed.
func DefaultSession() *Session {
	defaultSessionOnce.Do(func() { defaultSession = NewSession() })
	return defaultSession
}

// Do routes a Request through the default Session.
func Do(ctx context.Context, req Request) (*Verdict, error) {
	return DefaultSession().Do(ctx, req)
}
