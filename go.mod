module sortnets

go 1.22
