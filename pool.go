package sortnets

import (
	"context"
	"errors"
	"hash/fnv"
	"sync"
)

// The Session's compute plane is a SHARDED worker pool: one goroutine
// per shard, with requests routed to a shard by the hash of their
// cache key. Routing by key gives coalescing for free and without a
// global lock — two concurrent identical requests always land on the
// same shard, where an inflight table lets the second subscribe to
// the first's result instead of recomputing it. The shard count
// bounds the number of verdicts computing at once (the engines inside
// run single-worker, so total CPU use stays ≈ shard count).
//
// Cancellation: each in-flight call computes under its OWN context,
// cancelled when the last subscribed waiter abandons it. A caller
// whose context dies stops waiting immediately; the computation keeps
// running only while someone still wants the result, and aborts at
// its next engine block check otherwise — releasing the shard slot.
// Caller deadlines and values are deliberately NOT propagated into
// the compute context: a verdict may be shared by callers with
// different deadlines.

// call is one in-flight computation; waiters block on done and then
// read verdict/err, which are written exactly once before the close.
type call struct {
	done    chan struct{}
	verdict *Verdict
	err     error
	waiters int // guarded by the shard mutex
	ctx     context.Context
	cancel  context.CancelFunc
}

type shard struct {
	mu       sync.Mutex
	inflight map[string]*call
	jobs     chan func()
}

type pool struct {
	shards  []*shard
	wg      sync.WaitGroup
	onPanic func() // observes each recovered compute panic (may be nil)
}

// newPool starts n shard workers. Each shard's job queue is buffered;
// a full queue blocks the submitting caller, which is the intended
// backpressure (the submitter still honours its context while
// blocked). onPanic, if non-nil, runs once per recovered compute
// panic (the job's error becomes a *PanicError either way).
func newPool(n int, onPanic func()) *pool {
	if n < 1 {
		n = 1
	}
	p := &pool{shards: make([]*shard, n), onPanic: onPanic}
	for i := range p.shards {
		sh := &shard{
			inflight: make(map[string]*call),
			jobs:     make(chan func(), 64),
		}
		p.shards[i] = sh
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for job := range sh.jobs {
				job()
			}
		}()
	}
	return p
}

// close drains the pool: no do calls may be in flight or follow.
func (p *pool) close() {
	for _, sh := range p.shards {
		close(sh.jobs)
	}
	p.wg.Wait()
}

func (p *pool) shardFor(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return p.shards[h.Sum32()%uint32(len(p.shards))]
}

// do runs compute for key on key's shard, coalescing with an
// identical in-flight computation if one exists. It returns the
// result and whether this caller merely joined an existing call.
// onJoin, if non-nil, runs as soon as a caller registers as a waiter
// (BEFORE blocking on the twin's result), so coalescing is observable
// in stats while the shared computation is still running.
func (p *pool) do(ctx context.Context, key string, compute func(context.Context) (*Verdict, error), onJoin func()) (*Verdict, bool, error) {
	sh := p.shardFor(key)
	sh.mu.Lock()
	if c, ok := sh.inflight[key]; ok {
		c.waiters++
		sh.mu.Unlock()
		if onJoin != nil {
			onJoin()
		}
		return sh.wait(ctx, key, c, true)
	}
	cctx, cancel := context.WithCancel(context.Background())
	c := &call{done: make(chan struct{}), waiters: 1, ctx: cctx, cancel: cancel}
	sh.inflight[key] = c
	sh.mu.Unlock()

	job := func() {
		defer func() {
			if r := recover(); r != nil {
				c.err = &PanicError{Val: r}
				if p.onPanic != nil {
					p.onPanic()
				}
			}
			sh.drop(key, c)
			c.cancel()
			close(c.done)
		}()
		// All waiters may have abandoned the call while it sat in the
		// queue: return the slot without touching an engine.
		if err := c.ctx.Err(); err != nil {
			c.err = err
			return
		}
		c.verdict, c.err = compute(c.ctx)
	}
	select {
	case sh.jobs <- job:
	case <-ctx.Done():
		// Queue full and the submitter gave up before the job was
		// accepted: finish the call with a retryable sentinel — NOT
		// the submitter's context error, which joined waiters with
		// live contexts of their own must not inherit (the Session
		// retries the pipeline for them).
		sh.drop(key, c)
		c.err = errSubmitterGone
		c.cancel()
		close(c.done)
		return nil, false, ctx.Err()
	}
	return sh.wait(ctx, key, c, false)
}

// errSubmitterGone marks a call whose submitting caller abandoned it
// before a pool worker accepted the job. Waiters that coalesced onto
// it did nothing wrong — their caller retries the request.
var errSubmitterGone = errors.New("sortnets: verdict submission abandoned before compute started")

// drop removes the call from the inflight table if it still owns its
// key (a successor may already have replaced it after an abandon).
func (sh *shard) drop(key string, c *call) {
	sh.mu.Lock()
	if sh.inflight[key] == c {
		delete(sh.inflight, key)
	}
	sh.mu.Unlock()
}

// wait blocks until the call completes or the caller's context dies.
// The last waiter to abandon a call cancels its compute context and
// retires it from the inflight table, so a later identical request
// starts fresh instead of subscribing to a doomed computation.
func (sh *shard) wait(ctx context.Context, key string, c *call, joined bool) (*Verdict, bool, error) {
	select {
	case <-c.done:
		return c.verdict, joined, c.err
	case <-ctx.Done():
		sh.mu.Lock()
		c.waiters--
		abandoned := c.waiters == 0
		if abandoned && sh.inflight[key] == c {
			delete(sh.inflight, key)
		}
		sh.mu.Unlock()
		if abandoned {
			c.cancel()
		}
		return nil, joined, ctx.Err()
	}
}
