package sortnets

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
)

// The wire codec's contract is byte identity with encoding/json on
// the encode side, and accept/reject + value identity on the decode
// side. These tests enforce it differentially: every assertion runs
// the hand-rolled path and the reflection path on the same value and
// compares.

// trickyStrings exercises every escaping branch: HTML-sensitive
// runes, control characters, named escapes, U+2028/U+2029, multi-byte
// UTF-8, and invalid UTF-8 (which encoding/json replaces with U+FFFD).
var trickyStrings = []string{
	"",
	"plain",
	`with "quotes" and \backslash`,
	"<script>&amp;</script>",
	"tabs\tand\nnewlines\rand\x00nul\x1fctrl",
	"line sep \u2028 and para sep \u2029",
	"ünïcödé ⊕ ∀x∃y 网络",
	"\xff\xfe invalid utf8 \xc3\x28",
	"\xed\xa0\x80 lone surrogate bytes",
	"back\bform\ffeed",
	"emoji 🙂 pair",
}

func trickyString(rng *rand.Rand) string {
	return trickyStrings[rng.Intn(len(trickyStrings))]
}

func randomRequest(rng *rand.Rand) Request {
	r := Request{}
	if rng.Intn(2) == 0 {
		r.ID = trickyString(rng)
	}
	switch rng.Intn(4) {
	case 0:
		r.Op = "verify"
	case 1:
		r.Op = "faults"
	}
	if rng.Intn(3) != 0 {
		r.Network = "[(0,1),(2,3)]"
	}
	r.Lines = rng.Intn(5)
	if rng.Intn(3) == 0 {
		r.Comparators = make([][2]int, rng.Intn(4))
		for i := range r.Comparators {
			r.Comparators[i] = [2]int{rng.Intn(8) - 2, rng.Intn(8)}
		}
	}
	if rng.Intn(2) == 0 {
		r.Property = "selector"
		r.K = rng.Intn(4)
	}
	r.Exhaustive = rng.Intn(2) == 0
	if rng.Intn(3) == 0 {
		r.Mode = "by-golden"
	}
	r.Exact = rng.Intn(2) == 0
	return r
}

func randomVerdict(rng *rand.Rand) Verdict {
	v := Verdict{
		Op:       "verify",
		Digest:   "sha256:abc123",
		Property: "sorter",
	}
	if rng.Intn(2) == 0 {
		v.ID = trickyString(rng)
	}
	switch rng.Intn(4) {
	case 0, 1:
		v.Check = &CheckVerdict{
			Exhaustive:     rng.Intn(2) == 0,
			Holds:          rng.Intn(2) == 0,
			TestsRun:       rng.Intn(1 << 20),
			Counterexample: trickyString(rng),
			Output:         trickyString(rng),
		}
	case 2:
		v.Faults = &FaultsVerdict{
			Mode:       "by-property",
			Faults:     rng.Intn(100),
			Detectable: rng.Intn(100),
			Detected:   rng.Intn(100),
			Coverage:   []float64{0, 1, 0.5, 1.0 / 3.0, 0.9999999999999, 2e-7, 3e21, -0.25, 123456789.125}[rng.Intn(9)],
		}
	case 3:
		m := &MinsetVerdict{
			Mode:       "by-golden",
			Faults:     rng.Intn(100),
			Detectable: rng.Intn(100),
			Detected:   rng.Intn(100),
			FullTests:  rng.Intn(1000),
			Size:       rng.Intn(50),
			Exact:      rng.Intn(2) == 0,
		}
		switch rng.Intn(3) {
		case 0: // nil → JSON null
		case 1:
			m.Tests = []string{}
		case 2:
			m.Tests = []string{trickyString(rng), "0101", trickyString(rng)}
		}
		v.Minset = m
	}
	return v
}

func randomBatchVerdict(rng *rand.Rand) BatchVerdict {
	bv := BatchVerdict{}
	if rng.Intn(2) == 0 {
		bv.ID = trickyString(rng)
	}
	if rng.Intn(3) != 0 {
		v := randomVerdict(rng)
		bv.Verdict = &v
	} else {
		bv.Error = &RequestError{Status: 400 + rng.Intn(100), Msg: trickyString(rng), RetryAfter: rng.Intn(3)}
	}
	if rng.Intn(2) == 0 {
		bv.Source = []string{"hit", "miss", "coalesced"}[rng.Intn(3)]
	}
	return bv
}

// TestAppendRequestMatchesJSON / TestAppendVerdictMatchesJSON /
// TestAppendBatchVerdictMatchesJSON: the append encoders must emit
// the exact bytes json.Marshal emits, over randomized structs that
// hit every omitempty branch and every string-escaping branch.
func TestAppendRequestMatchesJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 500; trial++ {
		r := randomRequest(rng)
		want, err := json.Marshal(&r)
		if err != nil {
			t.Fatal(err)
		}
		got := AppendRequest(nil, &r)
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d:\n got %s\nwant %s\nreq %+v", trial, got, want, r)
		}
	}
}

func TestAppendVerdictMatchesJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 500; trial++ {
		v := randomVerdict(rng)
		want, err := json.Marshal(&v)
		if err != nil {
			t.Fatal(err)
		}
		got := AppendVerdict(nil, &v)
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d:\n got %s\nwant %s\nverdict %+v", trial, got, want, v)
		}
	}
}

func TestAppendBatchVerdictMatchesJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 500; trial++ {
		bv := randomBatchVerdict(rng)
		want, err := json.Marshal(&bv)
		if err != nil {
			t.Fatal(err)
		}
		got := AppendBatchVerdict(nil, &bv)
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d:\n got %s\nwant %s\nbv %+v", trial, got, want, bv)
		}
	}
}

// refUnmarshalRequest is the reference strict decode: the exact
// json.Decoder + DisallowUnknownFields + trailing-token check the
// serve layer used before the hand-rolled decoder.
func refUnmarshalRequest(data []byte, r *Request) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(r); err != nil {
		return err
	}
	if _, err := dec.Token(); err != io.EOF {
		return errors.New("trailing data after JSON value")
	}
	return nil
}

// requestLines is a corpus of hand-picked request lines covering the
// decoder's decision space: case-folded keys, duplicate keys, nulls,
// fixed-array raggedness, unknown fields, numbers that are and are
// not integers, and plain syntax errors.
var requestLines = []string{
	`{}`,
	`null`,
	`  {"op":"verify","network":"[(0,1)]"}  `,
	`{"OP":"verify","NetWork":"[(0,1)]","LINES":4}`,
	`{"op":"verify","op":"faults"}`,
	`{"op":null,"lines":null,"comparators":null,"exhaustive":null}`,
	`{"comparators":[[1,2],[3,4]]}`,
	`{"comparators":[]}`,
	`{"comparators":[[1],[3,4,5,6]]}`,
	`{"comparators":[null,[1,2]]}`,
	`{"lines":0}`,
	`{"lines":-3}`,
	`{"lines":1.5}`,
	`{"lines":1e3}`,
	`{"lines":01}`,
	`{"lines":9223372036854775808}`,
	`{"k":"2"}`,
	`{"exhaustive":true,"exact":false}`,
	`{"exhaustive":"yes"}`,
	`{"unknown":1}`,
	`{"id":"\u0041\u00e9\ud83d\ude00\u2028"}`,
	`{"id":"\ud800"}`,
	`{"id":"\ud800\udc00"}`,
	`{"id":"\udc00\ud800"}`,
	`{"id":"bad escape \q"}`,
	`{"id":"unterminated`,
	`{"id":"ctrl ` + "\x01" + ` byte"}`,
	`{"id":"raw ` + "\xff" + ` utf8"}`,
	`{"op":"verify"} trailing`,
	`{"op":"verify"}{"op":"verify"}`,
	`{"op":"verify",}`,
	`{"op" "verify"}`,
	`[1,2]`,
	`123`,
	`"just a string"`,
	`true`,
	``,
	`   `,
	`{"network":"[(0,1)]","lines":2,"property":"merger","k":3,"mode":"by-property","exact":true,"exhaustive":true,"id":"x","op":"minset"}`,
}

func TestUnmarshalRequestLineMatchesJSON(t *testing.T) {
	check := func(t *testing.T, line []byte) {
		var got, want Request
		gotErr := UnmarshalRequestLine(line, &got)
		wantErr := refUnmarshalRequest(line, &want)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("line %q: wire err %v, encoding/json err %v", line, gotErr, wantErr)
		}
		if gotErr == nil && !reflect.DeepEqual(got, want) {
			t.Fatalf("line %q:\n wire %+v\n json %+v", line, got, want)
		}
	}
	for _, line := range requestLines {
		check(t, []byte(line))
	}
	// Round-trip: anything AppendRequest emits must decode to the
	// identical struct (modulo nil/empty comparators, which omitempty
	// collapses — skip those).
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 300; trial++ {
		r := randomRequest(rng)
		if r.Comparators != nil && len(r.Comparators) == 0 {
			r.Comparators = nil
		}
		check(t, AppendRequest(nil, &r))
	}
}

// TestUnmarshalRequestLineResetsTarget: a pooled Request carrying
// stale state must come out as if freshly declared.
func TestUnmarshalRequestLineResetsTarget(t *testing.T) {
	stale := Request{ID: "old", Op: "faults", Lines: 9, Comparators: [][2]int{{1, 2}}, Exact: true}
	if err := UnmarshalRequestLine([]byte(`{"op":"verify"}`), &stale); err != nil {
		t.Fatal(err)
	}
	if want := (Request{Op: "verify"}); !reflect.DeepEqual(stale, want) {
		t.Fatalf("stale fields survived: %+v", stale)
	}
}

// batchVerdictLines covers the lenient decoder: unknown fields must
// be skipped (not rejected), nested nulls must nil out pointers, and
// syntax errors must still be errors.
var batchVerdictLines = []string{
	`{}`,
	`null`,
	`{"id":"a","verdict":{"op":"verify","digest":"d","property":"sorter","check":{"holds":true,"testsRun":12}}}`,
	`{"verdict":{"op":"verify","check":{"holds":true,"testsRun":1,"future_field":[1,{"x":2}]}},"lane":7}`,
	`{"verdict":null,"error":null}`,
	`{"error":{"status":422,"error":"tangled"}}`,
	`{"error":{"status":422,"error":"tangled","hint":"untangle"}}`,
	`{"verdict":{"op":"faults","faults":{"mode":"by-property","faults":3,"detectable":2,"detected":1,"coverage":0.5}}}`,
	`{"verdict":{"op":"faults","faults":{"coverage":5e-1}}}`,
	`{"verdict":{"op":"minset","minset":{"mode":"m","tests":null}}}`,
	`{"verdict":{"op":"minset","minset":{"tests":[]}}}`,
	`{"verdict":{"op":"minset","minset":{"tests":["01","10"],"exact":true,"size":2}}}`,
	`{"source":"hit","id":"z"}`,
	`{"Source":"HIT","ID":"case"}`,
	`{"verdict":{"check":{"testsRun":2.5}}}`,
	`{"verdict":[1]}`,
	`{"verdict":{"check":{"holds":true}}} extra`,
	`{"error":{"status":"422"}}`,
	``,
	`{"verdict":{"id":"vid","op":"o","digest":"g","property":"p"}}`,
}

func TestUnmarshalBatchVerdictLineMatchesJSON(t *testing.T) {
	check := func(t *testing.T, line []byte) {
		var got, want BatchVerdict
		gotErr := UnmarshalBatchVerdictLine(line, &got)
		wantErr := json.Unmarshal(line, &want)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("line %q: wire err %v, encoding/json err %v", line, gotErr, wantErr)
		}
		if gotErr == nil && !reflect.DeepEqual(got, want) {
			t.Fatalf("line %q:\n wire %+v\n json %+v", line, got, want)
		}
	}
	for _, line := range batchVerdictLines {
		check(t, []byte(line))
	}
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 300; trial++ {
		bv := randomBatchVerdict(rng)
		check(t, AppendBatchVerdict(nil, &bv))
	}
}

// FuzzWireRequest: on arbitrary bytes, the strict decoder must agree
// with the json.Decoder reference on accept/reject, and on the decoded
// struct whenever both accept. (Error text may differ; decisions and
// values may not.)
func FuzzWireRequest(f *testing.F) {
	for _, line := range requestLines {
		f.Add([]byte(line))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		var got, want Request
		gotErr := UnmarshalRequestLine(line, &got)
		wantErr := refUnmarshalRequest(line, &want)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("accept/reject diverges on %q: wire %v, encoding/json %v", line, gotErr, wantErr)
		}
		if gotErr == nil && !reflect.DeepEqual(got, want) {
			t.Fatalf("values diverge on %q:\n wire %+v\n json %+v", line, got, want)
		}
	})
}

// FuzzWireBatchVerdict: the lenient decoder vs json.Unmarshal on
// arbitrary bytes, plus encoder round-trip identity whenever the
// reference accepts the line.
func FuzzWireBatchVerdict(f *testing.F) {
	for _, line := range batchVerdictLines {
		f.Add([]byte(line))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		var got, want BatchVerdict
		gotErr := UnmarshalBatchVerdictLine(line, &got)
		wantErr := json.Unmarshal(line, &want)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("accept/reject diverges on %q: wire %v, encoding/json %v", line, gotErr, wantErr)
		}
		if gotErr != nil {
			return
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("values diverge on %q:\n wire %+v\n json %+v", line, got, want)
		}
		// Encode both decodes; the wire encoder must match json.Marshal
		// on whatever struct came out.
		wantBytes, err := json.Marshal(&want)
		if err != nil {
			return
		}
		if gotBytes := AppendBatchVerdict(nil, &got); !bytes.Equal(gotBytes, wantBytes) {
			t.Fatalf("re-encode diverges on %q:\n wire %s\n json %s", line, gotBytes, wantBytes)
		}
	})
}

// TestMarshalVerdictMatchesJSON pins the public serve-path contract:
// MarshalVerdict (now the append encoder) must still emit the exact
// bytes json.Marshal would.
func TestMarshalVerdictMatchesJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 100; trial++ {
		v := randomVerdict(rng)
		want, err := json.Marshal(&v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MarshalVerdict(&v)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d:\n got %s\nwant %s", trial, got, want)
		}
	}
}
