package sortnets_test

import (
	"fmt"

	"sortnets"
)

// The worked example of the paper's Fig. 1: a four-line network that
// looks plausible but fails to sort.
func Example() {
	w := sortnets.MustParseNetwork("n=4: [1,3][2,4][1,2][3,4]")
	fmt.Println(sortnets.CheckSorter(w))
	// Output:
	// fails on 1010 -> 0101 (after 5 tests)
}

// Certifying Batcher's 8-line sorter with the minimal test set of
// Theorem 2.2(i): 247 vectors instead of the 256 of a full sweep —
// and provably none can be dropped.
func ExampleCheckSorter() {
	w := sortnets.BatcherSorter(8)
	fmt.Println(sortnets.CheckSorter(w))
	// Output:
	// holds (247 tests)
}

// The Lemma 2.1 adversary: a network that sorts every input except
// one chosen string — the reason the minimal test set is minimal.
func ExampleAlmostSorter() {
	sigma := sortnets.MustVec("0110")
	h, err := sortnets.AlmostSorter(sigma)
	if err != nil {
		panic(err)
	}
	fmt.Println(sortnets.CheckSorter(h))
	// Output:
	// fails on 0110 -> 0101 (after 6 tests)
}

// Theorem 2.5's linear permutation test set: eight permutations
// certify a 16-line merge unit.
func ExampleMergerPermTests() {
	for _, p := range sortnets.MergerPermTests(8) {
		fmt.Println(p)
	}
	// Output:
	// (5 6 7 8 1 2 3 4)
	// (1 6 7 8 2 3 4 5)
	// (1 2 7 8 3 4 5 6)
	// (1 2 3 8 4 5 6 7)
}

// Wide-width certification: at 128 lines a zero-one sweep would need
// 2¹²⁸ inputs; the merger property needs 4096.
func ExampleCheckMergerWide() {
	m := sortnets.BatcherMerger(128)
	fmt.Println(sortnets.CheckMergerWide(m))
	// Output:
	// holds (4096 tests)
}

// Exact closed-form sizes work far beyond the enumerable regime.
func ExampleSorterTestSetSize() {
	fmt.Println(sortnets.SorterTestSetSize(10))
	fmt.Println(sortnets.SorterTestSetSize(64))
	// Output:
	// 1013
	// 18446744073709551551
}

// The exact minimum test set for height-1 (primitive) networks,
// computed by exhausting the behaviour space: n−1 tests, versus de
// Bruijn's single permutation test.
func ExampleExactMinimumTestSet() {
	r, err := sortnets.ExactMinimumTestSet(5, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(r.Size)
	for _, v := range r.Tests {
		fmt.Println(v)
	}
	// Output:
	// 4
	// 10000
	// 11000
	// 11100
	// 11110
}
