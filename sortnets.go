// Package sortnets is a Go reproduction of Chung & Ravikumar, "Bounds
// on the Size of Test Sets for Sorting and Related Networks" (ICPP
// 1987; Discrete Mathematics 81, 1990): exact minimal test sets for
// deciding whether an arbitrary comparator network sorts, selects, or
// merges — with the adversarial constructions that prove the bounds
// tight, a property-testing engine, classical network generators, a
// VLSI fault simulator, and an exact behaviour-space search.
//
// This package is the public facade: it re-exports the types and
// entry points a downstream user needs from the internal packages.
//
//	w := sortnets.BatcherSorter(8)
//	res := sortnets.CheckSorter(w)        // runs the 2⁸−8−1 minimal tests
//	fmt.Println(res.Holds)                // true
//
//	sigma := sortnets.MustVec("0110")
//	h := sortnets.MustAlmostSorter(sigma) // sorts everything except 0110
//	fmt.Println(sortnets.CheckSorter(h))  // fails on 0110 -> ...
//
// The three properties and their exact minimal test-set sizes:
//
//	Sorter             2ⁿ − n − 1 binary / C(n,⌊n/2⌋) − 1 permutations
//	(k,n)-selector     Σᵢ₌₀..k C(n,i) − k − 1 / C(n,min(k,⌊n/2⌋)) − 1
//	(n/2,n/2)-merger   n²/4 / n/2
package sortnets

import (
	"context"

	"sortnets/internal/bitvec"
	"sortnets/internal/canon"
	"sortnets/internal/chains"
	"sortnets/internal/comb"
	"sortnets/internal/core"
	"sortnets/internal/eval"
	"sortnets/internal/faults"
	"sortnets/internal/gen"
	"sortnets/internal/network"
	"sortnets/internal/perm"
	"sortnets/internal/search"
	"sortnets/internal/verify"
)

// Re-exported core types.
type (
	// Network is a comparator network: n lines and an ordered sequence
	// of standard comparators.
	Network = network.Network
	// Comparator is a standard comparator [a,b] with a < b (0-based).
	Comparator = network.Comparator
	// Vec is a binary input vector of up to 64 lines.
	Vec = bitvec.Vec
	// VecIterator streams binary vectors (test sets are exponential;
	// the engines consume streams).
	VecIterator = bitvec.Iterator
	// Perm is a permutation of (1 2 … n) used as a network input.
	Perm = perm.P
	// Property is a decidable network property with minimal test sets.
	Property = verify.Property
	// Result is a binary-input verdict with counterexample.
	Result = verify.Result
	// PermResult is a permutation-input verdict.
	PermResult = verify.PermResult
	// Fault is an injectable hardware defect.
	Fault = faults.Fault
	// FaultReport aggregates a fault-coverage measurement.
	FaultReport = faults.Report
)

// The three properties of the paper.
type (
	// SorterProp is the sorting property (Theorem 2.2).
	SorterProp = verify.Sorter
	// SelectorProp is the (k,n)-selector property (Theorem 2.4).
	SelectorProp = verify.Selector
	// MergerProp is the (n/2,n/2)-merger property (Theorem 2.5).
	MergerProp = verify.Merger
)

// --- Construction -----------------------------------------------------

// NewNetwork returns an empty network on n lines.
func NewNetwork(n int) *Network { return network.New(n) }

// ParseNetwork reads the paper's text notation, e.g.
// "n=4: [1,3][2,4][1,2][3,4]".
func ParseNetwork(s string) (*Network, error) { return network.Parse(s) }

// MustParseNetwork is ParseNetwork panicking on error.
func MustParseNetwork(s string) *Network { return network.MustParse(s) }

// ParseVec reads a binary string such as "0110".
func ParseVec(s string) (Vec, error) { return bitvec.FromString(s) }

// MustVec is ParseVec panicking on error.
func MustVec(s string) Vec { return bitvec.MustFromString(s) }

// SliceIterator adapts a materialized vector slice to the streaming
// iterator the engines (and WithTestStream overrides) consume.
func SliceIterator(vs []Vec) VecIterator { return bitvec.Slice(vs) }

// ParsePerm reads a permutation such as "(4 1 3 2)".
func ParsePerm(s string) (Perm, error) { return perm.Parse(s) }

// BatcherSorter returns Batcher's odd-even mergesort network for any n.
func BatcherSorter(n int) *Network { return gen.OddEvenMergeSort(n) }

// OptimalSorter returns a published size-optimal sorter for 2 ≤ n ≤ 8,
// or nil when none is tabulated.
func OptimalSorter(n int) *Network { return gen.Optimal(n) }

// BubbleSorter returns the n(n−1)/2-comparator height-1 bubble sorter.
func BubbleSorter(n int) *Network { return gen.Bubble(n) }

// OddEvenTranspositionSorter returns the n-round brick-wall height-1
// sorter of the Section 3 primitive-network discussion.
func OddEvenTranspositionSorter(n int) *Network { return gen.OddEvenTransposition(n) }

// BatcherMerger returns the (n/2,n/2) odd-even merging network.
func BatcherMerger(n int) *Network { return gen.HalfMerger(n) }

// SelectionNetwork returns a (k,n)-selection network.
func SelectionNetwork(n, k int) *Network { return gen.Selection(n, k) }

// CanonicalNetwork returns the canonical presentation of a network —
// comparators grouped into greedy parallel layers and sorted within
// each layer — computing the same function on every input. Two
// networks that differ only in the interleaving of their parallel
// layers share a canonical form (and a NetworkDigest); the sortnetd
// service keys its verdict cache on it.
func CanonicalNetwork(w *Network) *Network { return canon.Normalize(w) }

// NetworkDigest returns the stable hex SHA-256 digest of the
// network's canonical form.
func NetworkDigest(w *Network) string { return canon.DigestString(w) }

// --- The paper's test sets --------------------------------------------

// SorterTests streams the minimal 0/1 test set for sorting:
// all 2ⁿ − n − 1 non-sorted strings (Theorem 2.2(i)).
func SorterTests(n int) VecIterator { return core.SorterBinaryTests(n) }

// SorterPermTests returns the minimal permutation test set for
// sorting: C(n,⌊n/2⌋) − 1 permutations (Theorem 2.2(ii)).
func SorterPermTests(n int) []Perm { return core.SorterPermTests(n) }

// SelectorTests streams the minimal 0/1 test set for the
// (k,n)-selector property (Theorem 2.4(i)).
func SelectorTests(n, k int) VecIterator { return core.SelectorBinaryTests(n, k) }

// SelectorPermTests returns the minimal permutation test set for the
// (k,n)-selector property (Theorem 2.4(ii)).
func SelectorPermTests(n, k int) []Perm { return core.SelectorPermTests(n, k) }

// MergerTests streams the minimal 0/1 test set for the merger
// property: n²/4 strings (Theorem 2.5(i)).
func MergerTests(n int) VecIterator { return core.MergerBinaryTests(n) }

// MergerPermTests returns the n/2 permutations τᵢ (Theorem 2.5(ii)).
func MergerPermTests(n int) []Perm { return core.MergerPermTests(n) }

// AlmostSorter returns the Lemma 2.1 network H_σ sorting every binary
// input except σ — the witness that forces σ into every test set.
func AlmostSorter(sigma Vec) (*Network, error) { return core.AlmostSorter(sigma) }

// MustAlmostSorter is AlmostSorter panicking on error.
func MustAlmostSorter(sigma Vec) *Network { return core.MustAlmostSorter(sigma) }

// Certificate is the serializable lower-bound proof object: one
// Lemma 2.1 witness per non-sorted string, independently verifiable.
type Certificate = core.Certificate

// MinimalityCertificate builds the Theorem 2.2(i) lower-bound
// certificate for n lines; Verify on the result re-checks it from
// scratch.
func MinimalityCertificate(n int) Certificate { return core.MinimalityCertificate(n) }

// --- Compiled evaluation engine ---------------------------------------

// Program is the immutable compiled form of a network: comparator
// pairs pre-extracted, packed into data-independent layers, and
// specialized per width regime (n ≤ 64 word-parallel batches, n > 64
// widevec). Every verdict in this package runs on compiled programs;
// compile once when evaluating the same network many times.
type Program = eval.Program

// Engine streams test vectors through a compiled program with an
// engine-owned worker pool.
type Engine = eval.Engine

// Judge decides, word-parallel, which lanes of an evaluated 64-lane
// block violate the property under test.
type Judge = eval.Judge

// SortedJudge rejects outputs that are not sorted (the sorting
// property) in one word-parallel pass.
func SortedJudge() Judge { return eval.SortedJudge() }

// PerLaneJudge adapts a scalar acceptance predicate to the batch
// engine.
func PerLaneJudge(accepts func(in, out Vec) bool) Judge { return eval.PerLaneJudge(accepts) }

// Compile builds the compiled form of a network.
func Compile(w *Network) *Program { return eval.Compile(w) }

// NewEngine returns an engine over a compiled program. workers: 1 =
// strictly sequential (stream-order counterexamples), k > 1 = k
// workers, 0 = automatic (sequential under the engine's work
// threshold, all cores above it).
func NewEngine(p *Program, workers int) *Engine { return eval.New(p, workers) }

// CompileFault builds the compiled program of a fault-injected
// circuit; it evaluates on all engine paths exactly like a healthy
// network's program.
func CompileFault(w *Network, f Fault) *Program { return faults.Compile(w, f) }

// --- Verdicts ----------------------------------------------------------
//
// The plain facade functions below are one-line wrappers over the
// package-level default Session (see session.go): verdicts share the
// default Session's compiled-program and verdict caches, and the
// worker rule is the repository-wide one — 0 (or negative) means
// automatic, 1 means strictly sequential, k > 1 means exactly k.
// Context-aware callers should hold a Session and use its methods.

// bg discards the impossible error of a Background-context Session
// call (conveniences fail only on cancellation; programmer errors
// still panic).
func bg[T any](v T, err error) T {
	if err != nil {
		panic(err) // unreachable: context.Background() never cancels
	}
	return v
}

// CheckSorter decides whether w is a sorter using the minimal binary
// test set.
func CheckSorter(w *Network) Result { return Check(w, verify.Sorter{N: w.N}) }

// CheckSelector decides whether w is a (k,n)-selector using the
// minimal binary test set.
func CheckSelector(w *Network, k int) Result {
	return Check(w, verify.Selector{N: w.N, K: k})
}

// CheckMerger decides whether w is an (n/2,n/2)-merger using the
// minimal binary test set.
func CheckMerger(w *Network) Result { return Check(w, verify.Merger{N: w.N}) }

// Check runs any property's minimal binary test set.
func Check(w *Network, p Property) Result {
	return bg(DefaultSession().Check(context.Background(), w, p))
}

// CheckParallel is Check with an explicit engine worker count under
// the one rule: 0 (or negative) = automatic (sequential below the
// engine's work threshold, all cores above), 1 = sequential, k > 1 =
// exactly k workers.
func CheckParallel(w *Network, p Property, workers int) Result {
	return bg(DefaultSession().CheckParallel(context.Background(), w, p, workers))
}

// CheckPerms runs any property's minimal permutation test set.
func CheckPerms(w *Network, p Property) PermResult {
	return bg(DefaultSession().CheckPerms(context.Background(), w, p))
}

// GroundTruth sweeps the full binary universe — the exhaustive
// baseline the minimal test sets replace.
func GroundTruth(w *Network, p Property) Result {
	return bg(DefaultSession().GroundTruth(context.Background(), w, p))
}

// --- Bounds (closed forms) ----------------------------------------------

// SorterTestSetSize returns 2ⁿ − n − 1 as a decimal string (exact for
// any n via big integers).
func SorterTestSetSize(n int) string { return comb.SorterBinaryTestSetSize(n).String() }

// SorterPermTestSetSize returns C(n,⌊n/2⌋) − 1 as a decimal string.
func SorterPermTestSetSize(n int) string { return comb.SorterPermTestSetSize(n).String() }

// SelectorTestSetSize returns Σᵢ₌₀..k C(n,i) − k − 1 as a decimal string.
func SelectorTestSetSize(n, k int) string { return comb.SelectorBinaryTestSetSize(n, k).String() }

// MergerTestSetSize returns n²/4 as a decimal string.
func MergerTestSetSize(n int) string { return comb.MergerBinaryTestSetSize(n).String() }

// --- Faults --------------------------------------------------------------

// DetectMode selects how a fault is observed: ByProperty (the
// paper's model — outputs judged against the property) or ByGolden
// (classical stuck-at testing against a fault-free reference).
type DetectMode = faults.DetectMode

// Detection modes.
const (
	ByProperty = faults.ByProperty
	ByGolden   = faults.ByGolden
)

// EnumerateFaults lists the single-fault universe for a network.
func EnumerateFaults(w *Network) []Fault { return faults.Enumerate(w) }

// FaultCoverage measures how many detectable faults the minimal sorter
// test set exposes on w.
func FaultCoverage(w *Network) FaultReport {
	return bg(DefaultSession().FaultCoverage(context.Background(), w))
}

// FaultMatrix is the full test × fault detection table: per-test
// fault-signature bitsets built in one streamed engine pass per
// fault.
type FaultMatrix = faults.Matrix

// DetectionMatrix builds the test × fault detection matrix for w over
// its single-fault universe and the minimal sorter test set
// (by-property observation). Use faults.DetectionMatrix directly for
// other test streams or the golden-reference mode.
func DetectionMatrix(w *Network) *FaultMatrix {
	return faults.DetectionMatrix(w, faults.Enumerate(w),
		func() VecIterator { return core.SorterBinaryTests(w.N) }, faults.ByProperty)
}

// MinimalDetectingTests greedily selects a small subset of the minimal
// sorter test set that still detects every fault the full set detects
// — stuck-at test-set selection on the same machinery that verifies
// test sets.
func MinimalDetectingTests(w *Network) []Vec {
	return bg(DefaultSession().MinSet(context.Background(), w))
}

// --- Wide networks (beyond 64 lines) ----------------------------------------

// WideResult is the outcome of a wide-width certification.
type WideResult = verify.WideResult

// CheckMergerWide certifies the (n/2,n/2)-merger property at any
// width up to 4096 lines with the n²/4-vector test set — the regime
// where a zero-one sweep is physically impossible.
func CheckMergerWide(w *Network) WideResult {
	return bg(DefaultSession().Wide(context.Background(), w, verify.Merger{N: w.N}, 1))
}

// CheckSelectorWide certifies the (k,n)-selector property at any
// width with its polynomial test set.
func CheckSelectorWide(w *Network, k int) WideResult {
	return bg(DefaultSession().Wide(context.Background(), w, verify.Selector{N: w.N, K: k}, 1))
}

// CheckMergerWideParallel is CheckMergerWide with an explicit worker
// count under the one rule (0 = automatic).
func CheckMergerWideParallel(w *Network, workers int) WideResult {
	return bg(DefaultSession().Wide(context.Background(), w, verify.Merger{N: w.N}, workers))
}

// CheckSelectorWideParallel is CheckSelectorWide with an explicit
// worker count under the one rule (0 = automatic).
func CheckSelectorWideParallel(w *Network, k, workers int) WideResult {
	return bg(DefaultSession().Wide(context.Background(), w, verify.Selector{N: w.N, K: k}, workers))
}

// --- Analysis -----------------------------------------------------------------

// NetworkStats summarizes a network's structure, including the exact
// count of comparators that never fire.
type NetworkStats = network.Stats

// Equivalent reports whether two networks compute the same function
// (exact, via the zero-one principle; exponential in n).
func Equivalent(a, b *Network) bool { return network.Equivalent(a, b) }

// RemoveRedundant returns an equivalent network with every
// never-firing comparator deleted.
func RemoveRedundant(w *Network) *Network { return w.RemoveRedundant() }

// Analyze computes structural statistics for a network.
func Analyze(w *Network) NetworkStats { return w.Analyze() }

// --- Exact search (Section 3) ---------------------------------------------

// SearchOptions tunes the exact-search pipeline: closure limit,
// branch-and-bound node budget, and the worker count. Workers == 0
// (the default) runs the closure BFS and failure-family build on
// GOMAXPROCS workers with a deterministic sequential solve (witness
// test sets reproducible run-to-run); Workers > 1 also parallelizes
// the branch and bound (same minimum cardinality, witness identity
// may vary with scheduling); Workers == 1 pins every stage
// sequential.
type SearchOptions = search.Options

// ExactMinimumTestSet computes, by behaviour-space exhaustion, the
// exact minimum 0/1 test set size for the sorting property over
// networks of comparator height ≤ h on n lines (h ≥ n−1 means
// unrestricted). Feasible for small n only. The pipeline runs with
// GOMAXPROCS workers; use ExactMinimumTestSetOpts to pin it.
func ExactMinimumTestSet(n, h int) (search.TestSetResult, error) {
	return search.MinimumTestSet(n, h, search.SorterAccepts, 50_000_000)
}

// ExactMinimumTestSetOpts is ExactMinimumTestSet with explicit
// pipeline options.
func ExactMinimumTestSetOpts(n, h int, opt SearchOptions) (search.TestSetResult, error) {
	return search.MinimumTestSetOpts(n, h, search.SorterAccepts, opt)
}

// ExactMinimumPermTestSet is the permutation-input counterpart of
// ExactMinimumTestSet: the exact minimum number of permutation tests
// for sorting over networks of height ≤ h on n lines (n ≤ 6).
func ExactMinimumPermTestSet(n, h int) (search.PermTestSetResult, error) {
	return search.MinimumPermTestSet(n, h, search.PermSorterAccepts, 50_000_000, 0)
}

// ExactMinimumPermTestSetOpts is ExactMinimumPermTestSet with explicit
// pipeline options.
func ExactMinimumPermTestSetOpts(n, h int, opt SearchOptions) (search.PermTestSetResult, error) {
	return search.MinimumPermTestSetOpts(n, h, search.PermSorterAccepts, opt)
}

// SorterPermutationChains exposes the symmetric chain decomposition
// used to build the permutation test sets.
func SorterPermutationChains(n int) []chains.Chain { return chains.Decompose(n) }
