package sortnets

import (
	"math/rand"
	"testing"

	"sortnets/internal/network"
	"sortnets/internal/verify"
)

// Integration tests across the whole stack through the public facade.

func TestFacadeQuickstartFlow(t *testing.T) {
	w := BatcherSorter(8)
	if r := CheckSorter(w); !r.Holds {
		t.Fatalf("Batcher sorter rejected: %s", r)
	}
	sigma := MustVec("0110")
	h := MustAlmostSorter(sigma)
	r := CheckSorter(h)
	if r.Holds {
		t.Fatal("almost-sorter passed")
	}
	if r.Counterexample != sigma {
		t.Fatalf("counterexample %s, want %s", r.Counterexample, sigma)
	}
}

func TestFacadeParseAndCheck(t *testing.T) {
	w, err := ParseNetwork("n=4: [1,3][2,4][1,2][3,4]")
	if err != nil {
		t.Fatal(err)
	}
	if CheckSorter(w).Holds {
		t.Error("the Fig. 1 network is not a sorter")
	}
	if _, err := ParseNetwork("n=4: [4,1]"); err == nil {
		t.Error("nonstandard comparator accepted")
	}
	if _, err := ParseVec("012"); err == nil {
		t.Error("bad vector accepted")
	}
	if _, err := ParsePerm("(1 1)"); err == nil {
		t.Error("bad permutation accepted")
	}
}

func TestFacadeCanonicalDigest(t *testing.T) {
	a := MustParseNetwork("n=4: [1,3][2,4][1,2][3,4]")
	b := MustParseNetwork("n=4: [2,4][1,3][1,2][3,4]") // first layer interleaved
	if NetworkDigest(a) != NetworkDigest(b) {
		t.Error("within-layer reordering changed the digest")
	}
	c := CanonicalNetwork(a)
	if NetworkDigest(c) != NetworkDigest(a) {
		t.Error("canonicalization changed the digest")
	}
	for x := uint64(0); x < 16; x++ {
		in := Vec{N: 4, Bits: x}
		if c.ApplyVec(in) != a.ApplyVec(in) {
			t.Fatalf("canonical form diverges on %s", in)
		}
	}
}

func TestFacadeSelectorAndMerger(t *testing.T) {
	if r := CheckSelector(SelectionNetwork(8, 3), 3); !r.Holds {
		t.Errorf("selection network rejected: %s", r)
	}
	if r := CheckMerger(BatcherMerger(10)); !r.Holds {
		t.Errorf("merger rejected: %s", r)
	}
	if CheckMerger(NewNetwork(6)).Holds {
		t.Error("empty network accepted as merger")
	}
	// A merger is not a sorter; the sorter test set must catch it.
	if CheckSorter(BatcherMerger(8)).Holds {
		t.Error("merger accepted as sorter")
	}
}

func TestFacadeTestSetSizes(t *testing.T) {
	if SorterTestSetSize(10) != "1013" {
		t.Errorf("sorter size: %s", SorterTestSetSize(10))
	}
	if SorterPermTestSetSize(4) != "5" {
		t.Errorf("perm size: %s", SorterPermTestSetSize(4))
	}
	if SelectorTestSetSize(4, 2) != "8" {
		t.Errorf("selector size: %s", SelectorTestSetSize(4, 2))
	}
	if MergerTestSetSize(8) != "16" {
		t.Errorf("merger size: %s", MergerTestSetSize(8))
	}
	// Exact sizes scale beyond enumerable n.
	if len(SorterTestSetSize(100)) < 30 {
		t.Error("big-n size should be a 31-digit number")
	}
}

func TestFacadePermTests(t *testing.T) {
	w := OptimalSorter(6)
	if w == nil {
		t.Fatal("no optimal 6-sorter")
	}
	if r := CheckPerms(w, verify.Sorter{N: 6}); !r.Holds {
		t.Fatalf("perm tests rejected real sorter: %s", r)
	}
	if len(SorterPermTests(6)) != 19 {
		t.Errorf("C(6,3)-1 = 19 perms expected")
	}
	if len(MergerPermTests(8)) != 4 {
		t.Error("merger perm tests should be n/2")
	}
	if len(SelectorPermTests(8, 2)) != 27 {
		t.Error("C(8,2)-1 = 27 selector perms expected")
	}
}

func TestFacadeVerdictAgreesWithGroundTruthEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(8)
		w := network.Random(n, rng.Intn(n*n), rng)
		p := verify.Sorter{N: n}
		if Check(w, p).Holds != GroundTruth(w, p).Holds {
			t.Fatalf("facade verdict mismatch for %s", w)
		}
		if CheckParallel(w, p, 2).Holds != GroundTruth(w, p).Holds {
			t.Fatalf("parallel facade verdict mismatch for %s", w)
		}
	}
}

func TestFacadeFaultCoverage(t *testing.T) {
	rep := FaultCoverage(OptimalSorter(5))
	if rep.Faults == 0 || rep.Detected > rep.Detectable {
		t.Errorf("bad report %+v", rep)
	}
	if rep.Coverage() <= 0 {
		t.Error("zero coverage on a real sorter is impossible")
	}
}

func TestFacadeDetectionMatrix(t *testing.T) {
	w := OptimalSorter(5)
	m := DetectionMatrix(w)
	if got, want := m.Report(), FaultCoverage(w); got != want {
		t.Errorf("matrix report %+v disagrees with FaultCoverage %+v", got, want)
	}
	picks := MinimalDetectingTests(w)
	if len(picks) == 0 || len(picks) > len(m.Tests) {
		t.Fatalf("implausible minimal detecting set size %d", len(picks))
	}
	// The selection must preserve detected-fault coverage.
	remaining := m.Detected()
	for ti, tau := range m.Tests {
		for _, sel := range picks {
			if sel == tau {
				remaining.DiffWith(m.Sigs[ti])
			}
		}
	}
	if !remaining.Empty() {
		t.Errorf("selected tests miss faults %s", remaining)
	}
}

func TestFacadeExactSearchOpts(t *testing.T) {
	seq, err := ExactMinimumTestSetOpts(4, 2, SearchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ExactMinimumTestSetOpts(4, 2, SearchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Size != par.Size || seq.Size != 11 {
		t.Errorf("sequential %d vs parallel %d, want 11", seq.Size, par.Size)
	}
	p, err := ExactMinimumPermTestSetOpts(4, 3, SearchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Exact || p.Size != 5 {
		t.Errorf("perm minimum %d (exact=%v), want 5", p.Size, p.Exact)
	}
}

func TestFacadeExactSearch(t *testing.T) {
	r, err := ExactMinimumTestSet(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size != 11 {
		t.Errorf("exact minimum for n=4: %d, want 11", r.Size)
	}
	r1, err := ExactMinimumTestSet(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Size != 4 {
		t.Errorf("height-1 minimum for n=5: %d, want 4", r1.Size)
	}
}

func TestFacadeChains(t *testing.T) {
	cs := SorterPermutationChains(6)
	if len(cs) != 20 {
		t.Errorf("C(6,3)=20 chains expected, got %d", len(cs))
	}
}

func TestFacadeCompiledEngine(t *testing.T) {
	w := BatcherSorter(10)
	prog := Compile(w)
	if prog.Size() != w.Size() || !prog.Pure() {
		t.Fatalf("compiled program has %d ops (pure=%v), want %d", prog.Size(), prog.Pure(), w.Size())
	}
	for _, workers := range []int{1, 2, 0} {
		eng := NewEngine(prog, workers)
		v := eng.Run(SorterTests(10), SortedJudge())
		if !v.Holds {
			t.Fatalf("workers=%d: compiled engine rejected a Batcher sorter", workers)
		}
		if workers == 1 && v.TestsRun != 1<<10-10-1 {
			t.Fatalf("engine ran %d tests, want the full minimal set", v.TestsRun)
		}
	}
	// A per-lane judge must agree with the word-parallel one.
	custom := NewEngine(prog, 1).Run(SorterTests(10),
		PerLaneJudge(func(in, out Vec) bool { return out.IsSorted() }))
	if !custom.Holds {
		t.Fatal("per-lane judge rejected a Batcher sorter")
	}
}

func TestFacadeCompileFault(t *testing.T) {
	w := BatcherSorter(6)
	fs := EnumerateFaults(w)
	p := CompileFault(w, fs[0])
	if p.Pure() {
		t.Error("bypass-fault program should not be pure")
	}
	// A bypassed comparator in a Batcher sorter must fail some input.
	found := false
	it := SorterTests(6)
	for {
		v, ok := it.Next()
		if !ok {
			break
		}
		if !p.Apply(v).IsSorted() {
			found = true
			break
		}
	}
	if !found {
		t.Error("bypassed comparator never visible on the minimal test set")
	}
}

func TestFacadeWideParallelChecks(t *testing.T) {
	m := BatcherMerger(128)
	r := CheckMergerWideParallel(m, 0)
	if !r.Holds || r.TestsRun != 4096 {
		t.Fatalf("pooled wide merger: %s", r)
	}
	if !CheckSelectorWideParallel(SelectionNetwork(96, 2), 2, 2).Holds {
		t.Error("pooled wide selector rejected")
	}
}

func TestFacadeWideCertification(t *testing.T) {
	m := BatcherMerger(128)
	r := CheckMergerWide(m)
	if !r.Holds || r.TestsRun != 4096 {
		t.Fatalf("wide merger: %s", r)
	}
	s := SelectionNetwork(96, 2)
	if !CheckSelectorWide(s, 2).Holds {
		t.Error("wide selector rejected")
	}
	if CheckSelectorWide(SelectionNetwork(96, 1), 2).Holds {
		t.Error("under-provisioned wide selector accepted")
	}
}

func TestFacadeAnalysis(t *testing.T) {
	w := OptimalSorter(5).Clone().AddPair(3, 4) // pad with a dead comparator
	st := Analyze(w)
	if st.Redundant != 1 {
		t.Errorf("stats: %+v", st)
	}
	r := RemoveRedundant(w)
	if r.Size() != w.Size()-1 {
		t.Errorf("reduced size %d", r.Size())
	}
	if !Equivalent(w, r) {
		t.Error("reduction changed behaviour")
	}
}

func TestFacadeExactPermSearch(t *testing.T) {
	r, err := ExactMinimumPermTestSet(4, 3)
	if err != nil || !r.Exact || r.Size != 5 {
		t.Fatalf("perm search: %v %v", r, err)
	}
	r1, err := ExactMinimumPermTestSet(5, 1)
	if err != nil || !r1.Exact || r1.Size != 1 {
		t.Fatalf("de Bruijn search: %v %v", r1, err)
	}
}

func TestFacadeBuildersSortOrMerge(t *testing.T) {
	for n := 2; n <= 9; n++ {
		if !CheckSorter(BubbleSorter(n)).Holds {
			t.Errorf("bubble %d", n)
		}
		if !CheckSorter(OddEvenTranspositionSorter(n)).Holds {
			t.Errorf("OET %d", n)
		}
	}
	if OddEvenTranspositionSorter(7).Height() != 1 {
		t.Error("OET should be height-1")
	}
}
