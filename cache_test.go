package sortnets

import "testing"

func TestLRUEviction(t *testing.T) {
	c := newLRU[[]byte](2)
	c.Add("a", []byte("A"))
	c.Add("b", []byte("B"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Add("c", []byte("C")) // evicts b (least recently used)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived")
	}
	if c.Len() != 2 || c.Evictions() != 1 {
		t.Errorf("len=%d evictions=%d", c.Len(), c.Evictions())
	}
	c.Add("a", []byte("A2"))
	if v, _ := c.Get("a"); string(v) != "A2" {
		t.Errorf("update lost: %q", v)
	}
	if c.Len() != 2 {
		t.Errorf("update grew the cache: %d", c.Len())
	}
	if c.Cap() != 2 {
		t.Errorf("cap %d, want 2", c.Cap())
	}
}
