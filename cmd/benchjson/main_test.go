package main

import "testing"

const sample = `goos: linux
goarch: amd64
pkg: sortnets
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkE2SorterPermTestSet 	   42643	     56126 ns/op	  118392 B/op	      19 allocs/op
BenchmarkE14PermSpace-8      	   15914	    148877 ns/op	   88984 B/op	     246 allocs/op
BenchmarkE9YaoComparison     	   12345	     99.5 ns/op
PASS
ok  	sortnets	5.500s
`

func TestParseBench(t *testing.T) {
	marks, err := parseBench(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(marks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(marks), marks)
	}
	e2 := marks["BenchmarkE2SorterPermTestSet"]
	if e2.Iterations != 42643 || e2.NsPerOp != 56126 || e2.BytesPerOp != 118392 || e2.AllocsPerOp != 19 {
		t.Errorf("E2 metrics wrong: %+v", e2)
	}
	// The -8 GOMAXPROCS suffix must be stripped.
	e14, ok := marks["BenchmarkE14PermSpace"]
	if !ok || e14.NsPerOp != 148877 {
		t.Errorf("E14 suffix not stripped or metrics wrong: %+v (ok=%v)", e14, ok)
	}
	// Fractional ns/op without -benchmem columns.
	if e9 := marks["BenchmarkE9YaoComparison"]; e9.NsPerOp != 99.5 || e9.AllocsPerOp != 0 {
		t.Errorf("E9 metrics wrong: %+v", e9)
	}
}

func TestParseBenchEmpty(t *testing.T) {
	if _, err := parseBench("PASS\nok \tsortnets\t0.1s\n"); err == nil {
		t.Error("expected error on output with no benchmarks")
	}
}
