// Command benchjson runs the repository's benchmark suite and writes
// the results as machine-readable JSON (benchmark name → ns/op,
// B/op, allocs/op), so the performance trajectory is tracked commit
// over commit instead of living in prose. The E-series benchmarks in
// the repository root reproduce the paper's experiments; the default
// pattern runs exactly those.
//
// Usage:
//
//	go run ./cmd/benchjson                    # writes BENCH.json
//	go run ./cmd/benchjson -out BENCH_PR2.json   # a pinned snapshot
//	go run ./cmd/benchjson -bench 'BenchmarkE(2|14)' -benchtime 1s
//
// The output maps each benchmark to its metrics plus a small header
// (Go version, GOMAXPROCS, bench time) for comparability:
//
//	{
//	  "go": "go1.24.0", "gomaxprocs": 4, "benchtime": "0.2s",
//	  "benchmarks": {
//	    "BenchmarkE2SorterPermTestSet": {"ns_per_op": 56126, "bytes_per_op": 118392, "allocs_per_op": 19},
//	    ...
//	  }
//	}
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// Metrics is one benchmark's measurement.
type Metrics struct {
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Result is the file layout.
type Result struct {
	Go         string             `json:"go"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Benchtime  string             `json:"benchtime"`
	Pattern    string             `json:"pattern"`
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

func main() {
	bench := flag.String("bench", "^BenchmarkE", "benchmark name pattern (go test -bench)")
	benchtime := flag.String("benchtime", "0.2s", "time per benchmark (go test -benchtime)")
	pkg := flag.String("pkg", ".", "package to benchmark")
	out := flag.String("out", "BENCH.json", "output JSON path")
	flag.Parse()

	if err := run(*bench, *benchtime, *pkg, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
}

func run(bench, benchtime, pkg, out string) error {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", bench, "-benchtime", benchtime, "-benchmem", pkg)
	raw, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return fmt.Errorf("go test failed: %v\n%s", err, ee.Stderr)
		}
		return err
	}
	marks, err := parseBench(string(raw))
	if err != nil {
		return err
	}
	res := Result{
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchtime:  benchtime,
		Pattern:    bench,
		Benchmarks: marks,
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchjson: %d benchmarks -> %s\n", len(marks), out)
	return nil
}

// parseBench extracts benchmark lines from go test output. A line
// looks like:
//
//	BenchmarkE2SorterPermTestSet  42643  56126 ns/op  118392 B/op  19 allocs/op
//
// The -N GOMAXPROCS suffix (BenchmarkFoo-8) is stripped so results
// compare across machines.
func parseBench(out string) (map[string]Metrics, error) {
	marks := map[string]Metrics{}
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue
		}
		var m Metrics
		m.Iterations = iters
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				m.NsPerOp, err = strconv.ParseFloat(val, 64)
			case "B/op":
				m.BytesPerOp, err = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				m.AllocsPerOp, err = strconv.ParseInt(val, 10, 64)
			}
			if err != nil {
				return nil, fmt.Errorf("bad benchmark line %q: %v", line, err)
			}
		}
		marks[name] = m
	}
	if len(marks) == 0 {
		return nil, errors.New("no benchmark lines found in go test output")
	}
	return marks, nil
}
