// Command streamtab generates and inspects persisted test-stream
// tables (package streamtab): the paper's minimal binary test sets,
// pre-enumerated once and stored with a digest header so a serving
// process (sortnetd -streamtab-dir) can replay them mmap-backed
// instead of re-deriving the stream on every verdict.
//
// Usage:
//
//	streamtab gen  -dir tables -prop sorter   -n 8        # one table
//	streamtab gen  -dir tables -prop sorter   -n 4..16    # a range of n
//	streamtab gen  -dir tables -prop selector -n 12 -k 3
//	streamtab gen  -dir tables -prop merger   -n 8..12
//	streamtab list -dir tables                            # validate + describe
//
// gen writes <prop>_n<N>.snstab (selector_k<K>_n<N>.snstab for
// selectors) atomically, overwriting an existing table of the same
// identity. list opens every *.snstab in the directory with full
// digest verification — exactly the check the server performs — and
// reports each table's identity, vector count and size.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"sortnets/internal/bitvec"
	"sortnets/internal/core"
	"sortnets/internal/streamtab"
)

// maxGenLines caps enumeration: a sorter table for n has 2ⁿ−n−1
// vectors (n=24 is already a 128 MiB payload).
const maxGenLines = 24

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "streamtab: usage: streamtab <gen|list> [flags]")
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "gen":
		err = runGen(os.Stdout, args)
	case "list":
		err = runList(os.Stdout, args)
	default:
		err = fmt.Errorf("unknown subcommand %q (want gen or list)", cmd)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamtab:", err)
		os.Exit(2)
	}
}

func runGen(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	dir := fs.String("dir", "tables", "output directory")
	prop := fs.String("prop", "sorter", "property: sorter | selector | merger")
	nSpec := fs.String("n", "8", "line count, or an inclusive range like 4..16")
	k := fs.Int("k", 1, "selection arity (selector only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	lo, hi, err := parseRange(*nSpec)
	if err != nil {
		return err
	}
	out := bufio.NewWriter(w)
	defer out.Flush()
	for n := lo; n <= hi; n++ {
		skip, err := checkShape(*prop, n, *k)
		if err != nil {
			return err
		}
		if skip {
			continue
		}
		it, err := streamFor(*prop, n, *k)
		if err != nil {
			return err
		}
		h, err := streamtab.Write(*dir, streamtab.Header{
			Property: *prop, N: n, K: kFor(*prop, *k), Tool: "streamtab gen",
		}, it)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s: %d vectors, %d payload bytes, sha256 %s\n",
			streamtab.FileName(h.Property, h.N, h.K), h.Count, h.PayloadBytes, h.SHA256[:12])
	}
	return nil
}

// checkShape validates (prop, n, k) and reports whether a range
// generation should silently skip this n (odd n for mergers).
func checkShape(prop string, n, k int) (skip bool, err error) {
	if n < 1 || n > maxGenLines {
		return false, fmt.Errorf("n=%d out of range [1, %d]", n, maxGenLines)
	}
	switch prop {
	case "selector":
		if k < 1 || k > n {
			return false, fmt.Errorf("selector k=%d out of range [1, n=%d]", k, n)
		}
	case "merger":
		if n%2 != 0 {
			return true, nil
		}
	}
	return false, nil
}

func kFor(prop string, k int) int {
	if prop == "selector" {
		return k
	}
	return 0
}

func streamFor(prop string, n, k int) (bitvec.Iterator, error) {
	switch prop {
	case "sorter":
		return core.SorterBinaryTests(n), nil
	case "selector":
		return core.SelectorBinaryTests(n, k), nil
	case "merger":
		return core.MergerBinaryTests(n), nil
	}
	return nil, fmt.Errorf("unknown property %q (want sorter, selector or merger)", prop)
}

// parseRange parses "8" or "4..16" into an inclusive [lo, hi].
func parseRange(spec string) (lo, hi int, err error) {
	if a, b, ok := strings.Cut(spec, ".."); ok {
		lo, err = strconv.Atoi(a)
		if err == nil {
			hi, err = strconv.Atoi(b)
		}
		if err != nil || lo > hi {
			return 0, 0, fmt.Errorf("bad range %q (want lo..hi)", spec)
		}
		return lo, hi, nil
	}
	lo, err = strconv.Atoi(spec)
	if err != nil {
		return 0, 0, fmt.Errorf("bad n %q", spec)
	}
	return lo, lo, nil
}

func runList(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("list", flag.ContinueOnError)
	dir := fs.String("dir", "tables", "table directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	infos, err := streamtab.List(*dir)
	if err != nil {
		return err
	}
	out := bufio.NewWriter(w)
	defer out.Flush()
	if len(infos) == 0 {
		fmt.Fprintf(out, "no tables in %s\n", *dir)
		return nil
	}
	bad := 0
	for _, info := range infos {
		if info.Err != nil {
			bad++
			fmt.Fprintf(out, "%-28s INVALID: %v\n", info.File, info.Err)
			continue
		}
		h := info.Header
		id := fmt.Sprintf("%s n=%d", h.Property, h.N)
		if h.Property == "selector" {
			id = fmt.Sprintf("%s n=%d k=%d", h.Property, h.N, h.K)
		}
		fmt.Fprintf(out, "%-28s %-22s %8d vectors %10d bytes  sha256 %s\n",
			info.File, id, h.Count, info.Bytes, h.SHA256[:12])
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d tables invalid", bad, len(infos))
	}
	return nil
}
