package main

import (
	"path/filepath"
	"strings"
	"testing"

	"sortnets/internal/bitvec"
	"sortnets/internal/core"
	"sortnets/internal/streamtab"
)

func TestGenAndList(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := runGen(&out, []string{"-dir", dir, "-prop", "sorter", "-n", "4..8"}); err != nil {
		t.Fatalf("gen sorter: %v", err)
	}
	if err := runGen(&out, []string{"-dir", dir, "-prop", "selector", "-n", "10", "-k", "3"}); err != nil {
		t.Fatalf("gen selector: %v", err)
	}
	// The merger range skips odd n rather than failing.
	if err := runGen(&out, []string{"-dir", dir, "-prop", "merger", "-n", "6..9"}); err != nil {
		t.Fatalf("gen merger: %v", err)
	}

	infos, err := streamtab.List(dir)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	// sorter n=4..8 (5) + selector (1) + merger n=6,8 (2).
	if len(infos) != 8 {
		t.Fatalf("generated %d tables, want 8", len(infos))
	}
	for _, info := range infos {
		if info.Err != nil {
			t.Fatalf("%s: %v", info.File, info.Err)
		}
	}

	// Spot-check one table against live enumeration.
	tab, err := streamtab.Open(filepath.Join(dir, streamtab.FileName("selector", 10, 3)))
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()
	want := bitvec.Collect(core.SelectorBinaryTests(10, 3))
	got := bitvec.Collect(tab.Iter())
	if len(got) != len(want) {
		t.Fatalf("selector table: %d vectors, live %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("selector table vector %d: %s, live %s", i, got[i], want[i])
		}
	}

	var listOut strings.Builder
	if err := runList(&listOut, []string{"-dir", dir}); err != nil {
		t.Fatalf("list: %v", err)
	}
	if !strings.Contains(listOut.String(), "selector_k3_n10.snstab") {
		t.Fatalf("list output missing selector table:\n%s", listOut.String())
	}
}

func TestGenRejectsBadShapes(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	for _, args := range [][]string{
		{"-dir", dir, "-prop", "sorter", "-n", "0"},
		{"-dir", dir, "-prop", "sorter", "-n", "25"},
		{"-dir", dir, "-prop", "sorter", "-n", "9..4"},
		{"-dir", dir, "-prop", "selector", "-n", "8", "-k", "9"},
		{"-dir", dir, "-prop", "mystery", "-n", "8"},
	} {
		if err := runGen(&out, args); err == nil {
			t.Fatalf("gen %v: accepted", args)
		}
	}
}
