package main

import "testing"

func TestRunAllModes(t *testing.T) {
	cases := []struct {
		n, height int
		prop      string
		k         int
		inputs    string
	}{
		{4, 0, "sorter", 1, "binary"},
		{4, 1, "sorter", 1, "binary"},
		{4, 2, "sorter", 1, "perm"},
		{4, 0, "selector", 2, "binary"},
		{4, 0, "selector", 2, "perm"},
		{4, 0, "merger", 1, "binary"},
		{4, 0, "merger", 1, "perm"},
	}
	for _, c := range cases {
		if err := run(c.n, c.height, c.prop, c.k, c.inputs, 5_000_000, true, 1); err != nil {
			t.Errorf("%+v: %v", c, err)
		}
	}
	// The pipeline flags: a pooled run must succeed identically.
	if err := run(4, 0, "sorter", 1, "binary", 5_000_000, false, 4); err != nil {
		t.Errorf("workers=4: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(5, 0, "merger", 1, "binary", 1000, false, 0); err == nil {
		t.Error("odd merger should error")
	}
	if err := run(5, 0, "merger", 1, "perm", 1000, false, 0); err == nil {
		t.Error("odd perm merger should error")
	}
	if err := run(4, 0, "unknown", 1, "binary", 1000, false, 0); err == nil {
		t.Error("unknown property should error")
	}
	if err := run(4, 0, "unknown", 1, "perm", 1000, false, 0); err == nil {
		t.Error("unknown perm property should error")
	}
	if err := run(4, 0, "sorter", 1, "ternary", 1000, false, 0); err == nil {
		t.Error("unknown input model should error")
	}
	if err := run(4, 0, "sorter", 1, "binary", 10, false, 0); err == nil {
		t.Error("tiny closure limit should error")
	}
}
