// Command minsearch computes exact minimum test sets by exhausting the
// behaviour space of comparator networks — the engine behind
// experiments E10/E11/E14 and the tool for exploring the paper's
// Section 3 open questions.
//
// Usage:
//
//	minsearch -n 4                      # sorter, unrestricted, 0/1 inputs
//	minsearch -n 5 -height 2            # the paper's open question
//	minsearch -n 4 -inputs perm         # permutation inputs
//	minsearch -n 4 -prop selector -k 2
//	minsearch -n 4 -prop merger -show   # print the witness test set
package main

import (
	"flag"
	"fmt"
	"os"

	"sortnets/internal/search"
)

func main() {
	n := flag.Int("n", 4, "number of lines (binary: n ≤ 6; perm: n ≤ 6)")
	height := flag.Int("height", 0, "comparator height bound (0 = unrestricted)")
	prop := flag.String("prop", "sorter", "property: sorter | selector | merger")
	k := flag.Int("k", 1, "selection arity (selector only)")
	inputs := flag.String("inputs", "binary", "input model: binary | perm")
	limit := flag.Int("limit", 20_000_000, "behaviour closure cap")
	show := flag.Bool("show", false, "print the minimum test set itself")
	flag.Parse()

	if err := run(*n, *height, *prop, *k, *inputs, *limit, *show); err != nil {
		fmt.Fprintln(os.Stderr, "minsearch:", err)
		os.Exit(2)
	}
}

func run(n, height int, prop string, k int, inputs string, limit int, show bool) error {
	h := height
	if h <= 0 {
		h = n - 1
	}
	switch inputs {
	case "binary":
		var acc search.Acceptance
		switch prop {
		case "sorter":
			acc = search.SorterAccepts
		case "selector":
			acc = search.SelectorAccepts(k)
		case "merger":
			if n%2 != 0 {
				return fmt.Errorf("merger needs even n")
			}
			acc = search.MergerAccepts
		default:
			return fmt.Errorf("unknown property %q", prop)
		}
		r, err := search.MinimumTestSet(n, h, acc, limit)
		if err != nil {
			return err
		}
		fmt.Println(r)
		if show {
			for _, v := range r.Tests {
				fmt.Println(" ", v)
			}
		}
	case "perm":
		var acc search.PermAcceptance
		switch prop {
		case "sorter":
			acc = search.PermSorterAccepts
		case "selector":
			acc = search.PermSelectorAccepts(k)
		case "merger":
			if n%2 != 0 {
				return fmt.Errorf("merger needs even n")
			}
			acc = search.PermMergerAccepts
		default:
			return fmt.Errorf("unknown property %q", prop)
		}
		r, err := search.MinimumPermTestSet(n, h, acc, limit, 0)
		if err != nil {
			return err
		}
		fmt.Println(r)
		if show {
			for _, p := range r.Tests {
				fmt.Println(" ", p)
			}
		}
	default:
		return fmt.Errorf("unknown input model %q", inputs)
	}
	return nil
}
