// Command minsearch computes exact minimum test sets by exhausting the
// behaviour space of comparator networks — the engine behind
// experiments E10/E11/E14 and the tool for exploring the paper's
// Section 3 open questions.
//
// Usage:
//
//	minsearch -n 4                      # sorter, unrestricted, 0/1 inputs
//	minsearch -n 5 -height 2            # the paper's open question
//	minsearch -n 4 -inputs perm         # permutation inputs
//	minsearch -n 4 -prop selector -k 2
//	minsearch -n 4 -prop merger -show   # print the witness test set
//	minsearch -n 5 -height 2 -workers 8 # parallel closure/family/solve
//	minsearch -n 5 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Profiling and parallelism flags:
//
//	-workers N     worker count for the pipeline; 0 (default) runs the
//	               closure BFS and failure-family build on GOMAXPROCS
//	               workers with a deterministic sequential solve, 1
//	               pins every stage sequential, N > 1 also parallelizes
//	               the branch and bound (same minimum, witness may vary)
//	-cpuprofile F  write a pprof CPU profile of the search to F
//	-memprofile F  write a pprof heap profile (taken after the search,
//	               post-GC) to F
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"sortnets/internal/search"
)

func main() {
	n := flag.Int("n", 4, "number of lines (binary: n ≤ 6; perm: n ≤ 6)")
	height := flag.Int("height", 0, "comparator height bound (0 = unrestricted)")
	prop := flag.String("prop", "sorter", "property: sorter | selector | merger")
	k := flag.Int("k", 1, "selection arity (selector only)")
	inputs := flag.String("inputs", "binary", "input model: binary | perm")
	limit := flag.Int("limit", 20_000_000, "behaviour closure cap")
	show := flag.Bool("show", false, "print the minimum test set itself")
	workers := flag.Int("workers", 0, "pipeline workers: 0 = automatic (parallel closure + deterministic solve), 1 = fully sequential, k > 1 also parallelizes the solver")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	flag.Parse()

	// Profiles are stopped/written explicitly (not deferred): the
	// error path below exits with os.Exit, which would skip defers and
	// truncate the profile of a failing search.
	var cpuFile *os.File
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "minsearch:", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "minsearch:", err)
			os.Exit(2)
		}
		cpuFile = f
	}

	err := run(*n, *height, *prop, *k, *inputs, *limit, *show, *workers)

	if cpuFile != nil {
		pprof.StopCPUProfile()
		cpuFile.Close()
	}

	// Profile I/O problems are reported but must not mask a search
	// error, so both are printed before deciding the exit code.
	failed := err != nil
	if *memprofile != "" {
		if merr := writeHeapProfile(*memprofile); merr != nil {
			fmt.Fprintln(os.Stderr, "minsearch:", merr)
			failed = true
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "minsearch:", err)
	}
	if failed {
		os.Exit(2)
	}
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // settle allocations so the heap profile reflects retention
	return pprof.WriteHeapProfile(f)
}

func run(n, height int, prop string, k int, inputs string, limit int, show bool, workers int) error {
	h := height
	if h <= 0 {
		h = n - 1
	}
	opt := search.Options{Limit: limit, Workers: workers}
	switch inputs {
	case "binary":
		var acc search.Acceptance
		switch prop {
		case "sorter":
			acc = search.SorterAccepts
		case "selector":
			acc = search.SelectorAccepts(k)
		case "merger":
			if n%2 != 0 {
				return errors.New("merger needs even n")
			}
			acc = search.MergerAccepts
		default:
			return fmt.Errorf("unknown property %q", prop)
		}
		r, err := search.MinimumTestSetOpts(n, h, acc, opt)
		if err != nil {
			return err
		}
		fmt.Println(r)
		if show {
			for _, v := range r.Tests {
				fmt.Println(" ", v)
			}
		}
	case "perm":
		var acc search.PermAcceptance
		switch prop {
		case "sorter":
			acc = search.PermSorterAccepts
		case "selector":
			acc = search.PermSelectorAccepts(k)
		case "merger":
			if n%2 != 0 {
				return errors.New("merger needs even n")
			}
			acc = search.PermMergerAccepts
		default:
			return fmt.Errorf("unknown property %q", prop)
		}
		r, err := search.MinimumPermTestSetOpts(n, h, acc, opt)
		if err != nil {
			return err
		}
		fmt.Println(r)
		if show {
			for _, p := range r.Tests {
				fmt.Println(" ", p)
			}
		}
	default:
		return fmt.Errorf("unknown input model %q", inputs)
	}
	return nil
}
