package main

import (
	"context"
	"errors"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"sortnets/internal/chaos"
	"sortnets/internal/serve"
)

func TestRunBuildsAndChecks(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "0110", false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"sigma = 0110", "H_sigma", "not sorted", "self-check", "ok"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q:\n%s", frag, out)
		}
	}
}

func TestRunQuiet(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "10010", true); err != nil {
		t.Fatal(err)
	}
	out := strings.TrimSpace(sb.String())
	if !strings.HasPrefix(out, "n=5:") || strings.Contains(out, "self-check") {
		t.Errorf("quiet output wrong: %q", out)
	}
}

func TestLoadModeAgainstLiveService(t *testing.T) {
	s := serve.NewService(serve.Config{Workers: 2, CacheSize: 16})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	var sb strings.Builder
	// 40 requests over 4 distinct networks: most must be cache hits.
	cfg := loadCfg{targets: []string{ts.URL}, requests: 40, concurrency: 4,
		n: 6, size: 8, distinct: 4, batch: 1, seed: 1}
	if err := loadRun(context.Background(), &sb, cfg); err != nil {
		t.Fatalf("loadRun: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, frag := range []string{"req/s", "0 failed", "verdict checksum", "server /stats"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in:\n%s", frag, out)
		}
	}
	ep := s.Stats().Endpoints["verify"]
	if ep.Requests != 40 {
		t.Errorf("server saw %d requests, want 40", ep.Requests)
	}
	if ep.Computes != 4 {
		t.Errorf("server ran %d computes for 4 distinct networks, want 4", ep.Computes)
	}
}

// TestLoadModeBatchAgainstLiveService is the CI batch-path smoke
// step: the pipelined -batch mode against an in-process sortnetd,
// all-miss (every request distinct), must complete with zero failures
// and actually exercise the server's dedup/grouped machinery.
func TestLoadModeBatchAgainstLiveService(t *testing.T) {
	s := serve.NewService(serve.Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	var sb strings.Builder
	// 60 distinct networks in batches of 20: all computed, grouped.
	cfg := loadCfg{targets: []string{ts.URL}, requests: 60, concurrency: 2,
		n: 6, size: 8, distinct: 60, batch: 20, seed: 1}
	if err := loadRun(context.Background(), &sb, cfg); err != nil {
		t.Fatalf("loadRun -batch: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, frag := range []string{"batch=20", "req/s", "0 failed", "server /stats"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in:\n%s", frag, out)
		}
	}
	st := s.Stats()
	if ep := st.Endpoints["verify"]; ep.Requests != 60 {
		t.Errorf("server saw %d verify requests, want 60", ep.Requests)
	}
	if st.Batch.Batches == 0 || st.Batch.Grouped == 0 {
		t.Errorf("batch mode never hit the grouped pipeline: %+v", st.Batch)
	}
}

func TestLoadModeValidation(t *testing.T) {
	var sb strings.Builder
	base := loadCfg{targets: []string{"http://127.0.0.1:1"}, requests: 1,
		concurrency: 1, n: 6, size: 8, distinct: 1, batch: 1, seed: 1}

	cfg := base
	cfg.requests = 0
	if err := loadRun(context.Background(), &sb, cfg); err == nil {
		t.Error("zero requests should error")
	}
	cfg = base
	cfg.n = 1
	if err := loadRun(context.Background(), &sb, cfg); err == nil {
		t.Error("n=1 should error")
	}
	cfg = base
	cfg.targets = nil
	if err := loadRun(context.Background(), &sb, cfg); err == nil {
		t.Error("no targets should error")
	}
	cfg = base
	cfg.chaosSpec = "explode@0.5"
	if err := loadRun(context.Background(), &sb, cfg); err == nil {
		t.Error("unknown chaos fault should error")
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "", false); err == nil {
		t.Error("missing sigma should error")
	}
	if err := run(&sb, "01x", false); err == nil {
		t.Error("invalid sigma should error")
	}
	if err := run(&sb, "0011", false); err == nil {
		t.Error("sorted sigma should error")
	}
}

// TestLoadModeDeadline: an already-expired deadline aborts the run
// with the context error instead of hammering the service.
func TestLoadModeDeadline(t *testing.T) {
	s := serve.NewService(serve.Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	var sb strings.Builder
	cfg := loadCfg{targets: []string{ts.URL}, requests: 50, concurrency: 2,
		n: 6, size: 8, distinct: 2, batch: 1, seed: 1}
	err := loadRun(ctx, &sb, cfg)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
}

// TestParseChaosPlan covers the -chaos spec grammar.
func TestParseChaosPlan(t *testing.T) {
	plan, err := parseChaosPlan("latency=5ms@0.5, reset@0.02,truncate@0.01,partial@0.2,blackhole@0.003", 7)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 7 || plan.Latency != 5*time.Millisecond || plan.LatencyProb != 0.5 ||
		plan.ResetProb != 0.02 || plan.TruncateProb != 0.01 ||
		plan.PartialProb != 0.2 || plan.BlackholeProb != 0.003 {
		t.Errorf("plan = %+v", plan)
	}
	for _, bad := range []string{"latency@0.5", "reset@1.5", "reset", "warp@0.1", "latency=xyz@0.5"} {
		if _, err := parseChaosPlan(bad, 1); err == nil {
			t.Errorf("spec %q should fail to parse", bad)
		}
	}
}

var checksumRE = regexp.MustCompile(`verdict checksum ([0-9a-f]{16}) over (\d+) verdicts`)

func extractChecksum(t *testing.T, out string) string {
	t.Helper()
	m := checksumRE.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no checksum line in:\n%s", out)
	}
	return m[1]
}

// TestChaosFailoverCampaign is the acceptance run for the resilience
// plane: a batched load run against TWO sortnetd replicas behind a
// client.Pool, with one replica killed and restarted mid-run (via the
// chaos proxy), must complete with ZERO failed requests and a verdict
// checksum byte-identical to a fault-free run of the same seed.
func TestChaosFailoverCampaign(t *testing.T) {
	sA := serve.NewService(serve.Config{Workers: 2, CacheSize: 256})
	tsA := httptest.NewServer(sA.Handler())
	sB := serve.NewService(serve.Config{Workers: 2, CacheSize: 256})
	tsB := httptest.NewServer(sB.Handler())
	defer func() {
		tsA.Close()
		tsB.Close()
		sA.Close()
		sB.Close()
	}()

	cfg := loadCfg{targets: []string{tsA.URL, tsB.URL}, requests: 600,
		concurrency: 4, n: 6, size: 8, distinct: 12, batch: 8, seed: 99}

	// Fault-free reference run: both replicas healthy throughout.
	var ref strings.Builder
	if err := loadRun(context.Background(), &ref, cfg); err != nil {
		t.Fatalf("reference run: %v\n%s", err, ref.String())
	}
	if !strings.Contains(ref.String(), " 0 failed") {
		t.Fatalf("reference run had failures:\n%s", ref.String())
	}
	want := extractChecksum(t, ref.String())

	// Chaos run: same seed and request set, but through per-replica
	// fault proxies (latency stretches the run so the kill window
	// lands mid-flight), and replica A is killed and restarted.
	pA, err := chaos.New(hostport(tsA.URL), chaos.Plan{Seed: 5, Latency: 2 * time.Millisecond, LatencyProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pA.Close()
	pB, err := chaos.New(hostport(tsB.URL), chaos.Plan{Seed: 5, Latency: 2 * time.Millisecond, LatencyProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pB.Close()

	chaosCfg := cfg
	chaosCfg.targets = []string{pA.URL(), pB.URL()}
	var out strings.Builder
	done := make(chan error, 1)
	go func() { done <- loadRun(context.Background(), &out, chaosCfg) }()

	// Kill A once it is carrying traffic; restore it while the run is
	// still going so it can be readmitted.
	deadline := time.Now().Add(5 * time.Second)
	for pA.Stats().Conns < 2 {
		if time.Now().After(deadline) {
			t.Fatal("replica A never saw traffic")
		}
		time.Sleep(2 * time.Millisecond)
	}
	pA.Kill()
	time.Sleep(80 * time.Millisecond)
	pA.Restore()

	if err := <-done; err != nil {
		t.Fatalf("chaos run: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, " 0 failed") {
		t.Fatalf("chaos run lost requests:\n%s", s)
	}
	if got := extractChecksum(t, s); got != want {
		t.Fatalf("verdict checksum diverged under chaos: %s vs fault-free %s\n%s", got, want, s)
	}
	// The campaign must actually have bitten: the pool had to retry.
	m := regexp.MustCompile(`pool: (\d+) retries`).FindStringSubmatch(s)
	if m == nil || m[1] == "0" {
		t.Errorf("kill/restart drew no retries — campaign did not exercise failover:\n%s", s)
	}
}
