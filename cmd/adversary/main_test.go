package main

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sortnets/internal/serve"
)

func TestRunBuildsAndChecks(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "0110", false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"sigma = 0110", "H_sigma", "not sorted", "self-check", "ok"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q:\n%s", frag, out)
		}
	}
}

func TestRunQuiet(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "10010", true); err != nil {
		t.Fatal(err)
	}
	out := strings.TrimSpace(sb.String())
	if !strings.HasPrefix(out, "n=5:") || strings.Contains(out, "self-check") {
		t.Errorf("quiet output wrong: %q", out)
	}
}

func TestLoadModeAgainstLiveService(t *testing.T) {
	s := serve.NewService(serve.Config{Workers: 2, CacheSize: 16})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	var sb strings.Builder
	// 40 requests over 4 distinct networks: most must be cache hits.
	if err := loadRun(context.Background(), &sb, ts.URL, 40, 4, 6, 8, 4, 1, 1); err != nil {
		t.Fatalf("loadRun: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, frag := range []string{"req/s", "0 errors", "server /stats"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in:\n%s", frag, out)
		}
	}
	ep := s.Stats().Endpoints["verify"]
	if ep.Requests != 40 {
		t.Errorf("server saw %d requests, want 40", ep.Requests)
	}
	if ep.Computes != 4 {
		t.Errorf("server ran %d computes for 4 distinct networks, want 4", ep.Computes)
	}
}

// TestLoadModeBatchAgainstLiveService is the CI batch-path smoke
// step: the pipelined -batch mode against an in-process sortnetd,
// all-miss (every request distinct), must complete with zero errors
// and actually exercise the server's dedup/grouped machinery.
func TestLoadModeBatchAgainstLiveService(t *testing.T) {
	s := serve.NewService(serve.Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	var sb strings.Builder
	// 60 distinct networks in batches of 20: all computed, grouped.
	if err := loadRun(context.Background(), &sb, ts.URL, 60, 2, 6, 8, 60, 20, 1); err != nil {
		t.Fatalf("loadRun -batch: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, frag := range []string{"batch=20", "req/s", "0 errors", "server /stats"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in:\n%s", frag, out)
		}
	}
	st := s.Stats()
	if ep := st.Endpoints["verify"]; ep.Requests != 60 {
		t.Errorf("server saw %d verify requests, want 60", ep.Requests)
	}
	if st.Batch.Batches == 0 || st.Batch.Grouped == 0 {
		t.Errorf("batch mode never hit the grouped pipeline: %+v", st.Batch)
	}
}

func TestLoadModeValidation(t *testing.T) {
	var sb strings.Builder
	if err := loadRun(context.Background(), &sb, "http://127.0.0.1:1", 0, 1, 6, 8, 1, 1, 1); err == nil {
		t.Error("zero requests should error")
	}
	if err := loadRun(context.Background(), &sb, "http://127.0.0.1:1", 1, 1, 1, 8, 1, 1, 1); err == nil {
		t.Error("n=1 should error")
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "", false); err == nil {
		t.Error("missing sigma should error")
	}
	if err := run(&sb, "01x", false); err == nil {
		t.Error("invalid sigma should error")
	}
	if err := run(&sb, "0011", false); err == nil {
		t.Error("sorted sigma should error")
	}
}

// TestLoadModeDeadline: an already-expired deadline aborts the run
// with the context error instead of hammering the service.
func TestLoadModeDeadline(t *testing.T) {
	s := serve.NewService(serve.Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	var sb strings.Builder
	err := loadRun(ctx, &sb, ts.URL, 50, 2, 6, 8, 2, 1, 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
}
