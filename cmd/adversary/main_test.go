package main

import (
	"strings"
	"testing"
)

func TestRunBuildsAndChecks(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "0110", false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"sigma = 0110", "H_sigma", "not sorted", "self-check", "ok"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q:\n%s", frag, out)
		}
	}
}

func TestRunQuiet(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "10010", true); err != nil {
		t.Fatal(err)
	}
	out := strings.TrimSpace(sb.String())
	if !strings.HasPrefix(out, "n=5:") || strings.Contains(out, "self-check") {
		t.Errorf("quiet output wrong: %q", out)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "", false); err == nil {
		t.Error("missing sigma should error")
	}
	if err := run(&sb, "01x", false); err == nil {
		t.Error("invalid sigma should error")
	}
	if err := run(&sb, "0011", false); err == nil {
		t.Error("sorted sigma should error")
	}
}
