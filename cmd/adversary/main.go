// Command adversary builds the Lemma 2.1 almost-sorter H_σ for a given
// non-sorted binary string σ: the network that sorts every input
// except σ. It prints the construction case, the network, its diagram,
// and a self-check that the contract holds — the constructive proof
// that σ can never be dropped from a sorter test set.
//
// Usage:
//
//	adversary -sigma 0110
//	adversary -sigma 1001100 -quiet     # just the network line
//
// With -load it turns adversarial in the operational sense instead: a
// load generator that hammers a running sortnetd instance with random
// networks and reports sustained requests/sec plus the server's own
// /stats counters. -timeout bounds the whole load run: requests carry
// the deadline's context, so when it expires the in-flight HTTP
// requests are torn down — and with them the verdict computations
// inside the server, which observe the disconnect through the same
// context plumbing and release their pool slots.
//
//	adversary -load http://localhost:8357 -requests 5000 -concurrency 16
//	adversary -load http://localhost:8357 -distinct 4   # mostly cache hits
//	adversary -load http://localhost:8357 -timeout 10s
//
// -batch N switches the generator to the batch-first request model:
// each round trip ships N requests as one NDJSON batch through
// client.Client.DoBatch, so the server deduplicates within the batch
// and runs same-width verify entries through one grouped engine pass.
// Compare the two modes on the same hardware:
//
//	adversary -load http://localhost:8357 -requests 20000 -distinct 20000            # single-shot, all miss
//	adversary -load http://localhost:8357 -requests 20000 -distinct 20000 -batch 64  # batched, all miss
//
// Alongside req/s, load mode reports the CLIENT process's allocation
// cost from runtime.ReadMemStats deltas — allocs per request, bytes
// per request, GC cycles and total GC pause — so a zero-alloc serve
// path can be verified end to end from the consuming side. -width
// pins this process's evaluation kernel width (the server pins its
// own with sortnetd -lanes).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sortnets"
	"sortnets/client"
	"sortnets/internal/bitvec"
	"sortnets/internal/core"
	"sortnets/internal/eval"
	"sortnets/internal/network"
)

func main() {
	sigma := flag.String("sigma", "", "non-sorted binary string, e.g. 0110")
	quiet := flag.Bool("quiet", false, "print only the network text form")
	load := flag.String("load", "", "sortnetd base URL: run the load generator instead of the Lemma 2.1 construction")
	requests := flag.Int("requests", 2000, "load mode: total requests to send")
	concurrency := flag.Int("concurrency", 8, "load mode: concurrent client workers")
	n := flag.Int("n", 8, "load mode: lines per random network")
	size := flag.Int("size", 19, "load mode: comparators per random network")
	distinct := flag.Int("distinct", 32, "load mode: distinct networks cycled through (fewer = more cache hits)")
	batch := flag.Int("batch", 1, "load mode: requests per round trip (1 = single-shot POSTs, >1 = NDJSON batches via DoBatch)")
	seed := flag.Int64("seed", 1, "load mode: random-network seed")
	timeout := flag.Duration("timeout", 0, "load mode: overall deadline (0 = none); expiring aborts in-flight requests")
	width := flag.Int("width", 0, "evaluation kernel width in lanes for THIS process (64, 256, 512; 0 = default); the server pins its own with sortnetd -lanes")
	flag.Parse()

	if *width != 0 {
		if err := eval.SetKernelLanes(*width); err != nil {
			fmt.Fprintln(os.Stderr, "adversary:", err)
			os.Exit(2)
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var err error
	if *load != "" {
		err = loadRun(ctx, os.Stdout, *load, *requests, *concurrency, *n, *size, *distinct, *batch, *seed)
	} else {
		err = run(os.Stdout, *sigma, *quiet)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "adversary:", err)
		os.Exit(2)
	}
}

func run(out io.Writer, sigma string, quiet bool) error {
	if sigma == "" {
		return fmt.Errorf("missing -sigma (or -load for the load generator)")
	}
	v, err := bitvec.FromString(sigma)
	if err != nil {
		return err
	}
	h, err := core.AlmostSorter(v)
	if err != nil {
		return err
	}
	if quiet {
		fmt.Fprintln(out, h.Format())
		return nil
	}
	fmt.Fprintf(out, "sigma = %s  (construction case %s)\n", v, core.ClassifyAlmostSorter(v))
	fmt.Fprintf(out, "H_sigma = %s  (%d comparators, depth %d)\n\n", h, h.Size(), h.Depth())
	fmt.Fprint(out, h.Diagram())
	fmt.Fprintf(out, "\nH_sigma(%s) = %s  (not sorted)\n", v, h.ApplyVec(v))
	if err := core.VerifyAlmostSorter(h, v); err != nil {
		return fmt.Errorf("self-check failed: %v", err)
	}
	fmt.Fprintf(out, "self-check: sorts all %d other inputs: ok\n", bitvec.Universe(v.N)-1)
	return nil
}

// loadRun drives a sortnetd instance: distinct random networks are
// pre-rendered, then concurrency workers push verify requests over
// them — one POST per request with batch == 1, or NDJSON batches of
// `batch` requests through client.Client.DoBatch otherwise. Every
// request carries ctx, so an expired deadline aborts the run (and the
// server-side computations) promptly. It reports client-side
// throughput and source breakdown (the X-Sortnetd-Cache header, or
// the per-line source field in batch mode), then echoes the server's
// /stats.
func loadRun(ctx context.Context, out io.Writer, base string, requests, concurrency, n, size, distinct, batch int, seed int64) error {
	if requests < 1 || concurrency < 1 || distinct < 1 || batch < 1 {
		return fmt.Errorf("need positive -requests, -concurrency, -distinct, -batch")
	}
	if n < 2 {
		return fmt.Errorf("-n must be at least 2")
	}
	rng := rand.New(rand.NewSource(seed))
	nets := make([]string, distinct)
	bodies := make([][]byte, distinct) // pre-rendered single-shot bodies
	for i := range nets {
		nets[i] = network.Random(n, size, rng).Format()
		bodies[i] = mustBody(nets[i])
	}

	hc := &http.Client{Timeout: 30 * time.Second}
	var next, errs atomic.Int64
	var hits, misses, coalesced atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errs.Add(1)
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	tally := func(source string) {
		switch source {
		case "hit":
			hits.Add(1)
		case "coalesced":
			coalesced.Add(1)
		default:
			misses.Add(1)
		}
	}
	worker := func() {
		for {
			i := next.Add(1) - 1
			if i >= int64(requests) || ctx.Err() != nil {
				return
			}
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/verify",
				bytes.NewReader(bodies[i%int64(distinct)]))
			if err != nil {
				fail(err)
				continue
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := hc.Do(req)
			if err != nil {
				fail(err)
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				fail(fmt.Errorf("status %d", resp.StatusCode))
				continue
			}
			tally(resp.Header.Get("X-Sortnetd-Cache"))
		}
	}
	if batch > 1 {
		cl := client.New(base, client.WithHTTPClient(hc))
		worker = func() {
			for {
				lo := next.Add(int64(batch)) - int64(batch)
				if lo >= int64(requests) || ctx.Err() != nil {
					return
				}
				hi := lo + int64(batch)
				if hi > int64(requests) {
					hi = int64(requests)
				}
				reqs := make([]sortnets.Request, 0, hi-lo)
				for i := lo; i < hi; i++ {
					reqs = append(reqs, sortnets.Request{Network: nets[i%int64(distinct)]})
				}
				vs, err := cl.DoBatch(ctx, reqs)
				var be *sortnets.BatchError
				if err != nil && !errors.As(err, &be) {
					// A whole-batch failure (transport, deadline) lost
					// every request in it — errs counts requests, not
					// round trips, so ok/hit/miss still add up.
					for range reqs {
						fail(err)
					}
					continue
				}
				for j := range reqs {
					if be != nil && be.Errs[j] != nil {
						fail(be.Errs[j])
						continue
					}
					tally(vs[j].Source)
				}
			}
		}
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	ok := int64(requests) - errs.Load()
	fmt.Fprintf(out, "load: %d requests (%d distinct %d-line networks), %d workers, batch=%d\n",
		requests, distinct, n, concurrency, batch)
	fmt.Fprintf(out, "done in %v: %.0f req/s, %d ok (%d hit / %d coalesced / %d computed), %d errors\n",
		elapsed.Round(time.Millisecond), float64(requests)/elapsed.Seconds(),
		ok, hits.Load(), coalesced.Load(), misses.Load(), errs.Load())
	// Client-side allocation cost of the run, from MemStats deltas:
	// the generator shares the zero-alloc wire path with the server,
	// so allocs/req here is the end-to-end client-library figure.
	fmt.Fprintf(out, "client mem: %.1f allocs/req, %.0f B/req, %d GCs, %v total GC pause\n",
		float64(m1.Mallocs-m0.Mallocs)/float64(requests),
		float64(m1.TotalAlloc-m0.TotalAlloc)/float64(requests),
		m1.NumGC-m0.NumGC,
		time.Duration(m1.PauseTotalNs-m0.PauseTotalNs).Round(time.Microsecond))
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("load aborted by deadline after %d requests: %w", next.Load(), err)
	}
	if firstErr != nil {
		return fmt.Errorf("%d requests failed; first failure: %v", errs.Load(), firstErr)
	}

	resp, err := hc.Get(base + "/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	stats, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "server /stats: %s", stats)
	return nil
}

// mustBody renders the single-shot JSON body for one network text
// (marshaling a map[string]string cannot fail).
func mustBody(net string) []byte {
	b, err := json.Marshal(map[string]string{"network": net})
	if err != nil {
		panic(err)
	}
	return b
}
