// Command adversary builds the Lemma 2.1 almost-sorter H_σ for a given
// non-sorted binary string σ: the network that sorts every input
// except σ. It prints the construction case, the network, its diagram,
// and a self-check that the contract holds — the constructive proof
// that σ can never be dropped from a sorter test set.
//
// Usage:
//
//	adversary -sigma 0110
//	adversary -sigma 1001100 -quiet     # just the network line
//
// With -load it turns adversarial in the operational sense instead: a
// load generator that hammers running sortnetd instances with random
// networks and reports sustained requests/sec plus the servers' own
// /stats counters. -load takes a comma-separated list of base URLs;
// requests flow through a client.Pool, so a replica that dies mid-run
// is routed around (breaker + failover + partial batch retry) and the
// run records failures instead of dying on the first one. -timeout
// bounds the whole run: requests carry the deadline's context, so when
// it expires the in-flight HTTP requests are torn down — and with them
// the verdict computations inside the server, which observe the
// disconnect through the same context plumbing and release their pool
// slots.
//
//	adversary -load http://localhost:8357 -requests 5000 -concurrency 16
//	adversary -load http://localhost:8357,http://localhost:8358          # 2 replicas, failover
//	adversary -load http://localhost:8357 -distinct 4   # mostly cache hits
//	adversary -load http://localhost:8357 -timeout 10s
//
// -batch N switches the generator to the batch-first request model:
// each round trip ships N requests as one NDJSON batch through the
// pool's DoBatch, so the server deduplicates within the batch and runs
// same-width verify entries through one grouped engine pass — and a
// shed or failed entry is re-sent alone, not with its whole batch.
//
// Every run prints an order-independent checksum over the verdict
// bytes it received. Verdicts are deterministic, so two runs over the
// same seed and request set must print the same checksum no matter
// which replicas answered, how many retries it took, or in what order
// the workers finished — the byte-identity check that makes failover
// provable from the outside:
//
//	adversary -load http://a:8357,http://b:8357 -requests 20000 -batch 64
//	# kill and restart either replica mid-run: 0 failed, same checksum
//
// -chaos puts a deterministic fault-injection proxy (internal/chaos)
// in front of every backend for the duration of the run. The spec is a
// comma-separated fault list; each fault is name@probability, latency
// takes a duration:
//
//	adversary -load http://localhost:8357 -chaos 'latency=5ms@0.5,reset@0.02,partial@0.2' -chaos-seed 7
//
// Faults: latency=DUR@P (delay a fragment), reset@P (RST mid-stream),
// truncate@P (drop half a fragment, then RST), partial@P (split a
// fragment in two writes), blackhole@P (swallow a whole connection).
// The proxies' fault tallies are printed after the run.
//
// Alongside req/s, load mode reports the CLIENT process's allocation
// cost from runtime.ReadMemStats deltas — allocs per request, bytes
// per request, GC cycles and total GC pause — so a zero-alloc serve
// path can be verified end to end from the consuming side. -width
// pins this process's evaluation kernel width (the server pins its
// own with sortnetd -lanes).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sortnets"
	"sortnets/client"
	"sortnets/internal/bitvec"
	"sortnets/internal/chaos"
	"sortnets/internal/core"
	"sortnets/internal/eval"
	"sortnets/internal/network"
)

func main() {
	sigma := flag.String("sigma", "", "non-sorted binary string, e.g. 0110")
	quiet := flag.Bool("quiet", false, "print only the network text form")
	load := flag.String("load", "", "comma-separated sortnetd base URLs: run the load generator instead of the Lemma 2.1 construction")
	requests := flag.Int("requests", 2000, "load mode: total requests to send")
	concurrency := flag.Int("concurrency", 8, "load mode: concurrent client workers")
	n := flag.Int("n", 8, "load mode: lines per random network")
	size := flag.Int("size", 19, "load mode: comparators per random network")
	distinct := flag.Int("distinct", 32, "load mode: distinct networks cycled through (fewer = more cache hits)")
	batch := flag.Int("batch", 1, "load mode: requests per round trip (1 = single-shot POSTs, >1 = NDJSON batches via DoBatch)")
	cluster := flag.Bool("cluster", false, "load mode: treat the -load URLs as a digest-sharded cluster and route each request to its owner shard")
	seed := flag.Int64("seed", 1, "load mode: random-network seed")
	timeout := flag.Duration("timeout", 0, "load mode: overall deadline (0 = none); expiring aborts in-flight requests")
	chaosSpec := flag.String("chaos", "", "load mode: fault plan proxied in front of every backend, e.g. 'latency=5ms@0.5,reset@0.02,partial@0.2'")
	chaosSeed := flag.Int64("chaos-seed", 1, "load mode: seed for the -chaos fault schedule")
	width := flag.Int("width", 0, "evaluation kernel width in lanes for THIS process (64, 256, 512; 0 = default); the server pins its own with sortnetd -lanes")
	flag.Parse()

	if *width != 0 {
		if err := eval.SetKernelLanes(*width); err != nil {
			fmt.Fprintln(os.Stderr, "adversary:", err)
			os.Exit(2)
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var err error
	if *load != "" {
		err = loadRun(ctx, os.Stdout, loadCfg{
			targets:     splitTargets(*load),
			requests:    *requests,
			concurrency: *concurrency,
			n:           *n,
			size:        *size,
			distinct:    *distinct,
			batch:       *batch,
			cluster:     *cluster,
			seed:        *seed,
			chaosSpec:   *chaosSpec,
			chaosSeed:   *chaosSeed,
		})
	} else {
		err = run(os.Stdout, *sigma, *quiet)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "adversary:", err)
		os.Exit(2)
	}
}

func run(out io.Writer, sigma string, quiet bool) error {
	if sigma == "" {
		return errors.New("missing -sigma (or -load for the load generator)")
	}
	v, err := bitvec.FromString(sigma)
	if err != nil {
		return err
	}
	h, err := core.AlmostSorter(v)
	if err != nil {
		return err
	}
	if quiet {
		fmt.Fprintln(out, h.Format())
		return nil
	}
	fmt.Fprintf(out, "sigma = %s  (construction case %s)\n", v, core.ClassifyAlmostSorter(v))
	fmt.Fprintf(out, "H_sigma = %s  (%d comparators, depth %d)\n\n", h, h.Size(), h.Depth())
	fmt.Fprint(out, h.Diagram())
	fmt.Fprintf(out, "\nH_sigma(%s) = %s  (not sorted)\n", v, h.ApplyVec(v))
	if err := core.VerifyAlmostSorter(h, v); err != nil {
		return fmt.Errorf("self-check failed: %v", err)
	}
	fmt.Fprintf(out, "self-check: sorts all %d other inputs: ok\n", bitvec.Universe(v.N)-1)
	return nil
}

// splitTargets parses the -load flag's comma-separated URL list.
func splitTargets(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// loadCfg parameterizes one load run (the -load flag family).
type loadCfg struct {
	targets     []string // sortnetd base URLs (≥ 1); the pool fails over between them
	requests    int
	concurrency int
	n, size     int
	distinct    int
	batch       int  // 1 = single-shot, > 1 = NDJSON batches of this size
	cluster     bool // route each request to its digest-owner shard
	seed        int64
	chaosSpec   string // non-empty: proxy every target through this fault plan
	chaosSeed   int64
}

// parseChaosPlan decodes the -chaos spec: comma-separated faults of
// the form name@prob, with latency taking latency=DUR@prob.
func parseChaosPlan(spec string, seed int64) (chaos.Plan, error) {
	plan := chaos.Plan{Seed: seed}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, probStr, ok := strings.Cut(item, "@")
		if !ok {
			return plan, fmt.Errorf("chaos fault %q: want name@probability", item)
		}
		prob, err := strconv.ParseFloat(probStr, 64)
		if err != nil || prob < 0 || prob > 1 {
			return plan, fmt.Errorf("chaos fault %q: bad probability %q", item, probStr)
		}
		switch {
		case strings.HasPrefix(name, "latency="):
			d, err := time.ParseDuration(strings.TrimPrefix(name, "latency="))
			if err != nil {
				return plan, fmt.Errorf("chaos fault %q: %v", item, err)
			}
			plan.Latency, plan.LatencyProb = d, prob
		case name == "reset":
			plan.ResetProb = prob
		case name == "truncate":
			plan.TruncateProb = prob
		case name == "partial":
			plan.PartialProb = prob
		case name == "blackhole":
			plan.BlackholeProb = prob
		default:
			return plan, fmt.Errorf("chaos fault %q: unknown fault (want latency=DUR, reset, truncate, partial, blackhole)", item)
		}
	}
	return plan, nil
}

// hostport strips the http:// scheme off a base URL, yielding the TCP
// address a chaos proxy dials.
func hostport(base string) string {
	return strings.TrimPrefix(strings.TrimRight(base, "/"), "http://")
}

// loadRun drives one or more sortnetd replicas through a client.Pool:
// distinct random networks are pre-rendered, then concurrency workers
// push verify requests over them — pool.Do per request with batch ==
// 1, or NDJSON batches of `batch` requests through pool.DoBatch
// otherwise. Failures are recorded and the run CONTINUES — the tally,
// not the first transport hiccup, is the result — while the pool
// retries, backs off and fails over underneath. Every verdict received
// feeds an order-independent checksum, so runs over the same seed are
// byte-comparable no matter which replica answered each request. It
// reports client-side throughput, the source breakdown (hit /
// coalesced / computed), the pool's resilience counters, and then
// echoes each server's /stats.
func loadRun(ctx context.Context, out io.Writer, cfg loadCfg) error {
	if len(cfg.targets) == 0 {
		return errors.New("need at least one -load URL")
	}
	if cfg.requests < 1 || cfg.concurrency < 1 || cfg.distinct < 1 || cfg.batch < 1 {
		return errors.New("need positive -requests, -concurrency, -distinct, -batch")
	}
	if cfg.n < 2 {
		return errors.New("-n must be at least 2")
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	nets := make([]string, cfg.distinct)
	for i := range nets {
		nets[i] = network.Random(cfg.n, cfg.size, rng).Format()
	}

	// -chaos: interpose a deterministic fault proxy per backend.
	endpoints := cfg.targets
	var proxies []*chaos.Proxy
	if cfg.chaosSpec != "" {
		plan, err := parseChaosPlan(cfg.chaosSpec, cfg.chaosSeed)
		if err != nil {
			return err
		}
		endpoints = make([]string, len(cfg.targets))
		for i, t := range cfg.targets {
			p, err := chaos.New(hostport(t), plan)
			if err != nil {
				return err
			}
			proxies = append(proxies, p)
			endpoints[i] = p.URL()
		}
		defer func() {
			for _, p := range proxies {
				p.Close()
			}
		}()
	}

	popts := []client.PoolOption{client.WithJitterSeed(cfg.seed)}
	if cfg.cluster {
		popts = append(popts, client.WithShardRouting(0))
	}
	pool, err := client.NewPool(endpoints, popts...)
	if err != nil {
		return err
	}
	defer pool.Close()

	var next, errs atomic.Int64
	var hits, misses, coalesced atomic.Int64
	var checksum atomic.Uint64
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errs.Add(1)
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	// record folds one verdict into the tallies and the
	// order-independent checksum: verdict bodies are deterministic
	// bytes, so summing their hashes is invariant across worker
	// interleaving, retries and replica choice.
	record := func(v *sortnets.Verdict) {
		switch v.Source {
		case "hit":
			hits.Add(1)
		case "coalesced":
			coalesced.Add(1)
		default:
			misses.Add(1)
		}
		body, err := sortnets.MarshalVerdict(v)
		if err != nil {
			fail(err)
			return
		}
		h := fnv.New64a()
		h.Write(body)
		checksum.Add(h.Sum64())
	}
	worker := func() {
		for {
			i := next.Add(1) - 1
			if i >= int64(cfg.requests) || ctx.Err() != nil {
				return
			}
			v, err := pool.Do(ctx, sortnets.Request{Network: nets[i%int64(cfg.distinct)]})
			if err != nil {
				fail(err)
				continue
			}
			record(v)
		}
	}
	if cfg.batch > 1 {
		worker = func() {
			for {
				lo := next.Add(int64(cfg.batch)) - int64(cfg.batch)
				if lo >= int64(cfg.requests) || ctx.Err() != nil {
					return
				}
				hi := lo + int64(cfg.batch)
				if hi > int64(cfg.requests) {
					hi = int64(cfg.requests)
				}
				reqs := make([]sortnets.Request, 0, hi-lo)
				for i := lo; i < hi; i++ {
					reqs = append(reqs, sortnets.Request{Network: nets[i%int64(cfg.distinct)]})
				}
				vs, err := pool.DoBatch(ctx, reqs)
				var be *sortnets.BatchError
				if err != nil && !errors.As(err, &be) {
					// A whole-batch failure (deadline, every retry
					// exhausted) lost each request in it — errs counts
					// requests, not round trips, so ok/hit/miss add up.
					for range reqs {
						fail(err)
					}
					continue
				}
				for j := range reqs {
					if be != nil && be.Errs[j] != nil {
						fail(be.Errs[j])
						continue
					}
					record(vs[j])
				}
			}
		}
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	ok := int64(cfg.requests) - errs.Load()
	fmt.Fprintf(out, "load: %d requests (%d distinct %d-line networks) over %d backend(s), %d workers, batch=%d\n",
		cfg.requests, cfg.distinct, cfg.n, len(cfg.targets), cfg.concurrency, cfg.batch)
	fmt.Fprintf(out, "done in %v: %.0f req/s, %d ok (%d hit / %d coalesced / %d computed), %d failed\n",
		elapsed.Round(time.Millisecond), float64(cfg.requests)/elapsed.Seconds(),
		ok, hits.Load(), coalesced.Load(), misses.Load(), errs.Load())
	if firstErr != nil {
		fmt.Fprintf(out, "first failure: %v\n", firstErr)
	}
	// The byte-identity line: same seed + same request set ⇒ same
	// checksum, regardless of replica, retries or completion order.
	fmt.Fprintf(out, "verdict checksum %016x over %d verdicts (order-independent)\n",
		checksum.Load(), ok)
	// Client-side allocation cost of the run, from MemStats deltas:
	// the generator shares the zero-alloc wire path with the server,
	// so allocs/req here is the end-to-end client-library figure.
	fmt.Fprintf(out, "client mem: %.1f allocs/req, %.0f B/req, %d GCs, %v total GC pause\n",
		float64(m1.Mallocs-m0.Mallocs)/float64(cfg.requests),
		float64(m1.TotalAlloc-m0.TotalAlloc)/float64(cfg.requests),
		m1.NumGC-m0.NumGC,
		time.Duration(m1.PauseTotalNs-m0.PauseTotalNs).Round(time.Microsecond))
	pst := pool.Stats()
	fmt.Fprintf(out, "pool: %d retries, %d failovers, %d unavailable, %d hedges (%d won)\n",
		pst.Retries, pst.Failovers, pst.Unavailable, pst.Hedges, pst.HedgeWins)
	if cfg.cluster {
		// The shard-distribution line: under digest routing each
		// backend's share of requests IS the ring's partition of the
		// workload (failover traffic aside).
		var total int64
		for _, b := range pst.Backends {
			total += b.Requests
		}
		fmt.Fprintf(out, "cluster: %d routed by digest, %d unroutable (round-robin)\n",
			pst.Routed, pst.Unrouted)
		for _, b := range pst.Backends {
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(b.Requests) / float64(total)
			}
			fmt.Fprintf(out, "cluster shard %s: %d requests (%.1f%%)\n", b.URL, b.Requests, pct)
		}
	}
	for _, b := range pst.Backends {
		fmt.Fprintf(out, "pool backend %s: %s, %d requests, %d failures, %d/%d probes failed\n",
			b.URL, b.State, b.Requests, b.Failures, b.ProbeFails, b.Probes)
	}
	for _, p := range proxies {
		fmt.Fprintln(out, p.String())
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("load aborted by deadline after %d requests: %w", next.Load(), err)
	}

	// Echo each replica's own view (through the real targets, not the
	// chaos proxies — observability should not roll the fault dice).
	for _, t := range cfg.targets {
		stats, err := client.New(t).Stats(ctx)
		if err != nil {
			fmt.Fprintf(out, "server /stats %s: unavailable: %v\n", t, err)
			continue
		}
		fmt.Fprintf(out, "server /stats %s: %s", t, stats)
	}
	return nil
}
