// Command adversary builds the Lemma 2.1 almost-sorter H_σ for a given
// non-sorted binary string σ: the network that sorts every input
// except σ. It prints the construction case, the network, its diagram,
// and a self-check that the contract holds — the constructive proof
// that σ can never be dropped from a sorter test set.
//
// Usage:
//
//	adversary -sigma 0110
//	adversary -sigma 1001100 -quiet     # just the network line
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sortnets/internal/bitvec"
	"sortnets/internal/core"
)

func main() {
	sigma := flag.String("sigma", "", "non-sorted binary string, e.g. 0110")
	quiet := flag.Bool("quiet", false, "print only the network text form")
	flag.Parse()

	if err := run(os.Stdout, *sigma, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "adversary:", err)
		os.Exit(2)
	}
}

func run(out io.Writer, sigma string, quiet bool) error {
	if sigma == "" {
		return fmt.Errorf("missing -sigma")
	}
	v, err := bitvec.FromString(sigma)
	if err != nil {
		return err
	}
	h, err := core.AlmostSorter(v)
	if err != nil {
		return err
	}
	if quiet {
		fmt.Fprintln(out, h.Format())
		return nil
	}
	fmt.Fprintf(out, "sigma = %s  (construction case %s)\n", v, core.ClassifyAlmostSorter(v))
	fmt.Fprintf(out, "H_sigma = %s  (%d comparators, depth %d)\n\n", h, h.Size(), h.Depth())
	fmt.Fprint(out, h.Diagram())
	fmt.Fprintf(out, "\nH_sigma(%s) = %s  (not sorted)\n", v, h.ApplyVec(v))
	if err := core.VerifyAlmostSorter(h, v); err != nil {
		return fmt.Errorf("self-check failed: %v", err)
	}
	fmt.Fprintf(out, "self-check: sorts all %d other inputs: ok\n", bitvec.Universe(v.N)-1)
	return nil
}
