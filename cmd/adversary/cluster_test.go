package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"sortnets/internal/chaos"
	"sortnets/internal/serve"
)

// startCluster brings up n sortnetd shards wired as a full peer mesh:
// every shard's -peers names all its siblings. The listeners are bound
// BEFORE the services are built so each Config.Peers can carry the
// real sibling URLs.
func startCluster(t *testing.T, n int, cacheSize int) ([]*serve.Service, []string) {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	svcs := make([]*serve.Service, n)
	srvs := make([]*http.Server, n)
	for i := range svcs {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		svcs[i] = serve.NewService(serve.Config{
			Workers:     1,
			CacheSize:   cacheSize,
			ShardID:     fmt.Sprintf("s%d", i),
			Peers:       peers,
			PeerTimeout: time.Second,
		})
		srvs[i] = &http.Server{Handler: svcs[i].Handler()}
		go srvs[i].Serve(lns[i])
	}
	t.Cleanup(func() {
		for _, srv := range srvs {
			srv.Close()
		}
		for _, s := range svcs {
			s.Close()
		}
	})
	return svcs, urls
}

// sumClusterStats folds the shards' /stats into the totals the
// cluster-mode assertions live on.
func sumClusterStats(svcs []*serve.Service) (computes, peerHits, fillServed int64) {
	for _, s := range svcs {
		st := s.Stats()
		computes += st.Endpoints["verify"].Computes
		peerHits += st.Peer.Hits
		fillServed += st.Peer.FillServed
	}
	return
}

// TestClusterSmokeLoad is the CI cluster smoke step, asserting the
// scaling MECHANISM of digest sharding (wall-clock scaling needs
// cores; CI has one):
//
// Phase 1 — routed: every distinct network computes on exactly ONE
// shard, so the cluster-wide compute total equals the distinct count.
// That partition IS the near-linear scaling claim: each shard does
// 1/n of the compute work with no duplication.
//
// Phase 2 — the same workload unrouted (round-robin, the worst case):
// off-owner misses adopt the owner's verdict through peer fill, the
// compute total does NOT grow, and the checksum is byte-identical to
// the routed run.
func TestClusterSmokeLoad(t *testing.T) {
	svcs, urls := startCluster(t, 3, 256)

	cfg := loadCfg{targets: urls, requests: 48, concurrency: 4,
		n: 6, size: 8, distinct: 48, batch: 8, cluster: true, seed: 7}

	var routed strings.Builder
	if err := loadRun(context.Background(), &routed, cfg); err != nil {
		t.Fatalf("routed run: %v\n%s", err, routed.String())
	}
	out := routed.String()
	if !strings.Contains(out, " 0 failed") {
		t.Fatalf("routed run had failures:\n%s", out)
	}
	if !strings.Contains(out, "cluster: 48 routed by digest, 0 unroutable") {
		t.Fatalf("missing or wrong cluster routing line:\n%s", out)
	}
	want := extractChecksum(t, out)
	computes, _, _ := sumClusterStats(svcs)
	if computes != 48 {
		t.Fatalf("cluster-wide computes = %d for 48 distinct networks, want exactly 48 (no duplicated work)", computes)
	}
	// The partition must actually spread: with 48 networks over a
	// 3-member ring, no shard owns everything.
	for i, s := range svcs {
		if c := s.Stats().Endpoints["verify"].Computes; c == 48 {
			t.Errorf("shard %d computed all 48 networks — routing did not partition", i)
		}
	}

	// Phase 2: same seed, routing OFF — every off-owner miss must be
	// answered by peer fill, not recomputed.
	unroutedCfg := cfg
	unroutedCfg.cluster = false
	unroutedCfg.batch = 1
	var rr strings.Builder
	if err := loadRun(context.Background(), &rr, unroutedCfg); err != nil {
		t.Fatalf("round-robin run: %v\n%s", err, rr.String())
	}
	out = rr.String()
	if !strings.Contains(out, " 0 failed") {
		t.Fatalf("round-robin run had failures:\n%s", out)
	}
	if got := extractChecksum(t, out); got != want {
		t.Fatalf("checksum diverged between routed and round-robin runs: %s vs %s", got, want)
	}
	computes, peerHits, fillServed := sumClusterStats(svcs)
	if computes != 48 {
		t.Errorf("cluster-wide computes grew to %d after the unrouted pass, want still 48 (peer fill, not recompute)", computes)
	}
	if peerHits == 0 || fillServed == 0 {
		t.Errorf("peer fill never fired: hits=%d served=%d", peerHits, fillServed)
	}
}

// TestClusterChaosCampaign is the cluster acceptance run: a routed
// load over 3 shards with one shard KILLED and restored mid-run must
// finish with zero failed requests and a verdict checksum identical
// to the fault-free run — the dead shard's traffic fails over along
// the ring, and the surviving shards adopt its cached verdicts
// through peer fill instead of recomputing.
//
// Client traffic flows through per-shard chaos proxies; the peer mesh
// uses the real service URLs, so cache fill keeps working while a
// shard's public face is down (exactly the deployment shape: the fill
// plane is shard-to-shard, not routed through the load balancer).
func TestClusterChaosCampaign(t *testing.T) {
	svcs, urls := startCluster(t, 3, 256)

	cfg := loadCfg{targets: urls, requests: 600, concurrency: 4,
		n: 6, size: 8, distinct: 12, batch: 8, cluster: true, seed: 99}

	// Fault-free reference run: also warms each owner's cache, so the
	// chaos run's failovers have something to peer-fill from.
	var ref strings.Builder
	if err := loadRun(context.Background(), &ref, cfg); err != nil {
		t.Fatalf("reference run: %v\n%s", err, ref.String())
	}
	if !strings.Contains(ref.String(), " 0 failed") {
		t.Fatalf("reference run had failures:\n%s", ref.String())
	}
	want := extractChecksum(t, ref.String())

	// Chaos run: same seed through per-shard fault proxies, with one
	// shard's proxy killed once it carries traffic and restored
	// mid-run. (Which shard owns what depends on the ring over this
	// run's ephemeral ports, so the victim is picked by observed
	// traffic, not by index.)
	proxies := make([]*chaos.Proxy, len(urls))
	proxied := make([]string, len(urls))
	for i, u := range urls {
		p, err := chaos.New(hostport(u), chaos.Plan{Seed: 5, Latency: 2 * time.Millisecond, LatencyProb: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		proxies[i], proxied[i] = p, p.URL()
	}
	chaosCfg := cfg
	chaosCfg.targets = proxied
	var out strings.Builder
	done := make(chan error, 1)
	go func() { done <- loadRun(context.Background(), &out, chaosCfg) }()

	var victim *chaos.Proxy
	deadline := time.Now().Add(5 * time.Second)
	for victim == nil {
		if time.Now().After(deadline) {
			t.Fatal("no shard ever saw traffic")
		}
		for _, p := range proxies {
			if p.Stats().Conns >= 1 {
				victim = p
				break
			}
		}
		time.Sleep(time.Millisecond)
	}
	victim.Kill()
	time.Sleep(80 * time.Millisecond)
	victim.Restore()

	if err := <-done; err != nil {
		t.Fatalf("chaos run: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, " 0 failed") {
		t.Fatalf("chaos run lost requests:\n%s", s)
	}
	if got := extractChecksum(t, s); got != want {
		t.Fatalf("verdict checksum diverged under chaos: %s vs fault-free %s\n%s", got, want, s)
	}
	// The campaign must have bitten (the kill forced retries) AND the
	// fill plane must have carried cached verdicts between shards.
	m := regexp.MustCompile(`pool: (\d+) retries`).FindStringSubmatch(s)
	if m == nil || m[1] == "0" {
		t.Errorf("kill/restore drew no retries — campaign did not exercise failover:\n%s", s)
	}
	_, peerHits, _ := sumClusterStats(svcs)
	if peerHits == 0 {
		t.Errorf("no peer fills fired — off-owner misses recomputed instead of adopting:\n%s", s)
	}
}
