package main

import "testing"

func TestRunValidCombinations(t *testing.T) {
	cases := []struct {
		prop   string
		n, k   int
		inputs string
		size   bool
	}{
		{"sorter", 5, 1, "binary", false},
		{"sorter", 5, 1, "perm", false},
		{"selector", 6, 2, "binary", false},
		{"selector", 6, 2, "perm", false},
		{"merger", 6, 1, "binary", false},
		{"merger", 6, 1, "perm", false},
		{"sorter", 100, 1, "binary", true},
		{"selector", 100, 3, "perm", true},
		{"merger", 100, 1, "binary", true},
		{"sorter", 100, 1, "perm", true},
		{"selector", 100, 3, "binary", true},
		{"merger", 100, 1, "perm", true},
	}
	for _, c := range cases {
		if err := run(c.prop, c.n, c.k, c.inputs, c.size); err != nil {
			t.Errorf("%+v: %v", c, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("sorter", 0, 1, "binary", false); err == nil {
		t.Error("n=0 should error")
	}
	if err := run("sorter", 30, 1, "binary", false); err == nil {
		t.Error("huge enumeration should error")
	}
	if err := run("unknown", 5, 1, "binary", false); err == nil {
		t.Error("unknown property should error")
	}
	if err := run("unknown", 5, 1, "perm", false); err == nil {
		t.Error("unknown perm property should error")
	}
	if err := run("unknown", 5, 1, "binary", true); err == nil {
		t.Error("unknown sizeonly property should error")
	}
}
