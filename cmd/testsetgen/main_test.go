package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./cmd/testsetgen -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestGoldens pins the emitted test sets for every property and both
// input models (mirroring the cmd/tables golden pattern): the paper's
// test sets are canonical, so their enumeration order and rendering
// must never drift silently.
func TestGoldens(t *testing.T) {
	cases := []struct {
		name   string
		prop   string
		n, k   int
		inputs string
		size   bool
	}{
		{"sorter_n4_binary.golden", "sorter", 4, 1, "binary", false},
		{"sorter_n4_perm.golden", "sorter", 4, 1, "perm", false},
		{"selector_n5_k2_binary.golden", "selector", 5, 2, "binary", false},
		{"selector_n5_k2_perm.golden", "selector", 5, 2, "perm", false},
		{"merger_n6_binary.golden", "merger", 6, 1, "binary", false},
		{"merger_n6_perm.golden", "merger", 6, 1, "perm", false},
		{"sizes.golden", "", 0, 0, "", false}, // handled below
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out bytes.Buffer
			if c.name == "sizes.golden" {
				// Theorem sizes at large n: exact closed forms, one
				// line per (property, model).
				for _, s := range []struct {
					prop, inputs string
					n, k         int
				}{
					{"sorter", "binary", 40, 1},
					{"sorter", "perm", 40, 1},
					{"selector", "binary", 100, 3},
					{"selector", "perm", 100, 3},
					{"merger", "binary", 100, 1},
					{"merger", "perm", 100, 1},
				} {
					fmt.Fprintf(&out, "%s/%s n=%d k=%d: ", s.prop, s.inputs, s.n, s.k)
					if err := run(&out, s.prop, s.n, s.k, s.inputs, true); err != nil {
						t.Fatal(err)
					}
				}
			} else if err := run(&out, c.prop, c.n, c.k, c.inputs, c.size); err != nil {
				t.Fatal(err)
			}
			golden(t, c.name, out.Bytes())
		})
	}
}

func TestRunValidCombinations(t *testing.T) {
	cases := []struct {
		prop   string
		n, k   int
		inputs string
		size   bool
	}{
		{"sorter", 5, 1, "binary", false},
		{"sorter", 5, 1, "perm", false},
		{"selector", 6, 2, "binary", false},
		{"selector", 6, 2, "perm", false},
		{"merger", 6, 1, "binary", false},
		{"merger", 6, 1, "perm", false},
		{"sorter", 100, 1, "binary", true},
		{"selector", 100, 3, "perm", true},
		{"merger", 100, 1, "binary", true},
		{"sorter", 100, 1, "perm", true},
		{"selector", 100, 3, "binary", true},
		{"merger", 100, 1, "perm", true},
	}
	for _, c := range cases {
		if err := run(io.Discard, c.prop, c.n, c.k, c.inputs, c.size); err != nil {
			t.Errorf("%+v: %v", c, err)
		}
	}
}

// TestGoldenCountsMatchTheorems cross-checks the golden enumerations
// against the closed-form sizes, so the two can never drift apart.
func TestGoldenCountsMatchTheorems(t *testing.T) {
	counts := map[string]int{
		"sorter_n4_binary.golden":      11, // 2⁴−4−1
		"sorter_n4_perm.golden":        5,  // C(4,2)−1
		"merger_n6_binary.golden":      9,  // 6²/4
		"merger_n6_perm.golden":        3,  // 6/2
		"selector_n5_k2_binary.golden": 13, // C(5,0)+C(5,1)+C(5,2)−2−1
		"selector_n5_k2_perm.golden":   9,  // C(5,2)−1
	}
	for name, want := range counts {
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatalf("missing golden (run go test ./cmd/testsetgen -update): %v", err)
		}
		got := len(strings.Split(strings.TrimRight(string(data), "\n"), "\n"))
		if got != want {
			t.Errorf("%s holds %d tests, theorem says %d", name, got, want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(io.Discard, "sorter", 0, 1, "binary", false); err == nil {
		t.Error("n=0 should error")
	}
	if err := run(io.Discard, "sorter", 30, 1, "binary", false); err == nil {
		t.Error("huge enumeration should error")
	}
	if err := run(io.Discard, "unknown", 5, 1, "binary", false); err == nil {
		t.Error("unknown property should error")
	}
	if err := run(io.Discard, "unknown", 5, 1, "perm", false); err == nil {
		t.Error("unknown perm property should error")
	}
	if err := run(io.Discard, "unknown", 5, 1, "binary", true); err == nil {
		t.Error("unknown sizeonly property should error")
	}
}
