// Command testsetgen emits the paper's minimal test sets.
//
// Usage:
//
//	testsetgen -prop sorter   -n 6                 # 0/1 tests, one per line
//	testsetgen -prop sorter   -n 6 -inputs perm    # permutation tests
//	testsetgen -prop selector -n 8 -k 2
//	testsetgen -prop merger   -n 8
//	testsetgen -prop sorter   -n 40 -sizeonly      # exact size, any n
//
// Sizes for all three properties and both input models (Theorems 2.2,
// 2.4, 2.5):
//
//	sorter:    2^n - n - 1           /  C(n, floor(n/2)) - 1
//	selector:  sum C(n,i) - k - 1    /  C(n, min(floor(n/2), k)) - 1
//	merger:    n^2/4                 /  n/2
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"sortnets/internal/bitvec"
	"sortnets/internal/comb"
	"sortnets/internal/core"
	"sortnets/internal/perm"
)

func main() {
	prop := flag.String("prop", "sorter", "property: sorter | selector | merger")
	n := flag.Int("n", 6, "number of input lines")
	k := flag.Int("k", 1, "selection arity (selector only)")
	inputs := flag.String("inputs", "binary", "input model: binary | perm")
	sizeOnly := flag.Bool("sizeonly", false, "print only the exact test-set size")
	flag.Parse()

	if err := run(os.Stdout, *prop, *n, *k, *inputs, *sizeOnly); err != nil {
		fmt.Fprintln(os.Stderr, "testsetgen:", err)
		os.Exit(2)
	}
}

func run(w io.Writer, prop string, n, k int, inputs string, sizeOnly bool) error {
	if n < 1 {
		return fmt.Errorf("n must be positive, got %d", n)
	}
	if sizeOnly {
		return printSize(w, prop, n, k, inputs)
	}
	if n > 24 {
		return fmt.Errorf("enumeration for n=%d would be huge; use -sizeonly", n)
	}
	out := bufio.NewWriter(w)
	defer out.Flush()

	if inputs == "perm" {
		var ps []perm.P
		switch prop {
		case "sorter":
			ps = core.SorterPermTests(n)
		case "selector":
			ps = core.SelectorPermTests(n, k)
		case "merger":
			ps = core.MergerPermTests(n)
		default:
			return fmt.Errorf("unknown property %q", prop)
		}
		for _, p := range ps {
			fmt.Fprintln(out, p)
		}
		return nil
	}

	var it bitvec.Iterator
	switch prop {
	case "sorter":
		it = core.SorterBinaryTests(n)
	case "selector":
		it = core.SelectorBinaryTests(n, k)
	case "merger":
		it = core.MergerBinaryTests(n)
	default:
		return fmt.Errorf("unknown property %q", prop)
	}
	for {
		v, ok := it.Next()
		if !ok {
			return nil
		}
		fmt.Fprintln(out, v)
	}
}

func printSize(w io.Writer, prop string, n, k int, inputs string) error {
	permIn := inputs == "perm"
	switch prop {
	case "sorter":
		if permIn {
			fmt.Fprintln(w, comb.SorterPermTestSetSize(n))
		} else {
			fmt.Fprintln(w, comb.SorterBinaryTestSetSize(n))
		}
	case "selector":
		if permIn {
			fmt.Fprintln(w, comb.SelectorPermTestSetSize(n, k))
		} else {
			fmt.Fprintln(w, comb.SelectorBinaryTestSetSize(n, k))
		}
	case "merger":
		if permIn {
			fmt.Fprintln(w, comb.MergerPermTestSetSize(n))
		} else {
			fmt.Fprintln(w, comb.MergerBinaryTestSetSize(n))
		}
	default:
		return fmt.Errorf("unknown property %q", prop)
	}
	return nil
}
