// Command tables regenerates the paper's tables and figures as
// executable experiments E1–E15 (see DESIGN.md for the index) and
// prints paper-vs-measured reports. EXPERIMENTS.md archives one run.
//
// Usage:
//
//	tables            # run everything
//	tables -run E5    # one experiment
//	tables -list      # list the registry
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sortnets/internal/experiments"
)

func main() {
	runID := flag.String("run", "all", "experiment id (E1..E15) or 'all'")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	os.Exit(run(os.Stdout, os.Stderr, *runID, *list))
}

func run(out, errOut io.Writer, runID string, list bool) int {
	if list {
		for _, e := range experiments.Registry() {
			fmt.Fprintf(out, "%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}

	reports, err := experiments.Run(runID)
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 2
	}
	failed := 0
	for _, r := range reports {
		fmt.Fprintln(out, r)
		if !r.OK {
			failed++
		}
	}
	fmt.Fprintf(out, "%d/%d experiments passed\n", len(reports)-failed, len(reports))
	if failed > 0 {
		return 1
	}
	return 0
}
