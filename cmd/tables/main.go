// Command tables regenerates the paper's tables and figures as
// executable experiments E1–E13 (see DESIGN.md for the index) and
// prints paper-vs-measured reports. EXPERIMENTS.md archives one run.
//
// Usage:
//
//	tables            # run everything
//	tables -run E5    # one experiment
//	tables -list      # list the registry
package main

import (
	"flag"
	"fmt"
	"os"

	"sortnets/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment id (E1..E13) or 'all'")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	reports, err := experiments.Run(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	failed := 0
	for _, r := range reports {
		fmt.Println(r)
		if !r.OK {
			failed++
		}
	}
	fmt.Printf("%d/%d experiments passed\n", len(reports)-failed, len(reports))
	if failed > 0 {
		os.Exit(1)
	}
}
