package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./cmd/tables -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestListGolden(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(&out, &errOut, "all", true); code != 0 {
		t.Fatalf("list exited %d: %s", code, errOut.String())
	}
	golden(t, "list.golden", out.Bytes())
}

func TestRunE6Golden(t *testing.T) {
	// E6 replays the paper's Figure 1 worked example — fully
	// deterministic, so the whole report is golden-able.
	var out, errOut bytes.Buffer
	if code := run(&out, &errOut, "E6", false); code != 0 {
		t.Fatalf("E6 exited %d: %s", code, errOut.String())
	}
	golden(t, "e6.golden", out.Bytes())
}

func TestRunUnknownIDFails(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(&out, &errOut, "E99", false); code != 2 {
		t.Fatalf("unknown id exited %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown id") {
		t.Errorf("stderr %q lacks the unknown-id message", errOut.String())
	}
}
