package main

// The baseline ratchet: a committed JSON inventory of tolerated
// findings. CI runs `sortnetlint -baseline lint.baseline.json ./...`,
// so a finding recorded there doesn't fail the build — but any NEW
// finding does, and deleting entries is the only direction the file
// is meant to move. Entries match on (file, analyzer, message), never
// line numbers: a tolerated finding shouldn't come back to life
// because someone added an import twenty lines above it.

import (
	"encoding/json"
	"fmt"
	"os"

	"sortnets/internal/lint"
)

// baselineFile is the on-disk shape, findings in canonical order so
// -write-baseline output diffs cleanly.
type baselineFile struct {
	Version  int             `json:"version"`
	Findings []baselineEntry `json:"findings"`
}

type baselineEntry struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (e baselineEntry) key() string { return e.File + "\x00" + e.Analyzer + "\x00" + e.Message }

func entryOf(d lint.Diagnostic) baselineEntry {
	return baselineEntry{File: d.Pos.Filename, Analyzer: d.Analyzer, Message: d.Message}
}

// loadBaseline reads a baseline file into a tolerance set. A missing
// file is an empty baseline, so bootstrapping CI needs no special
// case.
func loadBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]bool{}, nil
	}
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if bf.Version != 1 {
		return nil, fmt.Errorf("baseline %s: unsupported version %d", path, bf.Version)
	}
	set := make(map[string]bool, len(bf.Findings))
	for _, e := range bf.Findings {
		set[e.key()] = true
	}
	return set, nil
}

// saveBaseline writes the current findings (already sorted and
// relativized by the caller) as a baseline.
func saveBaseline(path string, diags []lint.Diagnostic) error {
	bf := baselineFile{Version: 1, Findings: []baselineEntry{}}
	seen := make(map[string]bool)
	for _, d := range diags {
		e := entryOf(d)
		if seen[e.key()] {
			continue
		}
		seen[e.key()] = true
		bf.Findings = append(bf.Findings, e)
	}
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// filterBaselined splits diags into (new, toleratedCount).
func filterBaselined(diags []lint.Diagnostic, base map[string]bool) ([]lint.Diagnostic, int) {
	kept := diags[:0]
	tolerated := 0
	for _, d := range diags {
		if base[entryOf(d).key()] {
			tolerated++
			continue
		}
		kept = append(kept, d)
	}
	return kept, tolerated
}
