package main

// go vet's vettool protocol: the driver compiles each package, writes
// a JSON config describing the compilation unit (sources, the import
// map, export-data files for every dependency, and the dependencies'
// fact files), and invokes the tool with that one *.cfg path. The
// tool type-checks the unit from the supplied files — no `go list`,
// no network — runs its analyzers, prints findings to stderr, and
// exits 2 when it found any, which the driver surfaces as a vet
// failure.
//
// Facts ride the protocol's .vetx files: PackageVetx maps each
// dependency to the fact file its own analysis run produced, and
// VetxOutput is where this unit must write its facts. The store
// merges every dependency's facts before analysis and serializes the
// union afterwards, which gives the interprocedural analyzers
// (goroutineleak, lockorder, statscover) the same dependency-ordered
// flow the direct loader provides in-process. Analyzers therefore run
// even for VetxOnly units — the driver asks for facts only, so the
// diagnostics are computed-and-dropped, but the exported facts must
// exist for the units upstream.
import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"

	"sortnets/internal/lint"
)

// vetConfig is the subset of the driver's vet.cfg the tool needs.
type vetConfig struct {
	ID          string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

func runVetUnit(cfgPath string, stdout, stderr *os.File) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "sortnetlint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "sortnetlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	// Merge the dependencies' facts. Vetx files from older tool
	// versions (or the empty files fact-free tools write) are skipped,
	// not fatal — analysis degrades to package-local, same as a cold
	// cache.
	facts := lint.NewFacts()
	for _, vetx := range cfg.PackageVetx {
		b, err := os.ReadFile(vetx)
		if err != nil || len(b) == 0 {
			continue
		}
		_ = facts.UnmarshalJSON(b)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(stderr, "sortnetlint: %v\n", err)
			return 2
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	sizes := types.SizesFor("gc", runtime.GOARCH)
	conf := types.Config{Importer: imp, Sizes: sizes}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "sortnetlint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	pkg := &lint.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		Sizes:      sizes,
	}
	diags, err := lint.RunAnalyzersFacts(pkg, lint.All(), facts)
	if err != nil {
		fmt.Fprintf(stderr, "sortnetlint: %v\n", err)
		return 2
	}

	// The driver requires the facts file even when the store is empty.
	if cfg.VetxOutput != "" {
		payload, err := facts.MarshalJSON()
		if err != nil {
			fmt.Fprintf(stderr, "sortnetlint: %v\n", err)
			return 2
		}
		if err := os.WriteFile(cfg.VetxOutput, payload, 0o666); err != nil {
			fmt.Fprintf(stderr, "sortnetlint: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
