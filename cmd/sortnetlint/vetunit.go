package main

// go vet's vettool protocol: the driver compiles each package, writes
// a JSON config describing the compilation unit (sources, the import
// map, and export-data files for every dependency), and invokes the
// tool with that one *.cfg path. The tool type-checks the unit from
// the supplied files — no `go list`, no network — runs its analyzers,
// prints findings to stderr, and exits 2 when it found any, which the
// driver surfaces as a vet failure. This mirrors the subset of
// x/tools' unitchecker protocol the go command actually exercises for
// diagnostics-only tools (sortnetlint exports no facts).

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"

	"sortnets/internal/lint"
)

// vetConfig is the subset of the driver's vet.cfg the tool needs.
type vetConfig struct {
	ID          string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

func runVetUnit(cfgPath string, stdout, stderr *os.File) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "sortnetlint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "sortnetlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// The driver expects a facts file even from fact-free tools.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(stderr, "sortnetlint: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(stderr, "sortnetlint: %v\n", err)
			return 2
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	sizes := types.SizesFor("gc", runtime.GOARCH)
	conf := types.Config{Importer: imp, Sizes: sizes}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "sortnetlint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	pkg := &lint.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		Sizes:      sizes,
	}
	diags, err := lint.RunAnalyzers(pkg, lint.All())
	if err != nil {
		fmt.Fprintf(stderr, "sortnetlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
