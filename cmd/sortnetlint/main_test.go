package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs the CLI entry with stdout/stderr redirected to temp
// files and returns the exit code and both streams.
func capture(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	outF, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	errF, err := os.CreateTemp(t.TempDir(), "err")
	if err != nil {
		t.Fatal(err)
	}
	code = run(args, outF, errF)
	return code, slurp(t, outF), slurp(t, errF)
}

func slurp(t *testing.T, f *os.File) string {
	t.Helper()
	b, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestListFlag(t *testing.T) {
	code, out, _ := capture(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, name := range []string{
		"ctxloop", "hotalloc", "poolsafe", "atomicfield", "wirestrict",
		"goroutineleak", "lockorder", "retrycontract", "statscover",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out)
		}
	}
}

func TestVetHandshake(t *testing.T) {
	code, out, _ := capture(t, "-V=full")
	if code != 0 {
		t.Fatalf("-V=full exited %d", code)
	}
	fields := strings.Fields(strings.TrimSpace(out))
	// The go vet driver requires: <name> version devel ... buildID=<id>.
	if len(fields) < 4 || fields[1] != "version" || fields[2] != "devel" ||
		!strings.HasPrefix(fields[len(fields)-1], "buildID=") {
		t.Fatalf("-V=full output does not satisfy the vet driver: %q", out)
	}

	code, out, _ = capture(t, "-flags")
	if code != 0 || strings.TrimSpace(out) != "[]" {
		t.Fatalf("-flags: exit %d, output %q; want 0 and []", code, out)
	}
}

// TestDirectModeClean lints the whole module in-process: HEAD must be
// clean (the same invariant TestRepoClean asserts from inside the
// lint package, here through the CLI path).
func TestDirectModeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list over the module; skipped in -short")
	}
	code, out, stderr := capture(t, "sortnets/...")
	if code != 0 {
		t.Fatalf("sortnetlint sortnets/... exited %d\nstdout:\n%s\nstderr:\n%s", code, out, stderr)
	}
}

// TestFixAndBaseline drives the -fix and baseline-ratchet paths
// against a throwaway module: -fix rewrites the fixable finding in
// place and leaves the unfixable one; -write-baseline records what
// remains; -baseline tolerates exactly that, while a new finding
// still fails the run.
func TestFixAndBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list over a throwaway module; skipped in -short")
	}
	mod := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(mod, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module fixprobe\n\ngo 1.22\n")
	write("probe.go", `package fixprobe

import "fmt"

func Const() error {
	return fmt.Errorf("wrapped nothing")
}

func Banner() string {
	return fmt.Sprintf("static banner")
}
`)
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(mod); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(cwd); err != nil {
			t.Fatal(err)
		}
	}()

	// Both findings present: the run fails.
	if code, _, stderr := capture(t, "./..."); code != 1 {
		t.Fatalf("unfixed module: exit %d, want 1\nstderr:\n%s", code, stderr)
	}

	// -fix resolves the Errorf (rewritten to errors.New) but not the
	// Sprintf, which has no mechanical fix.
	code, _, stderr := capture(t, "-fix", "./...")
	if code != 1 {
		t.Fatalf("-fix: exit %d, want 1 (Sprintf finding remains)\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "rewrote") {
		t.Fatalf("-fix did not report a rewrite:\n%s", stderr)
	}
	src, err := os.ReadFile(filepath.Join(mod, "probe.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), `errors.New("wrapped nothing")`) || strings.Contains(string(src), "fmt.Errorf") {
		t.Fatalf("-fix did not rewrite the Errorf:\n%s", src)
	}

	// Ratchet: record the surviving finding, then tolerate it.
	base := filepath.Join(mod, "lint.baseline.json")
	if code, _, stderr := capture(t, "-write-baseline", base, "./..."); code != 0 {
		t.Fatalf("-write-baseline: exit %d\nstderr:\n%s", code, stderr)
	}
	if code, _, stderr := capture(t, "-baseline", base, "./..."); code != 0 {
		t.Fatalf("baselined run: exit %d, want 0\nstderr:\n%s", code, stderr)
	} else if !strings.Contains(stderr, "tolerated") {
		t.Fatalf("baselined run did not report tolerated findings:\n%s", stderr)
	}

	// A NEW finding is not hidden by the baseline.
	write("extra.go", `package fixprobe

import "fmt"

func Extra() string {
	return fmt.Sprintf("another banner")
}
`)
	if code, _, stderr := capture(t, "-baseline", base, "./..."); code != 1 {
		t.Fatalf("new finding under baseline: exit %d, want 1\nstderr:\n%s", code, stderr)
	}
}

// TestVetTool builds the binary and drives it through the real
// `go vet -vettool` protocol against a throwaway module: a module
// with a violation must fail vet, and fixing it must pass.
func TestVetTool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and runs go vet; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "sortnetlint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building sortnetlint: %v\n%s", err, out)
	}

	mod := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(mod, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module vetprobe\n\ngo 1.22\n")
	write("probe.go", `package vetprobe

import "fmt"

func Probe() error {
	return fmt.Errorf("constant message")
}
`)
	vet := func() (int, string) {
		cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
		cmd.Dir = mod
		cmd.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=")
		out, err := cmd.CombinedOutput()
		if err == nil {
			return 0, string(out)
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode(), string(out)
		}
		t.Fatalf("go vet: %v\n%s", err, out)
		return -1, ""
	}

	code, out := vet()
	if code == 0 {
		t.Fatalf("go vet -vettool passed a module with a hotalloc violation:\n%s", out)
	}
	if !strings.Contains(out, "hotalloc") {
		t.Fatalf("vet failure does not name the analyzer:\n%s", out)
	}

	write("probe.go", `package vetprobe

import "errors"

func Probe() error {
	return errors.New("constant message")
}
`)
	if code, out := vet(); code != 0 {
		t.Fatalf("go vet -vettool failed a clean module (exit %d):\n%s", code, out)
	}
}
