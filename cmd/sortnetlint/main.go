// Command sortnetlint runs the sortnets project's analyzer suite
// (internal/lint): nine project-specific checks that machine-enforce
// the engine's hand-kept invariants — per-block context cancellation
// (ctxloop), allocation-free hot paths (hotalloc), sync.Pool hygiene
// (poolsafe), atomic counter discipline (atomicfield), wire-codec
// completeness (wirestrict), provable goroutine joins
// (goroutineleak), lock-order acyclicity (lockorder), the Retry-After
// backpressure contract (retrycontract), and stats-surface coverage
// (statscover).
//
// Usage:
//
//	go run ./cmd/sortnetlint [-json] [-fix] [-baseline file] [packages]
//
// With no arguments it lints ./... from the current directory. Any
// diagnostic exits 1; load/type failures exit 2. Findings judged
// false positives are suppressed in the source with
// `//lint:ignore <analyzer> <reason>` on (or above) the flagged line.
//
// -fix applies every suggested fix (constant-format rewrites, missing
// Retry-After insertions) to the files in place, then reports only
// the findings no fix could resolve.
//
// -baseline ratchets: findings recorded in the baseline file are
// tolerated (reported as "baseline"), while any NEW finding still
// fails. -write-baseline regenerates the file from the current state;
// the committed lint.baseline.json is empty, so the ratchet only ever
// tightens. Baseline entries match on (file, analyzer, message) —
// line numbers are deliberately excluded so unrelated edits above a
// tolerated finding don't resurrect it.
//
// The binary also speaks go vet's vettool protocol, so the suite can
// ride the vet driver and its caching:
//
//	go build -o sortnetlint ./cmd/sortnetlint
//	go vet -vettool=$(pwd)/sortnetlint ./...
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"sortnets/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("sortnetlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	list := fs.Bool("list", false, "list the analyzers and exit")
	fix := fs.Bool("fix", false, "apply suggested fixes in place")
	baselinePath := fs.String("baseline", "", "tolerate findings recorded in this baseline file")
	writeBaseline := fs.String("write-baseline", "", "write current findings to this baseline file and exit 0")
	version := fs.String("V", "", "version flag for the go vet driver")
	fs.Bool("flags", false, "describe flags in JSON (go vet driver handshake)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// go vet driver handshake: -V=full prints an identity line used
	// for the build cache key; -flags asks for the flag schema. The
	// driver requires the "devel" form to end in a buildID=<hex> field.
	// The suite's analyzer names and versions are folded into the hash
	// alongside the executable's content hash, so bumping an
	// Analyzer.Version invalidates cached vet results even in build
	// setups where the binary hashes identically.
	if *version != "" {
		id, err := buildID()
		if err != nil {
			fmt.Fprintf(stderr, "sortnetlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "sortnetlint version devel %s buildID=%s\n", strings.Join(analyzerIDs(), ","), id)
		return 0
	}
	if hasFlag(args, "-flags") {
		fmt.Fprintln(stdout, "[]")
		return 0
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, firstLine(a.Doc))
		}
		return 0
	}

	patterns := fs.Args()
	// Vettool mode: the vet driver passes exactly one *.cfg argument
	// describing a single compilation unit.
	if len(patterns) == 1 && strings.HasSuffix(patterns[0], ".cfg") {
		return runVetUnit(patterns[0], stdout, stderr)
	}

	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "sortnetlint: %v\n", err)
		return 2
	}
	// One fact store across the whole walk: go list -deps hands the
	// loader packages dependencies-first, so by the time an importer
	// runs, its dependencies' facts (ctx-bounded functions, lock
	// summaries, atomic fields) are already in the store.
	facts := lint.NewFacts()
	var all []lint.Diagnostic
	for _, pkg := range pkgs {
		if terr := pkg.TypeErrorsJoined(); terr != nil {
			fmt.Fprintf(stderr, "sortnetlint: %s: type errors (results may be partial):\n%v\n", pkg.ImportPath, terr)
		}
		diags, err := lint.RunAnalyzersFacts(pkg, lint.All(), facts)
		if err != nil {
			fmt.Fprintf(stderr, "sortnetlint: %v\n", err)
			return 2
		}
		all = append(all, diags...)
	}

	if *fix && len(all) > 0 {
		changed, err := lint.ApplyFixes(all)
		if err != nil {
			fmt.Fprintf(stderr, "sortnetlint: %v\n", err)
			return 2
		}
		for _, f := range changed {
			fmt.Fprintf(stderr, "sortnetlint: rewrote %s\n", f)
		}
		all = withoutFixable(all)
	}

	relativizePaths(all)
	lint.SortDiagnostics(all)

	if *writeBaseline != "" {
		if err := saveBaseline(*writeBaseline, all); err != nil {
			fmt.Fprintf(stderr, "sortnetlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "sortnetlint: wrote %d finding(s) to %s\n", len(all), *writeBaseline)
		return 0
	}
	var tolerated int
	if *baselinePath != "" {
		base, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "sortnetlint: %v\n", err)
			return 2
		}
		all, tolerated = filterBaselined(all, base)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diagJSON(all)); err != nil {
			fmt.Fprintf(stderr, "sortnetlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range all {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if tolerated > 0 {
		fmt.Fprintf(stderr, "sortnetlint: %d baseline finding(s) tolerated\n", tolerated)
	}
	if len(all) > 0 {
		fmt.Fprintf(stderr, "sortnetlint: %d finding(s)\n", len(all))
		return 1
	}
	return 0
}

// withoutFixable drops findings whose every fix was just applied —
// what remains is the human's queue.
func withoutFixable(diags []lint.Diagnostic) []lint.Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		if len(d.Fixes) == 0 {
			kept = append(kept, d)
		}
	}
	return kept
}

// relativizePaths rewrites absolute diagnostic filenames to be
// module-root-relative, so -json output and baseline files are stable
// across checkouts. Best-effort: unknown roots leave paths untouched.
func relativizePaths(diags []lint.Diagnostic) {
	root := moduleRoot()
	if root == "" {
		return
	}
	prefix := root + string(filepath.Separator)
	for i := range diags {
		if rest, ok := strings.CutPrefix(diags[i].Pos.Filename, prefix); ok {
			diags[i].Pos.Filename = filepath.ToSlash(rest)
		}
	}
}

func moduleRoot() string {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return ""
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return ""
	}
	return filepath.Dir(gomod)
}

type jsonDiag struct {
	Pos      string              `json:"posn"`
	Analyzer string              `json:"analyzer"`
	Message  string              `json:"message"`
	Fixes    []lint.SuggestedFix `json:"fixes,omitempty"`
}

func diagJSON(diags []lint.Diagnostic) []jsonDiag {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{Pos: d.Pos.String(), Analyzer: d.Analyzer, Message: d.Message, Fixes: d.Fixes})
	}
	return out
}

// buildID content-hashes this binary plus the analyzer suite identity
// for the vet driver's cache key.
func buildID() (string, error) {
	exe, err := os.Executable()
	if err != nil {
		return "", err
	}
	f, err := os.Open(exe)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	fmt.Fprintf(h, "\n%s\n", strings.Join(analyzerIDs(), ","))
	return hex.EncodeToString(h.Sum(nil)), nil
}

// analyzerIDs lists the suite as name@version strings — the part of
// the cache key that survives binary-identical rebuilds.
func analyzerIDs() []string {
	var ids []string
	for _, a := range lint.All() {
		ids = append(ids, a.Name+"@"+a.Version)
	}
	return ids
}

func firstLine(s string) string {
	line, _, _ := strings.Cut(s, "\n")
	return line
}

func hasFlag(args []string, name string) bool {
	for _, a := range args {
		if a == name || strings.HasPrefix(a, name+"=") {
			return true
		}
	}
	return false
}
