// Command sortnetlint runs the sortnets project's analyzer suite
// (internal/lint): five project-specific checks that machine-enforce
// the engine's hand-kept invariants — per-block context cancellation
// (ctxloop), allocation-free hot paths (hotalloc), sync.Pool hygiene
// (poolsafe), atomic counter discipline (atomicfield), and wire-codec
// completeness (wirestrict).
//
// Usage:
//
//	go run ./cmd/sortnetlint [-json] [packages]
//
// With no arguments it lints ./... from the current directory. Any
// diagnostic exits 1; load/type failures exit 2. Findings judged
// false positives are suppressed in the source with
// `//lint:ignore <analyzer> <reason>` on (or above) the flagged line.
//
// The binary also speaks go vet's vettool protocol, so the suite can
// ride the vet driver and its caching:
//
//	go build -o sortnetlint ./cmd/sortnetlint
//	go vet -vettool=$(pwd)/sortnetlint ./...
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sortnets/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("sortnetlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	list := fs.Bool("list", false, "list the analyzers and exit")
	version := fs.String("V", "", "version flag for the go vet driver")
	fs.Bool("flags", false, "describe flags in JSON (go vet driver handshake)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// go vet driver handshake: -V=full prints an identity line used
	// for the build cache key; -flags asks for the flag schema. The
	// driver requires the "devel" form to end in a buildID=<hex> field
	// (the content hash of this executable), so vet results are
	// invalidated when the tool changes.
	if *version != "" {
		id, err := executableHash()
		if err != nil {
			fmt.Fprintf(stderr, "sortnetlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "sortnetlint version devel %s buildID=%s\n", strings.Join(analyzerNames(), ","), id)
		return 0
	}
	if hasFlag(args, "-flags") {
		fmt.Fprintln(stdout, "[]")
		return 0
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		return 0
	}

	patterns := fs.Args()
	// Vettool mode: the vet driver passes exactly one *.cfg argument
	// describing a single compilation unit.
	if len(patterns) == 1 && strings.HasSuffix(patterns[0], ".cfg") {
		return runVetUnit(patterns[0], stdout, stderr)
	}

	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "sortnetlint: %v\n", err)
		return 2
	}
	var all []lint.Diagnostic
	for _, pkg := range pkgs {
		if terr := pkg.TypeErrorsJoined(); terr != nil {
			fmt.Fprintf(stderr, "sortnetlint: %s: type errors (results may be partial):\n%v\n", pkg.ImportPath, terr)
		}
		diags, err := lint.RunAnalyzers(pkg, lint.All())
		if err != nil {
			fmt.Fprintf(stderr, "sortnetlint: %v\n", err)
			return 2
		}
		all = append(all, diags...)
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diagJSON(all)); err != nil {
			fmt.Fprintf(stderr, "sortnetlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range all {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(all) > 0 {
		fmt.Fprintf(stderr, "sortnetlint: %d finding(s)\n", len(all))
		return 1
	}
	return 0
}

type jsonDiag struct {
	Pos      string `json:"posn"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func diagJSON(diags []lint.Diagnostic) []jsonDiag {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{Pos: d.Pos.String(), Analyzer: d.Analyzer, Message: d.Message})
	}
	return out
}

// executableHash content-hashes this binary for the vet driver's
// cache key.
func executableHash() (string, error) {
	exe, err := os.Executable()
	if err != nil {
		return "", err
	}
	f, err := os.Open(exe)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func analyzerNames() []string {
	var names []string
	for _, a := range lint.All() {
		names = append(names, a.Name)
	}
	return names
}

func firstLine(s string) string {
	line, _, _ := strings.Cut(s, "\n")
	return line
}

func hasFlag(args []string, name string) bool {
	for _, a := range args {
		if a == name || strings.HasPrefix(a, name+"=") {
			return true
		}
	}
	return false
}
