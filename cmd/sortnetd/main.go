// Command sortnetd is the long-running batch verification service: a
// caching, coalescing, sharded HTTP front end over the compiled
// evaluation stack (see internal/serve).
//
// Usage:
//
//	sortnetd -addr :8357 -workers 0 -cache-size 4096
//
// Endpoints (POST JSON unless noted):
//
//	/do       any op (from the body; default verify) — with Content-Type
//	          application/x-ndjson, a streaming batch: one Request per
//	          line in, one BatchVerdict per line out as chunks complete
//	/verify   property verdict (sorter | selector | merger)
//	/faults   fault coverage of the property's minimal test set
//	/minset   minimal detecting subset of that test set
//	/healthz  GET liveness probe
//	/stats    GET per-endpoint counters + batch pipeline + cache occupancy
//
// Examples:
//
//	curl -s localhost:8357/verify -d '{"network":"n=4: [1,2][3,4][1,3][2,4][2,3]"}'
//	printf '%s\n%s\n' '{"id":"a","network":"n=4: [1,2][3,4][1,3][2,4][2,3]"}' \
//	                  '{"id":"b","network":"n=4: [1,2][3,4]"}' |
//	  curl -s localhost:8357/do -H 'Content-Type: application/x-ndjson' --data-binary @-
//
// Batched submissions are deduplicated within the batch and verify
// entries of one width and property share a single grouped engine
// pass — the batch-first request model (see the client package's
// DoBatch/Stream for the programmatic face).
//
// Results are cached by the canonical digest of the network
// (internal/canon), so structurally equivalent submissions — the same
// circuit with its parallel layers interleaved differently — share
// one cache entry and replay byte-identical verdicts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sortnets/internal/eval"
	"sortnets/internal/serve"
	"sortnets/internal/streamtab"
)

func main() {
	addr := flag.String("addr", ":8357", "listen address")
	workers := flag.Int("workers", 0, "concurrent verdict computations: 0 = automatic (all cores), k = exactly k")
	cacheSize := flag.Int("cache-size", 4096, "verdict cache capacity in entries")
	maxLines := flag.Int("max-lines", 20, "largest line count accepted by /verify")
	maxFaultLines := flag.Int("max-fault-lines", 12, "largest line count accepted by /faults and /minset")
	lanes := flag.Int("lanes", 0, "evaluation kernel width in lanes: 64, 256 or 512; 0 keeps the process default (SORTNETS_LANES or 256)")
	streamTabDir := flag.String("streamtab-dir", "", "directory of persisted test-stream tables (see cmd/streamtab); empty disables")
	maxInflight := flag.Int("max-inflight", 0, "admission gate: requests allowed past the HTTP layer at once; 0 = max(64, 8×workers)")
	queueWait := flag.Duration("queue-wait", 100*time.Millisecond, "admission gate: longest a request may wait for a slot before a 429 shed")
	computeTimeout := flag.Duration("compute-timeout", 0, "per-request compute deadline (504 past it); 0 disables")
	drainGrace := flag.Duration("drain-grace", 250*time.Millisecond, "on SIGTERM: lame-duck window between failing readiness and closing the listener")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "on SIGTERM: hard deadline for in-flight work before connections are cut")
	shardID := flag.String("shard-id", "", "this node's name in a cluster (the loop-prevention hop marker on peer probes); set it whenever -peers is")
	peers := flag.String("peers", "", "comma-separated sibling shard base URLs consulted fill-only on every verdict-cache miss; empty disables the peer plane")
	peerTimeout := flag.Duration("peer-timeout", 100*time.Millisecond, "budget for one miss's whole peer consultation (all peers together)")
	flag.Parse()

	if *lanes != 0 {
		if err := eval.SetKernelLanes(*lanes); err != nil {
			fmt.Fprintln(os.Stderr, "sortnetd:", err)
			os.Exit(2)
		}
	}
	cfg := serve.Config{
		Workers:        *workers,
		CacheSize:      *cacheSize,
		MaxLines:       *maxLines,
		MaxFaultLines:  *maxFaultLines,
		StreamTabDir:   *streamTabDir,
		MaxInflight:    *maxInflight,
		QueueWait:      *queueWait,
		ComputeTimeout: *computeTimeout,
		ShardID:        *shardID,
		Peers:          splitPeers(*peers),
		PeerTimeout:    *peerTimeout,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sortnetd:", err)
		os.Exit(2)
	}
	// SIGINT/SIGTERM start the graceful drain: readiness fails first
	// (load balancers and client Pools route away), in-flight work
	// finishes under the hard deadline, then listeners close and the
	// compute pool is released. A second signal exits immediately.
	drain := make(chan struct{})
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigs
		log.Printf("sortnetd: %v, draining (grace %v, hard deadline %v; signal again to exit now)",
			s, *drainGrace, *drainTimeout)
		close(drain)
		s = <-sigs
		log.Printf("sortnetd: %v again, exiting immediately", s)
		os.Exit(1)
	}()
	opts := drainOptions{grace: *drainGrace, deadline: *drainTimeout}
	if err := run(ln, cfg, opts, drain, log.Printf); err != nil {
		fmt.Fprintln(os.Stderr, "sortnetd:", err)
		os.Exit(1)
	}
}

// drainOptions shapes the graceful-shutdown sequence: grace is the
// lame-duck window between failing readiness and closing the
// listener; deadline is the hard bound on in-flight work after that.
type drainOptions struct {
	grace    time.Duration
	deadline time.Duration
}

// run serves the verification API on ln until the listener closes or
// drain fires, then shuts down gracefully: readiness fails, in-flight
// handlers (NDJSON chunks included) finish under the hard deadline,
// and only then is the service's compute pool released (closing the
// pool under active requests would panic).
func run(ln net.Listener, cfg serve.Config, opts drainOptions, drain <-chan struct{}, logf func(string, ...any)) error {
	svc := serve.NewService(cfg)
	defer svc.Close()
	logf("sortnetd: listening on %s (workers=%d, cache=%d entries, max-lines=%d, lanes=%d)",
		ln.Addr(), svc.Stats().Workers, cfg.CacheSize, cfg.MaxLines, eval.KernelLanes())
	if len(cfg.Peers) > 0 {
		logf("sortnetd: cluster shard %q, peer fill from %v (budget %v per miss)",
			cfg.ShardID, cfg.Peers, cfg.PeerTimeout)
	}
	if cfg.StreamTabDir != "" {
		logStreamTables(cfg.StreamTabDir, logf)
	}
	srv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	var err error
	select {
	case <-drain:
		// Phase 1: fail readiness so probers and client Pools route
		// away while we still answer everything in flight.
		svc.Drain()
		logf("sortnetd: draining — readiness failing, in-flight work finishing")
		if opts.grace > 0 {
			time.Sleep(opts.grace)
		}
		// Phase 2: stop accepting, finish in-flight handlers under
		// the hard deadline.
		ctx, cancel := context.WithTimeout(context.Background(), opts.deadline)
		err = srv.Shutdown(ctx)
		cancel()
		<-serveErr // Serve has returned ErrServerClosed
		if err != nil {
			// Phase 3: the deadline expired with handlers still
			// running (e.g. an idle NDJSON stream waiting for client
			// lines) — cut them.
			logf("sortnetd: drain deadline exceeded, forcing close: %v", err)
			srv.Close()
		}
	case err = <-serveErr:
		// The listener was closed out from under us (tests do this)
		// or accept failed: drain in-flight handlers the same way.
		ctx, cancel := context.WithTimeout(context.Background(), opts.deadline)
		if shutdownErr := srv.Shutdown(ctx); shutdownErr != nil && err == nil {
			err = shutdownErr
		}
		cancel()
	}
	if err != nil && (errors.Is(err, http.ErrServerClosed) || isClosedListener(err) || errors.Is(err, context.DeadlineExceeded)) {
		return nil
	}
	return err
}

// splitPeers parses the -peers flag: comma-separated base URLs,
// blanks dropped so trailing commas are harmless.
func splitPeers(s string) []string {
	var urls []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			urls = append(urls, p)
		}
	}
	return urls
}

// logStreamTables reports at startup which persisted test-stream
// tables the service will actually use — the operator's confirmation
// that a -streamtab-dir deployment took effect (lookups themselves
// are silent: a broken table just falls back to live enumeration).
func logStreamTables(dir string, logf func(string, ...any)) {
	infos, err := streamtab.List(dir)
	if err != nil {
		logf("sortnetd: streamtab dir %s: %v (serving with live enumeration)", dir, err)
		return
	}
	valid := 0
	for _, info := range infos {
		if info.Err != nil {
			logf("sortnetd: streamtab %s: %v (ignored)", info.File, info.Err)
			continue
		}
		valid++
	}
	logf("sortnetd: streamtab dir %s: %d of %d tables valid", dir, valid, len(infos))
}

// isClosedListener reports whether err is the accept error http.Serve
// returns when the listener is closed out from under it — a normal
// shutdown, not a failure. Only the listener-closed case qualifies;
// any other accept failure must surface as an error exit.
func isClosedListener(err error) bool {
	return errors.Is(err, net.ErrClosed)
}
