// Command sortnetd is the long-running batch verification service: a
// caching, coalescing, sharded HTTP front end over the compiled
// evaluation stack (see internal/serve).
//
// Usage:
//
//	sortnetd -addr :8357 -workers 0 -cache-size 4096
//
// Endpoints (POST JSON unless noted):
//
//	/do       any op (from the body; default verify) — with Content-Type
//	          application/x-ndjson, a streaming batch: one Request per
//	          line in, one BatchVerdict per line out as chunks complete
//	/verify   property verdict (sorter | selector | merger)
//	/faults   fault coverage of the property's minimal test set
//	/minset   minimal detecting subset of that test set
//	/healthz  GET liveness probe
//	/stats    GET per-endpoint counters + batch pipeline + cache occupancy
//
// Examples:
//
//	curl -s localhost:8357/verify -d '{"network":"n=4: [1,2][3,4][1,3][2,4][2,3]"}'
//	printf '%s\n%s\n' '{"id":"a","network":"n=4: [1,2][3,4][1,3][2,4][2,3]"}' \
//	                  '{"id":"b","network":"n=4: [1,2][3,4]"}' |
//	  curl -s localhost:8357/do -H 'Content-Type: application/x-ndjson' --data-binary @-
//
// Batched submissions are deduplicated within the batch and verify
// entries of one width and property share a single grouped engine
// pass — the batch-first request model (see the client package's
// DoBatch/Stream for the programmatic face).
//
// Results are cached by the canonical digest of the network
// (internal/canon), so structurally equivalent submissions — the same
// circuit with its parallel layers interleaved differently — share
// one cache entry and replay byte-identical verdicts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"sortnets/internal/eval"
	"sortnets/internal/serve"
	"sortnets/internal/streamtab"
)

func main() {
	addr := flag.String("addr", ":8357", "listen address")
	workers := flag.Int("workers", 0, "concurrent verdict computations: 0 = automatic (all cores), k = exactly k")
	cacheSize := flag.Int("cache-size", 4096, "verdict cache capacity in entries")
	maxLines := flag.Int("max-lines", 20, "largest line count accepted by /verify")
	maxFaultLines := flag.Int("max-fault-lines", 12, "largest line count accepted by /faults and /minset")
	lanes := flag.Int("lanes", 0, "evaluation kernel width in lanes: 64, 256 or 512; 0 keeps the process default (SORTNETS_LANES or 256)")
	streamTabDir := flag.String("streamtab-dir", "", "directory of persisted test-stream tables (see cmd/streamtab); empty disables")
	flag.Parse()

	if *lanes != 0 {
		if err := eval.SetKernelLanes(*lanes); err != nil {
			fmt.Fprintln(os.Stderr, "sortnetd:", err)
			os.Exit(2)
		}
	}
	cfg := serve.Config{
		Workers:       *workers,
		CacheSize:     *cacheSize,
		MaxLines:      *maxLines,
		MaxFaultLines: *maxFaultLines,
		StreamTabDir:  *streamTabDir,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sortnetd:", err)
		os.Exit(2)
	}
	// SIGINT/SIGTERM close the listener; run() then drains in-flight
	// handlers before tearing down the compute pool, so a deployed
	// daemon exercises the same graceful path the tests do.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigs
		log.Printf("sortnetd: %v, shutting down", s)
		ln.Close()
	}()
	if err := run(ln, cfg, log.Printf); err != nil {
		fmt.Fprintln(os.Stderr, "sortnetd:", err)
		os.Exit(1)
	}
}

// run serves the verification API on ln until the listener closes,
// then drains in-flight handlers before releasing the service's
// compute pool (closing the pool under active requests would panic).
func run(ln net.Listener, cfg serve.Config, logf func(string, ...any)) error {
	svc := serve.NewService(cfg)
	defer svc.Close()
	logf("sortnetd: listening on %s (workers=%d, cache=%d entries, max-lines=%d, lanes=%d)",
		ln.Addr(), svc.Stats().Workers, cfg.CacheSize, cfg.MaxLines, eval.KernelLanes())
	if cfg.StreamTabDir != "" {
		logStreamTables(cfg.StreamTabDir, logf)
	}
	srv := &http.Server{Handler: svc.Handler()}
	err := srv.Serve(ln)
	if shutdownErr := srv.Shutdown(context.Background()); shutdownErr != nil && err == nil {
		err = shutdownErr
	}
	if err != nil && (errors.Is(err, http.ErrServerClosed) || isClosedListener(err)) {
		return nil
	}
	return err
}

// logStreamTables reports at startup which persisted test-stream
// tables the service will actually use — the operator's confirmation
// that a -streamtab-dir deployment took effect (lookups themselves
// are silent: a broken table just falls back to live enumeration).
func logStreamTables(dir string, logf func(string, ...any)) {
	infos, err := streamtab.List(dir)
	if err != nil {
		logf("sortnetd: streamtab dir %s: %v (serving with live enumeration)", dir, err)
		return
	}
	valid := 0
	for _, info := range infos {
		if info.Err != nil {
			logf("sortnetd: streamtab %s: %v (ignored)", info.File, info.Err)
			continue
		}
		valid++
	}
	logf("sortnetd: streamtab dir %s: %d of %d tables valid", dir, valid, len(infos))
}

// isClosedListener reports whether err is the accept error http.Serve
// returns when the listener is closed out from under it — a normal
// shutdown, not a failure. Only the listener-closed case qualifies;
// any other accept failure must surface as an error exit.
func isClosedListener(err error) bool {
	return errors.Is(err, net.ErrClosed)
}
