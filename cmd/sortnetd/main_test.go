package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"

	"sortnets/internal/serve"
)

// startDaemon runs the full daemon stack (listener + service +
// handler) on an ephemeral port and returns its base URL.
func startDaemon(t *testing.T, cfg serve.Config) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := run(ln, cfg, func(string, ...any) {}); err != nil {
			t.Errorf("run: %v", err)
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		wg.Wait()
	})
	return "http://" + ln.Addr().String()
}

func TestDaemonEndToEnd(t *testing.T) {
	url := startDaemon(t, serve.Config{Workers: 2, CacheSize: 64})

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	body := `{"network":"n=4: [1,2][3,4][1,3][2,4][2,3]"}`
	var verdicts [][]byte
	var headers []string
	for i := 0; i < 2; i++ {
		resp, err := http.Post(url+"/verify", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("verify: %d: %s", resp.StatusCode, buf.String())
		}
		verdicts = append(verdicts, buf.Bytes())
		headers = append(headers, resp.Header.Get("X-Sortnetd-Cache"))
	}
	if !bytes.Equal(verdicts[0], verdicts[1]) {
		t.Errorf("repeat verdict not byte-identical:\n%s\n%s", verdicts[0], verdicts[1])
	}
	if headers[0] != "miss" || headers[1] != "hit" {
		t.Errorf("cache headers %v, want [miss hit]", headers)
	}

	resp, err = http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	ep := st.Endpoints["verify"]
	if ep.Requests != 2 || ep.Hits != 1 || ep.Computes != 1 {
		t.Errorf("stats: %+v", ep)
	}
	if st.Cache.Entries != 1 {
		t.Errorf("cache entries %d, want 1", st.Cache.Entries)
	}
}
