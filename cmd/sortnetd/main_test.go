package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"sortnets"
	"sortnets/client"
	"sortnets/internal/serve"
)

// startDaemon runs the full daemon stack (listener + service +
// handler) on an ephemeral port and returns its base URL plus a
// drain trigger (the in-test stand-in for SIGTERM: main wires the
// same channel to the signal handler).
func startDaemon(t *testing.T, cfg serve.Config) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	drain := make(chan struct{})
	var drainOnce sync.Once
	triggerDrain := func() { drainOnce.Do(func() { close(drain) }) }
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		opts := drainOptions{grace: 10 * time.Millisecond, deadline: 5 * time.Second}
		if err := run(ln, cfg, opts, drain, func(string, ...any) {}); err != nil {
			t.Errorf("run: %v", err)
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		wg.Wait()
	})
	return "http://" + ln.Addr().String(), triggerDrain
}

func TestDaemonEndToEnd(t *testing.T) {
	url, _ := startDaemon(t, serve.Config{Workers: 2, CacheSize: 64})

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	body := `{"network":"n=4: [1,2][3,4][1,3][2,4][2,3]"}`
	var verdicts [][]byte
	var headers []string
	for i := 0; i < 2; i++ {
		resp, err := http.Post(url+"/verify", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("verify: %d: %s", resp.StatusCode, buf.String())
		}
		verdicts = append(verdicts, buf.Bytes())
		headers = append(headers, resp.Header.Get("X-Sortnetd-Cache"))
	}
	if !bytes.Equal(verdicts[0], verdicts[1]) {
		t.Errorf("repeat verdict not byte-identical:\n%s\n%s", verdicts[0], verdicts[1])
	}
	if headers[0] != "miss" || headers[1] != "hit" {
		t.Errorf("cache headers %v, want [miss hit]", headers)
	}

	if resp, err := http.Get(url + "/livez"); err != nil || resp.StatusCode != 200 {
		t.Errorf("livez: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}

	resp, err = http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	ep := st.Endpoints["verify"]
	if ep.Requests != 2 || ep.Hits != 1 || ep.Computes != 1 {
		t.Errorf("stats: %+v", ep)
	}
	if st.Cache.Entries != 1 {
		t.Errorf("cache entries %d, want 1", st.Cache.Entries)
	}
}

// TestDrainMidStreamFinishesBatch is the SIGTERM contract, leak-
// checked: a drain triggered while an NDJSON batch is computing must
// flip /healthz to 503 {"status":"draining"} immediately, let the
// in-flight batch finish and deliver every verdict, shut the daemon
// down cleanly, and leave no goroutines behind.
func TestDrainMidStreamFinishesBatch(t *testing.T) {
	baseline := runtime.NumGoroutine()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	var gateOnce sync.Once
	release := func() { gateOnce.Do(func() { close(gate) }) }
	defer release()
	started := make(chan struct{}, 8)
	cfg := serve.Config{Workers: 2, OnCompute: func() {
		started <- struct{}{}
		<-gate
	}}
	drain := make(chan struct{})
	runDone := make(chan error, 1)
	// A long grace keeps the listener open while we assert the
	// draining readiness; the batch finishes inside it.
	opts := drainOptions{grace: 2 * time.Second, deadline: 5 * time.Second}
	go func() { runDone <- run(ln, cfg, opts, drain, func(string, ...any) {}) }()
	base := "http://" + ln.Addr().String()

	tr := &http.Transport{}
	hc := &http.Client{Transport: tr, Timeout: 10 * time.Second}
	cl := client.New(base, client.WithHTTPClient(hc))

	// One NDJSON batch, its compute held at the gate.
	reqs := []sortnets.Request{
		{Network: "n=4: [1,2][3,4][1,3][2,4][2,3]"},
		{Network: "n=4: [1,2][3,4][1,3][2,4][2,3]"},
		{Network: "n=4: [1,2][3,4][1,3][2,4][2,3]"},
	}
	type batchResult struct {
		vs  []*sortnets.Verdict
		err error
	}
	batchDone := make(chan batchResult, 1)
	go func() {
		vs, err := cl.DoBatch(context.Background(), reqs)
		batchDone <- batchResult{vs, err}
	}()
	<-started // the batch is mid-compute

	// SIGTERM (the test's stand-in shares main's channel wiring).
	close(drain)

	// Readiness must flip to 503 {"status":"draining"} within the
	// grace window, while the batch is still in flight.
	deadline := time.Now().Add(time.Second)
	for {
		resp, err := hc.Get(base + "/healthz")
		if err == nil {
			var body struct {
				Status string `json:"status"`
			}
			json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusServiceUnavailable && body.Status == "draining" {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Let the in-flight batch finish: every verdict must arrive.
	release()
	res := <-batchDone
	if res.err != nil {
		t.Fatalf("draining server failed the in-flight batch: %v", res.err)
	}
	for i, v := range res.vs {
		if v == nil || v.Digest == "" {
			t.Fatalf("verdict %d missing after drain: %+v", i, v)
		}
	}

	if err := <-runDone; err != nil {
		t.Fatalf("run returned %v after drain", err)
	}
	tr.CloseIdleConnections()

	// Leak check: everything the daemon and the batch spawned must be
	// gone (small slack for the test's own helpers winding down).
	leakDeadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		} else if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak after drain: %d → %d\n%s",
				baseline, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
