package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunEmitAndCheck(t *testing.T) {
	// Emitting writes to stdout; capture via a pipe-free path: emit by
	// calling run with n (stdout noise is acceptable in tests), then
	// round-trip through a file by constructing the JSON ourselves.
	// Simplest honest check: emit to a temp file via os.Stdout swap.
	tmp := filepath.Join(t.TempDir(), "cert.json")
	f, err := os.Create(tmp)
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = f
	err = run(3, "", 1)
	os.Stdout = old
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := run(0, tmp, 0); err != nil {
		t.Fatalf("check of emitted certificate failed: %v", err)
	}
}

func TestRunCheckRejectsGarbage(t *testing.T) {
	tmp := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(tmp, []byte(`{"lines":3,"entries":[]}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run(0, tmp, 0); err == nil {
		t.Error("empty certificate should be rejected")
	}
	if err := run(0, filepath.Join(t.TempDir(), "missing.json"), 1); err == nil {
		t.Error("missing file should error")
	}
}

func TestRunRangeCheck(t *testing.T) {
	old := os.Stdout
	os.Stdout, _ = os.Open(os.DevNull)
	defer func() { os.Stdout = old }()
	if err := run(1, "", 1); err == nil {
		t.Error("n=1 should error")
	}
	if err := run(17, "", 2); err == nil {
		t.Error("n=17 should error")
	}
}
