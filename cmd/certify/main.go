// Command certify emits and checks machine-verifiable lower-bound
// certificates for Theorem 2.2(i): one Lemma 2.1 witness network per
// non-sorted string. A verifier needs no trust in this library's
// construction code — only in the 20-line check that each witness
// sorts everything except its σ.
//
// Usage:
//
//	certify -n 6 > cert6.json        # emit a certificate
//	certify -check cert6.json        # independently re-verify one
//	certify -n 14 -workers 0 ...     # spread witness sweeps over all cores
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sortnets/internal/core"
)

func main() {
	n := flag.Int("n", 5, "number of lines (certificate has 2^n-n-1 entries)")
	check := flag.String("check", "", "verify a certificate file instead of emitting one")
	workers := flag.Int("workers", 0, "witness-verification workers: 0 = automatic (all cores), 1 = sequential, k = exactly k")
	flag.Parse()

	if err := run(*n, *check, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "certify:", err)
		os.Exit(1)
	}
}

func run(n int, check string, workers int) error {
	if check != "" {
		data, err := os.ReadFile(check)
		if err != nil {
			return err
		}
		var cert core.Certificate
		if err := json.Unmarshal(data, &cert); err != nil {
			return err
		}
		if err := cert.VerifyParallel(workers); err != nil {
			return fmt.Errorf("INVALID: %v", err)
		}
		fmt.Printf("valid: %d witnesses prove the 2^%d-%d-1 = %d lower bound for n=%d\n",
			len(cert.Entries), cert.N, cert.N, len(cert.Entries), cert.N)
		return nil
	}

	if n < 2 || n > 16 {
		return fmt.Errorf("n=%d out of the emitting range 2..16", n)
	}
	cert := core.MinimalityCertificate(n)
	if err := cert.VerifyParallel(workers); err != nil {
		return fmt.Errorf("self-check failed: %v", err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	return enc.Encode(cert)
}
