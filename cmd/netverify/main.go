// Command netverify decides whether a comparator network has a
// property, using the paper's minimal test sets, and reports a
// counterexample on failure.
//
// The network is read from a file (or stdin with -net -) in the text
// format "n=4: [1,3][2,4][1,2][3,4]" (1-based lines, as in the paper).
//
// Usage:
//
//	netverify -net fig1.txt -prop sorter
//	netverify -net net.txt  -prop selector -k 2
//	netverify -net net.txt  -prop merger -inputs perm
//	echo 'n=2: [1,2]' | netverify -net - -prop sorter -diagram
//
// Exit status: 0 when the property holds, 1 when it fails, 2 on usage
// errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sortnets/internal/network"
	"sortnets/internal/verify"
)

func main() {
	netFile := flag.String("net", "", "network file, or '-' for stdin")
	prop := flag.String("prop", "sorter", "property: sorter | selector | merger")
	k := flag.Int("k", 1, "selection arity (selector only)")
	inputs := flag.String("inputs", "binary", "input model: binary | perm")
	workers := flag.Int("workers", 1, "parallel verification workers (binary only; 0 = GOMAXPROCS)")
	diagram := flag.Bool("diagram", false, "print the network diagram first")
	analyze := flag.Bool("analyze", false, "print structural statistics (size, depth, height, redundancy)")
	flag.Parse()

	code, err := run(os.Stdout, *netFile, *prop, *k, *inputs, *workers, *diagram, *analyze)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netverify:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(out io.Writer, netFile, prop string, k int, inputs string, workers int, diagram, analyze bool) (int, error) {
	if netFile == "" {
		return 0, fmt.Errorf("missing -net")
	}
	var data []byte
	var err error
	if netFile == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(netFile)
	}
	if err != nil {
		return 0, err
	}
	w, err := network.Parse(string(data))
	if err != nil {
		return 0, err
	}
	if diagram {
		fmt.Fprintf(out, "%s\n%s\n", w.Format(), w.Diagram())
	}
	if analyze {
		if w.N > 24 {
			return 0, fmt.Errorf("-analyze sweeps 2^n inputs; n=%d is too wide", w.N)
		}
		fmt.Fprintf(out, "analysis: %s\n", w.Analyze())
	}

	var p verify.Property
	switch prop {
	case "sorter":
		p = verify.Sorter{N: w.N}
	case "selector":
		p = verify.Selector{N: w.N, K: k}
	case "merger":
		if w.N%2 != 0 {
			return 0, fmt.Errorf("merger property needs an even line count, network has %d", w.N)
		}
		p = verify.Merger{N: w.N}
	default:
		return 0, fmt.Errorf("unknown property %q", prop)
	}

	switch inputs {
	case "perm":
		r := verify.VerdictPerms(w, p)
		fmt.Fprintf(out, "%s: %s\n", p.Name(), r)
		if !r.Holds {
			return 1, nil
		}
	case "binary":
		var r verify.Result
		if workers == 1 {
			r = verify.Verdict(w, p)
		} else {
			r = verify.VerdictParallel(w, p, workers)
		}
		fmt.Fprintf(out, "%s: %s\n", p.Name(), r)
		if !r.Holds {
			return 1, nil
		}
	default:
		return 0, fmt.Errorf("unknown input model %q", inputs)
	}
	return 0, nil
}
