// Command netverify decides whether a comparator network has a
// property, using the paper's minimal test sets, and reports a
// counterexample on failure.
//
// The network is read from a file (or stdin with -net -) in the text
// format "n=4: [1,3][2,4][1,2][3,4]" (1-based lines, as in the paper).
//
// Usage:
//
//	netverify -net fig1.txt -prop sorter
//	netverify -net net.txt  -prop selector -k 2
//	netverify -net net.txt  -prop merger -inputs perm
//	netverify -net big.txt  -exhaustive -timeout 30s
//	echo 'n=2: [1,2]' | netverify -net - -prop sorter -diagram
//
// Verdicts run through a sortnets.Session, so -timeout is a real
// deadline: it propagates into the engine loops and stops the sweep
// (a 2ⁿ exhaustive run returns a deadline error instead of hanging).
// The -workers flag follows the repository-wide rule: 0 = automatic
// (sequential under the engine's work threshold, all cores above),
// 1 = strictly sequential (deterministic stream-order
// counterexample), k > 1 = exactly k workers.
//
// Exit status: 0 when the property holds, 1 when it fails, 2 on usage
// errors or a missed deadline.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"sortnets"
)

func main() {
	netFile := flag.String("net", "", "network file, or '-' for stdin")
	prop := flag.String("prop", "sorter", "property: sorter | selector | merger")
	k := flag.Int("k", 1, "selection arity (selector only)")
	inputs := flag.String("inputs", "binary", "input model: binary | perm")
	workers := flag.Int("workers", 0, "verification workers (binary only): 0 = automatic, 1 = sequential, k = exactly k")
	timeout := flag.Duration("timeout", 0, "give up after this long (0 = no deadline), e.g. 30s")
	exhaustive := flag.Bool("exhaustive", false, "sweep all 2^n binary inputs instead of the minimal test set")
	diagram := flag.Bool("diagram", false, "print the network diagram first")
	analyze := flag.Bool("analyze", false, "print structural statistics (size, depth, height, redundancy)")
	flag.Parse()

	code, err := run(os.Stdout, *netFile, *prop, *k, *inputs, *workers, *timeout, *exhaustive, *diagram, *analyze)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netverify:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(out io.Writer, netFile, prop string, k int, inputs string, workers int, timeout time.Duration, exhaustive, diagram, analyze bool) (int, error) {
	if netFile == "" {
		return 0, errors.New("missing -net")
	}
	var data []byte
	var err error
	if netFile == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(netFile)
	}
	if err != nil {
		return 0, err
	}
	w, err := sortnets.ParseNetwork(string(data))
	if err != nil {
		return 0, err
	}
	if diagram {
		fmt.Fprintf(out, "%s\n%s\n", w.Format(), w.Diagram())
	}
	if analyze {
		if w.N > 24 {
			return 0, fmt.Errorf("-analyze sweeps 2^n inputs; n=%d is too wide", w.N)
		}
		fmt.Fprintf(out, "analysis: %s\n", w.Analyze())
	}

	var p sortnets.Property
	switch prop {
	case "sorter":
		p = sortnets.SorterProp{N: w.N}
	case "selector":
		p = sortnets.SelectorProp{N: w.N, K: k}
	case "merger":
		if w.N%2 != 0 {
			return 0, fmt.Errorf("merger property needs an even line count, network has %d", w.N)
		}
		p = sortnets.MergerProp{N: w.N}
	default:
		return 0, fmt.Errorf("unknown property %q", prop)
	}

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	sess := sortnets.DefaultSession()

	switch inputs {
	case "perm":
		if exhaustive {
			return 0, errors.New("-exhaustive applies to the binary input model only")
		}
		r, err := sess.CheckPerms(ctx, w, p)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", p.Name(), err)
		}
		fmt.Fprintf(out, "%s: %s\n", p.Name(), r)
		if !r.Holds {
			return 1, nil
		}
	case "binary":
		var r sortnets.Result
		if exhaustive {
			r, err = sess.GroundTruthParallel(ctx, w, p, workers)
		} else {
			r, err = sess.CheckParallel(ctx, w, p, workers)
		}
		if err != nil {
			return 0, fmt.Errorf("%s: %w", p.Name(), err)
		}
		fmt.Fprintf(out, "%s: %s\n", p.Name(), r)
		if !r.Holds {
			return 1, nil
		}
	default:
		return 0, fmt.Errorf("unknown input model %q", inputs)
	}
	return 0, nil
}
