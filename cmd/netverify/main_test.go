package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sortnets"
)

func writeNet(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "net.txt")
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSorterPass(t *testing.T) {
	path := writeNet(t, "n=4: [1,2][3,4][1,3][2,4][2,3]")
	var sb strings.Builder
	code, err := run(&sb, path, "sorter", 1, "binary", 1, 0, false, true, true)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	out := sb.String()
	if !strings.Contains(out, "holds (11 tests)") {
		t.Errorf("missing verdict:\n%s", out)
	}
	if !strings.Contains(out, "analysis:") || !strings.Contains(out, "depth 3") {
		t.Errorf("missing analysis:\n%s", out)
	}
}

func TestRunSorterFail(t *testing.T) {
	path := writeNet(t, "n=4: [1,3][2,4][1,2][3,4]")
	var sb strings.Builder
	code, err := run(&sb, path, "sorter", 1, "binary", 1, 0, false, false, false)
	if err != nil || code != 1 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	if !strings.Contains(sb.String(), "fails on 1010") {
		t.Errorf("missing counterexample:\n%s", sb.String())
	}
}

func TestRunPermInputs(t *testing.T) {
	path := writeNet(t, "n=4: [1,2][3,4][1,3][2,4][2,3]")
	var sb strings.Builder
	code, err := run(&sb, path, "sorter", 1, "perm", 1, 0, false, false, false)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	if !strings.Contains(sb.String(), "permutation tests") {
		t.Errorf("missing perm verdict:\n%s", sb.String())
	}
}

func TestRunSelectorAndMerger(t *testing.T) {
	sel := writeNet(t, "n=4: [3,4][2,3][1,2]")
	var sb strings.Builder
	code, err := run(&sb, sel, "selector", 1, "binary", 1, 0, false, false, false)
	if err != nil || code != 0 {
		t.Fatalf("selector: code=%d err=%v out=%s", code, err, sb.String())
	}
	mrg := writeNet(t, "n=4: [1,3][2,4][2,3]")
	sb.Reset()
	code, err = run(&sb, mrg, "merger", 1, "binary", 2, 0, false, false, false)
	if err != nil || code != 0 {
		t.Fatalf("merger: code=%d err=%v out=%s", code, err, sb.String())
	}
}

func TestRunExhaustive(t *testing.T) {
	path := writeNet(t, "n=4: [1,2][3,4][1,3][2,4][2,3]")
	var sb strings.Builder
	code, err := run(&sb, path, "sorter", 1, "binary", 1, 0, true, false, false)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v out=%s", code, err, sb.String())
	}
	if !strings.Contains(sb.String(), "holds (16 tests)") { // 2⁴ ground-truth inputs
		t.Errorf("missing exhaustive verdict:\n%s", sb.String())
	}
}

// TestRunTimeoutGroundTruth is the satellite contract: a deliberately
// huge exhaustive sweep under a tiny -timeout must return a deadline
// error promptly, not hang.
func TestRunTimeoutGroundTruth(t *testing.T) {
	// 2³⁰ inputs through a few hundred comparators: seconds of work,
	// cancelled within one engine block of the 50ms deadline.
	path := writeNet(t, sortnets.BatcherSorter(30).Format())
	var sb strings.Builder
	start := time.Now()
	_, err := run(&sb, path, "sorter", 1, "binary", 1, 50*time.Millisecond, true, false, false)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v (out=%s)", err, sb.String())
	}
	if elapsed > 2*time.Second {
		t.Errorf("deadline honored only after %v", elapsed)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if _, err := run(&sb, "", "sorter", 1, "binary", 1, 0, false, false, false); err == nil {
		t.Error("missing -net should error")
	}
	if _, err := run(&sb, "/nonexistent/net.txt", "sorter", 1, "binary", 1, 0, false, false, false); err == nil {
		t.Error("missing file should error")
	}
	bad := writeNet(t, "n=4: [4,1]")
	if _, err := run(&sb, bad, "sorter", 1, "binary", 1, 0, false, false, false); err == nil {
		t.Error("invalid network should error")
	}
	good := writeNet(t, "n=3: [1,2]")
	if _, err := run(&sb, good, "merger", 1, "binary", 1, 0, false, false, false); err == nil {
		t.Error("odd-width merger should error")
	}
	if _, err := run(&sb, good, "unknown", 1, "binary", 1, 0, false, false, false); err == nil {
		t.Error("unknown property should error")
	}
	if _, err := run(&sb, good, "sorter", 1, "ternary", 1, 0, false, false, false); err == nil {
		t.Error("unknown input model should error")
	}
	if _, err := run(&sb, good, "sorter", 1, "perm", 1, 0, true, false, false); err == nil {
		t.Error("exhaustive+perm should error")
	}
}
