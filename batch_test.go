package sortnets

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"

	"sortnets/internal/network"
)

// randomMixedBatch draws a batch of verify/faults/minset requests over
// random small networks, salted with duplicates (same canonical
// circuit, sometimes written with its parallel layers interleaved
// differently), tagged IDs, and malformed entries of every rejection
// class. It is shared by the local and the NDJSON round-trip
// equivalence tests.
func randomMixedBatch(rng *rand.Rand) []Request {
	var batch []Request
	size := 1 + rng.Intn(12)
	for len(batch) < size {
		switch rng.Intn(10) {
		case 0: // duplicate of an earlier entry
			if len(batch) > 0 {
				dup := batch[rng.Intn(len(batch))]
				dup.ID = "" // half the duplicates keep their own tag
				if rng.Intn(2) == 0 {
					dup.ID = randID(rng)
				}
				batch = append(batch, dup)
				continue
			}
		case 1: // malformed, one class per draw
			batch = append(batch, []Request{
				{Network: "n=4: [zap"},
				{Op: "conjure", Network: "n=2: [1,2]"},
				{},
				{Network: "n=4: [1,2]", Property: "frobnicate"},
				{Lines: 2, Comparators: [][2]int{{2, 1}}},
				{Op: OpFaults, Network: "n=4: [1,2]", Property: "selector", K: 1},
				{Network: "n=44:"},
			}[rng.Intn(7)])
			continue
		case 2, 3: // faults / minset on a small network
			n := 3 + rng.Intn(3)
			req := Request{
				Op:      []string{OpFaults, OpMinset}[rng.Intn(2)],
				Network: network.Random(n, 2+rng.Intn(3*n), rng).Format(),
				ID:      randID(rng),
			}
			if rng.Intn(3) == 0 {
				req.Mode = "by-golden"
			}
			if req.Op == OpMinset && rng.Intn(3) == 0 {
				req.Exact = true
			}
			batch = append(batch, req)
			continue
		}
		// The common case: verify, over the three properties.
		n := 2 + rng.Intn(7)
		req := Request{Network: network.Random(n, rng.Intn(4*n), rng).Format()}
		switch rng.Intn(4) {
		case 0:
			req.Property = "selector"
			req.K = 1 + rng.Intn(n)
		case 1:
			if n%2 == 0 {
				req.Property = "merger"
			}
		}
		if rng.Intn(4) == 0 {
			req.Exhaustive = true
		}
		if rng.Intn(2) == 0 {
			req.ID = randID(rng)
		}
		batch = append(batch, req)
	}
	return batch
}

func randID(rng *rand.Rand) string {
	const alpha = "abcdefgh"
	b := make([]byte, 1+rng.Intn(6))
	for i := range b {
		b[i] = alpha[rng.Intn(len(alpha))]
	}
	return string(b)
}

// sameRequestFailure asserts two errors agree as wire failures:
// both *RequestError with equal status and message.
func sameRequestFailure(t *testing.T, label string, want, got error) {
	t.Helper()
	var wre, gre *RequestError
	if !errors.As(want, &wre) || !errors.As(got, &gre) {
		t.Fatalf("%s: error shape divergence: sequential %v, batch %v", label, want, got)
	}
	if wre.Status != gre.Status || wre.Msg != gre.Msg {
		t.Fatalf("%s: error divergence: sequential %d %q, batch %d %q", label, wre.Status, wre.Msg, gre.Status, gre.Msg)
	}
}

// TestDoBatchMatchesSequentialDo is the acceptance property: on
// randomized mixed-op batches — duplicates, tagged IDs, malformed
// entries included — every DoBatch verdict must marshal to the exact
// bytes a sequential Do of the same entry produces, and every
// per-entry failure must be the same typed *RequestError.
func TestDoBatchMatchesSequentialDo(t *testing.T) {
	seq := NewSession()
	bat := NewSession()
	defer seq.Close()
	defer bat.Close()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))

	for trial := 0; trial < 40; trial++ {
		batch := randomMixedBatch(rng)
		wantV := make([]*Verdict, len(batch))
		wantE := make([]error, len(batch))
		for i, req := range batch {
			wantV[i], wantE[i] = seq.Do(ctx, req)
		}
		gotV, err := bat.DoBatch(ctx, batch)
		var be *BatchError
		if err != nil && !errors.As(err, &be) {
			t.Fatalf("trial %d: DoBatch whole-batch error: %v", trial, err)
		}
		if len(gotV) != len(batch) {
			t.Fatalf("trial %d: %d verdicts for %d entries", trial, len(gotV), len(batch))
		}
		for i := range batch {
			label := batch[i].Op + " " + batch[i].Network
			var gotE error
			if be != nil {
				gotE = be.Errs[i]
			}
			if (wantE[i] == nil) != (gotE == nil) {
				t.Fatalf("trial %d entry %d (%s): sequential err %v, batch err %v", trial, i, label, wantE[i], gotE)
			}
			if wantE[i] != nil {
				sameRequestFailure(t, label, wantE[i], gotE)
				if gotV[i] != nil {
					t.Fatalf("trial %d entry %d: verdict alongside error", trial, i)
				}
				continue
			}
			wb, werr := MarshalVerdict(wantV[i])
			gb, gerr := MarshalVerdict(gotV[i])
			if werr != nil || gerr != nil {
				t.Fatal(werr, gerr)
			}
			if string(wb) != string(gb) {
				t.Fatalf("trial %d entry %d (%s): verdicts differ:\nsequential: %s\nbatch:      %s", trial, i, label, wb, gb)
			}
		}
	}
	// The equivalence must have exercised the interesting paths, not
	// vacuously passed through singleton fallback.
	st := bat.Stats().Batch
	if st.Grouped == 0 || st.Deduped == 0 {
		t.Fatalf("property test never hit the batch machinery: %+v", st)
	}
}

// TestDoBatchDedupGroupingAndIDs pins the semantics the README
// documents: intra-batch duplicates collapse to one computation
// (Source "coalesced", own ID echoed), same-width same-property
// verify entries share one grouped engine pass, and a second
// identical batch is all cache hits.
func TestDoBatchDedupGroupingAndIDs(t *testing.T) {
	sess := NewSession()
	defer sess.Close()
	ctx := context.Background()
	reqs := []Request{
		{ID: "a", Network: sessSorter4},
		{ID: "b", Network: "n=4: [3,4][1,2][1,3][2,4][2,3]"}, // same canonical circuit as "a"
		{ID: "c", Network: "n=4: [1,2][3,4]"},                // groups with "a"
		{ID: "d", Op: OpFaults, Network: sessSorter4},        // fallback path
	}
	vs, err := sess.DoBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"a", "b", "c", "d"} {
		if vs[i] == nil || vs[i].ID != want {
			t.Fatalf("entry %d: verdict %+v, want ID %q", i, vs[i], want)
		}
	}
	if vs[1].Source != "coalesced" || vs[1].Digest != vs[0].Digest {
		t.Errorf("duplicate: source %q digest %q, want coalesced copy of %q", vs[1].Source, vs[1].Digest, vs[0].Digest)
	}
	if vs[0].Source != "miss" || vs[2].Source != "miss" {
		t.Errorf("grouped entries: sources %q, %q, want miss", vs[0].Source, vs[2].Source)
	}
	if !vs[0].Check.Holds || vs[2].Check.Holds {
		t.Errorf("grouped verdicts wrong: %+v, %+v", vs[0].Check, vs[2].Check)
	}
	st := sess.Stats()
	if b := st.Batch; b.Batches != 1 || b.Entries != 4 || b.Deduped != 1 || b.Grouped != 2 || b.Groups != 1 {
		t.Errorf("batch stats %+v, want 1 batch / 4 entries / 1 deduped / 2 grouped / 1 group", b)
	}
	// An identical second batch is answered from the verdict cache.
	vs2, err := sess.DoBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vs2 {
		if i != 1 && vs2[i].Source != "hit" {
			t.Errorf("second batch entry %d: source %q, want hit", i, vs2[i].Source)
		}
		b1, _ := MarshalVerdict(vs[i])
		b2, _ := MarshalVerdict(vs2[i])
		if string(b1) != string(b2) {
			t.Errorf("entry %d: cached batch verdict not byte-identical:\n%s\n%s", i, b1, b2)
		}
	}
}

// TestDoBatchCancelMidGroup aborts a batch inside the grouped
// eval.RunMany pass — the compute hook fires on the pool worker right
// before the pass and pulls the plug — and asserts the prompt typed
// error, no goroutine leaks beyond the pool, and a fully usable
// session afterwards.
func TestDoBatchCancelMidGroup(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sess := NewSession(WithComputeHook(func() { cancel() }))
	defer sess.Close()
	rng := rand.New(rand.NewSource(3))
	var reqs []Request
	for i := 0; i < 5; i++ {
		reqs = append(reqs, Request{Network: network.Random(16, 60, rng).Format()})
	}
	before := runtime.NumGoroutine()
	vs, err := sess.DoBatch(ctx, reqs)
	if !errors.Is(err, context.Canceled) || vs != nil {
		t.Fatalf("want (nil, context.Canceled), got (%v, %v)", vs, err)
	}
	waitGoroutines(t, int64(before+sess.Workers()))
	if c := sess.Stats().Ops[OpVerify].Canceled; c != int64(len(reqs)) {
		t.Errorf("canceled counter %d, want %d", c, len(reqs))
	}
	// The same batch completes under a live context (the stale hook
	// re-cancels the already-dead context, which is harmless).
	vs, err = sess.DoBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vs {
		if v == nil || v.Check == nil {
			t.Fatalf("entry %d after cancellation: %+v", i, v)
		}
	}
}

// TestCheckManyMatchesCheck: the fleet convenience must agree with
// per-network Check exactly, across random fleets (duplicates
// included), the three properties, and warm-vs-cold caches.
func TestCheckManyMatchesCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	fleetSess := NewSession()
	soloSess := NewSession()
	defer fleetSess.Close()
	defer soloSess.Close()
	ctx := context.Background()
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(7)
		var p Property = SorterProp{N: n}
		switch {
		case trial%3 == 1:
			p = SelectorProp{N: n, K: 1 + rng.Intn(n)}
		case trial%3 == 2 && n%2 == 0:
			p = MergerProp{N: n}
		}
		ws := make([]*Network, 1+rng.Intn(8))
		for i := range ws {
			if i > 0 && rng.Intn(4) == 0 {
				ws[i] = ws[rng.Intn(i)] // duplicate
				continue
			}
			ws[i] = network.Random(n, rng.Intn(4*n), rng)
		}
		got, err := fleetSess.CheckMany(ctx, ws, p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i, w := range ws {
			want, err := soloSess.Check(ctx, w, p)
			if err != nil {
				t.Fatal(err)
			}
			if got[i] != want {
				t.Fatalf("trial %d network %d (%s, %s):\nCheckMany %+v\nCheck     %+v",
					trial, i, w.Format(), p.Name(), got[i], want)
			}
		}
		// Warm second pass: all hits, same results.
		again, err := fleetSess.CheckMany(ctx, ws, p)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ws {
			if again[i] != got[i] {
				t.Fatalf("trial %d network %d: warm CheckMany diverged: %+v vs %+v", trial, i, again[i], got[i])
			}
		}
	}
}

// TestAdaptDoer: the compatibility adapter upgrades a single-shot
// implementation to the batched interface with matching semantics.
func TestAdaptDoer(t *testing.T) {
	sess := NewSession()
	defer sess.Close()
	var d Doer = AdaptDoer(singleOnly{sess})
	ctx := context.Background()
	reqs := []Request{
		{ID: "x", Network: sessSorter4},
		{Network: "n=4: [zap"},
		{ID: "y", Network: sessSorter4},
	}
	vs, err := d.DoBatch(ctx, reqs)
	var be *BatchError
	if !errors.As(err, &be) || be.Errs[1] == nil || be.Errs[0] != nil {
		t.Fatalf("adapter errors: %v", err)
	}
	if vs[0] == nil || vs[0].ID != "x" || vs[2] == nil || vs[2].ID != "y" || vs[1] != nil {
		t.Fatalf("adapter verdicts: %+v", vs)
	}
	direct, err := sess.Do(ctx, reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	db, _ := MarshalVerdict(direct)
	ab, _ := MarshalVerdict(vs[0])
	if string(db) != string(ab) {
		t.Fatalf("adapter verdict differs from Do:\n%s\n%s", db, ab)
	}
}

// singleOnly hides Session's own DoBatch so the adapter is what the
// test exercises.
type singleOnly struct{ s *Session }

func (s singleOnly) Do(ctx context.Context, req Request) (*Verdict, error) { return s.s.Do(ctx, req) }
