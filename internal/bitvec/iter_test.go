package bitvec

import (
	"testing"
)

func TestAllEnumeratesUniverse(t *testing.T) {
	for n := 0; n <= 10; n++ {
		seen := make(map[uint64]bool)
		it := All(n)
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			if v.N != n {
				t.Fatalf("n=%d: vector of length %d", n, v.N)
			}
			if seen[v.Bits] {
				t.Fatalf("n=%d: duplicate %q", n, v)
			}
			seen[v.Bits] = true
		}
		if len(seen) != Universe(n) {
			t.Errorf("n=%d: enumerated %d, want %d", n, len(seen), Universe(n))
		}
	}
}

func TestFixedWeightCounts(t *testing.T) {
	for n := 0; n <= 14; n++ {
		total := 0
		for k := 0; k <= n; k++ {
			c := Count(FixedWeight(n, k))
			if c != binom(n, k) {
				t.Errorf("n=%d k=%d: count %d, want C(n,k)=%d", n, k, c, binom(n, k))
			}
			total += c
		}
		if total != Universe(n) {
			t.Errorf("n=%d: weights total %d, want 2^n=%d", n, total, Universe(n))
		}
	}
}

func TestFixedWeightContents(t *testing.T) {
	it := FixedWeight(4, 2)
	var got []string
	for {
		v, ok := it.Next()
		if !ok {
			break
		}
		if v.Ones() != 2 {
			t.Errorf("vector %q has weight %d", v, v.Ones())
		}
		got = append(got, v.String())
	}
	want := []string{"1100", "1010", "0110", "1001", "0101", "0011"}
	if len(got) != len(want) {
		t.Fatalf("got %d vectors: %v", len(got), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("position %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

func TestFixedWeightEdges(t *testing.T) {
	if Count(FixedWeight(5, -1)) != 0 {
		t.Error("negative weight should be empty")
	}
	if Count(FixedWeight(5, 6)) != 0 {
		t.Error("over-weight should be empty")
	}
	if Count(FixedWeight(0, 0)) != 1 {
		t.Error("FixedWeight(0,0) should yield the empty vector once")
	}
	if Count(FixedWeight(5, 0)) != 1 || Count(FixedWeight(5, 5)) != 1 {
		t.Error("extreme weights should yield exactly one vector")
	}
}

func TestMaxWeightAndMaxZeros(t *testing.T) {
	for n := 0; n <= 12; n++ {
		for k := 0; k <= n; k++ {
			want := 0
			for i := 0; i <= k; i++ {
				want += binom(n, i)
			}
			if c := Count(MaxWeight(n, k)); c != want {
				t.Errorf("MaxWeight(%d,%d) = %d, want %d", n, k, c, want)
			}
			if c := Count(MaxZeros(n, k)); c != want {
				t.Errorf("MaxZeros(%d,%d) = %d, want %d", n, k, c, want)
			}
		}
	}
	// MaxZeros yields vectors with at most k zeroes.
	it := MaxZeros(6, 2)
	for {
		v, ok := it.Next()
		if !ok {
			break
		}
		if v.Zeros() > 2 {
			t.Errorf("MaxZeros(6,2) yielded %q with %d zeroes", v, v.Zeros())
		}
	}
}

func TestNotSortedFilter(t *testing.T) {
	for n := 1; n <= 12; n++ {
		c := Count(NotSorted(All(n)))
		want := Universe(n) - (n + 1)
		if c != want {
			t.Errorf("n=%d: %d non-sorted vectors, want 2^n-(n+1)=%d", n, c, want)
		}
	}
}

func TestGrayCodeAdjacency(t *testing.T) {
	for n := 1; n <= 10; n++ {
		it := GrayCode(n)
		prev, ok := it.Next()
		if !ok {
			t.Fatal("empty gray code")
		}
		seen := map[uint64]bool{prev.Bits: true}
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			if d := prev.Bits ^ v.Bits; d == 0 || d&(d-1) != 0 {
				t.Fatalf("n=%d: consecutive gray codes %q -> %q differ in != 1 bit", n, prev, v)
			}
			if seen[v.Bits] {
				t.Fatalf("n=%d: duplicate %q", n, v)
			}
			seen[v.Bits] = true
			prev = v
		}
		if len(seen) != Universe(n) {
			t.Errorf("n=%d: gray code covered %d of %d", n, len(seen), Universe(n))
		}
	}
}

func TestCollectAndSlice(t *testing.T) {
	vs := Collect(FixedWeight(5, 3))
	if len(vs) != 10 {
		t.Fatalf("collected %d, want 10", len(vs))
	}
	again := Collect(Slice(vs))
	if len(again) != len(vs) {
		t.Fatalf("slice iterator yielded %d", len(again))
	}
	for i := range vs {
		if vs[i] != again[i] {
			t.Errorf("position %d differs", i)
		}
	}
}

func TestRankUnrankFixedWeight(t *testing.T) {
	for n := 0; n <= 12; n++ {
		for k := 0; k <= n; k++ {
			it := FixedWeight(n, k)
			rank := 0
			for {
				v, ok := it.Next()
				if !ok {
					break
				}
				if got := RankFixedWeight(v); got != rank {
					t.Fatalf("n=%d k=%d: rank of %q = %d, want %d", n, k, v, got, rank)
				}
				if got := UnrankFixedWeight(n, k, rank); got != v {
					t.Fatalf("n=%d k=%d: unrank(%d) = %q, want %q", n, k, rank, got, v)
				}
				rank++
			}
		}
	}
}

func TestFilter(t *testing.T) {
	evenOnes := Filter(All(6), func(v Vec) bool { return v.Ones()%2 == 0 })
	if c := Count(evenOnes); c != 32 {
		t.Errorf("even-weight count = %d, want 32", c)
	}
}
