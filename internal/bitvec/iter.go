package bitvec

import "math/bits"

// This file provides streaming enumeration of vector families. The test
// sets of the paper are exponentially large (Theorem 2.2: 2^n − n − 1
// vectors), so the verification engines consume iterators instead of
// materialized slices; materialization is available for the small n used
// in exhaustive experiments.

// Iterator yields a sequence of Vecs. Next returns false when the
// sequence is exhausted; after that, further calls keep returning false.
type Iterator interface {
	Next() (Vec, bool)
}

// Count drains an iterator and returns how many vectors it produced.
func Count(it Iterator) int {
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			return n
		}
		n++
	}
}

// Collect drains an iterator into a slice.
func Collect(it Iterator) []Vec {
	var out []Vec
	for {
		v, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// All enumerates every vector of length n in increasing word order
// (0^n first, 1^n last).
func All(n int) Iterator { return &allIter{n: n, next: 0, limit: uint64(Universe(n))} }

type allIter struct {
	n     int
	next  uint64
	limit uint64
}

func (it *allIter) Next() (Vec, bool) {
	if it.next >= it.limit {
		return Vec{}, false
	}
	v := Vec{N: it.n, Bits: it.next}
	it.next++
	return v, true
}

// FixedWeight enumerates every vector of length n with exactly k ones,
// in increasing word order, using Gosper's hack to step between
// same-popcount words in O(1).
func FixedWeight(n, k int) Iterator {
	if k < 0 || k > n {
		return &emptyIter{}
	}
	if k == 0 {
		return &singleIter{v: AllZeros(n)}
	}
	return &gosperIter{n: n, cur: uint64(1)<<uint(k) - 1, limit: lowMask(n)}
}

type emptyIter struct{}

func (emptyIter) Next() (Vec, bool) { return Vec{}, false }

type singleIter struct {
	v    Vec
	done bool
}

func (it *singleIter) Next() (Vec, bool) {
	if it.done {
		return Vec{}, false
	}
	it.done = true
	return it.v, true
}

type gosperIter struct {
	n     int
	cur   uint64
	limit uint64
	done  bool
}

func (it *gosperIter) Next() (Vec, bool) {
	if it.done || it.cur > it.limit {
		it.done = true
		return Vec{}, false
	}
	v := Vec{N: it.n, Bits: it.cur}
	// Gosper's hack: next larger word with the same popcount.
	c := it.cur
	lo := c & (^c + 1)
	lz := c + lo
	if lo == 0 || lz == 0 {
		it.done = true
		return v, true
	}
	it.cur = lz | (((c ^ lz) / lo) >> 2)
	return v, true
}

// MaxWeight enumerates every vector of length n with at most k ones,
// weight by weight (all weight-0, then weight-1, …). This is the
// enumeration order behind the selector test sets of Theorem 2.4, where
// the relevant strings have |σ|₀ ≤ k, i.e. complemented weight bounds.
func MaxWeight(n, k int) Iterator {
	if k > n {
		k = n
	}
	return &maxWeightIter{n: n, k: k, w: 0, inner: FixedWeight(n, 0)}
}

type maxWeightIter struct {
	n, k, w int
	inner   Iterator
}

func (it *maxWeightIter) Next() (Vec, bool) {
	for {
		if v, ok := it.inner.Next(); ok {
			return v, true
		}
		it.w++
		if it.w > it.k {
			return Vec{}, false
		}
		it.inner = FixedWeight(it.n, it.w)
	}
}

// MaxZeros enumerates every vector of length n with at most k zeroes
// (|σ|₀ ≤ k), the raw universe of the selector test set T⁺_k before the
// sorted strings are removed.
func MaxZeros(n, k int) Iterator {
	return &complementIter{inner: MaxWeight(n, k)}
}

type complementIter struct{ inner Iterator }

func (it *complementIter) Next() (Vec, bool) {
	v, ok := it.inner.Next()
	if !ok {
		return Vec{}, false
	}
	return v.Complement(), true
}

// NotSorted wraps an iterator, dropping every sorted vector. All three
// of the paper's 0/1 test sets are "some universe minus its sorted
// members": a sorted input can never witness a failure because standard
// comparators cannot unsort it.
func NotSorted(inner Iterator) Iterator { return &filterIter{inner: inner, keep: notSorted} }

func notSorted(v Vec) bool { return !v.IsSorted() }

// Filter yields only the vectors of inner for which keep returns true.
func Filter(inner Iterator, keep func(Vec) bool) Iterator {
	return &filterIter{inner: inner, keep: keep}
}

type filterIter struct {
	inner Iterator
	keep  func(Vec) bool
}

func (it *filterIter) Next() (Vec, bool) {
	for {
		v, ok := it.inner.Next()
		if !ok {
			return Vec{}, false
		}
		if it.keep(v) {
			return v, true
		}
	}
}

// Slice adapts a materialized slice back into an Iterator.
func Slice(vs []Vec) Iterator { return &sliceIter{vs: vs} }

type sliceIter struct {
	vs []Vec
	i  int
}

func (it *sliceIter) Next() (Vec, bool) {
	if it.i >= len(it.vs) {
		return Vec{}, false
	}
	v := it.vs[it.i]
	it.i++
	return v, true
}

// GrayCode enumerates all 2^n vectors in reflected-Gray-code order, so
// consecutive vectors differ in exactly one line. Used by benchmarks to
// exercise incremental evaluation.
func GrayCode(n int) Iterator {
	return &grayIter{n: n, i: 0, limit: uint64(Universe(n))}
}

type grayIter struct {
	n        int
	i, limit uint64
}

func (it *grayIter) Next() (Vec, bool) {
	if it.i >= it.limit {
		return Vec{}, false
	}
	v := Vec{N: it.n, Bits: it.i ^ (it.i >> 1)}
	it.i++
	return v, true
}

// RankFixedWeight returns the 0-based position of v in the increasing
// word order of all length-n weight-k vectors (the combinatorial number
// system). It is the inverse of UnrankFixedWeight.
func RankFixedWeight(v Vec) int {
	rank := 0
	k := 0
	w := v.Bits
	for w != 0 {
		i := bits.TrailingZeros64(w)
		w &^= 1 << uint(i)
		k++
		rank += binom(i, k)
	}
	return rank
}

// UnrankFixedWeight returns the rank-th (0-based) vector of length n
// with exactly k ones, in increasing word order.
func UnrankFixedWeight(n, k, rank int) Vec {
	var w uint64
	for ; k > 0; k-- {
		// Largest position p with binom(p, k) <= rank.
		p := k - 1
		for binom(p+1, k) <= rank {
			p++
		}
		rank -= binom(p, k)
		w |= 1 << uint(p)
	}
	return New(n, w)
}

// binom is a small local binomial; package comb has the full-featured
// version, but bitvec must not depend upward.
func binom(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
	}
	return r
}
