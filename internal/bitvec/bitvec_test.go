package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromStringRoundTrip(t *testing.T) {
	cases := []string{"", "0", "1", "01", "10", "0101", "1111", "0000", "100", "110", "010", "101"}
	for _, s := range cases {
		v, err := FromString(s)
		if err != nil {
			t.Fatalf("FromString(%q): %v", s, err)
		}
		if got := v.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
		if v.N != len(s) {
			t.Errorf("FromString(%q).N = %d, want %d", s, v.N, len(s))
		}
	}
}

func TestFromStringErrors(t *testing.T) {
	if _, err := FromString("01x"); err == nil {
		t.Error("expected error for invalid character")
	}
	long := make([]byte, MaxN+1)
	for i := range long {
		long[i] = '0'
	}
	if _, err := FromString(string(long)); err == nil {
		t.Error("expected error for over-long string")
	}
}

func TestFromBits(t *testing.T) {
	v, err := FromBits([]int{1, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "1011" {
		t.Errorf("got %q, want 1011", v.String())
	}
	if _, err := FromBits([]int{0, 2}); err == nil {
		t.Error("expected error for non-binary element")
	}
}

func TestBitAndSetBit(t *testing.T) {
	v := MustFromString("0101")
	want := []int{0, 1, 0, 1}
	for i, w := range want {
		if v.Bit(i) != w {
			t.Errorf("Bit(%d) = %d, want %d", i, v.Bit(i), w)
		}
	}
	v2 := v.SetBit(0, 1).SetBit(3, 0)
	if v2.String() != "1100" {
		t.Errorf("SetBit chain gave %q, want 1100", v2.String())
	}
	if v.String() != "0101" {
		t.Errorf("SetBit mutated receiver: %q", v.String())
	}
}

func TestOnesZeros(t *testing.T) {
	v := MustFromString("0110100")
	if v.Ones() != 3 || v.Zeros() != 4 {
		t.Errorf("Ones/Zeros = %d/%d, want 3/4", v.Ones(), v.Zeros())
	}
}

func TestIsSorted(t *testing.T) {
	sorted := []string{"", "0", "1", "01", "0011", "0001", "1111", "0000", "011111"}
	for _, s := range sorted {
		if !MustFromString(s).IsSorted() {
			t.Errorf("%q should be sorted", s)
		}
	}
	unsorted := []string{"10", "100", "101", "010", "110", "0110", "1000001"}
	for _, s := range unsorted {
		if MustFromString(s).IsSorted() {
			t.Errorf("%q should not be sorted", s)
		}
	}
}

func TestSortedCountMatchesFormula(t *testing.T) {
	// Exactly n+1 sorted vectors of length n: 0^a 1^(n-a).
	for n := 0; n <= 12; n++ {
		count := 0
		it := All(n)
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			if v.IsSorted() {
				count++
			}
		}
		if count != n+1 {
			t.Errorf("n=%d: %d sorted vectors, want %d", n, count, n+1)
		}
	}
}

func TestSortedWithOnes(t *testing.T) {
	if got := SortedWithOnes(5, 2).String(); got != "00011" {
		t.Errorf("SortedWithOnes(5,2) = %q, want 00011", got)
	}
	if got := SortedWithOnes(4, 0).String(); got != "0000" {
		t.Errorf("SortedWithOnes(4,0) = %q", got)
	}
	if got := SortedWithOnes(4, 4).String(); got != "1111" {
		t.Errorf("SortedWithOnes(4,4) = %q", got)
	}
	if got := SortedWithOnes(MaxN, MaxN); got.Ones() != MaxN {
		t.Errorf("SortedWithOnes(64,64) has %d ones", got.Ones())
	}
}

func TestSortedRearrangement(t *testing.T) {
	v := MustFromString("101001")
	if got := v.Sorted().String(); got != "000111" {
		t.Errorf("Sorted() = %q, want 000111", got)
	}
}

func TestLeq(t *testing.T) {
	a := MustFromString("0101")
	b := MustFromString("0111")
	if !Leq(a, b) {
		t.Error("0101 <= 0111 should hold")
	}
	if Leq(b, a) {
		t.Error("0111 <= 0101 should not hold")
	}
	if !Leq(a, a) {
		t.Error("Leq must be reflexive")
	}
}

func TestConcatAndSlice(t *testing.T) {
	a := MustFromString("011")
	b := MustFromString("001")
	c := Concat(a, b)
	if c.String() != "011001" {
		t.Errorf("Concat = %q, want 011001", c.String())
	}
	if got := c.Slice(0, 3); got != a {
		t.Errorf("Slice(0,3) = %q, want %q", got, a)
	}
	if got := c.Slice(3, 6); got != b {
		t.Errorf("Slice(3,6) = %q, want %q", got, b)
	}
	if got := c.Slice(2, 2); got.N != 0 {
		t.Errorf("empty slice has N=%d", got.N)
	}
}

func TestComplementReverse(t *testing.T) {
	v := MustFromString("1001101")
	if got := v.Complement().String(); got != "0110010" {
		t.Errorf("Complement = %q", got)
	}
	if got := v.Reverse().String(); got != "1011001" {
		t.Errorf("Reverse = %q", got)
	}
	if got := v.Reverse().Reverse(); got != v {
		t.Errorf("double reverse: %q", got)
	}
}

func TestUniverse(t *testing.T) {
	if Universe(0) != 1 || Universe(4) != 16 {
		t.Error("Universe sizes wrong")
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("New negative", func() { New(-1, 0) })
	mustPanic("New overflow bits", func() { New(3, 0b1000) })
	mustPanic("Leq mismatch", func() { Leq(MustFromString("01"), MustFromString("011")) })
	mustPanic("Slice range", func() { MustFromString("0101").Slice(2, 9) })
	mustPanic("SortedWithOnes range", func() { SortedWithOnes(3, 4) })
	mustPanic("Universe large", func() { Universe(63) })
}

func TestLeqIsPartialOrderProperty(t *testing.T) {
	// Property-based: Leq agrees with per-bit comparison, is transitive
	// and antisymmetric on random vectors.
	f := func(x, y, z uint16) bool {
		const n = 16
		a := New(n, uint64(x))
		b := New(n, uint64(y))
		c := New(n, uint64(z))
		slow := func(u, v Vec) bool {
			for i := 0; i < n; i++ {
				if u.Bit(i) > v.Bit(i) {
					return false
				}
			}
			return true
		}
		if Leq(a, b) != slow(a, b) {
			return false
		}
		if Leq(a, b) && Leq(b, c) && !Leq(a, c) {
			return false
		}
		if Leq(a, b) && Leq(b, a) && a != b {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConcatSliceProperty(t *testing.T) {
	f := func(x uint8, y uint16) bool {
		a := New(8, uint64(x))
		b := New(16, uint64(y))
		c := Concat(a, b)
		return c.Slice(0, 8) == a && c.Slice(8, 24) == b && c.Ones() == a.Ones()+b.Ones()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandomSortedInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(20)
		v := New(n, rng.Uint64()&lowMask(n))
		s := v.Sorted()
		if !s.IsSorted() {
			t.Fatalf("Sorted() of %q not sorted: %q", v, s)
		}
		if s.Ones() != v.Ones() {
			t.Fatalf("Sorted() changed multiset of %q", v)
		}
	}
}
