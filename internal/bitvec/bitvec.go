// Package bitvec provides binary input vectors for comparator networks.
//
// A Vec is an n-bit binary string σ = σ₁σ₂…σₙ in the paper's notation
// (Chung & Ravikumar 1987/1990). Line i of the network (1-based in the
// paper, 0-based here) carries bit i. Bit i of the packed word is the
// value on line i, so the "top" line of a network diagram is bit 0.
//
// A vector is *sorted* when it is nondecreasing top-to-bottom, i.e. it
// has the form 0^a 1^b. The zero-one principle makes these vectors the
// fundamental test inputs for sorting networks, and all three minimal
// test sets of the paper are sets of Vecs (or of permutations, which
// cover chains of Vecs; see package perm).
//
// The package restricts n to at most 64 lines so that a vector fits a
// machine word; every experiment in the paper operates far below that
// (test sets grow like 2^n). Word packing is what enables the 64-lane
// bit-parallel network evaluation in package network.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxN is the largest supported number of lines. A Vec packs one bit
// per line into a single uint64.
const MaxN = 64

// Vec is a binary string of length N over {0,1}. Bit i of Bits is σ_{i+1}
// in the paper's 1-based notation. The zero value is the empty string.
type Vec struct {
	N    int    // number of lines / string length
	Bits uint64 // bit i = value on line i
}

// New builds a Vec of length n with the given packed bits. It panics if
// n is out of range or if bits has a set bit at or above position n;
// both indicate a programming error rather than a recoverable condition.
func New(n int, bits uint64) Vec {
	if n < 0 || n > MaxN {
		panic(fmt.Sprintf("bitvec: length %d out of range [0,%d]", n, MaxN))
	}
	if n < MaxN && bits>>uint(n) != 0 {
		panic(fmt.Sprintf("bitvec: bits %#x overflow length %d", bits, n))
	}
	return Vec{N: n, Bits: bits}
}

// FromString parses a string of '0' and '1' runes, most significant
// position first in the paper's sense: s[0] is σ₁, the top line.
func FromString(s string) (Vec, error) {
	if len(s) > MaxN {
		return Vec{}, fmt.Errorf("bitvec: string length %d exceeds %d", len(s), MaxN)
	}
	var w uint64
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
		case '1':
			w |= 1 << uint(i)
		default:
			return Vec{}, fmt.Errorf("bitvec: invalid character %q at position %d", s[i], i)
		}
	}
	return Vec{N: len(s), Bits: w}, nil
}

// MustFromString is FromString for tests and literals; it panics on error.
func MustFromString(s string) Vec {
	v, err := FromString(s)
	if err != nil {
		panic(err)
	}
	return v
}

// FromBits builds a Vec from individual bit values.
func FromBits(bits []int) (Vec, error) {
	if len(bits) > MaxN {
		return Vec{}, fmt.Errorf("bitvec: length %d exceeds %d", len(bits), MaxN)
	}
	var w uint64
	for i, b := range bits {
		switch b {
		case 0:
		case 1:
			w |= 1 << uint(i)
		default:
			return Vec{}, fmt.Errorf("bitvec: element %d is %d, want 0 or 1", i, b)
		}
	}
	return Vec{N: len(bits), Bits: w}, nil
}

// String renders the vector as a string of '0'/'1', top line first,
// e.g. "0101" for σ = 0101.
func (v Vec) String() string {
	var sb strings.Builder
	sb.Grow(v.N)
	for i := 0; i < v.N; i++ {
		if v.Bit(i) == 1 {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Bit returns the value (0 or 1) on line i, 0-based.
func (v Vec) Bit(i int) int {
	return int(v.Bits>>uint(i)) & 1
}

// SetBit returns a copy of v with line i set to b (0 or 1).
func (v Vec) SetBit(i, b int) Vec {
	if b == 0 {
		v.Bits &^= 1 << uint(i)
	} else {
		v.Bits |= 1 << uint(i)
	}
	return v
}

// Ints expands the vector into a slice of 0/1 ints.
func (v Vec) Ints() []int {
	out := make([]int, v.N)
	for i := range out {
		out[i] = v.Bit(i)
	}
	return out
}

// Ones returns |σ|₁, the number of ones.
func (v Vec) Ones() int { return bits.OnesCount64(v.Bits) }

// Zeros returns |σ|₀, the number of zeroes.
func (v Vec) Zeros() int { return v.N - v.Ones() }

// IsSorted reports whether the vector is nondecreasing, i.e. of the form
// 0^a 1^b with the ones occupying the bottom (high-index) lines.
func (v Vec) IsSorted() bool {
	return v.Bits == SortedWithOnes(v.N, v.Ones()).Bits
}

// Sorted returns the sorted rearrangement of v: same multiset of bits,
// in nondecreasing order.
func (v Vec) Sorted() Vec { return SortedWithOnes(v.N, v.Ones()) }

// SortedWithOnes returns the unique sorted vector of length n with
// exactly k ones: 0^(n−k) 1^k.
func SortedWithOnes(n, k int) Vec {
	if k < 0 || k > n {
		panic(fmt.Sprintf("bitvec: %d ones out of range for length %d", k, n))
	}
	if k == 0 {
		return Vec{N: n}
	}
	var mask uint64
	if k == MaxN {
		mask = ^uint64(0)
	} else {
		mask = (uint64(1)<<uint(k) - 1) << uint(n-k)
	}
	return Vec{N: n, Bits: mask}
}

// AllOnes returns 1^n.
func AllOnes(n int) Vec { return SortedWithOnes(n, n) }

// AllZeros returns 0^n.
func AllZeros(n int) Vec { return Vec{N: n} }

// Leq reports the bitwise dominance order of the paper's Theorem 2.4:
// σ ≤ τ iff σᵢ ≤ τᵢ for every line i. Any comparator network is monotone
// with respect to this order. Panics if lengths differ.
func Leq(a, b Vec) bool {
	if a.N != b.N {
		panic(fmt.Sprintf("bitvec: Leq length mismatch %d vs %d", a.N, b.N))
	}
	return a.Bits&^b.Bits == 0
}

// Concat returns the concatenation σ₁σ₂ (a on the top lines, b below),
// the input form used by merging networks. Panics if the result exceeds
// MaxN lines.
func Concat(a, b Vec) Vec {
	if a.N+b.N > MaxN {
		panic(fmt.Sprintf("bitvec: concat length %d exceeds %d", a.N+b.N, MaxN))
	}
	return Vec{N: a.N + b.N, Bits: a.Bits | b.Bits<<uint(a.N)}
}

// Slice returns the substring σ_{i+1:j} of the paper (0-based half-open
// [i, j) here): the bits on lines i..j−1 as a Vec of length j−i.
func (v Vec) Slice(i, j int) Vec {
	if i < 0 || j < i || j > v.N {
		panic(fmt.Sprintf("bitvec: slice [%d,%d) out of range for length %d", i, j, v.N))
	}
	n := j - i
	if n == 0 {
		return Vec{}
	}
	var mask uint64
	if n == MaxN {
		mask = ^uint64(0)
	} else {
		mask = uint64(1)<<uint(n) - 1
	}
	return Vec{N: n, Bits: (v.Bits >> uint(i)) & mask}
}

// Complement returns the bitwise complement of v.
func (v Vec) Complement() Vec {
	return New(v.N, ^v.Bits&lowMask(v.N))
}

// Reverse returns the vector read bottom-to-top.
func (v Vec) Reverse() Vec {
	return New(v.N, bits.Reverse64(v.Bits)>>uint(MaxN-v.N))
}

func lowMask(n int) uint64 {
	if n >= MaxN {
		return ^uint64(0)
	}
	return uint64(1)<<uint(n) - 1
}

// Universe returns the number of distinct vectors of length n, 2^n,
// panicking when that does not fit an int (n ≥ 63 on 64-bit platforms).
func Universe(n int) int {
	if n < 0 || n > 62 {
		panic(fmt.Sprintf("bitvec: universe size 2^%d does not fit an int", n))
	}
	return 1 << uint(n)
}
