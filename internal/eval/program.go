// Package eval is the compiled evaluation engine behind every
// verification path in the repository. A *network.Network is compiled
// ONCE into an immutable Program — comparator pairs pre-extracted,
// topologically packed into data-independent layers, and specialized
// per width regime (n ≤ 64: word-parallel 64-lane batches; n > 64:
// widevec) — and an Engine streams test vectors through it with an
// engine-owned worker pool (sequential under a work threshold,
// NumCPU workers above it).
//
// Programs are op sequences rather than comparator sequences so that
// the fault models of package faults compile to program *variants*
// (a bypassed comparator is a no-op, a stuck line is a clamp op, a
// bridge is a short op) and inherit the same word-parallel batch
// evaluation as healthy circuits, instead of each client re-wiring
// the scalar/batch/wide dispatch by hand.
package eval

import (
	"fmt"

	"sortnets/internal/bitvec"
	"sortnets/internal/network"
	"sortnets/internal/widevec"
)

// OpKind is the opcode of one compiled program step.
type OpKind uint8

// Program opcodes. OpCmp is the only opcode a healthy network
// compiles to; the rest exist so fault-injected circuits are compiled
// program variants rather than per-fault evaluation loops.
const (
	OpCmp      OpKind = iota // standard compare-exchange: min on A, max on B
	OpNop                    // bypassed comparator: values pass through
	OpSwap                   // unconditional exchange of lines A and B
	OpRevCmp                 // reversed comparator: max on A, min on B
	OpClamp0                 // clamp line A to 0
	OpClamp1                 // clamp line A to 1
	OpShortOR                // lines A and B both read their wired-OR
	OpShortAND               // lines A and B both read their wired-AND
)

// Op is one program step on lines A (and, for two-line ops, B).
type Op struct {
	Kind OpKind
	A, B int
}

// Program is the immutable compiled form of a comparator network (or
// of a fault-injected variant of one). Compile once, evaluate many
// times: the pair slice and the layer schedule are extracted at
// compile time instead of on every call.
type Program struct {
	n     int
	ops   []Op
	pure  bool // every op is OpCmp (compiled from a healthy network)
	comps []network.Comparator
	// comps is the pure program's schedule in layer order, the form
	// the hot scalar/batch loops range over (ranging a []Comparator
	// compiles measurably tighter than a [][2]int).
	pairs  [][2]int // pure programs: comps as plain pairs, for widevec
	levels []int    // pure programs: layer boundaries into ops/comps
}

// Compile builds the compiled form of a healthy network: comparators
// are packed into their greedy data-independent layers (the depth
// schedule of network.Depth/Layers) and emitted layer by layer.
// Comparators on disjoint lines commute, so the reordering preserves
// behaviour exactly while freeing the CPU to overlap the ops of a
// layer. The program does not alias the network: later mutation of w
// leaves the program untouched.
func Compile(w *network.Network) *Program {
	busy := make([]int, w.N)
	depth := 0
	layerOf := make([]int, len(w.Comps))
	counts := []int{}
	for i, c := range w.Comps {
		layer := busy[c.A]
		if busy[c.B] > layer {
			layer = busy[c.B]
		}
		layer++
		busy[c.A], busy[c.B] = layer, layer
		layerOf[i] = layer - 1
		for len(counts) < layer {
			counts = append(counts, 0)
		}
		counts[layer-1]++
		if layer > depth {
			depth = layer
		}
	}
	levels := make([]int, depth+1)
	for l := 0; l < depth; l++ {
		levels[l+1] = levels[l] + counts[l]
	}
	ops := make([]Op, len(w.Comps))
	comps := make([]network.Comparator, len(w.Comps))
	pairs := make([][2]int, len(w.Comps))
	fill := append([]int(nil), levels[:depth]...)
	for i, c := range w.Comps {
		at := fill[layerOf[i]]
		fill[layerOf[i]]++
		ops[at] = Op{Kind: OpCmp, A: c.A, B: c.B}
		comps[at] = c
		pairs[at] = [2]int{c.A, c.B}
	}
	return &Program{n: w.N, ops: ops, pure: true, comps: comps, pairs: pairs, levels: levels}
}

// NewProgram builds a program from an explicit op sequence (the fault
// compilation path). Ops are executed in the given order — no layer
// reordering, because clamp and short ops do not commute the way
// standard comparators do. The op slice is copied.
func NewProgram(n int, ops []Op) *Program {
	p := &Program{n: n, ops: append([]Op(nil), ops...)}
	p.pure = true
	for _, op := range p.ops {
		if err := checkOp(n, op); err != nil {
			panic(err.Error())
		}
		if op.Kind != OpCmp {
			p.pure = false
		}
	}
	if p.pure {
		p.comps = make([]network.Comparator, len(p.ops))
		p.pairs = make([][2]int, len(p.ops))
		for i, op := range p.ops {
			p.comps[i] = network.Comparator{A: op.A, B: op.B}
			p.pairs[i] = [2]int{op.A, op.B}
		}
	}
	return p
}

func checkOp(n int, op Op) error {
	switch op.Kind {
	case OpClamp0, OpClamp1:
		if op.A < 0 || op.A >= n {
			return fmt.Errorf("eval: clamp line %d out of range 0..%d", op.A, n-1)
		}
	case OpCmp, OpNop, OpSwap, OpRevCmp:
		if !(0 <= op.A && op.A < op.B && op.B < n) {
			return fmt.Errorf("eval: op on lines [%d,%d] invalid for %d lines", op.A, op.B, n)
		}
	case OpShortOR, OpShortAND:
		if op.A == op.B || op.A < 0 || op.B < 0 || op.A >= n || op.B >= n {
			return fmt.Errorf("eval: short on lines [%d,%d] invalid for %d lines", op.A, op.B, n)
		}
	default:
		return fmt.Errorf("eval: unknown opcode %d", op.Kind)
	}
	return nil
}

// N returns the line count.
func (p *Program) N() int { return p.n }

// Size returns the number of program steps.
func (p *Program) Size() int { return len(p.ops) }

// Pure reports whether every step is a standard compare-exchange —
// i.e. the program is a healthy comparator network, for which the
// layered schedule and the wide path are valid.
func (p *Program) Pure() bool { return p.pure }

// Depth returns the number of data-independent layers of a pure
// compiled program (0 for impure programs, whose ops are sequential).
func (p *Program) Depth() int {
	if p.levels == nil {
		return 0
	}
	return len(p.levels) - 1
}

// Pairs exposes a pure program's steps as plain line pairs in layer
// order, the form widevec consumes. The slice is owned by the program:
// callers must treat it as read-only. Panics on impure programs.
func (p *Program) Pairs() [][2]int {
	if !p.pure {
		panic("eval: Pairs on an impure (fault-injected) program")
	}
	return p.pairs
}

// Apply runs the program on a single packed binary input.
func (p *Program) Apply(v bitvec.Vec) bitvec.Vec {
	if v.N != p.n {
		panic(fmt.Sprintf("eval: input has %d lines, program wants %d", v.N, p.n))
	}
	bits := v.Bits
	if p.pure {
		for _, c := range p.comps {
			m := (bits >> uint(c.A)) &^ (bits >> uint(c.B)) & 1
			bits ^= m<<uint(c.A) | m<<uint(c.B)
		}
		return bitvec.Vec{N: v.N, Bits: bits}
	}
	for _, op := range p.ops {
		switch op.Kind {
		case OpCmp:
			m := (bits >> uint(op.A)) &^ (bits >> uint(op.B)) & 1
			bits ^= m<<uint(op.A) | m<<uint(op.B)
		case OpNop:
		case OpSwap:
			m := ((bits >> uint(op.A)) ^ (bits >> uint(op.B))) & 1
			bits ^= m<<uint(op.A) | m<<uint(op.B)
		case OpRevCmp:
			// max on A, min on B: exchange when A=0, B=1.
			m := (bits >> uint(op.B)) &^ (bits >> uint(op.A)) & 1
			bits ^= m<<uint(op.A) | m<<uint(op.B)
		case OpClamp0:
			bits &^= 1 << uint(op.A)
		case OpClamp1:
			bits |= 1 << uint(op.A)
		case OpShortOR:
			s := (bits>>uint(op.A) | bits>>uint(op.B)) & 1
			bits = bits&^(1<<uint(op.A)|1<<uint(op.B)) | s<<uint(op.A) | s<<uint(op.B)
		case OpShortAND:
			s := (bits >> uint(op.A)) & (bits >> uint(op.B)) & 1
			bits = bits&^(1<<uint(op.A)|1<<uint(op.B)) | s<<uint(op.A) | s<<uint(op.B)
		}
	}
	return bitvec.Vec{N: v.N, Bits: bits}
}

// ApplyInts runs the program on an integer vector in place (the
// permutation input model). Only comparator-shaped ops are meaningful
// on integers; clamp and short ops (binary fault models) panic.
func (p *Program) ApplyInts(v []int) {
	if len(v) != p.n {
		panic(fmt.Sprintf("eval: input length %d, program wants %d lines", len(v), p.n))
	}
	for _, op := range p.ops {
		switch op.Kind {
		case OpCmp:
			if v[op.A] > v[op.B] {
				v[op.A], v[op.B] = v[op.B], v[op.A]
			}
		case OpNop:
		case OpSwap:
			v[op.A], v[op.B] = v[op.B], v[op.A]
		case OpRevCmp:
			if v[op.A] < v[op.B] {
				v[op.A], v[op.B] = v[op.B], v[op.A]
			}
		default:
			panic("eval: clamp/short ops are binary-only")
		}
	}
}

// ApplyBatch advances all 64 lanes of a batch through the program in
// place. Every opcode has a word-parallel form, so fault-injected
// programs evaluate 64 test vectors per step exactly like healthy
// ones — the batch trick the scalar fault simulator used to forgo.
func (p *Program) ApplyBatch(b *network.Batch) {
	if b.N != p.n {
		panic(fmt.Sprintf("eval: batch has %d lines, program wants %d", b.N, p.n))
	}
	lines := b.Lines
	if p.pure {
		// Pure programs skip opcode dispatch entirely: one AND and
		// one OR per comparator, layer by layer.
		for _, c := range p.comps {
			x, y := lines[c.A], lines[c.B]
			lines[c.A] = x & y
			lines[c.B] = x | y
		}
		return
	}
	for _, op := range p.ops {
		switch op.Kind {
		case OpCmp:
			x, y := lines[op.A], lines[op.B]
			lines[op.A] = x & y
			lines[op.B] = x | y
		case OpNop:
		case OpSwap:
			lines[op.A], lines[op.B] = lines[op.B], lines[op.A]
		case OpRevCmp:
			x, y := lines[op.A], lines[op.B]
			lines[op.A] = x | y
			lines[op.B] = x & y
		case OpClamp0:
			lines[op.A] = 0
		case OpClamp1:
			lines[op.A] = ^uint64(0)
		case OpShortOR:
			s := lines[op.A] | lines[op.B]
			lines[op.A], lines[op.B] = s, s
		case OpShortAND:
			s := lines[op.A] & lines[op.B]
			lines[op.A], lines[op.B] = s, s
		}
	}
}

// ApplyWide routes a wide binary vector (n > 64 regime) through a
// pure program using the pre-extracted pair slice — no per-call pair
// re-extraction.
func (p *Program) ApplyWide(v widevec.Vec) widevec.Vec {
	if v.N() != p.n {
		panic(fmt.Sprintf("eval: wide input has %d lines, program wants %d", v.N(), p.n))
	}
	return v.ApplyComparators(p.Pairs())
}

// SortsAll reports whether a pure program sorts every one of the 2ⁿ
// binary inputs, sweeping the universe 64 word-parallel lanes at a
// time (n ≤ 30 or so in practice).
func (p *Program) SortsAll() bool {
	e := New(p, 1)
	return e.RunUniverse(SortedJudge()).Holds
}
