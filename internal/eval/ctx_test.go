package eval

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"sortnets/internal/bitvec"
	"sortnets/internal/gen"
	"sortnets/internal/widevec"
)

// Cancellation contract of every engine path: an already-cancelled
// context returns promptly with the context's error, a mid-flight
// deadline stops the sweep within a block, and no pool goroutine
// outlives the call.

// checkNoLeak retries until the goroutine count returns to the
// baseline (pool teardown is synchronous, but the runtime may lag a
// tick on reusing exit records).
func checkNoLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func TestRunCtxCancelledBatch(t *testing.T) {
	e := New(Compile(gen.OddEvenMergeSort(16)), 4)
	before := runtime.NumGoroutine()
	start := time.Now()
	_, err := e.RunCtx(cancelledCtx(), bitvec.All(16), SortedJudge())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Errorf("cancelled run took %v", d)
	}
	checkNoLeak(t, before)
}

func TestRunCtxDeadlineMidStream(t *testing.T) {
	// 2²⁶ vectors through ~500 ops: seconds of work without the
	// deadline.
	e := New(Compile(gen.OddEvenMergeSort(26)), 2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	before := runtime.NumGoroutine()
	start := time.Now()
	_, err := e.RunCtx(ctx, bitvec.All(26), SortedJudge())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("deadline honored only after %v", d)
	}
	checkNoLeak(t, before)
}

func TestRunUniverseCtxCancelled(t *testing.T) {
	for _, workers := range []int{1, 0, 4} {
		e := New(Compile(gen.OddEvenMergeSort(24)), workers)
		before := runtime.NumGoroutine()
		start := time.Now()
		_, err := e.RunUniverseCtx(cancelledCtx(), SortedJudge())
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", workers, err)
		}
		if d := time.Since(start); d > 50*time.Millisecond {
			t.Errorf("workers=%d: cancelled universe sweep took %v", workers, d)
		}
		checkNoLeak(t, before)
	}
}

// endlessWide streams the all-zero wide vector forever: only
// cancellation can end the run.
type endlessWide struct{ n int }

func (it *endlessWide) Next() (widevec.Vec, bool) { return widevec.New(it.n), true }

func TestRunWideCtxCancelled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := New(Compile(gen.HalfMerger(128)), workers)
		before := runtime.NumGoroutine()
		start := time.Now()
		_, err := e.RunWideCtx(cancelledCtx(), &endlessWide{n: 128},
			func(in, out widevec.Vec) bool { return true })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", workers, err)
		}
		if d := time.Since(start); d > 50*time.Millisecond {
			t.Errorf("workers=%d: cancelled wide run took %v", workers, d)
		}
		checkNoLeak(t, before)
	}
}

func TestSweepCtxCancelled(t *testing.T) {
	e := New(Compile(gen.OddEvenMergeSort(16)), 1)
	n, err := e.SweepCtx(cancelledCtx(), bitvec.All(16), SortedJudge(), func(int, uint64) {})
	if !errors.Is(err, context.Canceled) || n != 0 {
		t.Fatalf("want (0, context.Canceled), got (%d, %v)", n, err)
	}
}

func TestForEachUntilCtxCancelled(t *testing.T) {
	before := runtime.NumGoroutine()
	hit, err := ForEachUntilCtx(cancelledCtx(), 1<<20, 4, func(int) bool { return false })
	if hit != -1 || !errors.Is(err, context.Canceled) {
		t.Fatalf("want (-1, context.Canceled), got (%d, %v)", hit, err)
	}
	checkNoLeak(t, before)

	// A hit found before cancellation is observed still wins.
	ctx := context.Background()
	hit, err = ForEachUntilCtx(ctx, 100, 1, func(i int) bool { return i == 7 })
	if hit != 7 || err != nil {
		t.Fatalf("want (7, nil), got (%d, %v)", hit, err)
	}
}

// TestRunCtxBackgroundEquivalence: a Background context must change
// nothing — same verdict as the context-free API.
func TestRunCtxBackgroundEquivalence(t *testing.T) {
	w := gen.OddEvenMergeSort(8)
	e := New(Compile(w), 1)
	got, err := e.RunCtx(context.Background(), bitvec.All(8), SortedJudge())
	if err != nil {
		t.Fatal(err)
	}
	want := New(Compile(w), 1).Run(bitvec.All(8), SortedJudge())
	if got != want {
		t.Fatalf("ctx path diverges: %+v vs %+v", got, want)
	}
}
