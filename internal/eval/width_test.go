package eval

import (
	"context"
	"math/rand"
	"testing"

	"sortnets/internal/bitvec"
)

// kernelWidths are every supported kernel width, for differential
// sweeps.
var kernelWidths = []int{Lanes64, Lanes256, Lanes512}

// TestVerdictsByteIdenticalAcrossWidths: the whole Verdict struct —
// Holds, TestsRun, counterexample in/out — must be identical at 64,
// 256 and 512 lanes, on Run (sorted and per-lane judge shapes),
// RunUniverse and RunMany, over random networks. The 64-lane verdict
// is the reference; the stream lengths exercise ragged final blocks
// at every width.
func TestVerdictsByteIdenticalAcrossWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(11)
		prog := Compile(randomNet(n, rng.Intn(5*n), rng))
		tests := nonSorted(n)
		judge := SortedJudge()
		if trial%3 == 1 { // per-lane judge shape (the selector path)
			k := 1 + rng.Intn(n)
			judge = PerLaneJudge(func(in, out bitvec.Vec) bool {
				mask := uint64(1)<<uint(k) - 1
				return out.Bits&mask == in.Sorted().Bits&mask
			})
		}

		ref := NewLanes(prog, 1, Lanes64).Run(bitvec.Slice(tests), judge)
		for _, lanes := range kernelWidths[1:] {
			got := NewLanes(prog, 1, lanes).Run(bitvec.Slice(tests), judge)
			if got != ref {
				t.Fatalf("trial %d n=%d: Run at %d lanes %+v, at 64 lanes %+v", trial, n, lanes, got, ref)
			}
		}

		uref := NewLanes(prog, 1, Lanes64).RunUniverse(judge)
		for _, lanes := range kernelWidths[1:] {
			got := NewLanes(prog, 1, lanes).RunUniverse(judge)
			if got != uref {
				t.Fatalf("trial %d n=%d: RunUniverse at %d lanes %+v, at 64 lanes %+v", trial, n, lanes, got, uref)
			}
		}
	}
}

// TestRunManyByteIdenticalAcrossWidths: the fleet pass must produce
// the same verdict slice at every kernel width.
func TestRunManyByteIdenticalAcrossWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(9)
		fleet := 1 + rng.Intn(7)
		progs := make([]*Program, fleet)
		for i := range progs {
			progs[i] = Compile(randomNet(n, rng.Intn(4*n), rng))
		}
		tests := nonSorted(n)
		judge := SortedJudge()

		ref, err := RunManyCtxLanes(context.Background(), progs, bitvec.Slice(tests), judge, Lanes64)
		if err != nil {
			t.Fatal(err)
		}
		for _, lanes := range kernelWidths[1:] {
			got, err := RunManyCtxLanes(context.Background(), progs, bitvec.Slice(tests), judge, lanes)
			if err != nil {
				t.Fatal(err)
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("trial %d n=%d fleet=%d program %d: %d lanes %+v, 64 lanes %+v",
						trial, n, fleet, i, lanes, got[i], ref[i])
				}
			}
		}
	}
}

// cancellingIter cancels its context after yielding `after` vectors,
// then keeps streaming — so the engine observes the cancellation
// mid-stream, between blocks, with lanes already staged.
type cancellingIter struct {
	n      int
	after  int
	count  int
	cancel context.CancelFunc
}

func (c *cancellingIter) Next() (bitvec.Vec, bool) {
	if c.count == c.after {
		c.cancel()
	}
	c.count++
	// An endless stream; the accept-everything judge below keeps the
	// engine running until it observes the cancellation.
	return bitvec.New(c.n, uint64(c.count)%(1<<uint(c.n))), true
}

// TestWideCancelMidBlock: cancellation raised while a block is being
// staged must surface as ctx.Err() with a zero verdict, at every
// width, on both the sequential and pooled paths.
func TestWideCancelMidBlock(t *testing.T) {
	n := 8
	prog := Compile(randomNet(n, 3*n, rand.New(rand.NewSource(5))))
	accept := PerLaneJudge(func(in, out bitvec.Vec) bool { return true })
	for _, lanes := range kernelWidths {
		for _, workers := range []int{1, 2} {
			ctx, cancel := context.WithCancel(context.Background())
			it := &cancellingIter{n: n, after: lanes + lanes/2, cancel: cancel}
			v, err := NewLanes(prog, workers, lanes).RunCtx(ctx, it, accept)
			cancel()
			if err != context.Canceled {
				t.Fatalf("%d lanes, %d workers: want context.Canceled, got %v (verdict %+v)", lanes, workers, err, v)
			}
			if v != (Verdict{}) {
				t.Fatalf("%d lanes, %d workers: want zero verdict on cancellation, got %+v", lanes, workers, v)
			}
		}
	}
}

// TestSetKernelLanes: the process-default selector accepts exactly
// the supported widths and steers engines that did not pin one.
func TestSetKernelLanes(t *testing.T) {
	orig := KernelLanes()
	defer SetKernelLanes(orig)
	for _, lanes := range kernelWidths {
		if err := SetKernelLanes(lanes); err != nil {
			t.Fatalf("SetKernelLanes(%d): %v", lanes, err)
		}
		if got := KernelLanes(); got != lanes {
			t.Fatalf("KernelLanes() = %d after SetKernelLanes(%d)", got, lanes)
		}
	}
	for _, bad := range []int{0, 1, 63, 128, 1024} {
		if err := SetKernelLanes(bad); err == nil {
			t.Fatalf("SetKernelLanes(%d) accepted", bad)
		}
	}
}

// TestWordsForDropsLegacyJudges: a hand-built Judge with no wide form
// must run on the single-word path regardless of the engine width.
func TestWordsForDropsLegacyJudges(t *testing.T) {
	prog := Compile(randomNet(4, 5, rand.New(rand.NewSource(3))))
	j := Judge{Rejects: SortedJudge().Rejects} // no RejectsWide, not sorted-flagged
	e := NewLanes(prog, 1, Lanes512)
	if w := e.wordsFor(j); w != 1 {
		t.Fatalf("legacy judge at 512 lanes: wordsFor = %d, want 1", w)
	}
	if w := e.wordsFor(SortedJudge()); w != 8 {
		t.Fatalf("sorted judge at 512 lanes: wordsFor = %d, want 8", w)
	}
}
