package eval

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"sortnets/internal/bitvec"
	"sortnets/internal/network"
)

// nonSorted collects every non-sorted n-bit string — the sorter's
// minimal test set — in stream order (core is not importable here:
// it depends on eval).
func nonSorted(n int) []bitvec.Vec {
	var vs []bitvec.Vec
	for bits := uint64(0); bits < uint64(1)<<uint(n); bits++ {
		v := bitvec.New(n, bits)
		if !v.IsSorted() {
			vs = append(vs, v)
		}
	}
	return vs
}

// TestRunManyMatchesSequential: every verdict of the shared-stream
// pass must be identical — Holds, TestsRun, counterexample in/out —
// to running each program alone on a fresh iterator with a
// single-worker engine, across random fleets and both judge shapes.
func TestRunManyMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(9)
		fleet := 1 + rng.Intn(7)
		progs := make([]*Program, fleet)
		for i := range progs {
			progs[i] = Compile(randomNet(n, rng.Intn(4*n), rng))
		}
		tests := nonSorted(n)
		judge := SortedJudge()
		stream := func() bitvec.Iterator { return bitvec.Slice(tests) }
		if trial%3 == 1 { // per-lane judge shape (the selector path)
			k := 1 + rng.Intn(n)
			judge = PerLaneJudge(func(in, out bitvec.Vec) bool {
				mask := uint64(1)<<uint(k) - 1
				return out.Bits&mask == in.Sorted().Bits&mask
			})
		}
		got := RunMany(progs, stream(), judge)
		for i, p := range progs {
			want := New(p, 1).Run(stream(), judge)
			if got[i] != want {
				t.Fatalf("trial %d n=%d fleet=%d program %d:\nRunMany %+v\nsolo    %+v", trial, n, fleet, i, got[i], want)
			}
		}
	}
}

// TestRunManyEmptyAndSingle: degenerate fleets work.
func TestRunManyEmptyAndSingle(t *testing.T) {
	if vs := RunMany(nil, bitvec.Slice(nonSorted(4)), SortedJudge()); vs != nil {
		t.Fatalf("empty fleet: %v", vs)
	}
	p := Compile(network.New(3)) // identity: fails fast on a sorter stream
	vs := RunMany([]*Program{p}, bitvec.Slice(nonSorted(3)), SortedJudge())
	want := New(p, 1).Run(bitvec.Slice(nonSorted(3)), SortedJudge())
	if len(vs) != 1 || vs[0] != want {
		t.Fatalf("single fleet: %+v, want %+v", vs, want)
	}
}

// TestRunManyCtxCancelled: an already-cancelled context stops the
// pass before any verdict and leaks no goroutines (the pass is
// synchronous by construction; the check still pins that contract).
func TestRunManyCtxCancelled(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n := 16
	progs := []*Program{Compile(network.Random(n, 40, rand.New(rand.NewSource(3))))}
	start := time.Now()
	vs, err := RunManyCtx(ctx, progs, bitvec.Slice(nonSorted(n)), SortedJudge())
	if err != context.Canceled || vs != nil {
		t.Fatalf("got %v, %v; want nil, context.Canceled", vs, err)
	}
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Errorf("cancelled RunMany took %v", d)
	}
	deadline := time.Now().Add(time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutines: %d, started with %d", g, before)
	}
}
