package eval

import (
	"math/rand"
	"testing"

	"sortnets/internal/bitvec"
	"sortnets/internal/gen"
	"sortnets/internal/network"
	"sortnets/internal/widevec"
)

// The acceptance bar for the compiled engine: the layered compiled
// path must at least match the legacy 64-lane batch path on ≤ 64
// lines, and beat per-call pair re-extraction on wide networks.

// --- raw comparator throughput: network vs compiled ---------------------

func BenchmarkBatchNetworkPath(b *testing.B) {
	w := gen.OddEvenMergeSort(16)
	batch := randomBatch(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ApplyBatch(batch)
	}
}

func BenchmarkBatchCompiledPath(b *testing.B) {
	w := gen.OddEvenMergeSort(16)
	p := Compile(w)
	batch := randomBatch(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ApplyBatch(batch)
	}
}

func randomBatch(n int) *network.Batch {
	rng := rand.New(rand.NewSource(1))
	var vs []bitvec.Vec
	for i := 0; i < 64; i++ {
		vs = append(vs, bitvec.New(n, rng.Uint64()&(uint64(1)<<uint(n)-1)))
	}
	return network.LoadVecs(n, vs)
}

// --- minimal-set verdict: legacy SetLane loading vs the engine ----------

// BenchmarkVerdictLegacyBatchLoop replicates the pre-eval verify
// batch engine: per-lane SetLane transposition into a reloaded batch,
// then ApplyBatch on the raw network — the old batch path the
// compiled engine must not regress against.
func BenchmarkVerdictLegacyBatchLoop(b *testing.B) {
	const n = 16
	w := gen.OddEvenMergeSort(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := notSorted(n)
		out := network.NewBatch(n)
		for {
			var lanes []bitvec.Vec
			for len(lanes) < network.LanesPerBatch {
				v, ok := it.Next()
				if !ok {
					break
				}
				lanes = append(lanes, v)
			}
			if len(lanes) == 0 {
				break
			}
			for j := range out.Lines {
				out.Lines[j] = 0
			}
			out.Lanes = 0
			for j, v := range lanes {
				out.SetLane(j, v)
			}
			w.ApplyBatch(out)
			if out.UnsortedLanes() != 0 {
				b.Fatal("sorter rejected")
			}
		}
	}
}

// BenchmarkVerdictEngine is the same sweep on the compiled engine
// (transpose loading, layered program), sequential.
func BenchmarkVerdictEngine(b *testing.B) {
	const n = 16
	p := Compile(gen.OddEvenMergeSort(n))
	e := New(p, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.Run(notSorted(n), SortedJudge()).Holds {
			b.Fatal("sorter rejected")
		}
	}
}

// BenchmarkVerdictEnginePooled is the engine with its worker pool.
func BenchmarkVerdictEnginePooled(b *testing.B) {
	const n = 16
	p := Compile(gen.OddEvenMergeSort(n))
	e := New(p, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.Run(notSorted(n), SortedJudge()).Holds {
			b.Fatal("sorter rejected")
		}
	}
}

func notSorted(n int) bitvec.Iterator {
	return bitvec.NotSorted(bitvec.All(n))
}

// --- exhaustive universe: network sweep vs engine -----------------------

func BenchmarkUniverseNetworkSweep(b *testing.B) {
	w := gen.OddEvenMergeSort(18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !w.SortsAllBinary() {
			b.Fatal("sorter rejected")
		}
	}
}

func BenchmarkUniverseEngine(b *testing.B) {
	p := Compile(gen.OddEvenMergeSort(18))
	e := New(p, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.RunUniverse(SortedJudge()).Holds {
			b.Fatal("sorter rejected")
		}
	}
}

// --- wide path: per-call pair extraction vs compiled --------------------

// BenchmarkWidePerCallPairs is the legacy wide path: every evaluation
// re-extracts the pair slice from the network (what ApplyWide did
// before the compiled form was cached).
func BenchmarkWidePerCallPairs(b *testing.B) {
	w := gen.HalfMerger(256)
	v := wideTestInput(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pairs := make([][2]int, len(w.Comps))
		for j, c := range w.Comps {
			pairs[j] = [2]int{c.A, c.B}
		}
		if !v.ApplyComparators(pairs).IsSorted() {
			b.Fatal("merger failed")
		}
	}
}

// BenchmarkWideCompiled routes the same evaluation through the
// compiled program's cached, layered pair slice.
func BenchmarkWideCompiled(b *testing.B) {
	p := Compile(gen.HalfMerger(256))
	v := wideTestInput(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !p.ApplyWide(v).IsSorted() {
			b.Fatal("merger failed")
		}
	}
}

func wideTestInput(n int) widevec.Vec {
	h := n / 2
	return widevec.Concat(widevec.SortedWithOnes(h, h/3), widevec.SortedWithOnes(h, h-h/4))
}

// --- fault path: compiled variant batch sweep ---------------------------

// BenchmarkFaultDetectableScalar is the legacy shape of a fault
// detectability check: one scalar evaluation per universe input.
func BenchmarkFaultDetectableScalar(b *testing.B) {
	w := gen.Sorter(10)
	ops := make([]Op, len(w.Comps))
	for i, c := range w.Comps {
		kind := OpCmp
		if i == 3 {
			kind = OpNop
		}
		ops[i] = Op{Kind: kind, A: c.A, B: c.B}
	}
	p := NewProgram(10, ops)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		found := false
		it := bitvec.All(10)
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			if !p.Apply(v).IsSorted() {
				found = true
				break
			}
		}
		if !found {
			b.Fatal("fault not detectable")
		}
	}
}

// BenchmarkFaultDetectableBatch is the same check on the compiled
// variant's 64-lane universe sweep.
func BenchmarkFaultDetectableBatch(b *testing.B) {
	w := gen.Sorter(10)
	ops := make([]Op, len(w.Comps))
	for i, c := range w.Comps {
		kind := OpCmp
		if i == 3 {
			kind = OpNop
		}
		ops[i] = Op{Kind: kind, A: c.A, B: c.B}
	}
	p := NewProgram(10, ops)
	e := New(p, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.RunUniverse(SortedJudge()).Holds {
			b.Fatal("fault not detectable")
		}
	}
}
