package eval

import (
	"fmt"
	"testing"

	"sortnets/internal/bitvec"
	"sortnets/internal/gen"
)

// Kernel-width benchmarks: the same work at 64, 256 and 512 lanes, so
// the wide-kernel speedup (amortized transposes and enumeration, more
// work per judge call) is measured directly rather than inferred from
// serve-level numbers. Two shapes:
//
//   - Universe: the exhaustive 2^16 sweep of a 16-line sorter on the
//     wholesale-loading path — pure kernel + judge throughput, no
//     enumeration cost, no early exit (the property holds).
//   - MinimalStream: the full 2^16−17-vector minimal sorter test set
//     through a holding network — kernel plus live Gosper/filter
//     enumeration, the serve path's per-verdict profile.
//
// ns/op is per full verification pass; divide by 65519 (tests) for
// per-vector cost.

var widthLanes = []int{64, 256, 512}

func BenchmarkKernelUniverse(b *testing.B) {
	p := Compile(gen.OddEvenMergeSort(16))
	for _, lanes := range widthLanes {
		b.Run(fmt.Sprintf("lanes=%d", lanes), func(b *testing.B) {
			e := NewLanes(p, 1, lanes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v := e.RunUniverse(SortedJudge())
				if !v.Holds {
					b.Fatal("sorter failed its universe sweep")
				}
			}
		})
	}
}

func BenchmarkKernelMinimalStream(b *testing.B) {
	p := Compile(gen.OddEvenMergeSort(16))
	for _, lanes := range widthLanes {
		b.Run(fmt.Sprintf("lanes=%d", lanes), func(b *testing.B) {
			e := NewLanes(p, 1, lanes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v := e.Run(bitvec.NotSorted(bitvec.All(16)), SortedJudge())
				if !v.Holds {
					b.Fatal("sorter failed its minimal test set")
				}
			}
		})
	}
}
