package eval

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count request: values ≤ 0 mean
// runtime.NumCPU(). Every pooled client in the repository routes
// through this so "0 = all cores" means the same thing everywhere.
func Workers(w int) int {
	if w <= 0 {
		return runtime.NumCPU()
	}
	return w
}

// ForEachUntil runs fn(i) for i in [0, n) on a pool of the given size
// (≤ 0 means NumCPU), stopping early once some call returns true. It
// returns the SMALLEST index for which fn returned true, or -1 if
// none did — deterministically, even under the pool: indices are
// claimed in order, in-flight lower indices always finish, and the
// minimum hit wins. fn must be safe for concurrent calls.
func ForEachUntil(n, workers int, fn func(i int) bool) int {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if fn(i) {
				return i
			}
		}
		return -1
	}
	var next atomic.Int64
	var hit atomic.Int64
	hit.Store(int64(n))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) || i >= hit.Load() {
					return
				}
				if fn(int(i)) {
					for {
						cur := hit.Load()
						if i >= cur || hit.CompareAndSwap(cur, i) {
							break
						}
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	if h := hit.Load(); h < int64(n) {
		return int(h)
	}
	return -1
}

// ForEach runs fn(i) for every i in [0, n) on a pool of the given
// size (≤ 0 means NumCPU). It always completes all n calls; use it
// for aggregation sweeps with no early exit.
func ForEach(n, workers int, fn func(i int)) {
	ForEachUntil(n, workers, func(i int) bool { fn(i); return false })
}
