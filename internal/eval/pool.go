package eval

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count request under the repository-wide
// rule — workers ≤ 0 means "automatic" — for plain worker pools,
// where automatic is runtime.NumCPU(). (The streaming Engine applies
// the same rule with a work threshold: automatic means sequential
// below it, all cores above.) Every pooled client in the repository
// routes through this so 0 means the same thing everywhere.
func Workers(w int) int {
	if w <= 0 {
		return runtime.NumCPU()
	}
	return w
}

// ForEachUntil runs fn(i) for i in [0, n) on a pool of the given size
// (≤ 0 means automatic = NumCPU), stopping early once some call
// returns true. It returns the SMALLEST index for which fn returned
// true, or -1 if none did — deterministically, even under the pool:
// indices are claimed in order, in-flight lower indices always
// finish, and the minimum hit wins. fn must be safe for concurrent
// calls.
func ForEachUntil(n, workers int, fn func(i int) bool) int {
	hit, _ := ForEachUntilCtx(context.Background(), n, workers, fn)
	return hit
}

// ForEachUntilCtx is ForEachUntil under a context: workers stop
// claiming new indices once the context is cancelled. When a hit was
// found before cancellation was observed it is returned with a nil
// error; otherwise a cancelled run returns (-1, ctx.Err()).
//
//sortnets:ctxloop
func ForEachUntilCtx(ctx context.Context, n, workers int, fn func(i int) bool) (int, error) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return -1, err
			}
			if fn(i) {
				return i, nil
			}
		}
		// Re-check after the last call: a cancellation that landed
		// DURING fn(n-1) may have made that call bail early with a
		// partial (wrong) outcome — "completed without a hit" must
		// not be reported for an aborted sweep. Context errors are
		// sticky, so this also covers every earlier call that
		// swallowed its own ctx error.
		if err := ctx.Err(); err != nil {
			return -1, err
		}
		return -1, nil
	}
	var next atomic.Int64
	var hit atomic.Int64
	hit.Store(int64(n))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := next.Add(1) - 1
				if i >= int64(n) || i >= hit.Load() {
					return
				}
				if fn(int(i)) {
					for {
						cur := hit.Load()
						if i >= cur || hit.CompareAndSwap(cur, i) {
							break
						}
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	if h := hit.Load(); h < int64(n) {
		return int(h), nil
	}
	if err := ctx.Err(); err != nil {
		return -1, err
	}
	return -1, nil
}

// ForEach runs fn(i) for every i in [0, n) on a pool of the given
// size (≤ 0 means automatic = NumCPU). It always completes all n
// calls; use it for aggregation sweeps with no early exit.
func ForEach(n, workers int, fn func(i int)) {
	ForEachUntil(n, workers, func(i int) bool { fn(i); return false })
}

// ForEachCtx is ForEach under a context: a cancelled context stops
// the sweep early (some calls skipped) and returns ctx.Err() — the
// partial aggregation must then be discarded.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	_, err := ForEachUntilCtx(ctx, n, workers, func(i int) bool { fn(i); return false })
	return err
}
