package eval

import (
	"context"
	"fmt"
	"math/bits"
	"sync"

	"sortnets/internal/bitvec"
	"sortnets/internal/network"
)

// Multi-word (256/512-lane) run paths. These mirror runSeq/runPool/
// universeRange exactly — same block schedule in stream order, same
// first-failure accounting (lane g·64+tz within the block, TestsRun =
// tests + lane + 1) — so verdicts are byte-identical to the 64-lane
// engine at every width. The only difference is that one block now
// carries W words per line and the judge returns a word-vector mask.

// wideBlock is a worker's reusable evaluation state at W words per
// line: one 64·W-lane window of the stream, the transpose scratch,
// and the in/out wide batches.
type wideBlock struct {
	W       int
	lanes   []bitvec.Vec // 64·W stream vectors
	words   []uint64     // transpose scratch, W groups of 64
	in, out *network.WideBatch
	bad     []uint64 // rejected-lane word vector, W words
}

func newWideBlock(n, W int) *wideBlock {
	return &wideBlock{
		W:     W,
		lanes: make([]bitvec.Vec, W*network.LanesPerBatch),
		words: make([]uint64, W*network.LanesPerBatch),
		in:    network.NewWideBatch(n, W),
		out:   network.NewWideBatch(n, W),
		bad:   make([]uint64, W),
	}
}

// wideBlockPool recycles wide blocks per width (index 0: W=4, 1:
// W=8). A block is ~10 KiB of slices; a serve path running one short
// verify per request would otherwise make that garbage per request.
var wideBlockPool [2]sync.Pool

func widePoolIdx(W int) int {
	if W == 4 {
		return 0
	}
	return 1
}

// getWideBlock checks a block out of the pool, resizing the n-sized
// batches when the program width differs from the previous user's.
// Only W ∈ {4, 8} (the supported kernel widths) are poolable.
func getWideBlock(n, W int) *wideBlock {
	if W != 4 && W != 8 {
		return newWideBlock(n, W)
	}
	b, _ := wideBlockPool[widePoolIdx(W)].Get().(*wideBlock)
	if b == nil {
		return newWideBlock(n, W)
	}
	if cap(b.in.Lines) < n*W {
		b.in.Lines = make([]uint64, n*W)
		b.out.Lines = make([]uint64, n*W)
	}
	b.in.N, b.in.W, b.in.Lines = n, W, b.in.Lines[:n*W]
	b.out.N, b.out.W, b.out.Lines = n, W, b.out.Lines[:n*W]
	return b
}

func putWideBlock(b *wideBlock) {
	if b.W == 4 || b.W == 8 {
		wideBlockPool[widePoolIdx(b.W)].Put(b)
	}
}

// judgeLanesWide loads k stream vectors, evaluates them through the
// wide kernel, and judges them; b.bad holds the rejected-lane mask
// (masked to the k occupied lanes). It reports whether any lane was
// rejected.
//
//sortnets:hotpath
func (e *Engine) judgeLanesWide(b *wideBlock, k int, judge Judge) bool {
	W := b.W
	for i := 0; i < k; i++ {
		b.words[i] = b.lanes[i].Bits
	}
	for i := k; i < len(b.words); i++ {
		b.words[i] = 0
	}
	// W independent 64×64 transposes, then scatter group g's line
	// words into the line-major wide layout.
	for g := 0; g < W; g++ {
		transpose64((*[64]uint64)(b.words[g*64:]))
	}
	n := e.p.n
	for i := 0; i < n; i++ {
		row := b.out.Lines[i*W : i*W+W]
		for g := 0; g < W; g++ {
			row[g] = b.words[g*64+i]
		}
	}
	b.out.Lanes = k
	if judge.NeedsInput {
		copy(b.in.Lines, b.out.Lines)
		b.in.Lanes = k
	}
	e.p.ApplyWideBatch(b.out)
	judge.rejectsWide(b.in, b.out, b.bad)
	if k < 64*W {
		network.MaskLanes(b.bad, k)
	}
	return anyLane(b.bad)
}

// anyLane reports whether the word-vector mask has any bit set.
func anyLane(mask []uint64) bool {
	var or uint64
	for _, w := range mask {
		or |= w
	}
	return or != 0
}

// firstLane returns the lowest set lane of the word-vector mask — the
// first failure in stream order — or -1 if none.
func firstLane(mask []uint64) int {
	for g, w := range mask {
		if w != 0 {
			return g*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

//sortnets:ctxloop
func (e *Engine) runSeqWide(ctx context.Context, it bitvec.Iterator, judge Judge, W int) (Verdict, error) {
	b := getWideBlock(e.p.n, W)
	defer putWideBlock(b)
	blockLanes := 64 * W
	// Ramp the block size 64 → 128 → … → 64·W: a stream that fails in
	// its first tests (the common case for random networks) should not
	// pay a full wide block of enumeration before the engine looks.
	// The schedule stays sequential, so the first failure in stream
	// order — and therefore the whole Verdict — is identical at every
	// width and every ramp step.
	lim := network.LanesPerBatch
	tests := 0
	for {
		if err := ctx.Err(); err != nil {
			return Verdict{}, err
		}
		k := 0
		for k < lim {
			v, ok := it.Next()
			if !ok {
				break
			}
			b.lanes[k] = v
			k++
		}
		if k == 0 {
			return Verdict{Holds: true, TestsRun: tests}, nil
		}
		if e.judgeLanesWide(b, k, judge) {
			lane := firstLane(b.bad)
			return Verdict{Holds: false, TestsRun: tests + lane + 1, In: b.lanes[lane], Out: b.out.Lane(lane)}, nil
		}
		tests += k
		if lim < blockLanes {
			lim *= 2
			if lim > blockLanes {
				lim = blockLanes
			}
		}
	}
}

//sortnets:ctxloop
func (e *Engine) runPoolWide(ctx context.Context, it bitvec.Iterator, judge Judge, W, workers int) (Verdict, error) {
	if workers < 1 {
		workers = 1
	}
	blockLanes := 64 * W
	chunkSize := 16 * blockLanes // 16 blocks per handoff, as on the 64-lane path
	chunks := make(chan []bitvec.Vec, workers)
	fails := make(chan Verdict, workers)
	stop := make(chan struct{})
	var stopOnce sync.Once

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := getWideBlock(e.p.n, W)
			defer putWideBlock(b)
			for chunk := range chunks {
				for off := 0; off < len(chunk); off += blockLanes {
					if ctx.Err() != nil {
						return
					}
					k := len(chunk) - off
					if k > blockLanes {
						k = blockLanes
					}
					copy(b.lanes[:k], chunk[off:off+k])
					if e.judgeLanesWide(b, k, judge) {
						lane := firstLane(b.bad)
						select {
						case fails <- Verdict{Holds: false, In: b.lanes[lane], Out: b.out.Lane(lane)}:
						default:
						}
						stopOnce.Do(func() { close(stop) })
						return
					}
				}
			}
		}()
	}

	tests := 0
feed:
	for {
		if ctx.Err() != nil {
			break
		}
		chunk := make([]bitvec.Vec, 0, chunkSize)
		for len(chunk) < chunkSize {
			v, ok := it.Next()
			if !ok {
				break
			}
			chunk = append(chunk, v)
		}
		if len(chunk) == 0 {
			break
		}
		tests += len(chunk)
		select {
		case chunks <- chunk:
		case <-stop:
			break feed
		case <-ctx.Done():
			break feed
		}
	}
	close(chunks)
	wg.Wait()
	close(fails)
	if f, ok := <-fails; ok {
		f.TestsRun = tests
		return f, nil
	}
	if err := ctx.Err(); err != nil {
		return Verdict{}, err
	}
	return Verdict{Holds: true, TestsRun: tests}, nil
}

// universeRangeW dispatches the universe sweep of [from, to) to the
// single-word or multi-word kernel. from must be a multiple of 64·W
// (slab boundaries are).
func (e *Engine) universeRangeW(ctx context.Context, judge Judge, from, to uint64, W int) (Verdict, error) {
	if W == 1 {
		return e.universeRange(ctx, judge, from, to)
	}
	return e.universeRangeWide(ctx, judge, from, to, W)
}

// universeRangeWide sweeps inputs [from, to) in 64·W-lane blocks,
// loading consecutive inputs wholesale exactly like loadConsecutive.
//
//sortnets:ctxloop
func (e *Engine) universeRangeWide(ctx context.Context, judge Judge, from, to uint64, W int) (Verdict, error) {
	n := e.p.n
	blockLanes := uint64(64 * W)
	// The universe sweep only needs the block's batches and mask; the
	// lane/word scratch rides along unused (pooling one object beats
	// allocating three).
	blk := getWideBlock(n, W)
	defer putWideBlock(blk)
	in, out, bad := blk.in, blk.out, blk.bad
	tests := 0
	for base := from; base < to; base += blockLanes {
		if err := ctx.Err(); err != nil {
			return Verdict{}, err
		}
		k := int(to - base)
		if k > int(blockLanes) {
			k = int(blockLanes)
		}
		loadConsecutiveWide(out, base, k)
		if judge.NeedsInput {
			loadConsecutiveWide(in, base, k)
		}
		e.p.ApplyWideBatch(out)
		judge.rejectsWide(in, out, bad)
		if k < int(blockLanes) {
			network.MaskLanes(bad, k)
		}
		if anyLane(bad) {
			lane := firstLane(bad)
			return Verdict{
				Holds:    false,
				TestsRun: tests + lane + 1,
				In:       bitvec.New(n, base+uint64(lane)),
				Out:      out.Lane(lane),
			}, nil
		}
		tests += k
	}
	return Verdict{Holds: true, TestsRun: tests}, nil
}

// loadConsecutiveWide fills the wide batch with inputs
// base..base+k-1 (base a multiple of 64·W). Input bits below 6 repeat
// the fixed 64-lane masks in every word; bit i ≥ 6 of word g is
// constant across the word, set iff (base + 64g) has it.
//
//sortnets:hotpath
func loadConsecutiveWide(b *network.WideBatch, base uint64, k int) {
	W := b.W
	if base%uint64(64*W) != 0 {
		//lint:ignore hotalloc misuse-guard panic preamble; formats only on programmer error, never on the serving path
		panic(fmt.Sprintf("eval: wide universe base %d not a multiple of %d", base, 64*W))
	}
	for i := 0; i < b.N; i++ {
		row := b.Lines[i*W : i*W+W]
		if i < 6 {
			m := laneMasks[i]
			for g := range row {
				row[g] = m
			}
			continue
		}
		for g := range row {
			if (base+uint64(g)*64)>>uint(i)&1 == 1 {
				row[g] = ^uint64(0)
			} else {
				row[g] = 0
			}
		}
	}
	b.Lanes = k
}
