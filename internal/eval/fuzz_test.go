package eval

import (
	"testing"

	"sortnets/internal/bitvec"
	"sortnets/internal/network"
)

// FuzzEngine is the differential fuzz target for the compiled engine:
// on random networks and random inputs, every compiled path — the
// scalar Apply, the 64-lane transpose/batch path behind Run, and the
// wholesale-loading RunUniverse — must agree bit-for-bit with the
// scalar reference evaluator network.ApplyVec, which shares no code
// with the engine's batch machinery.
func FuzzEngine(f *testing.F) {
	f.Add(byte(2), []byte{0, 1}, []byte{1})
	f.Add(byte(4), []byte{0, 1, 2, 3, 0, 2, 1, 3, 1, 2}, []byte{5, 10, 3})
	f.Add(byte(16), []byte{0, 15, 7, 8, 3, 12}, []byte{0xff, 0x0f, 0xf0, 0xaa})
	f.Add(byte(6), []byte{}, []byte{})
	f.Fuzz(func(t *testing.T, nByte byte, compBytes, vecBytes []byte) {
		n := 2 + int(nByte)%15 // 2..16 lines
		w := network.New(n)
		for i := 0; i+1 < len(compBytes) && w.Size() < 128; i += 2 {
			a := int(compBytes[i]) % n
			b := int(compBytes[i+1]) % n
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			w.AddPair(a, b)
		}
		prog := Compile(w)

		// Inputs: every byte pair of vecBytes is one packed vector,
		// plus the all-zero / all-one edges. Duplicates are fine — the
		// engine must handle repeated lanes.
		mask := uint64(1)<<uint(n) - 1
		vecs := []bitvec.Vec{{N: n, Bits: 0}, {N: n, Bits: mask}}
		for i := 0; i+1 < len(vecBytes) && len(vecs) < 300; i += 2 {
			bits := (uint64(vecBytes[i])<<8 | uint64(vecBytes[i+1])) & mask
			vecs = append(vecs, bitvec.Vec{N: n, Bits: bits})
		}

		// Scalar compiled path vs scalar reference.
		for _, v := range vecs {
			if got, want := prog.Apply(v), w.ApplyVec(v); got != want {
				t.Fatalf("Apply(%s) = %s, reference %s (net %s)", v, got, want, w.Format())
			}
		}

		// Batch path, at every kernel width: a judge that rejects any
		// lane whose engine output differs from the reference output
		// forces Run to exercise the transpose + word-parallel
		// evaluation — single-word and multi-word kernels alike — and
		// prove it equals the reference on every streamed lane. The
		// vector count is rarely a multiple of 256/512, so the wide
		// kernels see ragged final blocks on almost every input.
		differential := PerLaneJudge(func(in, out bitvec.Vec) bool {
			return out == w.ApplyVec(in)
		})
		for _, lanes := range []int{Lanes64, Lanes256, Lanes512} {
			if v := NewLanes(prog, 1, lanes).Run(bitvec.Slice(vecs), differential); !v.Holds {
				t.Fatalf("%d-lane batch path diverges from reference on %s: engine %s, reference %s (net %s)",
					lanes, v.In, v.Out, w.ApplyVec(v.In), w.Format())
			}
			if v := NewLanes(prog, 2, lanes).Run(bitvec.Slice(vecs), differential); !v.Holds {
				t.Fatalf("%d-lane pooled batch path diverges from reference on %s (net %s)", lanes, v.In, w.Format())
			}
		}

		// Universe path (wholesale lane loading) vs a reference scan,
		// kept to small n so the 2ⁿ sweep stays cheap; all widths must
		// report the identical verdict.
		if n <= 10 {
			wantHolds, wantFirst := true, bitvec.Vec{}
			for x := uint64(0); x <= mask; x++ {
				in := bitvec.Vec{N: n, Bits: x}
				if !w.ApplyVec(in).IsSorted() {
					wantHolds, wantFirst = false, in
					break
				}
			}
			for _, lanes := range []int{Lanes64, Lanes256, Lanes512} {
				got := NewLanes(prog, 1, lanes).RunUniverse(SortedJudge())
				if got.Holds != wantHolds {
					t.Fatalf("%d-lane RunUniverse holds=%v, reference %v (net %s)", lanes, got.Holds, wantHolds, w.Format())
				}
				if !got.Holds && got.In != wantFirst {
					t.Fatalf("%d-lane RunUniverse first failure %s, reference %s (net %s)", lanes, got.In, wantFirst, w.Format())
				}
			}
		}
	})
}
