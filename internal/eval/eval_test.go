package eval

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"sortnets/internal/bitvec"
	"sortnets/internal/network"
	"sortnets/internal/widevec"
)

type atomic32 struct{ v atomic.Int32 }

func mustWide(v bitvec.Vec) widevec.Vec {
	w := widevec.New(v.N)
	for i := 0; i < v.N; i++ {
		if v.Bit(i) == 1 {
			w = w.SetBit(i, 1)
		}
	}
	return w
}

func randomNet(n, size int, rng *rand.Rand) *network.Network {
	if n < 2 {
		return network.New(n)
	}
	return network.Random(n, size, rng)
}

func TestTranspose64MatchesSetLane(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(64)
		var words [64]uint64
		ref := network.NewBatch(n)
		mask := ^uint64(0)
		if n < 64 {
			mask = uint64(1)<<uint(n) - 1
		}
		for lane := 0; lane < 64; lane++ {
			bits := rng.Uint64() & mask
			words[lane] = bits
			ref.SetLane(lane, bitvec.New(n, bits))
		}
		transpose64(&words)
		for i := 0; i < n; i++ {
			if words[i] != ref.Lines[i] {
				t.Fatalf("n=%d line %d: transpose %016x, SetLane %016x", n, i, words[i], ref.Lines[i])
			}
		}
	}
}

func TestTranspose64Involution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var a, orig [64]uint64
	for i := range a {
		a[i] = rng.Uint64()
		orig[i] = a[i]
	}
	transpose64(&a)
	transpose64(&a)
	if a != orig {
		t.Fatal("transpose64 is not an involution")
	}
}

func TestCompiledApplyMatchesNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(10)
		w := randomNet(n, rng.Intn(n*n), rng)
		p := Compile(w)
		if !p.Pure() || p.Size() != w.Size() || p.Depth() != w.Depth() {
			t.Fatalf("compiled shape mismatch for %v", w)
		}
		for x := 0; x < bitvec.Universe(n); x++ {
			v := bitvec.New(n, uint64(x))
			if p.Apply(v) != w.ApplyVec(v) {
				t.Fatalf("compiled output diverges on %s for %v", v, w)
			}
		}
	}
}

func TestCompiledApplyIntsMatchesNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(8)
		w := randomNet(n, rng.Intn(n*n), rng)
		p := Compile(w)
		in := rng.Perm(n)
		want := w.Apply(in)
		got := append([]int(nil), in...)
		p.ApplyInts(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("int path diverges: %v vs %v", got, want)
			}
		}
	}
}

func TestCompiledBatchMatchesNetworkBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(16)
		w := randomNet(n, rng.Intn(2*n*n), rng)
		p := Compile(w)
		mask := uint64(1)<<uint(n) - 1
		var vs []bitvec.Vec
		for i := 0; i < 64; i++ {
			vs = append(vs, bitvec.New(n, rng.Uint64()&mask))
		}
		a := network.LoadVecs(n, vs)
		b := network.LoadVecs(n, vs)
		w.ApplyBatch(a)
		p.ApplyBatch(b)
		for i := 0; i < n; i++ {
			if a.Lines[i] != b.Lines[i] {
				t.Fatalf("batch line %d diverges", i)
			}
		}
	}
}

func TestImpureOpsScalarAgainstBatch(t *testing.T) {
	// Every opcode: the scalar interpreter and the word-parallel
	// interpreter must agree lane for lane.
	rng := rand.New(rand.NewSource(6))
	kinds := []OpKind{OpCmp, OpNop, OpSwap, OpRevCmp, OpClamp0, OpClamp1, OpShortOR, OpShortAND}
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(8)
		var ops []Op
		for len(ops) < 1+rng.Intn(12) {
			k := kinds[rng.Intn(len(kinds))]
			a := rng.Intn(n - 1)
			b := a + 1 + rng.Intn(n-1-a)
			ops = append(ops, Op{Kind: k, A: a, B: b})
		}
		p := NewProgram(n, ops)
		var vs []bitvec.Vec
		mask := uint64(1)<<uint(n) - 1
		for i := 0; i < 64; i++ {
			vs = append(vs, bitvec.New(n, rng.Uint64()&mask))
		}
		b := network.LoadVecs(n, vs)
		p.ApplyBatch(b)
		for lane, v := range vs {
			if b.Lane(lane) != p.Apply(v) {
				t.Fatalf("lane %d diverges for ops %v", lane, ops)
			}
		}
	}
}

func TestEngineRunMatchesScalarJudgment(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(9)
		w := randomNet(n, rng.Intn(n*n), rng)
		p := Compile(w)
		// Scalar reference.
		wantHolds := true
		var wantFail bitvec.Vec
		it := bitvec.All(n)
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			if !w.ApplyVec(v).IsSorted() {
				wantHolds = false
				wantFail = v
				break
			}
		}
		for _, workers := range []int{1, 2, 4, 0} {
			got := New(p, workers).Run(bitvec.All(n), SortedJudge())
			if got.Holds != wantHolds {
				t.Fatalf("workers=%d: engine %v, scalar %v for %v", workers, got.Holds, wantHolds, w)
			}
			if !got.Holds && got.Out.IsSorted() {
				t.Fatalf("workers=%d: counterexample output is sorted", workers)
			}
			if workers == 1 && !got.Holds && got.In != wantFail {
				t.Fatalf("sequential engine found %s, scalar found %s", got.In, wantFail)
			}
		}
	}
}

func TestEngineRunCountsAllTestsOnHold(t *testing.T) {
	w := network.New(4).AddPair(0, 1).AddPair(2, 3).AddPair(0, 2).AddPair(1, 3).AddPair(1, 2)
	p := Compile(w)
	v := New(p, 1).Run(bitvec.All(4), SortedJudge())
	if !v.Holds || v.TestsRun != 16 {
		t.Fatalf("got %+v, want hold after 16 tests", v)
	}
}

func TestRunUniverseMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(9)
		w := randomNet(n, rng.Intn(n*n), rng)
		p := Compile(w)
		a := New(p, 1).Run(bitvec.All(n), SortedJudge())
		for _, workers := range []int{1, 3, 0} {
			b := New(p, workers).RunUniverse(SortedJudge())
			if a.Holds != b.Holds {
				t.Fatalf("workers=%d: universe %v, stream %v for %v", workers, b.Holds, a.Holds, w)
			}
			if !a.Holds && b.In != a.In {
				t.Fatalf("workers=%d: universe counterexample %s, want %s", workers, b.In, a.In)
			}
			if a.Holds && b.TestsRun != bitvec.Universe(n) {
				t.Fatalf("workers=%d: universe ran %d tests", workers, b.TestsRun)
			}
		}
	}
}

func TestPerLaneJudgeSeesInputs(t *testing.T) {
	// Identity-accepting judge on the empty network must hold; a
	// judge comparing out against a complemented input must fail
	// everywhere except where complement is a fixed point (never).
	p := Compile(network.New(3))
	ok := New(p, 1).Run(bitvec.All(3), PerLaneJudge(func(in, out bitvec.Vec) bool { return in == out }))
	if !ok.Holds {
		t.Fatalf("identity judge rejected the empty network: %+v", ok)
	}
	bad := New(p, 1).Run(bitvec.All(3), PerLaneJudge(func(in, out bitvec.Vec) bool { return in != out }))
	if bad.Holds {
		t.Fatal("inequality judge accepted the empty network")
	}
}

func TestSortsAll(t *testing.T) {
	sorter := network.New(3).AddPair(0, 1).AddPair(1, 2).AddPair(0, 1)
	if !Compile(sorter).SortsAll() {
		t.Error("3-line sorter rejected")
	}
	if Compile(network.New(3)).SortsAll() {
		t.Error("empty network accepted as sorter")
	}
}

func TestForEachUntilFindsSmallestHit(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		got := ForEachUntil(1000, workers, func(i int) bool { return i == 437 || i == 700 })
		if got != 437 {
			t.Fatalf("workers=%d: hit %d, want 437", workers, got)
		}
		if ForEachUntil(100, workers, func(int) bool { return false }) != -1 {
			t.Fatalf("workers=%d: phantom hit", workers)
		}
	}
}

func TestForEachVisitsEverything(t *testing.T) {
	var visited [257]atomic32
	ForEach(257, 4, func(i int) { visited[i].v.Add(1) })
	for i := range visited {
		if visited[i].v.Load() != 1 {
			t.Fatalf("index %d visited %d times", i, visited[i].v.Load())
		}
	}
}

func TestEngineWidePathAgainstNarrow(t *testing.T) {
	// A 16-line network evaluated through the wide path must agree
	// with the packed path (widevec has no real lower bound on n).
	rng := rand.New(rand.NewSource(9))
	w := randomNet(16, 40, rng)
	p := Compile(w)
	it := bitvec.All(16)
	for {
		v, ok := it.Next()
		if !ok {
			break
		}
		wv := mustWide(v)
		got := p.ApplyWide(wv)
		want := w.ApplyVec(v)
		for i := 0; i < 16; i++ {
			if got.Bit(i) != want.Bit(i) {
				t.Fatalf("wide path diverges on %s at line %d", v, i)
			}
		}
	}
}
