package eval

import (
	"context"
	"fmt"
	"math/bits"

	"sortnets/internal/bitvec"
	"sortnets/internal/network"
)

// The multi-program pass of the batch-first request model: when many
// candidate networks of one width are checked against one property,
// the expensive shared work — enumerating the minimal test stream and
// transposing it into the 64-lane word layout — is identical for
// every program. RunMany does that work ONCE per 64-lane block and
// feeds the block to every still-undecided program, so a fleet of k
// networks pays one enumeration + one transpose instead of k.

// RunMany streams the iterator's vectors once through every program,
// judging each 64-lane block against all programs that have not yet
// failed. All programs must share one width n ≤ 64 (the judge is per
// property, which fixes n). The returned slice is indexed like progs;
// each verdict is byte-identical to what New(progs[i], 1).Run(it,
// judge) would report over a fresh iterator — the first failure in
// stream order with the same TestsRun, or Holds with the full stream
// count — because the block schedule is exactly the sequential one.
func RunMany(progs []*Program, it bitvec.Iterator, judge Judge) []Verdict {
	vs, _ := RunManyCtx(context.Background(), progs, it, judge)
	return vs
}

// RunManyCtx is RunMany under a context, checked once per block
// (never per vector or per program). On cancellation it returns
// nil and ctx.Err(): partial verdicts are withheld, exactly like the
// single-program RunCtx. The block width is the process kernel width
// (KernelLanes); use RunManyCtxLanes to pin one.
func RunManyCtx(ctx context.Context, progs []*Program, it bitvec.Iterator, judge Judge) ([]Verdict, error) {
	return RunManyCtxLanes(ctx, progs, it, judge, 0)
}

// RunManyCtxLanes is RunManyCtx at a pinned kernel width (64, 256 or
// 512 lanes; ≤ 0 selects the process default). Verdicts are
// byte-identical at every width.
func RunManyCtxLanes(ctx context.Context, progs []*Program, it bitvec.Iterator, judge Judge, lanes int) ([]Verdict, error) {
	if len(progs) == 0 {
		return nil, nil
	}
	n := progs[0].n
	if n > network.LanesPerBatch {
		panic(fmt.Sprintf("eval: RunMany needs n ≤ 64, program has %d lines", n))
	}
	for i, p := range progs {
		if p.n != n {
			panic(fmt.Sprintf("eval: RunMany needs one width, program %d has %d lines, program 0 has %d", i, p.n, n))
		}
	}
	if W := wordsForLanes(lanes, judge); W > 1 {
		return runManyWide(ctx, progs, it, judge, W)
	}

	verdicts := make([]Verdict, len(progs))
	// active[i] — program i has not failed yet. Failed programs drop
	// out of the per-block loop; the stream keeps going until every
	// program has failed or it drains.
	active := make([]int, len(progs))
	for i := range active {
		active[i] = i
	}
	outs := make([]*network.Batch, len(progs))
	for i := range outs {
		outs[i] = network.NewBatch(n)
	}
	in := network.NewBatch(n)

	var laneVecs [network.LanesPerBatch]bitvec.Vec
	var words [network.LanesPerBatch]uint64
	tests := 0
	for len(active) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		k := 0
		for k < network.LanesPerBatch {
			v, ok := it.Next()
			if !ok {
				break
			}
			laneVecs[k] = v
			k++
		}
		if k == 0 {
			break
		}
		// Shared per-block work: load + transpose once for all programs.
		for i := 0; i < k; i++ {
			words[i] = laneVecs[i].Bits
		}
		for i := k; i < network.LanesPerBatch; i++ {
			words[i] = 0
		}
		transpose64(&words)
		if judge.NeedsInput {
			copy(in.Lines, words[:n])
			in.Lanes = k
		}
		occupied := ^uint64(0)
		if k < network.LanesPerBatch {
			occupied = uint64(1)<<uint(k) - 1
		}
		// Per-program work: evaluate and judge this block.
		keep := active[:0]
		for _, pi := range active {
			out := outs[pi]
			copy(out.Lines, words[:n])
			out.Lanes = k
			progs[pi].ApplyBatch(out)
			if bad := judge.rejects(in, out) & occupied; bad != 0 {
				lane := bits.TrailingZeros64(bad)
				verdicts[pi] = Verdict{
					Holds:    false,
					TestsRun: tests + lane + 1,
					In:       laneVecs[lane],
					Out:      out.Lane(lane),
				}
				continue
			}
			keep = append(keep, pi)
		}
		active = keep
		tests += k
	}
	for _, pi := range active {
		verdicts[pi] = Verdict{Holds: true, TestsRun: tests}
	}
	return verdicts, nil
}

// runManyWide is the multi-word RunMany body: one load + W transposes
// per 64·W-lane block, shared by every still-active program. The
// block schedule is the sequential stream order, so verdicts match
// the 64-lane path byte for byte.
func runManyWide(ctx context.Context, progs []*Program, it bitvec.Iterator, judge Judge, W int) ([]Verdict, error) {
	n := progs[0].n
	blockLanes := 64 * W

	verdicts := make([]Verdict, len(progs))
	active := make([]int, len(progs))
	for i := range active {
		active[i] = i
	}
	outs := make([]*network.WideBatch, len(progs))
	for i := range outs {
		outs[i] = network.NewWideBatch(n, W)
	}
	in := network.NewWideBatch(n, W)
	// master holds this block's transposed lines in the line-major
	// wide layout; each program's out batch starts as a copy of it.
	master := make([]uint64, n*W)
	lanes := make([]bitvec.Vec, blockLanes)
	words := make([]uint64, blockLanes)
	bad := make([]uint64, W)

	tests := 0
	for len(active) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		k := 0
		for k < blockLanes {
			v, ok := it.Next()
			if !ok {
				break
			}
			lanes[k] = v
			k++
		}
		if k == 0 {
			break
		}
		// Shared per-block work: load + transpose once for all programs.
		for i := 0; i < k; i++ {
			words[i] = lanes[i].Bits
		}
		for i := k; i < blockLanes; i++ {
			words[i] = 0
		}
		for g := 0; g < W; g++ {
			transpose64((*[64]uint64)(words[g*64:]))
		}
		for i := 0; i < n; i++ {
			row := master[i*W : i*W+W]
			for g := 0; g < W; g++ {
				row[g] = words[g*64+i]
			}
		}
		if judge.NeedsInput {
			copy(in.Lines, master)
			in.Lanes = k
		}
		// Per-program work: evaluate and judge this block.
		keep := active[:0]
		for _, pi := range active {
			out := outs[pi]
			copy(out.Lines, master)
			out.Lanes = k
			progs[pi].ApplyWideBatch(out)
			judge.rejectsWide(in, out, bad)
			if k < blockLanes {
				network.MaskLanes(bad, k)
			}
			if anyLane(bad) {
				lane := firstLane(bad)
				verdicts[pi] = Verdict{
					Holds:    false,
					TestsRun: tests + lane + 1,
					In:       lanes[lane],
					Out:      out.Lane(lane),
				}
				continue
			}
			keep = append(keep, pi)
		}
		active = keep
		tests += k
	}
	for _, pi := range active {
		verdicts[pi] = Verdict{Holds: true, TestsRun: tests}
	}
	return verdicts, nil
}
