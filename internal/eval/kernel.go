package eval

import (
	"fmt"
	"os"
	"strconv"
	"sync/atomic"

	"sortnets/internal/network"
)

// Kernel width selection. The block engine streams test vectors in
// word-parallel blocks; the kernel width is how many lanes one block
// carries — 64 (the classic single-word SWAR path), 256 or 512
// (unrolled multi-word kernels, 4 or 8 words per line). Wider kernels
// amortize the per-block transpose, the stream handoff and the judge
// over 4–8× more vectors per loop iteration; verdicts are
// byte-identical at every width (the block schedule is the sequential
// stream order regardless of W).
//
// The width is selected at process start from the SORTNETS_LANES
// environment variable (64, 256 or 512) and defaults to 256; it can
// be changed at runtime with SetKernelLanes (sortnetd -lanes,
// adversary -width) and pinned per engine with NewLanes, which the
// differential width tests use.

// Supported kernel widths, in lanes.
const (
	Lanes64  = 64
	Lanes256 = 256
	Lanes512 = 512
)

// DefaultKernelLanes is the width used when SORTNETS_LANES is unset.
const DefaultKernelLanes = Lanes256

// kernelWords is the active words-per-line (lanes/64): 1, 4 or 8.
var kernelWords atomic.Int32

func init() {
	kernelWords.Store(DefaultKernelLanes / 64)
	if env := os.Getenv("SORTNETS_LANES"); env != "" {
		if lanes, err := strconv.Atoi(env); err == nil {
			_ = SetKernelLanes(lanes) // a bad value keeps the default
		}
	}
}

// SetKernelLanes sets the process-wide kernel width for engines that
// do not pin one. Only 64, 256 and 512 are supported.
func SetKernelLanes(lanes int) error {
	switch lanes {
	case Lanes64, Lanes256, Lanes512:
		kernelWords.Store(int32(lanes / 64))
		return nil
	}
	return fmt.Errorf("eval: unsupported kernel width %d lanes (want 64, 256 or 512)", lanes)
}

// KernelLanes returns the active process-wide kernel width in lanes.
func KernelLanes() int { return int(kernelWords.Load()) * 64 }

// wordsFor resolves the words-per-line this engine runs a judge at:
// the engine's pinned width (or the process default), dropped to the
// single-word path for judges that carry no word-vector form.
func (e *Engine) wordsFor(judge Judge) int {
	return wordsForLanes(e.lanes, judge)
}

// wordsForLanes is wordsFor for a raw lane count (0 = process
// default) — RunMany uses it directly, having no engine.
func wordsForLanes(lanes int, judge Judge) int {
	w := lanes / 64
	if w == 0 {
		w = int(kernelWords.Load())
	}
	if w > 1 && !judge.sorted && judge.RejectsWide == nil {
		return 1
	}
	return w
}

// ApplyWideBatch advances all 64·W lanes of a wide batch through the
// program in place. The two production widths get fully unrolled
// kernels — for a pure program the inner loop is W ANDs and W ORs
// over two fixed-size arrays, which the compiler schedules without
// bounds checks — and every fault opcode has the same word-vector
// form it has on the single-word path.
func (p *Program) ApplyWideBatch(b *network.WideBatch) {
	if b.N != p.n {
		panic(fmt.Sprintf("eval: batch has %d lines, program wants %d", b.N, p.n))
	}
	if p.pure {
		switch b.W {
		case 4:
			applyPure4(p.comps, b.Lines)
		case 8:
			applyPure8(p.comps, b.Lines)
		default:
			applyPureW(p.comps, b.Lines, b.W)
		}
		return
	}
	applyOpsW(p.ops, b.Lines, b.W)
}

// applyPure4 is the 256-lane pure kernel: 4 words per line, unrolled.
func applyPure4(comps []network.Comparator, lines []uint64) {
	for _, c := range comps {
		a := (*[4]uint64)(lines[c.A*4:])
		b := (*[4]uint64)(lines[c.B*4:])
		x0, y0 := a[0], b[0]
		x1, y1 := a[1], b[1]
		x2, y2 := a[2], b[2]
		x3, y3 := a[3], b[3]
		a[0], b[0] = x0&y0, x0|y0
		a[1], b[1] = x1&y1, x1|y1
		a[2], b[2] = x2&y2, x2|y2
		a[3], b[3] = x3&y3, x3|y3
	}
}

// applyPure8 is the 512-lane pure kernel: 8 words per line, unrolled.
func applyPure8(comps []network.Comparator, lines []uint64) {
	for _, c := range comps {
		a := (*[8]uint64)(lines[c.A*8:])
		b := (*[8]uint64)(lines[c.B*8:])
		x0, y0 := a[0], b[0]
		x1, y1 := a[1], b[1]
		x2, y2 := a[2], b[2]
		x3, y3 := a[3], b[3]
		a[0], b[0] = x0&y0, x0|y0
		a[1], b[1] = x1&y1, x1|y1
		a[2], b[2] = x2&y2, x2|y2
		a[3], b[3] = x3&y3, x3|y3
		x4, y4 := a[4], b[4]
		x5, y5 := a[5], b[5]
		x6, y6 := a[6], b[6]
		x7, y7 := a[7], b[7]
		a[4], b[4] = x4&y4, x4|y4
		a[5], b[5] = x5&y5, x5|y5
		a[6], b[6] = x6&y6, x6|y6
		a[7], b[7] = x7&y7, x7|y7
	}
}

// applyPureW is the generic pure kernel for any word count.
func applyPureW(comps []network.Comparator, lines []uint64, W int) {
	for _, c := range comps {
		la := lines[c.A*W : c.A*W+W]
		lb := lines[c.B*W : c.B*W+W]
		for g := 0; g < W; g++ {
			x, y := la[g], lb[g]
			la[g] = x & y
			lb[g] = x | y
		}
	}
}

// applyOpsW evaluates an op sequence (fault-injected programs
// included) at W words per line.
func applyOpsW(ops []Op, lines []uint64, W int) {
	for _, op := range ops {
		la := lines[op.A*W : op.A*W+W]
		var lb []uint64
		if op.Kind != OpClamp0 && op.Kind != OpClamp1 {
			lb = lines[op.B*W : op.B*W+W]
		}
		switch op.Kind {
		case OpCmp:
			for g := 0; g < W; g++ {
				x, y := la[g], lb[g]
				la[g] = x & y
				lb[g] = x | y
			}
		case OpNop:
		case OpSwap:
			for g := 0; g < W; g++ {
				la[g], lb[g] = lb[g], la[g]
			}
		case OpRevCmp:
			for g := 0; g < W; g++ {
				x, y := la[g], lb[g]
				la[g] = x | y
				lb[g] = x & y
			}
		case OpClamp0:
			for g := 0; g < W; g++ {
				la[g] = 0
			}
		case OpClamp1:
			for g := 0; g < W; g++ {
				la[g] = ^uint64(0)
			}
		case OpShortOR:
			for g := 0; g < W; g++ {
				s := la[g] | lb[g]
				la[g], lb[g] = s, s
			}
		case OpShortAND:
			for g := 0; g < W; g++ {
				s := la[g] & lb[g]
				la[g], lb[g] = s, s
			}
		}
	}
}
