package eval

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"sortnets/internal/bitvec"
	"sortnets/internal/network"
	"sortnets/internal/widevec"
)

// Judge decides, word-parallel, which lanes of an evaluated batch
// violate the property under test. Rejects returns a bitmask of
// REJECTED lanes; the engine masks it to the occupied lanes. in holds
// the pre-evaluation lane contents and is only loaded when NeedsInput
// is set (the sorter judge never looks at it, so the engine skips the
// second transpose entirely).
//
// RejectsWide is the word-vector lift of Rejects for the multi-word
// kernels (256/512 lanes): it fills bad (one word per 64 lanes) with
// the rejected-lane mask; the engine masks it to the occupied lanes.
// A judge without a wide form still works — the engine drops that
// judge to the 64-lane path — so hand-built Judge literals keep
// their historical behavior.
type Judge struct {
	NeedsInput  bool
	Rejects     func(in, out *network.Batch) uint64
	RejectsWide func(in, out *network.WideBatch, bad []uint64)
	sorted      bool // devirtualized fast path: reject = out.UnsortedLanes()
}

// SortedJudge rejects lanes whose outputs are not sorted — the
// sorting property, judged in one word-parallel pass with no input
// batch. The engine special-cases it to avoid the closure call on
// the hottest loop, at every kernel width.
func SortedJudge() Judge {
	return Judge{
		sorted:      true,
		Rejects:     func(_, out *network.Batch) uint64 { return out.UnsortedLanes() },
		RejectsWide: func(_, out *network.WideBatch, bad []uint64) { out.UnsortedLanes(bad) },
	}
}

// rejects applies the judge to one evaluated 64-lane block.
func (j *Judge) rejects(in, out *network.Batch) uint64 {
	if j.sorted {
		return out.UnsortedLanes()
	}
	return j.Rejects(in, out)
}

// rejectsWide applies the judge to one evaluated multi-word block.
func (j *Judge) rejectsWide(in, out *network.WideBatch, bad []uint64) {
	if j.sorted {
		out.UnsortedLanes(bad)
		return
	}
	j.RejectsWide(in, out, bad)
}

// PerLaneJudge adapts a scalar acceptance predicate to the batch
// engine: the network evaluation — the expensive part — stays
// word-parallel, only the judgment is per lane (at any kernel width).
func PerLaneJudge(accepts func(in, out bitvec.Vec) bool) Judge {
	return Judge{
		NeedsInput: true,
		Rejects: func(in, out *network.Batch) uint64 {
			var bad uint64
			for lane := 0; lane < out.Lanes; lane++ {
				if !accepts(in.Lane(lane), out.Lane(lane)) {
					bad |= 1 << uint(lane)
				}
			}
			return bad
		},
		RejectsWide: func(in, out *network.WideBatch, bad []uint64) {
			for g := range bad {
				bad[g] = 0
			}
			for lane := 0; lane < out.Lanes; lane++ {
				if !accepts(in.Lane(lane), out.Lane(lane)) {
					bad[lane>>6] |= 1 << uint(lane&63)
				}
			}
		},
	}
}

// Verdict is the outcome of streaming a test-vector family through a
// program.
type Verdict struct {
	Holds    bool
	TestsRun int
	In, Out  bitvec.Vec // counterexample input/output, valid when !Holds
}

// WideVerdict is the n > 64 counterpart of Verdict.
type WideVerdict struct {
	Holds    bool
	TestsRun int
	In, Out  widevec.Vec
}

// WideIterator streams wide binary vectors; core.WideIterator
// satisfies it structurally.
type WideIterator interface {
	Next() (widevec.Vec, bool)
}

// Engine runs a compiled program over streamed test vectors with an
// engine-owned worker pool. The workers parameter fixes the pool
// size: 1 pins strictly sequential, stream-order execution; k > 1
// forces k workers; 0 ("auto") runs sequentially below a work
// threshold and with runtime.NumCPU() workers above it, so small
// verdicts never pay goroutine overhead and large sweeps never leave
// cores idle.
type Engine struct {
	p       *Program
	workers int // 0 = auto
	lanes   int // 0 = process default (KernelLanes)
}

// New returns an engine over p. workers ≤ 0 selects auto mode. The
// kernel width is the process default (KernelLanes).
func New(p *Program, workers int) *Engine {
	if workers < 0 {
		workers = 0
	}
	return &Engine{p: p, workers: workers}
}

// NewLanes returns an engine pinned to the given kernel width (64,
// 256 or 512 lanes), independent of the process default — the
// differential width tests and A/B runs use this. lanes ≤ 0 selects
// the process default; other unsupported widths panic.
func NewLanes(p *Program, workers, lanes int) *Engine {
	e := New(p, workers)
	if lanes > 0 {
		switch lanes {
		case Lanes64, Lanes256, Lanes512:
			e.lanes = lanes
		default:
			panic(fmt.Sprintf("eval: unsupported kernel width %d lanes (want 64, 256 or 512)", lanes))
		}
	}
	return e
}

// Sequential-vs-parallel threshold for auto mode, in units of
// op-lanes (test vectors × program steps). Below it a pool costs more
// than it saves.
const autoWorkThreshold = 1 << 17

// Lanes per producer chunk in the parallel path: 16 full batches per
// handoff keeps channel traffic negligible.
const chunkLanes = 16 * network.LanesPerBatch

// Run streams the iterator's vectors through the program in 64-lane
// word-parallel blocks and judges each block, returning on the first
// rejected lane. With one worker the counterexample is the first
// failure in stream order; with a pool it is the first failure some
// worker found, and TestsRun counts the vectors handed out before the
// pool drained. Requires n ≤ 64 (use RunWide beyond).
func (e *Engine) Run(it bitvec.Iterator, judge Judge) Verdict {
	v, _ := e.RunCtx(context.Background(), it, judge)
	return v
}

// RunCtx is Run under a context: cancellation is checked once per
// 64-lane block (never per vector, so the hot loop stays word-
// parallel). On cancellation it returns a zero Verdict and ctx.Err();
// a failure found before the cancellation was observed is still
// reported with a nil error.
func (e *Engine) RunCtx(ctx context.Context, it bitvec.Iterator, judge Judge) (Verdict, error) {
	if e.p.n > network.LanesPerBatch {
		panic(fmt.Sprintf("eval: Run needs n ≤ 64, program has %d lines (use RunWide)", e.p.n))
	}
	W := e.wordsFor(judge)
	workers := e.workers
	if workers == 0 {
		// Auto: stage vectors until the work estimate crosses the
		// threshold; a stream that ends first runs sequentially.
		perVec := len(e.p.ops)
		if perVec == 0 {
			perVec = 1
		}
		budget := autoWorkThreshold/perVec + 1
		staged := make([]bitvec.Vec, 0, budget)
		exhausted := false
		for len(staged) < budget {
			v, ok := it.Next()
			if !ok {
				exhausted = true
				break
			}
			staged = append(staged, v)
		}
		if exhausted {
			return e.runSeqW(ctx, bitvec.Slice(staged), judge, W)
		}
		return e.runPoolW(ctx, &chainIter{head: staged, tail: it}, judge, W, runtime.NumCPU())
	}
	if workers == 1 {
		return e.runSeqW(ctx, it, judge, W)
	}
	return e.runPoolW(ctx, it, judge, W, workers)
}

// runSeqW and runPoolW dispatch between the classic single-word path
// and the multi-word kernels. The W == 1 code is untouched — wide
// kernels are a parallel path, not a rewrite.
func (e *Engine) runSeqW(ctx context.Context, it bitvec.Iterator, judge Judge, W int) (Verdict, error) {
	if W == 1 {
		return e.runSeq(ctx, it, judge)
	}
	return e.runSeqWide(ctx, it, judge, W)
}

func (e *Engine) runPoolW(ctx context.Context, it bitvec.Iterator, judge Judge, W, workers int) (Verdict, error) {
	if W == 1 {
		return e.runPool(ctx, it, judge, workers)
	}
	return e.runPoolWide(ctx, it, judge, W, workers)
}

// chainIter replays a staged prefix, then drains the live tail.
type chainIter struct {
	head []bitvec.Vec
	i    int
	tail bitvec.Iterator
}

func (c *chainIter) Next() (bitvec.Vec, bool) {
	if c.i < len(c.head) {
		v := c.head[c.i]
		c.i++
		return v, true
	}
	return c.tail.Next()
}

// block is a worker's reusable evaluation state: one 64-lane window
// of the stream plus the transposed in/out batches.
type block struct {
	lanes   [network.LanesPerBatch]bitvec.Vec
	words   [network.LanesPerBatch]uint64
	in, out *network.Batch
}

func newBlock(n int) *block {
	return &block{in: network.NewBatch(n), out: network.NewBatch(n)}
}

// judgeLanes loads k stream vectors, evaluates them, and judges them.
// It returns the rejected-lane mask (masked to the k occupied lanes).
//
//sortnets:hotpath
func (e *Engine) judgeLanes(b *block, k int, judge Judge) uint64 {
	for i := 0; i < k; i++ {
		b.words[i] = b.lanes[i].Bits
	}
	for i := k; i < network.LanesPerBatch; i++ {
		b.words[i] = 0
	}
	transpose64(&b.words)
	copy(b.out.Lines, b.words[:e.p.n])
	b.out.Lanes = k
	if judge.NeedsInput {
		copy(b.in.Lines, b.words[:e.p.n])
		b.in.Lanes = k
	}
	e.p.ApplyBatch(b.out)
	bad := judge.rejects(b.in, b.out)
	if k < network.LanesPerBatch {
		bad &= uint64(1)<<uint(k) - 1
	}
	return bad
}

func (e *Engine) verdictFrom(b *block, bad uint64, tests int) Verdict {
	lane := bits.TrailingZeros64(bad)
	return Verdict{Holds: false, TestsRun: tests, In: b.lanes[lane], Out: b.out.Lane(lane)}
}

//sortnets:ctxloop
func (e *Engine) runSeq(ctx context.Context, it bitvec.Iterator, judge Judge) (Verdict, error) {
	b := newBlock(e.p.n)
	tests := 0
	for {
		if err := ctx.Err(); err != nil {
			return Verdict{}, err
		}
		k := 0
		for k < network.LanesPerBatch {
			v, ok := it.Next()
			if !ok {
				break
			}
			b.lanes[k] = v
			k++
		}
		if k == 0 {
			return Verdict{Holds: true, TestsRun: tests}, nil
		}
		if bad := e.judgeLanes(b, k, judge); bad != 0 {
			// The lowest rejected lane is the first failure in stream
			// order; report the tests consumed up to and including it,
			// exactly as a one-vector-at-a-time engine would.
			lane := bits.TrailingZeros64(bad)
			return e.verdictFrom(b, bad, tests+lane+1), nil
		}
		tests += k
	}
}

//sortnets:ctxloop
func (e *Engine) runPool(ctx context.Context, it bitvec.Iterator, judge Judge, workers int) (Verdict, error) {
	if workers < 1 {
		workers = 1
	}
	chunks := make(chan []bitvec.Vec, workers)
	fails := make(chan Verdict, workers)
	stop := make(chan struct{})
	var stopOnce sync.Once

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := newBlock(e.p.n)
			for chunk := range chunks {
				for off := 0; off < len(chunk); off += network.LanesPerBatch {
					if ctx.Err() != nil {
						return
					}
					k := len(chunk) - off
					if k > network.LanesPerBatch {
						k = network.LanesPerBatch
					}
					copy(b.lanes[:k], chunk[off:off+k])
					if bad := e.judgeLanes(b, k, judge); bad != 0 {
						select {
						case fails <- e.verdictFrom(b, bad, 0):
						default:
						}
						stopOnce.Do(func() { close(stop) })
						return
					}
				}
			}
		}()
	}

	tests := 0
feed:
	for {
		if ctx.Err() != nil {
			break
		}
		chunk := make([]bitvec.Vec, 0, chunkLanes)
		for len(chunk) < chunkLanes {
			v, ok := it.Next()
			if !ok {
				break
			}
			chunk = append(chunk, v)
		}
		if len(chunk) == 0 {
			break
		}
		tests += len(chunk)
		select {
		case chunks <- chunk:
		case <-stop:
			break feed
		case <-ctx.Done():
			break feed
		}
	}
	close(chunks)
	wg.Wait()
	close(fails)
	if f, ok := <-fails; ok {
		f.TestsRun = tests
		return f, nil
	}
	if err := ctx.Err(); err != nil {
		return Verdict{}, err
	}
	return Verdict{Holds: true, TestsRun: tests}, nil
}

// Sweep streams the iterator's vectors through the program in 64-lane
// blocks like Run, but never early-exits: visit is called for every
// judged block with the stream offset of the block's first vector and
// the rejected-lane mask (already masked to the occupied lanes). It
// returns the number of vectors swept. This is the full-matrix
// counterpart of Run — fault signature extraction wants every
// (test, verdict) bit, not just the first failure.
func (e *Engine) Sweep(it bitvec.Iterator, judge Judge, visit func(offset int, rejected uint64)) int {
	n, _ := e.SweepCtx(context.Background(), it, judge, visit)
	return n
}

// SweepCtx is Sweep under a context, checked once per 64-lane block.
//
//sortnets:ctxloop
func (e *Engine) SweepCtx(ctx context.Context, it bitvec.Iterator, judge Judge, visit func(offset int, rejected uint64)) (int, error) {
	if e.p.n > network.LanesPerBatch {
		panic(fmt.Sprintf("eval: Sweep needs n ≤ 64, program has %d lines", e.p.n))
	}
	b := newBlock(e.p.n)
	tests := 0
	for {
		if err := ctx.Err(); err != nil {
			return tests, err
		}
		k := 0
		for k < network.LanesPerBatch {
			v, ok := it.Next()
			if !ok {
				break
			}
			b.lanes[k] = v
			k++
		}
		if k == 0 {
			return tests, nil
		}
		visit(tests, e.judgeLanes(b, k, judge))
		tests += k
	}
}

// RunUniverse judges the program against all 2ⁿ binary inputs — the
// exhaustive ground-truth sweep — loading 64 consecutive inputs
// wholesale (six fixed masks and constant words) instead of
// transposing lane by lane.
func (e *Engine) RunUniverse(judge Judge) Verdict {
	v, _ := e.RunUniverseCtx(context.Background(), judge)
	return v
}

// RunUniverseCtx is RunUniverse under a context, checked once per
// 64-lane block on the sequential path and once per slab under the
// pool.
func (e *Engine) RunUniverseCtx(ctx context.Context, judge Judge) (Verdict, error) {
	n := e.p.n
	if n > 30 {
		panic(fmt.Sprintf("eval: RunUniverse sweeps 2^%d inputs; n is too wide", n))
	}
	W := e.wordsFor(judge)
	if n > 6 && e.workers != 1 {
		workers := e.workers
		if workers == 0 {
			if (uint64(len(e.p.ops))+1)<<uint(n) >= autoWorkThreshold {
				workers = runtime.NumCPU()
			} else {
				workers = 1
			}
		}
		if workers > 1 {
			return e.universePool(ctx, judge, W, workers)
		}
	}
	total := uint64(bitvec.Universe(n))
	v, err := e.universeRangeW(ctx, judge, 0, total, W)
	if err != nil {
		return Verdict{}, err
	}
	if v.Holds {
		v.TestsRun = int(total)
	}
	return v, nil
}

// universeRange sweeps inputs [from, to) in 64-lane blocks; from must
// be a multiple of 64 (or 0). On failure TestsRun is the count swept
// within this range up to and including the failing block.
//
//sortnets:ctxloop
func (e *Engine) universeRange(ctx context.Context, judge Judge, from, to uint64) (Verdict, error) {
	n := e.p.n
	in := network.NewBatch(n)
	out := network.NewBatch(n)
	tests := 0
	for base := from; base < to; base += network.LanesPerBatch {
		if err := ctx.Err(); err != nil {
			return Verdict{}, err
		}
		k := int(to - base)
		if k > network.LanesPerBatch {
			k = network.LanesPerBatch
		}
		loadConsecutive(out, base, k)
		if judge.NeedsInput {
			loadConsecutive(in, base, k)
		}
		e.p.ApplyBatch(out)
		bad := judge.rejects(in, out)
		if k < network.LanesPerBatch {
			bad &= uint64(1)<<uint(k) - 1
		}
		if bad != 0 {
			lane := bits.TrailingZeros64(bad)
			return Verdict{
				Holds:    false,
				TestsRun: tests + lane + 1,
				In:       bitvec.New(n, base+uint64(lane)),
				Out:      out.Lane(lane),
			}, nil
		}
		tests += k
	}
	return Verdict{Holds: true, TestsRun: tests}, nil
}

// universePool shards the universe into contiguous slabs handed to
// NumCPU-bounded workers; the first failure (lowest slab) wins. The
// slab size is a multiple of every kernel width, so slab boundaries
// stay block-aligned at any W. (No ctxloop annotation: the loop and
// its per-claim ctx check live in ForEachUntilCtx.)
func (e *Engine) universePool(ctx context.Context, judge Judge, W, workers int) (Verdict, error) {
	n := e.p.n
	total := uint64(bitvec.Universe(n))
	const slab = 1 << 12
	slabs := int((total + slab - 1) / slab)
	var mu sync.Mutex
	found := Verdict{Holds: true}
	foundSlab := slabs
	hit, err := ForEachUntilCtx(ctx, slabs, workers, func(i int) bool {
		from := uint64(i) * slab
		to := from + slab
		if to > total {
			to = total
		}
		v, err := e.universeRangeW(ctx, judge, from, to, W)
		if err != nil || v.Holds {
			return false
		}
		mu.Lock()
		if i < foundSlab {
			foundSlab, found = i, v
		}
		mu.Unlock()
		return true
	})
	if hit < 0 {
		if err != nil {
			return Verdict{}, err
		}
		return Verdict{Holds: true, TestsRun: int(total)}, nil
	}
	found.TestsRun = foundSlab*slab + found.TestsRun
	return found, nil
}

// laneMasks[i] is the bit pattern of input-bit i across 64 consecutive
// inputs starting at a multiple of 64, for i < 6.
var laneMasks = [6]uint64{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// loadConsecutive fills the batch with inputs base..base+k-1 (base a
// multiple of 64) without per-lane transposition.
//
//sortnets:hotpath
func loadConsecutive(b *network.Batch, base uint64, k int) {
	for i := 0; i < b.N; i++ {
		if i < 6 {
			b.Lines[i] = laneMasks[i]
		} else if base>>uint(i)&1 == 1 {
			b.Lines[i] = ^uint64(0)
		} else {
			b.Lines[i] = 0
		}
	}
	b.Lanes = k
}

// RunWide streams wide vectors (n > 64 regime) through a pure
// program, judging each with the scalar predicate; pooled above the
// auto threshold exactly like Run. accepts sees the input and output
// vector of one test.
func (e *Engine) RunWide(it WideIterator, accepts func(in, out widevec.Vec) bool) WideVerdict {
	v, _ := e.RunWideCtx(context.Background(), it, accepts)
	return v
}

// RunWideCtx is RunWide under a context, checked between test vectors
// (one wide evaluation is already a block's worth of work).
func (e *Engine) RunWideCtx(ctx context.Context, it WideIterator, accepts func(in, out widevec.Vec) bool) (WideVerdict, error) {
	pairs := e.p.Pairs() // also asserts purity once, up front
	workers := e.workers
	if workers == 0 {
		perVec := len(pairs)
		if perVec == 0 {
			perVec = 1
		}
		budget := autoWorkThreshold/perVec + 1
		staged := make([]widevec.Vec, 0, budget)
		exhausted := false
		for len(staged) < budget {
			v, ok := it.Next()
			if !ok {
				exhausted = true
				break
			}
			staged = append(staged, v)
		}
		if exhausted {
			return e.runWideSeq(ctx, &wideChain{head: staged}, accepts)
		}
		return e.runWidePool(ctx, &wideChain{head: staged, tail: it}, accepts, runtime.NumCPU())
	}
	if workers == 1 {
		return e.runWideSeq(ctx, it, accepts)
	}
	return e.runWidePool(ctx, it, accepts, workers)
}

type wideChain struct {
	head []widevec.Vec
	i    int
	tail WideIterator
}

func (c *wideChain) Next() (widevec.Vec, bool) {
	if c.i < len(c.head) {
		v := c.head[c.i]
		c.i++
		return v, true
	}
	if c.tail == nil {
		return widevec.Vec{}, false
	}
	return c.tail.Next()
}

//sortnets:ctxloop
func (e *Engine) runWideSeq(ctx context.Context, it WideIterator, accepts func(in, out widevec.Vec) bool) (WideVerdict, error) {
	tests := 0
	for {
		if err := ctx.Err(); err != nil {
			return WideVerdict{}, err
		}
		v, ok := it.Next()
		if !ok {
			return WideVerdict{Holds: true, TestsRun: tests}, nil
		}
		tests++
		out := e.p.ApplyWide(v)
		if !accepts(v, out) {
			return WideVerdict{Holds: false, TestsRun: tests, In: v, Out: out}, nil
		}
	}
}

const wideChunk = 64

//sortnets:ctxloop
func (e *Engine) runWidePool(ctx context.Context, it WideIterator, accepts func(in, out widevec.Vec) bool, workers int) (WideVerdict, error) {
	if workers < 1 {
		workers = 1
	}
	chunks := make(chan []widevec.Vec, workers)
	fails := make(chan WideVerdict, workers)
	stop := make(chan struct{})
	var stopOnce sync.Once

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for chunk := range chunks {
				for _, v := range chunk {
					if ctx.Err() != nil {
						return
					}
					out := e.p.ApplyWide(v)
					if !accepts(v, out) {
						select {
						case fails <- WideVerdict{Holds: false, In: v, Out: out}:
						default:
						}
						stopOnce.Do(func() { close(stop) })
						return
					}
				}
			}
		}()
	}

	tests := 0
feed:
	for {
		if ctx.Err() != nil {
			break
		}
		chunk := make([]widevec.Vec, 0, wideChunk)
		for len(chunk) < wideChunk {
			v, ok := it.Next()
			if !ok {
				break
			}
			chunk = append(chunk, v)
		}
		if len(chunk) == 0 {
			break
		}
		tests += len(chunk)
		select {
		case chunks <- chunk:
		case <-stop:
			break feed
		case <-ctx.Done():
			break feed
		}
	}
	close(chunks)
	wg.Wait()
	close(fails)
	if f, ok := <-fails; ok {
		f.TestsRun = tests
		return f, nil
	}
	if err := ctx.Err(); err != nil {
		return WideVerdict{}, err
	}
	return WideVerdict{Holds: true, TestsRun: tests}, nil
}

// transpose64 transposes a 64×64 bit matrix in place (the recursive
// block-swap of Hacker's Delight §7-3, phrased for LSB-first rows):
// afterwards a[i] bit j equals the old a[j] bit i. This is how the
// engine turns 64 stream vectors into the per-line word layout in
// 64·log₂64 word ops instead of 64·n single-bit inserts.
//
//sortnets:hotpath
func transpose64(a *[64]uint64) {
	m := uint64(0x00000000FFFFFFFF)
	for j := uint(32); j != 0; j >>= 1 {
		for k := 0; k < 64; k = (k + int(j) + 1) &^ int(j) {
			// Swap the top-right and bottom-left j×j sub-blocks of
			// each 2j×2j block: bit c|j of row k ↔ bit c of row k+j.
			t := (a[k]>>j ^ a[k+int(j)]) & m
			a[k] ^= t << j
			a[k+int(j)] ^= t
		}
		m ^= m << (j >> 1)
	}
}
