package streamtab

import (
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Dir is a directory of stream tables with lazy, cached lookup. A
// lookup that finds no valid table (missing file, wrong version, bad
// digest, identity mismatch) is remembered as absent, so the serving
// hot path pays one os.Open attempt per identity per process, not per
// request. Opening the Dir itself never fails: a nonexistent
// directory is simply a Dir where every Lookup misses — the caller's
// fallback to live enumeration is what makes tables transparent.
type Dir struct {
	path string

	mu     sync.Mutex
	tables map[string]*Table // key → opened table
	absent map[string]error  // key → why the lookup failed (nil file error for "no file")
}

// OpenDir returns a lazy handle on a table directory.
func OpenDir(path string) *Dir {
	return &Dir{
		path:   path,
		tables: make(map[string]*Table),
		absent: make(map[string]error),
	}
}

// Path returns the directory the Dir reads.
func (d *Dir) Path() string { return d.path }

// Lookup returns the table for (property, n, k) if a valid one is on
// disk. The table is opened (and fully digest-checked) on first use
// and cached; a failed lookup is cached as absent. The returned Table
// is shared — do not Close it; Close the Dir instead.
func (d *Dir) Lookup(property string, n, k int) (*Table, bool) {
	key := Key(property, n, k)
	d.mu.Lock()
	defer d.mu.Unlock()
	if t, ok := d.tables[key]; ok {
		return t, true
	}
	if _, ok := d.absent[key]; ok {
		return nil, false
	}
	t, err := Open(filepath.Join(d.path, key+".snstab"))
	if err == nil {
		h := t.Header
		if h.Property != property || h.N != n || (property == "selector" && h.K != k) {
			// A misfiled table must not serve the wrong stream.
			t.Close()
			t, err = nil, errIdentity{}
		}
	}
	if err != nil {
		d.absent[key] = err
		return nil, false
	}
	d.tables[key] = t
	return t, true
}

type errIdentity struct{}

func (errIdentity) Error() string { return "table identity does not match its file name" }

// Info describes one table file found by List.
type Info struct {
	File   string // file name within the directory
	Header Header // parsed header (valid only when Err == nil)
	Bytes  int64  // file size
	Err    error  // non-nil when the table failed validation
}

// List scans the directory for *.snstab files and fully validates
// each (digest included) — the operator's view of what a serving
// process would actually use. Results are sorted by file name. A
// missing directory yields an empty list and no error.
func List(path string) ([]Info, error) {
	entries, err := os.ReadDir(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var infos []Info
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".snstab" {
			continue
		}
		info := Info{File: e.Name()}
		if fi, err := e.Info(); err == nil {
			info.Bytes = fi.Size()
		}
		t, err := Open(filepath.Join(path, e.Name()))
		if err != nil {
			info.Err = err
		} else {
			info.Header = t.Header
			t.Close()
		}
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].File < infos[j].File })
	return infos, nil
}

// Close releases every opened table. The Dir must not be used
// afterwards.
func (d *Dir) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var first error
	for key, t := range d.tables {
		if err := t.Close(); err != nil && first == nil {
			first = err
		}
		delete(d.tables, key)
	}
	return first
}
