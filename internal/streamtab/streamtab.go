// Package streamtab persists the paper's minimal binary test streams
// as versioned on-disk tables, so a serving process can replay a
// pre-enumerated stream (mmap-backed where the platform allows)
// instead of re-deriving it — Gosper stepping, sortedness filtering
// and weight scheduling — on every verdict. A table holds EXACTLY the
// vectors of the property's live enumeration in EXACTLY stream order,
// so verdicts computed from a table are byte-identical to live ones
// and share their cache entries; a missing or unreadable table simply
// falls back to live enumeration.
//
// # On-disk format (version 1)
//
//	offset 0   magic "SNSTAB1\n"                      (8 bytes)
//	offset 8   header length H, little-endian uint32  (4 bytes)
//	offset 12  header: H bytes of JSON (see Header)
//	           zero padding to the next 8-byte boundary
//	           payload: Count little-endian uint64 test vectors
//
// The header records the identity key (property, n, k), the format
// version, the payload vector count and byte length, and the SHA-256
// hex digest of the payload. Open verifies the digest in full, so a
// truncated or bit-rotted table is rejected (and the caller falls
// back) rather than silently yielding wrong verdicts. All integers in
// the binary framing are little-endian; the payload is 8-byte aligned
// so a mapped table can be walked as whole words.
package streamtab

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"sortnets/internal/bitvec"
)

// Magic opens every stream table file.
const Magic = "SNSTAB1\n"

// FormatVersion is the current on-disk format version; Open rejects
// any other (the version is inside the JSON header, so readers can
// always parse far enough to know they should refuse).
const FormatVersion = 1

// maxHeaderBytes bounds the declared header length when reading, so a
// corrupt length field cannot drive an absurd allocation.
const maxHeaderBytes = 1 << 20

// Header is the JSON header of a stream table. Property, N and K are
// the identity key (K is meaningful only for selectors); Count,
// PayloadBytes and SHA256 pin the payload.
type Header struct {
	Version      int    `json:"version"`
	Property     string `json:"property"` // sorter | selector | merger
	N            int    `json:"n"`
	K            int    `json:"k,omitempty"`
	Count        int    `json:"count"`
	PayloadBytes int64  `json:"payload_bytes"`
	SHA256       string `json:"sha256"` // hex digest of the payload
	Tool         string `json:"tool,omitempty"`
}

// Key is the canonical identity of a table: sorter_n8, selector_k2_n8,
// merger_n8. It names files (Key + ".snstab") and Dir cache entries.
func Key(property string, n, k int) string {
	if property == "selector" {
		return fmt.Sprintf("selector_k%d_n%d", k, n)
	}
	return fmt.Sprintf("%s_n%d", property, n)
}

// FileName is the table file name for an identity key.
func FileName(property string, n, k int) string {
	return Key(property, n, k) + ".snstab"
}

// payloadOffset is where the payload starts for a header of hlen
// bytes: magic + length word + header, rounded up to 8 bytes.
func payloadOffset(hlen int) int {
	off := len(Magic) + 4 + hlen
	return (off + 7) &^ 7
}

// Write enumerates it to completion and writes the table for the
// given identity atomically (temp file + rename) into dir, returning
// the final header. Identity fields of h (Property, N, K, Tool) are
// kept; Version, Count, PayloadBytes and SHA256 are computed here.
func Write(dir string, h Header, it bitvec.Iterator) (Header, error) {
	var payload []byte
	count := 0
	for {
		v, ok := it.Next()
		if !ok {
			break
		}
		payload = binary.LittleEndian.AppendUint64(payload, v.Bits)
		count++
	}
	sum := sha256.Sum256(payload)
	h.Version = FormatVersion
	h.Count = count
	h.PayloadBytes = int64(len(payload))
	h.SHA256 = hex.EncodeToString(sum[:])

	hdr, err := json.Marshal(h)
	if err != nil {
		return Header{}, err
	}
	buf := make([]byte, 0, payloadOffset(len(hdr))+len(payload))
	buf = append(buf, Magic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(hdr)))
	buf = append(buf, hdr...)
	for len(buf) < payloadOffset(len(hdr)) {
		buf = append(buf, 0)
	}
	buf = append(buf, payload...)

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Header{}, err
	}
	final := filepath.Join(dir, FileName(h.Property, h.N, h.K))
	tmp, err := os.CreateTemp(dir, ".snstab-*")
	if err != nil {
		return Header{}, err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return Header{}, err
	}
	if err := tmp.Close(); err != nil {
		return Header{}, err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return Header{}, err
	}
	return h, nil
}

// Table is an opened stream table. The payload is either a read-only
// file mapping (unix) or a heap copy (fallback); either way it is
// immutable and safe for concurrent iteration.
type Table struct {
	Header Header
	Path   string

	payload []byte // the Count test-vector words, little-endian
	mapping []byte // whole-file mapping when mmap-backed, else nil
}

// Open reads and fully validates a table: magic, version, framing
// consistency (count·8 == payload bytes == what the file holds) and
// the payload's SHA-256 digest. Any mismatch is an error — a caller
// that wants transparent fallback treats the error as "no table".
func Open(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < int64(len(Magic))+4 {
		return nil, fmt.Errorf("streamtab: %s: too short for a table", path)
	}

	data, mapping, err := readOrMap(f, size)
	if err != nil {
		return nil, err
	}
	t, err := parse(path, data)
	if err != nil {
		unmap(mapping)
		return nil, err
	}
	t.mapping = mapping
	return t, nil
}

// parse validates the framed bytes of a whole table file and slices
// out the payload (no copies; the Table aliases data).
func parse(path string, data []byte) (*Table, error) {
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("streamtab: %s: bad magic", path)
	}
	hlen := int(binary.LittleEndian.Uint32(data[len(Magic):]))
	if hlen <= 0 || hlen > maxHeaderBytes || payloadOffset(hlen) > len(data) {
		return nil, fmt.Errorf("streamtab: %s: implausible header length %d", path, hlen)
	}
	var h Header
	if err := json.Unmarshal(data[len(Magic)+4:len(Magic)+4+hlen], &h); err != nil {
		return nil, fmt.Errorf("streamtab: %s: header: %v", path, err)
	}
	if h.Version != FormatVersion {
		return nil, fmt.Errorf("streamtab: %s: format version %d, want %d", path, h.Version, FormatVersion)
	}
	if h.Count < 0 || h.PayloadBytes != int64(h.Count)*8 {
		return nil, fmt.Errorf("streamtab: %s: count %d inconsistent with payload_bytes %d", path, h.Count, h.PayloadBytes)
	}
	off := payloadOffset(hlen)
	if int64(len(data)-off) != h.PayloadBytes {
		return nil, fmt.Errorf("streamtab: %s: file holds %d payload bytes, header says %d", path, len(data)-off, h.PayloadBytes)
	}
	payload := data[off:]
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != h.SHA256 {
		return nil, fmt.Errorf("streamtab: %s: payload digest mismatch", path)
	}
	return &Table{Header: h, Path: path, payload: payload}, nil
}

// Count is the number of test vectors in the table.
func (t *Table) Count() int { return t.Header.Count }

// Vec returns the i-th test vector in stream order.
func (t *Table) Vec(i int) bitvec.Vec {
	return bitvec.New(t.Header.N, binary.LittleEndian.Uint64(t.payload[i*8:]))
}

// Mapped reports whether the payload is a file mapping (as opposed to
// a heap copy read on the fallback path).
func (t *Table) Mapped() bool { return t.mapping != nil }

// Iter streams the table in stored order. Iterators are independent;
// any number may run concurrently over one Table.
func (t *Table) Iter() bitvec.Iterator { return &tableIter{t: t} }

type tableIter struct {
	t *Table
	i int
}

func (it *tableIter) Next() (bitvec.Vec, bool) {
	if it.i >= it.t.Header.Count {
		return bitvec.Vec{}, false
	}
	v := it.t.Vec(it.i)
	it.i++
	return v, true
}

// Close releases the file mapping, if any. The Table (and any live
// iterators) must not be used afterwards.
func (t *Table) Close() error {
	m := t.mapping
	t.mapping, t.payload = nil, nil
	return unmap(m)
}
