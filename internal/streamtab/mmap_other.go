//go:build !unix

package streamtab

import "os"

// readOrMap reads the whole file on platforms without the unix mmap
// path; the mapping result is always nil here.
func readOrMap(f *os.File, size int64) (data, mapping []byte, err error) {
	data, err = os.ReadFile(f.Name())
	return data, nil, err
}

func unmap(mapping []byte) error { return nil }
