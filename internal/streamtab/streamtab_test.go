package streamtab

import (
	"os"
	"path/filepath"
	"testing"

	"sortnets/internal/bitvec"
	"sortnets/internal/core"
)

func writeSorter(t *testing.T, dir string, n int) Header {
	t.Helper()
	h, err := Write(dir, Header{Property: "sorter", N: n}, core.SorterBinaryTests(n))
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	return h
}

func TestRoundTripMatchesLiveEnumeration(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		prop string
		n, k int
		live func() bitvec.Iterator
	}{
		{"sorter", 8, 0, func() bitvec.Iterator { return core.SorterBinaryTests(8) }},
		{"selector", 10, 3, func() bitvec.Iterator { return core.SelectorBinaryTests(10, 3) }},
		{"merger", 8, 0, func() bitvec.Iterator { return core.MergerBinaryTests(8) }},
	}
	for _, tc := range cases {
		h, err := Write(dir, Header{Property: tc.prop, N: tc.n, K: tc.k}, tc.live())
		if err != nil {
			t.Fatalf("%s: Write: %v", tc.prop, err)
		}
		want := bitvec.Collect(tc.live())
		if h.Count != len(want) {
			t.Fatalf("%s: header count %d, live %d", tc.prop, h.Count, len(want))
		}
		tab, err := Open(filepath.Join(dir, FileName(tc.prop, tc.n, tc.k)))
		if err != nil {
			t.Fatalf("%s: Open: %v", tc.prop, err)
		}
		got := bitvec.Collect(tab.Iter())
		if len(got) != len(want) {
			t.Fatalf("%s: table has %d vectors, live %d", tc.prop, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: vector %d: table %s, live %s", tc.prop, i, got[i], want[i])
			}
		}
		tab.Close()
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	writeSorter(t, dir, 8)
	path := filepath.Join(dir, FileName("sorter", 8, 0))
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(name string, f func([]byte) []byte) {
		t.Helper()
		if err := os.WriteFile(path, f(append([]byte(nil), orig...)), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(path); err == nil {
			t.Fatalf("%s: Open accepted a corrupt table", name)
		}
	}
	mutate("flipped payload byte", func(b []byte) []byte { b[len(b)-1] ^= 1; return b })
	mutate("truncated payload", func(b []byte) []byte { return b[:len(b)-8] })
	mutate("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })
	mutate("flipped header byte", func(b []byte) []byte { b[20] ^= 1; return b })

	// And the pristine bytes still open.
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	tab, err := Open(path)
	if err != nil {
		t.Fatalf("pristine reopen: %v", err)
	}
	tab.Close()
}

func TestDirLookup(t *testing.T) {
	dir := t.TempDir()
	writeSorter(t, dir, 8)
	d := OpenDir(dir)
	defer d.Close()

	tab, ok := d.Lookup("sorter", 8, 0)
	if !ok {
		t.Fatal("Lookup missed a valid table")
	}
	if tab.Count() != 1<<8-8-1 {
		t.Fatalf("sorter n=8 table has %d vectors, want %d", tab.Count(), 1<<8-8-1)
	}
	// Cached: same *Table back.
	again, ok := d.Lookup("sorter", 8, 0)
	if !ok || again != tab {
		t.Fatal("second Lookup did not return the cached table")
	}
	if _, ok := d.Lookup("sorter", 9, 0); ok {
		t.Fatal("Lookup invented a table that is not on disk")
	}
	if _, ok := d.Lookup("merger", 8, 0); ok {
		t.Fatal("Lookup returned a sorter table for a merger key")
	}
}

func TestDirLookupRejectsMisnamedTable(t *testing.T) {
	dir := t.TempDir()
	writeSorter(t, dir, 8)
	// File says merger, header says sorter: must not serve.
	if err := os.Rename(
		filepath.Join(dir, FileName("sorter", 8, 0)),
		filepath.Join(dir, FileName("merger", 8, 0)),
	); err != nil {
		t.Fatal(err)
	}
	d := OpenDir(dir)
	defer d.Close()
	if _, ok := d.Lookup("merger", 8, 0); ok {
		t.Fatal("Lookup served a table whose header identity disagrees with its file name")
	}
}

func TestDirOnMissingDirectory(t *testing.T) {
	d := OpenDir(filepath.Join(t.TempDir(), "nope"))
	defer d.Close()
	if _, ok := d.Lookup("sorter", 8, 0); ok {
		t.Fatal("Lookup found a table in a nonexistent directory")
	}
	infos, err := List(d.Path())
	if err != nil || len(infos) != 0 {
		t.Fatalf("List on missing dir: %v, %d infos", err, len(infos))
	}
}

func TestList(t *testing.T) {
	dir := t.TempDir()
	writeSorter(t, dir, 6)
	writeSorter(t, dir, 8)
	// One corrupt straggler.
	bad := filepath.Join(dir, FileName("sorter", 7, 0))
	if err := os.WriteFile(bad, []byte("not a table at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	infos, err := List(dir)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(infos) != 3 {
		t.Fatalf("List found %d tables, want 3", len(infos))
	}
	valid, broken := 0, 0
	for _, info := range infos {
		if info.Err != nil {
			broken++
		} else {
			valid++
			if info.Header.Property != "sorter" {
				t.Fatalf("%s: property %q", info.File, info.Header.Property)
			}
		}
	}
	if valid != 2 || broken != 1 {
		t.Fatalf("List: %d valid + %d broken, want 2 + 1", valid, broken)
	}
}

func TestTableVecRandomAccess(t *testing.T) {
	dir := t.TempDir()
	writeSorter(t, dir, 8)
	tab, err := Open(filepath.Join(dir, FileName("sorter", 8, 0)))
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()
	want := bitvec.Collect(core.SorterBinaryTests(8))
	for _, i := range []int{0, 1, len(want) / 2, len(want) - 1} {
		if tab.Vec(i) != want[i] {
			t.Fatalf("Vec(%d) = %s, want %s", i, tab.Vec(i), want[i])
		}
	}
}
