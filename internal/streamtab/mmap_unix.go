//go:build unix

package streamtab

import (
	"os"
	"syscall"
)

// readOrMap maps the whole file read-only, falling back to a plain
// read if the mapping fails (some filesystems refuse mmap). The
// returned mapping is nil on the fallback path.
func readOrMap(f *os.File, size int64) (data, mapping []byte, err error) {
	if size > 0 && int64(int(size)) == size {
		m, merr := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
		if merr == nil {
			return m, m, nil
		}
	}
	data, err = os.ReadFile(f.Name())
	return data, nil, err
}

func unmap(mapping []byte) error {
	if mapping == nil {
		return nil
	}
	return syscall.Munmap(mapping)
}
