package canon

import (
	"testing"

	"sortnets/internal/bitvec"
	"sortnets/internal/network"
)

// decodeNetwork grows a standard network from raw fuzz bytes: two
// bytes per comparator, reduced mod the line count. Every byte string
// decodes to SOME valid network, so the fuzzer explores circuit
// space, not parser space.
func decodeNetwork(nByte byte, data []byte) *network.Network {
	n := 2 + int(nByte)%11 // 2..12 lines: universe sweeps stay cheap
	w := network.New(n)
	for i := 0; i+1 < len(data) && w.Size() < 64; i += 2 {
		a := int(data[i]) % n
		b := int(data[i+1]) % n
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		w.AddPair(a, b)
	}
	return w
}

// FuzzCanonRoundTrip is the satellite fuzz contract: canonicalizing
// twice is a fixpoint, the digest is invariant under normalization,
// and the canonical network computes the same function as the input
// (checked over the full 2ⁿ universe — n is capped small).
func FuzzCanonRoundTrip(f *testing.F) {
	f.Add(byte(2), []byte{0, 1})
	f.Add(byte(4), []byte{0, 2, 1, 3, 0, 1, 2, 3})
	f.Add(byte(7), []byte{6, 0, 3, 3, 5, 1})
	f.Add(byte(0), []byte{})
	f.Fuzz(func(t *testing.T, nByte byte, data []byte) {
		w := decodeNetwork(nByte, data)
		once := Normalize(w)
		twice := Normalize(once)
		if once.Format() != twice.Format() {
			t.Fatalf("Normalize not a fixpoint:\n in:    %s\n once:  %s\n twice: %s",
				w.Format(), once.Format(), twice.Format())
		}
		if DigestString(w) != DigestString(once) {
			t.Fatalf("digest not invariant under normalization of %s", w.Format())
		}
		for x := uint64(0); x < uint64(bitvec.Universe(w.N)); x++ {
			in := bitvec.New(w.N, x)
			if got, want := once.ApplyVec(in), w.ApplyVec(in); got != want {
				t.Fatalf("canonical form diverges on %s: %s vs %s (net %s)", in, got, want, w.Format())
			}
		}
	})
}

// FuzzUntangle drives Untangle with arbitrary generalized pairs and
// checks the lane-relabeling invariant G(x)[l] == S(x)[r[l]].
func FuzzUntangle(f *testing.F) {
	f.Add(byte(2), []byte{1, 0})
	f.Add(byte(4), []byte{2, 0, 3, 1, 1, 0, 3, 2, 2, 1})
	f.Fuzz(func(t *testing.T, nByte byte, data []byte) {
		n := 2 + int(nByte)%9 // 2..10 lines
		var pairs [][2]int
		for i := 0; i+1 < len(data) && len(pairs) < 48; i += 2 {
			a, b := int(data[i])%n, int(data[i+1])%n
			if a == b {
				continue
			}
			pairs = append(pairs, [2]int{a, b})
		}
		s, r, err := Untangle(n, pairs)
		if err != nil {
			t.Fatalf("Untangle rejected in-range pairs %v: %v", pairs, err)
		}
		for x := uint64(0); x < uint64(bitvec.Universe(n)); x++ {
			in := bitvec.New(n, x)
			g := applyGeneralized(n, pairs, in)
			sv := s.ApplyVec(in)
			for l := 0; l < n; l++ {
				if g.Bits>>uint(l)&1 != sv.Bits>>uint(r[l])&1 {
					t.Fatalf("invariant broken: pairs=%v r=%v x=%s", pairs, r, in)
				}
			}
		}
	})
}
