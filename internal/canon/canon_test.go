package canon

import (
	"math/rand"
	"testing"

	"sortnets/internal/bitvec"
	"sortnets/internal/network"
)

// applyGeneralized is the reference evaluator for generalized
// comparator sequences: pair (i,j) places min on line i, max on j.
func applyGeneralized(n int, pairs [][2]int, v bitvec.Vec) bitvec.Vec {
	bits := v.Bits
	for _, p := range pairs {
		i, j := uint(p[0]), uint(p[1])
		lo := (bits >> i) & (bits >> j) & 1
		hi := ((bits >> i) | (bits >> j)) & 1
		bits = bits&^(1<<i|1<<j) | lo<<i | hi<<j
	}
	return bitvec.Vec{N: n, Bits: bits}
}

func sameFunction(t *testing.T, a, b *network.Network) {
	t.Helper()
	if a.N != b.N {
		t.Fatalf("line counts differ: %d vs %d", a.N, b.N)
	}
	for x := uint64(0); x < uint64(bitvec.Universe(a.N)); x++ {
		in := bitvec.New(a.N, x)
		if got, want := b.ApplyVec(in), a.ApplyVec(in); got != want {
			t.Fatalf("outputs differ on %s: %s vs %s", in, got, want)
		}
	}
}

func TestNormalizePreservesBehavior(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(8)
		w := network.Random(n, rng.Intn(20), rng)
		sameFunction(t, w, Normalize(w))
	}
}

func TestNormalizeFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		w := network.Random(2+rng.Intn(10), rng.Intn(24), rng)
		once := Normalize(w)
		twice := Normalize(once)
		if once.Format() != twice.Format() {
			t.Fatalf("not a fixpoint:\n once: %s\ntwice: %s", once.Format(), twice.Format())
		}
	}
}

// TestDigestStableAcrossLayerReordering is the satellite contract:
// shuffling comparators WITHIN a layer never changes the digest.
func TestDigestStableAcrossLayerReordering(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(8)
		w := network.Random(n, 4+rng.Intn(20), rng)
		want := DigestString(w)
		layers := w.Layers()
		for shuffle := 0; shuffle < 5; shuffle++ {
			v := network.New(n)
			for _, layer := range layers {
				layer = append([]network.Comparator(nil), layer...)
				rng.Shuffle(len(layer), func(i, j int) { layer[i], layer[j] = layer[j], layer[i] })
				v.Add(layer...)
			}
			if got := DigestString(v); got != want {
				t.Fatalf("digest changed under within-layer shuffle:\n  %s -> %s\n  %s -> %s",
					w.Format(), want, v.Format(), got)
			}
			sameFunction(t, w, v)
		}
	}
}

func TestDigestDistinguishesNetworks(t *testing.T) {
	a := network.MustParse("n=4: [1,3][2,4][1,2][3,4]")
	b := network.MustParse("n=4: [1,3][2,4][1,2]")
	c := network.MustParse("n=5: [1,3][2,4][1,2][3,4]")
	if DigestString(a) == DigestString(b) {
		t.Error("digest ignores a dropped comparator")
	}
	if DigestString(a) == DigestString(c) {
		t.Error("digest ignores the line count")
	}
	if len(DigestString(a)) != 64 {
		t.Errorf("digest hex length %d, want 64", len(DigestString(a)))
	}
}

func TestUntangleStandardInputIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 100; trial++ {
		w := network.Random(2+rng.Intn(8), rng.Intn(16), rng)
		pairs := make([][2]int, len(w.Comps))
		for i, c := range w.Comps {
			pairs[i] = [2]int{c.A, c.B}
		}
		s, r, err := Untangle(w.N, pairs)
		if err != nil {
			t.Fatal(err)
		}
		if !IsIdentity(r) {
			t.Fatalf("standard network untangled to relabeling %v", r)
		}
		if s.Format() != w.Format() {
			t.Fatalf("standard network rewritten: %s vs %s", s.Format(), w.Format())
		}
	}
}

// TestUntangleInvariant checks G(x)[l] == S(x)[r[l]] on random
// generalized circuits over the full binary universe.
func TestUntangleInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(7)
		pairs := make([][2]int, rng.Intn(14))
		for i := range pairs {
			a := rng.Intn(n)
			b := rng.Intn(n - 1)
			if b >= a {
				b++
			}
			pairs[i] = [2]int{a, b}
		}
		s, r, err := Untangle(n, pairs)
		if err != nil {
			t.Fatal(err)
		}
		for x := uint64(0); x < uint64(bitvec.Universe(n)); x++ {
			in := bitvec.New(n, x)
			g := applyGeneralized(n, pairs, in)
			sv := s.ApplyVec(in)
			for l := 0; l < n; l++ {
				if g.Bits>>uint(l)&1 != sv.Bits>>uint(r[l])&1 {
					t.Fatalf("invariant broken: n=%d pairs=%v r=%v input=%s: G=%s S=%s",
						n, pairs, r, in, g, sv)
				}
			}
		}
	}
}

func TestUntangleRejectsBadPairs(t *testing.T) {
	for _, pairs := range [][][2]int{
		{{0, 0}},
		{{-1, 1}},
		{{0, 4}},
		{{4, 0}},
	} {
		if _, _, err := Untangle(4, pairs); err == nil {
			t.Errorf("Untangle(4, %v) accepted an invalid pair", pairs)
		}
	}
}

// TestUntangledSorterStaysSorter: a tangled writing of a sorter
// untangles to a sorter with the identity relabeling.
func TestUntangledSorterStaysSorter(t *testing.T) {
	// Figure 1's 4-line sorter, written with every comparator flipped
	// max-on-top: (3,1)(4,2)(2,1)(4,3)(3,2) is the reverse-sorter; its
	// untangling must relabel and the residual must NOT be identity.
	tangled := [][2]int{{2, 0}, {3, 1}, {1, 0}, {3, 2}, {2, 1}}
	s, r, err := Untangle(4, tangled)
	if err != nil {
		t.Fatal(err)
	}
	if IsIdentity(r) {
		t.Fatal("a max-on-top circuit cannot be equivalent to a standard network")
	}
	// The invariant still makes S a sorter up to the fixed relabeling:
	// G reverse-sorts, so S(x)[r[l]] descending in l means S sorts.
	for x := uint64(0); x < uint64(bitvec.Universe(4)); x++ {
		if !s.ApplyVec(bitvec.New(4, x)).IsSorted() {
			t.Fatalf("untangled reverse-sorter does not sort %s", bitvec.New(4, x))
		}
	}
}
