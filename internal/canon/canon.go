// Package canon computes a canonical form and a stable digest for
// comparator networks, so that structurally equivalent networks — the
// same circuit written down differently — share one identity. The
// serving layer (internal/serve) keys its result cache on this digest:
// two requests that differ only in presentation hit the same entry.
//
// Two sources of presentational freedom are normalized away:
//
//   - Ordering within a layer. Comparators on disjoint lines commute,
//     so any interleaving of a parallel layer computes the same
//     function. Normalize recomputes the greedy layer schedule (the
//     one Depth/Layers and the compiled engine use) and sorts each
//     layer's comparators by line, which is a fixpoint: normalizing a
//     normalized network changes nothing.
//   - Orientation, for generalized inputs. A "tangled" network writes
//     comparators with the max output on the top wire. Untangle
//     relabels lanes forward through the circuit (the classical
//     Floyd–Knuth standardization) so every comparator is standard;
//     the residual output permutation it reports is the exact
//     correction term, and is the identity precisely when the tangled
//     writing computes the same function as its standard form.
//
// Both transforms preserve the computed function exactly (Untangle up
// to its reported output relabeling), so a verdict computed for the
// canonical form is byte-for-byte the verdict of the submitted
// network — the property that makes digest-keyed caching sound.
package canon

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"

	"sortnets/internal/network"
)

// Normalize returns the canonical presentation of a standard network:
// comparators are grouped into their greedy data-independent layers
// (exactly the schedule network.Layers computes) and sorted by
// (A, B) within each layer. The result computes the same function as
// w on every input — comparators within a layer touch disjoint lines,
// so they commute — and Normalize is a fixpoint: applying it twice
// yields the same comparator sequence. w is not modified.
func Normalize(w *network.Network) *network.Network {
	out := network.New(w.N)
	for _, layer := range w.Layers() {
		layer = append([]network.Comparator(nil), layer...)
		sort.Slice(layer, func(i, j int) bool {
			if layer[i].A != layer[j].A {
				return layer[i].A < layer[j].A
			}
			return layer[i].B < layer[j].B
		})
		out.Add(layer...)
	}
	return out
}

// Untangle standardizes a generalized comparator sequence on n lines.
// Each pair (i, j) is a comparator that places the MIN on line i and
// the MAX on line j — standard when i < j, tangled when i > j. The
// relabeling sweep keeps a lane map r (initially the identity): a
// tangled comparator is emitted in standard orientation and the two
// lanes swap names for everything downstream.
//
// The returned network S and permutation r satisfy, for every input
// x and every line l:
//
//	G(x)[l] == S(x)[r[l]]
//
// where G is the submitted generalized circuit. When r is the
// identity, G and S compute the same function and S (after Normalize)
// can stand in for G everywhere. When r is not the identity, G is not
// equivalent to any standard network — in particular it cannot be a
// sorter, since a standard network fixes sorted inputs and forces the
// residual permutation of any sorter to be the identity.
//
// Untangle returns an error if any pair references a line outside
// [0, n) or touches a line twice (i == j).
func Untangle(n int, pairs [][2]int) (*network.Network, []int, error) {
	r := make([]int, n)
	for i := range r {
		r[i] = i
	}
	s := network.New(n)
	for idx, p := range pairs {
		i, j := p[0], p[1]
		if i < 0 || j < 0 || i >= n || j >= n || i == j {
			return nil, nil, fmt.Errorf("canon: comparator %d (%d,%d) invalid on %d lines", idx, i, j, n)
		}
		a, b := r[i], r[j]
		if a < b {
			s.AddPair(a, b)
		} else {
			// Tangled: emit the standard orientation and swap the lane
			// names so downstream comparators (and the outputs) follow.
			s.AddPair(b, a)
			r[i], r[j] = b, a
		}
	}
	return s, r, nil
}

// IsIdentity reports whether a lane relabeling is the identity.
func IsIdentity(r []int) bool {
	for i, v := range r {
		if i != v {
			return false
		}
	}
	return true
}

// digestVersion tags the digest format; bump it if the canonical
// form or the encoding ever changes, so stale cache keys can never
// alias fresh ones.
const digestVersion = "sortnets-canon-v1"

// Digest returns a stable SHA-256 digest of the network's canonical
// form: any two standard networks whose normalized comparator
// sequences agree share a digest, regardless of how their parallel
// layers were interleaved at submission.
func Digest(w *network.Network) [sha256.Size]byte {
	return digestNormalized(Normalize(w))
}

// Canonicalize returns the canonical form and its hex digest in one
// pass — the serving layer's entry point, which needs both and should
// not pay for normalizing twice.
func Canonicalize(w *network.Network) (*network.Network, string) {
	c := Normalize(w)
	d := digestNormalized(c)
	return c, hex.EncodeToString(d[:])
}

// digestNormalized hashes an already-canonical network.
func digestNormalized(c *network.Network) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte(digestVersion))
	var buf [binary.MaxVarintLen64]byte
	put := func(v int) {
		h.Write(buf[:binary.PutUvarint(buf[:], uint64(v))])
	}
	put(c.N)
	put(len(c.Comps))
	for _, cmp := range c.Comps {
		put(cmp.A)
		put(cmp.B)
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// DigestString is Digest rendered as lowercase hex — the cache-key
// form used by the serving layer.
func DigestString(w *network.Network) string {
	d := Digest(w)
	return hex.EncodeToString(d[:])
}
