package tablefmt

import (
	"strings"
	"testing"
)

func TestRenderAligned(t *testing.T) {
	tb := New("n", "bound").Row(4, 11).Row(10, 1013)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	w := len(lines[0])
	for _, l := range lines {
		if len(l) != w {
			t.Errorf("ragged table:\n%s", out)
		}
	}
	if !strings.Contains(lines[0], "bound") || !strings.Contains(lines[3], "1013") {
		t.Errorf("content missing:\n%s", out)
	}
}

func TestRowPadding(t *testing.T) {
	tb := New("a", "b", "c").Row(1)
	out := tb.String()
	if !strings.Contains(out, "| 1 |") {
		t.Errorf("short row mishandled:\n%s", out)
	}
}

func TestRowOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New("a").Row(1, 2)
}

func TestMarkdownSeparator(t *testing.T) {
	out := New("x").Row("y").String()
	if !strings.Contains(out, "| -") {
		t.Errorf("missing separator row:\n%s", out)
	}
}
