// Package tablefmt renders aligned ASCII tables for the experiment
// harness, which reports every reproduced bound as a paper-vs-measured
// row. Output is plain text that doubles as GitHub-flavoured markdown.
package tablefmt

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows under a fixed header.
type Table struct {
	header []string
	rows   [][]string
}

// New creates a table with the given column headers.
func New(header ...string) *Table {
	return &Table{header: header}
}

// Row appends a row; values are rendered with %v. Short rows are
// padded, long rows panic (a harness bug, not a data condition).
func (t *Table) Row(values ...interface{}) *Table {
	if len(values) > len(t.header) {
		panic(fmt.Sprintf("tablefmt: row has %d cells, header has %d", len(values), len(t.header)))
	}
	row := make([]string, len(t.header))
	for i, v := range values {
		row[i] = fmt.Sprint(v)
	}
	t.rows = append(t.rows, row)
	return t
}

// Render writes the table in markdown-compatible form.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return "| " + strings.Join(parts, " | ") + " |\n"
	}
	if _, err := io.WriteString(w, line(t.header)); err != nil {
		return err
	}
	seps := make([]string, len(t.header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	if _, err := io.WriteString(w, line(seps)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := io.WriteString(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// String renders to a string (for tests and logs).
func (t *Table) String() string {
	var sb strings.Builder
	if err := t.Render(&sb); err != nil {
		return "" // strings.Builder never errors; satisfy the linter
	}
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
