package perm

import (
	"math/rand"
	"testing"
)

func TestRankUnrankRoundTrip(t *testing.T) {
	for n := 0; n <= 6; n++ {
		it := AllLex(n)
		var rank int64
		for {
			p, ok := it.Next()
			if !ok {
				break
			}
			if got := p.Rank(); got != rank {
				t.Fatalf("n=%d: rank of %s = %d, want %d", n, p, got, rank)
			}
			if got := Unrank(n, rank); !got.Equal(p) {
				t.Fatalf("n=%d: unrank(%d) = %s, want %s", n, rank, got, p)
			}
			rank++
		}
		if want := factorials(n)[n]; rank != want {
			t.Errorf("n=%d: enumerated %d perms, want %d", n, rank, want)
		}
	}
}

func TestRankExtremes(t *testing.T) {
	n := 7
	if Identity(n).Rank() != 0 {
		t.Error("identity should have rank 0")
	}
	if got, want := Reverse(n).Rank(), factorials(n)[n]-1; got != want {
		t.Errorf("reverse rank = %d, want %d", got, want)
	}
}

func TestLexOrderIsIncreasing(t *testing.T) {
	it := AllLex(5)
	prev, _ := it.Next()
	for {
		p, ok := it.Next()
		if !ok {
			break
		}
		if !lexLess(prev, p) {
			t.Fatalf("%s not < %s", prev, p)
		}
		prev = p
	}
}

func lexLess(a, b P) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func TestHeapEnumeratesAll(t *testing.T) {
	for n := 0; n <= 7; n++ {
		seen := make(map[string]bool)
		it := AllHeap(n)
		for {
			p, ok := it.Next()
			if !ok {
				break
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("n=%d: invalid perm %s: %v", n, p, err)
			}
			key := p.String()
			if seen[key] {
				t.Fatalf("n=%d: duplicate %s", n, key)
			}
			seen[key] = true
		}
		if want := int(factorials(n)[n]); len(seen) != want {
			t.Errorf("n=%d: heap enumerated %d, want %d", n, len(seen), want)
		}
	}
}

func TestHeapSwapsOnePair(t *testing.T) {
	it := AllHeap(6)
	prev, _ := it.Next()
	for {
		p, ok := it.Next()
		if !ok {
			break
		}
		diff := 0
		for i := range p {
			if p[i] != prev[i] {
				diff++
			}
		}
		if diff != 2 {
			t.Fatalf("consecutive Heap perms differ in %d positions: %s -> %s", diff, prev, p)
		}
		prev = p
	}
}

func TestSlicePermsAndCount(t *testing.T) {
	ps := []P{Identity(3), Reverse(3)}
	if Count(SlicePerms(ps)) != 2 {
		t.Error("SlicePerms count wrong")
	}
	got := Collect(SlicePerms(ps))
	if len(got) != 2 || !got[0].Equal(ps[0]) || !got[1].Equal(ps[1]) {
		t.Error("Collect mismatch")
	}
}

func TestRandomSample(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ps := RandomSample(10, 25, rng)
	if len(ps) != 25 {
		t.Fatalf("sample size %d", len(ps))
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestUnrankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range rank")
		}
	}()
	Unrank(3, 6)
}
