package perm

import "testing"

// FuzzParse: the permutation parser must never panic and must only
// accept genuine permutations, which then round-trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"(4 1 3 2)",
		"4 1 3 2",
		"4,1,3,2",
		"(1)",
		"()",
		"(1 1)",
		"(0 1)",
		"(1 3)",
		"(a)",
		"( 2 1 ",
		"(-1 2)",
		"(999999999999999999999 1)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Parse(%q) accepted invalid permutation: %v", s, err)
		}
		again, err := Parse(p.String())
		if err != nil || !again.Equal(p) {
			t.Fatalf("round trip failed for %q -> %s", s, p)
		}
	})
}
