package perm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sortnets/internal/bitvec"
)

func TestIdentityReverse(t *testing.T) {
	if got := Identity(4).String(); got != "(1 2 3 4)" {
		t.Errorf("Identity(4) = %s", got)
	}
	if got := Reverse(4).String(); got != "(4 3 2 1)" {
		t.Errorf("Reverse(4) = %s", got)
	}
	if !Identity(5).IsSorted() {
		t.Error("identity must be sorted")
	}
	if Reverse(5).IsSorted() {
		t.Error("reverse must not be sorted")
	}
	if !Identity(1).IsSorted() || !Identity(0).IsSorted() {
		t.Error("trivial identities must be sorted")
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"(4 1 3 2)", "(4 1 3 2)"},
		{"4 1 3 2", "(4 1 3 2)"},
		{"4,1,3,2", "(4 1 3 2)"},
		{" ( 2 1 ) ", "(2 1)"},
	}
	for _, c := range cases {
		p, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if p.String() != c.want {
			t.Errorf("Parse(%q) = %s, want %s", c.in, p, c.want)
		}
	}
	for _, bad := range []string{"(1 1)", "(0 1)", "(1 3)", "(a b)"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := MustParse("(3 1 2)").Validate(); err != nil {
		t.Error(err)
	}
	if err := (P{1, 2, 2}).Validate(); err == nil {
		t.Error("duplicate should fail")
	}
	if err := (P{1, 4, 2}).Validate(); err == nil {
		t.Error("out of range should fail")
	}
}

func TestInverse(t *testing.T) {
	p := MustParse("(4 1 3 2)")
	inv := p.Inverse()
	if inv.String() != "(2 4 3 1)" {
		t.Errorf("inverse = %s", inv)
	}
	if !p.Compose(inv).Equal(Identity(4)) && !inv.Compose(p).Equal(Identity(4)) {
		t.Error("p∘p⁻¹ should be identity")
	}
}

func TestInverseInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Random(9, rng)
		return p.Inverse().Inverse().Equal(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComposeAssociativity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := Random(7, rng), Random(7, rng), Random(7, rng)
		return a.Compose(b).Compose(c).Equal(a.Compose(b.Compose(c)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThresholdPaperExample(t *testing.T) {
	// Paper, Section 2: "the cover for (3 1 4 2) is 1111, 1011, 1010,
	// 0010 and 0000."
	p := MustParse("(3 1 4 2)")
	want := map[int]string{0: "0000", 1: "0010", 2: "1010", 3: "1011", 4: "1111"}
	for t_, w := range want {
		if got := p.Threshold(t_).String(); got != w {
			t.Errorf("threshold t=%d: got %s, want %s", t_, got, w)
		}
	}
	cover := p.Cover()
	if len(cover) != 5 {
		t.Fatalf("cover size %d", len(cover))
	}
}

func TestCoverIsMaximalChain(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		p := Random(n, rng)
		cover := p.Cover()
		for t_ := 0; t_ < len(cover); t_++ {
			if cover[t_].Ones() != t_ {
				t.Fatalf("cover[%d] of %s has %d ones", t_, p, cover[t_].Ones())
			}
			if t_ > 0 && !bitvec.Leq(cover[t_-1], cover[t_]) {
				t.Fatalf("cover of %s is not a chain at t=%d", p, t_)
			}
		}
	}
}

func TestCovers(t *testing.T) {
	p := MustParse("(3 1 4 2)")
	for _, s := range []string{"0000", "0010", "1010", "1011", "1111"} {
		if !p.Covers(bitvec.MustFromString(s)) {
			t.Errorf("%s should cover %s", p, s)
		}
	}
	for _, s := range []string{"0001", "1100", "0110", "0111"} {
		if p.Covers(bitvec.MustFromString(s)) {
			t.Errorf("%s should not cover %s", p, s)
		}
	}
	if p.Covers(bitvec.MustFromString("000")) {
		t.Error("length mismatch should not cover")
	}
}

func TestIdentityCoversExactlySortedStrings(t *testing.T) {
	// The identity's cover is exactly the n+1 sorted strings — the
	// reason it is excluded from every optimal test set.
	for n := 1; n <= 10; n++ {
		for _, v := range Identity(n).Cover() {
			if !v.IsSorted() {
				t.Errorf("n=%d: identity covers non-sorted %s", n, v)
			}
		}
	}
}

func TestCoverSetUnion(t *testing.T) {
	ps := []P{MustParse("(1 2 3)"), MustParse("(3 2 1)")}
	set := CoverSet(ps)
	// identity covers 000,001,011,111; reverse covers 000,100,110,111.
	if len(set) != 6 {
		t.Errorf("cover set size %d, want 6", len(set))
	}
}

func TestNoPermutationCoversTwoMiddleStrings(t *testing.T) {
	// The heart of Theorem 2.2's lower bound: distinct weight-(n/2)
	// strings can never be covered by the same permutation (each
	// permutation has exactly one threshold string per weight).
	rng := rand.New(rand.NewSource(3))
	n := 8
	for trial := 0; trial < 500; trial++ {
		p := Random(n, rng)
		count := 0
		it := bitvec.FixedWeight(n, n/2)
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			if p.Covers(v) {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("%s covers %d weight-4 strings, want exactly 1", p, count)
		}
	}
}
