package perm

import (
	"fmt"
	"math/rand"
)

// This file provides rank/unrank in lexicographic order (Lehmer codes)
// and streaming enumeration of all n! permutations. The exhaustive
// permutation sweep is the paper's strawman baseline ("test all n!
// permutations") that the minimal test sets beat; the experiment
// harness uses it as ground truth for small n.

// MaxFactorialN is the largest n for which n! fits an int64 rank.
const MaxFactorialN = 20

// Rank returns the 0-based lexicographic rank of p among all
// permutations of its length. Panics if len(p) > MaxFactorialN.
func (p P) Rank() int64 {
	n := len(p)
	if n > MaxFactorialN {
		panic(fmt.Sprintf("perm: rank of length %d exceeds int64", n))
	}
	// Lehmer code via counting smaller elements to the right.
	var rank int64
	fact := factorials(n)
	for i := 0; i < n; i++ {
		smaller := 0
		for j := i + 1; j < n; j++ {
			if p[j] < p[i] {
				smaller++
			}
		}
		rank += int64(smaller) * fact[n-1-i]
	}
	return rank
}

// Unrank returns the permutation of length n with the given 0-based
// lexicographic rank.
func Unrank(n int, rank int64) P {
	if n > MaxFactorialN {
		panic(fmt.Sprintf("perm: unrank of length %d exceeds int64", n))
	}
	fact := factorials(n)
	if rank < 0 || rank >= fact[n] {
		panic(fmt.Sprintf("perm: rank %d out of range for n=%d", rank, n))
	}
	avail := make([]int, n)
	for i := range avail {
		avail[i] = i + 1
	}
	p := make(P, 0, n)
	for i := n - 1; i >= 0; i-- {
		idx := rank / fact[i]
		rank %= fact[i]
		p = append(p, avail[idx])
		avail = append(avail[:idx], avail[idx+1:]...)
	}
	return p
}

func factorials(n int) []int64 {
	f := make([]int64, n+1)
	f[0] = 1
	for i := 1; i <= n; i++ {
		f[i] = f[i-1] * int64(i)
	}
	return f
}

// Iterator yields a stream of permutations.
type Iterator interface {
	Next() (P, bool)
}

// AllLex enumerates all n! permutations in lexicographic order.
func AllLex(n int) Iterator {
	return &lexIter{cur: Identity(n), fresh: true}
}

type lexIter struct {
	cur   P
	fresh bool
	done  bool
}

func (it *lexIter) Next() (P, bool) {
	if it.done {
		return nil, false
	}
	if it.fresh {
		it.fresh = false
		return it.cur.Clone(), true
	}
	if !nextLex(it.cur) {
		it.done = true
		return nil, false
	}
	return it.cur.Clone(), true
}

// nextLex advances p to its lexicographic successor in place, returning
// false when p was the last (descending) permutation.
func nextLex(p P) bool {
	n := len(p)
	i := n - 2
	for i >= 0 && p[i] >= p[i+1] {
		i--
	}
	if i < 0 {
		return false
	}
	j := n - 1
	for p[j] <= p[i] {
		j--
	}
	p[i], p[j] = p[j], p[i]
	for l, r := i+1, n-1; l < r; l, r = l+1, r-1 {
		p[l], p[r] = p[r], p[l]
	}
	return true
}

// AllHeap enumerates all n! permutations by Heap's algorithm, which
// swaps exactly one pair between successive outputs — the cheapest
// full-permutation sweep for the exhaustive baselines.
func AllHeap(n int) Iterator {
	return &heapIter{p: Identity(n), c: make([]int, n), fresh: true}
}

type heapIter struct {
	p     P
	c     []int
	i     int
	fresh bool
	done  bool
}

func (it *heapIter) Next() (P, bool) {
	if it.done {
		return nil, false
	}
	if it.fresh {
		it.fresh = false
		return it.p.Clone(), true
	}
	n := len(it.p)
	for it.i < n {
		if it.c[it.i] < it.i {
			if it.i%2 == 0 {
				it.p[0], it.p[it.i] = it.p[it.i], it.p[0]
			} else {
				it.p[it.c[it.i]], it.p[it.i] = it.p[it.i], it.p[it.c[it.i]]
			}
			it.c[it.i]++
			it.i = 0
			return it.p.Clone(), true
		}
		it.c[it.i] = 0
		it.i++
	}
	it.done = true
	return nil, false
}

// SlicePerms adapts a materialized family into an Iterator.
func SlicePerms(ps []P) Iterator { return &sliceIter{ps: ps} }

type sliceIter struct {
	ps []P
	i  int
}

func (it *sliceIter) Next() (P, bool) {
	if it.i >= len(it.ps) {
		return nil, false
	}
	p := it.ps[it.i]
	it.i++
	return p, true
}

// Count drains an iterator and returns the number of permutations.
func Count(it Iterator) int {
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			return n
		}
		n++
	}
}

// Collect drains an iterator into a slice.
func Collect(it Iterator) []P {
	var out []P
	for {
		p, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, p)
	}
}

// RandomSample returns m distinct-ish random permutations (duplicates
// possible for tiny n where m exceeds n!), used by the fault-coverage
// experiment as the "random test set" baseline.
func RandomSample(n, m int, rng *rand.Rand) []P {
	out := make([]P, m)
	for i := range out {
		out[i] = Random(n, rng)
	}
	return out
}
