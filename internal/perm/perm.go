// Package perm implements permutations of (1 2 … n) as network inputs,
// together with the *cover* machinery that links permutation test sets
// to 0/1 test sets in Chung & Ravikumar's paper.
//
// A permutation π is stored as a slice p of length n with p[i] = π(i+1):
// p[i] is the value carried by line i (0-based lines, 1-based values,
// matching the paper's "(4 1 3 2)" notation read top line first).
//
// The cover of π (Section 2 of the paper) is the chain of n+1 binary
// strings obtained by replacing the t largest values by 1 and the rest
// by 0, for t = 0..n. A set P of permutations can only be a test set for
// a property if the union of its covers is a 0/1 test set for that
// property; Floyd's lemma (quoted in the paper) makes the two views
// exchangeable. Package chains constructs minimal families of
// permutations whose covers blanket the required strings.
package perm

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"sortnets/internal/bitvec"
)

// P is a permutation of (1 2 … n); P[i] is the value on line i.
type P []int

// Identity returns (1 2 … n), the only permutation every network maps
// to sorted order trivially; it is the one permutation *excluded* from
// the optimal test sets.
func Identity(n int) P {
	p := make(P, n)
	for i := range p {
		p[i] = i + 1
	}
	return p
}

// Reverse returns (n n−1 … 2 1), the single test that decides
// sorter-ness for height-1 (primitive) networks by de Bruijn's theorem
// quoted in Section 3 of the paper.
func Reverse(n int) P {
	p := make(P, n)
	for i := range p {
		p[i] = n - i
	}
	return p
}

// FromValues validates and copies a value sequence into a P.
func FromValues(vals []int) (P, error) {
	p := make(P, len(vals))
	copy(p, vals)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Parse reads a permutation in the paper's notation, e.g. "(4 1 3 2)"
// or "4 1 3 2" (whitespace- or comma-separated, optional parens).
func Parse(s string) (P, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "(")
	s = strings.TrimSuffix(s, ")")
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == ' ' || r == ',' || r == '\t' })
	vals := make([]int, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("perm: bad element %q: %v", f, err)
		}
		vals = append(vals, v)
	}
	return FromValues(vals)
}

// MustParse is Parse panicking on error, for tests and fixtures.
func MustParse(s string) P {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Validate reports whether p is a permutation of 1..n.
func (p P) Validate() error {
	n := len(p)
	seen := make([]bool, n+1)
	for i, v := range p {
		if v < 1 || v > n {
			return fmt.Errorf("perm: value %d at line %d out of range 1..%d", v, i, n)
		}
		if seen[v] {
			return fmt.Errorf("perm: duplicate value %d", v)
		}
		seen[v] = true
	}
	return nil
}

// String renders in the paper's notation: "(4 1 3 2)".
func (p P) String() string {
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = strconv.Itoa(v)
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// Clone returns an independent copy.
func (p P) Clone() P {
	q := make(P, len(p))
	copy(q, p)
	return q
}

// Equal reports element-wise equality.
func (p P) Equal(q P) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// IsSorted reports whether p is the identity (nondecreasing).
func (p P) IsSorted() bool {
	return sort.IntsAreSorted(p)
}

// Inverse returns π⁻¹: if p carries value v on line i, the inverse
// carries value i+1 on line v−1. The paper's selector test set takes the
// inverses of Knuth's B(n,k) permutations.
func (p P) Inverse() P {
	q := make(P, len(p))
	for i, v := range p {
		q[v-1] = i + 1
	}
	return q
}

// Compose returns the permutation r with r[i] = p[q[i]−1], i.e. "apply
// q's line routing, then read values from p".
func (p P) Compose(q P) P {
	if len(p) != len(q) {
		panic(fmt.Sprintf("perm: compose length mismatch %d vs %d", len(p), len(q)))
	}
	r := make(P, len(p))
	for i := range r {
		r[i] = p[q[i]-1]
	}
	return r
}

// Threshold returns the binary string that replaces the t largest
// values of p by 1 and the others by 0 — one element of the cover.
// Example from the paper: for (3 1 4 2), t=2 gives 1010.
func (p P) Threshold(t int) bitvec.Vec {
	if t < 0 || t > len(p) {
		panic(fmt.Sprintf("perm: threshold %d out of range 0..%d", t, len(p)))
	}
	var w uint64
	cut := len(p) - t // values > cut become 1
	for i, v := range p {
		if v > cut {
			w |= 1 << uint(i)
		}
	}
	return bitvec.New(len(p), w)
}

// Cover returns the full covering set of p: the n+1 threshold strings,
// t = 0..n. Consecutive strings differ in one position, so the cover is
// a maximal chain in the Boolean lattice ordered by bitvec.Leq.
func (p P) Cover() []bitvec.Vec {
	out := make([]bitvec.Vec, len(p)+1)
	for t := 0; t <= len(p); t++ {
		out[t] = p.Threshold(t)
	}
	return out
}

// Covers reports whether σ belongs to the cover of p, i.e. whether the
// 1-positions of σ are exactly the positions of the |σ|₁ largest values.
func (p P) Covers(sigma bitvec.Vec) bool {
	if sigma.N != len(p) {
		return false
	}
	return p.Threshold(sigma.Ones()) == sigma
}

// CoverSet returns the union of covers of a family of permutations,
// deduplicated, the object compared against 0/1 test sets in the paper.
func CoverSet(ps []P) map[bitvec.Vec]bool {
	set := make(map[bitvec.Vec]bool)
	for _, p := range ps {
		for _, v := range p.Cover() {
			set[v] = true
		}
	}
	return set
}

// Random returns a uniform random permutation drawn from rng.
func Random(n int, rng *rand.Rand) P {
	p := Identity(n)
	rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
