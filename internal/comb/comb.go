// Package comb supplies the exact combinatorics behind the paper's
// bounds: binomial coefficients, factorials, and the closed-form sizes
// of the minimal test sets of Theorems 2.2, 2.4 and 2.5 of Chung &
// Ravikumar. Small arguments use overflow-checked int64 arithmetic;
// arbitrary arguments use math/big, so the experiment harness can print
// bound tables far beyond what is enumerable.
package comb

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"math/bits"
)

// ErrOverflow is returned by the int64 variants when the exact value
// does not fit in an int64.
var ErrOverflow = errors.New("comb: value overflows int64")

// Binomial returns C(n,k) as an int64, or ErrOverflow if the exact
// value does not fit. Out-of-range k yields 0.
func Binomial(n, k int) (int64, error) {
	if k < 0 || k > n || n < 0 {
		return 0, nil
	}
	if k > n-k {
		k = n - k
	}
	var r uint64 = 1
	for i := 0; i < k; i++ {
		// r <- r * (n-i) / (i+1), exact at every step because the
		// running product of i+1 consecutive integers is divisible
		// by (i+1)!. The intermediate product is kept in 128 bits so
		// values near the int64 limit (e.g. C(62,31)) stay exact.
		num := uint64(n - i)
		den := uint64(i + 1)
		hi, lo := bits.Mul64(r, num)
		if hi >= den {
			return 0, ErrOverflow
		}
		q, _ := bits.Div64(hi, lo, den)
		if q > math.MaxInt64 {
			return 0, ErrOverflow
		}
		r = q
	}
	return int64(r), nil
}

// MustBinomial is Binomial panicking on overflow, for callers that have
// already bounded n (the enumerable regime, n ≤ 62).
func MustBinomial(n, k int) int64 {
	v, err := Binomial(n, k)
	if err != nil {
		panic(fmt.Sprintf("comb: C(%d,%d): %v", n, k, err))
	}
	return v
}

// BigBinomial returns C(n,k) exactly as a big.Int.
func BigBinomial(n, k int) *big.Int {
	if k < 0 || k > n || n < 0 {
		return big.NewInt(0)
	}
	return new(big.Int).Binomial(int64(n), int64(k))
}

// CentralBinomial returns C(n, ⌊n/2⌋), the size (plus one) of the
// minimal permutation test set for sorting (Theorem 2.2(ii)).
func CentralBinomial(n int) *big.Int { return BigBinomial(n, n/2) }

// Factorial returns n! as a big.Int; the exhaustive-permutation baseline
// the paper's test sets beat.
func Factorial(n int) *big.Int {
	return new(big.Int).MulRange(1, int64(n))
}

// Pow2 returns 2^n as a big.Int.
func Pow2(n int) *big.Int {
	return new(big.Int).Lsh(big.NewInt(1), uint(n))
}

// SumBinomials returns Σ_{i=0..k} C(n,i) as a big.Int. Out-of-range k is
// clamped to [−1, n] (k = −1 gives 0).
func SumBinomials(n, k int) *big.Int {
	if k > n {
		k = n
	}
	sum := big.NewInt(0)
	for i := 0; i <= k; i++ {
		sum.Add(sum, BigBinomial(n, i))
	}
	return sum
}

// --- Closed-form minimal test-set sizes (the paper's headline rows) ---

// SorterBinaryTestSetSize returns 2^n − n − 1, the exact size of the
// smallest 0/1 test set deciding whether an n-line network is a sorter
// (Theorem 2.2(i)).
func SorterBinaryTestSetSize(n int) *big.Int {
	s := Pow2(n)
	s.Sub(s, big.NewInt(int64(n)+1))
	return s
}

// SorterPermTestSetSize returns C(n,⌊n/2⌋) − 1, the exact size of the
// smallest permutation test set for sorting (Theorem 2.2(ii), upper
// bound by Yao's observation / Knuth ex. 6.5.1-1).
func SorterPermTestSetSize(n int) *big.Int {
	s := CentralBinomial(n)
	s.Sub(s, big.NewInt(1))
	return s
}

// SelectorBinaryTestSetSize returns Σ_{i=0..k} C(n,i) − k − 1, the exact
// size of the smallest 0/1 test set for the (k,n)-selector property
// (Theorem 2.4(i)). The subtracted k+1 counts the sorted strings with at
// most k zeroes, which can never witness a failure.
func SelectorBinaryTestSetSize(n, k int) *big.Int {
	if k > n {
		k = n
	}
	s := SumBinomials(n, k)
	s.Sub(s, big.NewInt(int64(k)+1))
	return s
}

// SelectorPermTestSetSize returns C(n, min(⌊n/2⌋, k)) − 1, the exact
// size of the smallest permutation test set for the (k,n)-selector
// property (Theorem 2.4(ii)).
func SelectorPermTestSetSize(n, k int) *big.Int {
	m := n / 2
	if k < m {
		m = k
	}
	s := BigBinomial(n, m)
	s.Sub(s, big.NewInt(1))
	return s
}

// MergerBinaryTestSetSize returns n²/4, the exact size of the smallest
// 0/1 test set for the (n/2,n/2)-merger property (Theorem 2.5(i)).
// n must be even.
func MergerBinaryTestSetSize(n int) *big.Int {
	if n%2 != 0 {
		panic(fmt.Sprintf("comb: merger defined for even n, got %d", n))
	}
	h := int64(n / 2)
	return big.NewInt(h * h)
}

// MergerPermTestSetSize returns n/2, the exact size of the smallest
// permutation test set for merging (Theorem 2.5(ii)). n must be even.
func MergerPermTestSetSize(n int) *big.Int {
	if n%2 != 0 {
		panic(fmt.Sprintf("comb: merger defined for even n, got %d", n))
	}
	return big.NewInt(int64(n / 2))
}

// --- Asymptotics (Yao's comparison, Section 2) ---

// CentralBinomialEstimate returns the Stirling estimate
// 2^n · √(2/(πn)) of C(n,⌊n/2⌋), the approximation the paper quotes as
// "(n choose ⌊n/2⌋) ~ 2^(n+1)/√(2πn)".
func CentralBinomialEstimate(n int) float64 {
	if n == 0 {
		return 1
	}
	return math.Exp2(float64(n)) * math.Sqrt(2/(math.Pi*float64(n)))
}

// PermToBinaryRatio returns the ratio of the permutation test-set size
// to the 0/1 test-set size for sorting, as a float. It tends to 0 like
// √(2/(πn)): permutations are strictly cheaper tests for n ≥ 5.
func PermToBinaryRatio(n int) float64 {
	num := new(big.Float).SetInt(SorterPermTestSetSize(n))
	den := new(big.Float).SetInt(SorterBinaryTestSetSize(n))
	if den.Sign() == 0 {
		return math.NaN()
	}
	r, _ := new(big.Float).Quo(num, den).Float64()
	return r
}
