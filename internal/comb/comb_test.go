package comb

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestBinomialSmall(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {4, 2, 6}, {5, 2, 10},
		{10, 5, 252}, {20, 10, 184756}, {52, 5, 2598960},
		{-1, 0, 0}, {3, -1, 0}, {3, 4, 0}, {62, 31, 465428353255261088},
	}
	for _, c := range cases {
		got, err := Binomial(c.n, c.k)
		if err != nil {
			t.Fatalf("C(%d,%d): %v", c.n, c.k, err)
		}
		if got != c.want {
			t.Errorf("C(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialOverflow(t *testing.T) {
	if _, err := Binomial(200, 100); err != ErrOverflow {
		t.Errorf("C(200,100) should overflow, got err=%v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustBinomial should panic on overflow")
		}
	}()
	MustBinomial(200, 100)
}

func TestBinomialMatchesBig(t *testing.T) {
	for n := 0; n <= 40; n++ {
		for k := 0; k <= n; k++ {
			got, err := Binomial(n, k)
			if err != nil {
				t.Fatalf("C(%d,%d) overflowed unexpectedly", n, k)
			}
			if want := BigBinomial(n, k); want.Cmp(big.NewInt(got)) != 0 {
				t.Errorf("C(%d,%d) = %d, big says %s", n, k, got, want)
			}
		}
	}
}

func TestPascalIdentityProperty(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%50) + 1
		k := int(kRaw) % (n + 1)
		lhs := BigBinomial(n, k)
		rhs := new(big.Int).Add(BigBinomial(n-1, k-1), BigBinomial(n-1, k))
		return lhs.Cmp(rhs) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSumBinomialsRowSum(t *testing.T) {
	for n := 0; n <= 30; n++ {
		if got := SumBinomials(n, n); got.Cmp(Pow2(n)) != 0 {
			t.Errorf("row sum n=%d: %s != 2^n", n, got)
		}
	}
	if SumBinomials(5, -1).Sign() != 0 {
		t.Error("SumBinomials(n,-1) should be 0")
	}
	if got := SumBinomials(5, 99); got.Cmp(Pow2(5)) != 0 {
		t.Error("SumBinomials should clamp k to n")
	}
}

func TestFactorial(t *testing.T) {
	want := []int64{1, 1, 2, 6, 24, 120, 720, 5040}
	for n, w := range want {
		if got := Factorial(n); got.Cmp(big.NewInt(w)) != 0 {
			t.Errorf("%d! = %s, want %d", n, got, w)
		}
	}
}

func TestSorterTestSetSizes(t *testing.T) {
	// Paper examples: n=3 gives 2^3-3-1 = 4 strings (Fig. 2 lists the
	// four non-sorted strings 100, 101, 010, 110).
	if got := SorterBinaryTestSetSize(3); got.Cmp(big.NewInt(4)) != 0 {
		t.Errorf("sorter binary n=3: %s, want 4", got)
	}
	if got := SorterBinaryTestSetSize(2); got.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("sorter binary n=2: %s, want 1 (just '10')", got)
	}
	// Permutation bound: C(4,2)-1 = 5, C(6,3)-1 = 19.
	if got := SorterPermTestSetSize(4); got.Cmp(big.NewInt(5)) != 0 {
		t.Errorf("sorter perm n=4: %s, want 5", got)
	}
	if got := SorterPermTestSetSize(6); got.Cmp(big.NewInt(19)) != 0 {
		t.Errorf("sorter perm n=6: %s, want 19", got)
	}
}

func TestSelectorSizesReduceToSorter(t *testing.T) {
	// With k = n the selector property is full sorting and the binary
	// bound must collapse to 2^n − n − 1.
	for n := 1; n <= 16; n++ {
		sel := SelectorBinaryTestSetSize(n, n)
		sort := SorterBinaryTestSetSize(n)
		if sel.Cmp(sort) != 0 {
			t.Errorf("n=%d: selector(k=n) %s != sorter %s", n, sel, sort)
		}
		selP := SelectorPermTestSetSize(n, n)
		sortP := SorterPermTestSetSize(n)
		if selP.Cmp(sortP) != 0 {
			t.Errorf("n=%d: perm selector(k=n) %s != sorter %s", n, selP, sortP)
		}
	}
}

func TestSelectorSizesMonotoneInK(t *testing.T) {
	for n := 2; n <= 14; n++ {
		prev := big.NewInt(-1)
		for k := 1; k <= n; k++ {
			cur := SelectorBinaryTestSetSize(n, k)
			if cur.Cmp(prev) < 0 {
				t.Errorf("n=%d k=%d: selector size decreased (%s after %s)", n, k, cur, prev)
			}
			prev = cur
		}
	}
}

func TestSelectorPermSaturates(t *testing.T) {
	// Beyond k = ⌊n/2⌋ the permutation bound stops growing (Case (ii)
	// of Theorem 2.4).
	n := 10
	sat := SelectorPermTestSetSize(n, n/2)
	for k := n / 2; k <= n; k++ {
		if got := SelectorPermTestSetSize(n, k); got.Cmp(sat) != 0 {
			t.Errorf("k=%d: %s, want saturation at %s", k, got, sat)
		}
	}
}

func TestMergerSizes(t *testing.T) {
	cases := []struct{ n, bin, perm int64 }{
		{2, 1, 1}, {4, 4, 2}, {6, 9, 3}, {8, 16, 4}, {10, 25, 5},
	}
	for _, c := range cases {
		if got := MergerBinaryTestSetSize(int(c.n)); got.Cmp(big.NewInt(c.bin)) != 0 {
			t.Errorf("merger binary n=%d: %s, want %d", c.n, got, c.bin)
		}
		if got := MergerPermTestSetSize(int(c.n)); got.Cmp(big.NewInt(c.perm)) != 0 {
			t.Errorf("merger perm n=%d: %s, want %d", c.n, got, c.perm)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("odd n should panic")
		}
	}()
	MergerBinaryTestSetSize(5)
}

func TestCentralBinomialEstimate(t *testing.T) {
	// Stirling estimate within 2% for moderate n.
	for _, n := range []int{20, 40, 60, 100} {
		exact, _ := new(big.Float).SetInt(CentralBinomial(n)).Float64()
		est := CentralBinomialEstimate(n)
		if rel := math.Abs(est-exact) / exact; rel > 0.02 {
			t.Errorf("n=%d: estimate %.4g vs exact %.4g (rel err %.3f)", n, est, exact, rel)
		}
	}
}

func TestPermToBinaryRatioShrinks(t *testing.T) {
	// Yao's observation: permutations become strictly cheaper and the
	// advantage grows with n.
	prev := math.Inf(1)
	for n := 5; n <= 24; n++ {
		r := PermToBinaryRatio(n)
		if r >= 1 {
			t.Errorf("n=%d: ratio %.3f should be < 1", n, r)
		}
		if r >= prev {
			t.Errorf("n=%d: ratio %.4f did not shrink (prev %.4f)", n, r, prev)
		}
		prev = r
	}
}

func TestPow2(t *testing.T) {
	if Pow2(0).Cmp(big.NewInt(1)) != 0 || Pow2(10).Cmp(big.NewInt(1024)) != 0 {
		t.Error("Pow2 wrong")
	}
	// Works beyond int64.
	if Pow2(100).BitLen() != 101 {
		t.Error("Pow2(100) wrong bit length")
	}
}
