// Package network implements comparator networks in the model of Chung
// & Ravikumar: a network of size n is a sequence of *standard*
// comparators [a,b] with a < b that place the smaller of the two values
// on the top line a and the larger on the bottom line b. Standard
// comparators can never unsort a sorted input, the property the paper's
// lower bounds lean on (a "nonstandard" reversed comparator is modelled
// in package faults as a hardware defect, not as a network element).
//
// Three evaluation paths are provided:
//
//   - Apply/ApplyInPlace: arbitrary integer inputs (permutations).
//   - ApplyVec: a single 0/1 input packed in a machine word; a
//     comparator exchange is two bit operations.
//   - Batch: 64 independent 0/1 inputs evaluated simultaneously, one
//     word per line, a comparator being one AND and one OR. This is the
//     workhorse of the exhaustive and test-set verification engines —
//     it evaluates the network on 64 test vectors for the cost of one.
//
// Lines are 0-based internally; the text format and diagrams use the
// paper's 1-based lines.
package network

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"sortnets/internal/bitvec"
)

// Comparator is a standard comparator on lines A < B (0-based): after
// it fires, line A carries min and line B carries max.
type Comparator struct {
	A, B int
}

// Valid reports whether the comparator is standard and fits n lines.
func (c Comparator) Valid(n int) bool {
	return 0 <= c.A && c.A < c.B && c.B < n
}

// Height is the span b−a of the comparator; Section 3 of the paper
// classifies networks by their maximum comparator height.
func (c Comparator) Height() int { return c.B - c.A }

// String renders in the paper's 1-based notation, e.g. "[1,3]".
func (c Comparator) String() string { return fmt.Sprintf("[%d,%d]", c.A+1, c.B+1) }

// Network is a comparator network: n lines and an ordered sequence of
// comparators. The zero value is the empty network on 0 lines.
type Network struct {
	N     int
	Comps []Comparator

	// pairs caches the compiled pair form built by Pairs. Loads and
	// stores are atomic (safe for concurrent readers) and every load
	// is validated against Comps, so direct mutation of the exported
	// Comps field can never serve stale pairs.
	pairs atomic.Pointer[[][2]int]
}

// New returns an empty network (no comparators) on n lines; the empty
// network is the identity and, per the paper's base case, serves as
// H_10 for n = 2.
func New(n int) *Network {
	if n < 0 {
		panic(fmt.Sprintf("network: negative line count %d", n))
	}
	return &Network{N: n}
}

// Add appends comparators, validating each, and returns the network for
// chaining. It panics on a nonstandard or out-of-range comparator.
func (w *Network) Add(comps ...Comparator) *Network {
	for _, c := range comps {
		if !c.Valid(w.N) {
			panic(fmt.Sprintf("network: invalid comparator %v on %d lines", c, w.N))
		}
		w.Comps = append(w.Comps, c)
	}
	w.pairs.Store(nil)
	return w
}

// AddPair appends the comparator [a,b] given 0-based lines.
func (w *Network) AddPair(a, b int) *Network { return w.Add(Comparator{A: a, B: b}) }

// Size returns the number of comparators.
func (w *Network) Size() int { return len(w.Comps) }

// Validate checks every comparator; networks built through Add are
// always valid, but parsed or hand-assembled ones may not be.
func (w *Network) Validate() error {
	if w.N < 0 {
		return fmt.Errorf("network: negative line count %d", w.N)
	}
	for i, c := range w.Comps {
		if !c.Valid(w.N) {
			return fmt.Errorf("network: comparator %d (%v) invalid on %d lines", i, c, w.N)
		}
	}
	return nil
}

// Clone returns a deep copy.
func (w *Network) Clone() *Network {
	c := &Network{N: w.N, Comps: make([]Comparator, len(w.Comps))}
	copy(c.Comps, w.Comps)
	return c
}

// Apply runs the network on an integer input vector (e.g. a
// permutation), returning a fresh output slice.
func (w *Network) Apply(in []int) []int {
	out := make([]int, len(in))
	copy(out, in)
	w.ApplyInPlace(out)
	return out
}

// ApplyInPlace runs the network on v, mutating it. Panics if the length
// does not match the line count.
func (w *Network) ApplyInPlace(v []int) {
	if len(v) != w.N {
		panic(fmt.Sprintf("network: input length %d, want %d lines", len(v), w.N))
	}
	for _, c := range w.Comps {
		if v[c.A] > v[c.B] {
			v[c.A], v[c.B] = v[c.B], v[c.A]
		}
	}
}

// ApplyVec runs the network on a packed 0/1 input. A comparator [a,b]
// swaps exactly when line a carries 1 and line b carries 0; the
// branch-free update XORs both lines with that condition bit.
func (w *Network) ApplyVec(v bitvec.Vec) bitvec.Vec {
	if v.N != w.N {
		panic(fmt.Sprintf("network: input length %d, want %d lines", v.N, w.N))
	}
	bits := v.Bits
	for _, c := range w.Comps {
		m := (bits >> uint(c.A)) &^ (bits >> uint(c.B)) & 1
		bits ^= m<<uint(c.A) | m<<uint(c.B)
	}
	return bitvec.Vec{N: v.N, Bits: bits}
}

// Sorts reports whether the network sorts the given 0/1 input.
func (w *Network) Sorts(v bitvec.Vec) bool { return w.ApplyVec(v).IsSorted() }

// Depth returns the number of parallel stages when comparators are
// packed greedily into layers (comparators touching disjoint lines may
// fire simultaneously).
func (w *Network) Depth() int {
	busy := make([]int, w.N)
	depth := 0
	for _, c := range w.Comps {
		layer := max(busy[c.A], busy[c.B]) + 1
		busy[c.A], busy[c.B] = layer, layer
		if layer > depth {
			depth = layer
		}
	}
	return depth
}

// Layers groups comparators into the greedy parallel stages counted by
// Depth.
func (w *Network) Layers() [][]Comparator {
	busy := make([]int, w.N)
	var layers [][]Comparator
	for _, c := range w.Comps {
		layer := max(busy[c.A], busy[c.B]) + 1
		busy[c.A], busy[c.B] = layer, layer
		for len(layers) < layer {
			layers = append(layers, nil)
		}
		layers[layer-1] = append(layers[layer-1], c)
	}
	return layers
}

// Height returns the maximum comparator span max(b−a), the parameter of
// Section 3's height-k networks; the empty network has height 0.
// Height-1 networks are the "primitive" networks of de Bruijn.
func (w *Network) Height() int {
	h := 0
	for _, c := range w.Comps {
		if s := c.Height(); s > h {
			h = s
		}
	}
	return h
}

// Append concatenates other's comparators after w's (both on the same
// number of lines), returning w for chaining.
func (w *Network) Append(other *Network) *Network {
	if other.N != w.N {
		panic(fmt.Sprintf("network: appending %d-line network to %d-line network", other.N, w.N))
	}
	w.Comps = append(w.Comps, other.Comps...)
	w.pairs.Store(nil)
	return w
}

// OnLines embeds w into a network with total lines, routing w's line i
// to lines[i]. The mapping must be injective and order-preserving is
// NOT required of the caller — but a standard comparator must remain
// standard, so for every comparator [a,b] of w, lines[a] < lines[b]
// must hold; otherwise OnLines panics. This is the figure-assembly
// primitive for the Lemma 2.1 construction ("H₁₀₀ has 3 input
// lines—k, l and n; all other lines bypass").
func (w *Network) OnLines(total int, lines []int) *Network {
	if len(lines) != w.N {
		panic(fmt.Sprintf("network: OnLines got %d lines for %d-line network", len(lines), w.N))
	}
	seen := make(map[int]bool, len(lines))
	for _, l := range lines {
		if l < 0 || l >= total {
			panic(fmt.Sprintf("network: OnLines target %d out of range 0..%d", l, total-1))
		}
		if seen[l] {
			panic(fmt.Sprintf("network: OnLines duplicate target line %d", l))
		}
		seen[l] = true
	}
	out := New(total)
	for _, c := range w.Comps {
		a, b := lines[c.A], lines[c.B]
		if a >= b {
			panic(fmt.Sprintf("network: OnLines maps %v to nonstandard [%d,%d]", c, a+1, b+1))
		}
		out.AddPair(a, b)
	}
	return out
}

// Mirror returns the top-bottom reflection of the network: comparator
// [a,b] becomes [n−1−b, n−1−a] (still standard), in the same firing
// order. Mirroring is the network half of the reverse-complement
// duality: for every input σ, Mirror(H)(rc(σ)) = rc(H(σ)), where rc
// reverses the lines and complements the bits. The duality maps sorted
// strings to sorted strings, so H is a sorter iff Mirror(H) is, and an
// almost-sorter for σ mirrors into an almost-sorter for rc(σ) — the
// "identical, we omit it" symmetric case of Lemma 2.1.
func (w *Network) Mirror() *Network {
	m := New(w.N)
	for _, c := range w.Comps {
		m.AddPair(w.N-1-c.B, w.N-1-c.A)
	}
	return m
}

// Untouched returns the lines no comparator touches; inputs on those
// lines pass through unchanged.
func (w *Network) Untouched() []int {
	touched := make([]bool, w.N)
	for _, c := range w.Comps {
		touched[c.A], touched[c.B] = true, true
	}
	var out []int
	for i, t := range touched {
		if !t {
			out = append(out, i)
		}
	}
	return out
}

// Random returns a network of the given size with comparators drawn
// uniformly from all C(n,2) standard comparators. Random networks are
// the paper's "arbitrary network H" — the object a test set must judge.
func Random(n, size int, rng *rand.Rand) *Network {
	if n < 2 && size > 0 {
		panic("network: need at least 2 lines for a comparator")
	}
	w := New(n)
	for i := 0; i < size; i++ {
		a := rng.Intn(n - 1)
		b := a + 1 + rng.Intn(n-1-a)
		w.AddPair(a, b)
	}
	return w
}

// RandomHeightBounded returns a random network whose comparators all
// have height ≤ h (Section 3's restricted class).
func RandomHeightBounded(n, size, h int, rng *rand.Rand) *Network {
	if h < 1 {
		panic("network: height bound must be ≥ 1")
	}
	w := New(n)
	for i := 0; i < size; i++ {
		a := rng.Intn(n - 1)
		maxSpan := min(h, n-1-a)
		b := a + 1 + rng.Intn(maxSpan)
		w.AddPair(a, b)
	}
	return w
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
