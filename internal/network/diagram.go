package network

import (
	"fmt"
	"strings"

	"sortnets/internal/bitvec"
)

// Diagram renders the network as an ASCII Knuth diagram in the style of
// the paper's figures: one horizontal row per line, comparators drawn
// as vertical connectors in left-to-right firing order. Comparators
// whose line spans are disjoint may share a column; overlapping spans
// are staggered so the drawing is unambiguous. Example (the paper's
// Fig. 1, [1,3][2,4][1,2][3,4]):
//
//	1 ───●──────●────────
//	2 ───┼──●───●────────
//	3 ───●──┼──────●─────
//	4 ──────●──────●─────
func (w *Network) Diagram() string {
	// Column assignment: a comparator goes one column right of the
	// rightmost earlier comparator whose span [A,B] intersects its own.
	// Tracking the last used column per *line over the whole span*
	// implements exactly that in one pass.
	lastCol := make([]int, w.N) // 0 = untouched; columns are 1-based
	colOf := make([]int, len(w.Comps))
	nCols := 0
	for idx, c := range w.Comps {
		col := 0
		for i := c.A; i <= c.B; i++ {
			if lastCol[i] > col {
				col = lastCol[i]
			}
		}
		col++
		for i := c.A; i <= c.B; i++ {
			lastCol[i] = col
		}
		colOf[idx] = col
		if col > nCols {
			nCols = col
		}
	}

	// cell[i][j] ∈ {line, endpoint, crossing}
	const (
		cellLine     = 0
		cellEndpoint = 1
		cellCrossing = 2
	)
	cells := make([][]int, w.N)
	for i := range cells {
		cells[i] = make([]int, nCols)
	}
	for idx, c := range w.Comps {
		j := colOf[idx] - 1
		cells[c.A][j] = cellEndpoint
		cells[c.B][j] = cellEndpoint
		for i := c.A + 1; i < c.B; i++ {
			if cells[i][j] == cellLine {
				cells[i][j] = cellCrossing
			}
		}
	}

	var sb strings.Builder
	for i := 0; i < w.N; i++ {
		fmt.Fprintf(&sb, "%2d ──", i+1)
		for j := 0; j < nCols; j++ {
			switch cells[i][j] {
			case cellEndpoint:
				sb.WriteString("─●─")
			case cellCrossing:
				sb.WriteString("─┼─")
			default:
				sb.WriteString("───")
			}
		}
		sb.WriteString("──\n")
	}
	return sb.String()
}

// Trace returns a step-by-step evaluation transcript of the network on
// an integer input, one row per comparator, reproducing the style of
// the paper's Fig. 1 walk-through of (4 1 3 2).
func (w *Network) Trace(in []int) string {
	if len(in) != w.N {
		panic(fmt.Sprintf("network: trace input length %d, want %d", len(in), w.N))
	}
	v := make([]int, len(in))
	copy(v, in)
	var sb strings.Builder
	fmt.Fprintf(&sb, "input   %v\n", v)
	for _, c := range w.Comps {
		swapped := ""
		if v[c.A] > v[c.B] {
			v[c.A], v[c.B] = v[c.B], v[c.A]
			swapped = "  (exchange)"
		}
		fmt.Fprintf(&sb, "%-7s %v%s\n", c.String(), v, swapped)
	}
	fmt.Fprintf(&sb, "output  %v\n", v)
	return sb.String()
}

// TraceVec is Trace for a binary input.
func (w *Network) TraceVec(in bitvec.Vec) string {
	return w.Trace(in.Ints())
}
