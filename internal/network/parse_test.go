package network

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"n=4: [1,3][2,4][1,2][3,4]",
		"n=2:",
		"n=6: [1,2]",
		"n=3: [1,2][2,3][1,2]",
	}
	for _, s := range cases {
		w, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		again, err := Parse(w.Format())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", w.Format(), err)
		}
		if again.N != w.N || again.Size() != w.Size() {
			t.Errorf("round trip changed %q", s)
		}
		for i := range w.Comps {
			if w.Comps[i] != again.Comps[i] {
				t.Errorf("comparator %d changed in round trip of %q", i, s)
			}
		}
	}
}

func TestParseInferredN(t *testing.T) {
	w, err := Parse("[1,3][2,4]")
	if err != nil {
		t.Fatal(err)
	}
	if w.N != 4 {
		t.Errorf("inferred n = %d, want 4", w.N)
	}
}

func TestParseWhitespace(t *testing.T) {
	w, err := Parse("  n=4:  [1,3]  [2,4] ")
	if err != nil {
		t.Fatal(err)
	}
	if w.Size() != 2 {
		t.Errorf("size %d", w.Size())
	}
	w2, err := Parse("[ 1 , 3 ]")
	if err != nil {
		t.Fatal(err)
	}
	if w2.Comps[0] != (Comparator{A: 0, B: 2}) {
		t.Error("inner whitespace not handled")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"n=4 [1,2]",    // missing colon
		"n=x: [1,2]",   // bad count
		"n=4: [2,1]",   // nonstandard
		"n=4: [1,1]",   // degenerate
		"n=4: [0,2]",   // 0-based input
		"n=2: [1,3]",   // out of range
		"n=4: [1,2",    // unterminated
		"n=4: [1]",     // one line
		"n=4: [1,2,3]", // three lines
		"n=4: (1,2)",   // wrong brackets
		"n=4: [a,b]",   // not numbers
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestStringEmpty(t *testing.T) {
	if got := New(3).String(); got != "(empty)" {
		t.Errorf("empty String = %q", got)
	}
	if got := New(3).Format(); got != "n=3:" {
		t.Errorf("empty Format = %q", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		w := Random(2+rng.Intn(10), rng.Intn(20), rng)
		data, err := json.Marshal(w)
		if err != nil {
			t.Fatal(err)
		}
		var back Network
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back.N != w.N || back.Size() != w.Size() {
			t.Fatalf("JSON round trip changed shape: %s -> %s", w.Format(), back.Format())
		}
		for i := range w.Comps {
			if w.Comps[i] != back.Comps[i] {
				t.Fatalf("comparator %d changed", i)
			}
		}
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	var w Network
	if err := json.Unmarshal([]byte(`{"lines":2,"comparators":[[2,1]]}`), &w); err == nil {
		t.Error("nonstandard comparator should fail")
	}
	if err := json.Unmarshal([]byte(`{"lines":2,"comparators":[[1,5]]}`), &w); err == nil {
		t.Error("out-of-range comparator should fail")
	}
}

func TestDiagramShape(t *testing.T) {
	d := fig1().Diagram()
	lines := strings.Split(strings.TrimRight(d, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("diagram has %d rows, want 4:\n%s", len(lines), d)
	}
	// All rows equal width.
	w := len([]rune(lines[0]))
	for _, l := range lines {
		if len([]rune(l)) != w {
			t.Errorf("ragged diagram:\n%s", d)
		}
	}
	// Endpoint count: 2 per comparator.
	if got := strings.Count(d, "●"); got != 8 {
		t.Errorf("diagram has %d endpoints, want 8:\n%s", got, d)
	}
}

func TestDiagramEmpty(t *testing.T) {
	d := New(2).Diagram()
	if !strings.Contains(d, "1 ──") || !strings.Contains(d, "2 ──") {
		t.Errorf("empty diagram malformed:\n%s", d)
	}
}

func TestTraceReproducesPaperWalkthrough(t *testing.T) {
	tr := fig1().Trace([]int{4, 1, 3, 2})
	if !strings.Contains(tr, "input   [4 1 3 2]") {
		t.Errorf("trace missing input row:\n%s", tr)
	}
	if !strings.Contains(tr, "output  [1 3 2 4]") {
		t.Errorf("trace must end at (1 3 2 4) per Fig. 1:\n%s", tr)
	}
	if got := strings.Count(tr, "(exchange)"); got != 3 {
		t.Errorf("trace shows %d exchanges, want 3:\n%s", got, tr)
	}
}
