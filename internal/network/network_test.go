package network

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sortnets/internal/bitvec"
)

// fig1 is the paper's Fig. 1 network [1,3][2,4][1,2][3,4] (a 4-line
// sorter: Batcher's odd-even merge sort without the redundant [2,3]?
// — no, with [2,3] missing it still sorts? verified by tests below
// against the zero-one principle).
func fig1() *Network {
	return MustParse("n=4: [1,3][2,4][1,2][3,4]")
}

func TestFig1PaperTrace(t *testing.T) {
	// "The figure also shows the way the network processes the input
	// (4 1 3 2)." [1,3]: 3,1,4,2 → [2,4]: 3,1,4,2 (1<2 no swap) →
	// [1,2]: 1,3,4,2 → [3,4]: 1,3,2,4.
	got := fig1().Apply([]int{4, 1, 3, 2})
	want := []int{1, 3, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Fig.1 on (4 1 3 2) = %v, want %v", got, want)
		}
	}
}

func TestFig1IsNotASorter(t *testing.T) {
	// The paper's example network fails on (4 1 3 2), so it must also
	// fail the zero-one sweep.
	if fig1().SortsAllBinary() {
		t.Error("Fig. 1 network should not be a sorter")
	}
	// Its first binary failure must be a real failure.
	f := fig1().FirstBinaryFailure()
	if f.N < 0 {
		t.Fatal("expected a binary failure")
	}
	if fig1().ApplyVec(f).IsSorted() {
		t.Errorf("reported failure %s actually sorts", f)
	}
}

func TestAddValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("reversed", func() { New(4).AddPair(2, 1) })
	mustPanic("equal", func() { New(4).AddPair(1, 1) })
	mustPanic("out of range", func() { New(4).AddPair(0, 4) })
	mustPanic("negative n", func() { New(-1) })
}

func TestValidate(t *testing.T) {
	w := &Network{N: 3, Comps: []Comparator{{A: 0, B: 3}}}
	if err := w.Validate(); err == nil {
		t.Error("out-of-range comparator should fail validation")
	}
	if err := fig1().Validate(); err != nil {
		t.Error(err)
	}
}

func TestApplyMatchesApplyVec(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(12)
		w := Random(n, rng.Intn(40), rng)
		v := bitvec.New(n, rng.Uint64()&(uint64(1)<<uint(n)-1))
		intOut := w.Apply(v.Ints())
		vecOut := w.ApplyVec(v)
		for i := 0; i < n; i++ {
			if intOut[i] != vecOut.Bit(i) {
				t.Fatalf("n=%d trial %d: int path %v vs vec path %s on %s (net %s)",
					n, trial, intOut, vecOut, v, w)
			}
		}
	}
}

func TestApplyBatchMatchesApplyVec(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(10)
		w := Random(n, rng.Intn(30), rng)
		var vs []bitvec.Vec
		for lane := 0; lane < 64; lane++ {
			vs = append(vs, bitvec.New(n, rng.Uint64()&(uint64(1)<<uint(n)-1)))
		}
		b := LoadVecs(n, vs)
		w.ApplyBatch(b)
		for lane, v := range vs {
			want := w.ApplyVec(v)
			if got := b.Lane(lane); got != want {
				t.Fatalf("lane %d: batch %s vs vec %s", lane, got, want)
			}
		}
	}
}

func TestUnsortedLanes(t *testing.T) {
	vs := []bitvec.Vec{
		bitvec.MustFromString("0011"), // sorted
		bitvec.MustFromString("0110"), // not
		bitvec.MustFromString("1111"), // sorted
		bitvec.MustFromString("1000"), // not
	}
	b := LoadVecs(4, vs)
	if got := b.UnsortedLanes(); got != 0b1010 {
		t.Errorf("UnsortedLanes = %b, want 1010", got)
	}
}

func TestBatchLaneRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := NewBatch(9)
	var want []bitvec.Vec
	for lane := 0; lane < 64; lane++ {
		v := bitvec.New(9, rng.Uint64()&0x1FF)
		b.SetLane(lane, v)
		want = append(want, v)
	}
	for lane, v := range want {
		if got := b.Lane(lane); got != v {
			t.Fatalf("lane %d: %s != %s", lane, got, v)
		}
	}
}

func TestSortsAllBinarySmallCases(t *testing.T) {
	// The empty 1-line network sorts trivially.
	if !New(1).SortsAllBinary() {
		t.Error("1-line network should sort")
	}
	// [1,2] is the 2-line sorter.
	if !New(2).AddPair(0, 1).SortsAllBinary() {
		t.Error("[1,2] should sort 2 lines")
	}
	// The empty 2-line network fails on 10.
	f := New(2).FirstBinaryFailure()
	if f.String() != "10" {
		t.Errorf("first failure = %s, want 10", f)
	}
	// Bubble sort on 3 lines: [1,2][2,3][1,2].
	w3 := New(3).AddPair(0, 1).AddPair(1, 2).AddPair(0, 1)
	if !w3.SortsAllBinary() {
		t.Error("3-line bubble network should sort")
	}
}

func TestSortsAllBinaryAgainstExhaustiveScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(9)
		w := Random(n, rng.Intn(5*n), rng)
		want := true
		var firstFail bitvec.Vec
		it := bitvec.All(n)
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			if !w.ApplyVec(v).IsSorted() {
				want = false
				firstFail = v
				break
			}
		}
		if got := w.SortsAllBinary(); got != want {
			t.Fatalf("n=%d net %s: SortsAllBinary=%v, scalar says %v", n, w, got, want)
		}
		if !want {
			if got := w.FirstBinaryFailure(); got != firstFail {
				t.Fatalf("n=%d: first failure %s, scalar says %s", n, got, firstFail)
			}
		}
	}
}

func TestZeroOnePrincipleOnRandomNetworks(t *testing.T) {
	// The zero-one principle itself, machine-checked: a network sorts
	// all 0/1 inputs iff it sorts all permutations (n small enough to
	// sweep n!).
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(5) // up to 6 lines, 720 perms
		size := rng.Intn(4 * n)
		w := Random(n, size, rng)
		binaryOK := w.SortsAllBinary()
		permOK := sortsAllPermutations(w)
		if binaryOK != permOK {
			t.Fatalf("zero-one violated: n=%d %s binary=%v perm=%v", n, w, binaryOK, permOK)
		}
	}
}

func sortsAllPermutations(w *Network) bool {
	idx := make([]int, w.N)
	for i := range idx {
		idx[i] = i + 1
	}
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(idx) {
			out := w.Apply(idx)
			return sort.IntsAreSorted(out)
		}
		for i := k; i < len(idx); i++ {
			idx[k], idx[i] = idx[i], idx[k]
			if !rec(k + 1) {
				idx[k], idx[i] = idx[i], idx[k]
				return false
			}
			idx[k], idx[i] = idx[i], idx[k]
		}
		return true
	}
	return rec(0)
}

func TestMonotonicityProperty(t *testing.T) {
	// Lemma inside Theorem 2.4's proof: σ ≤ τ ⇒ H(σ) ≤ H(τ).
	rng := rand.New(rand.NewSource(77))
	f := func(x, y uint16, size uint8) bool {
		n := 16
		w := Random(n, int(size)%64, rng)
		a := bitvec.New(n, uint64(x&y)) // a ≤ b by construction
		b := bitvec.New(n, uint64(y))
		return bitvec.Leq(w.ApplyVec(a), w.ApplyVec(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStandardComparatorsNeverUnsort(t *testing.T) {
	// "once an input gets sorted, ensuing comparators cannot unsort it"
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.Intn(14)
		w := Random(n, 1+rng.Intn(3*n), rng)
		k := rng.Intn(n + 1)
		sorted := bitvec.SortedWithOnes(n, k)
		if got := w.ApplyVec(sorted); got != sorted {
			t.Fatalf("network %s moved sorted input %s to %s", w, sorted, got)
		}
	}
}

func TestDepthAndLayers(t *testing.T) {
	// Fig.1 packs into two parallel stages: {[1,3],[2,4]} then
	// {[1,2],[3,4]} — the pairs touch disjoint lines.
	w := fig1()
	if d := w.Depth(); d != 2 {
		t.Errorf("Fig.1 depth = %d, want 2", d)
	}
	layers := w.Layers()
	if len(layers) != 2 {
		t.Fatalf("layers = %d, want 2", len(layers))
	}
	if len(layers[0]) != 2 || len(layers[1]) != 2 {
		t.Errorf("layer sizes %d/%d, want 2/2", len(layers[0]), len(layers[1]))
	}
	total := 0
	for _, l := range layers {
		total += len(l)
	}
	if total != w.Size() {
		t.Errorf("layers hold %d comparators, want %d", total, w.Size())
	}
	if New(5).Depth() != 0 {
		t.Error("empty network depth should be 0")
	}
}

func TestHeight(t *testing.T) {
	if h := fig1().Height(); h != 2 {
		t.Errorf("Fig.1 height = %d, want 2", h)
	}
	oddEven := New(4).AddPair(0, 1).AddPair(2, 3).AddPair(1, 2)
	if h := oddEven.Height(); h != 1 {
		t.Errorf("adjacent-only network height = %d, want 1", h)
	}
	if New(3).Height() != 0 {
		t.Error("empty network height should be 0")
	}
}

func TestOnLines(t *testing.T) {
	// Embed the 2-line sorter onto lines {1,3} of a 4-line network.
	sub := New(2).AddPair(0, 1)
	w := sub.OnLines(4, []int{1, 3})
	if w.N != 4 || w.Size() != 1 || w.Comps[0] != (Comparator{A: 1, B: 3}) {
		t.Errorf("OnLines produced %s", w.Format())
	}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("descending map", func() { sub.OnLines(4, []int{3, 1}) })
	mustPanic("duplicate", func() { sub.OnLines(4, []int{2, 2}) })
	mustPanic("range", func() { sub.OnLines(4, []int{0, 4}) })
	mustPanic("length", func() { sub.OnLines(4, []int{0}) })
}

func TestAppendAndClone(t *testing.T) {
	a := New(3).AddPair(0, 1)
	b := New(3).AddPair(1, 2)
	c := a.Clone().Append(b)
	if c.Size() != 2 || a.Size() != 1 {
		t.Error("Append/Clone sizes wrong")
	}
	a.Comps[0] = Comparator{A: 0, B: 2}
	if c.Comps[0] != (Comparator{A: 0, B: 1}) {
		t.Error("Clone not deep")
	}
}

func TestMirrorDuality(t *testing.T) {
	// Mirror(H)(rc(σ)) == rc(H(σ)) for random networks and inputs.
	rng := rand.New(rand.NewSource(31))
	rc := func(v bitvec.Vec) bitvec.Vec { return v.Reverse().Complement() }
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(12)
		w := Random(n, rng.Intn(30), rng)
		m := w.Mirror()
		v := bitvec.New(n, rng.Uint64()&(uint64(1)<<uint(n)-1))
		if got, want := m.ApplyVec(rc(v)), rc(w.ApplyVec(v)); got != want {
			t.Fatalf("duality broken: net %s input %s: %s vs %s", w, v, got, want)
		}
	}
}

func TestMirrorInvolutionAndSorterPreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(8)
		w := Random(n, rng.Intn(4*n), rng)
		mm := w.Mirror().Mirror()
		for i := range w.Comps {
			if w.Comps[i] != mm.Comps[i] {
				t.Fatal("Mirror not an involution")
			}
		}
		if w.SortsAllBinary() != w.Mirror().SortsAllBinary() {
			t.Fatalf("mirror changed sorter-ness of %s", w)
		}
	}
}

func TestUntouched(t *testing.T) {
	w := New(5).AddPair(0, 2).AddPair(2, 4)
	got := w.Untouched()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("Untouched = %v, want [1 3]", got)
	}
}

func TestRandomHeightBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		h := 1 + rng.Intn(3)
		w := RandomHeightBounded(8, 30, h, rng)
		if w.Height() > h {
			t.Fatalf("height %d exceeds bound %d", w.Height(), h)
		}
		if err := w.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}
