package network

import (
	"math/rand"
	"testing"

	"sortnets/internal/bitvec"
)

func TestEquivalentReflexiveAndOrderSensitive(t *testing.T) {
	a := MustParse("n=4: [1,2][3,4][1,3][2,4][2,3]")
	if !Equivalent(a, a.Clone()) {
		t.Error("network not equivalent to its clone")
	}
	// Same comparators, different order: [1,2][2,3] vs [2,3][1,2]
	// differ on input 110? First: 110 -> [1,2]: 110 -> [2,3]: 101.
	// Second: 110 -> [2,3]: 101 -> [1,2]: 011. Different.
	x := New(3).AddPair(0, 1).AddPair(1, 2)
	y := New(3).AddPair(1, 2).AddPair(0, 1)
	if Equivalent(x, y) {
		t.Error("order-sensitive networks reported equivalent")
	}
	if Equivalent(New(3), New(4)) {
		t.Error("different widths equivalent")
	}
	if !Equivalent(New(0), New(0)) {
		t.Error("empty networks should be equivalent")
	}
}

func TestEquivalentAgainstScalarReference(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(8)
		a := Random(n, rng.Intn(3*n), rng)
		b := Random(n, rng.Intn(3*n), rng)
		want := true
		it := bitvec.All(n)
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			if a.ApplyVec(v) != b.ApplyVec(v) {
				want = false
				break
			}
		}
		if got := Equivalent(a, b); got != want {
			t.Fatalf("Equivalent=%v, scalar says %v for %s vs %s", got, want, a, b)
		}
	}
}

func TestExerciseCounts(t *testing.T) {
	// [1,2] on 2 lines fires exactly on input 10: count 1.
	w := New(2).AddPair(0, 1)
	counts := w.ExerciseCounts()
	if len(counts) != 1 || counts[0] != 1 {
		t.Errorf("counts = %v, want [1]", counts)
	}
	// A duplicated comparator never fires the second time.
	w2 := New(2).AddPair(0, 1).AddPair(0, 1)
	counts = w2.ExerciseCounts()
	if counts[0] != 1 || counts[1] != 0 {
		t.Errorf("counts = %v, want [1 0]", counts)
	}
}

func TestExerciseCountsScalarCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(7)
		w := Random(n, rng.Intn(4*n), rng)
		want := make([]int, w.Size())
		it := bitvec.All(n)
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			bits := v.Bits
			for i, c := range w.Comps {
				if bits>>uint(c.A)&1 == 1 && bits>>uint(c.B)&1 == 0 {
					want[i]++
					bits ^= 1<<uint(c.A) | 1<<uint(c.B)
				}
			}
		}
		got := w.ExerciseCounts()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("comparator %d: batch count %d, scalar %d (net %s)", i, got[i], want[i], w)
			}
		}
	}
}

func TestRemoveRedundant(t *testing.T) {
	// A sorter with its last comparator duplicated: one removable.
	base := MustParse("n=4: [1,2][3,4][1,3][2,4][2,3]")
	padded := base.Clone().AddPair(1, 2) // duplicate of the final [2,3]
	reduced := padded.RemoveRedundant()
	if reduced.Size() != base.Size() {
		t.Errorf("reduced to %d comparators, want %d", reduced.Size(), base.Size())
	}
	if !Equivalent(padded, reduced) {
		t.Error("reduction changed behaviour")
	}
	// Idempotent on clean networks.
	if got := base.RemoveRedundant(); got.Size() != base.Size() {
		t.Errorf("clean network lost comparators: %d", got.Size())
	}
}

func TestRemoveRedundantPreservesBehaviourRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(7)
		w := Random(n, rng.Intn(6*n), rng)
		r := w.RemoveRedundant()
		if !Equivalent(w, r) {
			t.Fatalf("reduction changed behaviour of %s -> %s", w, r)
		}
		for _, c := range r.ExerciseCounts() {
			if c == 0 {
				t.Fatalf("dead comparator survived reduction of %s", w)
			}
		}
	}
}

func TestCompactPreservesBehaviourAndDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(8)
		w := Random(n, rng.Intn(5*n), rng)
		c := w.Compact()
		if !Equivalent(w, c) {
			t.Fatalf("Compact changed behaviour of %s -> %s", w, c)
		}
		if c.Depth() != w.Depth() {
			t.Fatalf("Compact changed depth of %s: %d -> %d", w, w.Depth(), c.Depth())
		}
		if c.Size() != w.Size() {
			t.Fatalf("Compact changed size of %s", w)
		}
	}
}

func TestCompactGroupsLayersContiguously(t *testing.T) {
	// After compaction, layer indices must be nondecreasing along the
	// comparator sequence.
	w := MustParse("n=6: [1,2][1,3][4,5][5,6][2,3][3,4]").Compact()
	busy := make([]int, w.N)
	last := 0
	for _, c := range w.Comps {
		layer := busy[c.A]
		if busy[c.B] > layer {
			layer = busy[c.B]
		}
		layer++
		busy[c.A], busy[c.B] = layer, layer
		if layer < last {
			t.Fatalf("layers not contiguous in %s", w)
		}
		if layer > last {
			last = layer
		}
	}
}

func TestAnalyze(t *testing.T) {
	w := MustParse("n=4: [1,2][3,4][1,3][2,4][2,3]").Clone().AddPair(2, 3)
	s := w.Analyze()
	if s.Lines != 4 || s.Comparators != 6 || s.Redundant != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty stats string")
	}
	if s.Height != 2 {
		t.Errorf("height = %d", s.Height)
	}
}
