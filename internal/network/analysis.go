package network

import (
	"fmt"

	"sortnets/internal/bitvec"
)

// Analysis utilities built on the zero-one principle: because a
// comparator network's behaviour on arbitrary inputs is determined by
// its behaviour on binary inputs (each output line is a lattice
// polynomial of the inputs), binary sweeps decide semantic questions —
// equivalence, redundancy, exercise counts — exactly.

// Equivalent reports whether two networks compute the same function,
// by comparing outputs on all 2ⁿ binary inputs with the 64-lane batch
// engine. Exact for arbitrary inputs, not just binary ones, by the
// threshold decomposition behind the zero-one principle.
func Equivalent(a, b *Network) bool {
	if a.N != b.N {
		return false
	}
	n := a.N
	if n == 0 {
		return true
	}
	total := uint64(bitvec.Universe(n))
	ba, bb := NewBatch(n), NewBatch(n)
	for base := uint64(0); base < total; base += LanesPerBatch {
		loadConsecutive(ba, base)
		loadConsecutive(bb, base)
		a.ApplyBatch(ba)
		b.ApplyBatch(bb)
		for i := 0; i < n; i++ {
			mask := ^uint64(0)
			if total-base < LanesPerBatch {
				mask = uint64(1)<<uint(total-base) - 1
			}
			if (ba.Lines[i]^bb.Lines[i])&mask != 0 {
				return false
			}
		}
	}
	return true
}

// ExerciseCounts returns, for every comparator, how many of the 2ⁿ
// binary inputs make it actually exchange its pair. A comparator with
// count zero never fires on any input (binary or otherwise) and is
// semantically dead.
func (w *Network) ExerciseCounts() []int {
	counts := make([]int, len(w.Comps))
	n := w.N
	if n == 0 {
		return counts
	}
	total := uint64(bitvec.Universe(n))
	b := NewBatch(n)
	for base := uint64(0); base < total; base += LanesPerBatch {
		loadConsecutive(b, base)
		laneMask := ^uint64(0)
		if total-base < LanesPerBatch {
			laneMask = uint64(1)<<uint(total-base) - 1
		}
		for i, c := range w.Comps {
			x, y := b.Lines[c.A], b.Lines[c.B]
			// A lane exchanges exactly when line A carries 1 and line
			// B carries 0.
			counts[i] += popcount64(x &^ y & laneMask)
			b.Lines[c.A] = x & y
			b.Lines[c.B] = x | y
		}
	}
	return counts
}

func popcount64(x uint64) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

// RemoveRedundant returns an equivalent network with every dead
// comparator deleted, iterating until none remain (removing one dead
// comparator can reveal another... it cannot, in fact: a comparator
// that never fires has no effect on downstream values, so all dead
// comparators can go in one pass — but the fixpoint loop guards the
// claim cheaply and the tests verify equivalence regardless).
func (w *Network) RemoveRedundant() *Network {
	cur := w.Clone()
	for {
		counts := cur.ExerciseCounts()
		next := New(cur.N)
		removed := false
		for i, c := range cur.Comps {
			if counts[i] == 0 {
				removed = true
				continue
			}
			next.AddPair(c.A, c.B)
		}
		if !removed {
			return cur
		}
		cur = next
	}
}

// Compact returns an equivalent network with comparators reordered
// into their greedy parallel layers: comparators on disjoint lines
// commute, so emitting layer by layer preserves behaviour while
// making the parallel structure explicit (diagrams tighten, and a
// hardware realization reads off its stages directly). Depth is
// unchanged — the greedy layering is already what Depth measures.
func (w *Network) Compact() *Network {
	out := New(w.N)
	for _, layer := range w.Layers() {
		for _, c := range layer {
			out.AddPair(c.A, c.B)
		}
	}
	return out
}

// Stats summarizes a network's structure.
type Stats struct {
	Lines       int
	Comparators int
	Depth       int
	Height      int
	Redundant   int // comparators that never fire
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("%d lines, %d comparators (%d redundant), depth %d, height %d",
		s.Lines, s.Comparators, s.Redundant, s.Depth, s.Height)
}

// Analyze computes structural statistics; the redundancy count uses a
// full binary sweep, so it is exact but exponential in n.
func (w *Network) Analyze() Stats {
	red := 0
	for _, c := range w.ExerciseCounts() {
		if c == 0 {
			red++
		}
	}
	return Stats{
		Lines:       w.N,
		Comparators: w.Size(),
		Depth:       w.Depth(),
		Height:      w.Height(),
		Redundant:   red,
	}
}
