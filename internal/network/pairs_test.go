package network

import (
	"testing"

	"sortnets/internal/widevec"
)

func TestPairsCachedAndInvalidated(t *testing.T) {
	w := New(4).AddPair(0, 1).AddPair(2, 3)
	p1 := w.Pairs()
	if len(p1) != 2 || p1[0] != [2]int{0, 1} || p1[1] != [2]int{2, 3} {
		t.Fatalf("pairs %v", p1)
	}
	if p2 := w.Pairs(); &p2[0] != &p1[0] {
		t.Error("second call did not reuse the cached slice")
	}
	w.AddPair(0, 2)
	p3 := w.Pairs()
	if len(p3) != 3 || p3[2] != [2]int{0, 2} {
		t.Fatalf("cache not invalidated by Add: %v", p3)
	}
	other := New(4).AddPair(1, 3)
	w.Append(other)
	if p4 := w.Pairs(); len(p4) != 4 || p4[3] != [2]int{1, 3} {
		t.Fatalf("cache not invalidated by Append: %v", w.Pairs())
	}
	// Clone must not share or carry the cache.
	c := w.Clone()
	if got := c.Pairs(); len(got) != 4 {
		t.Fatalf("clone pairs %v", got)
	}
}

func TestPairsSurvivesDirectCompsMutation(t *testing.T) {
	// The push/pop pattern of search.DeBruijnHolds: direct append to
	// the exported Comps field, truncate, then append a DIFFERENT
	// comparator of the same length. The validated cache must never
	// serve the old sequence.
	w := New(4).AddPair(0, 1)
	w.Comps = append(w.Comps, Comparator{A: 1, B: 2})
	_ = w.Pairs() // cache [0,1][1,2]
	w.Comps = w.Comps[:1]
	w.Comps = append(w.Comps, Comparator{A: 2, B: 3})
	p := w.Pairs()
	if len(p) != 2 || p[1] != [2]int{2, 3} {
		t.Fatalf("stale pairs after same-length mutation: %v", p)
	}
	// In-place overwrite of an interior element.
	w.Comps[0] = Comparator{A: 0, B: 3}
	if q := w.Pairs(); q[0] != [2]int{0, 3} {
		t.Fatalf("stale pairs after in-place overwrite: %v", q)
	}
}

func TestApplyWideUsesCachedPairs(t *testing.T) {
	w := New(3).AddPair(0, 2).AddPair(0, 1).AddPair(1, 2)
	v := widevec.MustFromString("110")
	out := w.ApplyWide(v)
	if out.String() != "011" {
		t.Fatalf("wide output %s, want 011", out)
	}
	// Second application reuses the cache and must agree.
	if again := w.ApplyWide(v); !again.Equal(out) {
		t.Error("cached wide application diverged")
	}
}
