package network

import (
	"fmt"

	"sortnets/internal/widevec"
)

// Wide-width evaluation: networks themselves have no width limit (the
// integer path works at any n); this file adds the packed binary path
// for n > 64 lines via package widevec, the regime where only the
// paper's polynomial test sets are feasible.

// ApplyWide routes a wide binary vector through the network.
func (w *Network) ApplyWide(v widevec.Vec) widevec.Vec {
	if v.N() != w.N {
		panic(fmt.Sprintf("network: wide input has %d lines, want %d", v.N(), w.N))
	}
	pairs := make([][2]int, len(w.Comps))
	for i, c := range w.Comps {
		pairs[i] = [2]int{c.A, c.B}
	}
	return v.ApplyComparators(pairs)
}

// Pairs exposes the comparator sequence as plain line pairs, the form
// widevec consumes; callers doing repeated wide evaluation should
// cache this instead of re-calling ApplyWide.
func (w *Network) Pairs() [][2]int {
	pairs := make([][2]int, len(w.Comps))
	for i, c := range w.Comps {
		pairs[i] = [2]int{c.A, c.B}
	}
	return pairs
}
