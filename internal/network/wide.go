package network

import (
	"fmt"

	"sortnets/internal/widevec"
)

// Wide-width evaluation: networks themselves have no width limit (the
// integer path works at any n); this file adds the packed binary path
// for n > 64 lines via package widevec, the regime where only the
// paper's polynomial test sets are feasible. Repeated wide evaluation
// should go through the compiled engine (internal/eval), which also
// layers the schedule; these entry points remain for one-shot use and
// now share the cached pair form instead of re-extracting it per call.

// ApplyWide routes a wide binary vector through the network using the
// cached compiled pair slice.
func (w *Network) ApplyWide(v widevec.Vec) widevec.Vec {
	if v.N() != w.N {
		panic(fmt.Sprintf("network: wide input has %d lines, want %d", v.N(), w.N))
	}
	return v.ApplyComparators(w.Pairs())
}

// Pairs exposes the comparator sequence as plain line pairs, the form
// widevec consumes, in firing order. The compiled form is built on
// first use and cached on the network; every hit is validated against
// Comps element by element (an O(size) scan with no allocation — the
// evaluation it feeds is O(size) anyway), so even direct mutation of
// the exported Comps field can never serve stale pairs. Reads and the
// cache store are atomic, so concurrent Pairs/ApplyWide calls are
// safe provided no goroutine is concurrently mutating the network
// itself. The returned slice is shared — treat it as read-only.
func (w *Network) Pairs() [][2]int {
	if p := w.pairs.Load(); p != nil && pairsMatch(*p, w.Comps) {
		return *p
	}
	pairs := make([][2]int, len(w.Comps))
	for i, c := range w.Comps {
		pairs[i] = [2]int{c.A, c.B}
	}
	w.pairs.Store(&pairs)
	return pairs
}

func pairsMatch(pairs [][2]int, comps []Comparator) bool {
	if len(pairs) != len(comps) {
		return false
	}
	for i, c := range comps {
		if pairs[i][0] != c.A || pairs[i][1] != c.B {
			return false
		}
	}
	return true
}
