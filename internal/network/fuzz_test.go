package network

import (
	"testing"
)

// FuzzParse exercises the text-format parser: no input may panic, and
// every accepted network must validate and round-trip through its
// Format rendering.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"n=4: [1,3][2,4][1,2][3,4]",
		"n=2:",
		"[1,2]",
		"n=0:",
		"n=4 [1,2]",
		"n=x: [1,2]",
		"[2,1]",
		"[1,2][",
		"[1]",
		"[1,2,3]",
		"[ 1 , 64 ]",
		"n=100000000: [1,2]",
		"n=-3: [1,2]",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		w, err := Parse(s)
		if err != nil {
			return
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("Parse(%q) accepted invalid network: %v", s, err)
		}
		again, err := Parse(w.Format())
		if err != nil {
			t.Fatalf("Format(%q) does not re-parse: %v", s, err)
		}
		if again.N != w.N || again.Size() != w.Size() {
			t.Fatalf("round trip changed shape for %q", s)
		}
		for i := range w.Comps {
			if w.Comps[i] != again.Comps[i] {
				t.Fatalf("round trip changed comparator %d for %q", i, s)
			}
		}
	})
}

// FuzzJSON exercises the JSON decoder the same way.
func FuzzJSON(f *testing.F) {
	seeds := []string{
		`{"lines":4,"comparators":[[1,3],[2,4]]}`,
		`{"lines":2,"comparators":[]}`,
		`{"lines":2,"comparators":[[2,1]]}`,
		`{"lines":-1}`,
		`{}`,
		`[]`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var w Network
		if err := w.UnmarshalJSON(data); err != nil {
			return
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("UnmarshalJSON accepted invalid network from %q: %v", data, err)
		}
	})
}
