package network

import (
	"math/rand"
	"testing"

	"sortnets/internal/bitvec"
)

// TestWideBatchLaneRoundTrip: SetLane/Lane must round-trip every lane
// position at every supported width, including the high words.
func TestWideBatchLaneRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, w := range []int{1, 4, 8} {
		n := 1 + rng.Intn(30)
		b := NewWideBatch(n, w)
		vecs := make([]bitvec.Vec, 64*w)
		for lane := range vecs {
			vecs[lane] = bitvec.New(n, rng.Uint64()&(uint64(1)<<uint(n)-1))
			b.SetLane(lane, vecs[lane])
		}
		for lane, want := range vecs {
			if got := b.Lane(lane); got != want {
				t.Fatalf("W=%d n=%d lane %d: got %s, want %s", w, n, lane, got, want)
			}
		}
		if b.Lanes != 64*w {
			t.Fatalf("W=%d: Lanes = %d, want %d", w, b.Lanes, 64*w)
		}
	}
}

// TestApplyWideBatchMatchesApplyVec: pushing 64·W random vectors
// through ApplyWideBatch must equal the scalar reference evaluator on
// every lane.
func TestApplyWideBatchMatchesApplyVec(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(15)
		net := Random(n, rng.Intn(4*n), rng)
		for _, w := range []int{1, 4, 8} {
			b := NewWideBatch(n, w)
			ins := make([]bitvec.Vec, 64*w)
			for lane := range ins {
				ins[lane] = bitvec.New(n, rng.Uint64()&(uint64(1)<<uint(n)-1))
				b.SetLane(lane, ins[lane])
			}
			net.ApplyWideBatch(b)
			for lane, in := range ins {
				if got, want := b.Lane(lane), net.ApplyVec(in); got != want {
					t.Fatalf("trial %d W=%d lane %d: ApplyWideBatch %s, ApplyVec %s (net %s)",
						trial, w, lane, got, want, net.Format())
				}
			}
		}
	}
}

// TestWideUnsortedLanes: the word-vector violation mask must agree
// with the scalar IsSorted on every occupied lane and stay clear
// beyond Lanes.
func TestWideUnsortedLanes(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	viol := make([]uint64, 8)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(30)
		for _, w := range []int{1, 4, 8} {
			b := NewWideBatch(n, w)
			occupied := 1 + rng.Intn(64*w)
			vecs := make([]bitvec.Vec, occupied)
			for lane := range vecs {
				vecs[lane] = bitvec.New(n, rng.Uint64()&(uint64(1)<<uint(n)-1))
				b.SetLane(lane, vecs[lane])
			}
			b.Lanes = occupied
			b.UnsortedLanes(viol[:w])
			for lane := 0; lane < 64*w; lane++ {
				got := viol[lane>>6]>>uint(lane&63)&1 == 1
				want := lane < occupied && !vecs[lane].IsSorted()
				if got != want {
					t.Fatalf("trial %d W=%d n=%d occupied=%d lane %d: violation=%v, want %v",
						trial, w, n, occupied, lane, got, want)
				}
			}
		}
	}
}

// TestMaskLanes: every lane at or above the count must clear, every
// lane below must survive.
func TestMaskLanes(t *testing.T) {
	for _, w := range []int{1, 4, 8} {
		for _, lanes := range []int{1, 63, 64, 65, 64*w - 1, 64 * w} {
			if lanes > 64*w {
				continue
			}
			mask := make([]uint64, w)
			for g := range mask {
				mask[g] = ^uint64(0)
			}
			MaskLanes(mask, lanes)
			for lane := 0; lane < 64*w; lane++ {
				got := mask[lane>>6]>>uint(lane&63)&1 == 1
				if got != (lane < lanes) {
					t.Fatalf("W=%d lanes=%d: bit %d = %v", w, lanes, lane, got)
				}
			}
		}
	}
}
