package network

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Text format. A network is written in the paper's notation with
// 1-based lines, optionally prefixed by an explicit line count:
//
//	n=4: [1,3][2,4][1,2][3,4]
//	[1,3][2,4][1,2][3,4]
//
// Without the prefix the line count is inferred as the largest line
// mentioned (lines beyond that cannot be distinguished from absent
// ones, so explicit n is preferred in files). Whitespace between
// comparators is ignored. The paper's Fig. 1 network is the example
// above.

// String renders the network in the paper's notation without the n=
// prefix, e.g. "[1,3][2,4][1,2][3,4]".
func (w *Network) String() string {
	var sb strings.Builder
	for _, c := range w.Comps {
		sb.WriteString(c.String())
	}
	if sb.Len() == 0 {
		return "(empty)"
	}
	return sb.String()
}

// Format renders the network with the explicit n= prefix, suitable for
// files read back by Parse.
func (w *Network) Format() string {
	if len(w.Comps) == 0 {
		return fmt.Sprintf("n=%d:", w.N)
	}
	return fmt.Sprintf("n=%d: %s", w.N, w.String())
}

// Parse reads the text format. An explicit "n=<k>:" prefix fixes the
// line count; otherwise it is inferred from the largest line used.
func Parse(s string) (*Network, error) {
	s = strings.TrimSpace(s)
	n := -1
	if strings.HasPrefix(s, "n=") {
		colon := strings.Index(s, ":")
		if colon < 0 {
			return nil, fmt.Errorf("network: missing ':' after n= prefix in %q", s)
		}
		v, err := strconv.Atoi(strings.TrimSpace(s[2:colon]))
		if err != nil {
			return nil, fmt.Errorf("network: bad line count in %q: %v", s, err)
		}
		n = v
		s = strings.TrimSpace(s[colon+1:])
	}
	var comps []Comparator
	maxLine := 0
	for len(s) > 0 {
		if s[0] != '[' {
			return nil, fmt.Errorf("network: expected '[' at %q", s)
		}
		close := strings.IndexByte(s, ']')
		if close < 0 {
			return nil, fmt.Errorf("network: unterminated comparator in %q", s)
		}
		body := s[1:close]
		parts := strings.Split(body, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("network: comparator %q must have two lines", body)
		}
		a, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fmt.Errorf("network: bad line %q: %v", parts[0], err)
		}
		b, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("network: bad line %q: %v", parts[1], err)
		}
		if a < 1 || b < 1 {
			return nil, fmt.Errorf("network: lines are 1-based, got [%d,%d]", a, b)
		}
		if a >= b {
			return nil, fmt.Errorf("network: nonstandard comparator [%d,%d] (need a < b)", a, b)
		}
		comps = append(comps, Comparator{A: a - 1, B: b - 1})
		if b > maxLine {
			maxLine = b
		}
		s = strings.TrimSpace(s[close+1:])
	}
	if n < 0 {
		n = maxLine
	}
	w := &Network{N: n, Comps: comps}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// MustParse is Parse panicking on error, for fixtures and tests.
func MustParse(s string) *Network {
	w, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return w
}

// jsonNetwork is the wire representation: 1-based line pairs to match
// the text format and the paper.
type jsonNetwork struct {
	Lines       int      `json:"lines"`
	Comparators [][2]int `json:"comparators"`
}

// MarshalJSON encodes the network with 1-based lines.
func (w *Network) MarshalJSON() ([]byte, error) {
	j := jsonNetwork{Lines: w.N, Comparators: make([][2]int, len(w.Comps))}
	for i, c := range w.Comps {
		j.Comparators[i] = [2]int{c.A + 1, c.B + 1}
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes and validates the 1-based wire form.
func (w *Network) UnmarshalJSON(data []byte) error {
	var j jsonNetwork
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	w.N = j.Lines
	w.Comps = make([]Comparator, len(j.Comparators))
	for i, p := range j.Comparators {
		w.Comps[i] = Comparator{A: p[0] - 1, B: p[1] - 1}
	}
	return w.Validate()
}
