package network

import (
	"fmt"
	"math/bits"

	"sortnets/internal/bitvec"
)

// Batch evaluates a comparator network on up to 64 binary inputs
// simultaneously. The transposed layout stores one word per *line*;
// bit j of Lines[i] is the value on line i in lane j. In this layout a
// standard comparator [a,b] on 0/1 data is
//
//	Lines[a], Lines[b] = Lines[a] AND Lines[b], Lines[a] OR Lines[b]
//
// because min(x,y) = x∧y and max(x,y) = x∨y on bits. Two machine
// instructions thus advance 64 test vectors through one comparator —
// the bit-parallel trick that lets the experiment harness sweep the
// full 2^n universe and the 2^n−n−1 test set at word speed.
type Batch struct {
	N     int      // lines
	Lanes int      // occupied lanes, 1..64
	Lines []uint64 // Lines[i] bit j = value on line i in lane j
}

// LanesPerBatch is the lane capacity of one Batch.
const LanesPerBatch = 64

// NewBatch returns an empty batch for n lines.
func NewBatch(n int) *Batch {
	return &Batch{N: n, Lines: make([]uint64, n)}
}

// LoadVecs fills a batch from at most 64 vectors of length n.
func LoadVecs(n int, vs []bitvec.Vec) *Batch {
	if len(vs) > LanesPerBatch {
		panic(fmt.Sprintf("network: %d vectors exceed %d lanes", len(vs), LanesPerBatch))
	}
	b := NewBatch(n)
	for lane, v := range vs {
		b.SetLane(lane, v)
	}
	b.Lanes = len(vs)
	return b
}

// SetLane installs vector v in the given lane (transposing it into the
// per-line words).
func (b *Batch) SetLane(lane int, v bitvec.Vec) {
	if v.N != b.N {
		panic(fmt.Sprintf("network: lane vector length %d, want %d", v.N, b.N))
	}
	if lane < 0 || lane >= LanesPerBatch {
		panic(fmt.Sprintf("network: lane %d out of range", lane))
	}
	mask := uint64(1) << uint(lane)
	for i := 0; i < b.N; i++ {
		if v.Bit(i) == 1 {
			b.Lines[i] |= mask
		} else {
			b.Lines[i] &^= mask
		}
	}
	if lane >= b.Lanes {
		b.Lanes = lane + 1
	}
}

// Lane extracts the vector currently in the given lane.
func (b *Batch) Lane(lane int) bitvec.Vec {
	var w uint64
	for i := 0; i < b.N; i++ {
		w |= (b.Lines[i] >> uint(lane) & 1) << uint(i)
	}
	return bitvec.New(b.N, w)
}

// ApplyBatch advances all lanes of the batch through the network in
// place: one AND and one OR per comparator for all 64 lanes at once.
func (w *Network) ApplyBatch(b *Batch) {
	if b.N != w.N {
		panic(fmt.Sprintf("network: batch has %d lines, want %d", b.N, w.N))
	}
	lines := b.Lines
	for _, c := range w.Comps {
		x, y := lines[c.A], lines[c.B]
		lines[c.A] = x & y
		lines[c.B] = x | y
	}
}

// UnsortedLanes returns a bitmask of the occupied lanes whose current
// contents are NOT sorted. After ApplyBatch this identifies, in one
// pass, every test vector the network failed. A lane is sorted when its
// per-line reading is 0^a 1^b, i.e. once a line carries 1 every later
// line does too; the scan tracks, per lane, whether a 1 has been seen
// (ones) and flags lanes where a 0 follows (viol).
func (b *Batch) UnsortedLanes() uint64 {
	var ones, viol uint64
	for i := 0; i < b.N; i++ {
		w := b.Lines[i]
		viol |= ones &^ w // a lane that already saw 1 now sees 0
		ones |= w
	}
	if b.Lanes < LanesPerBatch {
		viol &= uint64(1)<<uint(b.Lanes) - 1
	}
	return viol
}

// SortsAllBinary reports whether the network sorts every one of the 2^n
// binary inputs — the zero-one-principle criterion for being a sorter —
// by sweeping the universe 64 lanes at a time. For n ≥ 6 the lane
// loading itself is done wholesale: lane j of block k holds input
// 64k+j, whose line-i bit pattern across 64 consecutive inputs is
// either constant (i ≥ 6) or one of six fixed masks (i < 6).
func (w *Network) SortsAllBinary() bool {
	return w.FirstBinaryFailure() == (bitvec.Vec{N: -1})
}

// FirstBinaryFailure returns the smallest (in word order) binary input
// the network fails to sort, or a sentinel Vec with N = -1 if the
// network sorts everything. The sentinel keeps the hot path free of
// (Vec, bool) tuple returns.
func (w *Network) FirstBinaryFailure() bitvec.Vec {
	n := w.N
	if n == 0 {
		return bitvec.Vec{N: -1}
	}
	total := uint64(bitvec.Universe(n))
	b := NewBatch(n)
	b.Lanes = LanesPerBatch
	if total < LanesPerBatch {
		b.Lanes = int(total)
	}
	for base := uint64(0); base < total; base += LanesPerBatch {
		loadConsecutive(b, base)
		w.ApplyBatch(b)
		if total-base < LanesPerBatch {
			b.Lanes = int(total - base)
		}
		if viol := b.UnsortedLanes(); viol != 0 {
			lane := bits.TrailingZeros64(viol)
			return bitvec.New(n, base+uint64(lane))
		}
	}
	return bitvec.Vec{N: -1}
}

// BinaryFailures sweeps the whole binary universe and returns every
// input the network fails to sort, in increasing word order, stopping
// early once max failures are found (max ≤ 0 means unlimited). The
// failure set of an almost-sorter H_σ is exactly {σ}, the property
// Lemma 2.1 is built on; the verification engine uses this to
// characterize how far an arbitrary network is from any property.
func (w *Network) BinaryFailures(max int) []bitvec.Vec {
	n := w.N
	var fails []bitvec.Vec
	if n == 0 {
		return nil
	}
	total := uint64(bitvec.Universe(n))
	b := NewBatch(n)
	b.Lanes = LanesPerBatch
	if total < LanesPerBatch {
		b.Lanes = int(total)
	}
	for base := uint64(0); base < total; base += LanesPerBatch {
		loadConsecutive(b, base)
		w.ApplyBatch(b)
		viol := b.UnsortedLanes()
		for viol != 0 {
			lane := bits.TrailingZeros64(viol)
			viol &^= 1 << uint(lane)
			fails = append(fails, bitvec.New(n, base+uint64(lane)))
			if max > 0 && len(fails) >= max {
				return fails
			}
		}
	}
	return fails
}

// laneMasks[i] is the bit pattern of input-bit i across inputs
// base..base+63 when base is a multiple of 64, for i < 6.
var laneMasks = [6]uint64{
	0xAAAAAAAAAAAAAAAA, // bit 0 alternates every input
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// loadConsecutive fills the batch with inputs base..base+63 (base a
// multiple of 64) without per-lane transposition.
func loadConsecutive(b *Batch, base uint64) {
	for i := 0; i < b.N; i++ {
		if i < 6 {
			b.Lines[i] = laneMasks[i]
		} else if base>>uint(i)&1 == 1 {
			b.Lines[i] = ^uint64(0)
		} else {
			b.Lines[i] = 0
		}
	}
}
