package network

import (
	"math/rand"
	"testing"

	"sortnets/internal/bitvec"
	"sortnets/internal/widevec"
)

func benchSorter16() *Network {
	// Batcher's 16-line network, inlined to avoid importing gen
	// (which would create an import cycle in benchmarks).
	w := New(16)
	var sortRange func(lo, n int)
	var mergeRange func(p []int, m int)
	mergeRange = func(p []int, m int) {
		n := len(p) - m
		if m == 0 || n == 0 {
			return
		}
		if m == 1 && n == 1 {
			w.AddPair(p[0], p[1])
			return
		}
		var po, pe []int
		for i := 0; i < m; i += 2 {
			po = append(po, p[i])
		}
		for i := 1; i < m; i += 2 {
			pe = append(pe, p[i])
		}
		mo := len(po)
		for i := m; i < len(p); i += 2 {
			po = append(po, p[i])
		}
		for i := m + 1; i < len(p); i += 2 {
			pe = append(pe, p[i])
		}
		mergeRange(po, mo)
		mergeRange(pe, m/2)
		for i := 1; i <= len(pe) && i < len(po); i++ {
			a, b := pe[i-1], po[i]
			if a > b {
				a, b = b, a
			}
			w.AddPair(a, b)
		}
	}
	sortRange = func(lo, n int) {
		if n <= 1 {
			return
		}
		m := (n + 1) / 2
		sortRange(lo, m)
		sortRange(lo+m, n-m)
		p := make([]int, n)
		for i := range p {
			p[i] = lo + i
		}
		mergeRange(p, m)
	}
	sortRange(0, 16)
	return w
}

// BenchmarkApplyVec measures single-vector evaluation: two bit ops
// per comparator.
func BenchmarkApplyVec(b *testing.B) {
	w := benchSorter16()
	v := bitvec.MustFromString("1010101010101010")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w.ApplyVec(v).N != 16 {
			b.Fatal("bad output")
		}
	}
}

// BenchmarkApplyInts measures the integer path used for permutations.
func BenchmarkApplyInts(b *testing.B) {
	w := benchSorter16()
	in := make([]int, 16)
	for i := range in {
		in[i] = 16 - i
	}
	buf := make([]int, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, in)
		w.ApplyInPlace(buf)
	}
}

// BenchmarkApplyBatch measures the 64-lane engine: one AND + one OR
// per comparator advances 64 vectors.
func BenchmarkApplyBatch(b *testing.B) {
	w := benchSorter16()
	rng := rand.New(rand.NewSource(1))
	var vs []bitvec.Vec
	for i := 0; i < 64; i++ {
		vs = append(vs, bitvec.New(16, rng.Uint64()&0xFFFF))
	}
	batch := LoadVecs(16, vs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ApplyBatch(batch)
	}
}

// BenchmarkSortsAllBinary measures the full 2^16 zero-one sweep.
func BenchmarkSortsAllBinary(b *testing.B) {
	w := benchSorter16()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !w.SortsAllBinary() {
			b.Fatal("sorter rejected")
		}
	}
}

// BenchmarkEquivalent measures semantic equivalence checking at n=16.
func BenchmarkEquivalent(b *testing.B) {
	x := benchSorter16()
	y := x.Compact()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Equivalent(x, y) {
			b.Fatal("compacted network inequivalent")
		}
	}
}

// BenchmarkDiagram measures ASCII rendering.
func BenchmarkDiagram(b *testing.B) {
	w := benchSorter16()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(w.Diagram()) == 0 {
			b.Fatal("empty diagram")
		}
	}
}

// BenchmarkApplyWideCachedPairs measures the wide path with the pair
// slice compiled once and cached on the network.
func BenchmarkApplyWideCachedPairs(b *testing.B) {
	w := benchSorter16()
	v := widevec.MustFromString("1010101010101010")
	w.Pairs() // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !w.ApplyWide(v).IsSorted() {
			b.Fatal("sorter failed")
		}
	}
}

// BenchmarkApplyWideRecomputedPairs is the pre-cache behaviour:
// re-extracting the pair slice on every call, the allocation the
// cached compiled form removes.
func BenchmarkApplyWideRecomputedPairs(b *testing.B) {
	w := benchSorter16()
	v := widevec.MustFromString("1010101010101010")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pairs := make([][2]int, len(w.Comps))
		for j, c := range w.Comps {
			pairs[j] = [2]int{c.A, c.B}
		}
		if !v.ApplyComparators(pairs).IsSorted() {
			b.Fatal("sorter failed")
		}
	}
}
