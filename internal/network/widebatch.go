package network

import (
	"fmt"

	"sortnets/internal/bitvec"
)

// WideBatch is the multi-word generalization of Batch: W words per
// line carry up to 64·W test vectors through the network at once. The
// layout is line-major — line i owns the W consecutive words
// Lines[i·W : (i+1)·W], and lane j lives in word j>>6 (bit j&63) of
// every line — so one comparator advances all 64·W lanes with W ANDs
// and W ORs over contiguous memory. W = 1 is exactly the classic
// Batch layout; the evaluation engine selects W from the configured
// kernel width (64, 256 or 512 lanes).
type WideBatch struct {
	N     int      // lines
	W     int      // words per line (1, 4 or 8)
	Lanes int      // occupied lanes, 1..64·W
	Lines []uint64 // line i at [i*W, (i+1)*W)
}

// NewWideBatch returns an empty batch for n lines and w words per
// line (capacity 64·w lanes).
func NewWideBatch(n, w int) *WideBatch {
	if w < 1 {
		panic(fmt.Sprintf("network: %d words per line invalid", w))
	}
	return &WideBatch{N: n, W: w, Lines: make([]uint64, n*w)}
}

// Line returns line i's W words.
func (b *WideBatch) Line(i int) []uint64 { return b.Lines[i*b.W : (i+1)*b.W] }

// SetLane installs vector v in the given lane (transposing it into
// the per-line words).
func (b *WideBatch) SetLane(lane int, v bitvec.Vec) {
	if v.N != b.N {
		panic(fmt.Sprintf("network: lane vector length %d, want %d", v.N, b.N))
	}
	if lane < 0 || lane >= 64*b.W {
		panic(fmt.Sprintf("network: lane %d out of range", lane))
	}
	word, mask := lane>>6, uint64(1)<<uint(lane&63)
	for i := 0; i < b.N; i++ {
		if v.Bit(i) == 1 {
			b.Lines[i*b.W+word] |= mask
		} else {
			b.Lines[i*b.W+word] &^= mask
		}
	}
	if lane >= b.Lanes {
		b.Lanes = lane + 1
	}
}

// Lane extracts the vector currently in the given lane.
func (b *WideBatch) Lane(lane int) bitvec.Vec {
	word, shift := lane>>6, uint(lane&63)
	var w uint64
	for i := 0; i < b.N; i++ {
		w |= (b.Lines[i*b.W+word] >> shift & 1) << uint(i)
	}
	return bitvec.New(b.N, w)
}

// UnsortedLanes writes, into viol (length ≥ W), the per-word bitmask
// of occupied lanes whose current contents are NOT sorted — the
// word-vector lift of Batch.UnsortedLanes. The scan is the same 0^a
// 1^b criterion, run on W lane-words at a time.
func (b *WideBatch) UnsortedLanes(viol []uint64) {
	W := b.W
	viol = viol[:W]
	var onesArr [8]uint64
	ones := onesArr[:]
	if W > len(ones) {
		ones = make([]uint64, W)
	}
	ones = ones[:W]
	for g := range viol {
		viol[g], ones[g] = 0, 0
	}
	for i := 0; i < b.N; i++ {
		row := b.Lines[i*W : i*W+W]
		for g, w := range row {
			viol[g] |= ones[g] &^ w
			ones[g] |= w
		}
	}
	MaskLanes(viol, b.Lanes)
}

// MaskLanes clears every bit of the word-vector mask at or above the
// given lane count — the multi-word form of masking a uint64 to the
// occupied lanes.
func MaskLanes(mask []uint64, lanes int) {
	full, rem := lanes>>6, lanes&63
	if rem != 0 {
		mask[full] &= uint64(1)<<uint(rem) - 1
		full++
	}
	for g := full; g < len(mask); g++ {
		mask[g] = 0
	}
}

// ApplyWideBatch advances all lanes through the network in place: W
// ANDs and W ORs per comparator. (The compiled engine has unrolled
// per-width kernels; this is the reference form for the network
// type itself.)
func (w *Network) ApplyWideBatch(b *WideBatch) {
	if b.N != w.N {
		panic(fmt.Sprintf("network: batch has %d lines, want %d", b.N, w.N))
	}
	W := b.W
	lines := b.Lines
	for _, c := range w.Comps {
		la := lines[c.A*W : c.A*W+W]
		lb := lines[c.B*W : c.B*W+W]
		for g := 0; g < W; g++ {
			x, y := la[g], lb[g]
			la[g] = x & y
			lb[g] = x | y
		}
	}
}
