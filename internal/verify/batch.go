package verify

import (
	"fmt"
	"math/bits"

	"sortnets/internal/bitvec"
	"sortnets/internal/network"
)

// Batch verdicts: 64-lane bit-parallel versions of the property
// engines. The scalar engines (verify.go) stream one vector at a
// time; here a whole word of test vectors advances per comparator,
// which is what makes exhaustive cross-checks at n = 20+ routine.
// The ablation benchmarks measure the two engines against each other.

// batchAccepts judges all lanes of an evaluated batch at once,
// returning a bitmask of REJECTED lanes. in holds the pre-evaluation
// lane contents (needed by selector and merger).
type batchAccepts func(in, out *network.Batch) uint64

// sorterRejects flags lanes whose outputs are not sorted.
func sorterRejects(in, out *network.Batch) uint64 {
	return out.UnsortedLanes()
}

// selectorRejects flags lanes whose first k output lines differ from
// the first k lines of the sorted input. The expected prefix depends
// on each lane's zero count, which has no cheap word-parallel form,
// so acceptance is judged per lane; the batch still wins because the
// network evaluation — the expensive part — is word-parallel.
func selectorRejects(k int) batchAccepts {
	return func(in, out *network.Batch) uint64 {
		var bad uint64
		for lane := 0; lane < in.Lanes; lane++ {
			inV := in.Lane(lane)
			outV := out.Lane(lane)
			want := inV.Sorted()
			mask := uint64(1)<<uint(k) - 1
			if outV.Bits&mask != want.Bits&mask {
				bad |= 1 << uint(lane)
			}
		}
		return bad
	}
}

// mergerRejects flags lanes with sorted halves whose outputs are not
// sorted; out-of-contract lanes are accepted.
func mergerRejects(n int) batchAccepts {
	h := n / 2
	return func(in, out *network.Batch) uint64 {
		unsorted := out.UnsortedLanes()
		if unsorted == 0 {
			return 0
		}
		// Filter to in-contract lanes.
		var inContract uint64
		for lane := 0; lane < in.Lanes; lane++ {
			v := in.Lane(lane)
			if v.Slice(0, h).IsSorted() && v.Slice(h, n).IsSorted() {
				inContract |= 1 << uint(lane)
			}
		}
		return unsorted & inContract
	}
}

// VerdictBatch runs a property's minimal test set through the 64-lane
// engine. Semantically identical to Verdict; the counterexample
// reported is the first failing lane of the first failing block.
func VerdictBatch(w *network.Network, p Property) Result {
	return runBatch(w, p, p.BinaryTests())
}

// GroundTruthBatch is the 64-lane exhaustive sweep.
func GroundTruthBatch(w *network.Network, p Property) Result {
	return runBatch(w, p, p.ExhaustiveBinary())
}

func runBatch(w *network.Network, p Property, it bitvec.Iterator) Result {
	if w.N != p.Lines() {
		panic(fmt.Sprintf("verify: network has %d lines, property wants %d", w.N, p.Lines()))
	}
	var rejects batchAccepts
	switch prop := p.(type) {
	case Sorter:
		rejects = sorterRejects
	case Selector:
		rejects = selectorRejects(prop.K)
	case Merger:
		rejects = mergerRejects(prop.N)
	default:
		// Unknown property: fall back to the scalar engine.
		return run(w, p, it)
	}

	n := w.N
	in := network.NewBatch(n)
	out := network.NewBatch(n)
	tests := 0
	for {
		// Fill up to 64 lanes.
		var lanes []bitvec.Vec
		for len(lanes) < network.LanesPerBatch {
			v, ok := it.Next()
			if !ok {
				break
			}
			lanes = append(lanes, v)
		}
		if len(lanes) == 0 {
			return Result{Holds: true, TestsRun: tests}
		}
		tests += len(lanes)
		reload(in, n, lanes)
		reload(out, n, lanes)
		w.ApplyBatch(out)
		if bad := rejects(in, out); bad != 0 {
			lane := bits.TrailingZeros64(bad)
			return Result{
				Holds:          false,
				TestsRun:       tests,
				Counterexample: lanes[lane],
				Output:         out.Lane(lane),
			}
		}
	}
}

// reload refills a batch in place (avoiding per-block allocation).
func reload(b *network.Batch, n int, lanes []bitvec.Vec) {
	for i := range b.Lines {
		b.Lines[i] = 0
	}
	b.Lanes = 0
	for i, v := range lanes {
		b.SetLane(i, v)
	}
}
