package verify

import (
	"math/bits"

	"sortnets/internal/eval"
	"sortnets/internal/network"
)

// Property-to-judge lowering: each built-in property compiles to a
// word-parallel eval.Judge so the whole 64-lane block is judged with
// a handful of word ops; unknown properties fall back to the per-lane
// adapter (the network evaluation — the expensive part — stays
// word-parallel either way).

// JudgeFor exposes the lowering for callers that stream custom test
// families through an engine themselves (the Session's test-stream
// override).
func JudgeFor(p Property) eval.Judge { return judgeFor(p) }

func judgeFor(p Property) eval.Judge {
	switch prop := p.(type) {
	case Sorter:
		return eval.SortedJudge()
	case Merger:
		return mergerJudge(prop.N)
	default:
		// Selector (whose expected prefix depends on each lane's zero
		// count, with no cheap word-parallel form) and any custom
		// property are judged per lane through the one acceptance
		// definition in AcceptsBinary — the evaluation stays
		// word-parallel either way.
		return eval.PerLaneJudge(p.AcceptsBinary)
	}
}

// mergerJudge rejects in-contract lanes (both input halves sorted)
// whose outputs are not sorted; out-of-contract lanes are accepted
// vacuously. The common all-lanes-sorted case needs one word-parallel
// pass and no per-lane work at all, at any kernel width.
func mergerJudge(n int) eval.Judge {
	h := n / 2
	return eval.Judge{
		NeedsInput: true,
		Rejects: func(in, out *network.Batch) uint64 {
			unsorted := out.UnsortedLanes()
			if unsorted == 0 {
				return 0
			}
			var inContract uint64
			for lane := 0; lane < out.Lanes; lane++ {
				v := in.Lane(lane)
				if v.Slice(0, h).IsSorted() && v.Slice(h, n).IsSorted() {
					inContract |= 1 << uint(lane)
				}
			}
			return unsorted & inContract
		},
		RejectsWide: func(in, out *network.WideBatch, bad []uint64) {
			out.UnsortedLanes(bad)
			any := false
			for _, w := range bad {
				if w != 0 {
					any = true
					break
				}
			}
			if !any {
				return
			}
			// Per-lane contract check only on the rare unsorted lanes.
			for g, w := range bad {
				for w != 0 {
					lane := g*64 + bits.TrailingZeros64(w)
					w &= w - 1
					v := in.Lane(lane)
					if !(v.Slice(0, h).IsSorted() && v.Slice(h, n).IsSorted()) {
						bad[g] &^= 1 << uint(lane&63)
					}
				}
			}
		},
	}
}
