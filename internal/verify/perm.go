package verify

import (
	"context"

	"sortnets/internal/eval"
	"sortnets/internal/network"
	"sortnets/internal/perm"
)

// Batched permutation verdicts. A comparator network's action on an
// arbitrary input commutes with thresholding (the zero-one-principle
// correspondence the paper builds on), so the output on a permutation
// is determined position-wise by the outputs on its n−1 nontrivial
// threshold vectors. For the three paper properties the permutation
// acceptance decomposes exactly into the binary acceptance of every
// threshold:
//
//   - Sorter: the output permutation is sorted iff every threshold
//     output is sorted.
//   - Selector: out[i] = sorted[i] for i < k iff every threshold
//     output agrees with its sorted input on the first k bits — the
//     binary selector acceptance.
//   - Merger: an in-contract permutation (sorted halves) thresholds to
//     in-contract binary vectors, and its output is sorted iff every
//     threshold output is; out-of-contract permutations are accepted
//     vacuously and skipped.
//
// VerdictPerms therefore evaluates packed threshold batches on the
// compiled engine with the property's word-parallel binary judge
// instead of routing each permutation through the scalar ApplyInts
// loop. The batches are filled LINE-MAJOR straight from the
// permutation values — line i of a permutation with value v is set
// exactly on its top v−1 thresholds, one contiguous bit run — so the
// engine's 64×64 lane transpose is skipped entirely. The scalar loop
// survives as the fallback for custom properties, widths beyond the
// batch, and the (rare, already-failed) counterexample path, which
// re-runs it to report the exact stream-order counterexample.

// halvesSorted reports the merger contract on a permutation.
func halvesSorted(p perm.P) bool {
	h := len(p) / 2
	for i := 1; i < len(p); i++ {
		if i != h && p[i-1] > p[i] {
			return false
		}
	}
	return true
}

// VerdictPerms checks the property using its minimal permutation test
// set — the input model where Yao's observation makes testing cheaper
// than with binary strings. The network is compiled once; for the
// paper properties with n−1 ≤ 64 the permutations are judged through
// their threshold vectors on the word-parallel engine (see the
// package comment above), with the scalar loop as fallback.
func VerdictPerms(w *network.Network, p Property) PermResult {
	r, _ := VerdictPermsCtx(context.Background(), w, p)
	return r
}

func verdictPermsBatch(ctx context.Context, w *network.Network, p Property) (PermResult, error) {
	n := w.N
	tests := p.PermTests()
	judged := tests
	if _, ok := p.(Merger); ok {
		judged = judged[:0:0]
		for _, pm := range tests {
			if halvesSorted(pm) {
				judged = append(judged, pm)
			}
		}
	}
	prog := eval.Compile(w)
	judge := judgeFor(p)
	in := network.NewBatch(n)
	out := network.NewBatch(n)

	// Threshold t (1..n−1) of a permutation has bit i set iff
	// p[i] > n−t; packed perm-major with lane j = threshold j+1, line
	// i carries value v as the run of lanes j ≥ n−v. perBatch whole
	// permutations share a batch (lane granularity stays per-perm so
	// no permutation straddles a flush).
	spread := n - 1
	perBatch := network.LanesPerBatch / spread
	ones := ^uint64(0) >> uint(64-spread)
	flush := func(lanes int) bool {
		out.Lanes = lanes
		if judge.NeedsInput {
			copy(in.Lines, out.Lines)
			in.Lanes = lanes
		}
		prog.ApplyBatch(out)
		bad := judge.Rejects(in, out)
		if lanes < 64 {
			bad &= uint64(1)<<uint(lanes) - 1
		}
		for i := range out.Lines {
			out.Lines[i] = 0
		}
		return bad == 0
	}
	filled := 0
	for pi := 0; pi < len(judged); {
		base := filled * spread
		for i, v := range judged[pi] {
			// Lanes n−v..spread−1 of this permutation's window.
			out.Lines[i] |= (ones &^ (uint64(1)<<uint(n-v) - 1)) << uint(base)
		}
		filled++
		pi++
		if filled == perBatch || pi == len(judged) {
			if err := ctx.Err(); err != nil {
				return PermResult{}, err
			}
			if !flush(filled * spread) {
				// Some threshold failed, so some permutation test
				// fails: re-run the scalar loop for the exact
				// stream-order counterexample and count.
				return verdictPermsScalar(ctx, w, p)
			}
			filled = 0
		}
	}
	return PermResult{Holds: true, TestsRun: len(tests)}, nil
}

// verdictPermsScalar is the one-permutation-at-a-time loop (compiled
// program, in-place ApplyInts): the fallback for custom properties and
// wide networks, and the counterexample reporter.
func verdictPermsScalar(ctx context.Context, w *network.Network, p Property) (PermResult, error) {
	prog := eval.Compile(w)
	out := make([]int, w.N)
	tests := 0
	for _, pm := range p.PermTests() {
		if tests&63 == 0 {
			if err := ctx.Err(); err != nil {
				return PermResult{}, err
			}
		}
		tests++
		copy(out, pm)
		prog.ApplyInts(out)
		if !p.AcceptsInts(pm, out) {
			return PermResult{Holds: false, TestsRun: tests, Counterexample: pm,
				Output: append([]int(nil), out...)}, nil
		}
	}
	return PermResult{Holds: true, TestsRun: tests}, nil
}
