// Package verify is the property-testing engine of the reproduction:
// given an arbitrary comparator network and a property (sorter,
// (k,n)-selector, (n/2,n/2)-merger), it renders a verdict by running
// the paper's minimal test set — or the exhaustive universe as ground
// truth — and reports a counterexample when the property fails.
//
// The paper's central claim is operational here: Verdict (minimal test
// set) and GroundTruth (all 2ⁿ inputs) must always agree, while the
// test set is exponentially smaller for selectors with small k and
// quadratically smaller for mergers. The engines exploit the 64-lane
// bit-parallel evaluator and an optional goroutine pool.
package verify

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"sortnets/internal/bitvec"
	"sortnets/internal/core"
	"sortnets/internal/network"
	"sortnets/internal/perm"
)

// Property describes a decidable network property with a minimal
// binary test set, a minimal permutation test set, and an exhaustive
// binary universe for ground truth.
type Property interface {
	// Name is a short human-readable identifier, e.g. "sorter".
	Name() string
	// Lines is the number of input lines the property applies to.
	Lines() int
	// AcceptsBinary reports whether the observed output is correct
	// for the given binary input under this property.
	AcceptsBinary(in, out bitvec.Vec) bool
	// AcceptsInts reports whether the observed integer output is
	// correct for the given input (used for permutation tests).
	AcceptsInts(in, out []int) bool
	// BinaryTests streams the minimal 0/1 test set.
	BinaryTests() bitvec.Iterator
	// PermTests returns the minimal permutation test set.
	PermTests() []perm.P
	// ExhaustiveBinary streams every binary input relevant to the
	// property (the whole universe; restrictions are handled by
	// AcceptsBinary accepting out-of-contract inputs vacuously).
	ExhaustiveBinary() bitvec.Iterator
}

// Sorter is the sorting property on n lines (Theorem 2.2).
type Sorter struct{ N int }

// Name implements Property.
func (s Sorter) Name() string { return "sorter" }

// Lines implements Property.
func (s Sorter) Lines() int { return s.N }

// AcceptsBinary implements Property: the output must be sorted.
func (s Sorter) AcceptsBinary(in, out bitvec.Vec) bool { return out.IsSorted() }

// AcceptsInts implements Property.
func (s Sorter) AcceptsInts(in, out []int) bool { return sort.IntsAreSorted(out) }

// BinaryTests implements Property: all 2ⁿ−n−1 non-sorted strings.
func (s Sorter) BinaryTests() bitvec.Iterator { return core.SorterBinaryTests(s.N) }

// PermTests implements Property: the C(n,⌊n/2⌋)−1 chain permutations.
func (s Sorter) PermTests() []perm.P { return core.SorterPermTests(s.N) }

// ExhaustiveBinary implements Property.
func (s Sorter) ExhaustiveBinary() bitvec.Iterator { return bitvec.All(s.N) }

// Selector is the (k,n)-selector property (Theorem 2.4): output line i
// carries the (i+1)-st smallest input for all i < K.
type Selector struct{ N, K int }

// Name implements Property.
func (s Selector) Name() string { return fmt.Sprintf("(%d,%d)-selector", s.K, s.N) }

// Lines implements Property.
func (s Selector) Lines() int { return s.N }

// AcceptsBinary implements Property.
func (s Selector) AcceptsBinary(in, out bitvec.Vec) bool {
	want := in.Sorted()
	mask := uint64(1)<<uint(s.K) - 1
	return out.Bits&mask == want.Bits&mask
}

// AcceptsInts implements Property.
func (s Selector) AcceptsInts(in, out []int) bool {
	sorted := append([]int(nil), in...)
	sort.Ints(sorted)
	for i := 0; i < s.K; i++ {
		if out[i] != sorted[i] {
			return false
		}
	}
	return true
}

// BinaryTests implements Property: non-sorted strings with ≤ K zeros.
func (s Selector) BinaryTests() bitvec.Iterator { return core.SelectorBinaryTests(s.N, s.K) }

// PermTests implements Property.
func (s Selector) PermTests() []perm.P { return core.SelectorPermTests(s.N, s.K) }

// ExhaustiveBinary implements Property.
func (s Selector) ExhaustiveBinary() bitvec.Iterator { return bitvec.All(s.N) }

// Merger is the (n/2,n/2)-merging property (Theorem 2.5). Inputs whose
// halves are not sorted lie outside the contract and are accepted
// vacuously.
type Merger struct{ N int }

// Name implements Property.
func (m Merger) Name() string { return fmt.Sprintf("(%d,%d)-merger", m.N/2, m.N/2) }

// Lines implements Property.
func (m Merger) Lines() int { return m.N }

// AcceptsBinary implements Property.
func (m Merger) AcceptsBinary(in, out bitvec.Vec) bool {
	h := m.N / 2
	if !in.Slice(0, h).IsSorted() || !in.Slice(h, m.N).IsSorted() {
		return true
	}
	return out.IsSorted()
}

// AcceptsInts implements Property.
func (m Merger) AcceptsInts(in, out []int) bool {
	h := m.N / 2
	if !sort.IntsAreSorted(in[:h]) || !sort.IntsAreSorted(in[h:]) {
		return true
	}
	return sort.IntsAreSorted(out)
}

// BinaryTests implements Property: the n²/4 half-sorted strings.
func (m Merger) BinaryTests() bitvec.Iterator { return core.MergerBinaryTests(m.N) }

// PermTests implements Property: the n/2 permutations τᵢ.
func (m Merger) PermTests() []perm.P { return core.MergerPermTests(m.N) }

// ExhaustiveBinary implements Property.
func (m Merger) ExhaustiveBinary() bitvec.Iterator { return bitvec.All(m.N) }

// Result is the outcome of a binary-input check.
type Result struct {
	Holds          bool
	TestsRun       int
	Counterexample bitvec.Vec // valid only when !Holds
	Output         bitvec.Vec // network output on the counterexample
}

// String renders a one-line verdict.
func (r Result) String() string {
	if r.Holds {
		return fmt.Sprintf("holds (%d tests)", r.TestsRun)
	}
	return fmt.Sprintf("fails on %s -> %s (after %d tests)", r.Counterexample, r.Output, r.TestsRun)
}

// Verdict checks the property using its minimal binary test set,
// streaming tests through the network until the first failure.
func Verdict(w *network.Network, p Property) Result {
	return run(w, p, p.BinaryTests())
}

// GroundTruth checks the property against the entire binary universe —
// the exhaustive baseline the minimal test sets are measured against.
func GroundTruth(w *network.Network, p Property) Result {
	return run(w, p, p.ExhaustiveBinary())
}

func run(w *network.Network, p Property, it bitvec.Iterator) Result {
	if w.N != p.Lines() {
		panic(fmt.Sprintf("verify: network has %d lines, property wants %d", w.N, p.Lines()))
	}
	tests := 0
	for {
		v, ok := it.Next()
		if !ok {
			return Result{Holds: true, TestsRun: tests}
		}
		tests++
		out := w.ApplyVec(v)
		if !p.AcceptsBinary(v, out) {
			return Result{Holds: false, TestsRun: tests, Counterexample: v, Output: out}
		}
	}
}

// VerdictParallel is Verdict with a goroutine pool: the test stream is
// carved into chunks and judged concurrently. The first failure found
// is reported (not necessarily the first in stream order); workers
// drain promptly once any failure is flagged.
func VerdictParallel(w *network.Network, p Property, workers int) Result {
	return runParallel(w, p, p.BinaryTests(), workers)
}

// GroundTruthParallel is GroundTruth with a goroutine pool.
func GroundTruthParallel(w *network.Network, p Property, workers int) Result {
	return runParallel(w, p, p.ExhaustiveBinary(), workers)
}

const parallelChunk = 1024

func runParallel(w *network.Network, p Property, it bitvec.Iterator, workers int) Result {
	if w.N != p.Lines() {
		panic(fmt.Sprintf("verify: network has %d lines, property wants %d", w.N, p.Lines()))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type failure struct {
		in, out bitvec.Vec
	}
	chunks := make(chan []bitvec.Vec, workers)
	failures := make(chan failure, workers)
	stop := make(chan struct{})
	var stopOnce sync.Once

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for chunk := range chunks {
				for _, v := range chunk {
					out := w.ApplyVec(v)
					if !p.AcceptsBinary(v, out) {
						select {
						case failures <- failure{in: v, out: out}:
						default:
						}
						stopOnce.Do(func() { close(stop) })
						return
					}
				}
			}
		}()
	}

	tests := 0
feed:
	for {
		chunk := make([]bitvec.Vec, 0, parallelChunk)
		for len(chunk) < parallelChunk {
			v, ok := it.Next()
			if !ok {
				break
			}
			chunk = append(chunk, v)
		}
		if len(chunk) == 0 {
			break
		}
		tests += len(chunk)
		select {
		case chunks <- chunk:
		case <-stop:
			break feed
		}
	}
	close(chunks)
	wg.Wait()
	close(failures)
	if f, ok := <-failures; ok {
		return Result{Holds: false, TestsRun: tests, Counterexample: f.in, Output: f.out}
	}
	return Result{Holds: true, TestsRun: tests}
}

// PermResult is the outcome of a permutation-input check.
type PermResult struct {
	Holds          bool
	TestsRun       int
	Counterexample perm.P
	Output         []int
}

// String renders a one-line verdict.
func (r PermResult) String() string {
	if r.Holds {
		return fmt.Sprintf("holds (%d permutation tests)", r.TestsRun)
	}
	return fmt.Sprintf("fails on %s -> %v (after %d tests)", r.Counterexample, r.Output, r.TestsRun)
}

// VerdictPerms checks the property using its minimal permutation test
// set — the input model where Yao's observation makes testing cheaper
// than with binary strings.
func VerdictPerms(w *network.Network, p Property) PermResult {
	if w.N != p.Lines() {
		panic(fmt.Sprintf("verify: network has %d lines, property wants %d", w.N, p.Lines()))
	}
	tests := 0
	for _, pm := range p.PermTests() {
		tests++
		out := w.Apply(pm)
		if !p.AcceptsInts(pm, out) {
			return PermResult{Holds: false, TestsRun: tests, Counterexample: pm, Output: out}
		}
	}
	return PermResult{Holds: true, TestsRun: tests}
}

// GroundTruthPerms sweeps all n! permutations (small n only).
func GroundTruthPerms(w *network.Network, p Property) PermResult {
	it := perm.AllHeap(w.N)
	tests := 0
	for {
		pm, ok := it.Next()
		if !ok {
			return PermResult{Holds: true, TestsRun: tests}
		}
		tests++
		out := w.Apply(pm)
		if !p.AcceptsInts(pm, out) {
			return PermResult{Holds: false, TestsRun: tests, Counterexample: pm, Output: out}
		}
	}
}
