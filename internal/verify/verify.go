// Package verify is the property-testing engine of the reproduction:
// given an arbitrary comparator network and a property (sorter,
// (k,n)-selector, (n/2,n/2)-merger), it renders a verdict by running
// the paper's minimal test set — or the exhaustive universe as ground
// truth — and reports a counterexample when the property fails.
//
// The paper's central claim is operational here: Verdict (minimal test
// set) and GroundTruth (all 2ⁿ inputs) must always agree, while the
// test set is exponentially smaller for selectors with small k and
// quadratically smaller for mergers.
//
// All evaluation is delegated to the compiled engine of package eval:
// the network is compiled once into a layered Program, test vectors
// stream through 64 word-parallel lanes (or the widevec path beyond
// 64 lines), and the engine owns the worker pool. This package only
// maps properties to judges and shapes results.
package verify

import (
	"fmt"
	"sort"

	"sortnets/internal/bitvec"
	"sortnets/internal/core"
	"sortnets/internal/eval"
	"sortnets/internal/network"
	"sortnets/internal/perm"
	"sortnets/internal/widevec"
)

// Property describes a decidable network property with a minimal
// binary test set, a minimal permutation test set, and an exhaustive
// binary universe for ground truth.
type Property interface {
	// Name is a short human-readable identifier, e.g. "sorter".
	Name() string
	// Lines is the number of input lines the property applies to.
	Lines() int
	// AcceptsBinary reports whether the observed output is correct
	// for the given binary input under this property.
	AcceptsBinary(in, out bitvec.Vec) bool
	// AcceptsInts reports whether the observed integer output is
	// correct for the given input (used for permutation tests).
	AcceptsInts(in, out []int) bool
	// BinaryTests streams the minimal 0/1 test set.
	BinaryTests() bitvec.Iterator
	// PermTests returns the minimal permutation test set.
	PermTests() []perm.P
	// ExhaustiveBinary streams every binary input relevant to the
	// property (the whole universe; restrictions are handled by
	// AcceptsBinary accepting out-of-contract inputs vacuously).
	ExhaustiveBinary() bitvec.Iterator
}

// Sorter is the sorting property on n lines (Theorem 2.2).
type Sorter struct{ N int }

// Name implements Property.
func (s Sorter) Name() string { return "sorter" }

// Lines implements Property.
func (s Sorter) Lines() int { return s.N }

// AcceptsBinary implements Property: the output must be sorted.
func (s Sorter) AcceptsBinary(in, out bitvec.Vec) bool { return out.IsSorted() }

// AcceptsInts implements Property.
func (s Sorter) AcceptsInts(in, out []int) bool { return sort.IntsAreSorted(out) }

// BinaryTests implements Property: all 2ⁿ−n−1 non-sorted strings.
func (s Sorter) BinaryTests() bitvec.Iterator { return core.SorterBinaryTests(s.N) }

// PermTests implements Property: the C(n,⌊n/2⌋)−1 chain permutations.
func (s Sorter) PermTests() []perm.P { return core.SorterPermTests(s.N) }

// ExhaustiveBinary implements Property.
func (s Sorter) ExhaustiveBinary() bitvec.Iterator { return bitvec.All(s.N) }

// Selector is the (k,n)-selector property (Theorem 2.4): output line i
// carries the (i+1)-st smallest input for all i < K.
type Selector struct{ N, K int }

// Name implements Property.
func (s Selector) Name() string { return fmt.Sprintf("(%d,%d)-selector", s.K, s.N) }

// Lines implements Property.
func (s Selector) Lines() int { return s.N }

// AcceptsBinary implements Property.
func (s Selector) AcceptsBinary(in, out bitvec.Vec) bool {
	want := in.Sorted()
	mask := uint64(1)<<uint(s.K) - 1
	return out.Bits&mask == want.Bits&mask
}

// AcceptsInts implements Property.
func (s Selector) AcceptsInts(in, out []int) bool {
	sorted := append([]int(nil), in...)
	sort.Ints(sorted)
	for i := 0; i < s.K; i++ {
		if out[i] != sorted[i] {
			return false
		}
	}
	return true
}

// BinaryTests implements Property: non-sorted strings with ≤ K zeros.
func (s Selector) BinaryTests() bitvec.Iterator { return core.SelectorBinaryTests(s.N, s.K) }

// PermTests implements Property.
func (s Selector) PermTests() []perm.P { return core.SelectorPermTests(s.N, s.K) }

// ExhaustiveBinary implements Property.
func (s Selector) ExhaustiveBinary() bitvec.Iterator { return bitvec.All(s.N) }

// Merger is the (n/2,n/2)-merging property (Theorem 2.5). Inputs whose
// halves are not sorted lie outside the contract and are accepted
// vacuously.
type Merger struct{ N int }

// Name implements Property.
func (m Merger) Name() string { return fmt.Sprintf("(%d,%d)-merger", m.N/2, m.N/2) }

// Lines implements Property.
func (m Merger) Lines() int { return m.N }

// AcceptsBinary implements Property.
func (m Merger) AcceptsBinary(in, out bitvec.Vec) bool {
	h := m.N / 2
	if !in.Slice(0, h).IsSorted() || !in.Slice(h, m.N).IsSorted() {
		return true
	}
	return out.IsSorted()
}

// AcceptsInts implements Property.
func (m Merger) AcceptsInts(in, out []int) bool {
	h := m.N / 2
	if !sort.IntsAreSorted(in[:h]) || !sort.IntsAreSorted(in[h:]) {
		return true
	}
	return sort.IntsAreSorted(out)
}

// BinaryTests implements Property: the n²/4 half-sorted strings.
func (m Merger) BinaryTests() bitvec.Iterator { return core.MergerBinaryTests(m.N) }

// PermTests implements Property: the n/2 permutations τᵢ.
func (m Merger) PermTests() []perm.P { return core.MergerPermTests(m.N) }

// ExhaustiveBinary implements Property.
func (m Merger) ExhaustiveBinary() bitvec.Iterator { return bitvec.All(m.N) }

// Result is the outcome of a binary-input check.
type Result struct {
	Holds          bool
	TestsRun       int
	Counterexample bitvec.Vec // valid only when !Holds
	Output         bitvec.Vec // network output on the counterexample
}

// String renders a one-line verdict.
func (r Result) String() string {
	if r.Holds {
		return fmt.Sprintf("holds (%d tests)", r.TestsRun)
	}
	return fmt.Sprintf("fails on %s -> %s (after %d tests)", r.Counterexample, r.Output, r.TestsRun)
}

func fromVerdict(v eval.Verdict) Result {
	return Result{Holds: v.Holds, TestsRun: v.TestsRun, Counterexample: v.In, Output: v.Out}
}

func engineFor(w *network.Network, p Property, workers int) *eval.Engine {
	if w.N != p.Lines() {
		panic(fmt.Sprintf("verify: network has %d lines, property wants %d", w.N, p.Lines()))
	}
	return eval.New(eval.Compile(w), workers)
}

// wholesale reports whether the ground-truth sweep for p on an
// n-line circuit may use the engine's wholesale-loading universe
// path: one of the three paper properties (whose exhaustive universe
// is exactly all 2ⁿ inputs) within the width RunUniverse accepts.
// Wider networks fall back to streaming ExhaustiveBinary, which
// completes (slowly) at any n ≤ 64 rather than panicking.
func wholesale(n int, p Property) bool {
	if n > 30 {
		return false
	}
	switch p.(type) {
	case Sorter, Selector, Merger:
		return true
	}
	return false
}

// Verdict checks the property using its minimal binary test set,
// streaming tests through the compiled network until the first
// failure (reported in stream order).
func Verdict(w *network.Network, p Property) Result {
	return fromVerdict(engineFor(w, p, 1).Run(p.BinaryTests(), judgeFor(p)))
}

// VerdictProgram is Verdict for an already-compiled program — the
// cache-aware entry point: a caller that verifies many properties of
// one circuit (or the same circuit across many requests, like the
// serving layer) compiles once and reuses the program. Verdicts are
// deterministic: tests run in stream order on a single worker, so the
// reported counterexample is stable call-to-call.
func VerdictProgram(prog *eval.Program, p Property) Result {
	if prog.N() != p.Lines() {
		panic(fmt.Sprintf("verify: program has %d lines, property wants %d", prog.N(), p.Lines()))
	}
	return fromVerdict(eval.New(prog, 1).Run(p.BinaryTests(), judgeFor(p)))
}

// GroundTruth checks the property against the entire binary universe —
// the exhaustive baseline the minimal test sets are measured against.
func GroundTruth(w *network.Network, p Property) Result {
	e := engineFor(w, p, 1)
	if wholesale(w.N, p) {
		return fromVerdict(e.RunUniverse(judgeFor(p)))
	}
	return fromVerdict(e.Run(p.ExhaustiveBinary(), judgeFor(p)))
}

// GroundTruthProgram is GroundTruth for an already-compiled program
// (see VerdictProgram).
func GroundTruthProgram(prog *eval.Program, p Property) Result {
	if prog.N() != p.Lines() {
		panic(fmt.Sprintf("verify: program has %d lines, property wants %d", prog.N(), p.Lines()))
	}
	e := eval.New(prog, 1)
	if wholesale(prog.N(), p) {
		return fromVerdict(e.RunUniverse(judgeFor(p)))
	}
	return fromVerdict(e.Run(p.ExhaustiveBinary(), judgeFor(p)))
}

// VerdictBatch runs a property's minimal test set through the
// compiled 64-lane engine. It is retained for API compatibility:
// Verdict now uses the same engine, so the two are identical.
func VerdictBatch(w *network.Network, p Property) Result { return Verdict(w, p) }

// GroundTruthBatch is the 64-lane exhaustive sweep (same engine as
// GroundTruth; retained for API compatibility).
func GroundTruthBatch(w *network.Network, p Property) Result { return GroundTruth(w, p) }

// VerdictParallel is Verdict with the engine's worker pool: the test
// stream is carved into chunks and judged concurrently. workers ≤ 0
// lets the engine choose (sequential under its work threshold,
// NumCPU above). The first failure found is reported (not necessarily
// the first in stream order).
func VerdictParallel(w *network.Network, p Property, workers int) Result {
	if workers < 0 {
		workers = 0
	}
	return fromVerdict(engineFor(w, p, workers).Run(p.BinaryTests(), judgeFor(p)))
}

// GroundTruthParallel is GroundTruth with the engine's worker pool.
func GroundTruthParallel(w *network.Network, p Property, workers int) Result {
	if workers < 0 {
		workers = 0
	}
	e := engineFor(w, p, workers)
	if wholesale(w.N, p) {
		return fromVerdict(e.RunUniverse(judgeFor(p)))
	}
	return fromVerdict(e.Run(p.ExhaustiveBinary(), judgeFor(p)))
}

// PermResult is the outcome of a permutation-input check.
type PermResult struct {
	Holds          bool
	TestsRun       int
	Counterexample perm.P
	Output         []int
}

// String renders a one-line verdict.
func (r PermResult) String() string {
	if r.Holds {
		return fmt.Sprintf("holds (%d permutation tests)", r.TestsRun)
	}
	return fmt.Sprintf("fails on %s -> %v (after %d tests)", r.Counterexample, r.Output, r.TestsRun)
}

// GroundTruthPerms sweeps all n! permutations (small n only).
func GroundTruthPerms(w *network.Network, p Property) PermResult {
	prog := eval.Compile(w)
	it := perm.AllHeap(w.N)
	out := make([]int, w.N)
	tests := 0
	for {
		pm, ok := it.Next()
		if !ok {
			return PermResult{Holds: true, TestsRun: tests}
		}
		tests++
		copy(out, pm)
		prog.ApplyInts(out)
		if !p.AcceptsInts(pm, out) {
			return PermResult{Holds: false, TestsRun: tests, Counterexample: pm,
				Output: append([]int(nil), out...)}
		}
	}
}

// WideResult is the outcome of a wide binary check (n > 64, where
// only the paper's polynomial test sets are feasible).
type WideResult struct {
	Holds          bool
	TestsRun       int
	Counterexample widevec.Vec
	Output         widevec.Vec
}

// String renders a one-line verdict (counterexamples can be thousands
// of bits; only a prefix is shown).
func (r WideResult) String() string {
	if r.Holds {
		return fmt.Sprintf("holds (%d tests)", r.TestsRun)
	}
	ce := r.Counterexample.String()
	if len(ce) > 72 {
		ce = ce[:72] + "..."
	}
	return fmt.Sprintf("fails on %s (after %d tests)", ce, r.TestsRun)
}

func fromWideVerdict(v eval.WideVerdict) WideResult {
	return WideResult{Holds: v.Holds, TestsRun: v.TestsRun, Counterexample: v.In, Output: v.Out}
}

// VerdictMergerWide certifies the (n/2,n/2)-merger property with the
// n²/4-vector test set at any width, on the compiled wide path (the
// pair slice is extracted once, not per call).
func VerdictMergerWide(w *network.Network) WideResult {
	return VerdictMergerWideParallel(w, 1)
}

// VerdictSelectorWide certifies the (k,n)-selector property with its
// polynomial test set at any width.
func VerdictSelectorWide(w *network.Network, k int) WideResult {
	return VerdictSelectorWideParallel(w, k, 1)
}

// VerdictMergerWideParallel is VerdictMergerWide with the engine's
// worker pool (workers ≤ 0 lets the engine choose).
func VerdictMergerWideParallel(w *network.Network, workers int) WideResult {
	if workers < 0 {
		workers = 0
	}
	e := eval.New(eval.Compile(w), workers)
	return fromWideVerdict(e.RunWide(core.MergerWideTests(w.N),
		func(in, out widevec.Vec) bool { return out.IsSorted() }))
}

// VerdictSelectorWideParallel is VerdictSelectorWide with the
// engine's worker pool.
func VerdictSelectorWideParallel(w *network.Network, k, workers int) WideResult {
	if workers < 0 {
		workers = 0
	}
	e := eval.New(eval.Compile(w), workers)
	return fromWideVerdict(e.RunWide(core.SelectorWideTests(w.N, k),
		func(in, out widevec.Vec) bool { return selectsWide(in, out, k) }))
}

// selectsWide checks that the first k output bits equal the first k
// bits of the sorted input: 0 for positions below the zero count, 1
// above.
func selectsWide(in, out widevec.Vec, k int) bool {
	zeros := in.Zeros()
	for i := 0; i < k; i++ {
		want := 0
		if i >= zeros {
			want = 1
		}
		if out.Bit(i) != want {
			return false
		}
	}
	return true
}
