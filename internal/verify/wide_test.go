package verify

import (
	"math/big"
	"testing"

	"sortnets/internal/comb"
	"sortnets/internal/core"
	"sortnets/internal/gen"
	"sortnets/internal/network"
)

func TestWideTestSetSizesMatchFormulas(t *testing.T) {
	for _, n := range []int{64, 100, 128} {
		if n%2 == 0 {
			got := int64(core.CountWide(core.MergerWideTests(n)))
			want := comb.MergerBinaryTestSetSize(n)
			if want.Cmp(big.NewInt(got)) != 0 {
				t.Errorf("merger n=%d: %d tests, want %s", n, got, want)
			}
		}
		for k := 1; k <= 3; k++ {
			got := int64(core.CountWide(core.SelectorWideTests(n, k)))
			want := comb.SelectorBinaryTestSetSize(n, k)
			if want.Cmp(big.NewInt(got)) != 0 {
				t.Errorf("selector n=%d k=%d: %d tests, want %s", n, k, got, want)
			}
		}
	}
}

func TestWideTestSetsAgreeWithNarrowOnes(t *testing.T) {
	// At n ≤ 64 the wide iterators must produce exactly the narrow
	// test sets (as strings).
	n := 12
	narrow := map[string]bool{}
	it := core.MergerBinaryTests(n)
	for {
		v, ok := it.Next()
		if !ok {
			break
		}
		narrow[v.String()] = true
	}
	wit := core.MergerWideTests(n)
	count := 0
	for {
		v, ok := wit.Next()
		if !ok {
			break
		}
		count++
		if !narrow[v.String()] {
			t.Errorf("wide merger test %s not in narrow set", v)
		}
	}
	if count != len(narrow) {
		t.Errorf("wide %d vs narrow %d", count, len(narrow))
	}

	narrowSel := map[string]bool{}
	sit := core.SelectorBinaryTests(n, 2)
	for {
		v, ok := sit.Next()
		if !ok {
			break
		}
		narrowSel[v.String()] = true
	}
	wsit := core.SelectorWideTests(n, 2)
	count = 0
	for {
		v, ok := wsit.Next()
		if !ok {
			break
		}
		count++
		if !narrowSel[v.String()] {
			t.Errorf("wide selector test %s not in narrow set", v)
		}
	}
	if count != len(narrowSel) {
		t.Errorf("wide selector %d vs narrow %d", count, len(narrowSel))
	}
}

func TestVerdictMergerWideAcceptsBatcher(t *testing.T) {
	for _, n := range []int{64, 96, 128} {
		w := gen.HalfMerger(n)
		r := VerdictMergerWide(w)
		if !r.Holds {
			t.Errorf("n=%d: Batcher merger rejected: %s", n, r)
		}
		if r.TestsRun != n*n/4 {
			t.Errorf("n=%d: ran %d tests, want %d", n, r.TestsRun, n*n/4)
		}
	}
}

func TestVerdictMergerWideCatchesMutants(t *testing.T) {
	const n = 96
	merger := gen.HalfMerger(n)
	// Delete every 7th comparator; all resulting breakages must be
	// caught by the 2304-test program.
	for i := 0; i < merger.Size(); i += 7 {
		mutant := network.New(n)
		for j, c := range merger.Comps {
			if j != i {
				mutant.AddPair(c.A, c.B)
			}
		}
		r := VerdictMergerWide(mutant)
		if r.Holds {
			// A redundant comparator is possible in principle; verify
			// redundancy by checking a full merge pattern sweep.
			ok := true
			it := core.MergerWideTests(n)
			for {
				v, okNext := it.Next()
				if !okNext {
					break
				}
				if !mutant.ApplyWide(v).IsSorted() {
					ok = false
					break
				}
			}
			if !ok {
				t.Fatalf("mutant %d broken but verdict holds", i)
			}
		}
	}
}

func TestVerdictSelectorWide(t *testing.T) {
	const n, k = 96, 2
	good := gen.Selection(n, k)
	r := VerdictSelectorWide(good, k)
	if !r.Holds {
		t.Fatalf("true selector rejected: %s", r)
	}
	// k−1 passes are not enough.
	bad := gen.Selection(n, k-1)
	r = VerdictSelectorWide(bad, k)
	if r.Holds {
		t.Fatal("under-provisioned selector accepted")
	}
	if r.Output.N() != n {
		t.Error("counterexample output missing")
	}
}

func TestVerdictSelectorWideSorterPasses(t *testing.T) {
	const n = 80
	w := gen.OddEvenMergeSort(n)
	if r := VerdictSelectorWide(w, 2); !r.Holds {
		t.Errorf("sorter rejected as selector: %s", r)
	}
	if r := VerdictMergerWide(w); !r.Holds {
		t.Errorf("sorter rejected as merger: %s", r)
	}
}

func TestWideResultString(t *testing.T) {
	r := WideResult{Holds: true, TestsRun: 5}
	if r.String() != "holds (5 tests)" {
		t.Errorf("got %q", r.String())
	}
	bad := VerdictMergerWide(network.New(128))
	if bad.Holds {
		t.Fatal("empty network accepted")
	}
	if len(bad.String()) > 140 {
		t.Errorf("failure string should truncate wide vectors: %q", bad.String())
	}
}
