package verify

import (
	"context"
	"fmt"

	"sortnets/internal/core"
	"sortnets/internal/eval"
	"sortnets/internal/network"
	"sortnets/internal/widevec"
)

// Context-aware verdicts. Every engine path in this package has a
// *Ctx twin that accepts a context.Context and propagates
// cancellation into the engine loops, where it is checked once per
// 64-lane block (never per vector). A cancelled run returns the
// context's error and a zero result; the legacy entry points are
// wrappers over context.Background().

// VerdictCtx is Verdict under a context, with an explicit worker
// count (0 = automatic, 1 = sequential stream-order, k > 1 = k
// engine workers).
func VerdictCtx(ctx context.Context, w *network.Network, p Property, workers int) (Result, error) {
	if workers < 0 {
		workers = 0
	}
	v, err := engineFor(w, p, workers).RunCtx(ctx, p.BinaryTests(), judgeFor(p))
	if err != nil {
		return Result{}, err
	}
	return fromVerdict(v), nil
}

// VerdictProgramCtx is VerdictProgram under a context.
func VerdictProgramCtx(ctx context.Context, prog *eval.Program, p Property) (Result, error) {
	if prog.N() != p.Lines() {
		panic(fmt.Sprintf("verify: program has %d lines, property wants %d", prog.N(), p.Lines()))
	}
	v, err := eval.New(prog, 1).RunCtx(ctx, p.BinaryTests(), judgeFor(p))
	if err != nil {
		return Result{}, err
	}
	return fromVerdict(v), nil
}

// GroundTruthCtx is GroundTruth under a context, with an explicit
// worker count (0 = automatic).
func GroundTruthCtx(ctx context.Context, w *network.Network, p Property, workers int) (Result, error) {
	if workers < 0 {
		workers = 0
	}
	return groundTruthEngineCtx(ctx, engineFor(w, p, workers), w.N, p)
}

// GroundTruthProgramCtx is GroundTruthProgram under a context.
func GroundTruthProgramCtx(ctx context.Context, prog *eval.Program, p Property) (Result, error) {
	if prog.N() != p.Lines() {
		panic(fmt.Sprintf("verify: program has %d lines, property wants %d", prog.N(), p.Lines()))
	}
	return groundTruthEngineCtx(ctx, eval.New(prog, 1), prog.N(), p)
}

func groundTruthEngineCtx(ctx context.Context, e *eval.Engine, n int, p Property) (Result, error) {
	var v eval.Verdict
	var err error
	if wholesale(n, p) {
		v, err = e.RunUniverseCtx(ctx, judgeFor(p))
	} else {
		v, err = e.RunCtx(ctx, p.ExhaustiveBinary(), judgeFor(p))
	}
	if err != nil {
		return Result{}, err
	}
	return fromVerdict(v), nil
}

// VerdictPermsCtx is VerdictPerms under a context, checked between
// permutation batches (batch path) or between permutations (scalar
// fallback).
func VerdictPermsCtx(ctx context.Context, w *network.Network, p Property) (PermResult, error) {
	if w.N != p.Lines() {
		panic(fmt.Sprintf("verify: network has %d lines, property wants %d", w.N, p.Lines()))
	}
	if w.N-1 <= network.LanesPerBatch && w.N > 1 {
		switch p.(type) {
		case Sorter, Selector, Merger:
			return verdictPermsBatch(ctx, w, p)
		}
	}
	return verdictPermsScalar(ctx, w, p)
}

// VerdictMergerWideProgramCtx certifies the (n/2,n/2)-merger property
// on an already-compiled program under a context (the Session's
// cache-aware wide path). workers: 0 = automatic, 1 = sequential.
func VerdictMergerWideProgramCtx(ctx context.Context, prog *eval.Program, workers int) (WideResult, error) {
	if workers < 0 {
		workers = 0
	}
	v, err := eval.New(prog, workers).RunWideCtx(ctx, core.MergerWideTests(prog.N()),
		func(in, out widevec.Vec) bool { return out.IsSorted() })
	if err != nil {
		return WideResult{}, err
	}
	return fromWideVerdict(v), nil
}

// VerdictSelectorWideProgramCtx certifies the (k,n)-selector property
// on an already-compiled program under a context.
func VerdictSelectorWideProgramCtx(ctx context.Context, prog *eval.Program, k, workers int) (WideResult, error) {
	if workers < 0 {
		workers = 0
	}
	v, err := eval.New(prog, workers).RunWideCtx(ctx, core.SelectorWideTests(prog.N(), k),
		func(in, out widevec.Vec) bool { return selectsWide(in, out, k) })
	if err != nil {
		return WideResult{}, err
	}
	return fromWideVerdict(v), nil
}
