package verify

import (
	"context"
	"math/rand"
	"testing"

	"sortnets/internal/gen"
	"sortnets/internal/network"
	"sortnets/internal/perm"
)

// TestVerdictPermsBatchAgreesWithScalar cross-checks the threshold-
// batched fast path against the scalar ApplyInts loop on random
// networks — both verdicts and, on failure, the exact stream-order
// counterexample and test count.
func TestVerdictPermsBatchAgreesWithScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(9)
		w := network.Random(n, rng.Intn(4*n), rng)
		props := []Property{Sorter{N: n}}
		props = append(props, Selector{N: n, K: 1 + rng.Intn(n)})
		if n%2 == 0 {
			props = append(props, Merger{N: n})
		}
		for _, p := range props {
			got := VerdictPerms(w, p)
			want, _ := verdictPermsScalar(context.Background(), w, p)
			if got.Holds != want.Holds || got.TestsRun != want.TestsRun {
				t.Fatalf("%s on %s: batch %+v, scalar %+v", p.Name(), w, got, want)
			}
			if !got.Holds && !got.Counterexample.Equal(want.Counterexample) {
				t.Fatalf("%s on %s: counterexample %s vs %s",
					p.Name(), w, got.Counterexample, want.Counterexample)
			}
		}
	}
}

// TestVerdictPermsBatchCorrectSorters makes sure real sorters pass on
// the batched path across widths, including the lane-packing edge
// cases (n−1 dividing 64 or not).
func TestVerdictPermsBatchCorrectSorters(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8, 9, 12, 16, 17} {
		w := gen.Sorter(n)
		r := VerdictPerms(w, Sorter{N: n})
		if !r.Holds {
			t.Errorf("n=%d: sorter rejected on %s -> %v", n, r.Counterexample, r.Output)
		}
		if r.TestsRun != len(Sorter{N: n}.PermTests()) {
			t.Errorf("n=%d: TestsRun %d, want full family", n, r.TestsRun)
		}
	}
}

// TestHalvesSorted pins the merger-contract predicate used to skip
// vacuous permutations.
func TestHalvesSorted(t *testing.T) {
	cases := []struct {
		p    string
		want bool
	}{
		{"(1 3 2 4)", true},
		{"(2 4 1 3)", true},
		{"(3 1 2 4)", false},
		{"(1 2 4 3)", false},
	}
	for _, c := range cases {
		if got := halvesSorted(perm.MustParse(c.p)); got != c.want {
			t.Errorf("halvesSorted(%s) = %v, want %v", c.p, got, c.want)
		}
	}
}
