package verify

import (
	"math/rand"
	"testing"

	"sortnets/internal/bitvec"
	"sortnets/internal/core"
	"sortnets/internal/gen"
	"sortnets/internal/network"
	"sortnets/internal/perm"
)

func TestVerdictBatchAgreesWithScalarSorter(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(9)
		w := network.Random(n, rng.Intn(n*n), rng)
		p := Sorter{N: n}
		s := Verdict(w, p)
		b := VerdictBatch(w, p)
		if s.Holds != b.Holds {
			t.Fatalf("batch %v != scalar %v for %s", b.Holds, s.Holds, w)
		}
		if !s.Holds && !b.Output.IsSorted() == false {
			t.Fatalf("batch counterexample output %s is sorted", b.Output)
		}
		if s.Holds && b.TestsRun != s.TestsRun {
			t.Fatalf("pass-case test counts differ: %d vs %d", b.TestsRun, s.TestsRun)
		}
	}
}

func TestVerdictBatchAgreesWithScalarSelector(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(7)
		k := 1 + rng.Intn(n)
		w := network.Random(n, rng.Intn(n*n), rng)
		p := Selector{N: n, K: k}
		if Verdict(w, p).Holds != VerdictBatch(w, p).Holds {
			t.Fatalf("selector batch mismatch for %s k=%d", w, k)
		}
	}
	if !VerdictBatch(gen.Selection(9, 3), Selector{N: 9, K: 3}).Holds {
		t.Error("true selector rejected by batch engine")
	}
}

func TestVerdictBatchAgreesWithScalarMerger(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 120; trial++ {
		n := 2 * (1 + rng.Intn(5))
		w := network.Random(n, rng.Intn(n*n/2+1), rng)
		p := Merger{N: n}
		if Verdict(w, p).Holds != VerdictBatch(w, p).Holds {
			t.Fatalf("merger batch mismatch for %s", w)
		}
	}
	if !VerdictBatch(gen.HalfMerger(12), Merger{N: 12}).Holds {
		t.Error("true merger rejected by batch engine")
	}
}

func TestGroundTruthBatchAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(8)
		w := network.Random(n, rng.Intn(n*n), rng)
		p := Sorter{N: n}
		if GroundTruth(w, p).Holds != GroundTruthBatch(w, p).Holds {
			t.Fatalf("ground truth batch mismatch for %s", w)
		}
	}
}

func TestVerdictBatchCounterexampleIsReal(t *testing.T) {
	// On almost-sorters the only failure is σ; the batch engine must
	// report exactly it.
	for n := 3; n <= 8; n++ {
		it := core.SorterBinaryTests(n)
		for {
			sigma, ok := it.Next()
			if !ok {
				break
			}
			r := VerdictBatch(core.MustAlmostSorter(sigma), Sorter{N: n})
			if r.Holds || r.Counterexample != sigma {
				t.Fatalf("n=%d: batch reported %v / %s, want failure on %s",
					n, r.Holds, r.Counterexample, sigma)
			}
		}
	}
}

func TestVerdictBatchUnknownPropertyFallsBack(t *testing.T) {
	// A custom property type must route through the scalar engine.
	p := customProp{n: 3}
	w := network.New(3)
	r := VerdictBatch(w, p)
	if !r.Holds || r.TestsRun != 1 {
		t.Errorf("fallback result %+v", r)
	}
}

type customProp struct{ n int }

func (c customProp) Name() string                          { return "custom" }
func (c customProp) Lines() int                            { return c.n }
func (c customProp) AcceptsBinary(in, out bitvec.Vec) bool { return true }
func (c customProp) AcceptsInts(in, out []int) bool        { return true }
func (c customProp) PermTests() []perm.P                   { return nil }
func (c customProp) ExhaustiveBinary() bitvec.Iterator     { return bitvec.All(c.n) }
func (c customProp) BinaryTests() bitvec.Iterator {
	return bitvec.Slice([]bitvec.Vec{bitvec.AllZeros(c.n)})
}
