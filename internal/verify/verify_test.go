package verify

import (
	"math/rand"
	"testing"

	"sortnets/internal/bitvec"
	"sortnets/internal/core"
	"sortnets/internal/gen"
	"sortnets/internal/network"
)

func TestVerdictAcceptsTrueSorters(t *testing.T) {
	for n := 2; n <= 12; n++ {
		r := Verdict(gen.Sorter(n), Sorter{N: n})
		if !r.Holds {
			t.Errorf("n=%d: %s", n, r)
		}
		wantTests := bitvec.Universe(n) - n - 1
		if r.TestsRun != wantTests {
			t.Errorf("n=%d: ran %d tests, want full set %d", n, r.TestsRun, wantTests)
		}
	}
}

func TestVerdictRejectsAlmostSorters(t *testing.T) {
	// The sharpest possible negative: H_σ fails exactly one test, and
	// the verdict must find it and name σ.
	for n := 3; n <= 9; n++ {
		it := core.SorterBinaryTests(n)
		for {
			sigma, ok := it.Next()
			if !ok {
				break
			}
			r := Verdict(core.MustAlmostSorter(sigma), Sorter{N: n})
			if r.Holds {
				t.Fatalf("n=%d: H_%s passed the full test set", n, sigma)
			}
			if r.Counterexample != sigma {
				t.Fatalf("n=%d: counterexample %s, want %s", n, r.Counterexample, sigma)
			}
			if r.Output.IsSorted() {
				t.Fatalf("n=%d: reported output %s is sorted", n, r.Output)
			}
		}
	}
}

func TestVerdictMatchesGroundTruthRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(9)
		w := network.Random(n, rng.Intn(n*n), rng)
		v := Verdict(w, Sorter{N: n})
		g := GroundTruth(w, Sorter{N: n})
		if v.Holds != g.Holds {
			t.Fatalf("verdict %v != ground truth %v for %s", v.Holds, g.Holds, w)
		}
	}
}

func TestSelectorVerdicts(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(7)
		k := 1 + rng.Intn(n)
		p := Selector{N: n, K: k}
		w := network.Random(n, rng.Intn(n*n), rng)
		if Verdict(w, p).Holds != GroundTruth(w, p).Holds {
			t.Fatalf("selector verdict mismatch: %s k=%d", w, k)
		}
	}
	// Positive fixture.
	if r := Verdict(gen.Selection(8, 3), Selector{N: 8, K: 3}); !r.Holds {
		t.Errorf("true selector rejected: %s", r)
	}
	// A (k,n)-selection network is generally NOT a (k+1,n)-selector.
	if r := Verdict(gen.Selection(8, 3), Selector{N: 8, K: 4}); r.Holds {
		t.Error("(3,8)-selection accepted as (4,8)-selector")
	}
}

func TestMergerVerdicts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 150; trial++ {
		n := 2 * (1 + rng.Intn(5))
		p := Merger{N: n}
		w := network.Random(n, rng.Intn(n*n/2+1), rng)
		if Verdict(w, p).Holds != GroundTruth(w, p).Holds {
			t.Fatalf("merger verdict mismatch: %s", w)
		}
	}
	if r := Verdict(gen.HalfMerger(10), Merger{N: 10}); !r.Holds {
		t.Errorf("true merger rejected: %s", r)
	}
	if r := Verdict(network.New(6), Merger{N: 6}); r.Holds {
		t.Error("empty network accepted as merger")
	}
}

func TestMergerTestCountIsQuadratic(t *testing.T) {
	// The whole point of Theorem 2.5: n²/4 tests instead of 2ⁿ.
	n := 12
	r := Verdict(gen.HalfMerger(n), Merger{N: n})
	if r.TestsRun != n*n/4 {
		t.Errorf("merger ran %d tests, want %d", r.TestsRun, n*n/4)
	}
	g := GroundTruth(gen.HalfMerger(n), Merger{N: n})
	if g.TestsRun != bitvec.Universe(n) {
		t.Errorf("ground truth ran %d tests, want 2ⁿ", g.TestsRun)
	}
}

func TestParallelAgreesWithSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(9)
		w := network.Random(n, rng.Intn(n*n), rng)
		p := Sorter{N: n}
		seq := Verdict(w, p)
		for _, workers := range []int{1, 2, 4, 0} {
			par := VerdictParallel(w, p, workers)
			if par.Holds != seq.Holds {
				t.Fatalf("workers=%d: parallel %v != sequential %v for %s",
					workers, par.Holds, seq.Holds, w)
			}
			if !par.Holds && !par.Output.IsSorted() == false {
				t.Fatalf("workers=%d: bogus counterexample", workers)
			}
		}
		gt := GroundTruthParallel(w, p, 2)
		if gt.Holds != seq.Holds {
			t.Fatalf("parallel ground truth diverges for %s", w)
		}
	}
}

func TestVerdictPermsAgainstGroundTruthPerms(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(5) // n! sweep: keep small
		w := network.Random(n, rng.Intn(n*n), rng)
		p := Sorter{N: n}
		v := VerdictPerms(w, p)
		g := GroundTruthPerms(w, p)
		if v.Holds != g.Holds {
			t.Fatalf("perm verdict %v != perm ground truth %v for %s", v.Holds, g.Holds, w)
		}
		// And both must agree with the binary side (zero-one).
		if v.Holds != Verdict(w, p).Holds {
			t.Fatalf("perm and binary verdicts disagree for %s", w)
		}
	}
}

func TestVerdictPermsSelectorAndMerger(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 50; trial++ {
		n := 2 * (1 + rng.Intn(3))
		w := network.Random(n, rng.Intn(n*n), rng)
		pm := Merger{N: n}
		if VerdictPerms(w, pm).Holds != GroundTruth(w, pm).Holds {
			t.Fatalf("merger perm verdict mismatch for %s", w)
		}
		k := 1 + rng.Intn(n)
		ps := Selector{N: n, K: k}
		if VerdictPerms(w, ps).Holds != GroundTruth(w, ps).Holds {
			t.Fatalf("selector perm verdict mismatch for %s k=%d", w, k)
		}
	}
}

func TestPropertyNamesAndLines(t *testing.T) {
	if (Sorter{N: 5}).Name() != "sorter" {
		t.Error("sorter name")
	}
	if (Selector{N: 8, K: 3}).Name() != "(3,8)-selector" {
		t.Error("selector name")
	}
	if (Merger{N: 6}).Name() != "(3,3)-merger" {
		t.Error("merger name")
	}
	if (Sorter{N: 5}).Lines() != 5 || (Merger{N: 6}).Lines() != 6 {
		t.Error("lines")
	}
}

func TestResultStrings(t *testing.T) {
	r := Result{Holds: true, TestsRun: 7}
	if r.String() != "holds (7 tests)" {
		t.Errorf("got %q", r.String())
	}
	r2 := Result{Holds: false, TestsRun: 3,
		Counterexample: bitvec.MustFromString("10"), Output: bitvec.MustFromString("10")}
	if r2.String() == "" || r2.String() == r.String() {
		t.Error("failure string malformed")
	}
}

func TestVerdictPanicsOnLineMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Verdict(network.New(3), Sorter{N: 4})
}
