package verify

import (
	"fmt"

	"sortnets/internal/core"
	"sortnets/internal/network"
	"sortnets/internal/widevec"
)

// Wide-width verdicts: for networks beyond 64 lines the sorter
// property is untestable in practice (its minimal test set is
// ~2ⁿ — the content of E13), but the merger and fixed-k selector
// properties remain certifiable in polynomial time. These engines use
// the widevec path and the wide test-set iterators of package core.

// WideResult is the outcome of a wide binary check.
type WideResult struct {
	Holds          bool
	TestsRun       int
	Counterexample widevec.Vec
	Output         widevec.Vec
}

// String renders a one-line verdict (counterexamples can be thousands
// of bits; only a prefix is shown).
func (r WideResult) String() string {
	if r.Holds {
		return fmt.Sprintf("holds (%d tests)", r.TestsRun)
	}
	ce := r.Counterexample.String()
	if len(ce) > 72 {
		ce = ce[:72] + "..."
	}
	return fmt.Sprintf("fails on %s (after %d tests)", ce, r.TestsRun)
}

// VerdictMergerWide certifies the (n/2,n/2)-merger property with the
// n²/4-vector test set at any width.
func VerdictMergerWide(w *network.Network) WideResult {
	pairs := w.Pairs()
	it := core.MergerWideTests(w.N)
	tests := 0
	for {
		v, ok := it.Next()
		if !ok {
			return WideResult{Holds: true, TestsRun: tests}
		}
		tests++
		out := v.ApplyComparators(pairs)
		if !out.IsSorted() {
			return WideResult{Holds: false, TestsRun: tests, Counterexample: v, Output: out}
		}
	}
}

// VerdictSelectorWide certifies the (k,n)-selector property with its
// polynomial test set at any width.
func VerdictSelectorWide(w *network.Network, k int) WideResult {
	pairs := w.Pairs()
	it := core.SelectorWideTests(w.N, k)
	tests := 0
	for {
		v, ok := it.Next()
		if !ok {
			return WideResult{Holds: true, TestsRun: tests}
		}
		tests++
		out := v.ApplyComparators(pairs)
		if !selectsWide(v, out, k) {
			return WideResult{Holds: false, TestsRun: tests, Counterexample: v, Output: out}
		}
	}
}

// selectsWide checks that the first k output bits equal the first k
// bits of the sorted input: 0 for positions below the zero count, 1
// above.
func selectsWide(in, out widevec.Vec, k int) bool {
	zeros := in.Zeros()
	for i := 0; i < k; i++ {
		want := 0
		if i >= zeros {
			want = 1
		}
		if out.Bit(i) != want {
			return false
		}
	}
	return true
}
