package search

import (
	"context"
	"fmt"
	"math/bits"
	"slices"
	"sort"

	"sortnets/internal/bitvec"
	"sortnets/internal/eval"
	"sortnets/internal/network"
)

// Options tunes the search pipeline. The zero value means: no closure
// limit, no node cap, GOMAXPROCS workers for the closure BFS and the
// failure-family build (whose results are order-independent — the
// family is canonically sorted), and a SEQUENTIAL branch and bound,
// so the returned witness test set is reproducible run-to-run by
// default. Setting Workers > 1 additionally spreads the branch and
// bound over that many workers: the minimum cardinality is unchanged
// (cross-checked in the tests), but the identity of an equal-size
// witness may then vary with scheduling. Workers == 1 pins every
// stage strictly sequential.
type Options struct {
	Limit      int // behaviour-closure cap (0 = unlimited)
	NodeBudget int // node cap: 0 = default (binary: unlimited; perm: 5M), < 0 = unlimited
	Workers    int // 0 = parallel closure/family + sequential solve
}

// solverWorkers resolves Options.Workers for the branch and bound:
// parallel solving is opt-in (see Options) because the parallel
// incumbent race makes the witness schedule-dependent.
func solverWorkers(w int) int {
	if w <= 0 {
		return 1
	}
	return w
}

// MinHittingSet returns a minimum-cardinality set of elements (bit
// positions) hitting every mask in the family, as a bitmask. The empty
// family is hit by the empty set. Exact and sequential (deterministic
// witness); use MinHittingSetWorkers to spread the branch and bound
// over a pool.
func MinHittingSet(family []uint64) uint64 { return MinHittingSetWorkers(family, 1) }

// MinHittingSetWorkers is MinHittingSet with a worker pool for the
// branch and bound (workers ≤ 0 means GOMAXPROCS). The minimum
// cardinality it returns equals the sequential solver's on every
// input; workers only race toward it.
func MinHittingSetWorkers(family []uint64, workers int) uint64 {
	for _, m := range family {
		if m == 0 {
			panic("search: empty set can never be hit")
		}
	}
	fam := pruneSupersets(family)
	elems, _, _ := solveHitting(context.Background(), maskElemLists(fam), 0, workers)
	var out uint64
	for _, e := range elems {
		out |= 1 << uint(e)
	}
	return out
}

// greedy picks, repeatedly, the element covering the most sets, with
// ties broken to the LOWEST element index (the counts live in a
// fixed-order array, not a map), so greedy picks are reproducible
// run-to-run. It is the REFERENCE implementation of the solver's
// tie-break contract: production solving runs through
// coverProblem.greedyComplete (same rule on the compressed
// representation), and the determinism tests pin both.
func greedy(fam []uint64) uint64 {
	uncovered := append([]uint64(nil), fam...)
	var picked uint64
	for len(uncovered) > 0 {
		var counts [64]int
		for _, m := range uncovered {
			for w := m; w != 0; w &= w - 1 {
				counts[bits.TrailingZeros64(w)]++
			}
		}
		bestE, bestC := -1, 0
		for e, c := range counts {
			if c > bestC {
				bestE, bestC = e, c
			}
		}
		picked |= 1 << uint(bestE)
		rest := uncovered[:0]
		for _, m := range uncovered {
			if m&picked == 0 {
				rest = append(rest, m)
			}
		}
		uncovered = rest
	}
	return picked
}

// TestSetResult reports an exact minimum test set computed by
// behaviour-space search.
type TestSetResult struct {
	N          int
	Height     int // comparator height bound (n−1 = unrestricted)
	Behaviors  int // reachable behaviours explored
	BadSets    int // pruned failure family size
	Size       int // minimum test set cardinality
	Tests      []bitvec.Vec
	ForcedSize int  // tests forced by singleton failure sets
	Exact      bool // false only when Options.NodeBudget was exhausted
}

// String renders a one-line summary.
func (r TestSetResult) String() string {
	tag := "exact"
	if !r.Exact {
		tag = "upper bound only"
	}
	return fmt.Sprintf("n=%d height≤%d: %d behaviours, %d failure sets, min test set = %d (%s)",
		r.N, r.Height, r.Behaviors, r.BadSets, r.Size, tag)
}

// MinimumTestSet computes the exact minimum 0/1 test set for a
// property over the class of networks with comparator height ≤ h on n
// lines. limit caps the behaviour closure (0 = unlimited).
func MinimumTestSet(n, h int, accepts Acceptance, limit int) (TestSetResult, error) {
	return MinimumTestSetOpts(n, h, accepts, Options{Limit: limit})
}

// MinimumTestSetOpts is MinimumTestSet with full pipeline options.
func MinimumTestSetOpts(n, h int, accepts Acceptance, opt Options) (TestSetResult, error) {
	return MinimumTestSetCtx(context.Background(), n, h, accepts, opt)
}

// MinimumTestSetCtx is MinimumTestSetOpts under a context: the
// closure BFS, failure-family build and hitting-set branch and bound
// all observe cancellation and a cancelled run returns the context's
// error.
func MinimumTestSetCtx(ctx context.Context, n, h int, accepts Acceptance, opt Options) (TestSetResult, error) {
	if bitvec.Universe(n) > 64 {
		return TestSetResult{}, fmt.Errorf("search: n=%d too large for mask-based search", n)
	}
	st, err := binaryClosureStore(ctx, n, Comparators(n, h), opt.Limit, opt.Workers)
	if err != nil {
		return TestSetResult{}, err
	}
	masks, err := st.failureMasks(ctx, n, accepts, opt.Workers)
	if err != nil {
		return TestSetResult{}, err
	}
	fam := pruneSupersets(masks)
	elems, exact, err := solveHitting(ctx, maskElemLists(fam), int64(opt.NodeBudget), solverWorkers(opt.Workers))
	if err != nil {
		return TestSetResult{}, err
	}
	res := TestSetResult{
		N:         n,
		Height:    h,
		Behaviors: st.count,
		BadSets:   len(fam),
		Size:      len(elems),
		Exact:     exact,
	}
	for _, m := range fam {
		if bits.OnesCount64(m) == 1 {
			res.ForcedSize++
		}
	}
	slices.Sort(elems)
	for _, e := range elems {
		res.Tests = append(res.Tests, bitvec.New(n, uint64(e)))
	}
	return res, nil
}

// DeBruijnHolds checks de Bruijn's theorem (quoted in Section 3: a
// height-1 network sorts iff it sorts the reverse permutation) over
// every height-1 network with at most maxComps comparators on n lines,
// by exhaustive enumeration of comparator sequences. It returns an
// error describing the first counterexample, or nil.
func DeBruijnHolds(n, maxComps int) error {
	alphabet := Comparators(n, 1)
	rev := make([]int, n)
	for i := range rev {
		rev[i] = n - i
	}
	buf := make([]int, n)
	var rec func(w *network.Network, depth int) error
	rec = func(w *network.Network, depth int) error {
		// Compile once per enumerated network; the compiled program
		// serves both the integer path and the 2ⁿ universe sweep.
		prog := eval.Compile(w)
		copy(buf, rev)
		prog.ApplyInts(buf)
		sortsRev := sort.IntsAreSorted(buf)
		isSorter := prog.SortsAll()
		if sortsRev != isSorter {
			return fmt.Errorf("search: de Bruijn violated by %s (rev-sorted=%v, sorter=%v)",
				w.Format(), sortsRev, isSorter)
		}
		if depth == maxComps {
			return nil
		}
		for _, c := range alphabet {
			w.Comps = append(w.Comps, c)
			if err := rec(w, depth+1); err != nil {
				return err
			}
			w.Comps = w.Comps[:len(w.Comps)-1]
		}
		return nil
	}
	return rec(network.New(n), 0)
}
