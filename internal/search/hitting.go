package search

import (
	"fmt"
	"math/bits"
	"sort"

	"sortnets/internal/bitvec"
	"sortnets/internal/eval"
	"sortnets/internal/network"
)

// MinHittingSet returns a minimum-cardinality set of elements (bit
// positions) hitting every mask in the family, as a bitmask. The empty
// family is hit by the empty set. Exact: greedy for an upper bound,
// forced-singleton propagation, then branch and bound on the smallest
// uncovered set.
func MinHittingSet(family []uint64) uint64 {
	for _, m := range family {
		if m == 0 {
			panic("search: empty set can never be hit")
		}
	}
	fam := append([]uint64(nil), family...)
	var forced uint64
	// Singleton propagation: a one-element failure set forces that
	// element into every hitting set (this is exactly the Lemma 2.1
	// argument: an almost-sorter's failure set is {σ}).
	for {
		progress := false
		var remaining []uint64
		for _, m := range fam {
			if m&forced != 0 {
				continue
			}
			if bits.OnesCount64(m) == 1 {
				forced |= m
				progress = true
				continue
			}
			remaining = append(remaining, m)
		}
		fam = remaining
		if !progress {
			break
		}
	}
	if len(fam) == 0 {
		return forced
	}
	best := forced | greedy(fam)
	solve(fam, forced, &best)
	return best
}

// greedy picks, repeatedly, the element covering the most sets.
func greedy(fam []uint64) uint64 {
	uncovered := append([]uint64(nil), fam...)
	var picked uint64
	for len(uncovered) > 0 {
		counts := map[int]int{}
		for _, m := range uncovered {
			for w := m; w != 0; {
				e := bits.TrailingZeros64(w)
				w &^= 1 << uint(e)
				counts[e]++
			}
		}
		bestE, bestC := -1, 0
		for e, c := range counts {
			if c > bestC || (c == bestC && e < bestE) {
				bestE, bestC = e, c
			}
		}
		picked |= 1 << uint(bestE)
		var rest []uint64
		for _, m := range uncovered {
			if m&picked == 0 {
				rest = append(rest, m)
			}
		}
		uncovered = rest
	}
	return picked
}

// solve branches on the elements of the smallest uncovered set,
// pruning with a disjoint-set lower bound.
func solve(fam []uint64, chosen uint64, best *uint64) {
	if bits.OnesCount64(chosen) >= bits.OnesCount64(*best) {
		return
	}
	var uncovered []uint64
	for _, m := range fam {
		if m&chosen == 0 {
			uncovered = append(uncovered, m)
		}
	}
	if len(uncovered) == 0 {
		*best = chosen
		return
	}
	// Lower bound: a maximal collection of pairwise-disjoint uncovered
	// sets each needs its own element.
	lb := 0
	var used uint64
	sort.Slice(uncovered, func(i, j int) bool {
		return bits.OnesCount64(uncovered[i]) < bits.OnesCount64(uncovered[j])
	})
	for _, m := range uncovered {
		if m&used == 0 {
			lb++
			used |= m
		}
	}
	if bits.OnesCount64(chosen)+lb >= bits.OnesCount64(*best) {
		return
	}
	smallest := uncovered[0]
	for w := smallest; w != 0; {
		e := bits.TrailingZeros64(w)
		w &^= 1 << uint(e)
		solve(fam, chosen|1<<uint(e), best)
	}
}

// TestSetResult reports an exact minimum test set computed by
// behaviour-space search.
type TestSetResult struct {
	N          int
	Height     int // comparator height bound (n−1 = unrestricted)
	Behaviors  int // reachable behaviours explored
	BadSets    int // pruned failure family size
	Size       int // minimum test set cardinality
	Tests      []bitvec.Vec
	ForcedSize int // tests forced by singleton failure sets
}

// String renders a one-line summary.
func (r TestSetResult) String() string {
	return fmt.Sprintf("n=%d height≤%d: %d behaviours, %d failure sets, min test set = %d",
		r.N, r.Height, r.Behaviors, r.BadSets, r.Size)
}

// MinimumTestSet computes the exact minimum 0/1 test set for a
// property over the class of networks with comparator height ≤ h on n
// lines. limit caps the behaviour closure (0 = unlimited).
func MinimumTestSet(n, h int, accepts Acceptance, limit int) (TestSetResult, error) {
	if bitvec.Universe(n) > 64 {
		return TestSetResult{}, fmt.Errorf("search: n=%d too large for mask-based search", n)
	}
	behaviors, err := Closure(n, Comparators(n, h), limit)
	if err != nil {
		return TestSetResult{}, err
	}
	fam := FailureFamily(n, behaviors, accepts)
	hit := MinHittingSet(fam)
	res := TestSetResult{
		N:         n,
		Height:    h,
		Behaviors: len(behaviors),
		BadSets:   len(fam),
		Size:      bits.OnesCount64(hit),
	}
	forced := 0
	for _, m := range fam {
		if bits.OnesCount64(m) == 1 {
			forced++
		}
	}
	res.ForcedSize = forced
	for w := hit; w != 0; {
		e := bits.TrailingZeros64(w)
		w &^= 1 << uint(e)
		res.Tests = append(res.Tests, bitvec.New(n, uint64(e)))
	}
	return res, nil
}

// DeBruijnHolds checks de Bruijn's theorem (quoted in Section 3: a
// height-1 network sorts iff it sorts the reverse permutation) over
// every height-1 network with at most maxComps comparators on n lines,
// by exhaustive enumeration of comparator sequences. It returns an
// error describing the first counterexample, or nil.
func DeBruijnHolds(n, maxComps int) error {
	alphabet := Comparators(n, 1)
	rev := make([]int, n)
	for i := range rev {
		rev[i] = n - i
	}
	buf := make([]int, n)
	var rec func(w *network.Network, depth int) error
	rec = func(w *network.Network, depth int) error {
		// Compile once per enumerated network; the compiled program
		// serves both the integer path and the 2ⁿ universe sweep.
		prog := eval.Compile(w)
		copy(buf, rev)
		prog.ApplyInts(buf)
		sortsRev := sort.IntsAreSorted(buf)
		isSorter := prog.SortsAll()
		if sortsRev != isSorter {
			return fmt.Errorf("search: de Bruijn violated by %s (rev-sorted=%v, sorter=%v)",
				w.Format(), sortsRev, isSorter)
		}
		if depth == maxComps {
			return nil
		}
		for _, c := range alphabet {
			w.Comps = append(w.Comps, c)
			if err := rec(w, depth+1); err != nil {
				return err
			}
			w.Comps = w.Comps[:len(w.Comps)-1]
		}
		return nil
	}
	return rec(network.New(n), 0)
}
