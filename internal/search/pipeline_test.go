package search

import (
	"context"
	"math/bits"
	"math/rand"
	"testing"

	"sortnets/internal/bitset"
)

// --- Satellite: deterministic greedy tie-breaking -----------------------

// TestGreedyDeterministicTieBreak: on equal cover counts the LOWEST
// element index must win, and repeated runs must agree exactly.
func TestGreedyDeterministicTieBreak(t *testing.T) {
	// Elements 1, 3, 5 each cover exactly one (disjoint) set: every
	// pick is a tie; element 0 of each set must win in index order.
	fam := []uint64{0b0000_1010, 0b1010_0000, 0b10_0000_0000}
	want := uint64(1<<1 | 1<<5 | 1<<9)
	for run := 0; run < 20; run++ {
		if got := greedy(fam); got != want {
			t.Fatalf("run %d: greedy picked %b, want %b", run, got, want)
		}
	}
}

func TestGreedyBitsDeterministicTieBreak(t *testing.T) {
	mk := func(idx ...int) *bitset.Set { return bitset.FromIndices(12, idx...) }
	fam := []*bitset.Set{mk(1, 3), mk(5, 7), mk(9, 11)}
	first := greedyBits(12, fam)
	for run := 0; run < 20; run++ {
		if got := greedyBits(12, fam); !got.Equal(first) {
			t.Fatalf("run %d: greedyBits picked %s, then %s", run, first, got)
		}
	}
	for _, e := range []int{1, 5, 9} {
		if !first.Contains(e) {
			t.Errorf("tie should break to lowest index; picked %s", first)
		}
	}
}

// TestMinimumTestSetReproducible: the full pipeline (closure, family,
// solve) must return the identical witness test set run-to-run.
func TestMinimumTestSetReproducible(t *testing.T) {
	first, err := MinimumTestSet(4, 2, SorterAccepts, 0)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 5; run++ {
		again, err := MinimumTestSet(4, 2, SorterAccepts, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Tests) != len(first.Tests) {
			t.Fatalf("run %d: %d tests, then %d", run, len(first.Tests), len(again.Tests))
		}
		for i := range again.Tests {
			if again.Tests[i] != first.Tests[i] {
				t.Fatalf("run %d: witness changed: %v vs %v", run, first.Tests, again.Tests)
			}
		}
	}
}

// --- Satellite: superset-pruning edge cases -----------------------------

func TestPruneSupersetsEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		fam  []uint64
		want []uint64 // expected survivor set (order-insensitive)
	}{
		{"empty", nil, nil},
		{"family of one", []uint64{0b0110}, []uint64{0b0110}},
		{"duplicate masks collapse", []uint64{0b011, 0b011, 0b011}, []uint64{0b011}},
		{"equal sets keep one", []uint64{0b101, 0b101}, []uint64{0b101}},
		{"already minimal", []uint64{0b001, 0b010, 0b100}, []uint64{0b001, 0b010, 0b100}},
		{"chain collapses to minimum", []uint64{0b111, 0b011, 0b001}, []uint64{0b001}},
		{"superset of singleton dies", []uint64{0b1, 0b11, 0b101}, []uint64{0b1}},
		{"incomparable pairs survive", []uint64{0b0011, 0b0110, 0b1100}, []uint64{0b0011, 0b0110, 0b1100}},
		{"duplicate superset dies once", []uint64{0b01, 0b11, 0b11}, []uint64{0b01}},
	}
	for _, c := range cases {
		got := pruneSupersets(c.fam)
		if len(got) != len(c.want) {
			t.Errorf("%s: got %b, want %b", c.name, got, c.want)
			continue
		}
		seen := map[uint64]bool{}
		for _, m := range got {
			seen[m] = true
		}
		for _, m := range c.want {
			if !seen[m] {
				t.Errorf("%s: missing survivor %b in %b", c.name, m, got)
			}
		}
	}
}

func TestPruneSupersetSetsEdgeCases(t *testing.T) {
	mk := func(idx ...int) *bitset.Set { return bitset.FromIndices(8, idx...) }
	cases := []struct {
		name string
		fam  []*bitset.Set
		want int
	}{
		{"empty", nil, 0},
		{"family of one", []*bitset.Set{mk(2, 3)}, 1},
		{"duplicates collapse", []*bitset.Set{mk(1, 2), mk(1, 2), mk(1, 2)}, 1},
		{"already minimal", []*bitset.Set{mk(0), mk(1), mk(2)}, 3},
		{"chain collapses", []*bitset.Set{mk(0, 1, 2), mk(0, 1), mk(0)}, 1},
		{"mixed", []*bitset.Set{mk(0, 1), mk(2, 3), mk(0, 1, 2), mk(2, 3)}, 2},
	}
	for _, c := range cases {
		got := pruneSupersetSets(c.fam)
		if len(got) != c.want {
			t.Errorf("%s: %d survivors, want %d", c.name, len(got), c.want)
		}
		// Every original set must contain some survivor (pruning only
		// removes dominated sets).
		for _, orig := range c.fam {
			ok := false
			for _, s := range got {
				if s.SubsetOf(orig) {
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("%s: %s lost its dominating subset", c.name, orig)
			}
		}
	}
}

// TestPruneSupersetsAgainstBruteForce cross-checks the bucketed pruning
// against the quadratic definition on random families.
func TestPruneSupersetsAgainstBruteForce(t *testing.T) {
	brute := func(fam []uint64) map[uint64]bool {
		seen := map[uint64]bool{}
		var uniq []uint64
		for _, m := range fam {
			if !seen[m] {
				seen[m] = true
				uniq = append(uniq, m)
			}
		}
		out := map[uint64]bool{}
		for _, a := range uniq {
			dominated := false
			for _, b := range uniq {
				if b != a && b&^a == 0 {
					dominated = true
					break
				}
			}
			if !dominated {
				out[a] = true
			}
		}
		return out
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		var fam []uint64
		for i := 0; i < rng.Intn(20); i++ {
			if m := rng.Uint64() & 0xFF; m != 0 {
				fam = append(fam, m)
			}
		}
		got := pruneSupersets(append([]uint64(nil), fam...))
		want := brute(fam)
		if len(got) != len(want) {
			t.Fatalf("family %b: got %b, want %v", fam, got, want)
		}
		for _, m := range got {
			if !want[m] {
				t.Fatalf("family %b: spurious survivor %b", fam, m)
			}
		}
	}
}

// --- Acceptance: parallel solver ⇔ sequential solver --------------------

// TestParallelSolverMatchesSequential: the worker-pool branch and bound
// must return the same minimum cardinality as the sequential solver on
// randomized families and on every pinned case from the test suite.
func TestParallelSolverMatchesSequential(t *testing.T) {
	pinned := [][]uint64{
		nil,
		{0b1},
		{0b11, 0b101, 0b110},
		{0b001, 0b010, 0b100},
		{0b111},
		{0b0011, 0b1100},
		{0b0110, 0b0011, 0b1100, 0b1001},
	}
	check := func(fam []uint64) {
		t.Helper()
		seq := bits.OnesCount64(MinHittingSetWorkers(fam, 1))
		for _, workers := range []int{2, 4, 8} {
			par := MinHittingSetWorkers(fam, workers)
			if got := bits.OnesCount64(par); got != seq {
				t.Fatalf("workers=%d: size %d, sequential %d on %b", workers, got, seq, fam)
			}
			for _, m := range fam {
				if m&par == 0 {
					t.Fatalf("workers-built set %b misses %b", par, m)
				}
			}
		}
	}
	for _, fam := range pinned {
		check(fam)
	}
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 120; trial++ {
		var fam []uint64
		for i := 0; i < 1+rng.Intn(14); i++ {
			if m := rng.Uint64() & 0xFFFF; m != 0 {
				fam = append(fam, m)
			}
		}
		check(fam)
	}
}

// TestParallelPipelineMatchesSequential runs the whole search with a
// worker pool and compares the minimum cardinalities (and exactness)
// against the sequential pipeline on every case the suite pins.
func TestParallelPipelineMatchesSequential(t *testing.T) {
	type tc struct{ n, h int }
	for _, c := range []tc{{3, 2}, {4, 2}, {4, 3}, {5, 1}} {
		seq, err := MinimumTestSetOpts(c.n, c.h, SorterAccepts, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := MinimumTestSetOpts(c.n, c.h, SorterAccepts, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if par.Size != seq.Size || par.Behaviors != seq.Behaviors || par.BadSets != seq.BadSets {
			t.Errorf("n=%d h=%d: parallel %+v != sequential %+v", c.n, c.h, par, seq)
		}
	}
	for _, c := range []tc{{3, 2}, {4, 2}, {4, 3}} {
		seq, err := MinimumPermTestSetOpts(c.n, c.h, PermSorterAccepts, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := MinimumPermTestSetOpts(c.n, c.h, PermSorterAccepts, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if par.Size != seq.Size || !par.Exact || par.Behaviors != seq.Behaviors || par.BadSets != seq.BadSets {
			t.Errorf("perm n=%d h=%d: parallel %+v != sequential %+v", c.n, c.h, par, seq)
		}
	}
}

// TestMinHittingSetBitsWorkers mirrors the word-solver cross-check on
// the bitset entry point.
func TestMinHittingSetBitsWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 60; trial++ {
		var fam []*bitset.Set
		for i := 0; i < 1+rng.Intn(10); i++ {
			s := bitset.New(20)
			for b := 0; b < 20; b++ {
				if rng.Intn(4) == 0 {
					s.Add(b)
				}
			}
			if !s.Empty() {
				fam = append(fam, s)
			}
		}
		seq := MinHittingSetBitsWorkers(20, fam, 0, 1)
		par := MinHittingSetBitsWorkers(20, fam, 0, 4)
		if !seq.Exact || !par.Exact || seq.Size != par.Size {
			t.Fatalf("trial %d: sequential %d (exact=%v) vs parallel %d (exact=%v)",
				trial, seq.Size, seq.Exact, par.Size, par.Exact)
		}
		for _, s := range fam {
			if !s.Intersects(par.Elements) {
				t.Fatalf("trial %d: parallel set %s misses %s", trial, par.Elements, s)
			}
		}
	}
}

// TestParallelClosureMatchesSequential: the frontier-parallel BFS must
// enumerate exactly the sequential closure (as a set).
func TestParallelClosureMatchesSequential(t *testing.T) {
	for n := 2; n <= 5; n++ {
		for h := 1; h < n; h++ {
			seqSt, err := binaryClosureStore(context.Background(), n, Comparators(n, h), 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			parSt, err := binaryClosureStore(context.Background(), n, Comparators(n, h), 0, 4)
			if err != nil {
				t.Fatal(err)
			}
			if seqSt.count != parSt.count {
				t.Fatalf("n=%d h=%d: parallel closure %d, sequential %d", n, h, parSt.count, seqSt.count)
			}
			seen := make(map[string]bool, seqSt.count)
			for i := 0; i < seqSt.count; i++ {
				seen[string(seqSt.at(i))] = true
			}
			for i := 0; i < parSt.count; i++ {
				if !seen[string(parSt.at(i))] {
					t.Fatalf("n=%d h=%d: parallel closure found behaviour outside sequential closure", n, h)
				}
			}
		}
	}
}

// TestParallelClosureLimit: the limit must trip under the pool too.
func TestParallelClosureLimit(t *testing.T) {
	if _, err := binaryClosureStore(context.Background(), 4, Comparators(4, 3), 10, 4); err == nil {
		t.Error("limit should trip with workers")
	}
}

// TestNodeBudgetExhaustionReportsInexact: a starved budget must come
// back Exact=false, never a wrong "certified" answer.
func TestNodeBudgetExhaustionReportsInexact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// A messy random family large enough that greedy != disjoint bound
	// (so branching is required) is hard to pin; instead assert the
	// contract on many random instances: budget 1 either certifies via
	// bounds or reports inexact.
	for trial := 0; trial < 50; trial++ {
		var fam []*bitset.Set
		for i := 0; i < 8+rng.Intn(8); i++ {
			s := bitset.New(24)
			for b := 0; b < 24; b++ {
				if rng.Intn(5) == 0 {
					s.Add(b)
				}
			}
			if !s.Empty() {
				fam = append(fam, s)
			}
		}
		r := MinHittingSetBits(24, fam, 1)
		full := MinHittingSetBits(24, fam, 0)
		if !full.Exact {
			t.Fatalf("trial %d: unlimited budget not exact", trial)
		}
		if r.Exact && r.Size != full.Size {
			t.Fatalf("trial %d: budget-1 claimed exact %d, true minimum %d", trial, r.Size, full.Size)
		}
		if r.Size < full.Size {
			t.Fatalf("trial %d: budget-1 size %d below true minimum %d", trial, r.Size, full.Size)
		}
	}
}
