package search

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"sortnets/internal/eval"
)

// The closure engine behind Closure and PermClosure: a reachability
// BFS over behaviour tables, stored as one flat byte arena of
// fixed-stride entries with dense IDs 0..Count()-1 instead of a
// map[struct]bool of large keys. Dense storage is what lets the
// failure-family pass walk behaviours as contiguous bytes (no string
// re-slicing, no map iteration) and what makes the frontier
// parallelizable: workers expand disjoint slices of the current
// frontier concurrently and dedupe through a sharded interning table,
// so no single map (or its rehash of multi-hundred-byte keys) is the
// bottleneck.

// behaviorStore holds a behaviour closure as a flat arena of
// fixed-stride tables. Entry i occupies arena[i*stride:(i+1)*stride];
// entry 0 is always the seed (identity) behaviour. Entries are
// immutable once appended.
type behaviorStore struct {
	stride int
	arena  []byte
	count  int
	// BFS spanning-tree edges: entry i > 0 was first reached by
	// applying rule ruleOf[i] to entry parentOf[i] (< i). They let a
	// closure computed over one representation be replayed cheaply in
	// another (Floyd's binary↔permutation correspondence).
	parentOf []int32
	ruleOf   []int32
}

func (s *behaviorStore) at(i int) []byte { return s.arena[i*s.stride : (i+1)*s.stride] }

// expandFunc applies rule c (a comparator index into the alphabet) to
// the behaviour table src, writing the successor table to dst. dst and
// src never alias.
type expandFunc func(dst, src []byte, c int)

func errClosureLimit(limit int) error {
	return fmt.Errorf("search: behaviour closure exceeds limit %d", limit)
}

// closureWorkers resolves a worker-count request through the one
// rule the whole repository uses (eval.Workers: ≤ 0 means NumCPU), so
// a single-core box never pays goroutine or lock overhead on the
// sequential path and the search stages agree with the eval pool.
func closureWorkers(w int) int { return eval.Workers(w) }

// closureStore enumerates the closure of seed under degree expansion
// rules by BFS. limit caps the number of behaviours (0 = unlimited);
// exceeding it returns an error so callers never silently truncate a
// universe they meant to exhaust. With workers == 1 the enumeration
// order is the classical deterministic BFS order; with more workers
// each BFS level is expanded concurrently and the order within a level
// depends on scheduling (the closure is the same set either way —
// downstream consumers canonicalize).
func closureStore(ctx context.Context, stride int, seed []byte, degree int, expand expandFunc, limit, workers int) (*behaviorStore, error) {
	if len(seed) != stride {
		panic(fmt.Sprintf("search: seed has %d bytes, stride is %d", len(seed), stride))
	}
	st := &behaviorStore{
		stride:   stride,
		arena:    append([]byte(nil), seed...),
		count:    1,
		parentOf: []int32{-1},
		ruleOf:   []int32{-1},
	}
	workers = closureWorkers(workers)
	if workers == 1 || degree == 0 {
		return st, st.bfsSeq(ctx, degree, expand, limit)
	}
	return st, st.bfsPar(ctx, degree, expand, limit, workers)
}

// internTable is an open-addressing dedupe index over the arena: slots
// hold id+1 (0 = empty) and keys are compared against the arena bytes
// directly, so lookups allocate nothing and carry no pointer for the
// GC to trace — unlike a map[string]int32 of table keys, whose hashing
// and write barriers dominated the closure profile.
type internTable struct {
	slots []int32
	mask  uint64
	n     int
}

func newInternTable() *internTable {
	return &internTable{slots: make([]int32, 256), mask: 255}
}

// hashBytes mixes the key a word at a time (multiply + xor-shift;
// byte-wise FNV for the tail). Collisions are harmless — probes
// compare the full key against the arena — so speed beats
// cryptographic spread here.
func hashBytes(key []byte) uint64 {
	h := uint64(14695981039346656037)
	i := 0
	for ; i+8 <= len(key); i += 8 {
		h = (h ^ binary.LittleEndian.Uint64(key[i:])) * 0x9E3779B97F4A7C15
		h ^= h >> 29
	}
	for ; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 1099511628211
	}
	return h
}

// lookupOrClaim probes for key; when present it reports found, and
// otherwise claims the next slot for the id the caller is about to
// append (the caller MUST append key to the arena at that id).
func (t *internTable) lookupOrClaim(st *behaviorStore, key []byte, id int32) (found bool) {
	if uint64(t.n)*4 >= uint64(len(t.slots))*3 {
		t.grow(st)
	}
	i := hashBytes(key) & t.mask
	for {
		s := t.slots[i]
		if s == 0 {
			t.slots[i] = id + 1
			t.n++
			return false
		}
		if string(st.at(int(s-1))) == string(key) {
			return true
		}
		i = (i + 1) & t.mask
	}
}

func (t *internTable) grow(st *behaviorStore) {
	old := t.slots
	t.slots = make([]int32, len(old)*2)
	t.mask = uint64(len(t.slots) - 1)
	for _, s := range old {
		if s == 0 {
			continue
		}
		i := hashBytes(st.at(int(s-1))) & t.mask
		for t.slots[i] != 0 {
			i = (i + 1) & t.mask
		}
		t.slots[i] = s
	}
}

// bfsSeq is the lock-free single-worker path: one intern table, queue
// order identical to the legacy map-backed BFS. Cancellation is
// checked once per dequeued behaviour (a block of degree expansions).
func (st *behaviorStore) bfsSeq(ctx context.Context, degree int, expand expandFunc, limit int) error {
	seen := newInternTable()
	seen.lookupOrClaim(st, st.at(0), 0)
	scratch := make([]byte, st.stride)
	for head := 0; head < st.count; head++ {
		if head&255 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		// The arena may be re-sliced by append below; entries already
		// written stay valid in the old backing array, so src needs no
		// refresh inside the inner loop.
		src := st.at(head)
		for c := 0; c < degree; c++ {
			expand(scratch, src, c)
			if seen.lookupOrClaim(st, scratch, int32(st.count)) {
				continue
			}
			if limit > 0 && st.count >= limit {
				return errClosureLimit(limit)
			}
			st.arena = append(st.arena, scratch...)
			st.count++
			st.parentOf = append(st.parentOf, int32(head))
			st.ruleOf = append(st.ruleOf, int32(c))
		}
	}
	return nil
}

// internShards is the shard count of the parallel dedupe table. Power
// of two; 64 shards keep lock contention negligible for any worker
// count a single machine offers.
const internShards = 64

type internShard struct {
	mu sync.Mutex
	m  map[string]struct{}
}

// shardOf maps a behaviour table to its dedupe shard, reusing the
// word-at-a-time hashBytes instead of a second byte-wise pass.
func shardOf(key []byte) uint32 {
	return uint32(hashBytes(key) % internShards)
}

// bfsPar expands the closure level by level: workers claim frontier
// entries through an atomic cursor, expand them against the full
// alphabet, and dedupe candidates through the sharded interning table
// (first claimant wins). New behaviours are buffered per worker and
// merged into the arena at the level barrier, where they receive their
// dense IDs and form the next frontier. Workers only read the arena
// while it is frozen, so expansion runs without any global lock.
func (st *behaviorStore) bfsPar(ctx context.Context, degree int, expand expandFunc, limit, workers int) error {
	var shards [internShards]internShard
	for i := range shards {
		shards[i].m = make(map[string]struct{}, 16)
	}
	shards[shardOf(st.at(0))].m[string(st.at(0))] = struct{}{}

	type find struct {
		key    string
		parent int32
		rule   int32
	}
	frontier := []int32{0}
	// known counts every behaviour claimed so far (arena + in-flight
	// level claims): the limit is enforced mid-level too, so a frontier
	// that explodes stops allocating near the cap instead of
	// materializing a whole oversized level before the barrier check.
	known := atomic.Int64{}
	known.Store(int64(st.count))
	for len(frontier) > 0 {
		locals := make([][]find, workers)
		var cursor atomic.Int64
		var overflow atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				scratch := make([]byte, st.stride)
				for {
					i := cursor.Add(1) - 1
					if i >= int64(len(frontier)) || overflow.Load() || ctx.Err() != nil {
						return
					}
					src := st.at(int(frontier[i]))
					for c := 0; c < degree; c++ {
						expand(scratch, src, c)
						sh := &shards[shardOf(scratch)]
						sh.mu.Lock()
						_, seen := sh.m[string(scratch)]
						if !seen {
							key := string(scratch)
							sh.m[key] = struct{}{}
							locals[w] = append(locals[w], find{key, frontier[i], int32(c)})
						}
						sh.mu.Unlock()
						if !seen && limit > 0 && known.Add(1) > int64(limit) {
							overflow.Store(true)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		if overflow.Load() {
			return errClosureLimit(limit)
		}
		if err := ctx.Err(); err != nil {
			return err
		}

		// Barrier: merge the workers' finds into the arena in worker
		// order, assigning dense IDs.
		frontier = frontier[:0]
		for _, found := range locals {
			for _, f := range found {
				if limit > 0 && st.count >= limit {
					return errClosureLimit(limit)
				}
				id := int32(st.count)
				st.arena = append(st.arena, f.key...)
				st.count++
				st.parentOf = append(st.parentOf, f.parent)
				st.ruleOf = append(st.ruleOf, f.rule)
				frontier = append(frontier, id)
			}
		}
	}
	return nil
}
