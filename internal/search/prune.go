package search

import (
	"math/bits"
	"slices"

	"sortnets/internal/bitset"
)

// Superset pruning, popcount-bucketed. After deduplication a set can
// only be dominated by one of strictly smaller cardinality, so each
// candidate — taken in ascending (popcount, content) order — is
// checked against the survivors of strictly smaller popcount only,
// with the singleton bucket collapsed into a single union mask
// (membership test instead of a scan). The quadratic all-pairs sweep
// this replaces compared every set against every other. Output is in
// canonical (popcount, content) order, so downstream solving does not
// depend on closure enumeration order.

// pruneSupersets prunes a family of single-word masks.
func pruneSupersets(fam []uint64) []uint64 {
	if len(fam) == 0 {
		return nil
	}
	uniq := make([]uint64, 0, len(fam))
	seen := make(map[uint64]struct{}, len(fam))
	for _, m := range fam {
		if _, ok := seen[m]; !ok {
			seen[m] = struct{}{}
			uniq = append(uniq, m)
		}
	}
	slices.SortFunc(uniq, func(a, b uint64) int {
		if pa, pb := bits.OnesCount64(a), bits.OnesCount64(b); pa != pb {
			return pa - pb
		}
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	})
	var singles uint64
	out := make([]uint64, 0, len(uniq))
	for _, m := range uniq {
		pc := bits.OnesCount64(m)
		if pc == 1 {
			singles |= m
			out = append(out, m)
			continue
		}
		if m&singles != 0 {
			continue // contains a singleton survivor
		}
		dominated := false
		for _, s := range out {
			spc := bits.OnesCount64(s)
			if spc >= pc {
				break // survivors are popcount-sorted; no subset beyond
			}
			if spc > 1 && s&^m == 0 {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, m)
		}
	}
	return out
}

// appendWordsKey serializes words into key (little-endian bytes) for
// use as a dedupe map key — the one encoding every dedupe site shares.
func appendWordsKey(key []byte, words []uint64) []byte {
	for _, w := range words {
		for b := 0; b < 8; b++ {
			key = append(key, byte(w>>uint(8*b)))
		}
	}
	return key
}

// maskRow pairs a multi-word mask with its cached popcount and the
// index of the object it came from.
type maskRow struct {
	words []uint64
	pc    int
	src   int
}

// pruneSupersetRows prunes multi-word rows in place of the bitset
// sweep; returns the surviving rows in canonical order. With dedupe
// set, duplicates (by content) keep the first occurrence; callers
// whose rows are already distinct skip that map pass.
func pruneSupersetRows(rows []maskRow, dedupe bool) []maskRow {
	uniq := rows
	if dedupe {
		seen := make(map[string]struct{}, len(rows))
		key := make([]byte, 0, 64)
		uniq = rows[:0]
		for _, r := range rows {
			key = appendWordsKey(key[:0], r.words)
			if _, ok := seen[string(key)]; ok {
				continue
			}
			seen[string(key)] = struct{}{}
			uniq = append(uniq, r)
		}
	}
	// Rows are distinct here, so (pc, content) is a total order and a
	// plain (unstable) sort is canonical.
	slices.SortFunc(uniq, func(x, y maskRow) int {
		if x.pc != y.pc {
			return x.pc - y.pc
		}
		for k := range x.words {
			switch {
			case x.words[k] < y.words[k]:
				return -1
			case x.words[k] > y.words[k]:
				return 1
			}
		}
		return 0
	})
	out := uniq[:0]
	for _, r := range uniq {
		dominated := false
		for _, s := range out {
			if s.pc >= r.pc {
				break
			}
			if subsetWords(s.words, r.words) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, r)
		}
	}
	return out
}

// pruneSupersetSets prunes a family of bitsets (the permutation-space
// path); survivors are returned in canonical (popcount, content)
// order.
func pruneSupersetSets(fam []*bitset.Set) []*bitset.Set {
	rows := make([]maskRow, len(fam))
	for i, s := range fam {
		rows[i] = maskRow{words: s.Words(), pc: s.Count(), src: i}
	}
	kept := pruneSupersetRows(rows, true)
	out := make([]*bitset.Set, len(kept))
	for i, r := range kept {
		out[i] = fam[r.src]
	}
	return out
}
