package search

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"sortnets/internal/bitvec"
	"sortnets/internal/gen"
	"sortnets/internal/network"
)

func TestBehaviorMatchesNetworkEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(5)
		w := network.Random(n, rng.Intn(3*n), rng)
		b := OfNetwork(w)
		it := bitvec.All(n)
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			if got := uint64(b.Output(int(v.Bits))); got != w.ApplyVec(v).Bits {
				t.Fatalf("behaviour table wrong for %s on %s", w, v)
			}
		}
	}
}

func TestIdentityBehavior(t *testing.T) {
	b := Identity(3)
	for x := 0; x < 8; x++ {
		if b.Output(x) != byte(x) {
			t.Fatalf("identity maps %d to %d", x, b.Output(x))
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n > MaxLines")
		}
	}()
	Identity(9)
}

func TestComparatorsAlphabet(t *testing.T) {
	if got := len(Comparators(5, 4)); got != 10 {
		t.Errorf("unrestricted alphabet size %d, want C(5,2)=10", got)
	}
	if got := len(Comparators(5, 1)); got != 4 {
		t.Errorf("height-1 alphabet size %d, want 4", got)
	}
	for _, c := range Comparators(6, 2) {
		if c.Height() > 2 {
			t.Errorf("comparator %v exceeds height bound", c)
		}
	}
}

func TestClosureSizes(t *testing.T) {
	// Height-1 closures number exactly n! — each behaviour of a
	// primitive network is determined by the permutation it applies
	// to the "all distinct" input (de Bruijn's setting).
	want := map[int]int{2: 2, 3: 6, 4: 24, 5: 120}
	for n, w := range want {
		bs, err := Closure(n, Comparators(n, 1), 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(bs) != w {
			t.Errorf("n=%d: height-1 closure %d, want n!=%d", n, len(bs), w)
		}
	}
}

func TestClosureLimit(t *testing.T) {
	if _, err := Closure(4, Comparators(4, 3), 10); err == nil {
		t.Error("limit should trip")
	}
}

func TestClosureContainsSorterBehavior(t *testing.T) {
	for n := 2; n <= 4; n++ {
		bs, err := Closure(n, Comparators(n, n-1), 0)
		if err != nil {
			t.Fatal(err)
		}
		sorter := OfNetwork(gen.Sorter(n))
		found := false
		for _, b := range bs {
			if b == sorter {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("n=%d: sorter behaviour missing from closure", n)
		}
	}
}

func TestMinimumTestSetConfirmsTheorem22(t *testing.T) {
	// The headline computational confirmation: over ALL networks, the
	// exact minimum 0/1 test set for sorting is 2ⁿ − n − 1 — and every
	// single test is forced by a singleton failure set, which is
	// precisely the Lemma 2.1 phenomenon.
	for n := 2; n <= 4; n++ {
		r, err := MinimumTestSet(n, n-1, SorterAccepts, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		want := bitvec.Universe(n) - n - 1
		if r.Size != want {
			t.Errorf("n=%d: minimum %d, want 2ⁿ−n−1 = %d", n, r.Size, want)
		}
		if r.ForcedSize != want {
			t.Errorf("n=%d: %d forced tests, want all %d", n, r.ForcedSize, want)
		}
		for _, v := range r.Tests {
			if v.IsSorted() {
				t.Errorf("n=%d: sorted string %s in minimum test set", n, v)
			}
		}
	}
}

func TestMinimumTestSetHeight1IsNMinus1(t *testing.T) {
	// New (post-paper) exact numbers: with 0/1 inputs, height-1
	// networks need exactly n−1 tests — the strings 1^i 0^(n−i).
	// (De Bruijn's single test is a permutation; binary inputs are
	// weaker, and this quantifies by how much.)
	for n := 2; n <= 6; n++ {
		r, err := MinimumTestSet(n, 1, SorterAccepts, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if r.Size != n-1 {
			t.Errorf("n=%d: height-1 minimum %d, want n−1=%d", n, r.Size, n-1)
		}
		for _, v := range r.Tests {
			// Each test must be 1^i 0^(n−i).
			if v.Reverse().IsSorted() == false {
				t.Errorf("n=%d: height-1 test %s is not of the form 1^i0^j", n, v)
			}
		}
	}
}

func TestMinimumTestSetHeight2MatchesFull(t *testing.T) {
	// The answer (for small n) to the paper's Section 3 open question:
	// height-2 networks already require the FULL 2ⁿ−n−1 test set.
	for n := 3; n <= 5; n++ {
		r2, err := MinimumTestSet(n, 2, SorterAccepts, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		want := bitvec.Universe(n) - n - 1
		if r2.Size != want {
			t.Errorf("n=%d: height-2 minimum %d, want %d", n, r2.Size, want)
		}
	}
}

func TestMinimumTestSetSelector(t *testing.T) {
	// Theorem 2.4(i) confirmed exactly for n=4: Σᵢ₌₀..k C(4,i) − k − 1.
	want := map[int]int{1: 3, 2: 8, 3: 11, 4: 11}
	for k, expected := range want {
		r, err := MinimumTestSet(4, 3, SelectorAccepts(k), 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if r.Size != expected {
			t.Errorf("k=%d: minimum %d, want %d", k, r.Size, expected)
		}
	}
}

func TestMinimumTestSetMerger(t *testing.T) {
	// Theorem 2.5(i) confirmed exactly: n²/4 for n=4 (and n=2).
	for _, n := range []int{2, 4} {
		r, err := MinimumTestSet(n, n-1, MergerAccepts, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if r.Size != n*n/4 {
			t.Errorf("n=%d: merger minimum %d, want n²/4=%d", n, r.Size, n*n/4)
		}
	}
}

func TestDeBruijnTheorem(t *testing.T) {
	// Exhaustive over all height-1 networks with ≤ maxComps
	// comparators: sorts-reverse ⟺ sorter.
	if err := DeBruijnHolds(3, 6); err != nil {
		t.Error(err)
	}
	if err := DeBruijnHolds(4, 6); err != nil {
		t.Error(err)
	}
}

func TestMinHittingSetExactness(t *testing.T) {
	cases := []struct {
		fam  []uint64
		want int
	}{
		{nil, 0},
		{[]uint64{0b1}, 1},
		{[]uint64{0b11, 0b101, 0b110}, 2},             // pairwise overlapping
		{[]uint64{0b001, 0b010, 0b100}, 3},            // disjoint singletons
		{[]uint64{0b111}, 1},                          // any element
		{[]uint64{0b0011, 0b1100}, 2},                 // two disjoint pairs
		{[]uint64{0b0110, 0b0011, 0b1100, 0b1001}, 2}, // cycle: opposite corners
	}
	for i, c := range cases {
		got := bits.OnesCount64(MinHittingSet(c.fam))
		if got != c.want {
			t.Errorf("case %d: size %d, want %d", i, got, c.want)
		}
	}
}

func TestMinHittingSetHitsEverything(t *testing.T) {
	f := func(raw []uint16) bool {
		var fam []uint64
		for _, r := range raw {
			if r != 0 {
				fam = append(fam, uint64(r))
			}
		}
		hit := MinHittingSet(fam)
		for _, m := range fam {
			if m&hit == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMinHittingSetNotLargerThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		var fam []uint64
		for i := 0; i < 1+rng.Intn(12); i++ {
			m := rng.Uint64() & 0xFFF
			if m != 0 {
				fam = append(fam, m)
			}
		}
		exact := bits.OnesCount64(MinHittingSet(fam))
		gr := bits.OnesCount64(greedy(pruneSupersets(fam)))
		if exact > gr {
			t.Fatalf("exact %d > greedy %d for %v", exact, gr, fam)
		}
	}
}

func TestMinHittingSetPanicsOnEmptySet(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MinHittingSet([]uint64{0})
}

func TestPruneSupersets(t *testing.T) {
	fam := []uint64{0b111, 0b011, 0b011, 0b100}
	out := pruneSupersets(fam)
	if len(out) != 2 {
		t.Fatalf("pruned to %d sets (%v), want 2", len(out), out)
	}
	seen := map[uint64]bool{}
	for _, m := range out {
		seen[m] = true
	}
	if !seen[0b011] || !seen[0b100] {
		t.Errorf("wrong survivors: %v", out)
	}
}

func TestResultString(t *testing.T) {
	r := TestSetResult{N: 4, Height: 2, Behaviors: 166, BadSets: 11, Size: 11}
	if r.String() == "" {
		t.Error("empty string")
	}
}
