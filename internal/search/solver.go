package search

import (
	"context"
	"math/bits"
	"slices"
	"sync"
	"sync/atomic"
)

// The exact hitting-set core shared by MinHittingSet (word masks) and
// MinHittingSetBits (bitset families). The instance is reduced to a
// covering problem over a compressed element space: each element
// carries a precomputed bitset of the families containing it, so a
// branch-and-bound node extends coverage with one OR instead of
// re-intersecting every family against the chosen set, and never
// sorts or allocates — all state lives in per-worker scratch stacks.
//
// Reductions before branching: forced singletons (a one-element
// failure set forces that element — exactly the Lemma 2.1 argument),
// canonical family ordering (size, then content — so results do not
// depend on closure enumeration order), and element dominance (an
// element whose family coverage is a subset of another's can be
// dropped; cf. the pruning-driven search of Renz & Nebel). The bound
// is the pairwise-disjoint-family count; the incumbent starts from a
// deterministic greedy cover and is re-polished greedily at depth
// every polishPeriod nodes (incumbent sharing in the spirit of
// Goldberg's IC3 convergence work). With workers > 1 the tree is
// carved into frontier tasks claimed dynamically by a worker pool
// that prunes against a shared atomic incumbent; the minimum
// cardinality is deterministic either way (only the identity of the
// witness can vary across parallel schedules).

// coverProblem is the reduced instance. Elements are compressed to
// indices 0..len(elems)-1; elems maps back to original element ids.
type coverProblem struct {
	nf       int        // families
	fw       int        // words per family-space bitset
	tailMask uint64     // valid bits of the last family word
	elems    []int32    // reduced element ids, ascending
	cover    [][]uint64 // per element index: families containing it
	aliveIdx []int32    // element indices surviving dominance, ascending
	famElems [][]int32  // per family: element indices, ascending
	famMask  [][]uint64 // per family: mask over element-index space
	ew       int        // words per element-space bitset
}

func wordsFor(n int) int { return (n + 63) / 64 }

// newCoverProblem compresses and canonicalizes a family list (element
// lists over original ids; all non-empty) and applies element
// dominance. Families are sorted by (size, content) so everything
// downstream is independent of enumeration order.
func newCoverProblem(fams [][]int32) *coverProblem {
	slices.SortFunc(fams, func(a, b []int32) int {
		if len(a) != len(b) {
			return len(a) - len(b)
		}
		for k := range a {
			if a[k] != b[k] {
				return int(a[k]) - int(b[k])
			}
		}
		return 0
	})

	// Compress the element space to the ids that actually occur.
	idx := make(map[int32]int32)
	var elems []int32
	for _, f := range fams {
		for _, e := range f {
			if _, ok := idx[e]; !ok {
				idx[e] = 0
				elems = append(elems, e)
			}
		}
	}
	slices.Sort(elems)
	for i, e := range elems {
		idx[e] = int32(i)
	}

	p := &coverProblem{
		nf:    len(fams),
		fw:    wordsFor(len(fams)),
		elems: elems,
		ew:    wordsFor(len(elems)),
	}
	p.tailMask = ^uint64(0)
	if r := p.nf & 63; r != 0 {
		p.tailMask = uint64(1)<<uint(r) - 1
	}
	coverArena := make([]uint64, len(elems)*p.fw)
	p.cover = make([][]uint64, len(elems))
	for i := range p.cover {
		p.cover[i] = coverArena[i*p.fw : (i+1)*p.fw]
	}
	for fi, f := range fams {
		for _, e := range f {
			ei := idx[e]
			p.cover[ei][fi>>6] |= 1 << uint(fi&63)
		}
	}

	// Element dominance: drop e when cover[e] ⊆ cover[d] for some
	// other kept element d (ties keep the lowest element id, i.e. the
	// lowest index — elems is ascending).
	alive := make([]bool, len(elems))
	for i := range alive {
		alive[i] = true
	}
	for i := range elems {
		for j := range elems {
			if i == j || !alive[i] || !alive[j] {
				continue
			}
			if subsetWords(p.cover[i], p.cover[j]) && (j < i || !subsetWords(p.cover[j], p.cover[i])) {
				alive[i] = false
				break
			}
		}
	}

	for i := range elems {
		if alive[i] {
			p.aliveIdx = append(p.aliveIdx, int32(i))
		}
	}
	p.famElems = make([][]int32, len(fams))
	maskArena := make([]uint64, len(fams)*p.ew)
	p.famMask = make([][]uint64, len(fams))
	for fi, f := range fams {
		p.famMask[fi] = maskArena[fi*p.ew : (fi+1)*p.ew]
		for _, e := range f {
			ei := idx[e]
			if !alive[ei] {
				continue
			}
			p.famElems[fi] = append(p.famElems[fi], ei)
			p.famMask[fi][ei>>6] |= 1 << uint(ei&63)
		}
		slices.Sort(p.famElems[fi])
	}
	return p
}

func subsetWords(a, b []uint64) bool {
	for i, w := range a {
		if w&^b[i] != 0 {
			return false
		}
	}
	return true
}

func intersectsWords(a, b []uint64) bool {
	for i, w := range a {
		if w&b[i] != 0 {
			return true
		}
	}
	return false
}

// firstUncovered returns the index of the first family not covered by
// cov — the smallest uncovered family, since families are sorted by
// size — or -1 when everything is covered.
func (p *coverProblem) firstUncovered(cov []uint64) int {
	for wi := 0; wi < p.fw; wi++ {
		w := ^cov[wi]
		if wi == p.fw-1 {
			w &= p.tailMask
		}
		if w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// disjointLB greedily collects pairwise-disjoint uncovered families —
// each needs its own element — stopping early at cutoff. used is
// caller scratch over the element-index space.
func (p *coverProblem) disjointLB(cov, used []uint64, cutoff int) int {
	for i := range used {
		used[i] = 0
	}
	lb := 0
	for i := 0; i < p.nf && lb < cutoff; i++ {
		if cov[i>>6]>>uint(i&63)&1 == 1 {
			continue
		}
		if intersectsWords(p.famMask[i], used) {
			continue
		}
		lb++
		for w, m := range p.famMask[i] {
			used[w] |= m
		}
	}
	return lb
}

// greedyComplete extends cov to a full cover, appending picks (element
// indices) to dst: repeatedly the element covering the most uncovered
// families, ties to the lowest element index (ascending scan), so
// greedy solutions are reproducible run-to-run. scratch is caller
// scratch over family space (clobbered). Gives up and returns nil
// when more than maxPicks picks would be needed (maxPicks < 0 means
// unlimited).
func (p *coverProblem) greedyComplete(cov, scratch []uint64, dst []int32, maxPicks int) []int32 {
	copy(scratch, cov)
	n := 0
	for p.firstUncovered(scratch) >= 0 {
		if maxPicks >= 0 && n >= maxPicks {
			return nil
		}
		bestE, bestC := -1, 0
		for _, e := range p.aliveIdx {
			c := 0
			for wi, w := range p.cover[e] {
				c += bits.OnesCount64(w &^ scratch[wi])
			}
			if c > bestC {
				bestE, bestC = int(e), c
			}
		}
		if bestE < 0 {
			// Unreachable for well-formed instances (every family
			// non-empty and containing at least one live element).
			panic("search: greedy cover stalled")
		}
		for wi, w := range p.cover[bestE] {
			scratch[wi] |= w
		}
		dst = append(dst, int32(bestE))
		n++
	}
	return dst
}

// incumbent is the best hitting set found so far, shared by all
// workers: the size is read lock-free on the hot path, the witness
// updated under the mutex only on strict improvement.
type incumbent struct {
	size atomic.Int32
	mu   sync.Mutex
	set  []int32
}

func (b *incumbent) tryImprove(chosen []int32) {
	n := int32(len(chosen))
	if n >= b.size.Load() {
		return
	}
	b.mu.Lock()
	if n < b.size.Load() {
		b.set = append(b.set[:0], chosen...)
		b.size.Store(n)
	}
	b.mu.Unlock()
}

const (
	polishPeriod = 4096 // nodes between greedy re-polishes of the incumbent
	nodeFlush    = 256  // local node counts flushed to the shared budget
)

// hsWorker is one searcher's scratch: coverage stacks indexed by
// depth, the chosen stack, and lower-bound/polish buffers — allocated
// once per worker, never per node (the hoisted-scratch sequential
// fallback the parallel solver builds on).
type hsWorker struct {
	p        *coverProblem
	best     *incumbent
	ctx      context.Context
	covStack [][]uint64
	chosen   []int32
	lbUsed   []uint64
	polCov   []uint64
	polPick  []int32
	nodes    int64
	budget   int64         // ≤ 0: unlimited
	shared   *atomic.Int64 // parallel mode: global node count
	aborted  bool
	canceled bool // aborted because the context was cancelled
}

func newHsWorker(ctx context.Context, p *coverProblem, best *incumbent, budget int64, shared *atomic.Int64) *hsWorker {
	return &hsWorker{
		p:      p,
		best:   best,
		ctx:    ctx,
		lbUsed: make([]uint64, p.ew),
		polCov: make([]uint64, p.fw),
		budget: budget,
		shared: shared,
	}
}

func (w *hsWorker) cov(depth int) []uint64 {
	for len(w.covStack) <= depth {
		w.covStack = append(w.covStack, make([]uint64, w.p.fw))
	}
	return w.covStack[depth]
}

func (w *hsWorker) overBudget() bool {
	if w.budget <= 0 {
		return false
	}
	if w.shared == nil {
		return w.nodes > w.budget
	}
	if w.nodes%nodeFlush == 0 {
		w.shared.Add(nodeFlush)
	}
	return w.shared.Load() > w.budget
}

// dfs explores the subtree at depth (len(chosen) == depth, coverage in
// covStack[depth]). Cancellation is checked every nodeFlush nodes —
// the same cadence the shared budget is flushed at.
func (w *hsWorker) dfs(depth int) {
	w.nodes++
	if w.nodes%nodeFlush == 0 && w.ctx.Err() != nil {
		w.aborted, w.canceled = true, true
		return
	}
	if w.overBudget() {
		w.aborted = true
		return
	}
	cov := w.covStack[depth]
	fi := w.p.firstUncovered(cov)
	if fi < 0 {
		w.best.tryImprove(w.chosen)
		return
	}
	bound := int(w.best.size.Load())
	need := bound - depth // improving needs < need more elements
	if need <= 1 {
		return // even one more element cannot beat the incumbent
	}
	if depth+w.p.disjointLB(cov, w.lbUsed, need) >= bound {
		return
	}
	if w.nodes%polishPeriod == 0 {
		w.polish(depth)
	}
	child := w.cov(depth + 1)
	cov = w.covStack[depth] // cov may have been re-staged by growth
	for _, e := range w.p.famElems[fi] {
		for wi, m := range w.p.cover[e] {
			child[wi] = cov[wi] | m
		}
		w.chosen = append(w.chosen, e)
		w.dfs(depth + 1)
		w.chosen = w.chosen[:depth]
		if w.aborted {
			return
		}
	}
}

// polish greedily completes the current partial solution; an
// improvement tightens the shared incumbent (and with it every
// worker's bound) without waiting for the branch and bound to reach a
// leaf.
func (w *hsWorker) polish(depth int) {
	maxPicks := int(w.best.size.Load()) - depth - 1
	if maxPicks < 1 {
		return
	}
	w.polPick = w.polPick[:0]
	picks := w.p.greedyComplete(w.covStack[depth], w.polCov, w.polPick, maxPicks)
	if picks == nil {
		return
	}
	w.polPick = picks
	total := append(append(make([]int32, 0, depth+len(picks)), w.chosen[:depth]...), picks...)
	w.best.tryImprove(total)
}

// hsTask is one frontier subproblem handed to the worker pool.
type hsTask struct {
	chosen []int32
	cov    []uint64
}

// solveCover runs the exact search over a reduced problem, seeded with
// the greedy incumbent. Returns the best element-index set found and
// whether the search completed (false only on budget exhaustion). A
// cancelled context aborts the branch and bound and returns the
// context's error instead of a witness.
func solveCover(ctx context.Context, p *coverProblem, budget int64, workers int) ([]int32, bool, error) {
	best := &incumbent{}
	seed := newHsWorker(ctx, p, best, 0, nil)
	ub := p.greedyComplete(seed.cov(0), seed.polCov, nil, -1)
	best.set = append([]int32(nil), ub...)
	best.size.Store(int32(len(ub)))
	if p.disjointLB(seed.cov(0), seed.lbUsed, len(ub)+1) >= len(ub) {
		// Greedy met the disjoint bound: certified optimal without
		// branching (the common case for the paper's structured
		// families).
		return best.set, true, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}

	workers = closureWorkers(workers)
	if workers == 1 {
		w := newHsWorker(ctx, p, best, budget, nil)
		w.cov(0) // stage the (all-zero) root coverage
		w.dfs(0)
		if w.canceled {
			return nil, false, ctx.Err()
		}
		return best.set, !w.aborted, nil
	}

	// Carve the tree into tasks: expand the shallowest frontier node
	// until the pool has a few tasks per worker to claim.
	tasks := []hsTask{{cov: make([]uint64, p.fw)}}
	scout := newHsWorker(ctx, p, best, 0, nil)
	for len(tasks) > 0 && len(tasks) < workers*8 {
		t := tasks[0]
		tasks = tasks[1:]
		fi := p.firstUncovered(t.cov)
		if fi < 0 {
			best.tryImprove(t.chosen)
			continue
		}
		depth := len(t.chosen)
		bound := int(best.size.Load())
		if bound-depth <= 1 || depth+p.disjointLB(t.cov, scout.lbUsed, bound-depth) >= bound {
			continue
		}
		for _, e := range p.famElems[fi] {
			cov := make([]uint64, p.fw)
			for wi, m := range p.cover[e] {
				cov[wi] = t.cov[wi] | m
			}
			tasks = append(tasks, hsTask{
				chosen: append(append(make([]int32, 0, depth+1), t.chosen...), e),
				cov:    cov,
			})
		}
	}

	var cursor, sharedNodes atomic.Int64
	var exhausted, canceled atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := newHsWorker(ctx, p, best, budget, &sharedNodes)
			for {
				ti := cursor.Add(1) - 1
				if ti >= int64(len(tasks)) || ctx.Err() != nil {
					return
				}
				t := tasks[ti]
				depth := len(t.chosen)
				copy(w.cov(depth), t.cov)
				w.chosen = append(w.chosen[:0], t.chosen...)
				w.aborted = false
				w.canceled = false
				w.dfs(depth)
				if w.aborted {
					if w.canceled {
						canceled.Store(true)
					}
					exhausted.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if canceled.Load() || ctx.Err() != nil {
		return nil, false, ctx.Err()
	}
	return best.set, !exhausted.Load(), nil
}

// maskElemLists converts single-word family masks to the element-id
// lists solveHitting consumes (ascending unique ids per family).
func maskElemLists(fam []uint64) [][]int32 {
	lists := make([][]int32, len(fam))
	for i, m := range fam {
		for w := m; w != 0; w &= w - 1 {
			lists[i] = append(lists[i], int32(bits.TrailingZeros64(w)))
		}
	}
	return lists
}

// rowElemLists is maskElemLists for multi-word rows.
func rowElemLists(rows []maskRow) [][]int32 {
	lists := make([][]int32, len(rows))
	for i, r := range rows {
		for wi, w := range r.words {
			for ; w != 0; w &= w - 1 {
				lists[i] = append(lists[i], int32(wi<<6+bits.TrailingZeros64(w)))
			}
		}
	}
	return lists
}

// solveHitting is the full pipeline over families given as element-id
// lists: forced singletons, reduction, greedy bound, branch and bound.
// It returns the chosen original element ids (ascending) and whether
// the result is certified optimal. A cancelled context returns the
// context's error and no witness.
func solveHitting(ctx context.Context, fams [][]int32, budget int64, workers int) ([]int32, bool, error) {
	var forced []int32
	forcedSet := make(map[int32]bool)
	for {
		progress := false
		rest := fams[:0]
		for _, f := range fams {
			hit := false
			for _, e := range f {
				if forcedSet[e] {
					hit = true
					break
				}
			}
			if hit {
				continue
			}
			if len(f) == 1 {
				forcedSet[f[0]] = true
				forced = append(forced, f[0])
				progress = true
				continue
			}
			rest = append(rest, f)
		}
		fams = rest
		if !progress {
			break
		}
	}
	if len(fams) == 0 {
		slices.Sort(forced)
		return forced, true, nil
	}

	p := newCoverProblem(fams)
	idxs, exact, err := solveCover(ctx, p, budget, workers)
	if err != nil {
		return nil, false, err
	}
	out := forced
	for _, ei := range idxs {
		out = append(out, p.elems[ei])
	}
	slices.Sort(out)
	return out, exact, nil
}
