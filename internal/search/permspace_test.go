package search

import (
	"math/rand"
	"sort"
	"testing"

	"sortnets/internal/bitset"
	"sortnets/internal/network"
	"sortnets/internal/perm"
)

func TestPermBehaviorMatchesNetworkEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(4)
		w := network.Random(n, rng.Intn(3*n), rng)
		b := PermIdentity(n)
		for _, c := range w.Comps {
			b = b.Apply(n, c)
		}
		inputs := permInputs(n)
		for r, p := range inputs {
			want := w.Apply(p)
			got := b.Output(n, r)
			for i := range want {
				if int(got[i]) != want[i] {
					t.Fatalf("behaviour table wrong for %s on %s", w, p)
				}
			}
		}
	}
}

func TestPermClosureBijectsWithBinaryClosure(t *testing.T) {
	// Floyd's correspondence, at the level of whole behaviour spaces:
	// a network's permutation behaviour is determined by (and
	// determines) its binary behaviour, so the closures have equal
	// cardinality.
	for n := 2; n <= 4; n++ {
		for h := 1; h < n; h++ {
			pb, err := PermClosure(n, Comparators(n, h), 0)
			if err != nil {
				t.Fatal(err)
			}
			bb, err := Closure(n, Comparators(n, h), 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(pb) != len(bb) {
				t.Errorf("n=%d h=%d: perm closure %d != binary closure %d",
					n, h, len(pb), len(bb))
			}
		}
	}
}

func TestMinimumPermTestSetTheorem22ii(t *testing.T) {
	// C(n,⌊n/2⌋) − 1, confirmed by exhaustive computation over ALL
	// network behaviours.
	want := map[int]int{2: 1, 3: 2, 4: 5, 5: 9}
	for n, expected := range want {
		r, err := MinimumPermTestSet(n, n-1, PermSorterAccepts, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Exact {
			t.Fatalf("n=%d: not certified exact", n)
		}
		if r.Size != expected {
			t.Errorf("n=%d: minimum %d, want C(n,n/2)-1 = %d", n, r.Size, expected)
		}
		for _, p := range r.Tests {
			if p.IsSorted() {
				t.Errorf("n=%d: identity in minimum test set", n)
			}
		}
	}
}

func TestMinimumPermTestSetDeBruijn(t *testing.T) {
	// Height-1 networks: exactly ONE permutation test suffices, and
	// the reverse permutation is a valid witness (it hits every
	// failure set).
	for n := 2; n <= 5; n++ {
		r, err := MinimumPermTestSet(n, 1, PermSorterAccepts, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Exact || r.Size != 1 {
			t.Fatalf("n=%d: height-1 minimum %d (exact=%v), want exactly 1", n, r.Size, r.Exact)
		}
		// The reverse permutation must itself be a valid single test:
		// every bad height-1 behaviour fails it.
		behaviors, err := PermClosure(n, Comparators(n, 1), 0)
		if err != nil {
			t.Fatal(err)
		}
		fam := PermFailureFamily(n, behaviors, PermSorterAccepts)
		revRank := int(perm.Reverse(n).Rank())
		for _, s := range fam {
			if !s.Contains(revRank) {
				t.Fatalf("n=%d: a height-1 non-sorter passes the reverse permutation", n)
			}
		}
	}
}

func TestMinimumPermTestSetHeight2(t *testing.T) {
	// New numbers: height-2 networks already need the full
	// C(n,⌊n/2⌋)−1 permutation tests, matching the binary finding.
	want := map[int]int{3: 2, 4: 5, 5: 9}
	for n, expected := range want {
		r, err := MinimumPermTestSet(n, 2, PermSorterAccepts, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Exact || r.Size != expected {
			t.Errorf("n=%d: height-2 minimum %d (exact=%v), want %d", n, r.Size, r.Exact, expected)
		}
	}
}

func TestMinimumPermTestSetSelector(t *testing.T) {
	// Theorem 2.4(ii) at n=4: C(4,min(2,k)) − 1.
	want := map[int]int{1: 3, 2: 5, 3: 5, 4: 5}
	for k, expected := range want {
		r, err := MinimumPermTestSet(4, 3, PermSelectorAccepts(k), 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Exact || r.Size != expected {
			t.Errorf("k=%d: minimum %d (exact=%v), want %d", k, r.Size, r.Exact, expected)
		}
	}
}

func TestMinimumPermTestSetMerger(t *testing.T) {
	// Theorem 2.5(ii) at n=4: exactly n/2 = 2 permutations.
	r, err := MinimumPermTestSet(4, 3, PermMergerAccepts, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Exact || r.Size != 2 {
		t.Fatalf("merger minimum %d (exact=%v), want 2", r.Size, r.Exact)
	}
}

func TestPermFailureFamilyOfAlmostSorterShape(t *testing.T) {
	// Sanity check on the empty network at n=3: it outputs its input
	// unchanged, so its failure set is exactly the 5 non-identity
	// permutations.
	behaviors := []PermBehavior{PermIdentity(3)}
	fam := PermFailureFamily(3, behaviors, PermSorterAccepts)
	if len(fam) != 1 {
		t.Fatalf("family size %d", len(fam))
	}
	if fam[0].Count() != 5 {
		t.Errorf("empty network fails %d perms, want 5", fam[0].Count())
	}
}

func TestMinHittingSetBitsExactCases(t *testing.T) {
	mk := func(idx ...int) *bitset.Set { return bitset.FromIndices(16, idx...) }
	cases := []struct {
		fam  []*bitset.Set
		want int
	}{
		{nil, 0},
		{[]*bitset.Set{mk(3)}, 1},
		{[]*bitset.Set{mk(0, 1), mk(0, 2), mk(1, 2)}, 2},
		{[]*bitset.Set{mk(0), mk(1), mk(2)}, 3},
		{[]*bitset.Set{mk(0, 1), mk(2, 3)}, 2},
		{[]*bitset.Set{mk(1, 2), mk(0, 1), mk(2, 3), mk(0, 3)}, 2},
	}
	for i, c := range cases {
		r := MinHittingSetBits(16, c.fam, 0)
		if !r.Exact {
			t.Errorf("case %d: not exact", i)
		}
		if r.Size != c.want {
			t.Errorf("case %d: size %d, want %d", i, r.Size, c.want)
		}
		for _, s := range c.fam {
			if !s.Intersects(r.Elements) {
				t.Errorf("case %d: set %s unhit", i, s)
			}
		}
	}
}

func TestMinHittingSetBitsAgreesWithWordVersion(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 150; trial++ {
		var fam64 []uint64
		var famBits []*bitset.Set
		for i := 0; i < 1+rng.Intn(10); i++ {
			m := rng.Uint64() & 0x3FF
			if m == 0 {
				continue
			}
			fam64 = append(fam64, m)
			s := bitset.New(10)
			for b := 0; b < 10; b++ {
				if m>>uint(b)&1 == 1 {
					s.Add(b)
				}
			}
			famBits = append(famBits, s)
		}
		wordSize := popcount(MinHittingSet(fam64))
		bitsRes := MinHittingSetBits(10, famBits, 0)
		if !bitsRes.Exact || bitsRes.Size != wordSize {
			t.Fatalf("disagreement: word %d vs bits %d (exact=%v) on %v",
				wordSize, bitsRes.Size, bitsRes.Exact, fam64)
		}
	}
}

func popcount(x uint64) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

func TestMinHittingSetBitsPanicsOnEmptySet(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MinHittingSetBits(4, []*bitset.Set{bitset.New(4)}, 0)
}

func TestPermTestSetResultString(t *testing.T) {
	r := PermTestSetResult{N: 4, Height: 2, Size: 5, Exact: true}
	if r.String() == "" {
		t.Error("empty string")
	}
	r.Exact = false
	if r.String() == "" {
		t.Error("empty string")
	}
}

func TestPermInputsLexOrder(t *testing.T) {
	inputs := permInputs(4)
	if len(inputs) != 24 {
		t.Fatalf("%d inputs", len(inputs))
	}
	if !sort.SliceIsSorted(inputs, func(i, j int) bool {
		return inputs[i].Rank() < inputs[j].Rank()
	}) {
		t.Error("inputs not in rank order")
	}
	// Rank r input must unrank back to itself.
	for r, p := range inputs {
		if int64(r) != p.Rank() {
			t.Fatalf("input %d has rank %d", r, p.Rank())
		}
	}
}
