package search

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"sortnets/internal/bitset"
)

// Cancellation contract of the exact-search pipeline: the closure
// BFS, the failure-family build and the hitting-set branch and bound
// all observe a cancelled context promptly, with no worker left
// behind.

func searchCancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func searchCheckNoLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestMinimumTestSetCtxCancelled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		before := runtime.NumGoroutine()
		start := time.Now()
		_, err := MinimumTestSetCtx(searchCancelledCtx(), 6, 5, SorterAccepts, Options{Workers: workers})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", workers, err)
		}
		if d := time.Since(start); d > 100*time.Millisecond {
			t.Errorf("workers=%d: cancelled pipeline took %v", workers, d)
		}
		searchCheckNoLeak(t, before)
	}
}

func TestClosureBFSDeadline(t *testing.T) {
	// The unrestricted n=6 closure takes seconds; a 5ms deadline must
	// stop the BFS mid-enumeration on both the sequential and the
	// frontier-parallel path.
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		before := runtime.NumGoroutine()
		start := time.Now()
		_, err := binaryClosureStore(ctx, 6, Comparators(6, 5), 0, workers)
		cancel()
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("workers=%d: want a context error, got %v", workers, err)
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Errorf("workers=%d: deadline honored only after %v", workers, d)
		}
		searchCheckNoLeak(t, before)
	}
}

// hardFamily builds a random hitting-set instance messy enough that
// the solver must branch (greedy rarely meets the disjoint bound).
func hardFamily(rng *rand.Rand, universe, sets, size int) []*bitset.Set {
	fam := make([]*bitset.Set, sets)
	for i := range fam {
		s := bitset.New(universe)
		for s.Count() < size {
			s.Add(rng.Intn(universe))
		}
		fam[i] = s
	}
	return fam
}

func TestHittingSolverCtxCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fam := hardFamily(rng, 96, 220, 3)
	for _, workers := range []int{1, 4} {
		before := runtime.NumGoroutine()
		start := time.Now()
		_, err := MinHittingSetBitsCtx(searchCancelledCtx(), 96, fam, 0, workers)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", workers, err)
		}
		if d := time.Since(start); d > 100*time.Millisecond {
			t.Errorf("workers=%d: cancelled solve took %v", workers, d)
		}
		searchCheckNoLeak(t, before)
	}
}

func TestMinimumPermTestSetCtxCancelled(t *testing.T) {
	_, err := MinimumPermTestSetCtx(searchCancelledCtx(), 5, 4, PermSorterAccepts, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestCtxBackgroundEquivalence: the ctx pipeline with a Background
// context must reproduce the historical results exactly.
func TestCtxBackgroundEquivalence(t *testing.T) {
	want, err := MinimumTestSetOpts(4, 3, SorterAccepts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := MinimumTestSetCtx(context.Background(), 4, 3, SorterAccepts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != want.Size || got.Behaviors != want.Behaviors || got.BadSets != want.BadSets {
		t.Fatalf("ctx pipeline diverges: %+v vs %+v", got, want)
	}
}
