package search

import (
	"math/bits"
	"math/rand"
	"testing"
)

// Property test for the hitting-set solvers on RANDOMIZED instances
// (the PR 2 cross-checks pinned only the E-series families): on every
// generated family, the parallel solver and the sequential solver
// must return the same minimum cardinality, and both witnesses must
// actually hit every set. Small instances are additionally checked
// against a brute-force optimum.

// randomFamily draws m nonzero masks over e elements.
func randomFamily(rng *rand.Rand, m, e int) []uint64 {
	fam := make([]uint64, m)
	for i := range fam {
		for fam[i] == 0 {
			// Mix dense and sparse sets: sparse families force deep
			// branching, dense ones exercise the greedy/LB pruning.
			width := 1 + rng.Intn(e)
			var mask uint64
			for b := 0; b < width; b++ {
				mask |= 1 << uint(rng.Intn(e))
			}
			fam[i] = mask
		}
	}
	return fam
}

func assertHits(t *testing.T, fam []uint64, picked uint64, label string) {
	t.Helper()
	for _, m := range fam {
		if m&picked == 0 {
			t.Fatalf("%s: set %b not hit by %b", label, m, picked)
		}
	}
}

// bruteMinimum finds the true minimum hitting-set size by enumerating
// element subsets in cardinality order (e ≤ ~14 keeps this cheap).
func bruteMinimum(fam []uint64, e int) int {
	if len(fam) == 0 {
		return 0
	}
	for k := 1; k <= e; k++ {
		// All subsets of size k via Gosper's hack.
		for s := uint64(1)<<uint(k) - 1; s < uint64(1)<<uint(e); {
			hitsAll := true
			for _, m := range fam {
				if m&s == 0 {
					hitsAll = false
					break
				}
			}
			if hitsAll {
				return k
			}
			c := s & (^s + 1)
			r := s + c
			s = (((r ^ s) >> 2) / c) | r
		}
	}
	return e
}

func TestMinHittingSetWorkersRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		e := 2 + rng.Intn(16) // elements
		m := 1 + rng.Intn(24) // sets
		fam := randomFamily(rng, m, e)

		seq := MinHittingSet(fam)
		assertHits(t, fam, seq, "sequential")
		for _, workers := range []int{2, 4, 0} {
			par := MinHittingSetWorkers(fam, workers)
			assertHits(t, fam, par, "parallel")
			if bits.OnesCount64(par) != bits.OnesCount64(seq) {
				t.Fatalf("trial %d (e=%d, fam=%v): workers=%d found %d elements, sequential %d",
					trial, e, fam, workers, bits.OnesCount64(par), bits.OnesCount64(seq))
			}
		}
		if e <= 12 {
			if want := bruteMinimum(fam, e); bits.OnesCount64(seq) != want {
				t.Fatalf("trial %d: solver returned %d elements, brute-force optimum is %d (fam=%v)",
					trial, bits.OnesCount64(seq), want, fam)
			}
		}
	}
}

// TestMinHittingSetWorkersAdversarialShapes pins the cross-check on
// structured instances where parallel work stealing is most likely to
// race the incumbent: disjoint singletons (forced picks), identical
// sets (maximal coalescing), and a pairwise-disjoint partition
// matching the solver's lower bound exactly.
func TestMinHittingSetWorkersAdversarialShapes(t *testing.T) {
	cases := [][]uint64{
		{1, 2, 4, 8, 16, 32},           // disjoint singletons: min = 6
		{7, 7, 7, 7},                   // identical sets: min = 1
		{3, 12, 48, 192},               // disjoint pairs: min = 4
		{0b111, 0b111000, 0b111000000}, // disjoint triples: min = 3
		{1, 3, 7, 15, 31},              // nested chain: min = 1
		{0b101, 0b110, 0b011},          // triangle: min = 2
	}
	for _, fam := range cases {
		seq := MinHittingSet(fam)
		assertHits(t, fam, seq, "sequential")
		par := MinHittingSetWorkers(fam, 4)
		assertHits(t, fam, par, "parallel")
		if bits.OnesCount64(seq) != bits.OnesCount64(par) {
			t.Errorf("fam %v: sequential %d vs parallel %d", fam, bits.OnesCount64(seq), bits.OnesCount64(par))
		}
		if want := bruteMinimum(fam, 10); bits.OnesCount64(seq) != want {
			t.Errorf("fam %v: solver %d, brute force %d", fam, bits.OnesCount64(seq), want)
		}
	}
}
