package search

import (
	"context"
	"fmt"
	"math/bits"
	"reflect"

	"sortnets/internal/bitset"
	"sortnets/internal/eval"
	"sortnets/internal/network"
	"sortnets/internal/perm"
)

// Permutation-space search: the same behaviour-closure idea as
// behavior.go, but over permutation inputs. This confirms the paper's
// *permutation-input* bounds computationally — Theorem 2.2(ii)'s
// C(n,⌊n/2⌋) − 1, Theorem 2.4(ii)'s C(n,min(⌊n/2⌋,k)) − 1, Theorem
// 2.5(ii)'s n/2 — and de Bruijn's single-test theorem for height-1
// networks, and produces exact permutation numbers for height-2 (new).
//
// A behaviour is the table of outputs over all n! permutations, input
// order = lexicographic rank. Failure sets live in an n!-element
// universe, so they are multi-word bitsets rather than machine words.
// Like the binary path, the pipeline runs on the dense closure store:
// tables live in a flat arena, failure rows are built in parallel over
// contiguous chunks, and the hitting set is solved by the shared
// branch-and-bound core.

// PermBehavior is the full input-output table over permutations:
// n bytes of output values per input, inputs in lexicographic rank
// order, packed into a string for map keys.
type PermBehavior string

// MaxPermLines bounds permutation-space searches: the table has
// n·n! bytes and the closure is enumerated explicitly.
const MaxPermLines = 6

// permInputs returns all n! permutations in lexicographic order.
func permInputs(n int) []perm.P {
	return perm.Collect(perm.AllLex(n))
}

// permIdentityTable returns the empty network's behaviour as raw
// bytes.
func permIdentityTable(n int) []byte {
	if n < 1 || n > MaxPermLines {
		panic(fmt.Sprintf("search: n=%d out of range 1..%d", n, MaxPermLines))
	}
	inputs := permInputs(n)
	table := make([]byte, 0, n*len(inputs))
	for _, p := range inputs {
		for _, v := range p {
			table = append(table, byte(v))
		}
	}
	return table
}

// PermIdentity returns the empty network's permutation behaviour.
func PermIdentity(n int) PermBehavior { return PermBehavior(permIdentityTable(n)) }

// applyComparatorPermTable routes every tabulated output of src
// through the comparator, writing to dst.
func applyComparatorPermTable(dst, src []byte, n int, c network.Comparator) {
	copy(dst, src)
	for base := 0; base < len(dst); base += n {
		if dst[base+c.A] > dst[base+c.B] {
			dst[base+c.A], dst[base+c.B] = dst[base+c.B], dst[base+c.A]
		}
	}
}

// Apply routes every tabulated output through one more comparator.
func (b PermBehavior) Apply(n int, c network.Comparator) PermBehavior {
	out := make([]byte, len(b))
	applyComparatorPermTable(out, []byte(b), n, c)
	return PermBehavior(out)
}

// Output returns the output values for the input with the given rank.
func (b PermBehavior) Output(n, rank int) []byte {
	return []byte(b[rank*n : (rank+1)*n])
}

// permClosureStore enumerates the permutation closure on the dense
// store. It exploits Floyd's correspondence instead of BFS-ing the
// n·n!-byte permutation tables directly: a network's action on
// permutations is determined by its action on 0/1 vectors, so the
// permutation closure is in bijection with the binary closure. The
// BFS therefore runs over the 2ⁿ-byte binary tables (dedupe hashes
// 6–48x fewer bytes), and the permutation tables are reconstructed by
// replaying the BFS spanning tree — exactly ONE comparator
// application per behaviour instead of one per (behaviour, alphabet
// rule) candidate.
func permClosureStore(ctx context.Context, n int, alphabet []network.Comparator, limit, workers int) (*behaviorStore, error) {
	if n < 1 || n > MaxPermLines {
		panic(fmt.Sprintf("search: n=%d out of range 1..%d", n, MaxPermLines))
	}
	bst, err := binaryClosureStore(ctx, n, alphabet, limit, workers)
	if err != nil {
		return nil, err
	}
	seed := permIdentityTable(n)
	stride := len(seed)
	st := &behaviorStore{
		stride:   stride,
		arena:    make([]byte, bst.count*stride),
		count:    bst.count,
		parentOf: bst.parentOf,
		ruleOf:   bst.ruleOf,
	}
	copy(st.at(0), seed)
	for id := 1; id < st.count; id++ {
		// Parents precede children in BFS order, so at(parent) is
		// already reconstructed.
		applyComparatorPermTable(st.at(id), st.at(int(bst.parentOf[id])), n, alphabet[bst.ruleOf[id]])
	}
	return st, nil
}

// PermClosure enumerates every permutation behaviour reachable over
// the comparator alphabet, by BFS from the identity. Because a
// network's action on permutations is determined by its action on 0/1
// vectors (Floyd), this closure is in bijection with the binary one —
// asserted in the tests. Like Closure, this legacy API runs one BFS
// worker so its enumeration order stays deterministic.
func PermClosure(n int, alphabet []network.Comparator, limit int) ([]PermBehavior, error) {
	st, err := permClosureStore(context.Background(), n, alphabet, limit, 1)
	if err != nil {
		return nil, err
	}
	out := make([]PermBehavior, st.count)
	for i := range out {
		out[i] = PermBehavior(st.at(i))
	}
	return out, nil
}

// PermAcceptance judges one tabulated input/output pair: in and out
// are value sequences of length n.
type PermAcceptance func(n int, in, out []byte) bool

// PermSorterAccepts is the sorting property.
func PermSorterAccepts(n int, in, out []byte) bool { return bytesSorted(out) }

// PermSelectorAccepts returns the (k,n)-selector property: on a
// permutation of 1..n the first k outputs must be exactly 1..k.
func PermSelectorAccepts(k int) PermAcceptance {
	return func(n int, in, out []byte) bool {
		for i := 0; i < k; i++ {
			if out[i] != byte(i+1) {
				return false
			}
		}
		return true
	}
}

// PermMergerAccepts is the (n/2,n/2)-merger property; inputs with
// unsorted halves are accepted vacuously.
func PermMergerAccepts(n int, in, out []byte) bool {
	h := n / 2
	if !bytesSorted(in[:h]) || !bytesSorted(in[h:]) {
		return true
	}
	return bytesSorted(out)
}

func bytesSorted(b []byte) bool {
	for i := 1; i < len(b); i++ {
		if b[i-1] > b[i] {
			return false
		}
	}
	return true
}

// permInputBytes tabulates the n! inputs as byte rows once.
func permInputBytes(n int) [][]byte {
	inputs := permInputs(n)
	arena := make([]byte, n*len(inputs))
	rows := make([][]byte, len(inputs))
	for i, p := range inputs {
		row := arena[i*n : (i+1)*n]
		for j, v := range p {
			row[j] = byte(v)
		}
		rows[i] = row
	}
	return rows
}

// permFailureRows computes the deduplicated failure rows (bitsets
// over the n! input ranks, as raw words) of every incorrect behaviour
// in the store, fanning behaviours out to workers in contiguous
// chunks.
func (st *behaviorStore) permFailureRows(ctx context.Context, n int, accepts PermAcceptance, workers int) ([]maskRow, error) {
	inBytes := permInputBytes(n)
	nw := wordsFor(len(inBytes))
	// Devirtualized fast path for the sorting property (the pipeline's
	// primary workload), mirroring eval.SortedJudge: the per-rank
	// closure call and slice-header setup are the dominant cost of the
	// generic loop.
	sorterFast := reflect.ValueOf(accepts).Pointer() == reflect.ValueOf(PermSorterAccepts).Pointer()
	workers = closureWorkers(workers)
	const minChunk = 64
	if workers > 1 && st.count/workers < minChunk {
		workers = st.count/minChunk + 1
	}
	locals := make([][]maskRow, workers)
	err := eval.ForEachCtx(ctx, workers, workers, func(w int) {
		lo := st.count * w / workers
		hi := st.count * (w + 1) / workers
		// Dedupe keys: one uint64 when the rank universe fits a word
		// (n ≤ 4), a packed byte string beyond.
		seenWord := make(map[uint64]struct{}, 64)
		var seenKey map[string]struct{}
		if nw > 1 {
			seenKey = make(map[string]struct{}, 64)
		}
		scratch := make([]uint64, nw)
		key := make([]byte, 0, nw*8)
		var wordArena []uint64 // row storage, chunk-allocated
		var out []maskRow
		for i := lo; i < hi; i++ {
			if i&255 == 0 && ctx.Err() != nil {
				return
			}
			tab := st.at(i)
			empty := true
			for w := range scratch {
				scratch[w] = 0
			}
			if sorterFast {
				for r, base := 0, 0; r < len(inBytes); r, base = r+1, base+n {
					for j := base + 1; j < base+n; j++ {
						if tab[j-1] > tab[j] {
							scratch[r>>6] |= 1 << uint(r&63)
							empty = false
							break
						}
					}
				}
			} else {
				for r := range inBytes {
					if !accepts(n, inBytes[r], tab[r*n:(r+1)*n]) {
						scratch[r>>6] |= 1 << uint(r&63)
						empty = false
					}
				}
			}
			if empty {
				continue
			}
			if nw == 1 {
				if _, ok := seenWord[scratch[0]]; ok {
					continue
				}
				seenWord[scratch[0]] = struct{}{}
			} else {
				key = appendWordsKey(key[:0], scratch)
				if _, ok := seenKey[string(key)]; ok {
					continue
				}
				seenKey[string(key)] = struct{}{}
			}
			if len(wordArena)+nw > cap(wordArena) {
				wordArena = make([]uint64, 0, 64*nw)
			}
			row := wordArena[len(wordArena) : len(wordArena)+nw : len(wordArena)+nw]
			wordArena = wordArena[:len(wordArena)+nw]
			pc := 0
			for w, v := range scratch {
				row[w] = v
				pc += bits.OnesCount64(v)
			}
			out = append(out, maskRow{words: row, pc: pc})
		}
		locals[w] = out
	})
	if err != nil {
		return nil, err
	}
	rows := locals[0]
	if len(locals) > 1 {
		// Merge the chunks, dropping cross-chunk duplicates (each
		// chunk is internally deduplicated already).
		seen := make(map[string]struct{}, len(rows)*2)
		key := make([]byte, 0, nw*8)
		rows = rows[:0]
		for _, local := range locals {
			for _, r := range local {
				key = appendWordsKey(key[:0], r.words)
				if _, ok := seen[string(key)]; ok {
					continue
				}
				seen[string(key)] = struct{}{}
				rows = append(rows, r)
			}
		}
	}
	for i := range rows {
		rows[i].src = i
	}
	return rows, nil
}

// PermFailureFamily computes the deduplicated, superset-pruned family
// of failure sets (over the n!-element input universe) of every
// incorrect behaviour, in canonical (popcount, content) order.
func PermFailureFamily(n int, behaviors []PermBehavior, accepts PermAcceptance) []*bitset.Set {
	inBytes := permInputBytes(n)
	seen := map[string]bool{}
	var fam []*bitset.Set
	for _, b := range behaviors {
		tab := []byte(string(b))
		s := bitset.New(len(inBytes))
		for r := range inBytes {
			if !accepts(n, inBytes[r], tab[r*n:(r+1)*n]) {
				s.Add(r)
			}
		}
		if s.Empty() {
			continue
		}
		if k := s.Key(); !seen[k] {
			seen[k] = true
			fam = append(fam, s)
		}
	}
	return pruneSupersetSets(fam)
}

// HittingSetResult carries an exact or certified-optimal hitting set
// over bitset families.
type HittingSetResult struct {
	Elements *bitset.Set
	Size     int
	Exact    bool // true when optimality is certified
}

// MinHittingSetBits computes a minimum hitting set over bitset
// families. Strategy: superset pruning, forced singletons, element
// dominance, a deterministic greedy upper bound certified against the
// disjoint lower bound, and otherwise the branch-and-bound core of
// solver.go under a node budget. Exact is false only if the budget is
// exhausted before the search closes — callers treat that as
// "unknown", never as a bound.
func MinHittingSetBits(universe int, family []*bitset.Set, nodeBudget int) HittingSetResult {
	return MinHittingSetBitsWorkers(universe, family, nodeBudget, 1)
}

// MinHittingSetBitsWorkers is MinHittingSetBits with a worker pool
// for the branch and bound (workers ≤ 0 means GOMAXPROCS). The
// minimum cardinality matches the sequential solver's on every input.
func MinHittingSetBitsWorkers(universe int, family []*bitset.Set, nodeBudget, workers int) HittingSetResult {
	r, _ := MinHittingSetBitsCtx(context.Background(), universe, family, nodeBudget, workers)
	return r
}

// MinHittingSetBitsCtx is MinHittingSetBitsWorkers under a context:
// the branch and bound checks cancellation every nodeFlush nodes and
// a cancelled run returns the context's error with a zero result.
func MinHittingSetBitsCtx(ctx context.Context, universe int, family []*bitset.Set, nodeBudget, workers int) (HittingSetResult, error) {
	for _, s := range family {
		if s.Empty() {
			panic("search: empty set can never be hit")
		}
	}
	pruned := pruneSupersetSets(family)
	lists := make([][]int32, len(pruned))
	for i, s := range pruned {
		s.ForEach(func(e int) bool {
			lists[i] = append(lists[i], int32(e))
			return true
		})
	}
	elems, exact, err := solveHitting(ctx, lists, int64(nodeBudget), workers)
	if err != nil {
		return HittingSetResult{}, err
	}
	chosen := bitset.New(universe)
	for _, e := range elems {
		chosen.Add(int(e))
	}
	return HittingSetResult{Elements: chosen, Size: chosen.Count(), Exact: exact}, nil
}

// greedyBits picks, repeatedly, the element covering the most sets,
// ties to the LOWEST element index (fixed-order count array, not a
// map) — the bitset-family reference for the solver's tie-break
// contract, like greedy in hitting.go.
func greedyBits(universe int, fam []*bitset.Set) *bitset.Set {
	uncovered := append([]*bitset.Set(nil), fam...)
	picked := bitset.New(universe)
	counts := make([]int, universe)
	for len(uncovered) > 0 {
		for i := range counts {
			counts[i] = 0
		}
		for _, s := range uncovered {
			s.ForEach(func(i int) bool {
				counts[i]++
				return true
			})
		}
		bestE, bestC := -1, 0
		for e, c := range counts {
			if c > bestC {
				bestE, bestC = e, c
			}
		}
		picked.Add(bestE)
		rest := uncovered[:0]
		for _, s := range uncovered {
			if !s.Contains(bestE) {
				rest = append(rest, s)
			}
		}
		uncovered = rest
	}
	return picked
}

// PermTestSetResult reports an exact minimum permutation test set.
type PermTestSetResult struct {
	N         int
	Height    int
	Behaviors int
	BadSets   int
	Size      int
	Exact     bool
	Tests     []perm.P
}

// String renders a one-line summary.
func (r PermTestSetResult) String() string {
	tag := "exact"
	if !r.Exact {
		tag = "upper bound only"
	}
	return fmt.Sprintf("n=%d height≤%d: %d behaviours, %d failure sets, min perm test set = %d (%s)",
		r.N, r.Height, r.Behaviors, r.BadSets, r.Size, tag)
}

// MinimumPermTestSet computes the exact minimum permutation-input test
// set for a property over networks of comparator height ≤ h on n
// lines. limit caps the behaviour closure, nodeBudget the hitting-set
// branch and bound (0 = defaults).
func MinimumPermTestSet(n, h int, accepts PermAcceptance, limit, nodeBudget int) (PermTestSetResult, error) {
	return MinimumPermTestSetOpts(n, h, accepts, Options{Limit: limit, NodeBudget: nodeBudget})
}

// MinimumPermTestSetOpts is MinimumPermTestSet with full pipeline
// options.
func MinimumPermTestSetOpts(n, h int, accepts PermAcceptance, opt Options) (PermTestSetResult, error) {
	return MinimumPermTestSetCtx(context.Background(), n, h, accepts, opt)
}

// MinimumPermTestSetCtx is MinimumPermTestSetOpts under a context
// (see MinimumTestSetCtx).
func MinimumPermTestSetCtx(ctx context.Context, n, h int, accepts PermAcceptance, opt Options) (PermTestSetResult, error) {
	if n > MaxPermLines {
		return PermTestSetResult{}, fmt.Errorf("search: n=%d too large for permutation-space search", n)
	}
	st, err := permClosureStore(ctx, n, Comparators(n, h), opt.Limit, opt.Workers)
	if err != nil {
		return PermTestSetResult{}, err
	}
	raw, err := st.permFailureRows(ctx, n, accepts, opt.Workers)
	if err != nil {
		return PermTestSetResult{}, err
	}
	rows := pruneSupersetRows(raw, false)
	// 0 keeps the historical 5M-node default for the (deeper) perm
	// search; a negative budget requests a genuinely unlimited run.
	budget := int64(opt.NodeBudget)
	if budget == 0 {
		budget = 5_000_000
	} else if budget < 0 {
		budget = 0
	}
	elems, exact, err := solveHitting(ctx, rowElemLists(rows), budget, solverWorkers(opt.Workers))
	if err != nil {
		return PermTestSetResult{}, err
	}
	inputs := permInputs(n)
	res := PermTestSetResult{
		N: n, Height: h,
		Behaviors: st.count,
		BadSets:   len(rows),
		Size:      len(elems),
		Exact:     exact,
	}
	for _, e := range elems {
		res.Tests = append(res.Tests, inputs[e])
	}
	return res, nil
}
