package search

import (
	"fmt"
	"sort"

	"sortnets/internal/bitset"
	"sortnets/internal/network"
	"sortnets/internal/perm"
)

// Permutation-space search: the same behaviour-closure idea as
// behavior.go, but over permutation inputs. This confirms the paper's
// *permutation-input* bounds computationally — Theorem 2.2(ii)'s
// C(n,⌊n/2⌋) − 1, Theorem 2.4(ii)'s C(n,min(⌊n/2⌋,k)) − 1, Theorem
// 2.5(ii)'s n/2 — and de Bruijn's single-test theorem for height-1
// networks, and produces exact permutation numbers for height-2 (new).
//
// A behaviour is the table of outputs over all n! permutations, input
// order = lexicographic rank. Failure sets live in an n!-element
// universe, so they are bitset.Sets rather than machine words.

// PermBehavior is the full input-output table over permutations:
// n bytes of output values per input, inputs in lexicographic rank
// order, packed into a string for map keys.
type PermBehavior string

// MaxPermLines bounds permutation-space searches: the table has
// n·n! bytes and the closure is enumerated explicitly.
const MaxPermLines = 6

// permInputs returns all n! permutations in lexicographic order.
func permInputs(n int) []perm.P {
	return perm.Collect(perm.AllLex(n))
}

// PermIdentity returns the empty network's permutation behaviour.
func PermIdentity(n int) PermBehavior {
	if n < 1 || n > MaxPermLines {
		panic(fmt.Sprintf("search: n=%d out of range 1..%d", n, MaxPermLines))
	}
	inputs := permInputs(n)
	table := make([]byte, 0, n*len(inputs))
	for _, p := range inputs {
		for _, v := range p {
			table = append(table, byte(v))
		}
	}
	return PermBehavior(table)
}

// Apply routes every tabulated output through one more comparator.
func (b PermBehavior) Apply(n int, c network.Comparator) PermBehavior {
	out := []byte(string(b))
	for base := 0; base < len(out); base += n {
		if out[base+c.A] > out[base+c.B] {
			out[base+c.A], out[base+c.B] = out[base+c.B], out[base+c.A]
		}
	}
	return PermBehavior(out)
}

// Output returns the output values for the input with the given rank.
func (b PermBehavior) Output(n, rank int) []byte {
	return []byte(b[rank*n : (rank+1)*n])
}

// PermClosure enumerates every permutation behaviour reachable over
// the comparator alphabet, by BFS from the identity. Because a
// network's action on permutations is determined by its action on 0/1
// vectors (Floyd), this closure is in bijection with the binary one —
// asserted in the tests.
func PermClosure(n int, alphabet []network.Comparator, limit int) ([]PermBehavior, error) {
	start := PermIdentity(n)
	seen := map[PermBehavior]bool{start: true}
	queue := []PermBehavior{start}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for _, c := range alphabet {
			next := cur.Apply(n, c)
			if seen[next] {
				continue
			}
			if limit > 0 && len(seen) >= limit {
				return nil, fmt.Errorf("search: permutation closure exceeds limit %d", limit)
			}
			seen[next] = true
			queue = append(queue, next)
		}
	}
	return queue, nil
}

// PermAcceptance judges one tabulated input/output pair: in and out
// are value sequences of length n.
type PermAcceptance func(n int, in, out []byte) bool

// PermSorterAccepts is the sorting property.
func PermSorterAccepts(n int, in, out []byte) bool { return bytesSorted(out) }

// PermSelectorAccepts returns the (k,n)-selector property: on a
// permutation of 1..n the first k outputs must be exactly 1..k.
func PermSelectorAccepts(k int) PermAcceptance {
	return func(n int, in, out []byte) bool {
		for i := 0; i < k; i++ {
			if out[i] != byte(i+1) {
				return false
			}
		}
		return true
	}
}

// PermMergerAccepts is the (n/2,n/2)-merger property; inputs with
// unsorted halves are accepted vacuously.
func PermMergerAccepts(n int, in, out []byte) bool {
	h := n / 2
	if !bytesSorted(in[:h]) || !bytesSorted(in[h:]) {
		return true
	}
	return bytesSorted(out)
}

func bytesSorted(b []byte) bool {
	for i := 1; i < len(b); i++ {
		if b[i-1] > b[i] {
			return false
		}
	}
	return true
}

// PermFailureFamily computes the deduplicated, superset-pruned family
// of failure sets (over the n!-element input universe) of every
// incorrect behaviour.
func PermFailureFamily(n int, behaviors []PermBehavior, accepts PermAcceptance) []*bitset.Set {
	inputs := permInputs(n)
	inBytes := make([][]byte, len(inputs))
	for i, p := range inputs {
		row := make([]byte, n)
		for j, v := range p {
			row[j] = byte(v)
		}
		inBytes[i] = row
	}
	seen := map[string]bool{}
	var fam []*bitset.Set
	for _, b := range behaviors {
		s := bitset.New(len(inputs))
		for r := range inputs {
			if !accepts(n, inBytes[r], b.Output(n, r)) {
				s.Add(r)
			}
		}
		if s.Empty() {
			continue
		}
		if k := s.Key(); !seen[k] {
			seen[k] = true
			fam = append(fam, s)
		}
	}
	return pruneSupersetSets(fam)
}

func pruneSupersetSets(fam []*bitset.Set) []*bitset.Set {
	var out []*bitset.Set
	for i, a := range fam {
		dominated := false
		for j, b := range fam {
			if i == j {
				continue
			}
			if b.SubsetOf(a) && (!a.Equal(b) || j < i) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, a)
		}
	}
	return out
}

// HittingSetResult carries an exact or certified-optimal hitting set
// over bitset families.
type HittingSetResult struct {
	Elements *bitset.Set
	Size     int
	Exact    bool // true when optimality is certified
}

// MinHittingSetBits computes a minimum hitting set over bitset
// families. Strategy: forced singletons, greedy upper bound, disjoint
// lower bound; when the two bounds meet the greedy solution is
// certified optimal without branching (the common case for the
// paper's highly structured families), otherwise branch and bound
// with a node budget. Exact is false only if the budget is exhausted
// before the search closes — callers treat that as "unknown", never
// as a bound.
func MinHittingSetBits(universe int, family []*bitset.Set, nodeBudget int) HittingSetResult {
	for _, s := range family {
		if s.Empty() {
			panic("search: empty set can never be hit")
		}
	}
	chosen := bitset.New(universe)
	fam := append([]*bitset.Set(nil), family...)

	// Forced singletons.
	for {
		progress := false
		var rest []*bitset.Set
		for _, s := range fam {
			if s.Intersects(chosen) {
				continue
			}
			if s.Count() == 1 {
				chosen.Add(s.First())
				progress = true
				continue
			}
			rest = append(rest, s)
		}
		fam = rest
		if !progress {
			break
		}
	}
	if len(fam) == 0 {
		return HittingSetResult{Elements: chosen, Size: chosen.Count(), Exact: true}
	}

	upper := greedyBits(universe, fam)
	upper.UnionWith(chosen)
	lower := chosen.Count() + disjointLowerBound(fam)
	if upper.Count() == lower {
		return HittingSetResult{Elements: upper, Size: upper.Count(), Exact: true}
	}

	best := upper
	nodes := 0
	exact := solveBits(universe, fam, chosen, &best, &nodes, nodeBudget)
	return HittingSetResult{Elements: best, Size: best.Count(), Exact: exact}
}

func greedyBits(universe int, fam []*bitset.Set) *bitset.Set {
	uncovered := append([]*bitset.Set(nil), fam...)
	picked := bitset.New(universe)
	for len(uncovered) > 0 {
		counts := make(map[int]int)
		for _, s := range uncovered {
			s.ForEach(func(i int) bool {
				counts[i]++
				return true
			})
		}
		bestE, bestC := -1, 0
		for e, c := range counts {
			if c > bestC || (c == bestC && e < bestE) {
				bestE, bestC = e, c
			}
		}
		picked.Add(bestE)
		var rest []*bitset.Set
		for _, s := range uncovered {
			if !s.Contains(bestE) {
				rest = append(rest, s)
			}
		}
		uncovered = rest
	}
	return picked
}

func disjointLowerBound(fam []*bitset.Set) int {
	sorted := append([]*bitset.Set(nil), fam...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Count() < sorted[j].Count() })
	if len(sorted) == 0 {
		return 0
	}
	lb := 0
	used := bitset.New(sorted[0].Len())
	for _, s := range sorted {
		if !s.Intersects(used) {
			lb++
			used.UnionWith(s)
		}
	}
	return lb
}

func solveBits(universe int, fam []*bitset.Set, chosen *bitset.Set, best **bitset.Set, nodes *int, budget int) bool {
	*nodes++
	if budget > 0 && *nodes > budget {
		return false
	}
	if chosen.Count() >= (*best).Count() {
		return true
	}
	var uncovered []*bitset.Set
	for _, s := range fam {
		if !s.Intersects(chosen) {
			uncovered = append(uncovered, s)
		}
	}
	if len(uncovered) == 0 {
		*best = chosen.Clone()
		return true
	}
	if chosen.Count()+disjointLowerBound(uncovered) >= (*best).Count() {
		return true
	}
	smallest := uncovered[0]
	for _, s := range uncovered[1:] {
		if s.Count() < smallest.Count() {
			smallest = s
		}
	}
	complete := true
	smallest.ForEach(func(e int) bool {
		child := chosen.Clone()
		child.Add(e)
		if !solveBits(universe, fam, child, best, nodes, budget) {
			complete = false
			return false
		}
		return true
	})
	return complete
}

// PermTestSetResult reports an exact minimum permutation test set.
type PermTestSetResult struct {
	N         int
	Height    int
	Behaviors int
	BadSets   int
	Size      int
	Exact     bool
	Tests     []perm.P
}

// String renders a one-line summary.
func (r PermTestSetResult) String() string {
	tag := "exact"
	if !r.Exact {
		tag = "upper bound only"
	}
	return fmt.Sprintf("n=%d height≤%d: %d behaviours, %d failure sets, min perm test set = %d (%s)",
		r.N, r.Height, r.Behaviors, r.BadSets, r.Size, tag)
}

// MinimumPermTestSet computes the exact minimum permutation-input test
// set for a property over networks of comparator height ≤ h on n
// lines. limit caps the behaviour closure, nodeBudget the hitting-set
// branch and bound (0 = defaults).
func MinimumPermTestSet(n, h int, accepts PermAcceptance, limit, nodeBudget int) (PermTestSetResult, error) {
	if n > MaxPermLines {
		return PermTestSetResult{}, fmt.Errorf("search: n=%d too large for permutation-space search", n)
	}
	behaviors, err := PermClosure(n, Comparators(n, h), limit)
	if err != nil {
		return PermTestSetResult{}, err
	}
	fam := PermFailureFamily(n, behaviors, accepts)
	inputs := permInputs(n)
	if nodeBudget == 0 {
		nodeBudget = 5_000_000
	}
	hs := MinHittingSetBits(len(inputs), fam, nodeBudget)
	res := PermTestSetResult{
		N: n, Height: h,
		Behaviors: len(behaviors),
		BadSets:   len(fam),
		Size:      hs.Size,
		Exact:     hs.Exact,
	}
	hs.Elements.ForEach(func(r int) bool {
		res.Tests = append(res.Tests, inputs[r])
		return true
	})
	return res, nil
}
