// Package search computes *exact* minimum test sets by exhausting the
// behaviour space of comparator networks — the machinery behind the
// experiments that confirm Theorem 2.2 computationally for small n,
// verify de Bruijn's single-test theorem for height-1 (primitive)
// networks, and attack the height-2 question the paper poses as open
// in Section 3.
//
// A network computes a monotone function f : {0,1}ⁿ → {0,1}ⁿ; although
// networks are unbounded in length, only finitely many such functions
// are reachable, and the reachable set is the closure of the identity
// under "append one comparator". A set T of inputs is a test set for a
// property within a network class iff T hits the failure set of every
// reachable incorrect behaviour; the minimum test set is therefore a
// minimum hitting set over those failure sets, computed exactly by
// branch and bound in hitting.go.
//
// The pipeline is organized for speed: the closure BFS runs on a dense
// byte arena with a sharded interning table (closure.go) and expands
// its frontier in parallel, failure masks are built in parallel over
// the dense store, superset pruning is popcount-bucketed, and the
// hitting-set branch and bound (solver.go) uses per-worker scratch and
// a shared incumbent.
package search

import (
	"context"
	"encoding/binary"
	"fmt"

	"sortnets/internal/bitvec"
	"sortnets/internal/eval"
	"sortnets/internal/network"
)

// Behavior is the full input-output table of a network on binary
// inputs: entry x is the packed output word for the packed input x.
// Stored as a string so it can key maps; each output occupies one byte
// (n ≤ 8).
type Behavior string

// MaxLines bounds the supported line count: outputs are stored one
// byte per input, and the 2ⁿ-entry table must stay small enough to
// enumerate (the behaviour closure grows quickly with n).
const MaxLines = 8

// identityTable returns the identity behaviour as raw bytes.
func identityTable(n int) []byte {
	if n < 1 || n > MaxLines {
		panic(fmt.Sprintf("search: n=%d out of range 1..%d", n, MaxLines))
	}
	table := make([]byte, bitvec.Universe(n))
	for x := range table {
		table[x] = byte(x)
	}
	return table
}

// Identity returns the behaviour of the empty network.
func Identity(n int) Behavior { return Behavior(identityTable(n)) }

// Apply returns the behaviour of "this network followed by comparator
// [a,b]": every output word is routed through the comparator.
func (b Behavior) Apply(c network.Comparator) Behavior {
	out := make([]byte, len(b))
	applyComparatorTable(out, []byte(b), c)
	return Behavior(out)
}

// applyComparatorTable routes every output word of src through the
// comparator, writing to dst (the closure-engine expand step). Eight
// one-byte table entries are processed per iteration, SWAR-style:
// after (x>>a)&0x0101…, bit 0 of each lane is bit a of that entry
// (cross-lane leakage only reaches the masked-off high bits, since
// a, b < 8), so the usual exchange mask works on all lanes at once.
func applyComparatorTable(dst, src []byte, c network.Comparator) {
	a, b := uint(c.A), uint(c.B)
	const lanes = 0x0101010101010101
	i := 0
	for ; i+8 <= len(src); i += 8 {
		x := binary.LittleEndian.Uint64(src[i:])
		m := (x >> a) &^ (x >> b) & lanes
		binary.LittleEndian.PutUint64(dst[i:], x^(m<<a|m<<b))
	}
	for ; i < len(src); i++ {
		w := src[i]
		m := (w >> a) &^ (w >> b) & 1
		dst[i] = w ^ (m<<a | m<<b)
	}
}

// Output returns the packed output for packed input x.
func (b Behavior) Output(x int) byte { return b[x] }

// OfNetwork tabulates a concrete network's behaviour.
func OfNetwork(w *network.Network) Behavior {
	b := Identity(w.N)
	for _, c := range w.Comps {
		b = b.Apply(c)
	}
	return b
}

// Comparators returns the comparator alphabet for n lines with height
// at most h (h ≥ n−1 means unrestricted).
func Comparators(n, h int) []network.Comparator {
	var out []network.Comparator
	for a := 0; a < n; a++ {
		for b := a + 1; b < n && b-a <= h; b++ {
			out = append(out, network.Comparator{A: a, B: b})
		}
	}
	return out
}

// binaryClosureStore enumerates the closure on the dense store.
func binaryClosureStore(ctx context.Context, n int, alphabet []network.Comparator, limit, workers int) (*behaviorStore, error) {
	seed := identityTable(n)
	return closureStore(ctx, len(seed), seed, len(alphabet), func(dst, src []byte, c int) {
		applyComparatorTable(dst, src, alphabet[c])
	}, limit, workers)
}

// Closure enumerates every behaviour reachable by networks over the
// given comparator alphabet, by BFS from the identity. limit caps the
// number of behaviours explored (0 means unlimited); exceeding it
// returns an error so callers never silently truncate a universe they
// meant to exhaust. The BFS runs on the dense closure engine with one
// worker, preserving this legacy API's deterministic enumeration
// order; the Opts pipelines parallelize the frontier internally.
func Closure(n int, alphabet []network.Comparator, limit int) ([]Behavior, error) {
	st, err := binaryClosureStore(context.Background(), n, alphabet, limit, 1)
	if err != nil {
		return nil, err
	}
	out := make([]Behavior, st.count)
	for i := range out {
		out[i] = Behavior(st.at(i))
	}
	return out, nil
}

// Acceptance judges one input/output pair of a behaviour under a
// property (mirrors verify.Property on packed words).
type Acceptance func(n int, in, out byte) bool

// SorterAccepts is the sorting property on packed words.
func SorterAccepts(n int, in, out byte) bool {
	return bitvec.New(n, uint64(out)).IsSorted()
}

// SelectorAccepts returns the (k,n)-selector acceptance.
func SelectorAccepts(k int) Acceptance {
	return func(n int, in, out byte) bool {
		want := bitvec.New(n, uint64(in)).Sorted()
		mask := byte(1<<uint(k) - 1)
		return out&mask == byte(want.Bits)&mask
	}
}

// MergerAccepts is the (n/2,n/2)-merger acceptance: out-of-contract
// inputs (unsorted halves) are accepted vacuously.
func MergerAccepts(n int, in, out byte) bool {
	h := n / 2
	v := bitvec.New(n, uint64(in))
	if !v.Slice(0, h).IsSorted() || !v.Slice(h, n).IsSorted() {
		return true
	}
	return bitvec.New(n, uint64(out)).IsSorted()
}

// rejectTable tabulates the acceptance once over the full
// (input, output) square: rej[x] has bit o set when output o on input
// x violates the property. Mask building then touches no closures at
// all — one shift and AND per table entry.
func rejectTable(n int, accepts Acceptance) []uint64 {
	u := bitvec.Universe(n)
	rej := make([]uint64, u)
	for x := 0; x < u; x++ {
		var w uint64
		for o := 0; o < u; o++ {
			if !accepts(n, byte(x), byte(o)) {
				w |= 1 << uint(o)
			}
		}
		rej[x] = w
	}
	return rej
}

// FailureMask returns the set of inputs (as a bitmask over packed
// inputs; n ≤ 6 so the universe fits 64 bits) on which the behaviour
// violates the property.
func FailureMask(n int, b Behavior, accepts Acceptance) uint64 {
	if bitvec.Universe(n) > 64 {
		panic(fmt.Sprintf("search: failure masks need 2^%d ≤ 64 inputs", n))
	}
	var mask uint64
	for x := 0; x < len(b); x++ {
		if !accepts(n, byte(x), b[x]) {
			mask |= 1 << uint(x)
		}
	}
	return mask
}

// failureMasks computes the deduplicated failure-mask family over the
// dense store, fanning behaviours out to workers in contiguous chunks
// (each with a local dedupe map, merged at the end). A cancelled
// context stops the chunk scans and returns the context's error.
func (st *behaviorStore) failureMasks(ctx context.Context, n int, accepts Acceptance, workers int) ([]uint64, error) {
	if bitvec.Universe(n) > 64 {
		panic(fmt.Sprintf("search: failure masks need 2^%d ≤ 64 inputs", n))
	}
	rej := rejectTable(n, accepts)
	workers = closureWorkers(workers)
	const minChunk = 256
	if workers > 1 && st.count/workers < minChunk {
		workers = st.count/minChunk + 1
	}
	locals := make([][]uint64, workers)
	err := eval.ForEachCtx(ctx, workers, workers, func(w int) {
		lo := st.count * w / workers
		hi := st.count * (w + 1) / workers
		seen := make(map[uint64]struct{}, 64)
		var out []uint64
		for i := lo; i < hi; i++ {
			if i&1023 == 0 && ctx.Err() != nil {
				return
			}
			tab := st.at(i)
			var mask uint64
			for x, o := range tab {
				mask |= (rej[x] >> uint(o) & 1) << uint(x)
			}
			if mask == 0 {
				continue
			}
			if _, ok := seen[mask]; !ok {
				seen[mask] = struct{}{}
				out = append(out, mask)
			}
		}
		locals[w] = out
	})
	if err != nil {
		return nil, err
	}
	seen := make(map[uint64]struct{}, 256)
	var fam []uint64
	for _, local := range locals {
		for _, m := range local {
			if _, ok := seen[m]; !ok {
				seen[m] = struct{}{}
				fam = append(fam, m)
			}
		}
	}
	return fam, nil
}

// FailureFamily computes the deduplicated, superset-pruned family of
// failure masks of every incorrect behaviour in the closure. Hitting
// every member of the family is exactly the test-set condition, and
// pruning supersets preserves minimum hitting sets: any T hitting a
// subset hits its supersets for free. The result is in canonical
// (popcount, value) order regardless of the order of behaviors.
func FailureFamily(n int, behaviors []Behavior, accepts Acceptance) []uint64 {
	seen := map[uint64]bool{}
	var fam []uint64
	for _, b := range behaviors {
		m := FailureMask(n, b, accepts)
		if m != 0 && !seen[m] {
			seen[m] = true
			fam = append(fam, m)
		}
	}
	return pruneSupersets(fam)
}
