// Package search computes *exact* minimum test sets by exhausting the
// behaviour space of comparator networks — the machinery behind the
// experiments that confirm Theorem 2.2 computationally for small n,
// verify de Bruijn's single-test theorem for height-1 (primitive)
// networks, and attack the height-2 question the paper poses as open
// in Section 3.
//
// A network computes a monotone function f : {0,1}ⁿ → {0,1}ⁿ; although
// networks are unbounded in length, only finitely many such functions
// are reachable, and the reachable set is the closure of the identity
// under "append one comparator". A set T of inputs is a test set for a
// property within a network class iff T hits the failure set of every
// reachable incorrect behaviour; the minimum test set is therefore a
// minimum hitting set over those failure sets, computed exactly by
// branch and bound in hitting.go.
package search

import (
	"fmt"

	"sortnets/internal/bitvec"
	"sortnets/internal/network"
)

// Behavior is the full input-output table of a network on binary
// inputs: entry x is the packed output word for the packed input x.
// Stored as a string so it can key maps; each output occupies one byte
// (n ≤ 8).
type Behavior string

// MaxLines bounds the supported line count: outputs are stored one
// byte per input, and the 2ⁿ-entry table must stay small enough to
// enumerate (the behaviour closure grows quickly with n).
const MaxLines = 8

// Identity returns the behaviour of the empty network.
func Identity(n int) Behavior {
	if n < 1 || n > MaxLines {
		panic(fmt.Sprintf("search: n=%d out of range 1..%d", n, MaxLines))
	}
	table := make([]byte, bitvec.Universe(n))
	for x := range table {
		table[x] = byte(x)
	}
	return Behavior(table)
}

// Apply returns the behaviour of "this network followed by comparator
// [a,b]": every output word is routed through the comparator.
func (b Behavior) Apply(c network.Comparator) Behavior {
	table := []byte(b)
	out := make([]byte, len(table))
	for x, w := range table {
		m := (w >> uint(c.A)) &^ (w >> uint(c.B)) & 1
		out[x] = w ^ (m<<uint(c.A) | m<<uint(c.B))
	}
	return Behavior(out)
}

// Output returns the packed output for packed input x.
func (b Behavior) Output(x int) byte { return b[x] }

// OfNetwork tabulates a concrete network's behaviour.
func OfNetwork(w *network.Network) Behavior {
	b := Identity(w.N)
	for _, c := range w.Comps {
		b = b.Apply(c)
	}
	return b
}

// Comparators returns the comparator alphabet for n lines with height
// at most h (h ≥ n−1 means unrestricted).
func Comparators(n, h int) []network.Comparator {
	var out []network.Comparator
	for a := 0; a < n; a++ {
		for b := a + 1; b < n && b-a <= h; b++ {
			out = append(out, network.Comparator{A: a, B: b})
		}
	}
	return out
}

// Closure enumerates every behaviour reachable by networks over the
// given comparator alphabet, by BFS from the identity. limit caps the
// number of behaviours explored (0 means unlimited); exceeding it
// returns an error so callers never silently truncate a universe they
// meant to exhaust.
func Closure(n int, alphabet []network.Comparator, limit int) ([]Behavior, error) {
	start := Identity(n)
	seen := map[Behavior]bool{start: true}
	queue := []Behavior{start}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for _, c := range alphabet {
			next := cur.Apply(c)
			if seen[next] {
				continue
			}
			if limit > 0 && len(seen) >= limit {
				return nil, fmt.Errorf("search: behaviour closure exceeds limit %d", limit)
			}
			seen[next] = true
			queue = append(queue, next)
		}
	}
	return queue, nil
}

// Acceptance judges one input/output pair of a behaviour under a
// property (mirrors verify.Property on packed words).
type Acceptance func(n int, in, out byte) bool

// SorterAccepts is the sorting property on packed words.
func SorterAccepts(n int, in, out byte) bool {
	return bitvec.New(n, uint64(out)).IsSorted()
}

// SelectorAccepts returns the (k,n)-selector acceptance.
func SelectorAccepts(k int) Acceptance {
	return func(n int, in, out byte) bool {
		want := bitvec.New(n, uint64(in)).Sorted()
		mask := byte(1<<uint(k) - 1)
		return out&mask == byte(want.Bits)&mask
	}
}

// MergerAccepts is the (n/2,n/2)-merger acceptance: out-of-contract
// inputs (unsorted halves) are accepted vacuously.
func MergerAccepts(n int, in, out byte) bool {
	h := n / 2
	v := bitvec.New(n, uint64(in))
	if !v.Slice(0, h).IsSorted() || !v.Slice(h, n).IsSorted() {
		return true
	}
	return bitvec.New(n, uint64(out)).IsSorted()
}

// FailureMask returns the set of inputs (as a bitmask over packed
// inputs; n ≤ 6 so the universe fits 64 bits) on which the behaviour
// violates the property.
func FailureMask(n int, b Behavior, accepts Acceptance) uint64 {
	if bitvec.Universe(n) > 64 {
		panic(fmt.Sprintf("search: failure masks need 2^%d ≤ 64 inputs", n))
	}
	var mask uint64
	for x := 0; x < len(b); x++ {
		if !accepts(n, byte(x), b[x]) {
			mask |= 1 << uint(x)
		}
	}
	return mask
}

// FailureFamily computes the deduplicated, superset-pruned family of
// failure masks of every incorrect behaviour in the closure. Hitting
// every member of the family is exactly the test-set condition, and
// pruning supersets preserves minimum hitting sets: any T hitting a
// subset hits its supersets for free.
func FailureFamily(n int, behaviors []Behavior, accepts Acceptance) []uint64 {
	seen := map[uint64]bool{}
	var fam []uint64
	for _, b := range behaviors {
		m := FailureMask(n, b, accepts)
		if m != 0 && !seen[m] {
			seen[m] = true
			fam = append(fam, m)
		}
	}
	return pruneSupersets(fam)
}

func pruneSupersets(fam []uint64) []uint64 {
	var out []uint64
	for i, a := range fam {
		dominated := false
		for j, b := range fam {
			if i == j {
				continue
			}
			if b&^a == 0 && (a != b || j < i) {
				// b ⊆ a (strictly, or an earlier duplicate).
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, a)
		}
	}
	return out
}
