// Package bitset provides a fixed-capacity dynamic bit set used where
// a single machine word is not enough: the permutation-space search
// tracks failure sets over all n! inputs (120 bits at n=5), and the
// wide-vector engine indexes lines beyond 64.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

// Set is a bit set over [0, Len) backed by 64-bit words. The zero
// value is unusable; construct with New.
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set with capacity for n elements.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative capacity %d", n))
	}
	return &Set{n: n, words: make([]uint64, (n+63)/64)}
}

// FromIndices builds a set containing exactly the given elements.
func FromIndices(n int, idx ...int) *Set {
	s := New(n)
	for _, i := range idx {
		s.Add(i)
	}
	return s
}

// Len returns the capacity (universe size).
func (s *Set) Len() int { return s.n }

// Add inserts element i.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i>>6] |= 1 << uint(i&63)
}

// Remove deletes element i.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i>>6] &^= 1 << uint(i&63)
}

// Contains reports membership of i.
func (s *Set) Contains(i int) bool {
	s.check(i)
	return s.words[i>>6]>>uint(i&63)&1 == 1
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Count returns the number of elements present.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no element is present.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Equal reports element-wise equality (capacities must match).
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether s and t share an element.
func (s *Set) Intersects(t *Set) bool {
	s.sameCap(t)
	for i, w := range s.words {
		if w&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports s ⊆ t.
func (s *Set) SubsetOf(t *Set) bool {
	s.sameCap(t)
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// UnionWith adds every element of t to s (in place).
func (s *Set) UnionWith(t *Set) {
	s.sameCap(t)
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// DiffWith removes every element of t from s (in place): s = s ∖ t.
func (s *Set) DiffWith(t *Set) {
	s.sameCap(t)
	for i := range s.words {
		s.words[i] &^= t.words[i]
	}
}

// CountAnd returns |s ∩ t| without materializing the intersection.
func (s *Set) CountAnd(t *Set) int {
	s.sameCap(t)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w & t.words[i])
	}
	return c
}

func (s *Set) sameCap(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, t.n))
	}
}

// ForEach calls f for every element in ascending order; returning
// false stops the iteration early.
func (s *Set) ForEach(f func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << uint(b)
			if !f(wi<<6 + b) {
				return
			}
		}
	}
}

// First returns the smallest element, or -1 when empty.
func (s *Set) First() int {
	for wi, w := range s.words {
		if w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Words exposes the backing 64-bit words (element i lives at bit i&63
// of word i>>6). The slice is owned by the set: callers must treat it
// as read-only. It exists so bulk consumers (the search solver, the
// fault detection matrix) can run word-parallel subset/popcount loops
// without going through per-element callbacks.
func (s *Set) Words() []uint64 { return s.words }

// Key returns a string usable as a map key (content-identical sets of
// equal capacity share keys).
func (s *Set) Key() string {
	var sb strings.Builder
	sb.Grow(len(s.words) * 8)
	for _, w := range s.words {
		for b := 0; b < 8; b++ {
			sb.WriteByte(byte(w >> uint(8*b)))
		}
	}
	return sb.String()
}

// String renders the elements, e.g. "{1, 5, 9}".
func (s *Set) String() string {
	var parts []string
	s.ForEach(func(i int) bool {
		parts = append(parts, fmt.Sprint(i))
		return true
	})
	return "{" + strings.Join(parts, ", ") + "}"
}
