package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddRemoveContains(t *testing.T) {
	s := New(200)
	for _, i := range []int{0, 63, 64, 127, 128, 199} {
		if s.Contains(i) {
			t.Errorf("fresh set contains %d", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Errorf("added %d missing", i)
		}
	}
	if s.Count() != 6 {
		t.Errorf("count %d, want 6", s.Count())
	}
	s.Remove(64)
	if s.Contains(64) || s.Count() != 5 {
		t.Error("remove failed")
	}
	s.Remove(64) // idempotent
	if s.Count() != 5 {
		t.Error("double remove changed count")
	}
}

func TestEmptyAndLen(t *testing.T) {
	s := New(10)
	if !s.Empty() || s.Len() != 10 {
		t.Error("fresh set wrong")
	}
	s.Add(3)
	if s.Empty() {
		t.Error("nonempty set reported empty")
	}
	if New(0).Len() != 0 {
		t.Error("zero capacity")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := FromIndices(100, 1, 50, 99)
	c := s.Clone()
	c.Add(2)
	if s.Contains(2) {
		t.Error("clone not independent")
	}
	if !c.Contains(50) {
		t.Error("clone lost element")
	}
}

func TestEqual(t *testing.T) {
	a := FromIndices(70, 1, 65)
	b := FromIndices(70, 1, 65)
	if !a.Equal(b) {
		t.Error("equal sets unequal")
	}
	b.Add(2)
	if a.Equal(b) {
		t.Error("unequal sets equal")
	}
	if a.Equal(FromIndices(71, 1, 65)) {
		t.Error("different capacities equal")
	}
}

func TestIntersectsSubset(t *testing.T) {
	a := FromIndices(130, 5, 70, 129)
	b := FromIndices(130, 70)
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("intersection missed")
	}
	if !b.SubsetOf(a) {
		t.Error("subset missed")
	}
	if a.SubsetOf(b) {
		t.Error("superset accepted as subset")
	}
	c := FromIndices(130, 6)
	if a.Intersects(c) {
		t.Error("phantom intersection")
	}
	if !New(130).SubsetOf(a) {
		t.Error("empty set must be subset of everything")
	}
}

func TestUnionWith(t *testing.T) {
	a := FromIndices(80, 1, 2)
	b := FromIndices(80, 2, 79)
	a.UnionWith(b)
	if a.Count() != 3 || !a.Contains(79) {
		t.Errorf("union wrong: %s", a)
	}
}

func TestForEachOrderAndEarlyStop(t *testing.T) {
	s := FromIndices(200, 150, 3, 64, 63)
	var got []int
	s.ForEach(func(i int) bool {
		got = append(got, i)
		return true
	})
	want := []int{3, 63, 64, 150}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order: got %v", got)
		}
	}
	count := 0
	s.ForEach(func(i int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestFirst(t *testing.T) {
	if New(50).First() != -1 {
		t.Error("empty set First should be -1")
	}
	if FromIndices(128, 127).First() != 127 {
		t.Error("First wrong")
	}
}

func TestKeyUniqueness(t *testing.T) {
	seen := map[string]bool{}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		s := New(150)
		for i := 0; i < 150; i++ {
			if rng.Intn(2) == 0 {
				s.Add(i)
			}
		}
		seen[s.Key()] = true
	}
	// Distinct random sets should give distinct keys (collision odds
	// are negligible at 150 random bits).
	if len(seen) < 195 {
		t.Errorf("suspiciously many key collisions: %d distinct", len(seen))
	}
	a := FromIndices(100, 7)
	b := FromIndices(100, 7)
	if a.Key() != b.Key() {
		t.Error("equal sets different keys")
	}
}

func TestString(t *testing.T) {
	if got := FromIndices(10, 1, 5, 9).String(); got != "{1, 5, 9}" {
		t.Errorf("String = %q", got)
	}
	if got := New(5).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("negative capacity", func() { New(-1) })
	mustPanic("out of range", func() { New(5).Add(5) })
	mustPanic("negative index", func() { New(5).Contains(-1) })
	mustPanic("capacity mismatch", func() { New(5).Intersects(New(6)) })
}

func TestSetOpsProperty(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := New(256), New(256)
		ref := map[int]bool{}
		for _, x := range xs {
			a.Add(int(x))
			ref[int(x)] = true
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		u := a.Clone()
		u.UnionWith(b)
		for _, y := range ys {
			ref[int(y)] = true
		}
		if u.Count() != len(ref) {
			return false
		}
		for i := range ref {
			if !u.Contains(i) {
				return false
			}
		}
		return a.SubsetOf(u) && b.SubsetOf(u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
