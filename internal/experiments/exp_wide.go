package experiments

import (
	"fmt"
	"math/big"
	"strings"
	"time"

	"sortnets/internal/comb"
	"sortnets/internal/core"
	"sortnets/internal/eval"
	"sortnets/internal/gen"
	"sortnets/internal/network"
	"sortnets/internal/tablefmt"
	"sortnets/internal/verify"
	"sortnets/internal/widevec"
)

// E15WideCertification pushes the paper's polynomial test sets into
// the regime they were made for: networks far beyond 64 lines, where
// a zero-one sweep (2ⁿ inputs) is physically impossible but the
// merger (n²/4) and fixed-k selector (ΣC(n,i)−k−1) test sets certify
// in milliseconds. Extends E5/E3 from the enumerable regime to
// n = 128..512.
func E15WideCertification() Report {
	ok := true
	var sb strings.Builder

	sb.WriteString("Merger certification at widths where 2^n is impossible:\n")
	tb := tablefmt.New("n", "2^n (sweep size)", "paper tests n^2/4", "ran", "verdict", "time", "mutants caught")
	for _, n := range []int{64, 128, 256, 512} {
		merger := gen.HalfMerger(n)
		start := time.Now()
		r := verify.VerdictMergerWideParallel(merger, 0)
		dur := time.Since(start)
		checkf(&ok, r.Holds, &sb, "n=%d: Batcher merger rejected: %s", n, r)
		want := comb.MergerBinaryTestSetSize(n)
		checkf(&ok, want.Cmp(big.NewInt(int64(r.TestsRun))) == 0, &sb,
			"n=%d: ran %d tests, want %s", n, r.TestsRun, want)

		// Mutation spot-check: delete a comparator at several offsets.
		caught, broken := 0, 0
		for i := 0; i < merger.Size(); i += merger.Size()/8 + 1 {
			mutant := network.New(n)
			for j, c := range merger.Comps {
				if j != i {
					mutant.AddPair(c.A, c.B)
				}
			}
			mr := verify.VerdictMergerWide(mutant)
			if !mr.Holds {
				caught++
				broken++
			} else if !wideMergerGroundTruth(mutant) {
				broken++ // broken but undetected: impossible per Thm 2.5
			}
		}
		checkf(&ok, caught == broken, &sb, "n=%d: %d/%d broken mutants caught", n, caught, broken)
		tb.Row(n, fmt.Sprintf("2^%d", n), want, r.TestsRun, r.Holds,
			dur.Round(time.Microsecond), fmt.Sprintf("%d/%d", caught, broken))
	}
	tb.Render(&sb)

	sb.WriteString("\nSelector certification, fixed k, growing n:\n")
	tb2 := tablefmt.New("n", "k", "paper tests", "ran", "verdict", "time")
	for _, tc := range []struct{ n, k int }{{96, 1}, {96, 2}, {128, 2}, {192, 2}, {128, 3}} {
		sel := gen.Selection(tc.n, tc.k)
		start := time.Now()
		r := verify.VerdictSelectorWide(sel, tc.k)
		dur := time.Since(start)
		checkf(&ok, r.Holds, &sb, "n=%d k=%d: selector rejected: %s", tc.n, tc.k, r)
		want := comb.SelectorBinaryTestSetSize(tc.n, tc.k)
		checkf(&ok, want.Cmp(big.NewInt(int64(r.TestsRun))) == 0, &sb,
			"n=%d k=%d: ran %d, want %s", tc.n, tc.k, r.TestsRun, want)
		tb2.Row(tc.n, tc.k, want, r.TestsRun, r.Holds, dur.Round(time.Microsecond))
	}
	tb2.Render(&sb)
	sb.WriteString("An under-provisioned selector (k-1 passes) at n=128 is caught: ")
	bad := verify.VerdictSelectorWide(gen.Selection(128, 1), 2)
	checkf(&ok, !bad.Holds, &sb, "under-provisioned selector accepted")
	fmt.Fprintf(&sb, "%v\n", !bad.Holds)
	return Report{ID: "E15", Title: "wide-width certification (n up to 512)", OK: ok, Body: sb.String()}
}

// wideMergerGroundTruth sweeps all (n/2+1)² sorted-half combinations —
// the full merger contract, still polynomial — on the compiled engine
// (the network compiles once; the engine owns the worker pool).
func wideMergerGroundTruth(w *network.Network) bool {
	e := eval.New(eval.Compile(w), 0)
	return e.RunWide(core.MergerWideTests(w.N),
		func(in, out widevec.Vec) bool { return out.IsSorted() }).Holds
}
