package experiments

import (
	"fmt"
	"sort"
	"strings"

	"sortnets/internal/bitvec"
	"sortnets/internal/perm"
	"sortnets/internal/search"
	"sortnets/internal/tablefmt"
)

// E10Height1 reproduces the Section 3 discussion of primitive
// (height-1) networks: de Bruijn's theorem — a height-1 network is a
// sorter iff it sorts the reverse permutation — checked exhaustively,
// plus the exact minimum 0/1 test sets for the class, which come out
// to n−1 (the strings 1^i 0^(n−i)); a single *permutation* test
// suffices but a single binary test cannot, quantifying what the
// 0/1 input model loses on this class.
func E10Height1() Report {
	ok := true
	var sb strings.Builder

	err3 := search.DeBruijnHolds(3, 6)
	err4 := search.DeBruijnHolds(4, 6)
	checkf(&ok, err3 == nil, &sb, "%v", err3)
	checkf(&ok, err4 == nil, &sb, "%v", err4)
	sb.WriteString("de Bruijn (height-1 sorter iff it sorts the reverse permutation), exhaustive over\n")
	sb.WriteString("all height-1 networks with <= 6 comparators: n=3 ok, n=4 ok.\n\n")

	tb := tablefmt.New("n", "behaviours (=n!)", "min 0/1 tests", "tests", "perm tests (de Bruijn)")
	for n := 2; n <= 6; n++ {
		r, err := search.MinimumTestSet(n, 1, search.SorterAccepts, 2_000_000)
		checkf(&ok, err == nil, &sb, "n=%d: %v", n, err)
		if err != nil {
			continue
		}
		checkf(&ok, r.Size == n-1, &sb, "n=%d: minimum %d, want n-1", n, r.Size)
		var names []string
		for _, v := range r.Tests {
			names = append(names, v.String())
		}
		sort.Strings(names)
		tb.Row(n, r.Behaviors, r.Size, strings.Join(names, " "), 1)
	}
	tb.Render(&sb)
	sb.WriteString("With binary inputs height-1 networks need exactly n-1 tests (the covers of the\n")
	sb.WriteString("reverse permutation!), versus de Bruijn's single permutation test: the cover of\n")
	fmt.Fprintf(&sb, "(n..1) is precisely {1^i 0^(n-i)} — e.g. n=5: %v.\n", coverStrings(5))
	return Report{ID: "E10", Title: "height-1 networks", OK: ok, Body: sb.String()}
}

// E14PermSpace confirms the paper's *permutation-input* bounds by
// exhaustive computation over the permutation behaviour space: the
// exact minimum permutation test sets for sorter / selector / merger
// match Theorems 2.2(ii), 2.4(ii) and 2.5(ii); height-1 needs exactly
// one test (de Bruijn); and — new — height-2 already needs the full
// C(n,⌊n/2⌋)−1, mirroring the binary finding of E11.
func E14PermSpace() Report {
	ok := true
	var sb strings.Builder

	sb.WriteString("Sorter, unrestricted networks (Theorem 2.2(ii)):\n")
	tb := tablefmt.New("n", "behaviours", "min perm tests", "paper C(n,n/2)-1", "certified exact")
	paper22 := map[int]int{2: 1, 3: 2, 4: 5, 5: 9}
	for n := 2; n <= 5; n++ {
		r, err := search.MinimumPermTestSet(n, n-1, search.PermSorterAccepts, 0, 0)
		checkf(&ok, err == nil, &sb, "n=%d: %v", n, err)
		if err != nil {
			continue
		}
		checkf(&ok, r.Exact && r.Size == paper22[n], &sb,
			"n=%d: got %d (exact=%v), want %d", n, r.Size, r.Exact, paper22[n])
		tb.Row(n, r.Behaviors, r.Size, paper22[n], r.Exact)
	}
	tb.Render(&sb)

	sb.WriteString("\nHeight-restricted classes:\n")
	tb2 := tablefmt.New("n", "height", "min perm tests", "note")
	for _, tc := range []struct {
		n, h, want int
		note       string
	}{
		{4, 1, 1, "de Bruijn: the reverse permutation alone"},
		{5, 1, 1, "de Bruijn: the reverse permutation alone"},
		{4, 2, 5, "full bound already at height 2"},
		{5, 2, 9, "full bound already at height 2"},
	} {
		r, err := search.MinimumPermTestSet(tc.n, tc.h, search.PermSorterAccepts, 0, 0)
		checkf(&ok, err == nil && r.Exact && r.Size == tc.want, &sb,
			"n=%d h=%d: got %v %v, want %d", tc.n, tc.h, r.Size, err, tc.want)
		tb2.Row(tc.n, tc.h, r.Size, tc.note)
	}
	tb2.Render(&sb)

	sb.WriteString("\nSelector and merger at n=4 (Theorems 2.4(ii), 2.5(ii)):\n")
	tb3 := tablefmt.New("property", "min perm tests", "paper bound")
	for k := 1; k <= 4; k++ {
		want := 3 // C(4,1)-1
		if k >= 2 {
			want = 5 // C(4,2)-1, saturated
		}
		r, err := search.MinimumPermTestSet(4, 3, search.PermSelectorAccepts(k), 0, 0)
		checkf(&ok, err == nil && r.Exact && r.Size == want, &sb,
			"selector k=%d: got %v %v, want %d", k, r.Size, err, want)
		tb3.Row(fmt.Sprintf("(%d,4)-selector", k), r.Size, want)
	}
	rm, err := search.MinimumPermTestSet(4, 3, search.PermMergerAccepts, 0, 0)
	checkf(&ok, err == nil && rm.Exact && rm.Size == 2, &sb,
		"merger: got %v %v, want 2", rm.Size, err)
	tb3.Row("(2,2)-merger", rm.Size, 2)
	tb3.Render(&sb)
	fmt.Fprintf(&sb, "minimum merger tests found: %v (covers match the tau family)\n", rm.Tests)
	return Report{ID: "E14", Title: "permutation-space exact minimums", OK: ok, Body: sb.String()}
}

func coverStrings(n int) []string {
	var out []string
	for _, v := range perm.Reverse(n).Cover() {
		out = append(out, v.String())
	}
	return out
}

// E11Height2 attacks the open question the paper closes with: exact
// minimum test sets for height-2 networks. The behaviour-space search
// shows that for n = 3, 4, 5 height-2 networks already require the
// FULL 2ⁿ − n − 1 test set — restricting to height 2 buys nothing,
// in sharp contrast to height 1.
func E11Height2() Report {
	ok := true
	var sb strings.Builder
	tb := tablefmt.New("n", "height", "behaviours", "failure sets", "min tests", "2^n-n-1", "full set needed")
	for n := 3; n <= 5; n++ {
		full := bitvec.Universe(n) - n - 1
		for h := 1; h <= 3 && h <= n-1; h++ {
			r, err := search.MinimumTestSet(n, h, search.SorterAccepts, 20_000_000)
			checkf(&ok, err == nil, &sb, "n=%d h=%d: %v", n, h, err)
			if err != nil {
				continue
			}
			if h >= 2 {
				checkf(&ok, r.Size == full, &sb, "n=%d h=%d: minimum %d, want full %d", n, h, r.Size, full)
			}
			tb.Row(n, h, r.Behaviors, r.BadSets, r.Size, full, r.Size == full)
		}
	}
	tb.Render(&sb)
	sb.WriteString("Answer to the open question at small n: already at height 2, every non-sorted\n")
	sb.WriteString("string is forced (each is the unique failure of some height-2 network), so the\n")
	sb.WriteString("height-2 bound coincides with the unrestricted bound of Theorem 2.2.\n")
	return Report{ID: "E11", Title: "height-2 exact minimum test sets", OK: ok, Body: sb.String()}
}
