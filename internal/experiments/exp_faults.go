package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"sortnets/internal/bitvec"
	"sortnets/internal/core"
	"sortnets/internal/faults"
	"sortnets/internal/gen"
	"sortnets/internal/network"
	"sortnets/internal/tablefmt"
)

// E12Faults simulates the VLSI-testing application the paper cites as
// motivation: inject the single-fault universe (bypassed, always-swap
// and reversed comparators; stuck lines; bridged lines) into classical
// sorters and measure what the minimal test set catches versus random
// test sets of the same size.
//
// The paper's guarantee covers faults that leave the circuit a
// standard network (a bypassed comparator): if such a fault breaks
// sorting, the minimal test set *must* catch it — asserted at 100%.
// Other fault classes leave the network model, and the measurement
// surfaces a real hardware-testing caveat: a handful of faults (e.g. a
// reversed comparator fed an already-sorted input) are visible ONLY on
// sorted inputs, which the minimal set deliberately excludes. Since
// the minimal set contains *every* non-sorted string, any fault it
// misses is detectable only on sorted inputs; augmenting it with the
// n+1 sorted strings therefore restores 100% coverage, which the
// experiment also asserts.
func E12Faults() Report {
	ok := true
	var sb strings.Builder
	rng := rand.New(rand.NewSource(12))
	tb := tablefmt.New("network", "n", "faults", "detectable", "minimal set coverage",
		"random set coverage", "bypass coverage", "+sorted strings")
	for _, fixture := range []struct {
		name string
		w    *network.Network
	}{
		{"optimal-5", gen.Sorter(5)},
		{"optimal-6", gen.Sorter(6)},
		{"optimal-8", gen.Sorter(8)},
		{"batcher-8", gen.OddEvenMergeSort(8)},
		{"bubble-7", gen.Bubble(7)},
		{"oet-7", gen.OddEvenTransposition(7)},
	} {
		w := fixture.w
		n := w.N
		fs := faults.Enumerate(w)
		minimal := func() bitvec.Iterator { return core.SorterBinaryTests(n) }
		rep := faults.Measure(w, fs, minimal, faults.ByProperty)

		// Random baseline of equal size (sampled without the structure
		// of the minimal set).
		size := bitvec.Count(core.SorterBinaryTests(n))
		randomSet := make([]bitvec.Vec, size)
		for i := range randomSet {
			randomSet[i] = bitvec.New(n, rng.Uint64()&(uint64(1)<<uint(n)-1))
		}
		randomTests := func() bitvec.Iterator { return bitvec.Slice(randomSet) }
		randRep := faults.Measure(w, fs, randomTests, faults.ByProperty)

		// The theorem-backed subclass: bypass faults only.
		var bypass []faults.Fault
		for i := 0; i < w.Size(); i++ {
			bypass = append(bypass, faults.CompFault{Index: i, Mode: faults.Bypass})
		}
		byRep := faults.Measure(w, bypass, minimal, faults.ByProperty)
		checkf(&ok, byRep.Detected == byRep.Detectable, &sb,
			"%s: minimal set missed a detectable bypass fault", fixture.name)

		// Minimal set plus the n+1 sorted strings: must reach 100%.
		augmented := func() bitvec.Iterator { return bitvec.All(n) }
		augRep := faults.Measure(w, fs, augmented, faults.ByProperty)
		checkf(&ok, augRep.Detected == augRep.Detectable, &sb,
			"%s: even the full universe missed a fault?!", fixture.name)

		tb.Row(fixture.name, n, rep.Faults, rep.Detectable,
			fmt.Sprintf("%.1f%%", 100*rep.Coverage()),
			fmt.Sprintf("%.1f%%", 100*randRep.Coverage()),
			fmt.Sprintf("%d/%d", byRep.Detected, byRep.Detectable),
			fmt.Sprintf("%.1f%%", 100*augRep.Coverage()))
	}
	tb.Render(&sb)
	sb.WriteString("Bypass faults — the class inside the paper's network model — are caught completely\n")
	sb.WriteString("by the minimal test set, as Theorem 2.2 guarantees. The few misses in the general\n")
	sb.WriteString("column are faults visible only on SORTED inputs (e.g. a reversed comparator handed\n")
	sb.WriteString("an already-sorted pair), which the minimal set excludes by design; adding the n+1\n")
	sb.WriteString("sorted strings restores 100% coverage of every detectable fault.\n\n")

	// Double-fault masking: outside any single-fault guarantee.
	sb.WriteString("Double comparator faults (sampled) — masking measurement:\n")
	tb2 := tablefmt.New("network", "pairs", "both detectable alone", "fully masked",
		"minimal set coverage of detectable pairs")
	for _, fixture := range []struct {
		name string
		w    *network.Network
	}{
		{"optimal-5", gen.Sorter(5)},
		{"optimal-6", gen.Sorter(6)},
	} {
		w := fixture.w
		pairs := faults.EnumerateDoubleComp(w, 200, rng)
		mask := faults.MeasureMasking(w, pairs, faults.ByProperty)
		cov := faults.Measure(w, pairs,
			func() bitvec.Iterator { return core.SorterBinaryTests(w.N) }, faults.ByProperty)
		checkf(&ok, cov.Detected == cov.Detectable, &sb,
			"%s: minimal set missed a detectable double fault", fixture.name)
		tb2.Row(fixture.name, mask.Pairs, mask.BothDetectable, mask.PairUndetectable,
			fmt.Sprintf("%d/%d", cov.Detected, cov.Detectable))
	}
	tb2.Render(&sb)
	sb.WriteString("Masked pairs (two individually visible defects cancelling everywhere) exist but\n")
	sb.WriteString("are rare; every double fault that is detectable AT ALL on a non-sorted input is\n")
	sb.WriteString("caught by the minimal set, since the set contains every non-sorted string.\n")
	return Report{ID: "E12", Title: "VLSI fault coverage", OK: ok, Body: sb.String()}
}
