package experiments

import (
	"fmt"
	"math/big"
	"math/rand"
	"strings"

	"sortnets/internal/bitvec"
	"sortnets/internal/comb"
	"sortnets/internal/core"
	"sortnets/internal/gen"
	"sortnets/internal/network"
	"sortnets/internal/perm"
	"sortnets/internal/tablefmt"
	"sortnets/internal/verify"
)

// E3SelectorBinary reproduces Theorem 2.4(i): the minimal 0/1 test set
// for the (k,n)-selector property has Σᵢ₌₀..k C(n,i) − k − 1 elements.
// Sweeps k for a representative n, checks the constructed sizes, the
// necessity of each test (Lemma 2.3 via almost-sorters), and verdict
// agreement on random networks and true selection networks.
func E3SelectorBinary() Report {
	ok := true
	var sb strings.Builder
	rng := rand.New(rand.NewSource(3))
	const n = 10
	fmt.Fprintf(&sb, "n = %d, sweeping k:\n", n)
	tb := tablefmt.New("k", "paper sum-k-1", "constructed", "true selector passes", "random agreement")
	for k := 1; k <= n; k++ {
		paper := comb.SelectorBinaryTestSetSize(n, k)
		got := bitvec.Count(core.SelectorBinaryTests(n, k))
		checkf(&ok, paper.Cmp(big.NewInt(int64(got))) == 0, &sb, "k=%d: size %d != %s", k, got, paper)

		sel := gen.Selection(n, k)
		passes := verify.Verdict(sel, verify.Selector{N: n, K: k}).Holds
		checkf(&ok, passes, &sb, "k=%d: true selection network rejected", k)

		agree, trials := 0, 30
		for trial := 0; trial < trials; trial++ {
			w := network.Random(n, rng.Intn(n*n), rng)
			p := verify.Selector{N: n, K: k}
			if verify.Verdict(w, p).Holds == verify.GroundTruth(w, p).Holds {
				agree++
			}
		}
		checkf(&ok, agree == trials, &sb, "k=%d: verdicts disagreed", k)
		tb.Row(k, paper, got, passes, fmt.Sprintf("%d/%d", agree, trials))
	}
	tb.Render(&sb)

	// Necessity at a smaller n where the full sweep is cheap.
	const nSmall = 7
	forcedAll := true
	for k := 1; k <= nSmall; k++ {
		it := core.SelectorBinaryTests(nSmall, k)
		for {
			sigma, okNext := it.Next()
			if !okNext {
				break
			}
			h := core.MustAlmostSorter(sigma)
			if core.SelectsBinary(h, k, sigma) {
				forcedAll = false
				checkf(&ok, false, &sb, "k=%d: H_%s does not witness necessity", k, sigma)
			}
		}
	}
	fmt.Fprintf(&sb, "Necessity (Lemma 2.3) at n=%d: every test forced by an almost-sorter: %v\n",
		nSmall, forcedAll)
	return Report{ID: "E3", Title: "selector 0/1 test set size", OK: ok, Body: sb.String()}
}

// E4SelectorPerm reproduces Theorem 2.4(ii): the minimal permutation
// test set for the (k,n)-selector has C(n, min(⌊n/2⌋, k)) − 1
// elements, including the saturation at k = ⌊n/2⌋ (Case (ii) of the
// proof).
func E4SelectorPerm() Report {
	ok := true
	var sb strings.Builder
	const n = 10
	fmt.Fprintf(&sb, "n = %d, sweeping k (note the saturation at k = %d):\n", n, n/2)
	tb := tablefmt.New("k", "paper C(n,min(n/2,k))-1", "constructed", "covers T+k")
	for k := 1; k <= n; k++ {
		paper := comb.SelectorPermTestSetSize(n, k)
		ps := core.SelectorPermTests(n, k)
		checkf(&ok, paper.Cmp(big.NewInt(int64(len(ps)))) == 0, &sb,
			"k=%d: %d perms != %s", k, len(ps), paper)

		covered := perm.CoverSet(ps)
		complete := true
		it := core.SelectorBinaryTests(n, k)
		for {
			v, okNext := it.Next()
			if !okNext {
				break
			}
			if !covered[v] {
				complete = false
				checkf(&ok, false, &sb, "k=%d: %s uncovered", k, v)
			}
		}
		tb.Row(k, paper, len(ps), complete)
	}
	tb.Render(&sb)
	sat := comb.SelectorPermTestSetSize(n, n/2)
	for k := n / 2; k <= n; k++ {
		checkf(&ok, comb.SelectorPermTestSetSize(n, k).Cmp(sat) == 0, &sb,
			"saturation violated at k=%d", k)
	}
	fmt.Fprintf(&sb, "Saturation: for k >= %d the bound stays at %s (the B(n,%d) family already covers everything).\n",
		n/2, sat, n/2)
	return Report{ID: "E4", Title: "selector permutation test set size", OK: ok, Body: sb.String()}
}
