package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != 15 {
		t.Fatalf("registry has %d experiments, want 15", len(reg))
	}
	seen := map[string]bool{}
	for i, e := range reg {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("entry %d incomplete", i)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range []string{"E1", "E5", "E8", "E11", "E13", "E14", "E15"} {
		if !seen[id] {
			t.Errorf("missing %s", id)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("E99"); err == nil {
		t.Error("unknown id should error")
	}
}

func TestRunSingle(t *testing.T) {
	rs, err := Run("e6")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].ID != "E6" {
		t.Fatalf("got %+v", rs)
	}
}

// Every experiment must pass its own embedded checks. These are the
// paper's tables and figures; a FAIL here is a reproduction bug.

func runAndRequirePass(t *testing.T, id string, wantFragments ...string) string {
	t.Helper()
	rs, err := Run(id)
	if err != nil {
		t.Fatal(err)
	}
	r := rs[0]
	if !r.OK {
		t.Fatalf("%s failed:\n%s", id, r)
	}
	for _, f := range wantFragments {
		if !strings.Contains(r.Body, f) {
			t.Errorf("%s output missing %q:\n%s", id, f, r.Body)
		}
	}
	return r.Body
}

func TestE1(t *testing.T) {
	body := runAndRequirePass(t, "E1", "2^n-n-1")
	// n=10 row must show 1013.
	if !strings.Contains(body, "1013") {
		t.Errorf("missing n=10 value:\n%s", body)
	}
}

func TestE2(t *testing.T) {
	body := runAndRequirePass(t, "E2", "C(n,n/2)-1")
	if !strings.Contains(body, "923") { // C(12,6)-1
		t.Errorf("missing n=12 value 923:\n%s", body)
	}
}

func TestE3(t *testing.T) {
	runAndRequirePass(t, "E3", "Necessity (Lemma 2.3)")
}

func TestE4(t *testing.T) {
	body := runAndRequirePass(t, "E4", "Saturation")
	if !strings.Contains(body, "251") { // C(10,5)-1 = 251
		t.Errorf("missing saturated bound 251:\n%s", body)
	}
}

func TestE5(t *testing.T) {
	body := runAndRequirePass(t, "E5", "tau_i")
	if !strings.Contains(body, "(1 5 6 2 3 4)") {
		t.Errorf("missing tau_1 example:\n%s", body)
	}
}

func TestE6(t *testing.T) {
	body := runAndRequirePass(t, "E6", "(4 1 3 2)")
	if !strings.Contains(body, "input   [4 1 3 2]") || !strings.Contains(body, "output  [1 3 2 4]") {
		t.Errorf("trace rows missing:\n%s", body)
	}
}

func TestE7(t *testing.T) {
	body := runAndRequirePass(t, "E7", "H_100", "H_010", "H_101", "H_110")
	if strings.Count(body, "not sorted") != 4 {
		t.Errorf("each base case must show its failure:\n%s", body)
	}
}

func TestE8(t *testing.T) {
	runAndRequirePass(t, "E8", "case A", "case B", "case C", "mirrored")
}

func TestE9(t *testing.T) {
	runAndRequirePass(t, "E9", "ratio")
}

func TestE10(t *testing.T) {
	body := runAndRequirePass(t, "E10", "de Bruijn")
	if !strings.Contains(body, "1000 1100 1110") { // sorted list of n=4 tests
		t.Errorf("height-1 test strings missing:\n%s", body)
	}
}

func TestE11(t *testing.T) {
	body := runAndRequirePass(t, "E11", "full set needed")
	if !strings.Contains(body, "26") { // n=5: 2^5-5-1
		t.Errorf("n=5 bound missing:\n%s", body)
	}
}

func TestE12(t *testing.T) {
	runAndRequirePass(t, "E12", "optimal-5", "100.0%")
}

func TestE13(t *testing.T) {
	runAndRequirePass(t, "E13", "|T|/2^n")
}

func TestReportString(t *testing.T) {
	r := Report{ID: "E1", Title: "x", OK: true, Body: "body"}
	if !strings.Contains(r.String(), "[PASS]") {
		t.Error("missing PASS banner")
	}
	r.OK = false
	if !strings.Contains(r.String(), "[FAIL]") {
		t.Error("missing FAIL banner")
	}
}

func TestE14(t *testing.T) {
	body := runAndRequirePass(t, "E14", "de Bruijn", "height 2")
	if !strings.Contains(body, "43337") {
		t.Errorf("n=5 behaviour count missing:\n%s", body)
	}
}

func TestE15(t *testing.T) {
	body := runAndRequirePass(t, "E15", "2^512", "mutants caught")
	if !strings.Contains(body, "65536") { // 512²/4
		t.Errorf("n=512 test count missing:\n%s", body)
	}
}
