// Package experiments regenerates every table and figure of the paper
// as an executable report: each experiment E1–E13 (see DESIGN.md for
// the index) reproduces one bound, construction, or observation,
// cross-checks it against an independent computation, and renders a
// paper-vs-measured table. The cmd/tables binary drives the registry;
// EXPERIMENTS.md archives one run.
package experiments

import (
	"fmt"
	"strings"
)

// Report is the outcome of one experiment.
type Report struct {
	ID    string // e.g. "E1"
	Title string // what the paper artifact is
	OK    bool   // all embedded checks passed
	Body  string // rendered tables / figures / narration
}

// String renders the full report with a status banner.
func (r Report) String() string {
	status := "PASS"
	if !r.OK {
		status = "FAIL"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s [%s] %s ===\n", r.ID, status, r.Title)
	sb.WriteString(r.Body)
	if !strings.HasSuffix(r.Body, "\n") {
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Experiment is a runnable registry entry.
type Experiment struct {
	ID    string
	Title string
	Run   func() Report
}

// Registry lists every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"E1", "Theorem 2.2(i): sorter 0/1 test set = 2^n - n - 1", E1SorterBinary},
		{"E2", "Theorem 2.2(ii): sorter permutation test set = C(n,floor(n/2)) - 1", E2SorterPerm},
		{"E3", "Theorem 2.4(i): selector 0/1 test set = sum C(n,i) - k - 1", E3SelectorBinary},
		{"E4", "Theorem 2.4(ii): selector permutation test set = C(n,min(floor(n/2),k)) - 1", E4SelectorPerm},
		{"E5", "Theorem 2.5: merger test sets = n^2/4 and n/2", E5Merger},
		{"E6", "Figure 1: the example network on input (4 1 3 2)", E6Figure1},
		{"E7", "Figure 2: the four base almost-sorters for n=3", E7Figure2},
		{"E8", "Figures 3-5 / Lemma 2.1: the almost-sorter construction", E8AlmostSorter},
		{"E9", "Yao's observation: permutations vs 0/1 inputs", E9Yao},
		{"E10", "Section 3 / de Bruijn: height-1 networks", E10Height1},
		{"E11", "Section 3 open question: height-2 exact minimum test sets", E11Height2},
		{"E12", "Section 1 motivation: VLSI fault coverage", E12Faults},
		{"E13", "Complexity link: exponential test sets and verification cost", E13Growth},
		{"E14", "Permutation-space exact minimums (Thms 2.2(ii)/2.4(ii)/2.5(ii), de Bruijn, height-2)", E14PermSpace},
		{"E15", "Wide-width certification: merger and selector test sets beyond 64 lines", E15WideCertification},
	}
}

// Run executes one experiment by ID, or every experiment for "all",
// returning the reports in registry order.
func Run(id string) ([]Report, error) {
	var out []Report
	for _, e := range Registry() {
		if id == "all" || strings.EqualFold(id, e.ID) {
			out = append(out, e.Run())
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: unknown id %q (want E1..E15 or all)", id)
	}
	return out, nil
}

func checkf(ok *bool, cond bool, sb *strings.Builder, format string, args ...interface{}) {
	if !cond {
		*ok = false
		fmt.Fprintf(sb, "CHECK FAILED: "+format+"\n", args...)
	}
}
