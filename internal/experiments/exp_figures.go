package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"sortnets/internal/bitvec"
	"sortnets/internal/core"
	"sortnets/internal/gen"
	"sortnets/internal/network"
	"sortnets/internal/tablefmt"
)

// E6Figure1 re-runs the paper's worked example: the network
// [1,3][2,4][1,2][3,4] of Fig. 1 processing the input (4 1 3 2),
// which the figure shows ending at (1 3 2 4) — not sorted, so the
// example network is not a sorter, and the minimal test set must
// expose it.
func E6Figure1() Report {
	ok := true
	var sb strings.Builder
	w := network.MustParse("n=4: [1,3][2,4][1,2][3,4]")
	sb.WriteString("Figure 1 network:\n")
	sb.WriteString(w.Diagram())
	sb.WriteString("\nTrace on the paper's input (4 1 3 2):\n")
	sb.WriteString(w.Trace([]int{4, 1, 3, 2}))

	out := w.Apply([]int{4, 1, 3, 2})
	want := []int{1, 3, 2, 4}
	same := true
	for i := range want {
		if out[i] != want[i] {
			same = false
		}
	}
	checkf(&ok, same, &sb, "output %v, paper shows (1 3 2 4)", out)

	fail := w.FirstBinaryFailure()
	checkf(&ok, fail.N == 4, &sb, "expected a binary failure")
	fmt.Fprintf(&sb, "\nFirst binary input the network fails: %s -> %s\n", fail, w.ApplyVec(fail))
	checkf(&ok, !w.SortsAllBinary(), &sb, "Fig. 1 network should not be a sorter")
	return Report{ID: "E6", Title: "Figure 1 example", OK: ok, Body: sb.String()}
}

// E7Figure2 reconstructs the paper's Fig. 2: the almost-sorter H_σ for
// each of the four non-sorted strings of length 3, each verified to
// sort exactly {0,1}³ \ {σ}.
func E7Figure2() Report {
	ok := true
	var sb strings.Builder
	for _, s := range []string{"100", "010", "101", "110"} {
		sigma := bitvec.MustFromString(s)
		h := core.MustAlmostSorter(sigma)
		fmt.Fprintf(&sb, "H_%s = %s\n%s", s, h, h.Diagram())
		err := core.VerifyAlmostSorter(h, sigma)
		checkf(&ok, err == nil, &sb, "H_%s: %v", s, err)
		fmt.Fprintf(&sb, "  H_%s(%s) = %s (not sorted), all other inputs sorted: %v\n\n",
			s, s, h.ApplyVec(sigma), err == nil)
	}
	return Report{ID: "E7", Title: "Figure 2 base cases", OK: ok, Body: sb.String()}
}

// E8AlmostSorter exercises the full Lemma 2.1 induction (Figs. 3–5):
// for every non-sorted σ up to n=10 (and samples beyond), build H_σ
// and verify the contract; tally the construction cases and record
// network sizes.
func E8AlmostSorter() Report {
	ok := true
	var sb strings.Builder
	tb := tablefmt.New("n", "strings", "case A", "case B", "case C", "mirrored", "verified", "max |H|")
	for n := 4; n <= 10; n++ {
		counts := map[core.AlmostSorterCase]int{}
		verified, total, maxSize := 0, 0, 0
		it := core.SorterBinaryTests(n)
		for {
			sigma, okNext := it.Next()
			if !okNext {
				break
			}
			total++
			counts[core.ClassifyAlmostSorter(sigma)]++
			h := core.MustAlmostSorter(sigma)
			if h.Size() > maxSize {
				maxSize = h.Size()
			}
			if core.VerifyAlmostSorter(h, sigma) == nil {
				verified++
			}
		}
		checkf(&ok, verified == total, &sb, "n=%d: %d/%d verified", n, verified, total)
		tb.Row(n, total, counts[core.CaseA], counts[core.CaseB], counts[core.CaseC],
			counts[core.CaseMirrored], fmt.Sprintf("%d/%d", verified, total), maxSize)
	}
	tb.Render(&sb)

	// Sampled verification at larger n.
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{12, 14} {
		okAll := true
		for trial := 0; trial < 20; trial++ {
			v := bitvec.New(n, rng.Uint64()&(uint64(1)<<uint(n)-1))
			if v.IsSorted() {
				continue
			}
			if core.VerifyAlmostSorter(core.MustAlmostSorter(v), v) != nil {
				okAll = false
			}
		}
		checkf(&ok, okAll, &sb, "n=%d: sampled verification failed", n)
		fmt.Fprintf(&sb, "n=%d: 20 random σ verified: %v\n", n, okAll)
	}

	// A worked inductive example in the paper's style.
	sigma := bitvec.MustFromString("10010")
	h := core.MustAlmostSorter(sigma)
	fmt.Fprintf(&sb, "\nExample H_σ for σ=%s (case %s, %d comparators):\n%s",
		sigma, core.ClassifyAlmostSorter(sigma), h.Size(), h.Diagram())
	fmt.Fprintf(&sb, "H_σ(σ) = %s — one interchange from sorted, as the lemma remarks.\n",
		h.ApplyVec(sigma))
	return Report{ID: "E8", Title: "Lemma 2.1 construction", OK: ok, Body: sb.String()}
}

func mustSorter(n int) *network.Network { return gen.Sorter(n) }
