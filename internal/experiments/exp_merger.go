package experiments

import (
	"fmt"
	"math/big"
	"math/rand"
	"strings"

	"sortnets/internal/bitvec"
	"sortnets/internal/comb"
	"sortnets/internal/core"
	"sortnets/internal/gen"
	"sortnets/internal/network"
	"sortnets/internal/perm"
	"sortnets/internal/tablefmt"
	"sortnets/internal/verify"
)

// E5Merger reproduces Theorem 2.5: the minimal test set for the
// (n/2,n/2)-merger property has exactly n²/4 elements with 0/1 inputs
// and n/2 with permutation inputs — linear, the smallest of the
// paper's bounds. Checks sizes, that Batcher's odd-even merger passes
// everything, that single-comparator deletions are caught (mutation
// necessity), and verdict agreement on random networks.
func E5Merger() Report {
	ok := true
	var sb strings.Builder
	tb := tablefmt.New("n", "binary n^2/4", "constructed", "perm n/2", "constructed ",
		"Batcher passes", "mutants caught", "random agreement")
	rng := rand.New(rand.NewSource(5))
	for n := 4; n <= 16; n += 2 {
		paperBin := comb.MergerBinaryTestSetSize(n)
		gotBin := bitvec.Count(core.MergerBinaryTests(n))
		checkf(&ok, paperBin.Cmp(big.NewInt(int64(gotBin))) == 0, &sb,
			"n=%d: binary size %d != %s", n, gotBin, paperBin)

		paperPerm := comb.MergerPermTestSetSize(n)
		ps := core.MergerPermTests(n)
		checkf(&ok, paperPerm.Cmp(big.NewInt(int64(len(ps)))) == 0, &sb,
			"n=%d: perm size %d != %s", n, len(ps), paperPerm)

		// Permutation covers must include every binary test.
		covered := perm.CoverSet(ps)
		it := core.MergerBinaryTests(n)
		for {
			v, okNext := it.Next()
			if !okNext {
				break
			}
			if !covered[v] {
				checkf(&ok, false, &sb, "n=%d: %s uncovered by the tau family", n, v)
			}
		}

		merger := gen.HalfMerger(n)
		passBin := verify.Verdict(merger, verify.Merger{N: n}).Holds
		passPerm := verify.VerdictPerms(merger, verify.Merger{N: n}).Holds
		checkf(&ok, passBin && passPerm, &sb, "n=%d: Batcher merger rejected", n)

		// Mutation necessity: delete each comparator in turn; if the
		// mutant stops being a merger, the test set must catch it.
		caught, broken := 0, 0
		for i := 0; i < merger.Size(); i++ {
			mutant := network.New(n)
			for j, c := range merger.Comps {
				if j != i {
					mutant.AddPair(c.A, c.B)
				}
			}
			if core.IsMergerBinary(mutant) {
				continue // redundant comparator: nothing to catch
			}
			broken++
			if !verify.Verdict(mutant, verify.Merger{N: n}).Holds {
				caught++
			}
		}
		checkf(&ok, caught == broken, &sb, "n=%d: %d/%d broken mutants caught", n, caught, broken)

		agree, trials := 0, 30
		for trial := 0; trial < trials; trial++ {
			w := network.Random(n, rng.Intn(n*n/2+1), rng)
			p := verify.Merger{N: n}
			if verify.Verdict(w, p).Holds == verify.GroundTruth(w, p).Holds {
				agree++
			}
		}
		checkf(&ok, agree == trials, &sb, "n=%d: verdicts disagreed", n)

		tb.Row(n, paperBin, gotBin, paperPerm, len(ps),
			passBin && passPerm, fmt.Sprintf("%d/%d", caught, broken),
			fmt.Sprintf("%d/%d", agree, trials))
	}
	tb.Render(&sb)
	sb.WriteString("The tau_i permutations for n=6: ")
	for i, p := range core.MergerPermTests(6) {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.String())
	}
	sb.WriteString("\n")
	return Report{ID: "E5", Title: "merger test set sizes", OK: ok, Body: sb.String()}
}
