package experiments

import (
	"fmt"
	"math/big"
	"math/rand"
	"strings"
	"time"

	"sortnets/internal/bitvec"
	"sortnets/internal/comb"
	"sortnets/internal/core"
	"sortnets/internal/network"
	"sortnets/internal/perm"
	"sortnets/internal/tablefmt"
	"sortnets/internal/verify"
)

// E1SorterBinary reproduces Theorem 2.2(i): the minimal 0/1 test set
// for sorting has exactly 2ⁿ − n − 1 elements. Measured three ways:
// the constructed set's cardinality, the lower bound via Lemma 2.1
// almost-sorters (every test is necessary), and sufficiency via
// verdict-vs-ground-truth agreement on random networks.
func E1SorterBinary() Report {
	ok := true
	var sb strings.Builder
	tb := tablefmt.New("n", "paper 2^n-n-1", "constructed", "necessity (H_sigma)", "sufficiency (random nets)")
	rng := rand.New(rand.NewSource(1))
	for n := 2; n <= 14; n++ {
		paper := comb.SorterBinaryTestSetSize(n)
		got := bitvec.Count(core.SorterBinaryTests(n))
		checkf(&ok, paper.Cmp(big.NewInt(int64(got))) == 0, &sb, "n=%d size %d != %s", n, got, paper)

		necessity := "-"
		if n <= 9 {
			// Every σ in the set is necessary: H_σ fails only σ.
			all := true
			it := core.SorterBinaryTests(n)
			for {
				v, okNext := it.Next()
				if !okNext {
					break
				}
				if err := core.VerifyAlmostSorter(core.MustAlmostSorter(v), v); err != nil {
					all = false
					checkf(&ok, false, &sb, "n=%d: %v", n, err)
				}
			}
			if all {
				necessity = fmt.Sprintf("all %d forced", got)
			}
		} else {
			// Sampled necessity beyond the exhaustive regime.
			forced := 0
			for trial := 0; trial < 50; trial++ {
				v := bitvec.New(n, rng.Uint64()&(uint64(1)<<uint(n)-1))
				if v.IsSorted() {
					continue
				}
				if core.VerifyAlmostSorter(core.MustAlmostSorter(v), v) == nil {
					forced++
				} else {
					checkf(&ok, false, &sb, "n=%d: sampled σ=%s not forced", n, v)
				}
			}
			necessity = fmt.Sprintf("%d/%d sampled forced", forced, forced)
		}

		sufficiency := "-"
		if n <= 10 {
			agree := 0
			const trials = 40
			for trial := 0; trial < trials; trial++ {
				w := network.Random(n, rng.Intn(n*n), rng)
				v := verify.Verdict(w, verify.Sorter{N: n}).Holds
				g := verify.GroundTruth(w, verify.Sorter{N: n}).Holds
				if v == g {
					agree++
				}
			}
			checkf(&ok, agree == 40, &sb, "n=%d: verdicts disagreed", n)
			sufficiency = fmt.Sprintf("%d/%d agree", agree, 40)
		}
		tb.Row(n, paper, got, necessity, sufficiency)
	}
	tb.Render(&sb)
	return Report{ID: "E1", Title: "sorter 0/1 test set size", OK: ok, Body: sb.String()}
}

// E2SorterPerm reproduces Theorem 2.2(ii): the minimal permutation
// test set has C(n,⌊n/2⌋) − 1 elements, built from the symmetric chain
// decomposition; its cover blankets all non-sorted strings, and the
// verdict it renders agrees with ground truth.
func E2SorterPerm() Report {
	ok := true
	var sb strings.Builder
	tb := tablefmt.New("n", "paper C(n,n/2)-1", "constructed", "cover complete", "verdict agreement")
	rng := rand.New(rand.NewSource(2))
	for n := 2; n <= 12; n++ {
		paper := comb.SorterPermTestSetSize(n)
		ps := core.SorterPermTests(n)
		checkf(&ok, paper.Cmp(big.NewInt(int64(len(ps)))) == 0, &sb,
			"n=%d: %d perms != %s", n, len(ps), paper)

		covered := perm.CoverSet(ps)
		complete := true
		it := core.SorterBinaryTests(n)
		for {
			v, okNext := it.Next()
			if !okNext {
				break
			}
			if !covered[v] {
				complete = false
				checkf(&ok, false, &sb, "n=%d: %s uncovered", n, v)
			}
		}

		agreement := "-"
		if n <= 8 {
			agree, trials := 0, 30
			for trial := 0; trial < trials; trial++ {
				w := network.Random(n, rng.Intn(n*n), rng)
				v := verify.VerdictPerms(w, verify.Sorter{N: n}).Holds
				g := verify.GroundTruth(w, verify.Sorter{N: n}).Holds
				if v == g {
					agree++
				}
			}
			checkf(&ok, agree == trials, &sb, "n=%d: perm verdicts disagreed", n)
			agreement = fmt.Sprintf("%d/%d agree", agree, trials)
		}
		tb.Row(n, paper, len(ps), complete, agreement)
	}
	tb.Render(&sb)
	return Report{ID: "E2", Title: "sorter permutation test set size", OK: ok, Body: sb.String()}
}

// E9Yao reproduces the paper's comparison of the two input models:
// C(n,⌊n/2⌋)−1 permutations against 2ⁿ−n−1 binary strings, with the
// quoted asymptotic C(n,⌊n/2⌋) ≈ 2ⁿ·√(2/(πn)).
func E9Yao() Report {
	ok := true
	var sb strings.Builder
	sb.WriteString("Permutations are strictly cheaper tests for n >= 5; the advantage grows like sqrt(2/(pi*n)).\n")
	tb := tablefmt.New("n", "binary 2^n-n-1", "perm C(n,n/2)-1", "ratio", "Stirling est. of C(n,n/2)")
	prev := 2.0
	for n := 2; n <= 24; n++ {
		bin := comb.SorterBinaryTestSetSize(n)
		pm := comb.SorterPermTestSetSize(n)
		ratio := comb.PermToBinaryRatio(n)
		if n >= 5 {
			checkf(&ok, ratio < 1, &sb, "n=%d: ratio %.3f not < 1", n, ratio)
			checkf(&ok, ratio < prev, &sb, "n=%d: ratio %.4f did not shrink", n, ratio)
		}
		prev = ratio
		tb.Row(n, bin, pm, fmt.Sprintf("%.4f", ratio),
			fmt.Sprintf("%.3e", comb.CentralBinomialEstimate(n)))
	}
	tb.Render(&sb)
	return Report{ID: "E9", Title: "Yao's observation", OK: ok, Body: sb.String()}
}

// E13Growth demonstrates the complexity connection of Section 1: the
// minimal test set stays a constant fraction of 2ⁿ (so testing is
// intractable unless NP = coNP), and measures what the minimal set
// saves over exhaustive sweeps in wall-clock terms.
func E13Growth() Report {
	ok := true
	var sb strings.Builder
	tb := tablefmt.New("n", "|T|", "2^n", "|T|/2^n", "minimal sweep", "exhaustive sweep", "parallel exhaustive")
	for _, n := range []int{8, 12, 16, 20} {
		w := mustSorter(n)
		tSize := new(big.Float).SetInt(comb.SorterBinaryTestSetSize(n))
		uSize := new(big.Float).SetInt(comb.Pow2(n))
		frac, _ := new(big.Float).Quo(tSize, uSize).Float64()
		checkf(&ok, frac > 0.5, &sb, "n=%d: test fraction %.3f not > 1/2", n, frac)

		start := time.Now()
		rMin := verify.Verdict(w, verify.Sorter{N: n})
		minD := time.Since(start)
		start = time.Now()
		rFull := verify.GroundTruth(w, verify.Sorter{N: n})
		fullD := time.Since(start)
		start = time.Now()
		rPar := verify.GroundTruthParallel(w, verify.Sorter{N: n}, 0)
		parD := time.Since(start)
		checkf(&ok, rMin.Holds && rFull.Holds && rPar.Holds, &sb, "n=%d: sorter rejected", n)

		tb.Row(n, comb.SorterBinaryTestSetSize(n), comb.Pow2(n),
			fmt.Sprintf("%.4f", frac), minD.Round(time.Microsecond),
			fullD.Round(time.Microsecond), parD.Round(time.Microsecond))
	}
	sb.WriteString("The fraction tends to 1: almost every input is a required test, the engine of the\n")
	sb.WriteString("coNP-completeness result the authors prove in the companion paper [3].\n")
	tb.Render(&sb)
	return Report{ID: "E13", Title: "growth and verification cost", OK: ok, Body: sb.String()}
}
