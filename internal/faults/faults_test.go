package faults

import (
	"math/rand"
	"testing"

	"sortnets/internal/bitvec"
	"sortnets/internal/core"
	"sortnets/internal/gen"
	"sortnets/internal/network"
)

func TestNoFaultEqualsCleanEvaluation(t *testing.T) {
	// A CompFault with an out-of-range index never triggers, so the
	// evaluation must coincide with the clean network on all inputs.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(8)
		w := network.Random(n, rng.Intn(3*n), rng)
		ghost := CompFault{Index: -1, Mode: Bypass}
		it := bitvec.All(n)
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			if ghost.Eval(w, v) != w.ApplyVec(v) {
				t.Fatalf("ghost fault changed behaviour on %s", v)
			}
		}
	}
}

func TestBypassRemovesComparator(t *testing.T) {
	w := gen.Sorter(4)
	for i := 0; i < w.Size(); i++ {
		f := CompFault{Index: i, Mode: Bypass}
		// Equivalent network with comparator i deleted.
		reduced := network.New(4)
		for j, c := range w.Comps {
			if j != i {
				reduced.AddPair(c.A, c.B)
			}
		}
		it := bitvec.All(4)
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			if f.Eval(w, v) != reduced.ApplyVec(v) {
				t.Fatalf("bypass %d diverges from deleted-comparator network on %s", i, v)
			}
		}
	}
}

func TestReverseComparatorUnsorts(t *testing.T) {
	// A single reversed comparator in a 2-line sorter sends 01 and 10
	// to 10: visibly broken.
	w := network.New(2).AddPair(0, 1)
	f := CompFault{Index: 0, Mode: Reverse}
	if got := f.Eval(w, bitvec.MustFromString("01")); got.String() != "10" {
		t.Errorf("reverse on 01 = %s, want 10", got)
	}
	if got := f.Eval(w, bitvec.MustFromString("10")); got.String() != "10" {
		t.Errorf("reverse on 10 = %s, want 10", got)
	}
}

func TestAlwaysSwapExchangesUnconditionally(t *testing.T) {
	w := network.New(2).AddPair(0, 1)
	f := CompFault{Index: 0, Mode: AlwaysSwap}
	if got := f.Eval(w, bitvec.MustFromString("01")); got.String() != "10" {
		t.Errorf("always-swap on 01 = %s, want 10", got)
	}
}

func TestStuckLineClamps(t *testing.T) {
	w := gen.Sorter(4)
	f := StuckLine{Line: 2, Value: 1}
	it := bitvec.All(4)
	for {
		v, ok := it.Next()
		if !ok {
			break
		}
		if out := f.Eval(w, v); out.Bit(2) != 1 {
			t.Fatalf("stuck-at-1 line reads %d on input %s", out.Bit(2), v)
		}
	}
	f0 := StuckLine{Line: 0, Value: 0}
	for it = bitvec.All(4); ; {
		v, ok := it.Next()
		if !ok {
			break
		}
		if out := f0.Eval(w, v); out.Bit(0) != 0 {
			t.Fatalf("stuck-at-0 line reads %d on input %s", out.Bit(0), v)
		}
	}
}

func TestBridgeShortsLines(t *testing.T) {
	w := network.New(3) // empty: the short acts on inputs directly
	or := Bridge{A: 0, B: 1, Mode: WiredOR}
	if got := or.Eval(w, bitvec.MustFromString("010")); got.String() != "110" {
		t.Errorf("wired-OR on 010 = %s, want 110", got)
	}
	and := Bridge{A: 0, B: 1, Mode: WiredAND}
	if got := and.Eval(w, bitvec.MustFromString("010")); got.String() != "000" {
		t.Errorf("wired-AND on 010 = %s, want 000", got)
	}
}

func TestEnumerateCounts(t *testing.T) {
	w := gen.Sorter(5) // 9 comparators, 5 lines
	fs := Enumerate(w)
	want := 3*w.Size() + 2*w.N + 2*(w.N-1)
	if len(fs) != want {
		t.Errorf("enumerated %d faults, want %d", len(fs), want)
	}
	seen := map[string]bool{}
	for _, f := range fs {
		if seen[f.Describe()] {
			t.Errorf("duplicate fault %s", f.Describe())
		}
		seen[f.Describe()] = true
	}
}

func TestMinimalTestSetCatchesAllNetworkFaults(t *testing.T) {
	// The paper's guarantee, executed: any fault that leaves the
	// circuit a *standard network* (Bypass) and breaks sorting is
	// caught by the minimal test set — because the test set decides
	// sorter-ness for arbitrary networks.
	for n := 3; n <= 7; n++ {
		w := gen.Sorter(n)
		tests := func() bitvec.Iterator { return core.SorterBinaryTests(n) }
		var fs []Fault
		for i := 0; i < w.Size(); i++ {
			fs = append(fs, CompFault{Index: i, Mode: Bypass})
		}
		rep := Measure(w, fs, tests, ByProperty)
		if rep.Detected != rep.Detectable {
			t.Errorf("n=%d: minimal test set missed %d detectable bypass faults",
				n, rep.Detectable-rep.Detected)
		}
	}
}

func TestGoldenModeIsMoreSensitive(t *testing.T) {
	// Every property-detectable fault is golden-detectable (the
	// converse can fail: a fault may permute equal outputs invisibly).
	w := gen.Sorter(5)
	for _, f := range Enumerate(w) {
		it := bitvec.All(5)
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			if Detects(w, f, v, ByProperty) && !Detects(w, f, v, ByGolden) {
				t.Fatalf("fault %s: property-detected but not golden-detected on %s",
					f.Describe(), v)
			}
		}
	}
}

func TestUndetectableFaultExcluded(t *testing.T) {
	// A sorter with a duplicated final comparator: bypassing the
	// duplicate is functionally invisible and must not count against
	// coverage.
	w := gen.Sorter(4)
	last := w.Comps[len(w.Comps)-1]
	w = w.Clone().AddPair(last.A, last.B)
	dup := CompFault{Index: w.Size() - 1, Mode: Bypass}
	if Detectable(w, dup, ByProperty) {
		t.Error("bypassing a duplicated comparator should be undetectable by property")
	}
	rep := Measure(w, []Fault{dup}, func() bitvec.Iterator { return core.SorterBinaryTests(4) }, ByProperty)
	if rep.Detectable != 0 || rep.Coverage() != 1 {
		t.Errorf("undetectable fault mishandled: %+v", rep)
	}
}

func TestCoverageReportString(t *testing.T) {
	r := Report{Faults: 10, Detectable: 8, Detected: 6}
	if r.Coverage() != 0.75 {
		t.Errorf("coverage %f", r.Coverage())
	}
	if r.String() == "" {
		t.Error("empty string")
	}
}

func TestModeStrings(t *testing.T) {
	if Bypass.String() != "bypass" || AlwaysSwap.String() != "always-swap" ||
		Reverse.String() != "reverse" {
		t.Error("comp mode strings")
	}
	if WiredOR.String() != "wired-OR" || WiredAND.String() != "wired-AND" {
		t.Error("bridge mode strings")
	}
	if ByProperty.String() != "by-property" || ByGolden.String() != "by-golden" {
		t.Error("detect mode strings")
	}
	if CompMode(9).String() == "" {
		t.Error("unknown mode should still render")
	}
}

func TestMeasureOnRealSorterFullEnumeration(t *testing.T) {
	// End-to-end: full single-fault universe on the optimal 5-sorter,
	// measured with the minimal test set; coverage must be 100% of
	// detectable faults in golden mode too (the test set's outputs
	// differ whenever any input's outputs differ... not guaranteed in
	// general, so we only require property-mode completeness for
	// standard-network faults and report golden-mode as a measurement).
	w := gen.Sorter(5)
	tests := func() bitvec.Iterator { return core.SorterBinaryTests(5) }
	rep := Measure(w, Enumerate(w), tests, ByProperty)
	if rep.Detected > rep.Detectable || rep.Detectable > rep.Faults {
		t.Errorf("inconsistent report %+v", rep)
	}
	if rep.Coverage() < 0.5 {
		t.Errorf("suspiciously low coverage: %s", rep)
	}
}
