package faults

import (
	"fmt"

	"sortnets/internal/bitvec"
	"sortnets/internal/network"
)

// Detection semantics. A test τ *detects* a fault in a circuit under
// test in one of two senses:
//
//   - ByProperty: the faulty output on τ is visibly wrong for the
//     property being certified (for a sorter: not sorted). This is the
//     observation model of the paper — the tester sees outputs only
//     and judges them against the property.
//   - ByGolden: the faulty output differs from the fault-free output.
//     This is the classical stuck-at testing model with a golden
//     reference, strictly more sensitive than ByProperty.
type DetectMode int

// Detection modes.
const (
	ByProperty DetectMode = iota
	ByGolden
)

func (m DetectMode) String() string {
	if m == ByProperty {
		return "by-property"
	}
	return "by-golden"
}

// Detects reports whether the test vector τ detects fault f on w.
func Detects(w *network.Network, f Fault, tau bitvec.Vec, mode DetectMode) bool {
	out := f.Eval(w, tau)
	if mode == ByGolden {
		return out != w.ApplyVec(tau)
	}
	return !out.IsSorted()
}

// Detectable reports whether any binary input at all detects the fault
// — faults that are undetectable are functionally benign (e.g. a
// bypassed redundant comparator) and excluded from coverage
// denominators.
func Detectable(w *network.Network, f Fault, mode DetectMode) bool {
	it := bitvec.All(w.N)
	for {
		v, ok := it.Next()
		if !ok {
			return false
		}
		if Detects(w, f, v, mode) {
			return true
		}
	}
}

// Report aggregates a fault-coverage measurement.
type Report struct {
	Faults     int // faults injected
	Detectable int // faults some input could expose
	Detected   int // faults the given test set exposed
}

// Coverage returns Detected/Detectable as a fraction in [0,1], or 1
// when nothing is detectable.
func (r Report) Coverage() float64 {
	if r.Detectable == 0 {
		return 1
	}
	return float64(r.Detected) / float64(r.Detectable)
}

// String renders "detected/detectable (coverage%)".
func (r Report) String() string {
	return fmt.Sprintf("%d/%d detectable faults caught (%.1f%%)",
		r.Detected, r.Detectable, 100*r.Coverage())
}

// Measure injects every fault in fs into w and checks which ones the
// test set exposes. tests is re-created per fault via the factory so
// streamed iterators can be replayed.
func Measure(w *network.Network, fs []Fault, tests func() bitvec.Iterator, mode DetectMode) Report {
	rep := Report{Faults: len(fs)}
	for _, f := range fs {
		if !Detectable(w, f, mode) {
			continue
		}
		rep.Detectable++
		it := tests()
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			if Detects(w, f, v, mode) {
				rep.Detected++
				break
			}
		}
	}
	return rep
}
