package faults

import (
	"context"
	"fmt"

	"sortnets/internal/bitvec"
	"sortnets/internal/eval"
	"sortnets/internal/network"
)

// Detection semantics. A test τ *detects* a fault in a circuit under
// test in one of two senses:
//
//   - ByProperty: the faulty output on τ is visibly wrong for the
//     property being certified (for a sorter: not sorted). This is the
//     observation model of the paper — the tester sees outputs only
//     and judges them against the property.
//   - ByGolden: the faulty output differs from the fault-free output.
//     This is the classical stuck-at testing model with a golden
//     reference, strictly more sensitive than ByProperty.
type DetectMode int

// Detection modes.
const (
	ByProperty DetectMode = iota
	ByGolden
)

func (m DetectMode) String() string {
	if m == ByProperty {
		return "by-property"
	}
	return "by-golden"
}

// Detector is the compiled form of one (circuit, fault, mode)
// triple: the faulty program, the golden program when the mode needs
// it, and the detection judge — built once, then run over any number
// of test streams on the 64-lane batch engine. A Detector is not
// safe for concurrent use (it owns scratch batches); build one per
// goroutine.
type Detector struct {
	prog    *eval.Program
	judge   eval.Judge
	scratch *network.Batch // ByGolden: golden outputs, recomputed per block
}

// NewDetector compiles the faulty circuit and its detection judge.
// golden must be the compiled healthy circuit (eval.Compile(w)); it
// is only consulted in ByGolden mode and may be shared between
// detectors (programs are immutable).
func NewDetector(w *network.Network, golden *eval.Program, f Fault, mode DetectMode) *Detector {
	d := &Detector{prog: Compile(w, f)}
	if mode == ByGolden {
		d.scratch = network.NewBatch(w.N)
		d.judge = eval.Judge{
			NeedsInput: true,
			Rejects: func(in, out *network.Batch) uint64 {
				copy(d.scratch.Lines, in.Lines)
				d.scratch.Lanes = in.Lanes
				golden.ApplyBatch(d.scratch)
				var diff uint64
				for i := range d.scratch.Lines {
					diff |= d.scratch.Lines[i] ^ out.Lines[i]
				}
				return diff
			},
		}
	} else {
		d.judge = eval.SortedJudge()
	}
	return d
}

// Detects reports whether the single test vector τ detects the fault.
func (d *Detector) Detects(tau bitvec.Vec) bool {
	return !eval.New(d.prog, 1).Run(bitvec.Slice([]bitvec.Vec{tau}), d.judge).Holds
}

// DetectedBy reports whether any vector of the stream detects the
// fault, 64 word-parallel lanes at a time.
func (d *Detector) DetectedBy(it bitvec.Iterator) bool {
	return !eval.New(d.prog, 1).Run(it, d.judge).Holds
}

// DetectedByCtx is DetectedBy under a context.
func (d *Detector) DetectedByCtx(ctx context.Context, it bitvec.Iterator) (bool, error) {
	v, err := eval.New(d.prog, 1).RunCtx(ctx, it, d.judge)
	if err != nil {
		return false, err
	}
	return !v.Holds, nil
}

// Detectable reports whether any binary input at all detects the
// fault, sweeping the 2ⁿ universe with wholesale lane loading.
func (d *Detector) Detectable() bool {
	return !eval.New(d.prog, 1).RunUniverse(d.judge).Holds
}

// DetectableCtx is Detectable under a context.
func (d *Detector) DetectableCtx(ctx context.Context) (bool, error) {
	v, err := eval.New(d.prog, 1).RunUniverseCtx(ctx, d.judge)
	if err != nil {
		return false, err
	}
	return !v.Holds, nil
}

// Detects reports whether the test vector τ detects fault f on w.
// One-shot convenience; loops should build a Detector (or call
// Measure) so the fault compiles once.
func Detects(w *network.Network, f Fault, tau bitvec.Vec, mode DetectMode) bool {
	return NewDetector(w, eval.Compile(w), f, mode).Detects(tau)
}

// Detectable reports whether any binary input at all detects the fault
// — faults that are undetectable are functionally benign (e.g. a
// bypassed redundant comparator) and excluded from coverage
// denominators.
func Detectable(w *network.Network, f Fault, mode DetectMode) bool {
	return NewDetector(w, eval.Compile(w), f, mode).Detectable()
}

// Report aggregates a fault-coverage measurement.
type Report struct {
	Faults     int // faults injected
	Detectable int // faults some input could expose
	Detected   int // faults the given test set exposed
}

// Coverage returns Detected/Detectable as a fraction in [0,1], or 1
// when nothing is detectable.
func (r Report) Coverage() float64 {
	if r.Detectable == 0 {
		return 1
	}
	return float64(r.Detected) / float64(r.Detectable)
}

// String renders "detected/detectable (coverage%)".
func (r Report) String() string {
	return fmt.Sprintf("%d/%d detectable faults caught (%.1f%%)",
		r.Detected, r.Detectable, 100*r.Coverage())
}

// Measure injects every fault in fs into w and checks which ones the
// test set exposes. Each fault compiles once to a program variant and
// is judged on the batch engine; the faults themselves are spread
// over the shared worker pool. tests is re-created per fault via the
// factory so streamed iterators can be replayed — the factory must be
// safe for concurrent calls (all the package core test-set factories
// are: each call returns a fresh iterator).
func Measure(w *network.Network, fs []Fault, tests func() bitvec.Iterator, mode DetectMode) Report {
	return MeasureWith(w, eval.Compile(w), fs, tests, mode)
}

// MeasureWith is Measure with a caller-supplied compiled healthy
// program — the cache-aware entry point: a caller holding w's program
// already (the serving layer keeps one per canonical digest) skips
// the recompilation. golden must be eval.Compile(w) (programs are
// immutable, so sharing one across calls and goroutines is safe).
func MeasureWith(w *network.Network, golden *eval.Program, fs []Fault, tests func() bitvec.Iterator, mode DetectMode) Report {
	rep, _ := MeasureCtx(context.Background(), w, golden, fs, tests, mode)
	return rep
}

// MeasureCtx is MeasureWith under a context: the fault sweep stops
// claiming new faults once the context is cancelled, each per-fault
// engine pass checks it per 64-lane block, and a cancelled run
// returns the context's error with a zero report.
func MeasureCtx(ctx context.Context, w *network.Network, golden *eval.Program, fs []Fault, tests func() bitvec.Iterator, mode DetectMode) (Report, error) {
	type outcome struct{ detectable, detected bool }
	outcomes := make([]outcome, len(fs))
	err := eval.ForEachCtx(ctx, len(fs), 0, func(i int) {
		d := NewDetector(w, golden, fs[i], mode)
		detectable, err := d.DetectableCtx(ctx)
		if err != nil || !detectable {
			return
		}
		outcomes[i].detectable = true
		outcomes[i].detected, _ = d.DetectedByCtx(ctx, tests())
	})
	if err != nil {
		return Report{}, err
	}
	rep := Report{Faults: len(fs)}
	for _, o := range outcomes {
		if o.detectable {
			rep.Detectable++
		}
		if o.detected {
			rep.Detected++
		}
	}
	return rep, nil
}
