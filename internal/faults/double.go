package faults

import (
	"fmt"
	"math/rand"

	"sortnets/internal/bitvec"
	"sortnets/internal/eval"
	"sortnets/internal/network"
)

// Double comparator faults: two comparators misbehaving at once. The
// classical single-fault assumption of E12 is optimistic for real
// silicon; double faults exhibit *masking* — two defects whose
// misbehaviours cancel on the tested inputs — which is exactly what a
// minimal test set's guarantees do NOT cover, making the measurement
// interesting. Only comparator-mode pairs are modelled (stuck lines
// and bridges compose less cleanly with each other's clamp points).

// DoubleComp is a pair of comparator faults active simultaneously.
// The two indices must differ.
type DoubleComp struct {
	First, Second CompFault
}

// Describe implements Fault.
func (f DoubleComp) Describe() string {
	return fmt.Sprintf("%s + %s", f.First.Describe(), f.Second.Describe())
}

// Ops implements Fault: both comparator modes apply in one pass.
func (f DoubleComp) Ops(w *network.Network) []eval.Op {
	ops := make([]eval.Op, len(w.Comps))
	for i, c := range w.Comps {
		kind := eval.OpCmp
		switch i {
		case f.First.Index:
			kind = opFor(f.First.Mode)
		case f.Second.Index:
			kind = opFor(f.Second.Mode)
		}
		ops[i] = eval.Op{Kind: kind, A: c.A, B: c.B}
	}
	return ops
}

// Eval implements Fault.
func (f DoubleComp) Eval(w *network.Network, v bitvec.Vec) bitvec.Vec {
	return Compile(w, f).Apply(v)
}

// EnumerateDoubleComp lists double comparator faults. With three modes
// per comparator the full universe is 9·C(s,2) pairs; max > 0 samples
// that many uniformly instead (for large networks).
func EnumerateDoubleComp(w *network.Network, max int, rng *rand.Rand) []Fault {
	modes := []CompMode{Bypass, AlwaysSwap, Reverse}
	s := w.Size()
	var all []Fault
	for i := 0; i < s; i++ {
		for j := i + 1; j < s; j++ {
			for _, mi := range modes {
				for _, mj := range modes {
					all = append(all, DoubleComp{
						First:  CompFault{Index: i, Mode: mi},
						Second: CompFault{Index: j, Mode: mj},
					})
				}
			}
		}
	}
	if max <= 0 || len(all) <= max {
		return all
	}
	rng.Shuffle(len(all), func(a, b int) { all[a], all[b] = all[b], all[a] })
	return all[:max]
}

// MaskingReport quantifies fault masking: pairs where each component
// fault is detectable alone but the pair is not (their misbehaviours
// cancel on every input).
type MaskingReport struct {
	Pairs            int // pairs examined
	BothDetectable   int // pairs whose components are each detectable alone
	PairUndetectable int // of those, pairs undetectable together (masked)
}

// String renders the masking summary.
func (r MaskingReport) String() string {
	return fmt.Sprintf("%d pairs, %d with both components detectable, %d fully masked",
		r.Pairs, r.BothDetectable, r.PairUndetectable)
}

// MeasureMasking examines double-comparator faults for masking under
// the given detection mode, spreading the pairs over the shared
// worker pool (each pair needs up to three compiled-universe sweeps).
func MeasureMasking(w *network.Network, pairs []Fault, mode DetectMode) MaskingReport {
	golden := eval.Compile(w)
	type outcome struct{ both, masked bool }
	outcomes := make([]outcome, len(pairs))
	eval.ForEach(len(pairs), 0, func(i int) {
		d, ok := pairs[i].(DoubleComp)
		if !ok {
			return
		}
		if !NewDetector(w, golden, d.First, mode).Detectable() ||
			!NewDetector(w, golden, d.Second, mode).Detectable() {
			return
		}
		outcomes[i].both = true
		outcomes[i].masked = !NewDetector(w, golden, d, mode).Detectable()
	})
	rep := MaskingReport{Pairs: len(pairs)}
	for _, o := range outcomes {
		if o.both {
			rep.BothDetectable++
		}
		if o.masked {
			rep.PairUndetectable++
		}
	}
	return rep
}
