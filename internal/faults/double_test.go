package faults

import (
	"math/rand"
	"testing"

	"sortnets/internal/bitvec"
	"sortnets/internal/core"
	"sortnets/internal/gen"
	"sortnets/internal/network"
)

func TestDoubleCompMatchesSequentialSingleFaults(t *testing.T) {
	// When the two faulty comparators are far apart in the firing
	// order, applying DoubleComp must equal evaluating with both mode
	// overrides — cross-checked against a hand-rolled reference.
	w := gen.Sorter(5)
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 100; trial++ {
		i := rng.Intn(w.Size())
		j := rng.Intn(w.Size())
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		f := DoubleComp{
			First:  CompFault{Index: i, Mode: CompMode(rng.Intn(3))},
			Second: CompFault{Index: j, Mode: CompMode(rng.Intn(3))},
		}
		v := bitvec.New(5, rng.Uint64()&31)
		got := f.Eval(w, v)
		want := refDoubleEval(w, f, v)
		if got != want {
			t.Fatalf("double eval %s on %s: %s, want %s", f.Describe(), v, got, want)
		}
	}
}

// refDoubleEval is an independent scalar reference.
func refDoubleEval(w *network.Network, f DoubleComp, v bitvec.Vec) bitvec.Vec {
	vals := v.Ints()
	for i, c := range w.Comps {
		a, b := vals[c.A], vals[c.B]
		switch {
		case i == f.First.Index && f.First.Mode == Bypass,
			i == f.Second.Index && f.Second.Mode == Bypass:
			// no-op
		case i == f.First.Index && f.First.Mode == AlwaysSwap,
			i == f.Second.Index && f.Second.Mode == AlwaysSwap:
			vals[c.A], vals[c.B] = b, a
		case i == f.First.Index && f.First.Mode == Reverse,
			i == f.Second.Index && f.Second.Mode == Reverse:
			vals[c.A], vals[c.B] = max(a, b), min(a, b)
		default:
			vals[c.A], vals[c.B] = min(a, b), max(a, b)
		}
	}
	out, err := bitvec.FromBits(vals)
	if err != nil {
		panic(err)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestEnumerateDoubleCompCounts(t *testing.T) {
	w := gen.Sorter(4) // 5 comparators
	all := EnumerateDoubleComp(w, 0, nil)
	want := 9 * 5 * 4 / 2
	if len(all) != want {
		t.Fatalf("enumerated %d, want %d", len(all), want)
	}
	rng := rand.New(rand.NewSource(82))
	sampled := EnumerateDoubleComp(w, 10, rng)
	if len(sampled) != 10 {
		t.Fatalf("sampled %d, want 10", len(sampled))
	}
}

func TestDoubleBypassOfSameComparatorTwiceMasks(t *testing.T) {
	// A sorter with a comparator duplicated: bypassing BOTH copies is
	// the same as bypassing a (redundant) pair — construct a case
	// where two individually-detectable faults mask each other:
	// AlwaysSwap on [1,2] followed by AlwaysSwap on a second [1,2]
	// swaps twice = no-op.
	w := network.New(2).AddPair(0, 1).AddPair(0, 1)
	f1 := CompFault{Index: 0, Mode: AlwaysSwap}
	f2 := CompFault{Index: 1, Mode: AlwaysSwap}
	pair := DoubleComp{First: f1, Second: f2}
	if !Detectable(w, f1, ByGolden) || !Detectable(w, f2, ByGolden) {
		t.Skip("components unexpectedly undetectable; masking premise gone")
	}
	if Detectable(w, pair, ByGolden) {
		t.Error("double always-swap on the same pair should fully mask")
	}
	rep := MeasureMasking(w, []Fault{pair}, ByGolden)
	if rep.BothDetectable != 1 || rep.PairUndetectable != 1 {
		t.Errorf("masking report %+v", rep)
	}
}

func TestMeasureMaskingOnRealSorter(t *testing.T) {
	w := gen.Sorter(5)
	rng := rand.New(rand.NewSource(83))
	pairs := EnumerateDoubleComp(w, 120, rng)
	rep := MeasureMasking(w, pairs, ByProperty)
	if rep.Pairs != 120 {
		t.Fatalf("examined %d pairs", rep.Pairs)
	}
	if rep.PairUndetectable > rep.BothDetectable {
		t.Errorf("inconsistent report %+v", rep)
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}

func TestDoubleFaultCoverageWithMinimalTestSet(t *testing.T) {
	// Measure (not assert 100%): the minimal test set against sampled
	// double faults; the report must be internally consistent and
	// substantial.
	w := gen.Sorter(5)
	rng := rand.New(rand.NewSource(84))
	pairs := EnumerateDoubleComp(w, 150, rng)
	tests := func() bitvec.Iterator { return core.SorterBinaryTests(5) }
	rep := Measure(w, pairs, tests, ByProperty)
	if rep.Detected > rep.Detectable || rep.Detectable > rep.Faults {
		t.Errorf("inconsistent %+v", rep)
	}
	if rep.Coverage() < 0.5 {
		t.Errorf("suspiciously low double-fault coverage: %s", rep)
	}
}
