package faults

import (
	"context"
	"fmt"
	"math/bits"
	"slices"

	"sortnets/internal/bitset"
	"sortnets/internal/bitvec"
	"sortnets/internal/eval"
	"sortnets/internal/network"
	"sortnets/internal/search"
)

// Matrix is the full test × fault detection table for one circuit
// under one detection mode: Sigs[t] is the fault signature of test t —
// the set of fault indices that test exposes. It is built in ONE
// streamed engine pass per fault (no early exit, every verdict bit
// kept), with the faults spread over the shared worker pool, so
// test-set *selection* for stuck-at coverage runs on exactly the same
// compiled-program machinery as test-set verification.
type Matrix struct {
	Tests      []bitvec.Vec  // the materialized test stream, in order
	Faults     []Fault       // the injected fault universe
	Sigs       []*bitset.Set // per test: detected fault indices
	Detectable *bitset.Set   // faults some binary input could expose
	Mode       DetectMode
}

// DetectionMatrix injects every fault in fs into w and records, for
// each test in the stream, exactly which faults it detects. Faults no
// input at all can expose are excluded from signatures (they are
// functionally benign and would poison coverage denominators). Unlike
// Measure, the factory is consumed exactly once, up front — the
// collected vectors are replayed per fault — so it need not be safe
// for concurrent calls.
func DetectionMatrix(w *network.Network, fs []Fault, tests func() bitvec.Iterator, mode DetectMode) *Matrix {
	return DetectionMatrixWith(w, eval.Compile(w), fs, tests, mode)
}

// DetectionMatrixWith is DetectionMatrix with a caller-supplied
// compiled healthy program (see MeasureWith): the cache-aware entry
// point for callers that already hold w's program.
func DetectionMatrixWith(w *network.Network, golden *eval.Program, fs []Fault, tests func() bitvec.Iterator, mode DetectMode) *Matrix {
	m, _ := DetectionMatrixCtx(context.Background(), w, golden, fs, tests, mode)
	return m
}

// DetectionMatrixCtx is DetectionMatrixWith under a context: the
// per-fault sweeps check it per 64-lane block and a cancelled run
// returns the context's error with a nil matrix.
func DetectionMatrixCtx(ctx context.Context, w *network.Network, golden *eval.Program, fs []Fault, tests func() bitvec.Iterator, mode DetectMode) (*Matrix, error) {
	vecs := bitvec.Collect(tests())
	m := &Matrix{
		Tests:      vecs,
		Faults:     fs,
		Sigs:       make([]*bitset.Set, len(vecs)),
		Detectable: bitset.New(len(fs)),
		Mode:       mode,
	}
	for t := range m.Sigs {
		m.Sigs[t] = bitset.New(len(fs))
	}
	// One row (bitset over tests) per fault, built concurrently; the
	// row-to-column transpose into per-test signatures is sequential
	// and cheap.
	rows := make([]*bitset.Set, len(fs))
	err := eval.ForEachCtx(ctx, len(fs), 0, func(i int) {
		d := NewDetector(w, golden, fs[i], mode)
		detectable, err := d.DetectableCtx(ctx)
		if err != nil || !detectable {
			return
		}
		row := bitset.New(len(vecs))
		if _, err := eval.New(d.prog, 1).SweepCtx(ctx, bitvec.Slice(vecs), d.judge, func(off int, bad uint64) {
			for w := bad; w != 0; w &= w - 1 {
				row.Add(off + bits.TrailingZeros64(w))
			}
		}); err != nil {
			return
		}
		rows[i] = row
	})
	if err != nil {
		return nil, err
	}
	for f, row := range rows {
		if row == nil {
			continue
		}
		m.Detectable.Add(f)
		row.ForEach(func(t int) bool {
			m.Sigs[t].Add(f)
			return true
		})
	}
	return m, nil
}

// Detected returns the set of faults at least one test exposes.
func (m *Matrix) Detected() *bitset.Set {
	out := bitset.New(len(m.Faults))
	for _, sig := range m.Sigs {
		out.UnionWith(sig)
	}
	return out
}

// Report aggregates the matrix into the same shape Measure produces;
// the two must agree (asserted in the tests).
func (m *Matrix) Report() Report {
	return Report{
		Faults:     len(m.Faults),
		Detectable: m.Detectable.Count(),
		Detected:   m.Detected().Count(),
	}
}

// MinimalDetectingSet greedily selects a small subset of the tests
// that still detects every fault the full stream detects: repeatedly
// the test whose signature covers the most still-undetected faults,
// ties broken to the LOWEST test index (deterministic run-to-run).
// The returned indices (into Tests) are sorted ascending. The greedy
// bound is ln(faults)-optimal; exact minima for small instances can
// be had by handing the signatures to the search package's hitting-set
// solver.
func (m *Matrix) MinimalDetectingSet() []int {
	remaining := m.Detected()
	var picks []int
	for !remaining.Empty() {
		bestT, bestC := -1, 0
		for t, sig := range m.Sigs {
			if c := sig.CountAnd(remaining); c > bestC {
				bestT, bestC = t, c
			}
		}
		if bestT < 0 {
			panic("faults: detection matrix inconsistent with its own union")
		}
		picks = append(picks, bestT)
		remaining.DiffWith(m.Sigs[bestT])
	}
	// Greedy picks in coverage order; report in test-stream order.
	slices.Sort(picks)
	return picks
}

// ExactMinimalDetectingSet computes an exact minimum subset of the
// tests that still detects every fault the full stream detects, by
// handing the transposed matrix (per detected fault, the set of tests
// exposing it) to the search package's hitting-set branch and bound.
// nodeBudget caps the solve (≤ 0 = unlimited); if it is exhausted
// before the search closes, ExactMinimalDetectingSet returns
// (nil, false) and callers should fall back to the greedy
// MinimalDetectingSet. workers ≤ 0 means GOMAXPROCS; the minimum
// cardinality is worker-count-independent, but the identity of an
// equal-size witness is only deterministic with workers == 1.
// The returned indices (into Tests) are sorted ascending.
func (m *Matrix) ExactMinimalDetectingSet(nodeBudget, workers int) ([]int, bool) {
	picks, exact, _ := m.ExactMinimalDetectingSetCtx(context.Background(), nodeBudget, workers)
	return picks, exact
}

// ExactMinimalDetectingSetCtx is ExactMinimalDetectingSet under a
// context: the hitting-set branch and bound observes cancellation and
// a cancelled run returns the context's error.
func (m *Matrix) ExactMinimalDetectingSetCtx(ctx context.Context, nodeBudget, workers int) ([]int, bool, error) {
	detected := m.Detected()
	fams := make([]*bitset.Set, 0, detected.Count())
	detected.ForEach(func(f int) bool {
		exposing := bitset.New(len(m.Tests))
		for t, sig := range m.Sigs {
			if sig.Contains(f) {
				exposing.Add(t)
			}
		}
		fams = append(fams, exposing)
		return true
	})
	if len(fams) == 0 {
		return []int{}, true, nil
	}
	res, err := search.MinHittingSetBitsCtx(ctx, len(m.Tests), fams, nodeBudget, workers)
	if err != nil {
		return nil, false, err
	}
	if !res.Exact {
		return nil, false, nil
	}
	picks := make([]int, 0, res.Size)
	res.Elements.ForEach(func(t int) bool {
		picks = append(picks, t)
		return true
	})
	return picks, true, nil
}

// String renders a one-line summary.
func (m *Matrix) String() string {
	return fmt.Sprintf("%d tests × %d faults (%s): %d detectable, %d detected",
		len(m.Tests), len(m.Faults), m.Mode, m.Detectable.Count(), m.Detected().Count())
}
