// Package faults simulates hardware failures in comparator networks —
// the VLSI-testing application the paper cites as motivation ("we
// believe that our study will also be useful in testing VLSI circuits
// for possible hardware failures").
//
// The fault models:
//
//   - Bypass: a comparator never exchanges (open defect); the faulty
//     circuit is still a standard network, so the paper's test-set
//     guarantee applies: if the fault breaks sorting at all, the
//     minimal test set catches it.
//   - AlwaysSwap: a comparator exchanges unconditionally.
//   - Reverse: a comparator wired upside-down (max on top) — exactly
//     the "nonstandard" element the paper's model excludes, here
//     modelled as a defect.
//   - StuckLine: a line clamped to 0 or 1 throughout the circuit.
//   - Bridge: two adjacent lines shorted, wired-OR or wired-AND.
//
// Only Bypass keeps the circuit inside the standard-network model;
// the others create behaviours no comparator network exhibits, which
// is what makes measured fault coverage (experiment E12) informative
// rather than trivially 100%.
//
// Faulty circuits are not evaluated by a per-fault interpreter loop:
// each fault COMPILES, via Ops, to an eval.Program variant of the
// healthy circuit (a bypassed comparator is a no-op, a stuck line a
// clamp op, a bridge a short op), so fault simulation inherits the
// 64-lane word-parallel batch engine for free.
package faults

import (
	"fmt"

	"sortnets/internal/bitvec"
	"sortnets/internal/eval"
	"sortnets/internal/network"
)

// Fault is a hardware defect that can be superimposed on a network
// during evaluation.
type Fault interface {
	// Describe renders a short human-readable label.
	Describe() string
	// Ops compiles the faulty circuit to an eval op sequence.
	Ops(w *network.Network) []eval.Op
	// Eval runs the faulty circuit on a binary input. It compiles on
	// the fly; hot paths should compile once via faults.Compile.
	Eval(w *network.Network, v bitvec.Vec) bitvec.Vec
}

// Compile builds the compiled program of the faulty circuit. The
// program evaluates on all of eval's paths — scalar, 64-lane batch —
// exactly like a healthy network's program.
func Compile(w *network.Network, f Fault) *eval.Program {
	return eval.NewProgram(w.N, f.Ops(w))
}

// CompMode selects how a comparator misbehaves.
type CompMode int

// Comparator fault modes.
const (
	Bypass     CompMode = iota // comparator missing: values pass through
	AlwaysSwap                 // comparator exchanges unconditionally
	Reverse                    // comparator wired upside-down: max on top
)

func (m CompMode) String() string {
	switch m {
	case Bypass:
		return "bypass"
	case AlwaysSwap:
		return "always-swap"
	case Reverse:
		return "reverse"
	}
	return fmt.Sprintf("CompMode(%d)", int(m))
}

// opFor lowers one comparator fault mode to its opcode.
func opFor(m CompMode) eval.OpKind {
	switch m {
	case Bypass:
		return eval.OpNop
	case AlwaysSwap:
		return eval.OpSwap
	case Reverse:
		return eval.OpRevCmp
	}
	panic(fmt.Sprintf("faults: unknown comparator mode %d", int(m)))
}

// CompFault is a single faulty comparator, identified by its index in
// the network's firing order.
type CompFault struct {
	Index int
	Mode  CompMode
}

// Describe implements Fault.
func (f CompFault) Describe() string {
	return fmt.Sprintf("comparator %d %s", f.Index, f.Mode)
}

// Ops implements Fault: comparator Index fires in its fault mode, the
// rest are standard.
func (f CompFault) Ops(w *network.Network) []eval.Op {
	ops := make([]eval.Op, len(w.Comps))
	for i, c := range w.Comps {
		kind := eval.OpCmp
		if i == f.Index {
			kind = opFor(f.Mode)
		}
		ops[i] = eval.Op{Kind: kind, A: c.A, B: c.B}
	}
	return ops
}

// Eval implements Fault.
func (f CompFault) Eval(w *network.Network, v bitvec.Vec) bitvec.Vec {
	return Compile(w, f).Apply(v)
}

// StuckLine clamps a line to a constant value for the whole circuit.
type StuckLine struct {
	Line  int
	Value int // 0 or 1
}

// Describe implements Fault.
func (f StuckLine) Describe() string {
	return fmt.Sprintf("line %d stuck-at-%d", f.Line+1, f.Value)
}

// Ops implements Fault: the clamp is enforced at the input and after
// every comparator touching the line (a defective wire segment along
// the entire line).
func (f StuckLine) Ops(w *network.Network) []eval.Op {
	clamp := eval.Op{Kind: eval.OpClamp0, A: f.Line}
	if f.Value == 1 {
		clamp.Kind = eval.OpClamp1
	}
	ops := []eval.Op{clamp}
	for _, c := range w.Comps {
		ops = append(ops, eval.Op{Kind: eval.OpCmp, A: c.A, B: c.B})
		if c.A == f.Line || c.B == f.Line {
			ops = append(ops, clamp)
		}
	}
	return ops
}

// Eval implements Fault.
func (f StuckLine) Eval(w *network.Network, v bitvec.Vec) bitvec.Vec {
	return Compile(w, f).Apply(v)
}

// BridgeMode selects the logic function of shorted lines.
type BridgeMode int

// Bridge fault modes: shorted lines both read as the OR (wired-OR) or
// the AND (wired-AND) of the two signals.
const (
	WiredOR BridgeMode = iota
	WiredAND
)

func (m BridgeMode) String() string {
	if m == WiredOR {
		return "wired-OR"
	}
	return "wired-AND"
}

// Bridge shorts two lines together for the whole circuit.
type Bridge struct {
	A, B int
	Mode BridgeMode
}

// Describe implements Fault.
func (f Bridge) Describe() string {
	return fmt.Sprintf("bridge %d~%d %s", f.A+1, f.B+1, f.Mode)
}

// Ops implements Fault: the short is enforced at the input and after
// every comparator touching either line.
func (f Bridge) Ops(w *network.Network) []eval.Op {
	short := eval.Op{Kind: eval.OpShortOR, A: f.A, B: f.B}
	if f.Mode == WiredAND {
		short.Kind = eval.OpShortAND
	}
	ops := []eval.Op{short}
	for _, c := range w.Comps {
		ops = append(ops, eval.Op{Kind: eval.OpCmp, A: c.A, B: c.B})
		if c.A == f.A || c.A == f.B || c.B == f.A || c.B == f.B {
			ops = append(ops, short)
		}
	}
	return ops
}

// Eval implements Fault.
func (f Bridge) Eval(w *network.Network, v bitvec.Vec) bitvec.Vec {
	return Compile(w, f).Apply(v)
}

// Enumerate lists the standard single-fault universe for a network:
// three modes per comparator, two stuck values per line, and two bridge
// modes per adjacent line pair.
func Enumerate(w *network.Network) []Fault {
	var out []Fault
	for i := range w.Comps {
		out = append(out, CompFault{Index: i, Mode: Bypass},
			CompFault{Index: i, Mode: AlwaysSwap},
			CompFault{Index: i, Mode: Reverse})
	}
	for l := 0; l < w.N; l++ {
		out = append(out, StuckLine{Line: l, Value: 0}, StuckLine{Line: l, Value: 1})
	}
	for l := 0; l+1 < w.N; l++ {
		out = append(out, Bridge{A: l, B: l + 1, Mode: WiredOR},
			Bridge{A: l, B: l + 1, Mode: WiredAND})
	}
	return out
}
