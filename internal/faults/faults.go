// Package faults simulates hardware failures in comparator networks —
// the VLSI-testing application the paper cites as motivation ("we
// believe that our study will also be useful in testing VLSI circuits
// for possible hardware failures").
//
// The fault models:
//
//   - Bypass: a comparator never exchanges (open defect); the faulty
//     circuit is still a standard network, so the paper's test-set
//     guarantee applies: if the fault breaks sorting at all, the
//     minimal test set catches it.
//   - AlwaysSwap: a comparator exchanges unconditionally.
//   - Reverse: a comparator wired upside-down (max on top) — exactly
//     the "nonstandard" element the paper's model excludes, here
//     modelled as a defect.
//   - StuckLine: a line clamped to 0 or 1 throughout the circuit.
//   - Bridge: two adjacent lines shorted, wired-OR or wired-AND.
//
// Only Bypass keeps the circuit inside the standard-network model;
// the others create behaviours no comparator network exhibits, which
// is what makes measured fault coverage (experiment E12) informative
// rather than trivially 100%.
package faults

import (
	"fmt"

	"sortnets/internal/bitvec"
	"sortnets/internal/network"
)

// Fault is a hardware defect that can be superimposed on a network
// during evaluation.
type Fault interface {
	// Describe renders a short human-readable label.
	Describe() string
	// Eval runs the faulty circuit on a binary input.
	Eval(w *network.Network, v bitvec.Vec) bitvec.Vec
}

// CompMode selects how a comparator misbehaves.
type CompMode int

// Comparator fault modes.
const (
	Bypass     CompMode = iota // comparator missing: values pass through
	AlwaysSwap                 // comparator exchanges unconditionally
	Reverse                    // comparator wired upside-down: max on top
)

func (m CompMode) String() string {
	switch m {
	case Bypass:
		return "bypass"
	case AlwaysSwap:
		return "always-swap"
	case Reverse:
		return "reverse"
	}
	return fmt.Sprintf("CompMode(%d)", int(m))
}

// CompFault is a single faulty comparator, identified by its index in
// the network's firing order.
type CompFault struct {
	Index int
	Mode  CompMode
}

// Describe implements Fault.
func (f CompFault) Describe() string {
	return fmt.Sprintf("comparator %d %s", f.Index, f.Mode)
}

// Eval implements Fault.
func (f CompFault) Eval(w *network.Network, v bitvec.Vec) bitvec.Vec {
	bits := v.Bits
	for i, c := range w.Comps {
		a := bits >> uint(c.A) & 1
		b := bits >> uint(c.B) & 1
		var na, nb uint64
		switch {
		case i == f.Index && f.Mode == Bypass:
			na, nb = a, b
		case i == f.Index && f.Mode == AlwaysSwap:
			na, nb = b, a
		case i == f.Index && f.Mode == Reverse:
			na, nb = a|b, a&b
		default:
			na, nb = a&b, a|b
		}
		bits = bits&^(1<<uint(c.A)|1<<uint(c.B)) | na<<uint(c.A) | nb<<uint(c.B)
	}
	return bitvec.New(v.N, bits)
}

// StuckLine clamps a line to a constant value for the whole circuit.
type StuckLine struct {
	Line  int
	Value int // 0 or 1
}

// Describe implements Fault.
func (f StuckLine) Describe() string {
	return fmt.Sprintf("line %d stuck-at-%d", f.Line+1, f.Value)
}

// Eval implements Fault: the clamp is enforced at the input and after
// every comparator touching the line (a defective wire segment along
// the entire line).
func (f StuckLine) Eval(w *network.Network, v bitvec.Vec) bitvec.Vec {
	clamp := func(bits uint64) uint64 {
		if f.Value == 1 {
			return bits | 1<<uint(f.Line)
		}
		return bits &^ (1 << uint(f.Line))
	}
	bits := clamp(v.Bits)
	for _, c := range w.Comps {
		m := (bits >> uint(c.A)) &^ (bits >> uint(c.B)) & 1
		bits ^= m<<uint(c.A) | m<<uint(c.B)
		if c.A == f.Line || c.B == f.Line {
			bits = clamp(bits)
		}
	}
	return bitvec.New(v.N, bits)
}

// BridgeMode selects the logic function of shorted lines.
type BridgeMode int

// Bridge fault modes: shorted lines both read as the OR (wired-OR) or
// the AND (wired-AND) of the two signals.
const (
	WiredOR BridgeMode = iota
	WiredAND
)

func (m BridgeMode) String() string {
	if m == WiredOR {
		return "wired-OR"
	}
	return "wired-AND"
}

// Bridge shorts two lines together for the whole circuit.
type Bridge struct {
	A, B int
	Mode BridgeMode
}

// Describe implements Fault.
func (f Bridge) Describe() string {
	return fmt.Sprintf("bridge %d~%d %s", f.A+1, f.B+1, f.Mode)
}

// Eval implements Fault: the short is enforced at the input and after
// every comparator touching either line.
func (f Bridge) Eval(w *network.Network, v bitvec.Vec) bitvec.Vec {
	short := func(bits uint64) uint64 {
		a := bits >> uint(f.A) & 1
		b := bits >> uint(f.B) & 1
		var s uint64
		if f.Mode == WiredOR {
			s = a | b
		} else {
			s = a & b
		}
		return bits&^(1<<uint(f.A)|1<<uint(f.B)) | s<<uint(f.A) | s<<uint(f.B)
	}
	bits := short(v.Bits)
	for _, c := range w.Comps {
		m := (bits >> uint(c.A)) &^ (bits >> uint(c.B)) & 1
		bits ^= m<<uint(c.A) | m<<uint(c.B)
		if c.A == f.A || c.A == f.B || c.B == f.A || c.B == f.B {
			bits = short(bits)
		}
	}
	return bitvec.New(v.N, bits)
}

// Enumerate lists the standard single-fault universe for a network:
// three modes per comparator, two stuck values per line, and two bridge
// modes per adjacent line pair.
func Enumerate(w *network.Network) []Fault {
	var out []Fault
	for i := range w.Comps {
		out = append(out, CompFault{Index: i, Mode: Bypass},
			CompFault{Index: i, Mode: AlwaysSwap},
			CompFault{Index: i, Mode: Reverse})
	}
	for l := 0; l < w.N; l++ {
		out = append(out, StuckLine{Line: l, Value: 0}, StuckLine{Line: l, Value: 1})
	}
	for l := 0; l+1 < w.N; l++ {
		out = append(out, Bridge{A: l, B: l + 1, Mode: WiredOR},
			Bridge{A: l, B: l + 1, Mode: WiredAND})
	}
	return out
}
