package faults

import (
	"testing"

	"sortnets/internal/bitvec"
	"sortnets/internal/core"
	"sortnets/internal/gen"
)

func sorterMatrix(t *testing.T, n int, mode DetectMode) *Matrix {
	t.Helper()
	w := gen.Sorter(n)
	return DetectionMatrix(w, Enumerate(w),
		func() bitvec.Iterator { return core.SorterBinaryTests(n) }, mode)
}

// TestDetectionMatrixAgreesWithMeasure: the matrix's aggregate report
// must match the early-exit Measure sweep fault for fault.
func TestDetectionMatrixAgreesWithMeasure(t *testing.T) {
	for _, mode := range []DetectMode{ByProperty, ByGolden} {
		w := gen.Sorter(5)
		fs := Enumerate(w)
		tests := func() bitvec.Iterator { return core.SorterBinaryTests(5) }
		m := DetectionMatrix(w, fs, tests, mode)
		rep := Measure(w, fs, tests, mode)
		if got := m.Report(); got != rep {
			t.Errorf("%s: matrix report %+v, Measure %+v", mode, got, rep)
		}
	}
}

// TestDetectionMatrixCellsMatchDetectors spot-checks individual cells
// against the one-shot Detects path.
func TestDetectionMatrixCellsMatchDetectors(t *testing.T) {
	w := gen.Sorter(4)
	fs := Enumerate(w)
	m := DetectionMatrix(w, fs, func() bitvec.Iterator { return core.SorterBinaryTests(4) }, ByProperty)
	for ti, tau := range m.Tests {
		for fi, f := range fs {
			want := m.Detectable.Contains(fi) && Detects(w, f, tau, ByProperty)
			if got := m.Sigs[ti].Contains(fi); got != want {
				t.Fatalf("cell (test %s, fault %s): matrix %v, detector %v",
					tau, f.Describe(), got, want)
			}
		}
	}
}

// TestMinimalDetectingSet: the greedy selection must still detect
// every detected fault, be no larger than the full stream, and be
// deterministic run-to-run.
func TestMinimalDetectingSet(t *testing.T) {
	m := sorterMatrix(t, 5, ByProperty)
	picks := m.MinimalDetectingSet()
	if len(picks) == 0 || len(picks) > len(m.Tests) {
		t.Fatalf("implausible selection size %d", len(picks))
	}
	covered := m.Detected()
	for _, ti := range picks {
		covered.DiffWith(m.Sigs[ti])
	}
	if !covered.Empty() {
		t.Errorf("selection misses faults %s", covered)
	}
	again := sorterMatrix(t, 5, ByProperty).MinimalDetectingSet()
	if len(again) != len(picks) {
		t.Fatalf("nondeterministic selection size: %d vs %d", len(picks), len(again))
	}
	for i := range picks {
		if picks[i] != again[i] {
			t.Fatalf("nondeterministic selection: %v vs %v", picks, again)
		}
	}
	// Ascending order contract.
	for i := 1; i < len(picks); i++ {
		if picks[i-1] >= picks[i] {
			t.Fatalf("selection not ascending: %v", picks)
		}
	}
}

// TestMatrixString covers the summary formatting.
func TestMatrixString(t *testing.T) {
	if sorterMatrix(t, 4, ByGolden).String() == "" {
		t.Error("empty string")
	}
}
