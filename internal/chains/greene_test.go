package chains

import (
	"math/rand"
	"testing"

	"sortnets/internal/bitvec"
	"sortnets/internal/comb"
)

func TestChainOfContainsItsString(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(14)
		v := bitvec.New(n, rng.Uint64()&(uint64(1)<<uint(n)-1))
		c := ChainOf(v)
		if err := c.Validate(); err != nil {
			t.Fatalf("chain of %s: %v", v, err)
		}
		found := false
		for _, u := range c {
			if u == v {
				found = true
			}
		}
		if !found {
			t.Fatalf("chain of %s does not contain it: %v", v, c)
		}
		if !c.IsSymmetric() {
			t.Fatalf("chain of %s spans %d..%d", v, c.Bottom().Ones(), c.Top().Ones())
		}
	}
}

func TestChainOfConsistentAcrossMembers(t *testing.T) {
	// Every member of a chain must map back to the same chain — the
	// grouping that makes DecomposeGK a partition.
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		v := bitvec.New(n, rng.Uint64()&(uint64(1)<<uint(n)-1))
		c := ChainOf(v)
		for _, u := range c {
			c2 := ChainOf(u)
			if len(c2) != len(c) {
				t.Fatalf("member %s of chain(%s) has different chain length", u, v)
			}
			for i := range c {
				if c[i] != c2[i] {
					t.Fatalf("member %s of chain(%s) yields a different chain", u, v)
				}
			}
		}
	}
}

func TestDecomposeGKIsValidSCD(t *testing.T) {
	for n := 0; n <= 13; n++ {
		chains := DecomposeGK(n)
		if want := int(comb.MustBinomial(n, n/2)); len(chains) != want {
			t.Errorf("n=%d: %d chains, want %d", n, len(chains), want)
		}
		seen := map[uint64]bool{}
		total := 0
		for _, c := range chains {
			if err := c.Validate(); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if !c.IsSymmetric() {
				t.Fatalf("n=%d: asymmetric chain", n)
			}
			for _, v := range c {
				if seen[v.Bits] {
					t.Fatalf("n=%d: %s in two chains", n, v)
				}
				seen[v.Bits] = true
				total++
			}
		}
		if total != bitvec.Universe(n) {
			t.Errorf("n=%d: covered %d of 2^n", n, total)
		}
	}
}

func TestDecomposeGKContainsSortedChain(t *testing.T) {
	for n := 1; n <= 12; n++ {
		found := 0
		for _, c := range DecomposeGK(n) {
			if IsSortedChain(c) {
				found++
				if len(c) != n+1 {
					t.Errorf("n=%d: sorted chain truncated (%d elements)", n, len(c))
				}
			}
		}
		if found != 1 {
			t.Errorf("n=%d: %d sorted chains", n, found)
		}
	}
}

func TestGKAndRecursiveAgreeOnInvariants(t *testing.T) {
	// The two constructions differ chain-by-chain but must agree on
	// every aggregate the theory fixes: chain count, level-span
	// multiset, and start-level counts (which drive the selector
	// family sizes).
	for n := 1; n <= 12; n++ {
		rec := Decompose(n)
		gk := DecomposeGK(n)
		if len(rec) != len(gk) {
			t.Fatalf("n=%d: %d vs %d chains", n, len(rec), len(gk))
		}
		recStarts := map[int]int{}
		gkStarts := map[int]int{}
		for _, c := range rec {
			recStarts[c.Bottom().Ones()]++
		}
		for _, c := range gk {
			gkStarts[c.Bottom().Ones()]++
		}
		for lvl, cnt := range recStarts {
			if gkStarts[lvl] != cnt {
				t.Errorf("n=%d: start level %d: recursive %d vs GK %d", n, lvl, cnt, gkStarts[lvl])
			}
		}
	}
}

func TestGKPermutationTestSetAlsoWorks(t *testing.T) {
	// Swapping the SCD backend must still produce a valid optimal
	// sorter test set: drop the sorted chain, extend, convert, check
	// coverage.
	for n := 2; n <= 10; n++ {
		var count int
		covered := map[bitvec.Vec]bool{}
		for _, c := range DecomposeGK(n) {
			if IsSortedChain(c) {
				continue
			}
			p, err := ToPermutation(ExtendMaximal(c))
			if err != nil {
				t.Fatal(err)
			}
			count++
			for _, v := range p.Cover() {
				covered[v] = true
			}
		}
		if want := int(comb.MustBinomial(n, n/2)) - 1; count != want {
			t.Fatalf("n=%d: %d permutations, want %d", n, count, want)
		}
		it := bitvec.NotSorted(bitvec.All(n))
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			if !covered[v] {
				t.Fatalf("n=%d: %s uncovered by GK-based test set", n, v)
			}
		}
	}
}

func TestUnmatchedPositionsExamples(t *testing.T) {
	cases := map[string][]int{
		"0011": {0, 1, 2, 3}, // ))(( : nothing matches
		"1100": {},           // (()) : fully matched
		"10":   {},           // ()   : matched
		"01":   {0, 1},       // )(   : both unmatched
		"1010": {},           // ()() : matched
		"0110": {0, 1},       // )((): leading 0 and the 1 at position 1 stay unmatched
	}
	for s, want := range cases {
		got := unmatchedPositions(bitvec.MustFromString(s))
		if len(got) != len(want) {
			t.Errorf("%s: unmatched %v, want %v", s, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: unmatched %v, want %v", s, got, want)
			}
		}
	}
}
