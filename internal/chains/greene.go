package chains

import (
	"sort"

	"sortnets/internal/bitvec"
)

// An independent, non-recursive symmetric chain decomposition: the
// Greene–Kleitman bracketing. Reading a string with 1 as "(" and 0 as
// ")", matched pairs stay fixed along a chain while the unmatched
// positions (which always read 0…0 1…1 left to right) sweep through
// 0^j 1^(u−j). Two properties matter here:
//
//   - it yields a valid SCD (verified against Decompose in the tests:
//     same chain count, same level spans, both partition the cube);
//   - the all-sorted strings 0^a 1^b have NO matched pairs, so they
//     form one full chain, exactly like the recursive construction —
//     the chain every optimal test set drops.
//
// The two decompositions generally differ chain-by-chain; having both
// machine-checked guards each against construction bugs in the other.

// ChainOf returns the Greene–Kleitman chain through σ, bottom-up,
// without constructing the whole decomposition: O(n) after the
// bracket matching.
func ChainOf(v bitvec.Vec) Chain {
	unmatched := unmatchedPositions(v)
	// The chain fixes matched positions and sweeps the unmatched ones
	// through 0^j 1^(u−j), j = u..0 (bottom has all unmatched = 0).
	base := v
	for _, p := range unmatched {
		base = base.SetBit(p, 0)
	}
	chain := make(Chain, 0, len(unmatched)+1)
	cur := base
	chain = append(chain, cur)
	// Raise by setting unmatched positions to 1 from the right.
	for i := len(unmatched) - 1; i >= 0; i-- {
		cur = cur.SetBit(unmatched[i], 1)
		chain = append(chain, cur)
	}
	return chain
}

// unmatchedPositions returns, in increasing order, the positions left
// unmatched by the bracket matching (1 opens, 0 closes).
func unmatchedPositions(v bitvec.Vec) []int {
	var stack []int // open positions (1s) awaiting a 0
	matched := make([]bool, v.N)
	for i := 0; i < v.N; i++ {
		if v.Bit(i) == 1 {
			stack = append(stack, i)
		} else if len(stack) > 0 {
			matched[stack[len(stack)-1]] = true
			matched[i] = true
			stack = stack[:len(stack)-1]
		}
	}
	var out []int
	for i := 0; i < v.N; i++ {
		if !matched[i] {
			out = append(out, i)
		}
	}
	return out
}

// DecomposeGK returns the Greene–Kleitman symmetric chain
// decomposition of {0,1}^n, grouping strings by the bottom of their
// bracket chain. Chains are ordered by their bottom element's word
// value for determinism; the all-sorted chain is always present.
func DecomposeGK(n int) []Chain {
	byBottom := map[uint64]Chain{}
	it := bitvec.All(n)
	for {
		v, ok := it.Next()
		if !ok {
			break
		}
		c := ChainOf(v)
		bottom := c.Bottom().Bits
		if _, done := byBottom[bottom]; !done {
			byBottom[bottom] = c
		}
	}
	bottoms := make([]uint64, 0, len(byBottom))
	for b := range byBottom {
		bottoms = append(bottoms, b)
	}
	sort.Slice(bottoms, func(i, j int) bool { return bottoms[i] < bottoms[j] })
	out := make([]Chain, 0, len(bottoms))
	for _, b := range bottoms {
		out = append(out, byBottom[b])
	}
	return out
}
