// Package chains builds symmetric chain decompositions (SCD) of the
// Boolean lattice {0,1}^n and converts chains into permutations whose
// covers realize them. This is the machinery behind the *optimal
// permutation test sets* of Theorems 2.2(ii) and 2.4(ii):
//
//   - The cover of a permutation (package perm) is a maximal chain
//     ∅ = A₀ ⊂ A₁ ⊂ … ⊂ Aₙ of 1-position sets, one per weight.
//   - A family of permutations is a sorter test set iff its covers
//     blanket every non-sorted string; by Dilworth the middle level
//     forces at least C(n,⌊n/2⌋) chains, and an SCD achieves it.
//   - The classical de Bruijn–Tengbergen–Kruyswijk recursion (with the
//     new line prepended at the top) keeps the all-sorted chain
//     0ⁿ ⊂ 0ⁿ⁻¹1 ⊂ … ⊂ 1ⁿ intact as one chain of the decomposition;
//     dropping it — its strings are all sorted and never needed as
//     tests — leaves exactly C(n,⌊n/2⌋) − 1 chains, matching the
//     paper's bound, which Yao's observation states is achievable and
//     Knuth's exercise 6.5.1-1 constructs.
//   - For the (k,n)-selector, only the chains starting at level ≤ k are
//     needed; their count telescopes to C(n, min(k,⌊n/2⌋)), realizing
//     Knuth's B(n,k) family from the same decomposition.
package chains

import (
	"fmt"
	"math/bits"

	"sortnets/internal/bitvec"
	"sortnets/internal/perm"
)

// Chain is an ascending chain of vectors: consecutive elements differ
// by turning exactly one 0 into a 1, so weights are consecutive.
type Chain []bitvec.Vec

// Bottom returns the lowest (smallest-weight) element.
func (c Chain) Bottom() bitvec.Vec { return c[0] }

// Top returns the highest element.
func (c Chain) Top() bitvec.Vec { return c[len(c)-1] }

// Validate checks the chain invariant: each step adds exactly one 1.
func (c Chain) Validate() error {
	for i := 1; i < len(c); i++ {
		if c[i].N != c[i-1].N {
			return fmt.Errorf("chains: length mismatch at step %d", i)
		}
		if !bitvec.Leq(c[i-1], c[i]) || c[i].Ones() != c[i-1].Ones()+1 {
			return fmt.Errorf("chains: %s -> %s is not a single-element step", c[i-1], c[i])
		}
	}
	return nil
}

// IsSymmetric reports whether the chain spans levels [i, n−i].
func (c Chain) IsSymmetric() bool {
	n := c[0].N
	return c.Bottom().Ones()+c.Top().Ones() == n
}

// Decompose returns a symmetric chain decomposition of {0,1}^n: the
// chains partition all 2^n vectors, each spans levels [i, n−i], and
// there are exactly C(n,⌊n/2⌋) of them. The first chain returned is
// always the all-sorted chain 0ⁿ ⊂ 0ⁿ⁻¹1 ⊂ … ⊂ 1ⁿ.
//
// Recursion (dBTK, prepending the new top line): every chain
// c_lo ⊂ … ⊂ c_hi over n−1 lines spawns
//
//	0c_lo ⊂ … ⊂ 0c_hi ⊂ 1c_hi   and   1c_lo ⊂ … ⊂ 1c_hi₋₁,
//
// the second dropped when the parent was a singleton. Prepending at
// the top (line 1) rather than appending keeps 0^a1^b strings together,
// so the sorted chain survives each level of the recursion.
func Decompose(n int) []Chain {
	if n < 0 {
		panic(fmt.Sprintf("chains: negative n %d", n))
	}
	if n == 0 {
		return []Chain{{bitvec.AllZeros(0)}}
	}
	prev := Decompose(n - 1)
	out := make([]Chain, 0, len(prev)*2)
	for _, c := range prev {
		// prepend0(x) keeps bits in place (new line 0 carries 0);
		// prepend1(x) sets bit 0 and shifts the rest up one line.
		long := make(Chain, 0, len(c)+1)
		for _, v := range c {
			long = append(long, prepend(v, 0))
		}
		long = append(long, prepend(c.Top(), 1))
		out = append(out, long)
		if len(c) > 1 {
			short := make(Chain, 0, len(c)-1)
			for _, v := range c[:len(c)-1] {
				short = append(short, prepend(v, 1))
			}
			out = append(out, short)
		}
	}
	return out
}

// prepend returns the vector with bit b inserted at line 0 (the top),
// shifting the existing lines down by one.
func prepend(v bitvec.Vec, b int) bitvec.Vec {
	w := v.Bits << 1
	if b == 1 {
		w |= 1
	}
	return bitvec.New(v.N+1, w)
}

// ExtendMaximal extends a symmetric chain to a maximal chain from 0ⁿ to
// 1ⁿ: below the bottom, ones are removed lowest-line-first; above the
// top, zeros are filled lowest-line-first. The particular extension is
// irrelevant to the covering argument — extensions only ever add
// already-covered levels — but it is deterministic for reproducibility.
func ExtendMaximal(c Chain) Chain {
	n := c[0].N
	var down Chain
	for v := c.Bottom(); v.Ones() > 0; {
		low := bits.TrailingZeros64(v.Bits)
		v = v.SetBit(low, 0)
		down = append(down, v)
	}
	// down was collected top-down; reverse onto the front.
	full := make(Chain, 0, n+1)
	for i := len(down) - 1; i >= 0; i-- {
		full = append(full, down[i])
	}
	full = append(full, c...)
	for v := c.Top(); v.Ones() < n; {
		low := bits.TrailingZeros64(^v.Bits & lowMask(n))
		v = v.SetBit(low, 1)
		full = append(full, v)
	}
	return full
}

func lowMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(n) - 1
}

// ToPermutation converts a maximal chain A₀ ⊂ … ⊂ Aₙ into the unique
// permutation whose cover is exactly that chain: if line e is the
// element added at step t (A_t \ A_{t−1}), it must hold the t-th
// largest value, so π(e) = n+1−t.
func ToPermutation(c Chain) (perm.P, error) {
	n := c[0].N
	if len(c) != n+1 || c.Bottom().Ones() != 0 || c.Top().Ones() != n {
		return nil, fmt.Errorf("chains: ToPermutation needs a maximal chain, got levels %d..%d of n=%d",
			c.Bottom().Ones(), c.Top().Ones(), n)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	p := make(perm.P, n)
	for t := 1; t <= n; t++ {
		added := c[t].Bits &^ c[t-1].Bits
		e := bits.TrailingZeros64(added)
		p[e] = n + 1 - t
	}
	return p, nil
}

// SortedChain returns the all-sorted maximal chain 0ⁿ ⊂ … ⊂ 1ⁿ, whose
// permutation is the identity — the chain every optimal test set drops.
func SortedChain(n int) Chain {
	c := make(Chain, 0, n+1)
	for k := 0; k <= n; k++ {
		c = append(c, bitvec.SortedWithOnes(n, k))
	}
	return c
}

// IsSortedChain reports whether every element of the chain is sorted.
func IsSortedChain(c Chain) bool {
	for _, v := range c {
		if !v.IsSorted() {
			return false
		}
	}
	return true
}

// SorterPermutations returns the optimal permutation test set for the
// sorting property: C(n,⌊n/2⌋) − 1 permutations whose covers include
// every non-sorted binary string (Theorem 2.2(ii)). It is the SCD with
// the sorted chain removed, each remaining chain extended to maximal
// and converted to its permutation.
func SorterPermutations(n int) []perm.P {
	return chainFamilyPerms(n, n)
}

// SelectorPermutations returns the optimal permutation test set for the
// (k,n)-selector property: C(n, min(k,⌊n/2⌋)) − 1 permutations whose
// covers include every non-sorted string with at most k zeros
// (Theorem 2.4(ii)). Only chains starting at level ≤ k participate: a
// string with z ≤ k zeros sits at level n−z, and its SCD chain spans
// [i, n−i] with i ≤ z ≤ k.
func SelectorPermutations(n, k int) []perm.P {
	return chainFamilyPerms(n, k)
}

func chainFamilyPerms(n, k int) []perm.P {
	var out []perm.P
	for _, c := range Decompose(n) {
		if c.Bottom().Ones() > k {
			continue
		}
		if IsSortedChain(c) {
			continue // the identity permutation: covers only sorted strings
		}
		p, err := ToPermutation(ExtendMaximal(c))
		if err != nil {
			panic(err) // SCD chains always extend to maximal chains
		}
		out = append(out, p)
	}
	return out
}

// MergerPermutations returns the paper's n/2 merger test permutations
// τ_i = (1 2 … i, i+1+n/2 … n, i+1 … i+n/2) for i = 0..n/2−1
// (Theorem 2.5(ii)): lines 1..i carry 1..i, the rest of the top half
// carries the n/2−i largest values in order, and the bottom half
// carries the middle values in order. The cover of τ_i contains
// 0^i 1^(n/2−i) 0^k 1^(n/2−k) for every k.
func MergerPermutations(n int) []perm.P {
	if n%2 != 0 {
		panic(fmt.Sprintf("chains: merger permutations need even n, got %d", n))
	}
	h := n / 2
	out := make([]perm.P, 0, h)
	for i := 0; i < h; i++ {
		p := make(perm.P, n)
		for j := 0; j < i; j++ {
			p[j] = j + 1
		}
		for j := i; j < h; j++ {
			p[j] = j + 1 + h
		}
		for j := 0; j < h; j++ {
			p[h+j] = i + 1 + j
		}
		out = append(out, p)
	}
	return out
}
