package chains

import (
	"testing"

	"sortnets/internal/bitvec"
	"sortnets/internal/comb"
	"sortnets/internal/perm"
)

func TestDecomposePartitionsLattice(t *testing.T) {
	for n := 0; n <= 14; n++ {
		seen := make(map[uint64]bool)
		total := 0
		for _, c := range Decompose(n) {
			if err := c.Validate(); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			for _, v := range c {
				if v.N != n {
					t.Fatalf("n=%d: vector of length %d", n, v.N)
				}
				if seen[v.Bits] {
					t.Fatalf("n=%d: %s in two chains", n, v)
				}
				seen[v.Bits] = true
				total++
			}
		}
		if total != bitvec.Universe(n) {
			t.Errorf("n=%d: chains hold %d vectors, want 2^n=%d", n, total, bitvec.Universe(n))
		}
	}
}

func TestDecomposeIsSymmetric(t *testing.T) {
	for n := 0; n <= 12; n++ {
		for _, c := range Decompose(n) {
			if !c.IsSymmetric() {
				t.Errorf("n=%d: chain %v spans levels %d..%d, not symmetric",
					n, c, c.Bottom().Ones(), c.Top().Ones())
			}
		}
	}
}

func TestDecomposeChainCount(t *testing.T) {
	// Exactly C(n,⌊n/2⌋) chains — Dilworth's bound, achieved.
	for n := 0; n <= 16; n++ {
		got := len(Decompose(n))
		want := int(comb.MustBinomial(n, n/2))
		if got != want {
			t.Errorf("n=%d: %d chains, want C(n,⌊n/2⌋)=%d", n, got, want)
		}
	}
}

func TestDecomposeContainsSortedChain(t *testing.T) {
	for n := 1; n <= 12; n++ {
		found := 0
		for _, c := range Decompose(n) {
			if IsSortedChain(c) {
				found++
				if len(c) != n+1 {
					t.Errorf("n=%d: sorted chain has %d elements, want full n+1", n, len(c))
				}
			}
		}
		if found != 1 {
			t.Errorf("n=%d: %d all-sorted chains, want exactly 1", n, found)
		}
	}
}

func TestChainStartLevelCounts(t *testing.T) {
	// Chains starting at level i number C(n,i) − C(n,i−1); cumulative
	// counts telescope to C(n,k) — the selector family size.
	for n := 1; n <= 12; n++ {
		starts := map[int]int{}
		for _, c := range Decompose(n) {
			starts[c.Bottom().Ones()]++
		}
		cum := 0
		for k := 0; k <= n/2; k++ {
			cum += starts[k]
			if want := int(comb.MustBinomial(n, k)); cum != want {
				t.Errorf("n=%d: chains with start ≤ %d = %d, want C(n,k)=%d", n, k, cum, want)
			}
		}
	}
}

func TestExtendMaximal(t *testing.T) {
	for n := 1; n <= 10; n++ {
		for _, c := range Decompose(n) {
			m := ExtendMaximal(c)
			if len(m) != n+1 {
				t.Fatalf("n=%d: extension has %d elements", n, len(m))
			}
			if err := m.Validate(); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if m.Bottom().Ones() != 0 || m.Top().Ones() != n {
				t.Fatalf("n=%d: extension spans %d..%d", n, m.Bottom().Ones(), m.Top().Ones())
			}
			// The original chain is a contiguous segment of the extension.
			off := c.Bottom().Ones()
			for i, v := range c {
				if m[off+i] != v {
					t.Fatalf("n=%d: extension lost element %s", n, v)
				}
			}
		}
	}
}

func TestToPermutationCoverIsChain(t *testing.T) {
	for n := 1; n <= 10; n++ {
		for _, c := range Decompose(n) {
			m := ExtendMaximal(c)
			p, err := ToPermutation(m)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("n=%d: invalid permutation %s: %v", n, p, err)
			}
			cover := p.Cover()
			for i, v := range m {
				if cover[i] != v {
					t.Fatalf("n=%d: cover of %s diverges from chain at level %d: %s vs %s",
						n, p, i, cover[i], v)
				}
			}
		}
	}
}

func TestToPermutationRejectsPartialChain(t *testing.T) {
	c := Chain{bitvec.MustFromString("01"), bitvec.MustFromString("11")}
	if _, err := ToPermutation(c); err == nil {
		t.Error("partial chain should be rejected")
	}
}

func TestSortedChainIsIdentity(t *testing.T) {
	for n := 1; n <= 10; n++ {
		p, err := ToPermutation(SortedChain(n))
		if err != nil {
			t.Fatal(err)
		}
		if !p.Equal(perm.Identity(n)) {
			t.Errorf("n=%d: sorted chain converts to %s, want identity", n, p)
		}
	}
}

func TestSorterPermutationsSizeAndCoverage(t *testing.T) {
	for n := 1; n <= 13; n++ {
		ps := SorterPermutations(n)
		want := int(comb.MustBinomial(n, n/2)) - 1
		if len(ps) != want {
			t.Errorf("n=%d: %d permutations, want C(n,⌊n/2⌋)−1=%d", n, len(ps), want)
		}
		// Covers must blanket every non-sorted string.
		covered := perm.CoverSet(ps)
		it := bitvec.NotSorted(bitvec.All(n))
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			if !covered[v] {
				t.Fatalf("n=%d: non-sorted %s not covered", n, v)
			}
		}
		// No permutation in the set is the identity.
		for _, p := range ps {
			if p.IsSorted() {
				t.Errorf("n=%d: test set contains identity", n)
			}
		}
	}
}

func TestSelectorPermutationsSizeAndCoverage(t *testing.T) {
	for n := 2; n <= 11; n++ {
		for k := 1; k <= n; k++ {
			ps := SelectorPermutations(n, k)
			m := n / 2
			if k < m {
				m = k
			}
			want := int(comb.MustBinomial(n, m)) - 1
			if len(ps) != want {
				t.Errorf("n=%d k=%d: %d permutations, want %d", n, k, len(ps), want)
			}
			covered := perm.CoverSet(ps)
			it := bitvec.NotSorted(bitvec.MaxZeros(n, k))
			for {
				v, ok := it.Next()
				if !ok {
					break
				}
				if !covered[v] {
					t.Fatalf("n=%d k=%d: %s (zeros=%d) not covered", n, k, v, v.Zeros())
				}
			}
		}
	}
}

func TestSelectorPermutationsEveryPrefixSubset(t *testing.T) {
	// The B(n,k) view: for every t ≤ k, every t-subset of lines appears
	// as the positions of the t LARGEST values of some permutation in
	// the family ∪ {identity} — i.e. every weight-t-complement string is
	// covered. Spot-check n=8, k=3 directly on subsets.
	n, k := 8, 3
	ps := append(SelectorPermutations(n, k), perm.Identity(n))
	covered := perm.CoverSet(ps)
	for t_ := 0; t_ <= k; t_++ {
		it := bitvec.FixedWeight(n, n-t_) // strings with t_ zeros
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			if !covered[v] {
				t.Fatalf("string %s with %d zeros not covered", v, t_)
			}
		}
	}
}

func TestMergerPermutations(t *testing.T) {
	for n := 2; n <= 16; n += 2 {
		ps := MergerPermutations(n)
		if len(ps) != n/2 {
			t.Fatalf("n=%d: %d permutations, want n/2", n, len(ps))
		}
		for _, p := range ps {
			if err := p.Validate(); err != nil {
				t.Fatalf("n=%d: %s invalid: %v", n, p, err)
			}
		}
		// Covers must include every merger test string
		// σ₁σ₂ (halves sorted, concatenation not).
		covered := perm.CoverSet(ps)
		h := n / 2
		for i := 1; i <= h; i++ {
			for j := 1; j <= h; j++ {
				v := bitvec.Concat(bitvec.SortedWithOnes(h, i), bitvec.SortedWithOnes(h, h-j))
				if v.IsSorted() {
					continue
				}
				if !covered[v] {
					t.Fatalf("n=%d: merger string %s not covered", n, v)
				}
			}
		}
	}
}

func TestMergerPermutationsPaperExample(t *testing.T) {
	// n=6, i=1: τ₁ = (1 5 6 2 3 4).
	ps := MergerPermutations(6)
	if got := ps[1].String(); got != "(1 5 6 2 3 4)" {
		t.Errorf("τ₁ = %s, want (1 5 6 2 3 4)", got)
	}
	// i=0: τ₀ = (4 5 6 1 2 3).
	if got := ps[0].String(); got != "(4 5 6 1 2 3)" {
		t.Errorf("τ₀ = %s, want (4 5 6 1 2 3)", got)
	}
}
