package chains

import "testing"

// BenchmarkDecomposeRecursive measures the dBTK recursion at n=14
// (3432 chains).
func BenchmarkDecomposeRecursive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(Decompose(14)) != 3432 {
			b.Fatal("wrong chain count")
		}
	}
}

// BenchmarkDecomposeGK measures the bracket-matching decomposition at
// n=14 — the ablation partner of the recursive construction (it costs
// a full 2^n sweep plus hashing).
func BenchmarkDecomposeGK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(DecomposeGK(14)) != 3432 {
			b.Fatal("wrong chain count")
		}
	}
}

// BenchmarkSorterPermutations measures the full optimal-permutation
// test-set construction at n=12 (923 permutations).
func BenchmarkSorterPermutations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(SorterPermutations(12)) != 923 {
			b.Fatal("wrong size")
		}
	}
}
