// Package ring is the cluster's consistent-hash ring: it maps a
// canonical network digest (internal/canon's sha256 — already stable
// across processes, architectures, and time) to the shard that owns
// it. Every participant — each sortnetd's peer plane and every
// client.Pool — builds the ring independently from the same member
// list and lands on the same owner, so routing needs no coordination
// service: the digest IS the routing key, the ring IS the directory.
//
// Virtual nodes smooth the split: each member is hashed onto the ring
// at DefaultVnodes points, so ownership shares stay near 1/N and a
// member's departure redistributes only its own arc (keys owned by
// surviving members never move — the property the verdict caches rely
// on).
package ring

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVnodes is the virtual-node count per member used when New is
// given vnodes <= 0. 128 points per member keeps the max/min ownership
// ratio under ~1.3 for small clusters without making lookup tables
// noticeable.
const DefaultVnodes = 128

// Ring is an immutable consistent-hash ring. Safe for concurrent use.
type Ring struct {
	members []string // sorted, deduplicated
	points  []point  // sorted by hash (ties by member index)
}

type point struct {
	hash   uint64
	member int // index into members
}

// New builds a ring over the given members (shard base URLs or IDs).
// The member ORDER does not matter: the list is sorted and
// deduplicated first, so two processes configured with the same set in
// any order build identical rings. vnodes <= 0 selects DefaultVnodes.
// An empty member list yields a ring whose Owner returns "".
func New(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	uniq := sorted[:0]
	for i, m := range sorted {
		if i == 0 || m != sorted[i-1] {
			uniq = append(uniq, m)
		}
	}
	r := &Ring{members: uniq, points: make([]point, 0, len(uniq)*vnodes)}
	for mi, m := range r.members {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash64(m + "#" + strconv.Itoa(v)), mi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the sorted, deduplicated member list the ring was
// built over. Callers must not mutate it.
func (r *Ring) Members() []string { return r.members }

// Owner returns the member owning key — the first ring point at or
// clockwise after the key's hash — or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.members[r.points[r.at(key)].member]
}

// Replicas returns every member ordered by the key's ring walk: the
// owner first, then each further member in the order its first point
// is encountered clockwise. This is the failover preference order for
// the key — deterministic, and distinct keys spread their second
// choices over the whole cluster instead of all spilling onto one
// scapegoat.
func (r *Ring) Replicas(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.members))
	seen := make([]bool, len(r.members))
	for i, start := 0, r.at(key); i < len(r.points) && len(out) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

// Successors returns the member list rotated to start at m (which must
// be a member; otherwise the sorted list is returned unrotated). It is
// the cheap owner-first preference order for a whole GROUP of keys
// sharing one owner, where a per-key Replicas walk would differ per
// key: deterministic and owner-first is what failover needs.
func (r *Ring) Successors(m string) []string {
	i := sort.SearchStrings(r.members, m)
	if i >= len(r.members) || r.members[i] != m {
		return r.members
	}
	out := make([]string, 0, len(r.members))
	out = append(out, r.members[i:]...)
	return append(out, r.members[:i]...)
}

// at returns the index of the first point at or after key's hash,
// wrapping past the top of the ring.
func (r *Ring) at(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// hash64 is FNV-1a — stable across Go versions and platforms, which
// is the whole point: ring placement must never depend on process
// state (maphash seeds, map iteration, pointer values).
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
