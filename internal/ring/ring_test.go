package ring

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func digests(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%064x", rand.New(rand.NewSource(int64(i))).Uint64())
	}
	return out
}

// TestRingDeterministicAcrossMemberOrder: the ring is a pure function
// of the member SET — clients and servers configured with the same
// shards in different orders must route identically.
func TestRingDeterministicAcrossMemberOrder(t *testing.T) {
	a := New([]string{"http://s1", "http://s2", "http://s3"}, 0)
	b := New([]string{"http://s3", "http://s1", "http://s2"}, 0)
	c := New([]string{"http://s2", "http://s3", "http://s1", "http://s1"}, 0) // dup collapses
	if !reflect.DeepEqual(a.Members(), b.Members()) || !reflect.DeepEqual(a.Members(), c.Members()) {
		t.Fatalf("member lists differ: %v %v %v", a.Members(), b.Members(), c.Members())
	}
	for _, k := range digests(500) {
		if a.Owner(k) != b.Owner(k) || a.Owner(k) != c.Owner(k) {
			t.Fatalf("owner diverged for %s: %s %s %s", k, a.Owner(k), b.Owner(k), c.Owner(k))
		}
		if !reflect.DeepEqual(a.Replicas(k), b.Replicas(k)) {
			t.Fatalf("replica walk diverged for %s", k)
		}
	}
}

// TestRingReplicas: owner-first, all members exactly once.
func TestRingReplicas(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	r := New(members, 64)
	for _, k := range digests(200) {
		reps := r.Replicas(k)
		if len(reps) != len(members) {
			t.Fatalf("want %d replicas, got %v", len(members), reps)
		}
		if reps[0] != r.Owner(k) {
			t.Fatalf("replicas[0]=%s != owner %s", reps[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, m := range reps {
			if seen[m] {
				t.Fatalf("duplicate member %s in %v", m, reps)
			}
			seen[m] = true
		}
	}
}

// TestRingBalance: with default vnodes no member's ownership share
// strays badly from 1/N.
func TestRingBalance(t *testing.T) {
	members := []string{"http://10.0.0.1:8080", "http://10.0.0.2:8080", "http://10.0.0.3:8080"}
	r := New(members, 0)
	counts := map[string]int{}
	keys := digests(6000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	fair := len(keys) / len(members)
	for m, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Errorf("member %s owns %d of %d keys (fair share %d): ring unbalanced %v",
				m, c, len(keys), fair, counts)
		}
	}
}

// TestRingMinimalRemap: removing one member must not move any key
// owned by a survivor — the property that keeps sibling verdict
// caches warm through membership changes.
func TestRingMinimalRemap(t *testing.T) {
	full := New([]string{"a", "b", "c"}, 0)
	without := New([]string{"a", "b"}, 0)
	moved := 0
	keys := digests(2000)
	for _, k := range keys {
		was := full.Owner(k)
		now := without.Owner(k)
		if was != "c" && now != was {
			t.Fatalf("key %s moved %s -> %s though its owner survived", k, was, now)
		}
		if was == "c" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no key was owned by the removed member — test has no teeth")
	}
}

// TestRingSuccessors: rotation starting at the member, all members
// once; unknown member falls back to the sorted list.
func TestRingSuccessors(t *testing.T) {
	r := New([]string{"b", "c", "a"}, 8)
	if got := r.Successors("b"); !reflect.DeepEqual(got, []string{"b", "c", "a"}) {
		t.Errorf("Successors(b) = %v", got)
	}
	if got := r.Successors("a"); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Successors(a) = %v", got)
	}
	if got := r.Successors("zzz"); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Successors(unknown) = %v", got)
	}
}

// TestRingEmpty: degenerate rings don't panic.
func TestRingEmpty(t *testing.T) {
	r := New(nil, 0)
	if o := r.Owner("x"); o != "" {
		t.Errorf("empty ring owner = %q", o)
	}
	if reps := r.Replicas("x"); reps != nil {
		t.Errorf("empty ring replicas = %v", reps)
	}
	one := New([]string{"solo"}, 0)
	if o := one.Owner("x"); o != "solo" {
		t.Errorf("single ring owner = %q", o)
	}
}
