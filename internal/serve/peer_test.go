package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sortnets"
)

// fillPost sends a fill-only cache probe the way a sibling shard
// would: POST /do + the fill header, with from as the hop marker.
func fillPost(t *testing.T, url string, req sortnets.Request, from string) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	httpReq, err := http.NewRequest(http.MethodPost, url+"/do", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpReq.Header.Set(fillHeader, "1")
	if from != "" {
		httpReq.Header.Set(peerHeader, from)
	}
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// TestFillEndpointMissHitIdentity: a fill probe for an uncached
// network answers 404 without computing; once the verdict is cached a
// probe answers 200 with a body byte-identical to the original — the
// property that makes adopting a peer's verdict always safe.
func TestFillEndpointMissHitIdentity(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, ShardID: "s0"})

	req := sortnets.Request{Network: sorter4}
	resp, body := fillPost(t, ts.URL, req, "s1")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cold fill probe: status %d (%s), want 404 — a probe must never compute", resp.StatusCode, body)
	}
	if ep := s.Stats().Endpoints["verify"]; ep.Computes != 0 {
		t.Fatalf("fill probe triggered %d computes, want 0", ep.Computes)
	}

	// A real request computes and caches the verdict...
	resp, want := post(t, ts.URL+"/do", req)
	if resp.StatusCode != 200 {
		t.Fatalf("real request: status %d: %s", resp.StatusCode, want)
	}

	// ...and the probe now replays it byte-identically.
	resp, got := fillPost(t, ts.URL, req, "s1")
	if resp.StatusCode != 200 {
		t.Fatalf("warm fill probe: status %d (%s), want 200", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fill body diverged from the original verdict:\n fill: %s\n real: %s", got, want)
	}
	if resp.Header.Get("X-Sortnetd-Cache") != "hit" {
		t.Errorf("fill response cache header %q, want hit", resp.Header.Get("X-Sortnetd-Cache"))
	}
	ps := s.peerSnapshot()
	if ps.FillMisses != 1 || ps.FillServed != 1 {
		t.Errorf("fill counters %+v, want 1 miss + 1 served", ps)
	}
}

// TestFillEndpointCanonicalSharing: a probe for a REORDERED writing of
// a cached circuit still hits — fill lookups go through the same
// canonical digest as everything else.
func TestFillEndpointCanonicalSharing(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	if resp, body := post(t, ts.URL+"/do", sortnets.Request{Network: sorter4}); resp.StatusCode != 200 {
		t.Fatalf("warm-up: status %d: %s", resp.StatusCode, body)
	}
	resp, body := fillPost(t, ts.URL, sortnets.Request{Network: sorter4Reordered}, "s1")
	if resp.StatusCode != 200 {
		t.Fatalf("probe for the reordered circuit: status %d (%s), want a canonical hit", resp.StatusCode, body)
	}
}

// TestFillEndpointRefusesOwnHopMarker: a probe carrying THIS shard's
// id means a peer list points a shard at itself; it is refused with
// 508 instead of answered.
func TestFillEndpointRefusesOwnHopMarker(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, ShardID: "s0"})
	resp, body := fillPost(t, ts.URL, sortnets.Request{Network: sorter4}, "s0")
	if resp.StatusCode != http.StatusLoopDetected {
		t.Fatalf("self-probe: status %d (%s), want 508", resp.StatusCode, body)
	}
	if ps := s.peerSnapshot(); ps.FillLoops != 1 {
		t.Errorf("fill_loops = %d, want 1", ps.FillLoops)
	}
}

// TestPeerFillEndToEnd: shard B has the verdict, shard A gets the
// request cold — A's miss consults B fill-only, adopts the verdict
// WITHOUT computing, and serves bytes identical to B's. The /stats
// counters attribute the hit on A and the serve on B.
func TestPeerFillEndToEnd(t *testing.T) {
	sB, tsB := newTestServer(t, Config{Workers: 1, ShardID: "sB"})
	respB, wantBody := post(t, tsB.URL+"/do", sortnets.Request{Network: sorter4})
	if respB.StatusCode != 200 {
		t.Fatalf("warming B: status %d: %s", respB.StatusCode, wantBody)
	}

	sA, tsA := newTestServer(t, Config{
		Workers: 1, ShardID: "sA", Peers: []string{tsB.URL}, PeerTimeout: time.Second,
	})
	respA, gotBody := post(t, tsA.URL+"/do", sortnets.Request{Network: sorter4})
	if respA.StatusCode != 200 {
		t.Fatalf("request to A: status %d: %s", respA.StatusCode, gotBody)
	}
	if !bytes.Equal(gotBody, wantBody) {
		t.Fatalf("peer-filled verdict diverged:\n A: %s\n B: %s", gotBody, wantBody)
	}
	if ep := sA.Stats().Endpoints["verify"]; ep.Computes != 0 {
		t.Errorf("A computed %d times despite the peer fill, want 0", ep.Computes)
	}
	if ps := sA.peerSnapshot(); ps.Hits != 1 || ps.Errors != 0 {
		t.Errorf("A peer counters %+v, want exactly one hit", ps)
	}
	if ps := sB.peerSnapshot(); ps.FillServed != 1 {
		t.Errorf("B fill counters %+v, want one probe served", ps)
	}

	// A's adopted verdict is now A's own cache entry: the next request
	// is a local hit, no second probe.
	respA2, _ := post(t, tsA.URL+"/do", sortnets.Request{Network: sorter4})
	if respA2.Header.Get("X-Sortnetd-Cache") != "hit" {
		t.Errorf("second request to A: cache %q, want hit", respA2.Header.Get("X-Sortnetd-Cache"))
	}
	if ps := sA.peerSnapshot(); ps.Hits != 1 {
		t.Errorf("A probed again for a cached verdict: %+v", ps)
	}
}

// TestPeerFillMissComputesLocally: when every peer misses too, the
// shard computes locally — fill is an optimization, never a
// correctness dependency — and the misses are counted.
func TestPeerFillMissComputesLocally(t *testing.T) {
	_, tsB := newTestServer(t, Config{Workers: 1, ShardID: "sB"})
	sA, tsA := newTestServer(t, Config{
		Workers: 1, ShardID: "sA", Peers: []string{tsB.URL}, PeerTimeout: time.Second,
	})
	resp, body := post(t, tsA.URL+"/do", sortnets.Request{Network: sorter4})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ep := sA.Stats().Endpoints["verify"]; ep.Computes != 1 {
		t.Errorf("A computes = %d, want 1 (peer missed, computed locally)", ep.Computes)
	}
	if ps := sA.peerSnapshot(); ps.Misses != 1 || ps.Hits != 0 {
		t.Errorf("A peer counters %+v, want one miss", ps)
	}
}

// TestPeerFillDeadPeerDegrades: a dead peer costs one failed probe
// inside the budget, then the shard computes locally. No request
// fails because the cluster plane is sick.
func TestPeerFillDeadPeerDegrades(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection refused from here on
	sA, tsA := newTestServer(t, Config{
		Workers: 1, ShardID: "sA", Peers: []string{dead.URL}, PeerTimeout: 200 * time.Millisecond,
	})
	resp, body := post(t, tsA.URL+"/do", sortnets.Request{Network: sorter4})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s — a dead peer must not fail the request", resp.StatusCode, body)
	}
	if ep := sA.Stats().Endpoints["verify"]; ep.Computes != 1 {
		t.Errorf("A computes = %d, want 1", ep.Computes)
	}
	if ps := sA.peerSnapshot(); ps.Errors != 1 {
		t.Errorf("A peer counters %+v, want one error", ps)
	}
}

// TestPeerFillStatsWire: the peer section rides /stats as JSON with
// the documented counter names.
func TestPeerFillStatsWire(t *testing.T) {
	_, tsB := newTestServer(t, Config{Workers: 1, ShardID: "sB"})
	_, tsA := newTestServer(t, Config{
		Workers: 1, ShardID: "sA", Peers: []string{tsB.URL}, PeerTimeout: time.Second,
	})
	if resp, body := post(t, tsA.URL+"/do", sortnets.Request{Network: sorter4}); resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	resp, err := http.Get(tsA.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Peer struct {
			ShardID string   `json:"shard_id"`
			Peers   []string `json:"peers"`
			Misses  int64    `json:"peer_misses"`
		} `json:"peer"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Peer.ShardID != "sA" || len(snap.Peer.Peers) != 1 || snap.Peer.Misses != 1 {
		t.Errorf("/stats peer section = %+v, want shard sA, one peer, one miss", snap.Peer)
	}
}
