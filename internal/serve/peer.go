package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"sortnets"
)

// The peer cache-fill plane of cluster mode.
//
// Outgoing: when sortnetd runs with -peers, the Session's verdict-
// cache misses consult the sibling shards through peerFill (installed
// as sortnets.WithPeerFill) before paying the compute. The whole
// consultation shares ONE short budget (Config.PeerTimeout) — peer
// fill is an optimization, never a stall — and single-flight comes
// from the Session's coalescing: concurrent identical misses cost one
// probe round. Under digest routing a fill hit is the common case the
// moment traffic arrives off-owner (a failover, a hedge, a
// round-robin client): the owner computed it already.
//
// Incoming: a probe is a normal POST /do carrying the X-Sortnetd-Fill
// header (the wire constants mirror sortnets/client, which this
// package cannot import — client's tests import serve). serveFill
// answers it from Session.Lookup — the cache-only read path — or
// 404s. It NEVER computes and NEVER probes further, so fill traffic
// is structurally loop-free no matter how the peer graph is
// (mis)configured; as a belt-and-braces check, a probe whose
// X-Sortnetd-Peer hop marker names THIS shard is refused outright (a
// peer list pointing a shard at itself). Fill probes skip the
// admission gate: a saturated shard can still answer cache reads,
// which is exactly when its siblings need them.

const (
	fillHeader = "X-Sortnetd-Fill" // = client.FillHeader
	peerHeader = "X-Sortnetd-Peer" // = client.PeerHeader
)

// defaultPeerTimeout bounds one miss's whole peer consultation when
// Config.PeerTimeout is unset. Local-network round trips for a cache
// read are sub-millisecond; 100ms absorbs a GC pause or SYN retry
// without ever making fill the slow path next to a real compute.
const defaultPeerTimeout = 100 * time.Millisecond

// peerTransport bounds the phases of a probe that can hang on a dead
// peer; the per-consultation context does the rest.
var peerTransport = &http.Transport{
	DialContext:           (&net.Dialer{Timeout: 2 * time.Second, KeepAlive: 30 * time.Second}).DialContext,
	TLSHandshakeTimeout:   2 * time.Second,
	ResponseHeaderTimeout: 5 * time.Second,
	MaxIdleConnsPerHost:   16,
	IdleConnTimeout:       90 * time.Second,
}

// peerPlane is the Service's cluster-fill state and counters.
type peerPlane struct {
	urls    []string // peer base URLs, trailing slash trimmed
	hc      *http.Client
	timeout time.Duration

	hits   atomic.Int64 // outgoing probes answered with a verdict
	misses atomic.Int64 // outgoing probes answered 404
	errors atomic.Int64 // outgoing probes that failed (dead peer, timeout)

	fillServed atomic.Int64 // incoming probes answered from the cache
	fillMisses atomic.Int64 // incoming probes answered 404
	fillLoops  atomic.Int64 // incoming probes refused by the hop marker
}

// initPeers wires the outgoing fill plane from the Config.
func (s *Service) initPeers() {
	if len(s.cfg.Peers) == 0 {
		return
	}
	s.peer.timeout = s.cfg.PeerTimeout
	if s.peer.timeout <= 0 {
		s.peer.timeout = defaultPeerTimeout
	}
	s.peer.hc = s.cfg.PeerHTTPClient
	if s.peer.hc == nil {
		s.peer.hc = &http.Client{Transport: peerTransport}
	}
	for _, u := range s.cfg.Peers {
		s.peer.urls = append(s.peer.urls, strings.TrimRight(u, "/"))
	}
}

// peerFill is the Session's cluster fill hook: probe each peer in
// configured order under one shared budget, adopt the first verdict.
// ctx is the Session's compute context (detached from any one caller
// — it outlives an individual disconnect while waiters remain), so
// the timeout here is the only thing bounding the consultation.
func (s *Service) peerFill(ctx context.Context, req sortnets.Request) (*sortnets.Verdict, bool) {
	pctx, cancel := context.WithTimeout(ctx, s.peer.timeout)
	defer cancel()
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, false
	}
	for _, u := range s.peer.urls {
		v, ok, err := s.fillProbe(pctx, u, payload)
		switch {
		case err != nil:
			s.peer.errors.Add(1)
			if pctx.Err() != nil {
				return nil, false // budget spent; compute locally
			}
		case ok:
			s.peer.hits.Add(1)
			return v, true
		default:
			s.peer.misses.Add(1)
		}
	}
	return nil, false
}

// fillProbe sends one fill-only probe. ok=false with a nil error is a
// peer cache miss — a normal outcome, not a failure.
func (s *Service) fillProbe(ctx context.Context, baseURL string, payload []byte) (*sortnets.Verdict, bool, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/do", bytes.NewReader(payload))
	if err != nil {
		return nil, false, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpReq.Header.Set(fillHeader, "1")
	if s.cfg.ShardID != "" {
		httpReq.Header.Set(peerHeader, s.cfg.ShardID)
	}
	resp, err := s.peer.hc.Do(httpReq)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes*8))
	if err != nil {
		return nil, false, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		var v sortnets.Verdict
		if err := json.Unmarshal(body, &v); err != nil {
			return nil, false, fmt.Errorf("undecodable fill verdict from %s: %w", baseURL, err)
		}
		return &v, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("fill probe to %s: status %d", baseURL, resp.StatusCode)
	}
}

// serveFill answers an incoming fill-only probe from the verdict
// cache. Reached from endpoint() before the admission gate and before
// the NDJSON switch — probes are always single-shot JSON.
func (s *Service) serveFill(op string, w http.ResponseWriter, r *http.Request) {
	if from := r.Header.Get(peerHeader); from != "" && s.cfg.ShardID != "" && from == s.cfg.ShardID {
		s.peer.fillLoops.Add(1)
		writeError(w, http.StatusLoopDetected, fmt.Sprintf(
			"peer fill loop: probe carries this shard's id %q (a peer list points a shard at itself)", from))
		return
	}
	var req sortnets.Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad fill probe body: %v", err))
		return
	}
	if op != "" {
		req.Op = op
	}
	v, ok := s.sess.Lookup(req)
	if !ok {
		s.peer.fillMisses.Add(1)
		writeError(w, http.StatusNotFound, "fill miss")
		return
	}
	s.peer.fillServed.Add(1)
	body, err := sortnets.MarshalVerdict(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Sortnetd-Cache", v.Source)
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// PeerSnapshot is the /stats "peer" section: the cluster fill plane
// from both sides — outgoing probes this shard sent on its own misses
// (peer_hits / peer_misses / peer_errors) and incoming probes it
// answered for siblings (fill_served / fill_misses / fill_loops).
type PeerSnapshot struct {
	ShardID    string   `json:"shard_id,omitempty"`
	Peers      []string `json:"peers,omitempty"`
	Hits       int64    `json:"peer_hits"`
	Misses     int64    `json:"peer_misses"`
	Errors     int64    `json:"peer_errors"`
	FillServed int64    `json:"fill_served"`
	FillMisses int64    `json:"fill_misses"`
	FillLoops  int64    `json:"fill_loops"`
}

func (s *Service) peerSnapshot() PeerSnapshot {
	return PeerSnapshot{
		ShardID:    s.cfg.ShardID,
		Peers:      s.peer.urls,
		Hits:       s.peer.hits.Load(),
		Misses:     s.peer.misses.Load(),
		Errors:     s.peer.errors.Load(),
		FillServed: s.peer.fillServed.Load(),
		FillMisses: s.peer.fillMisses.Load(),
		FillLoops:  s.peer.fillLoops.Load(),
	}
}
