package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sortnets"
)

// sorter4 is the 5-comparator sorter on 4 lines (Batcher's shape).
const sorter4 = "n=4: [1,2][3,4][1,3][2,4][2,3]"

// sorter4Reordered swaps the two comparators of the first parallel
// layer — a different writing of the same circuit.
const sorter4Reordered = "n=4: [3,4][1,2][1,3][2,4][2,3]"

func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	s := NewService(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func post(t *testing.T, url string, req any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func TestVerifySorterHolds(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/verify", sortnets.Request{Network: sorter4})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var v sortnets.Verdict
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Check == nil || !v.Check.Holds || v.Check.TestsRun != 11 { // 2⁴−4−1 minimal sorter tests
		t.Errorf("got %+v, want holds over 11 tests", v.Check)
	}
	if v.Op != sortnets.OpVerify || v.Property != "sorter" || len(v.Digest) != 64 {
		t.Errorf("bad identity fields: %+v", v)
	}
	if got := resp.Header.Get("X-Sortnetd-Cache"); got != "miss" {
		t.Errorf("first request cache header %q, want miss", got)
	}
}

// TestDoEndpoint: the unified endpoint takes the op from the body and
// produces the same verdict bytes as the per-op path.
func TestDoEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, viaVerify := post(t, ts.URL+"/verify", sortnets.Request{Network: sorter4})
	resp, viaDo := post(t, ts.URL+"/do", sortnets.Request{Op: sortnets.OpVerify, Network: sorter4})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, viaDo)
	}
	if !bytes.Equal(viaVerify, viaDo) {
		t.Errorf("/do and /verify verdicts differ:\n%s\n%s", viaVerify, viaDo)
	}
	if got := resp.Header.Get("X-Sortnetd-Cache"); got != "hit" {
		t.Errorf("/do after /verify: cache header %q, want hit (shared cache)", got)
	}
	// Empty op defaults to verify.
	_, viaDefault := post(t, ts.URL+"/do", sortnets.Request{Network: sorter4})
	if !bytes.Equal(viaVerify, viaDefault) {
		t.Errorf("/do default op differs from verify")
	}
	// A body op that disagrees with a per-op endpoint is rejected.
	resp, body := post(t, ts.URL+"/verify", sortnets.Request{Op: sortnets.OpFaults, Network: sorter4})
	if resp.StatusCode != 400 {
		t.Errorf("op mismatch: status %d (%s), want 400", resp.StatusCode, body)
	}
}

func TestVerifyFailureHasCounterexample(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := sortnets.Request{Network: "n=4: [1,2][3,4]"}
	resp, body := post(t, ts.URL+"/verify", req)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var v sortnets.Verdict
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Check == nil || v.Check.Holds || v.Check.Counterexample == "" || v.Check.Output == "" {
		t.Errorf("failing verdict lacks counterexample: %+v", v.Check)
	}
	// The exhaustive sweep must agree with the minimal test set.
	req.Exhaustive = true
	_, body2 := post(t, ts.URL+"/verify", req)
	var g sortnets.Verdict
	if err := json.Unmarshal(body2, &g); err != nil {
		t.Fatal(err)
	}
	if g.Check == nil || g.Check.Holds != v.Check.Holds {
		t.Errorf("exhaustive and minimal-test verdicts disagree: %+v vs %+v", g.Check, v.Check)
	}
}

func TestCacheHitIsByteIdentical(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := sortnets.Request{Network: sorter4}
	_, first := post(t, ts.URL+"/verify", req)
	resp, second := post(t, ts.URL+"/verify", req)
	if got := resp.Header.Get("X-Sortnetd-Cache"); got != "hit" {
		t.Fatalf("second request cache header %q, want hit", got)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("cache hit not byte-identical:\n%s\n%s", first, second)
	}
	st := s.Stats()
	ep := st.Endpoints["verify"]
	if ep.Hits != 1 || ep.Computes != 1 {
		t.Errorf("stats after hit: %+v", ep)
	}
}

// TestCanonicalSharing: different writings of one circuit — a
// within-layer reordering, and the comparator-pair wire form — all
// share one digest and one cache entry.
func TestCanonicalSharing(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	_, first := post(t, ts.URL+"/verify", sortnets.Request{Network: sorter4})

	resp, body := post(t, ts.URL+"/verify", sortnets.Request{Network: sorter4Reordered})
	if got := resp.Header.Get("X-Sortnetd-Cache"); got != "hit" {
		t.Errorf("reordered writing: cache header %q, want hit", got)
	}
	if !bytes.Equal(first, body) {
		t.Errorf("reordered writing not byte-identical")
	}

	resp, body = post(t, ts.URL+"/verify", sortnets.Request{
		Lines:       4,
		Comparators: [][2]int{{3, 4}, {1, 2}, {1, 3}, {2, 4}, {2, 3}},
	})
	if got := resp.Header.Get("X-Sortnetd-Cache"); got != "hit" {
		t.Errorf("pair form: cache header %q, want hit", got)
	}
	if !bytes.Equal(first, body) {
		t.Errorf("pair form not byte-identical")
	}
	if got := s.Stats().Endpoints["verify"].Computes; got != 1 {
		t.Errorf("three writings cost %d computes, want 1", got)
	}
}

// TestCoalescing is the acceptance contract: two concurrent identical
// /verify requests produce ONE underlying engine run, observable via
// /stats, and both callers get byte-identical verdicts.
func TestCoalescing(t *testing.T) {
	gate := make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 4, OnCompute: func() { <-gate }})

	req := sortnets.Request{Network: sorter4}
	type outcome struct {
		source string
		body   []byte
	}
	results := make(chan outcome, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := post(t, ts.URL+"/verify", req)
			results <- outcome{resp.Header.Get("X-Sortnetd-Cache"), body}
		}()
	}
	// Release the gate only after the second request has joined the
	// first's computation, so exactly one compute is possible.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Endpoints["verify"].Coalesced < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never coalesced")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	close(results)

	var sources []string
	var bodies [][]byte
	for r := range results {
		sources = append(sources, r.source)
		bodies = append(bodies, r.body)
	}
	if len(bodies) != 2 {
		t.Fatalf("got %d results, want 2 (a request goroutine failed)", len(bodies))
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Errorf("coalesced verdicts differ:\n%s\n%s", bodies[0], bodies[1])
	}
	got := strings.Join(sources, ",")
	if got != "miss,coalesced" && got != "coalesced,miss" {
		t.Errorf("sources %q, want one miss and one coalesced", got)
	}
	ep := s.Stats().Endpoints["verify"]
	if ep.Computes != 1 {
		t.Errorf("two concurrent identical requests ran %d computes, want 1", ep.Computes)
	}
	if ep.Coalesced != 1 || ep.Misses != 2 || ep.Requests != 2 {
		t.Errorf("stats: %+v", ep)
	}
}

// TestAbortedRequestReleasesSlot is the cancellation acceptance
// contract: a client that disconnects mid-compute shows up in the
// canceled counter, its computation stops, and the pool slot serves
// the next request — all observable through /stats.
func TestAbortedRequestReleasesSlot(t *testing.T) {
	gate := make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 1, OnCompute: func() { <-gate }})

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(sortnets.Request{Network: sorter4})
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/verify", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(httpReq)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	// Wait for the compute to start (it is parked on the gate), then
	// hang up the client.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Endpoints["verify"].Computes < 1 {
		if time.Now().After(deadline) {
			t.Fatal("compute never started")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("canceled request unexpectedly succeeded")
	}
	for s.Stats().Endpoints["verify"].Canceled < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("cancellation never recorded: %+v", s.Stats().Endpoints["verify"])
		}
		time.Sleep(time.Millisecond)
	}
	close(gate) // the parked worker resumes, sees the dead context, frees the slot

	// The single-shard pool must now serve a fresh request promptly.
	resp, verdict := post(t, ts.URL+"/verify", sortnets.Request{Network: "n=4: [1,2][3,4]"})
	if resp.StatusCode != 200 {
		t.Fatalf("post-abort request: status %d: %s", resp.StatusCode, verdict)
	}
	ep := s.Stats().Endpoints["verify"]
	if ep.Canceled != 1 {
		t.Errorf("canceled counter %d, want 1: %+v", ep.Canceled, ep)
	}
	if ep.Computes < 2 {
		t.Errorf("slot not reused after abort: %+v", ep)
	}
}

func TestTangledNetworkRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/verify", sortnets.Request{
		Lines:       2,
		Comparators: [][2]int{{2, 1}}, // max-on-top: no standard equivalent
	})
	if resp.StatusCode != 422 {
		t.Fatalf("tangled network: status %d (%s), want 422", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "tangled") {
		t.Errorf("error body %s lacks explanation", body)
	}
}

func TestRequestValidation(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxLines: 8})
	cases := []struct {
		name   string
		path   string
		req    any
		status int
	}{
		{"missing network", "/verify", sortnets.Request{}, 400},
		{"both forms", "/verify", sortnets.Request{Network: sorter4, Comparators: [][2]int{{1, 2}}, Lines: 4}, 400},
		{"text form plus stray lines", "/verify", sortnets.Request{Network: sorter4, Lines: 8}, 400},
		{"zero-based pair", "/verify", sortnets.Request{Lines: 2, Comparators: [][2]int{{0, 1}}}, 400},
		{"parse error", "/verify", sortnets.Request{Network: "n=4: [zap"}, 400},
		{"over line limit", "/verify", sortnets.Request{Network: "n=9:"}, 400},
		// The limit must reject BEFORE any O(lines) allocation: these
		// would OOM the daemon if canonicalization ran first.
		{"absurd n text form", "/verify", sortnets.Request{Network: "n=2000000000:"}, 400},
		{"absurd lines pair form", "/verify", sortnets.Request{Lines: 2000000000, Comparators: [][2]int{{1, 2}}}, 400},
		{"absurd lines faults", "/faults", sortnets.Request{Lines: 2000000000, Comparators: [][2]int{{1, 2}}}, 400},
		{"unknown property", "/verify", sortnets.Request{Network: sorter4, Property: "widget"}, 400},
		{"selector bad k", "/verify", sortnets.Request{Network: sorter4, Property: "selector", K: 9}, 400},
		{"merger odd lines", "/verify", sortnets.Request{Network: "n=3: [1,2]", Property: "merger"}, 400},
		{"faults bad mode", "/faults", sortnets.Request{Network: sorter4, Mode: "psychic"}, 400},
		{"faults by-property non-sorter", "/faults", sortnets.Request{Network: sorter4, Property: "selector", K: 1}, 400},
		{"unknown op", "/do", sortnets.Request{Op: "conjure", Network: sorter4}, 400},
	}
	for _, c := range cases {
		resp, body := post(t, ts.URL+c.path, c.req)
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d (%s), want %d", c.name, resp.StatusCode, body, c.status)
		}
	}
	if errs := s.Stats().Endpoints["verify"].Errors; errs < 6 {
		t.Errorf("verify error counter %d, want ≥ 6", errs)
	}
}

func TestMethodAndBodyErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/verify")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("GET /verify: status %d, want 405", resp.StatusCode)
	}
	r2, err := http.Post(ts.URL+"/verify", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != 400 {
		t.Errorf("bad body: status %d, want 400", r2.StatusCode)
	}
}

func TestFaultsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, mode := range []string{"by-property", "by-golden"} {
		resp, body := post(t, ts.URL+"/faults", sortnets.Request{Network: sorter4, Mode: mode})
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d: %s", mode, resp.StatusCode, body)
		}
		var v sortnets.Verdict
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		f := v.Faults
		if f == nil {
			t.Fatalf("%s: missing faults section: %s", mode, body)
		}
		// Fig. 1: 5 comparators × 3 modes + 4 lines × 2 + 3 pairs × 2.
		if f.Faults != 5*3+4*2+3*2 {
			t.Errorf("%s: fault universe %d, want %d", mode, f.Faults, 5*3+4*2+3*2)
		}
		if f.Detectable == 0 || f.Detected == 0 || f.Coverage <= 0 || f.Coverage > 1 {
			t.Errorf("%s: degenerate report %+v", mode, f)
		}
		if f.Detected != f.Detectable {
			// The paper's guarantee: the minimal sorter test set
			// catches every detectable fault in the sorter model
			// (ByProperty); ByGolden shares the property here because
			// sorter4 is a sorter whose tests expose every divergence.
			t.Errorf("%s: minimal test set missed faults: %+v", mode, f)
		}
	}
}

func TestMinsetEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/minset", sortnets.Request{Network: sorter4})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var v sortnets.Verdict
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	m := v.Minset
	if m == nil || m.FullTests != 11 || m.Size == 0 || m.Size > m.FullTests || len(m.Tests) != m.Size {
		t.Errorf("degenerate minset: %+v", m)
	}

	resp, body = post(t, ts.URL+"/minset", sortnets.Request{Network: sorter4, Exact: true})
	if resp.StatusCode != 200 {
		t.Fatalf("exact: status %d: %s", resp.StatusCode, body)
	}
	var vex sortnets.Verdict
	if err := json.Unmarshal(body, &vex); err != nil {
		t.Fatal(err)
	}
	ex := vex.Minset
	if ex == nil || !ex.Exact {
		t.Errorf("exact solve did not certify: %+v", ex)
	}
	if ex.Size > m.Size {
		t.Errorf("exact minimum %d exceeds greedy %d", ex.Size, m.Size)
	}
}

func TestHealthzAndStats(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3, CacheSize: 7})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(buf.String(), `"ok"`) {
		t.Errorf("healthz: %d %q", resp.StatusCode, buf.String())
	}

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Workers != 3 || st.Cache.Capacity != 7 {
		t.Errorf("stats config: %+v", st)
	}
	for _, ep := range []string{"verify", "faults", "minset"} {
		if _, ok := st.Endpoints[ep]; !ok {
			t.Errorf("stats missing endpoint %q", ep)
		}
	}
}

func TestDifferentPropertiesDifferentEntries(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	_, _ = post(t, ts.URL+"/verify", sortnets.Request{Network: sorter4})
	resp, _ := post(t, ts.URL+"/verify", sortnets.Request{Network: sorter4, Property: "selector", K: 1})
	if got := resp.Header.Get("X-Sortnetd-Cache"); got != "miss" {
		t.Errorf("different property served from cache: %q", got)
	}
	if got := s.Stats().Endpoints["verify"].Computes; got != 2 {
		t.Errorf("computes %d, want 2", got)
	}
}

// TestConcurrentMixedLoad shakes the whole pipeline under -race:
// many goroutines, a handful of distinct circuits, all endpoints.
func TestConcurrentMixedLoad(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, CacheSize: 8})
	nets := []string{
		sorter4,
		"n=4: [1,2][3,4][1,3][2,4][2,3]",
		"n=4: [1,2][3,4]",
		"n=5: [1,2][3,4][1,3][2,5][2,3][4,5][3,4]",
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				req := sortnets.Request{Network: nets[(g+i)%len(nets)]}
				var path string
				switch i % 3 {
				case 0:
					path = "/verify"
				case 1:
					path = "/faults"
				default:
					path = "/minset"
				}
				resp, _ := post(t, ts.URL+path, req)
				resp.Body.Close()
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	var requests, errors int64
	for _, ep := range st.Endpoints {
		requests += ep.Requests
		errors += ep.Errors
	}
	if requests != 8*12 {
		t.Errorf("requests %d, want %d", requests, 8*12)
	}
	if errors != 0 {
		t.Errorf("%d errors under mixed load: %s", errors, fmt.Sprint(st.Endpoints))
	}
}
