package serve

import (
	"fmt"
	"hash/fnv"
	"sync"
)

// The compute plane is a SHARDED worker pool: one goroutine per
// shard, with requests routed to a shard by the hash of their cache
// key. Routing by key gives coalescing for free and without a global
// lock — two concurrent identical requests always land on the same
// shard, where an inflight table lets the second subscribe to the
// first's result instead of recomputing it. The shard count bounds
// the number of verdicts computing at once (the engines inside run
// single-worker, so total CPU use stays ≈ shard count ≈ GOMAXPROCS).

// call is one in-flight computation; waiters block on done and then
// read body/err, which are written exactly once before the close.
type call struct {
	done chan struct{}
	body []byte
	err  error
}

type shard struct {
	mu       sync.Mutex
	inflight map[string]*call
	jobs     chan func()
}

type pool struct {
	shards []*shard
	wg     sync.WaitGroup
}

// newPool starts n shard workers. Each shard's job queue is buffered;
// a full queue blocks the submitting HTTP handler, which is the
// intended backpressure.
func newPool(n int) *pool {
	if n < 1 {
		n = 1
	}
	p := &pool{shards: make([]*shard, n)}
	for i := range p.shards {
		sh := &shard{
			inflight: make(map[string]*call),
			jobs:     make(chan func(), 64),
		}
		p.shards[i] = sh
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for job := range sh.jobs {
				job()
			}
		}()
	}
	return p
}

// close drains the pool: no do calls may be in flight or follow.
func (p *pool) close() {
	for _, sh := range p.shards {
		close(sh.jobs)
	}
	p.wg.Wait()
}

func (p *pool) shardFor(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return p.shards[h.Sum32()%uint32(len(p.shards))]
}

// do runs compute for key on key's shard, coalescing with an
// identical in-flight computation if one exists. It returns the
// result and whether this caller merely joined an existing call.
// onJoin, if non-nil, runs as soon as a caller registers as a waiter
// (BEFORE blocking on the twin's result), so coalescing is
// observable in /stats while the shared computation is still running.
// onCompute, if non-nil, runs on the shard worker right before
// compute — the test seam that lets tests hold a computation open.
func (p *pool) do(key string, compute func() ([]byte, error), onCompute, onJoin func()) (body []byte, coalesced bool, err error) {
	sh := p.shardFor(key)
	sh.mu.Lock()
	if c, ok := sh.inflight[key]; ok {
		sh.mu.Unlock()
		if onJoin != nil {
			onJoin()
		}
		<-c.done
		return c.body, true, c.err
	}
	c := &call{done: make(chan struct{})}
	sh.inflight[key] = c
	sh.mu.Unlock()

	sh.jobs <- func() {
		defer func() {
			if r := recover(); r != nil {
				c.err = fmt.Errorf("serve: compute panicked: %v", r)
			}
			sh.mu.Lock()
			delete(sh.inflight, key)
			sh.mu.Unlock()
			close(c.done)
		}()
		if onCompute != nil {
			onCompute()
		}
		c.body, c.err = compute()
	}
	<-c.done
	return c.body, false, c.err
}
