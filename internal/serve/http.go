package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// HTTP surface.
//
//	POST /verify   VerifyRequest  → VerifyResponse
//	POST /faults   FaultsRequest  → FaultsResponse
//	POST /minset   MinsetRequest  → MinsetResponse
//	GET  /healthz  → "ok"
//	GET  /stats    → StatsSnapshot
//
// Responses are application/json. The X-Sortnetd-Cache header reports
// how a verdict was obtained: "hit" (verdict cache), "coalesced"
// (joined an identical in-flight computation), or "miss" (computed).
// Errors are {"error": "..."} with a 4xx/5xx status.

// maxBodyBytes bounds request bodies; the largest legitimate request
// is a few thousand comparator pairs.
const maxBodyBytes = 1 << 20

// Handler returns the service's HTTP mux.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/verify", func(w http.ResponseWriter, r *http.Request) {
		endpoint(s, &s.stats.Verify, w, r, func(req *VerifyRequest) ([]byte, string, error) {
			return s.verify(req)
		})
	})
	mux.HandleFunc("/faults", func(w http.ResponseWriter, r *http.Request) {
		endpoint(s, &s.stats.Faults, w, r, func(req *FaultsRequest) ([]byte, string, error) {
			return s.faults(req)
		})
	})
	mux.HandleFunc("/minset", func(w http.ResponseWriter, r *http.Request) {
		endpoint(s, &s.stats.Minset, w, r, func(req *MinsetRequest) ([]byte, string, error) {
			return s.minset(req)
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "healthz is GET-only")
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "stats is GET-only")
			return
		}
		writeJSON(w, http.StatusOK, s.Stats())
	})
	return mux
}

// endpoint decodes one POST body into req, runs the endpoint logic,
// and writes the verdict (or a typed error), keeping the counter
// bookkeeping in one place.
func endpoint[R any](s *Service, ep *EndpointStats, w http.ResponseWriter, r *http.Request, run func(*R) ([]byte, string, error)) {
	ep.Requests.Add(1)
	if r.Method != http.MethodPost {
		ep.Errors.Add(1)
		writeError(w, http.StatusMethodNotAllowed, "use POST with a JSON body")
		return
	}
	var req R
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		ep.Errors.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	body, source, err := run(&req)
	if err != nil {
		ep.Errors.Add(1)
		var re *requestError
		if errors.As(err, &re) {
			writeError(w, re.status, re.msg)
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Sortnetd-Cache", source)
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
