package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"sortnets"
)

// HTTP surface.
//
//	POST /do       sortnets.Request → sortnets.Verdict (op from the body; default verify)
//	               with Content-Type application/x-ndjson: one Request per line in,
//	               one sortnets.BatchVerdict per line out, streamed as chunks complete
//	POST /verify   sortnets.Request → sortnets.Verdict (op forced to verify)
//	POST /faults   sortnets.Request → sortnets.Verdict (op forced to faults)
//	POST /minset   sortnets.Request → sortnets.Verdict (op forced to minset)
//	GET  /healthz  → readiness: 200 {"status":"ok"}, or 503
//	               {"status":"draining"|"overloaded"} when the server
//	               should receive no new traffic
//	GET  /livez    → liveness: 200 "ok" for as long as the process serves
//	GET  /stats    → StatsSnapshot
//
// Responses are application/json. The X-Sortnetd-Cache header reports
// how a verdict was obtained: "hit" (verdict cache), "coalesced"
// (joined an identical in-flight computation), or "miss" (computed).
// Errors are {"error": "..."} with a 4xx/5xx status. The request's
// context is the client connection: a disconnect or client-side
// deadline cancels the computation inside the Session, releasing its
// pool slot.
//
// Every verdict request passes the admission gate (admission.go): a
// saturated server answers 429 with a Retry-After header instead of
// queueing without bound. Requests re-sent by a failing-over
// client.Pool carry X-Sortnetd-Retry and are counted as retries_seen
// on /stats.

// maxBodyBytes bounds request bodies; the largest legitimate request
// is a few thousand comparator pairs.
const maxBodyBytes = 1 << 20

// Handler returns the service's HTTP mux.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/do", func(w http.ResponseWriter, r *http.Request) { s.endpoint("", w, r) })
	mux.HandleFunc("/verify", func(w http.ResponseWriter, r *http.Request) { s.endpoint(sortnets.OpVerify, w, r) })
	mux.HandleFunc("/faults", func(w http.ResponseWriter, r *http.Request) { s.endpoint(sortnets.OpFaults, w, r) })
	mux.HandleFunc("/minset", func(w http.ResponseWriter, r *http.Request) { s.endpoint(sortnets.OpMinset, w, r) })
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "healthz is GET-only")
			return
		}
		s.readiness(w)
	})
	mux.HandleFunc("/livez", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "livez is GET-only")
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "stats is GET-only")
			return
		}
		writeJSON(w, http.StatusOK, s.Stats())
	})
	return mux
}

// rejected counts a request that never reached the Session, against
// the endpoint's op (or the body's op on /do when one was decoded).
func (s *Service) rejected(op string) {
	if c, ok := s.httpRejected[op]; ok {
		c.Add(1)
	} else {
		s.httpRejected[sortnets.OpVerify].Add(1)
	}
}

// endpoint decodes one POST body into the shared Request, forces the
// path's op, and relays the Session's verdict — the entire service
// layer in one screen. On /do an application/x-ndjson body switches
// to the streaming batch protocol (ndjson.go) instead.
func (s *Service) endpoint(op string, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.rejected(op)
		writeError(w, http.StatusMethodNotAllowed, "use POST with a JSON body")
		return
	}
	if r.Header.Get("X-Sortnetd-Retry") != "" {
		s.retriesSeen.Add(1)
	}
	if r.Header.Get(fillHeader) != "" {
		// A sibling shard's fill-only cache probe (peer.go): answered
		// from the cache or 404, never computed, never gated.
		s.serveFill(op, w, r)
		return
	}
	if op == "" && ndjsonContentType(r) {
		s.serveNDJSON(w, r)
		return
	}
	var req sortnets.Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.rejected(op)
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if op != "" {
		if req.Op != "" && req.Op != op {
			s.rejected(op)
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("body op %q disagrees with the %s endpoint", req.Op, op))
			return
		}
		req.Op = op
	}
	v, err := s.do(r.Context(), req)
	if err != nil {
		var re *sortnets.RequestError
		switch {
		case errors.Is(err, errShed):
			w.Header().Set("Retry-After", strconv.Itoa(RetryAfterSeconds(shedRetryAfter)))
			writeError(w, http.StatusTooManyRequests,
				fmt.Sprintf("server saturated: %d requests in flight; retry after %v", s.cfg.MaxInflight, shedRetryAfter))
		case errors.As(err, &re):
			if re.RetryAfter > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(re.RetryAfter))
			}
			writeError(w, re.Status, re.Msg)
		case r.Context().Err() != nil:
			// Client gone or client deadline hit: the write is
			// best-effort (499 in the nginx tradition); the important
			// part — the engine stopped and the pool slot is free —
			// already happened inside the Session.
			writeError(w, 499, "request canceled")
		default:
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	body, err := sortnets.MarshalVerdict(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Sortnetd-Cache", v.Source)
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// readiness answers /healthz: 503 while draining (so load balancers
// and client Pools route away before the listener closes) or while
// the admission gate is saturated (shedding new arrivals anyway), 200
// otherwise. Liveness is /livez; a draining server is still alive.
func (s *Service) readiness(w http.ResponseWriter) {
	switch {
	case s.draining.Load():
		w.Header().Set("Retry-After", strconv.Itoa(RetryAfterSeconds(drainRetryAfter)))
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case s.inflight.Load() >= int64(s.cfg.MaxInflight):
		w.Header().Set("Retry-After", strconv.Itoa(RetryAfterSeconds(shedRetryAfter)))
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "overloaded"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}
}

// RetryAfterSeconds renders a backoff hint as Retry-After
// delta-seconds, rounding UP with a floor of one second. The header
// has whole-second granularity, so the historical int(d/time.Second)
// truncation turned any sub-second hint into "0" — which clients
// parse as NO floor, defeating the hint exactly when the server most
// wanted breathing room. Exported so the client's floor parser can be
// round-trip tested against it.
func RetryAfterSeconds(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
