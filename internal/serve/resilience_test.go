package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sortnets"
)

// distinctNet builds the i-th of a family of distinct valid networks
// (different comparator counts → different digests → no coalescing).
func distinctNet(i int) string {
	var sb strings.Builder
	sb.WriteString("n=2:")
	for k := 0; k <= i; k++ {
		sb.WriteString(" [1,2]")
	}
	return sb.String()
}

// TestShedUnderOverload: with the gate at 2 slots and computes held,
// extra arrivals are shed with 429 + Retry-After within the queue
// wait — bounded in-flight instead of latency collapse — and the
// admitted requests still finish once the stall clears.
func TestShedUnderOverload(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	release := func() { gateOnce.Do(func() { close(gate) }) }
	defer release()
	started := make(chan struct{}, 16)
	s, ts := newTestServer(t, Config{
		Workers:     1,
		MaxInflight: 2,
		QueueWait:   20 * time.Millisecond,
		OnCompute: func() {
			started <- struct{}{}
			<-gate
		},
	})

	const total = 8
	type result struct {
		status     int
		retryAfter string
	}
	results := make(chan result, total)
	for i := 0; i < total; i++ {
		go func(i int) {
			body, _ := json.Marshal(sortnets.Request{Network: distinctNet(i)})
			resp, err := http.Post(ts.URL+"/verify", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				results <- result{}
				return
			}
			resp.Body.Close()
			results <- result{resp.StatusCode, resp.Header.Get("Retry-After")}
		}(i)
	}
	<-started // at least one admitted request is computing

	// While saturated, readiness must refuse new traffic.
	deadline := time.Now().Add(time.Second)
	for {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Status string `json:"status"`
		}
		json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable && body.Status == "overloaded" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readiness never reported overloaded at a full gate")
		}
		time.Sleep(2 * time.Millisecond)
	}

	var ok, shed int
	sawRetryAfter := true
	for i := 0; i < total; i++ {
		r := <-results
		switch r.status {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			sawRetryAfter = sawRetryAfter && r.retryAfter != ""
		default:
			t.Errorf("unexpected status %d", r.status)
		}
		if ok+shed == total-2 {
			release() // the shed is complete; let the admitted pair finish
		}
	}
	if ok != 2 || shed != total-2 {
		t.Fatalf("ok=%d shed=%d, want 2/%d (gate bounds in-flight)", ok, shed, total-2)
	}
	if !sawRetryAfter {
		t.Error("shed responses must carry Retry-After")
	}
	st := s.Stats().Resilience
	if st.Shed != int64(total-2) || st.Inflight != 0 || st.MaxInflight != 2 {
		t.Errorf("resilience stats %+v, want shed=%d inflight=0 max=2", st, total-2)
	}
}

// TestRetriesSeenCounter: requests carrying the client retry marker
// are counted, so an operator can attribute load to failover traffic.
func TestRetriesSeenCounter(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body, _ := json.Marshal(sortnets.Request{Network: sorter4})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/verify", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Sortnetd-Retry", "2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := s.Stats().Resilience.RetriesSeen; got != 1 {
		t.Errorf("retries_seen = %d, want 1", got)
	}
}

// TestNDJSONShedPerLine: a saturated gate answers NDJSON lines with
// per-line 429 errors on a SURVIVING 200 connection — the stream (and
// a client Pool's partial retry) continues; the transport does not
// tear down.
func TestNDJSONShedPerLine(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	release := func() { gateOnce.Do(func() { close(gate) }) }
	defer release()
	started := make(chan struct{}, 4)
	_, ts := newTestServer(t, Config{
		Workers:     1,
		MaxInflight: 1,
		QueueWait:   5 * time.Millisecond,
		OnCompute: func() {
			started <- struct{}{}
			<-gate
		},
	})

	// Occupy the only slot with a gated single-shot request.
	hold := make(chan struct{})
	go func() {
		defer close(hold)
		body, _ := json.Marshal(sortnets.Request{Network: sorter4})
		resp, err := http.Post(ts.URL+"/verify", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started

	// The batch cannot get the slot: every line must come back as a
	// 429 error line, status still 200.
	batch := `{"id":"a","network":"n=2: [1,2]"}` + "\n" + `{"id":"b","network":"n=2: [1,2][1,2]"}` + "\n"
	resp, err := http.Post(ts.URL+"/do", "application/x-ndjson", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("NDJSON status %d, want 200 (shed is per-line)", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	lines := 0
	for sc.Scan() {
		var line sortnets.BatchVerdict
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if line.Error == nil || line.Error.Status != http.StatusTooManyRequests {
			t.Errorf("line %d = %+v, want a 429 error line", lines, line)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("got %d response lines, want 2", lines)
	}
	release()
	<-hold
}

// TestPanicRecovered: an engine panic costs its caller a 500 on a
// surviving process — the next request answers normally and the panic
// is counted on /stats.
func TestPanicRecovered(t *testing.T) {
	var poison atomic.Bool
	poison.Store(true)
	s, ts := newTestServer(t, Config{OnCompute: func() {
		if poison.CompareAndSwap(true, false) {
			panic("poisoned request")
		}
	}})

	resp, body := post(t, ts.URL+"/verify", sortnets.Request{Network: sorter4})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("poisoned request: status %d (%s), want 500", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("panicked")) {
		t.Errorf("error body %s should name the panic", body)
	}

	// The process survived: the same daemon answers the next request.
	resp, body = post(t, ts.URL+"/verify", sortnets.Request{Network: sorter4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after a panic: status %d (%s), want 200", resp.StatusCode, body)
	}
	if got := s.Stats().Resilience.PanicsRecovered; got != 1 {
		t.Errorf("panics_recovered = %d, want 1", got)
	}
}

// TestComputeTimeout504: a verdict that exceeds the per-request
// compute deadline answers 504 (and counts), while the caller's own
// context stays live.
func TestComputeTimeout504(t *testing.T) {
	s, ts := newTestServer(t, Config{
		ComputeTimeout: 20 * time.Millisecond,
		OnCompute:      func() { time.Sleep(150 * time.Millisecond) },
	})
	resp, body := post(t, ts.URL+"/verify", sortnets.Request{Network: sorter4})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, body)
	}
	// The request was legal, just expensive: the 504 must hint a
	// retry, or the client pool backs off with no floor.
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("504 response carries no Retry-After header")
	}
	if got := s.Stats().Resilience.ComputeTimeouts; got != 1 {
		t.Errorf("compute_timeouts = %d, want 1", got)
	}
	// Give the stalled worker time to finish before Close.
	time.Sleep(200 * time.Millisecond)
}

// TestNDJSONComputeTimeoutRetryAfter: the NDJSON path has no headers,
// so a per-line 504 must carry the backoff hint in the typed error's
// retry_after field — that is what the client pool's observe() reads
// as its backoff floor.
func TestNDJSONComputeTimeoutRetryAfter(t *testing.T) {
	svc := NewService(Config{
		Workers:        1,
		ComputeTimeout: 20 * time.Millisecond,
		OnCompute:      func() { time.Sleep(150 * time.Millisecond) },
	})
	defer svc.Close()
	lines := postNDJSONBody(t, svc, []byte(`{"id":"a","network":"`+sorter4+`"}`))
	if len(lines) != 1 {
		t.Fatalf("%d response lines, want 1: %+v", len(lines), lines)
	}
	e := lines[0].Error
	if e == nil || lines[0].Verdict != nil {
		t.Fatalf("want an error line, got %+v", lines[0])
	}
	if e.Status != http.StatusGatewayTimeout {
		t.Fatalf("line error status %d (%s), want 504", e.Status, e.Msg)
	}
	if e.RetryAfter < 1 {
		t.Errorf("per-line 504 retry_after = %d, want >= 1 (the headerless hint carrier)", e.RetryAfter)
	}
	// The hint must survive the zero-alloc wire encoder too.
	var out []byte
	out = sortnets.AppendBatchVerdict(out, &lines[0])
	if !bytes.Contains(out, []byte(`"retry_after":`)) {
		t.Errorf("wire encoding drops retry_after: %s", out)
	}
	// Give the stalled worker time to finish before Close.
	time.Sleep(200 * time.Millisecond)
}

// TestReadinessDraining: Drain flips /healthz to 503
// {"status":"draining"} while /livez keeps reporting the process
// alive — the liveness/readiness split.
func TestReadinessDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	get := func(path string) (int, map[string]string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]string
		json.NewDecoder(resp.Body).Decode(&m)
		return resp.StatusCode, m
	}

	if code, m := get("/healthz"); code != http.StatusOK || m["status"] != "ok" {
		t.Fatalf("healthy readiness = %d %v", code, m)
	}
	s.Drain()
	if !s.Draining() {
		t.Fatal("Draining() must report true after Drain()")
	}
	if code, m := get("/healthz"); code != http.StatusServiceUnavailable || m["status"] != "draining" {
		t.Fatalf("draining readiness = %d %v, want 503 draining", code, m)
	}
	// Draining readiness hints the handoff scale, not the shed
	// backoff: drainRetryAfter is 5s, so the header is "5".
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if ra := resp.Header.Get("Retry-After"); ra != "5" {
			t.Errorf("draining Retry-After = %q, want %q", ra, "5")
		}
	}
	if !s.Stats().Resilience.Draining {
		t.Error("stats must report draining")
	}
	resp, err := http.Get(ts.URL + "/livez")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("livez while draining = %d, want 200 (still alive)", resp.StatusCode)
	}
}

// TestInflightDefault: the gate defaults to max(64, 8×workers).
func TestInflightDefault(t *testing.T) {
	s := NewService(Config{Workers: 2})
	defer s.Close()
	if got := s.Stats().Resilience.MaxInflight; got != 64 {
		t.Errorf("default max_inflight = %d, want 64", got)
	}
	s2 := NewService(Config{Workers: 16})
	defer s2.Close()
	if got := s2.Stats().Resilience.MaxInflight; got != 128 {
		t.Errorf("max_inflight at 16 workers = %d, want 128", got)
	}
}
