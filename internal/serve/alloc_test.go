package serve

import (
	"bytes"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"sortnets/internal/network"
)

// discardRW is a reusable no-op ResponseWriter, so the allocation
// guards measure the serve path, not the test recorder.
type discardRW struct {
	h      http.Header
	status int
}

func (w *discardRW) Header() http.Header         { return w.h }
func (w *discardRW) Write(p []byte) (int, error) { return len(p), nil }
func (w *discardRW) WriteHeader(s int)           { w.status = s }

// TestNDJSONPerLineAllocsSteadyState is the zero-alloc regression
// guard for the batched serve path: at steady state (pools warm,
// verdict cache hit) the whole NDJSON pipeline — read, decode,
// DoBatch, encode, write — must stay under a small constant number of
// allocations per request line. The bound is ~2x the measured value
// (≈4.3/line on go1.24: cache key, entry bookkeeping, dedup map) so
// it catches a regression to per-line marshaling (tens of allocs per
// line), not scheduler noise.
func TestNDJSONPerLineAllocsSteadyState(t *testing.T) {
	svc := NewService(Config{Workers: 1})
	defer svc.Close()
	handler := svc.Handler()

	const lines = 64
	rng := rand.New(rand.NewSource(3))
	var body []byte
	for i := 0; i < lines; i++ {
		body = append(body, []byte(`{"network":"`+network.Random(8, 17, rng).Format()+`"}`+"\n")...)
	}

	req := httptest.NewRequest("POST", "/do", nil)
	req.Header.Set("Content-Type", "application/x-ndjson")
	rd := bytes.NewReader(body)
	w := &discardRW{h: make(http.Header)}
	serveOnce := func() {
		rd.Reset(body)
		req.Body = io.NopCloser(rd)
		for k := range w.h {
			delete(w.h, k)
		}
		w.status = 0
		handler.ServeHTTP(w, req)
		if w.status != 0 && w.status != http.StatusOK {
			t.Fatalf("status %d", w.status)
		}
	}
	// Warm: populate the verdict cache and the scratch pools.
	serveOnce()
	serveOnce()

	perBatch := testing.AllocsPerRun(50, serveOnce)
	perLine := perBatch / lines
	t.Logf("steady-state: %.1f allocs per 64-line batch, %.2f per line", perBatch, perLine)
	if perLine > 8 {
		t.Fatalf("NDJSON hot path allocates %.2f per line (%.1f per 64-line batch); the zero-alloc serve path has regressed", perLine, perBatch)
	}
}
