package serve

import (
	"context"
	"errors"
	"net/http"
	"time"

	"sortnets"
)

// Admission control: the service refuses to melt. A bounded in-flight
// gate caps the requests allowed past the HTTP layer at once; a
// caller that cannot get a slot within the queue-wait deadline is
// SHED with 429 + Retry-After (single-shot) or a per-line 429
// (NDJSON) instead of joining an unbounded convoy whose latency
// collapses for everyone. Per-request compute timeouts convert a
// pathologically expensive verdict into a 504 for its caller instead
// of a slot leak, and every Session call is panic-fenced: an engine
// panic becomes an error response on a surviving connection, never a
// dead process. Drain() flips readiness so load balancers and
// client Pools route away while in-flight work finishes.

// errShed is the admission gate's refusal; the HTTP layer maps it to
// 429 + Retry-After.
var errShed = errors.New("serve: admission gate full")

// shedRetryAfter is the Retry-After hint on shed responses: long
// enough for a convoy to clear, short enough that a healthy pool
// retries promptly.
const shedRetryAfter = 1 * time.Second

// drainRetryAfter is the Retry-After hint on draining readiness: the
// process is going away, so the hint is the handoff scale (balancer
// re-resolve, deploy overlap), not the momentary shed backoff.
const drainRetryAfter = 5 * time.Second

// acquire takes one in-flight slot, waiting at most the configured
// queue-wait. It returns errShed when the service is saturated (the
// caller should be shed) or ctx.Err() when the caller left the queue.
func (s *Service) acquire(ctx context.Context) error {
	select {
	case s.slots <- struct{}{}:
		s.inflight.Add(1)
		return nil
	default:
	}
	t := time.NewTimer(s.queueWait)
	defer t.Stop()
	select {
	case s.slots <- struct{}{}:
		s.inflight.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		s.shed.Add(1)
		return errShed
	}
}

func (s *Service) release() {
	s.inflight.Add(-1)
	<-s.slots
}

// Draining reports whether Drain has been called.
func (s *Service) Draining() bool { return s.draining.Load() }

// Drain flips the service into lame-duck mode: /healthz (readiness)
// starts answering 503 {"status":"draining"} so probers and client
// Pools route away, and NDJSON streams end after their in-flight
// chunk. In-flight requests are NOT interrupted — the caller
// (cmd/sortnetd) keeps serving until they finish, then closes
// listeners under its hard deadline.
func (s *Service) Drain() { s.draining.Store(true) }

// computeCtx derives the context a Session call runs under: the
// request context bounded by the configured per-request compute
// timeout (0 = none).
func (s *Service) computeCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.cfg.ComputeTimeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, s.cfg.ComputeTimeout)
}

// do is the admission-controlled, panic-fenced form of Session.Do
// used by every single-shot endpoint.
func (s *Service) do(ctx context.Context, req sortnets.Request) (v *sortnets.Verdict, err error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	cctx, cancel := s.computeCtx(ctx)
	defer cancel()
	defer s.recoverPanic(&err)
	v, err = s.sess.Do(cctx, req)
	return v, s.mapComputeErr(ctx, cctx, err)
}

// doBatch is the admission-controlled, panic-fenced form of
// Session.DoBatch used by the NDJSON chunk pipeline. One slot covers
// the whole chunk: the Session bounds intra-batch concurrency itself,
// so the gate's unit of admission is the grouped pass.
func (s *Service) doBatch(ctx context.Context, reqs []sortnets.Request) (vs []*sortnets.Verdict, err error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	cctx, cancel := s.computeCtx(ctx)
	defer cancel()
	defer s.recoverPanic(&err)
	vs, err = s.sess.DoBatch(cctx, reqs)
	return vs, s.mapComputeErr(ctx, cctx, err)
}

// recoverPanic fences a Session call: a panic that escapes it (the
// compute pool already converts worker panics to *sortnets.PanicError;
// this catches the decode/canonicalize paths that run on the handler
// goroutine) becomes an error on a surviving connection.
func (s *Service) recoverPanic(err *error) {
	if r := recover(); r != nil {
		s.handlerPanics.Add(1)
		*err = &sortnets.PanicError{Val: r}
	}
}

// mapComputeErr distinguishes the compute timeout from the caller's
// own cancellation: when the derived compute context expired but the
// request context is still live, the verdict was too expensive — a
// 504, not a 499.
func (s *Service) mapComputeErr(reqCtx, computeCtx context.Context, err error) error {
	if err == nil || reqCtx.Err() != nil {
		return err
	}
	if errors.Is(err, context.DeadlineExceeded) && computeCtx.Err() != nil {
		s.computeTimeouts.Add(1)
		return &sortnets.RequestError{
			Status: http.StatusGatewayTimeout,
			Msg:    "verdict exceeded the server's compute deadline of " + s.cfg.ComputeTimeout.String(),
			// The request was legal, just expensive: a retry meets warm
			// caches, so the hint is the shed backoff, not the deadline.
			RetryAfter: RetryAfterSeconds(shedRetryAfter),
		}
	}
	return err
}
