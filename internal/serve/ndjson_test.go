package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"sortnets"
)

// postNDJSONBody posts raw bytes to /do as NDJSON and returns the
// decoded response lines.
func postNDJSONBody(t *testing.T, svc *Service, body []byte) []sortnets.BatchVerdict {
	t.Helper()
	req := httptest.NewRequest("POST", "/do", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/x-ndjson")
	rec := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("response content type %q", ct)
	}
	var lines []sortnets.BatchVerdict
	dec := json.NewDecoder(rec.Body)
	for dec.More() {
		var line sortnets.BatchVerdict
		if err := dec.Decode(&line); err != nil {
			t.Fatalf("undecodable response line %d: %v", len(lines), err)
		}
		lines = append(lines, line)
	}
	return lines
}

// TestNDJSONMixedLines: a stream mixing good requests, malformed
// JSON, unknown fields, trailing garbage, blank lines and a bad
// network must be answered line for line — errors per line, verdicts
// for the rest, ids echoed — without ever failing the connection.
func TestNDJSONMixedLines(t *testing.T) {
	svc := NewService(Config{Workers: 2})
	defer svc.Close()
	sorter4 := `n=4: [1,2][3,4][1,3][2,4][2,3]`
	body := strings.Join([]string{
		`{"id":"a","network":"` + sorter4 + `"}`,
		`{not json`,
		``,
		`{"id":"b","network":"n=4: [1,2]"} trailing`,
		`{"id":"c","op":"faults","network":"` + sorter4 + `"}`,
		`{"unknown_field":1}`,
		`{"id":"d","network":"n=4: [zap"}`,
		`{"id":"e","network":"` + sorter4 + `"}`, // duplicate of "a": deduped in-chunk
	}, "\n")
	lines := postNDJSONBody(t, svc, []byte(body))
	if len(lines) != 7 { // the blank line is skipped
		t.Fatalf("%d response lines, want 7: %+v", len(lines), lines)
	}
	wantErr := map[int]bool{1: true, 2: true, 4: true, 5: true}
	wantID := map[int]string{0: "a", 3: "c", 6: "e"}
	for i, line := range lines {
		if wantErr[i] {
			if line.Error == nil || line.Verdict != nil || line.Error.Status != 400 {
				t.Errorf("line %d: want a 400 error line, got %+v", i, line)
			}
			continue
		}
		if line.Verdict == nil || line.Error != nil {
			t.Errorf("line %d: want a verdict line, got %+v", i, line)
			continue
		}
		if line.ID != wantID[i] || line.Verdict.ID != wantID[i] {
			t.Errorf("line %d: ids %q/%q, want %q", i, line.ID, line.Verdict.ID, wantID[i])
		}
	}
	if lines[6].Source != "coalesced" || lines[6].Verdict.Digest != lines[0].Verdict.Digest {
		t.Errorf("in-chunk duplicate: source %q, digests %q vs %q",
			lines[6].Source, lines[6].Verdict.Digest, lines[0].Verdict.Digest)
	}
	st := svc.Stats()
	if st.Batch.Batches == 0 || st.Batch.Deduped != 1 {
		t.Errorf("batch stats not surfaced in /stats: %+v", st.Batch)
	}
}

// TestNDJSONOversizedLine: a line beyond the per-line bound is
// answered with a 400 and the stream continues at the next line.
func TestNDJSONOversizedLine(t *testing.T) {
	svc := NewService(Config{})
	defer svc.Close()
	huge := `{"network":"` + strings.Repeat("x", maxLineBytes) + `"}`
	body := huge + "\n" + `{"id":"after","network":"n=2: [1,2]"}` + "\n"
	lines := postNDJSONBody(t, svc, []byte(body))
	if len(lines) != 2 {
		t.Fatalf("%d response lines, want 2: %+v", len(lines), lines)
	}
	if lines[0].Error == nil || lines[0].Error.Status != 400 || !strings.Contains(lines[0].Error.Msg, "exceeds") {
		t.Fatalf("oversized line answer: %+v", lines[0])
	}
	if lines[1].Verdict == nil || lines[1].ID != "after" {
		t.Fatalf("line after the oversized one: %+v", lines[1])
	}
}

// TestNDJSONMatchesSingleRequestBytes: a verdict served over the
// batch protocol is the same Verdict the single-request /do endpoint
// returns, byte for byte once marshaled.
func TestNDJSONMatchesSingleRequestBytes(t *testing.T) {
	svc := NewService(Config{})
	defer svc.Close()
	reqBody := `{"network":"n=4: [1,2][3,4][1,3][2,4][2,3]"}`

	single := httptest.NewRequest("POST", "/do", strings.NewReader(reqBody))
	rec := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, single)
	if rec.Code != 200 {
		t.Fatalf("single status %d", rec.Code)
	}
	singleBytes := bytes.TrimSpace(rec.Body.Bytes())

	lines := postNDJSONBody(t, svc, []byte(reqBody+"\n"))
	if len(lines) != 1 || lines[0].Verdict == nil {
		t.Fatalf("batch lines: %+v", lines)
	}
	if lines[0].Source != "hit" {
		t.Errorf("second trip over one cache: source %q, want hit", lines[0].Source)
	}
	batchBytes, err := sortnets.MarshalVerdict(lines[0].Verdict)
	if err != nil {
		t.Fatal(err)
	}
	if string(batchBytes) != string(singleBytes) {
		t.Fatalf("verdict bytes diverge:\nsingle: %s\nbatch:  %s", singleBytes, batchBytes)
	}
}

// TestNDJSONContentTypeSpellings: media types are case-insensitive
// and may carry parameters; every legal spelling must reach the
// batch path, and an all-malformed chunk must not count as a batch.
func TestNDJSONContentTypeSpellings(t *testing.T) {
	svc := NewService(Config{})
	defer svc.Close()
	for _, ct := range []string{
		"application/x-ndjson",
		"Application/X-NDJSON",
		"application/x-ndjson; charset=utf-8",
	} {
		req := httptest.NewRequest("POST", "/do", strings.NewReader("{bad\n"))
		req.Header.Set("Content-Type", ct)
		rec := httptest.NewRecorder()
		svc.Handler().ServeHTTP(rec, req)
		var line sortnets.BatchVerdict
		if err := json.Unmarshal(bytes.TrimSpace(rec.Body.Bytes()), &line); err != nil || line.Error == nil {
			t.Errorf("content type %q not routed to the batch path: status %d body %s", ct, rec.Code, rec.Body.Bytes())
		}
	}
	if b := svc.Stats().Batch.Batches; b != 0 {
		t.Errorf("all-malformed chunks counted %d batches, want 0", b)
	}
}

// TestReadLine pins the per-line reader: CRLF trimming, unterminated
// final lines, and too-long discard that resumes cleanly.
func TestReadLine(t *testing.T) {
	br := bufio.NewReaderSize(strings.NewReader("ab\r\n"+strings.Repeat("z", 100)+"\ncd"), 16)
	line, tooLong, err := readLine(br, nil, 50)
	if string(line) != "ab" || tooLong || err != nil {
		t.Fatalf("line 1: %q %v %v", line, tooLong, err)
	}
	line, tooLong, err = readLine(br, nil, 50)
	if !tooLong || err != nil {
		t.Fatalf("line 2: %q %v %v", line, tooLong, err)
	}
	line, tooLong, err = readLine(br, nil, 50)
	if string(line) != "cd" || tooLong || err == nil {
		t.Fatalf("line 3: %q %v %v", line, tooLong, err)
	}
}

// FuzzNDJSONBatch is the satellite fuzz target: arbitrary bytes fed
// to the NDJSON endpoint must never panic or tear down the handler,
// and every response line must be a well-formed BatchVerdict carrying
// exactly one of verdict or error.
func FuzzNDJSONBatch(f *testing.F) {
	f.Add([]byte(`{"network":"n=4: [1,2][3,4][1,3][2,4][2,3]"}` + "\n"))
	f.Add([]byte("{not json\n\n{}\n"))
	f.Add([]byte(`{"op":"minset","network":"n=3: [1,2][2,3][1,2]","exact":true}` + "\n{\n"))
	f.Add([]byte(`{"id":"x","lines":2,"comparators":[[2,1]]}` + "\n"))
	f.Add(bytes.Repeat([]byte("a"), 4096))
	svc := NewService(Config{Workers: 1, MaxLines: 10, MaxFaultLines: 6})
	f.Cleanup(svc.Close)
	handler := svc.Handler()
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/do", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/x-ndjson")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req) // must not panic
		if rec.Code != 200 {
			t.Fatalf("status %d on %q", rec.Code, body)
		}
		dec := json.NewDecoder(rec.Body)
		for i := 0; dec.More(); i++ {
			var line sortnets.BatchVerdict
			if err := dec.Decode(&line); err != nil {
				t.Fatalf("line %d undecodable: %v", i, err)
			}
			if (line.Verdict == nil) == (line.Error == nil) {
				t.Fatalf("line %d: want exactly one of verdict/error: %+v", i, line)
			}
		}
	})
}
