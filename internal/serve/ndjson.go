package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"

	"sortnets"
)

// NDJSON streaming: POST /do with Content-Type application/x-ndjson
// carries one sortnets.Request per line and is answered, on the same
// connection, by one sortnets.BatchVerdict per line in request order
// (correlate by order, or by the echoed id when entries are tagged).
// The handler reads adaptively — whatever lines the client has
// pipelined are swept into one Session.DoBatch call (bounded by
// maxChunkLines), so interactive callers get per-line latency while
// pipelined load gets batch-sized dedup and grouped evaluation — and
// flushes after every chunk. A malformed or oversized line yields a
// per-line RequestError verdict and never tears down the connection:
// the stream continues with the next line.

// maxChunkLines bounds how many pipelined lines feed one DoBatch
// call; it caps handler memory, not the stream length (a connection
// may carry any number of chunks).
const maxChunkLines = 256

// maxLineBytes bounds one NDJSON line, matching the single-request
// body bound. Longer lines are discarded to the newline and answered
// with a per-line 400.
const maxLineBytes = maxBodyBytes

// ndjsonContentType reports whether the request declares an NDJSON
// body (application/x-ndjson, case-insensitive, with or without
// parameters — media types are case-insensitive per RFC 7231).
func ndjsonContentType(r *http.Request) bool {
	mt, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	return err == nil && mt == "application/x-ndjson"
}

// serveNDJSON streams batch verdicts for one NDJSON connection.
func (s *Service) serveNDJSON(w http.ResponseWriter, r *http.Request) {
	// Full duplex lets us write response lines while the client is
	// still streaming request lines (HTTP/1.1 pipelining). Best
	// effort: on transports that don't support it, the handler still
	// works for clients that send the whole body first.
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)

	br := bufio.NewReaderSize(r.Body, 64<<10)
	enc := json.NewEncoder(w)
	for {
		chunk, done := s.readChunk(br)
		if len(chunk) > 0 && !s.writeChunk(r, enc, chunk) {
			return
		}
		if len(chunk) > 0 {
			_ = rc.Flush()
		}
		if done {
			return
		}
	}
}

// chunkLine is one decoded (or rejected) request line awaiting its
// response line.
type chunkLine struct {
	req sortnets.Request
	err *sortnets.RequestError // decode failure: answered without a Session trip
}

// readChunk reads one adaptive chunk: it blocks for the first line,
// then keeps sweeping lines while the reader has buffered bytes, up
// to maxChunkLines. done reports end of body (EOF or a read error —
// either way the connection has no more requests).
func (s *Service) readChunk(br *bufio.Reader) (chunk []chunkLine, done bool) {
	for len(chunk) < maxChunkLines {
		if len(chunk) > 0 && br.Buffered() == 0 {
			return chunk, false // answer what's pipelined before blocking again
		}
		line, tooLong, err := readLine(br, maxLineBytes)
		if tooLong {
			s.rejected("")
			chunk = append(chunk, chunkLine{err: &sortnets.RequestError{
				Status: http.StatusBadRequest,
				Msg:    fmt.Sprintf("request line exceeds %d bytes", maxLineBytes),
			}})
			continue
		}
		if len(bytes.TrimSpace(line)) > 0 {
			chunk = append(chunk, s.decodeLine(line))
		}
		if err != nil {
			return chunk, true
		}
	}
	return chunk, false
}

// decodeLine decodes one request line, mapping failures to the
// per-line error form.
func (s *Service) decodeLine(line []byte) chunkLine {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	var req sortnets.Request
	if err := dec.Decode(&req); err != nil {
		s.rejected("")
		return chunkLine{err: &sortnets.RequestError{
			Status: http.StatusBadRequest,
			Msg:    fmt.Sprintf("bad request line: %v", err),
		}}
	}
	// Trailing garbage after the JSON value on one line is malformed
	// too (a second value belongs on its own line).
	if _, err := dec.Token(); err != io.EOF {
		s.rejected("")
		return chunkLine{err: &sortnets.RequestError{
			Status: http.StatusBadRequest,
			Msg:    "bad request line: trailing data after JSON value",
		}}
	}
	return chunkLine{req: req}
}

// writeChunk runs the chunk's decodable lines through one DoBatch and
// writes every line's response in order. It returns false when the
// connection is dead (context cancelled or a write failed).
func (s *Service) writeChunk(r *http.Request, enc *json.Encoder, chunk []chunkLine) bool {
	reqs := make([]sortnets.Request, 0, len(chunk))
	for i := range chunk {
		if chunk[i].err == nil {
			reqs = append(reqs, chunk[i].req)
		}
	}
	var verdicts []*sortnets.Verdict
	entryErrs := make([]error, len(reqs))
	if len(reqs) > 0 { // an all-malformed chunk never counts a batch
		var err error
		verdicts, err = s.sess.DoBatch(r.Context(), reqs)
		var be *sortnets.BatchError
		switch {
		case err == nil:
		case errors.As(err, &be):
			entryErrs = be.Errs
		default:
			// Whole-batch failure: the client is gone (context);
			// nothing left to write to.
			return false
		}
	}
	vi := 0
	for i := range chunk {
		var line sortnets.BatchVerdict
		if chunk[i].err != nil {
			line = sortnets.BatchVerdict{ID: chunk[i].req.ID, Error: chunk[i].err}
		} else {
			v, entryErr := verdicts[vi], entryErrs[vi]
			vi++
			switch {
			case entryErr != nil:
				var re *sortnets.RequestError
				if !errors.As(entryErr, &re) {
					re = &sortnets.RequestError{Status: http.StatusInternalServerError, Msg: entryErr.Error()}
				}
				line = sortnets.BatchVerdict{ID: chunk[i].req.ID, Error: re}
			default:
				line = sortnets.BatchVerdict{ID: v.ID, Verdict: v, Source: v.Source}
			}
		}
		if err := enc.Encode(&line); err != nil {
			return false
		}
	}
	return true
}

// readLine reads one newline-terminated line (without the newline),
// accumulating at most max bytes. Longer lines are consumed to their
// newline but reported tooLong with no content, so the stream can
// continue at the next line. err is non-nil at end of body; a final
// unterminated line is still returned.
func readLine(br *bufio.Reader, max int) (line []byte, tooLong bool, err error) {
	for {
		frag, ferr := br.ReadSlice('\n')
		if !tooLong {
			if len(line)+len(frag) > max {
				tooLong, line = true, nil
			} else {
				line = append(line, frag...)
			}
		}
		switch ferr {
		case nil:
			if !tooLong {
				line = bytes.TrimSuffix(line, []byte("\n"))
				line = bytes.TrimSuffix(line, []byte("\r"))
			}
			return line, tooLong, nil
		case bufio.ErrBufferFull:
			continue
		default:
			return line, tooLong, ferr
		}
	}
}
