package serve

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"

	"sortnets"
)

// NDJSON streaming: POST /do with Content-Type application/x-ndjson
// carries one sortnets.Request per line and is answered, on the same
// connection, by one sortnets.BatchVerdict per line in request order
// (correlate by order, or by the echoed id when entries are tagged).
// The handler reads adaptively — whatever lines the client has
// pipelined are swept into one Session.DoBatch call (bounded by
// maxChunkLines), so interactive callers get per-line latency while
// pipelined load gets batch-sized dedup and grouped evaluation — and
// flushes after every chunk. A malformed or oversized line yields a
// per-line RequestError verdict and never tears down the connection:
// the stream continues with the next line.
//
// The pipeline is allocation-free at steady state: every connection
// checks one connScratch out of a pool — the line buffer, decoded
// chunk, request/error slices, response encode buffer and the 64 KiB
// body reader all live there and are reused across chunks and across
// connections. Request lines decode through the hand-rolled
// sortnets.UnmarshalRequestLine (same strict semantics as the old
// json.Decoder path); response lines encode through
// sortnets.AppendBatchVerdict (byte-identical to encoding/json) into
// one buffer written with a single Write per chunk.

// maxChunkLines bounds how many pipelined lines feed one DoBatch
// call; it caps handler memory, not the stream length (a connection
// may carry any number of chunks).
const maxChunkLines = 256

// maxLineBytes bounds one NDJSON line, matching the single-request
// body bound. Longer lines are discarded to the newline and answered
// with a per-line 400.
const maxLineBytes = maxBodyBytes

// connScratch is the per-connection working set. Everything a chunk
// cycle touches lives here so the steady-state serve path performs no
// per-line or per-chunk allocation.
type connScratch struct {
	br        *bufio.Reader
	line      []byte
	chunk     []chunkLine
	reqs      []sortnets.Request
	entryErrs []error
	out       []byte

	// accounted is this scratch's last contribution to the
	// pooledBytes gauge; the finalizer retires it when the pool drops
	// the scratch. It is a separate allocation so the finalizer
	// closure does not retain the scratch.
	accounted *int64
}

// pooledBytes gauges the buffer bytes currently parked in (or checked
// out of) the connection-scratch pool, surfaced on /stats as
// pooled_bytes.
var pooledBytes atomic.Int64

var scratchPool = sync.Pool{New: func() any {
	sc := &connScratch{
		br:        bufio.NewReaderSize(nil, 64<<10),
		accounted: new(int64),
	}
	acct := sc.accounted
	runtime.SetFinalizer(sc, func(*connScratch) {
		pooledBytes.Add(-atomic.LoadInt64(acct))
	})
	return sc
}}

// size reports the retained buffer bytes (the reader's fixed 64 KiB
// plus the grown slices).
func (sc *connScratch) size() int64 {
	return int64(64<<10 + cap(sc.line) + cap(sc.out) +
		cap(sc.chunk)*int(unsafeSizeofChunkLine) +
		cap(sc.reqs)*int(unsafeSizeofRequest) +
		cap(sc.entryErrs)*16)
}

// Element sizes for the gauge, kept as constants so size() stays
// arithmetic (unsafe.Sizeof would drag unsafe into the import graph
// for a stats nicety; these only need to be order-of-magnitude
// honest).
const (
	unsafeSizeofChunkLine = 136
	unsafeSizeofRequest   = 128
)

func getScratch(body io.Reader) *connScratch {
	sc := scratchPool.Get().(*connScratch)
	sc.br.Reset(body)
	return sc
}

func putScratch(sc *connScratch) {
	sc.br.Reset(nil)
	n := sc.size()
	pooledBytes.Add(n - atomic.LoadInt64(sc.accounted))
	atomic.StoreInt64(sc.accounted, n)
	scratchPool.Put(sc)
}

// PooledBytes reports the gauge (exported for /stats).
func PooledBytes() int64 { return pooledBytes.Load() }

// ndjsonContentType reports whether the request declares an NDJSON
// body (application/x-ndjson, case-insensitive, with or without
// parameters — media types are case-insensitive per RFC 7231).
func ndjsonContentType(r *http.Request) bool {
	mt, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	return err == nil && mt == "application/x-ndjson"
}

// serveNDJSON streams batch verdicts for one NDJSON connection.
func (s *Service) serveNDJSON(w http.ResponseWriter, r *http.Request) {
	// Full duplex lets us write response lines while the client is
	// still streaming request lines (HTTP/1.1 pipelining). Best
	// effort: on transports that don't support it, the handler still
	// works for clients that send the whole body first.
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)

	sc := getScratch(r.Body)
	defer putScratch(sc)
	for {
		done := s.readChunk(sc)
		if len(sc.chunk) > 0 && !s.writeChunk(r, w, sc) {
			return
		}
		if len(sc.chunk) > 0 {
			_ = rc.Flush()
		}
		if done {
			return
		}
		// A draining server finishes the chunk in flight, then ends
		// the stream: the client sees a short response, and its Pool
		// re-sends the unanswered remainder to a backend whose
		// readiness probe still passes.
		if s.draining.Load() {
			return
		}
	}
}

// chunkLine is one decoded (or rejected) request line awaiting its
// response line.
type chunkLine struct {
	req sortnets.Request
	err *sortnets.RequestError // decode failure: answered without a Session trip
}

// readChunk reads one adaptive chunk into sc.chunk: it blocks for the
// first line, then keeps sweeping lines while the reader has buffered
// bytes, up to maxChunkLines. done reports end of body (EOF or a read
// error — either way the connection has no more requests).
// lineTooLongErr is the fixed per-line 400 for oversized lines. The
// message never varies, so one shared error serves every rejection
// instead of formatting (and allocating) it per line — the line-length
// rejection path is client-drivable at line rate.
var lineTooLongErr = &sortnets.RequestError{
	Status: http.StatusBadRequest,
	Msg:    fmt.Sprintf("request line exceeds %d bytes", maxLineBytes),
}

func (s *Service) readChunk(sc *connScratch) (done bool) {
	sc.chunk = sc.chunk[:0]
	for len(sc.chunk) < maxChunkLines {
		if len(sc.chunk) > 0 && sc.br.Buffered() == 0 {
			return false // answer what's pipelined before blocking again
		}
		var tooLong bool
		var err error
		sc.line, tooLong, err = readLine(sc.br, sc.line[:0], maxLineBytes)
		if tooLong {
			s.rejected("")
			sc.chunk = append(sc.chunk, chunkLine{err: lineTooLongErr})
			continue
		}
		if len(bytes.TrimSpace(sc.line)) > 0 {
			sc.chunk = append(sc.chunk, chunkLine{})
			s.decodeLine(sc.line, &sc.chunk[len(sc.chunk)-1])
		}
		if err != nil {
			return true
		}
	}
	return false
}

// decodeLine decodes one request line into cl, mapping failures to
// the per-line error form. The target is reused scratch; the decoder
// fully resets it.
func (s *Service) decodeLine(line []byte, cl *chunkLine) {
	cl.err = nil
	if err := sortnets.UnmarshalRequestLine(line, &cl.req); err != nil {
		s.rejected("")
		cl.err = &sortnets.RequestError{
			Status: http.StatusBadRequest,
			Msg:    fmt.Sprintf("bad request line: %v", err),
		}
	}
}

// writeChunk runs the chunk's decodable lines through one DoBatch,
// encodes every line's response in request order into the scratch
// buffer, and writes it with one Write. It returns false when the
// connection is dead (context cancelled or a write failed).
func (s *Service) writeChunk(r *http.Request, w io.Writer, sc *connScratch) bool {
	sc.reqs = sc.reqs[:0]
	for i := range sc.chunk {
		if sc.chunk[i].err == nil {
			sc.reqs = append(sc.reqs, sc.chunk[i].req)
		}
	}
	if cap(sc.entryErrs) < len(sc.reqs) {
		sc.entryErrs = make([]error, len(sc.reqs))
	} else {
		sc.entryErrs = sc.entryErrs[:len(sc.reqs)]
		for i := range sc.entryErrs {
			sc.entryErrs[i] = nil
		}
	}
	entryErrs := sc.entryErrs
	var verdicts []*sortnets.Verdict
	if len(sc.reqs) > 0 { // an all-malformed chunk never counts a batch
		var err error
		verdicts, err = s.doBatch(r.Context(), sc.reqs)
		var be *sortnets.BatchError
		switch {
		case err == nil:
		case errors.As(err, &be):
			entryErrs = be.Errs
		case r.Context().Err() != nil:
			// Whole-batch failure with the client gone: nothing left
			// to write to.
			return false
		default:
			// Whole-batch failure on a LIVE connection — shed by the
			// admission gate, the compute deadline, or a recovered
			// panic. Answer every line with the typed error and keep
			// the stream open: the client's Pool re-sends just these
			// entries elsewhere.
			re := wholeBatchError(err)
			verdicts = make([]*sortnets.Verdict, len(sc.reqs))
			for i := range entryErrs {
				entryErrs[i] = re
			}
		}
	}
	sc.out = sc.out[:0]
	vi := 0
	for i := range sc.chunk {
		var line sortnets.BatchVerdict
		if sc.chunk[i].err != nil {
			line = sortnets.BatchVerdict{ID: sc.chunk[i].req.ID, Error: sc.chunk[i].err}
		} else {
			v, entryErr := verdicts[vi], entryErrs[vi]
			vi++
			switch {
			case entryErr != nil:
				var re *sortnets.RequestError
				if !errors.As(entryErr, &re) {
					re = &sortnets.RequestError{Status: http.StatusInternalServerError, Msg: entryErr.Error()}
				}
				line = sortnets.BatchVerdict{ID: sc.chunk[i].req.ID, Error: re}
			default:
				line = sortnets.BatchVerdict{ID: v.ID, Verdict: v, Source: v.Source}
			}
		}
		sc.out = sortnets.AppendBatchVerdict(sc.out, &line)
		sc.out = append(sc.out, '\n')
	}
	_, err := w.Write(sc.out)
	return err == nil
}

// wholeBatchError maps a whole-batch failure on a live NDJSON
// connection to the per-line error every entry in the chunk gets.
func wholeBatchError(err error) *sortnets.RequestError {
	var re *sortnets.RequestError
	switch {
	case errors.Is(err, errShed):
		return &sortnets.RequestError{
			Status:     http.StatusTooManyRequests,
			Msg:        "server saturated; retry after " + shedRetryAfter.String(),
			RetryAfter: RetryAfterSeconds(shedRetryAfter),
		}
	case errors.As(err, &re):
		return re
	default:
		return &sortnets.RequestError{Status: http.StatusInternalServerError, Msg: err.Error()}
	}
}

// readLine reads one newline-terminated line (without the newline)
// into buf, accumulating at most max bytes. Longer lines are consumed
// to their newline but reported tooLong with no content, so the
// stream can continue at the next line. err is non-nil at end of
// body; a final unterminated line is still returned.
//
//sortnets:hotpath
func readLine(br *bufio.Reader, buf []byte, max int) (line []byte, tooLong bool, err error) {
	line = buf
	for {
		frag, ferr := br.ReadSlice('\n')
		if !tooLong {
			if len(line)+len(frag) > max {
				tooLong, line = true, line[:0]
			} else {
				line = append(line, frag...)
			}
		}
		switch ferr {
		case nil:
			if !tooLong {
				line = bytes.TrimSuffix(line, []byte("\n"))
				line = bytes.TrimSuffix(line, []byte("\r"))
			}
			return line, tooLong, nil
		case bufio.ErrBufferFull:
			continue
		default:
			return line, tooLong, ferr
		}
	}
}
