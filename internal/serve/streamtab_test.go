package serve

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"sortnets"
	"sortnets/internal/core"
	"sortnets/internal/streamtab"
)

// TestStreamTabDirServesIdenticalVerdicts wires a table directory
// through serve.Config and checks the HTTP verdict is byte-identical
// to a live-enumeration service — the operator-facing face of the
// "tables change nothing but the work" contract.
func TestStreamTabDirServesIdenticalVerdicts(t *testing.T) {
	dir := t.TempDir()
	if _, err := streamtab.Write(dir, streamtab.Header{Property: "sorter", N: 4}, core.SorterBinaryTests(4)); err != nil {
		t.Fatal(err)
	}

	body := `{"network":"n=4: [1,2][3,4][1,3][2,4][2,3]"}`
	serve := func(cfg Config) string {
		svc := NewService(cfg)
		defer svc.Close()
		req := httptest.NewRequest("POST", "/verify", strings.NewReader(body))
		rec := httptest.NewRecorder()
		svc.Handler().ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
		return rec.Body.String()
	}

	plain := serve(Config{Workers: 1})
	tabbed := serve(Config{Workers: 1, StreamTabDir: dir})
	if plain != tabbed {
		t.Fatalf("verdicts diverge\nlive:   %s\ntabbed: %s", plain, tabbed)
	}
	var v sortnets.Verdict
	if err := json.Unmarshal([]byte(tabbed), &v); err != nil {
		t.Fatal(err)
	}
	if v.Check == nil || !v.Check.Holds || v.Check.TestsRun != 11 {
		t.Fatalf("unexpected verdict: %s", tabbed)
	}
}
