// Package serve is the HTTP face of the sortnets.Session: a thin
// adapter that decodes request bodies into the shared
// sortnets.Request, calls Session.Do under the request's context
// (client disconnects cancel the underlying engines and release
// their pool slot), and encodes the shared sortnets.Verdict back.
// The service layer owns NO verdict logic of its own — caching,
// coalescing, canonicalization and computation all live in the
// Session, so the semantics are identical in-process and over the
// wire.
//
// The HTTP surface (http.go) exposes /do, /verify, /faults, /minset,
// /healthz and /stats.
package serve

import (
	"net/http"
	"sync/atomic"
	"time"

	"sortnets"
	"sortnets/internal/streamtab"
)

// Config sizes the service.
type Config struct {
	// Workers is the Session pool size; 0 or negative means
	// automatic (GOMAXPROCS). It bounds how many verdicts compute
	// concurrently.
	Workers int
	// CacheSize is the verdict-cache capacity in entries; ≤ 0 means
	// 4096.
	CacheSize int
	// MaxLines caps the line count accepted by verify requests (their
	// minimal test sets grow like 2ⁿ for sorters); ≤ 0 means 20.
	MaxLines int
	// MaxFaultLines caps the line count accepted by faults and minset
	// requests (fault detectability sweeps the 2ⁿ universe per
	// fault); ≤ 0 means 12.
	MaxFaultLines int
	// StreamTabDir, when non-empty, is a directory of persisted
	// minimal-test-stream tables (package streamtab); properties with
	// a valid table on disk replay its pre-enumerated stream instead
	// of live enumeration. Missing or invalid tables fall back
	// transparently.
	StreamTabDir string
	// MaxInflight bounds the requests admitted past the HTTP layer at
	// once (the in-flight gate's slot count); ≤ 0 means
	// max(64, 8 × workers). Callers beyond the bound wait up to
	// QueueWait for a slot and are then shed with 429 + Retry-After.
	MaxInflight int
	// QueueWait is how long an over-admission request may wait for an
	// in-flight slot before being shed; ≤ 0 means 100ms.
	QueueWait time.Duration
	// ComputeTimeout bounds each admitted request's computation;
	// exceeding it answers 504 and releases the slot. 0 disables.
	ComputeTimeout time.Duration
	// OnCompute, when set (tests only), runs on the Session's pool
	// worker immediately before each underlying computation.
	OnCompute func()
	// ShardID names this node in a cluster. It is stamped on outgoing
	// peer probes as the loop-prevention hop marker (client.PeerHeader)
	// and echoed on /stats. Optional — but set it whenever Peers is.
	ShardID string
	// Peers are sibling shard base URLs consulted fill-only (in this
	// order) on every verdict-cache miss before computing locally.
	// Empty disables the peer plane. See peer.go for the protocol.
	Peers []string
	// PeerTimeout bounds ONE miss's whole peer consultation (all peers
	// together); ≤ 0 means 100ms.
	PeerTimeout time.Duration
	// PeerHTTPClient substitutes the probes' *http.Client (tests).
	PeerHTTPClient *http.Client
}

// Service adapts HTTP to a sortnets.Session. Beyond decoding and
// encoding, it only keeps the per-endpoint count of requests that
// never reached the Session (wrong method, malformed body).
type Service struct {
	cfg    Config
	sess   *sortnets.Session
	tables *streamtab.Dir // non-nil iff cfg.StreamTabDir was set

	// httpRejected[op] counts requests rejected before Session.Do.
	httpRejected map[string]*atomic.Int64

	// Resilience plane (admission.go): the in-flight gate, drain
	// state, and the counters behind /stats "resilience".
	slots           chan struct{}
	queueWait       time.Duration
	draining        atomic.Bool
	inflight        atomic.Int64 // gauge: slots currently held
	shed            atomic.Int64 // requests refused with 429 by the gate
	retriesSeen     atomic.Int64 // requests carrying a client retry marker
	handlerPanics   atomic.Int64 // panics recovered on the handler goroutine
	computeTimeouts atomic.Int64 // requests answered 504 by ComputeTimeout

	// Cluster fill plane (peer.go): sibling probes in both directions.
	peer peerPlane
}

// NewService builds and starts a service; Close releases its
// Session's pool.
func NewService(cfg Config) *Service {
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 4096
	}
	opts := []sortnets.Option{
		sortnets.WithWorkers(cfg.Workers),
		sortnets.WithCache(cfg.CacheSize),
		sortnets.WithMaxLines(cfg.MaxLines),
		sortnets.WithMaxFaultLines(cfg.MaxFaultLines),
	}
	if cfg.OnCompute != nil {
		opts = append(opts, sortnets.WithComputeHook(cfg.OnCompute))
	}
	var tables *streamtab.Dir
	if cfg.StreamTabDir != "" {
		tables = streamtab.OpenDir(cfg.StreamTabDir)
		opts = append(opts, sortnets.WithStreamTables(tables))
	}
	s := &Service{
		cfg:    cfg,
		tables: tables,
		httpRejected: map[string]*atomic.Int64{
			sortnets.OpVerify: new(atomic.Int64),
			sortnets.OpFaults: new(atomic.Int64),
			sortnets.OpMinset: new(atomic.Int64),
		},
	}
	// The fill hook closes over s, so peers wire up before the Session
	// is built (the hook is only ever invoked by Session computes).
	s.initPeers()
	if len(s.peer.urls) > 0 {
		opts = append(opts, sortnets.WithPeerFill(s.peerFill))
	}
	s.sess = sortnets.NewSession(opts...)
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 8 * s.sess.Workers()
		if cfg.MaxInflight < 64 {
			cfg.MaxInflight = 64
		}
		s.cfg.MaxInflight = cfg.MaxInflight
	}
	if cfg.QueueWait <= 0 {
		s.cfg.QueueWait = 100 * time.Millisecond
	}
	s.slots = make(chan struct{}, s.cfg.MaxInflight)
	s.queueWait = s.cfg.QueueWait
	return s
}

// Session exposes the underlying Session (the same handle an
// in-process caller would use).
func (s *Service) Session() *sortnets.Session { return s.sess }

// Close stops the Session's pool workers and releases any stream-
// table mappings. No requests may be in flight.
func (s *Service) Close() {
	s.sess.Close()
	if s.tables != nil {
		s.tables.Close()
	}
}

// EndpointSnapshot is the per-endpoint slice of the /stats body.
type EndpointSnapshot struct {
	Requests  int64 `json:"requests"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Computes  int64 `json:"computes"`
	Canceled  int64 `json:"canceled"`
	Errors    int64 `json:"errors"`
}

// CacheSnapshot reports verdict-cache occupancy.
type CacheSnapshot struct {
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
	Evictions int64 `json:"evictions"`
}

// ResilienceSnapshot is the /stats "resilience" section: the
// admission gate, drain state, and failure-containment counters.
type ResilienceSnapshot struct {
	// Inflight is the gauge of requests currently holding an
	// admission slot, bounded by MaxInflight.
	Inflight    int64 `json:"inflight"`
	MaxInflight int   `json:"max_inflight"`
	// Shed counts requests refused with 429 + Retry-After because no
	// slot freed within the queue-wait deadline.
	Shed int64 `json:"shed"`
	// RetriesSeen counts arriving requests that carried a client
	// retry marker (X-Sortnetd-Retry) — failover/retry traffic as
	// observed from the serving side.
	RetriesSeen int64 `json:"retries_seen"`
	// PanicsRecovered counts engine panics converted into error
	// responses (pool workers and handler goroutines combined)
	// instead of a process death.
	PanicsRecovered int64 `json:"panics_recovered"`
	// ComputeTimeouts counts requests answered 504 by the
	// per-request compute deadline.
	ComputeTimeouts int64 `json:"compute_timeouts"`
	Draining        bool  `json:"draining"`
}

// StatsSnapshot is the /stats response body. Batch reports the NDJSON
// pipeline: batches/entries seen, entries deduplicated within a
// batch, and entries computed through a shared grouped engine pass.
// PooledBytes gauges the buffer bytes retained by the NDJSON
// connection-scratch pool.
type StatsSnapshot struct {
	Endpoints   map[string]EndpointSnapshot `json:"endpoints"`
	Batch       sortnets.BatchStats         `json:"batch"`
	Cache       CacheSnapshot               `json:"cache"`
	Workers     int                         `json:"workers"`
	PooledBytes int64                       `json:"pooled_bytes"`
	Resilience  ResilienceSnapshot          `json:"resilience"`
	Peer        PeerSnapshot                `json:"peer"`
}

// Stats returns a point-in-time snapshot: the Session's counters
// with the HTTP layer's pre-dispatch rejections folded into each
// endpoint's Requests and Errors.
func (s *Service) Stats() StatsSnapshot {
	ss := s.sess.Stats()
	eps := make(map[string]EndpointSnapshot, len(ss.Ops))
	for op, st := range ss.Ops {
		var rejected int64
		if c, ok := s.httpRejected[op]; ok {
			rejected = c.Load()
		}
		eps[op] = EndpointSnapshot{
			Requests:  st.Requests + rejected,
			Hits:      st.Hits,
			Misses:    st.Misses,
			Coalesced: st.Coalesced,
			Computes:  st.Computes,
			Canceled:  st.Canceled,
			Errors:    st.Errors + rejected,
		}
	}
	return StatsSnapshot{
		Endpoints: eps,
		Batch:     ss.Batch,
		Cache: CacheSnapshot{
			Entries:   ss.Cache.Entries,
			Capacity:  ss.Cache.Capacity,
			Evictions: ss.Cache.Evictions,
		},
		Workers:     ss.Workers,
		PooledBytes: PooledBytes(),
		Resilience: ResilienceSnapshot{
			Inflight:        s.inflight.Load(),
			MaxInflight:     s.cfg.MaxInflight,
			Shed:            s.shed.Load(),
			RetriesSeen:     s.retriesSeen.Load(),
			PanicsRecovered: ss.Panics + s.handlerPanics.Load(),
			ComputeTimeouts: s.computeTimeouts.Load(),
			Draining:        s.draining.Load(),
		},
		Peer: s.peerSnapshot(),
	}
}
