// Package serve is the long-running batch verification service over
// the compiled evaluation stack: canonical-digest result caching
// (internal/canon), request coalescing, and a sharded worker pool, in
// front of the verify / faults / search machinery. The HTTP surface
// (http.go) exposes /verify, /faults, /minset, /healthz and /stats.
//
// Caching contract: the verdict cache is keyed by (canonical digest,
// property, fault model) and stores the marshaled response body, so a
// cache hit replays a byte-identical verdict. Every computation that
// feeds the cache is deterministic (single-worker engines, stream-
// order counterexamples, deterministic greedy/solver tie-breaks), so
// a coalesced or recomputed verdict can never disagree with a cached
// one.
package serve

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync/atomic"

	"sortnets/internal/canon"
	"sortnets/internal/eval"
	"sortnets/internal/faults"
	"sortnets/internal/network"
	"sortnets/internal/verify"
)

// Config sizes the service.
type Config struct {
	// Workers is the shard count of the compute pool; ≤ 0 means
	// GOMAXPROCS. It bounds how many verdicts compute concurrently.
	Workers int
	// CacheSize is the verdict-cache capacity in entries; ≤ 0 means
	// 4096.
	CacheSize int
	// MaxLines caps the line count accepted by /verify (its minimal
	// test sets grow like 2ⁿ for sorters); ≤ 0 means 20.
	MaxLines int
	// MaxFaultLines caps the line count accepted by /faults and
	// /minset (fault detectability sweeps the 2ⁿ universe per fault);
	// ≤ 0 means 12.
	MaxFaultLines int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 4096
	}
	if c.MaxLines <= 0 {
		c.MaxLines = 20
	}
	if c.MaxFaultLines <= 0 {
		c.MaxFaultLines = 12
	}
	return c
}

// maxComparators bounds accepted circuit size (memory and compile
// time are linear in it; nothing legitimate is near this).
const maxComparators = 1 << 14

// EndpointStats counts one endpoint's traffic. All fields are
// atomics; read them through Snapshot.
type EndpointStats struct {
	Requests  atomic.Int64 // requests reaching the endpoint handler
	Hits      atomic.Int64 // served from the verdict cache
	Misses    atomic.Int64 // not in cache at arrival
	Coalesced atomic.Int64 // misses that joined an in-flight twin
	Computes  atomic.Int64 // underlying engine computations started
	Errors    atomic.Int64 // malformed requests or failed computes
}

// EndpointSnapshot is the JSON form of EndpointStats.
type EndpointSnapshot struct {
	Requests  int64 `json:"requests"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Computes  int64 `json:"computes"`
	Errors    int64 `json:"errors"`
}

func (s *EndpointStats) snapshot() EndpointSnapshot {
	return EndpointSnapshot{
		Requests:  s.Requests.Load(),
		Hits:      s.Hits.Load(),
		Misses:    s.Misses.Load(),
		Coalesced: s.Coalesced.Load(),
		Computes:  s.Computes.Load(),
		Errors:    s.Errors.Load(),
	}
}

// Stats aggregates the per-endpoint counters.
type Stats struct {
	Verify EndpointStats
	Faults EndpointStats
	Minset EndpointStats
}

// StatsSnapshot is the /stats response body.
type StatsSnapshot struct {
	Endpoints map[string]EndpointSnapshot `json:"endpoints"`
	Cache     CacheSnapshot               `json:"cache"`
	Workers   int                         `json:"workers"`
}

// CacheSnapshot reports verdict-cache occupancy.
type CacheSnapshot struct {
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
	Evictions int64 `json:"evictions"`
}

// Service is the verification service: parse/canonicalize requests,
// route them through the cache, the coalescing sharded pool, and the
// compiled-program cache, and shape JSON verdicts.
type Service struct {
	cfg   Config
	cache *lru[[]byte]        // verdict cache: key → response body
	progs *lru[*eval.Program] // digest → compiled healthy program
	pool  *pool
	stats Stats

	// onCompute, when set (tests only), runs on the shard worker
	// immediately before each underlying computation.
	onCompute func()
}

// NewService builds and starts a service; Close releases its pool.
func NewService(cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		cfg:   cfg,
		cache: newLRU[[]byte](cfg.CacheSize),
		progs: newLRU[*eval.Program](256),
		pool:  newPool(cfg.Workers),
	}
}

// Close stops the shard workers. No requests may be in flight.
func (s *Service) Close() { s.pool.close() }

// Stats returns a point-in-time snapshot of all counters.
func (s *Service) Stats() StatsSnapshot {
	return StatsSnapshot{
		Endpoints: map[string]EndpointSnapshot{
			"verify": s.stats.Verify.snapshot(),
			"faults": s.stats.Faults.snapshot(),
			"minset": s.stats.Minset.snapshot(),
		},
		Cache: CacheSnapshot{
			Entries:   s.cache.Len(),
			Capacity:  s.cache.Cap(),
			Evictions: s.cache.Evictions(),
		},
		Workers: s.cfg.Workers,
	}
}

// requestError is a client-side (4xx) failure.
type requestError struct {
	status int
	msg    string
}

func (e *requestError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &requestError{status: 400, msg: fmt.Sprintf(format, args...)}
}

// NetworkRequest is the network half of every request body: either
// the text form ("n=4: [1,3][2,4]...", standard comparators only) or
// an explicit lines + comparators pair list. The pair form is
// GENERALIZED: a pair [b,a] with b > a means min-to-b / max-to-a and
// is untangled into standard form. Circuits whose untangling leaves a
// non-identity lane relabeling are not equivalent to any standard
// network and are rejected.
type NetworkRequest struct {
	Network     string   `json:"network,omitempty"`
	Lines       int      `json:"lines,omitempty"`
	Comparators [][2]int `json:"comparators,omitempty"`
}

// resolve parses, untangles, canonicalizes and digests the request's
// network. maxLines is the endpoint's line-count cap and is enforced
// BEFORE any O(lines) allocation (Untangle's lane map, Normalize's
// layer schedule), so an absurd "n=2000000000:" request is rejected,
// not materialized. The returned network is the canonical
// (normalized) form.
func (r *NetworkRequest) resolve(maxLines int) (*network.Network, string, error) {
	var w *network.Network
	switch {
	case r.Network != "" && (r.Comparators != nil || r.Lines > 0):
		return nil, "", badRequest("give either network text or lines+comparators, not both")
	case r.Network != "":
		parsed, err := network.Parse(r.Network)
		if err != nil {
			return nil, "", badRequest("%v", err)
		}
		if parsed.N > maxLines {
			return nil, "", lineLimitError(parsed.N, maxLines)
		}
		w = parsed
	case r.Comparators != nil || r.Lines > 0:
		if r.Lines < 1 {
			return nil, "", badRequest("comparator form needs a positive lines count")
		}
		if r.Lines > maxLines {
			return nil, "", lineLimitError(r.Lines, maxLines)
		}
		// Validate in the client's 1-based coordinates before the
		// 0-based conversion, so diagnostics quote the pair as sent.
		pairs := make([][2]int, len(r.Comparators))
		for i, p := range r.Comparators {
			if p[0] < 1 || p[1] < 1 || p[0] > r.Lines || p[1] > r.Lines || p[0] == p[1] {
				return nil, "", badRequest("comparator %d [%d,%d] invalid on %d lines (lines are 1-based)",
					i, p[0], p[1], r.Lines)
			}
			pairs[i] = [2]int{p[0] - 1, p[1] - 1}
		}
		untangled, relabel, err := canon.Untangle(r.Lines, pairs)
		if err != nil {
			return nil, "", badRequest("%v", err)
		}
		if !canon.IsIdentity(relabel) {
			return nil, "", &requestError{status: 422, msg: fmt.Sprintf(
				"tangled network: outputs permuted by %v relative to any standard network (in particular it is not a sorter)", relabel)}
		}
		w = untangled
	default:
		return nil, "", badRequest("missing network")
	}
	if len(w.Comps) > maxComparators {
		return nil, "", badRequest("network has %d comparators, limit %d", len(w.Comps), maxComparators)
	}
	c, digest := canon.Canonicalize(w)
	return c, digest, nil
}

func lineLimitError(n, limit int) error {
	return badRequest("network has %d lines, service limit is %d", n, limit)
}

// program returns the compiled healthy program for a canonical
// network, sharing compilations across endpoints and properties via
// the digest-keyed program cache. Programs are immutable, so a cached
// one is safe for concurrent engines.
func (s *Service) program(digest string, w *network.Network) *eval.Program {
	if p, ok := s.progs.Get(digest); ok {
		return p
	}
	p := eval.Compile(w)
	s.progs.Add(digest, p)
	return p
}

// propertyFor maps the request's property name to a verify.Property.
func propertyFor(name string, n, k int) (verify.Property, error) {
	switch name {
	case "", "sorter":
		return verify.Sorter{N: n}, nil
	case "selector":
		if k < 1 || k > n {
			return nil, badRequest("selector needs 1 ≤ k ≤ n, got k=%d n=%d", k, n)
		}
		return verify.Selector{N: n, K: k}, nil
	case "merger":
		if n%2 != 0 {
			return nil, badRequest("merger property needs an even line count, network has %d", n)
		}
		return verify.Merger{N: n}, nil
	}
	return nil, badRequest("unknown property %q", name)
}

func detectModeFor(name string) (faults.DetectMode, error) {
	switch name {
	case "", "by-property":
		return faults.ByProperty, nil
	case "by-golden":
		return faults.ByGolden, nil
	}
	return 0, badRequest("unknown detection mode %q (want by-property or by-golden)", name)
}

// cached runs the cache → coalesce → compute pipeline for one request
// and returns the response body plus how it was obtained ("hit",
// "coalesced", or "miss"). compute must be deterministic: its body is
// stored and replayed byte-identically.
func (s *Service) cached(ep *EndpointStats, key string, compute func() ([]byte, error)) ([]byte, string, error) {
	if body, ok := s.cache.Get(key); ok {
		ep.Hits.Add(1)
		return body, "hit", nil
	}
	ep.Misses.Add(1)
	body, coalesced, err := s.pool.do(key, func() ([]byte, error) {
		// Re-check the cache from inside the registered call: a twin
		// that was in flight during our lookup may have filled the
		// cache and left the inflight table in the gap before our
		// registration. Its Add happens before its deregistration, so
		// if we registered fresh, the result is already visible here —
		// without this, two "concurrent identical" requests could both
		// compute.
		if body, ok := s.cache.Get(key); ok {
			return body, nil
		}
		ep.Computes.Add(1)
		body, err := compute()
		if err == nil {
			// Fill the cache on the shard worker, before the in-flight
			// entry is dropped, so there is no window where neither
			// the cache nor the inflight table knows the result.
			s.cache.Add(key, body)
		}
		return body, err
	}, s.onCompute, func() { ep.Coalesced.Add(1) })
	if coalesced {
		return body, "coalesced", err
	}
	return body, "miss", err
}

// VerifyRequest asks for a property verdict.
type VerifyRequest struct {
	NetworkRequest
	Property   string `json:"property,omitempty"`
	K          int    `json:"k,omitempty"`
	Exhaustive bool   `json:"exhaustive,omitempty"` // ground-truth 2ⁿ sweep instead of the minimal test set
}

// VerifyResponse is the /verify verdict.
type VerifyResponse struct {
	Digest         string `json:"digest"`
	Property       string `json:"property"`
	Exhaustive     bool   `json:"exhaustive,omitempty"`
	Holds          bool   `json:"holds"`
	TestsRun       int    `json:"testsRun"`
	Counterexample string `json:"counterexample,omitempty"`
	Output         string `json:"output,omitempty"`
}

func (s *Service) verify(req *VerifyRequest) ([]byte, string, error) {
	w, digest, err := req.resolve(s.cfg.MaxLines)
	if err != nil {
		return nil, "", err
	}
	p, err := propertyFor(req.Property, w.N, req.K)
	if err != nil {
		return nil, "", err
	}
	key := fmt.Sprintf("verify|%s|%s|exhaustive=%v", digest, p.Name(), req.Exhaustive)
	return s.cached(&s.stats.Verify, key, func() ([]byte, error) {
		prog := s.program(digest, w)
		var r verify.Result
		if req.Exhaustive {
			r = verify.GroundTruthProgram(prog, p)
		} else {
			r = verify.VerdictProgram(prog, p)
		}
		resp := VerifyResponse{
			Digest:     digest,
			Property:   p.Name(),
			Exhaustive: req.Exhaustive,
			Holds:      r.Holds,
			TestsRun:   r.TestsRun,
		}
		if !r.Holds {
			resp.Counterexample = r.Counterexample.String()
			resp.Output = r.Output.String()
		}
		return json.Marshal(resp)
	})
}

// FaultsRequest asks for fault coverage of a property's minimal test
// set over the standard single-fault universe.
type FaultsRequest struct {
	NetworkRequest
	Property string `json:"property,omitempty"`
	K        int    `json:"k,omitempty"`
	Mode     string `json:"mode,omitempty"` // by-property | by-golden
}

// FaultsResponse is the /faults coverage report.
type FaultsResponse struct {
	Digest     string  `json:"digest"`
	Property   string  `json:"property"`
	Mode       string  `json:"mode"`
	Faults     int     `json:"faults"`
	Detectable int     `json:"detectable"`
	Detected   int     `json:"detected"`
	Coverage   float64 `json:"coverage"`
}

func (s *Service) faultReq(req *FaultsRequest) (*network.Network, string, verify.Property, faults.DetectMode, error) {
	w, digest, err := req.resolve(s.cfg.MaxFaultLines)
	if err != nil {
		return nil, "", nil, 0, err
	}
	p, err := propertyFor(req.Property, w.N, req.K)
	if err != nil {
		return nil, "", nil, 0, err
	}
	mode, err := detectModeFor(req.Mode)
	if err != nil {
		return nil, "", nil, 0, err
	}
	if mode == faults.ByProperty {
		if _, ok := p.(verify.Sorter); !ok {
			return nil, "", nil, 0, badRequest("by-property detection judges outputs as a sorter; use property=sorter or mode=by-golden")
		}
	}
	return w, digest, p, mode, nil
}

func (s *Service) faults(req *FaultsRequest) ([]byte, string, error) {
	w, digest, p, mode, err := s.faultReq(req)
	if err != nil {
		return nil, "", err
	}
	key := fmt.Sprintf("faults|%s|%s|%s", digest, p.Name(), mode)
	return s.cached(&s.stats.Faults, key, func() ([]byte, error) {
		golden := s.program(digest, w)
		rep := faults.MeasureWith(w, golden, faults.Enumerate(w), p.BinaryTests, mode)
		return json.Marshal(FaultsResponse{
			Digest:     digest,
			Property:   p.Name(),
			Mode:       mode.String(),
			Faults:     rep.Faults,
			Detectable: rep.Detectable,
			Detected:   rep.Detected,
			Coverage:   rep.Coverage(),
		})
	})
}

// MinsetRequest asks for a minimal subset of the property's test set
// that still detects every fault the full set detects.
type MinsetRequest struct {
	NetworkRequest
	Property string `json:"property,omitempty"`
	K        int    `json:"k,omitempty"`
	Mode     string `json:"mode,omitempty"`
	Exact    bool   `json:"exact,omitempty"` // exact hitting-set solve instead of greedy
}

// MinsetResponse is the /minset selection.
type MinsetResponse struct {
	Digest     string   `json:"digest"`
	Property   string   `json:"property"`
	Mode       string   `json:"mode"`
	Faults     int      `json:"faults"`
	Detectable int      `json:"detectable"`
	Detected   int      `json:"detected"`
	FullTests  int      `json:"fullTests"`
	Size       int      `json:"size"`
	Exact      bool     `json:"exact"`
	Tests      []string `json:"tests"`
}

// minsetNodeBudget caps the exact hitting-set branch and bound per
// request; exhausted budgets fall back to the (still valid) greedy
// witness with exact=false.
const minsetNodeBudget = 2_000_000

func (s *Service) minset(req *MinsetRequest) ([]byte, string, error) {
	fr := FaultsRequest{NetworkRequest: req.NetworkRequest, Property: req.Property, K: req.K, Mode: req.Mode}
	w, digest, p, mode, err := s.faultReq(&fr)
	if err != nil {
		return nil, "", err
	}
	key := fmt.Sprintf("minset|%s|%s|%s|exact=%v", digest, p.Name(), mode, req.Exact)
	return s.cached(&s.stats.Minset, key, func() ([]byte, error) {
		golden := s.program(digest, w)
		m := faults.DetectionMatrixWith(w, golden, faults.Enumerate(w), p.BinaryTests, mode)
		var picks []int
		exact := false
		if req.Exact {
			// Deterministic witness: the exact solver runs sequential.
			picks, exact = m.ExactMinimalDetectingSet(minsetNodeBudget, 1)
		}
		if picks == nil {
			picks = m.MinimalDetectingSet()
		}
		resp := MinsetResponse{
			Digest:     digest,
			Property:   p.Name(),
			Mode:       mode.String(),
			Faults:     len(m.Faults),
			Detectable: m.Detectable.Count(),
			Detected:   m.Detected().Count(),
			FullTests:  len(m.Tests),
			Size:       len(picks),
			Exact:      exact,
			Tests:      make([]string, 0, len(picks)),
		}
		for _, t := range picks {
			resp.Tests = append(resp.Tests, m.Tests[t].String())
		}
		return json.Marshal(resp)
	})
}
