package chaos

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(c, c)
				c.Close()
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func dial(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestChaosPassthrough: a fault-free plan forwards bytes unchanged in
// both directions.
func TestChaosPassthrough(t *testing.T) {
	ln := echoServer(t)
	p, err := New(ln.Addr().String(), Plan{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dial(t, p.Addr())
	msg := []byte("hello through the proxy")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echoed %q, want %q", got, msg)
	}
	if st := p.Stats(); st.Conns != 1 || st.Resets+st.Truncations+st.Blackholes != 0 {
		t.Errorf("unexpected stats: %+v", st)
	}
}

// TestChaosKillRestore: Kill cuts live connections and resets new
// ones; Restore resumes service — the backend process never moved.
func TestChaosKillRestore(t *testing.T) {
	ln := echoServer(t)
	p, err := New(ln.Addr().String(), Plan{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// A live connection dies on Kill.
	c := dial(t, p.Addr())
	c.Write([]byte("x"))
	buf := make([]byte, 1)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	p.Kill()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(buf); err == nil {
		t.Error("read on a killed connection should fail")
	}

	// New connections are cut while killed: either the dial itself or
	// the first round trip must fail.
	c2, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err == nil {
		c2.SetDeadline(time.Now().Add(2 * time.Second))
		_, werr := c2.Write([]byte("y"))
		var rerr error
		if werr == nil {
			_, rerr = c2.Read(buf)
		}
		if werr == nil && rerr == nil {
			t.Error("round trip through a killed proxy should fail")
		}
		c2.Close()
	}

	// Restore: full service again.
	p.Restore()
	c3 := dial(t, p.Addr())
	msg := []byte("back from the dead")
	c3.Write(msg)
	got := make([]byte, len(msg))
	c3.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c3, got); err != nil {
		t.Fatalf("after Restore: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("after Restore echoed %q, want %q", got, msg)
	}
}

// TestChaosReset: ResetProb 1 cuts every response mid-stream with an
// RST, and the campaign counts it.
func TestChaosReset(t *testing.T) {
	ln := echoServer(t)
	p, err := New(ln.Addr().String(), Plan{Seed: 7, ResetProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dial(t, p.Addr())
	c.Write([]byte("doomed"))
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	// The fragment itself may arrive before the RST lands; the
	// connection must die within the deadline either way.
	buf := make([]byte, 64)
	for {
		if _, err := c.Read(buf); err != nil {
			break
		}
	}
	if st := p.Stats(); st.Resets != 1 {
		t.Errorf("resets = %d, want 1", st.Resets)
	}
}

// TestChaosBlackhole: BlackholeProb 1 swallows the connection — bytes
// written, nothing ever answered.
func TestChaosBlackhole(t *testing.T) {
	ln := echoServer(t)
	p, err := New(ln.Addr().String(), Plan{Seed: 3, BlackholeProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dial(t, p.Addr())
	if _, err := c.Write([]byte("into the void")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Error("blackholed connection answered")
	}
	if st := p.Stats(); st.Blackholes != 1 {
		t.Errorf("blackholes = %d, want 1", st.Blackholes)
	}
}

// TestChaosDeterministicSchedule: equal seeds and equal traffic draw
// equal fault schedules; a different seed draws a different one
// (checked on a mix where both outcomes are possible).
func TestChaosDeterministicSchedule(t *testing.T) {
	run := func(seed int64) Stats {
		ln := echoServer(t)
		p, err := New(ln.Addr().String(), Plan{Seed: seed, ResetProb: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		// 8 sequential connections, one round trip each: the i-th
		// connection's fate depends only on (seed, i).
		for i := 0; i < 8; i++ {
			c, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			c.Write([]byte("ping"))
			c.SetReadDeadline(time.Now().Add(2 * time.Second))
			buf := make([]byte, 16)
			for {
				if _, err := c.Read(buf); err != nil {
					break
				}
				break // got the echo (or part of it); enough for the draw
			}
			c.Close()
		}
		return p.Stats()
	}
	a, b := run(42), run(42)
	if a != b {
		t.Errorf("same seed, different schedules: %+v vs %+v", a, b)
	}
	if a.Resets == 0 || a.Resets == a.Conns {
		t.Logf("note: seed 42 drew an extreme schedule (%d/%d resets)", a.Resets, a.Conns)
	}
}
