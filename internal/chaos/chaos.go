// Package chaos is a deterministic TCP fault-injection proxy: it sits
// between a client and a backend and misbehaves on purpose — injected
// latency, connection resets mid-line, partial writes, byte
// truncation, and blackholed connections — so the resilience plane
// (client.Pool failover, server shedding and drain) is exercised by
// repeatable failure campaigns instead of hand-waving.
//
// Determinism: every fault decision is drawn from a per-connection,
// per-direction RNG seeded by (Plan.Seed, connection index), and
// connection indexes are assigned in accept order. A single-client
// campaign replays the same fault schedule for the same seed; there
// is no global RNG whose draw order could race.
//
// Beyond the probabilistic plan, Kill/Restore model a backend dying
// and coming back: Kill hard-closes every proxied connection (RST,
// not FIN) and resets new ones at accept, exactly what a client sees
// when a node is SIGKILLed mid-run; Restore resumes normal service.
// The proxy is used from tests (go test -run Chaos) and from
// cmd/adversary -chaos.
package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Plan is one campaign's fault mix. Probabilities are per decision
// point: Blackhole per connection, the rest per forwarded fragment of
// the backend's response stream (the direction whose corruption
// actually exercises client-side recovery). Latency also applies,
// independently, to request fragments.
type Plan struct {
	// Seed roots every per-connection RNG; campaigns with equal seeds
	// and equal traffic replay equal fault schedules.
	Seed int64

	// Latency is injected before forwarding a fragment, with
	// probability LatencyProb.
	Latency     time.Duration
	LatencyProb float64

	// ResetProb hard-closes (RST) the client connection after
	// forwarding a response fragment — the mid-line cut.
	ResetProb float64

	// TruncateProb forwards only the first half of a response
	// fragment, then hard-closes — bytes lost mid-line.
	TruncateProb float64

	// PartialProb splits a response fragment into two writes with a
	// pause between them — exercising every reader's resume path.
	PartialProb float64

	// BlackholeProb swallows a whole connection: accepted, request
	// bytes read and discarded, nothing ever answered. The client's
	// response-header timeout or context deadline is what saves it.
	BlackholeProb float64
}

// Stats counts what the proxy actually did.
type Stats struct {
	Conns       int64 `json:"conns"`
	Killed      int64 `json:"killed"`      // connections refused or cut by Kill
	Blackholes  int64 `json:"blackholes"`  // connections swallowed whole
	Delays      int64 `json:"delays"`      // latency injections
	Resets      int64 `json:"resets"`      // mid-stream RSTs
	Truncations int64 `json:"truncations"` // fragments cut short (then RST)
	Partials    int64 `json:"partials"`    // fragments split in two
}

// Proxy is one listener fronting one backend address.
type Proxy struct {
	ln     net.Listener
	target string
	plan   Plan

	mu      sync.Mutex
	killed  bool
	conns   map[net.Conn]struct{}
	connSeq int64

	closed atomic.Bool
	wg     sync.WaitGroup

	conNs, kill, holes, delays, resets, truncs, partials atomic.Int64
}

// New starts a proxy on an ephemeral localhost port forwarding to
// target ("host:port"). Close releases it.
func New(target string, plan Plan) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, plan: plan, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listen address ("127.0.0.1:port").
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL is the proxy's address as an HTTP base URL.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// Kill simulates the backend dying: every proxied connection is
// hard-closed (RST) and new connections are reset at accept until
// Restore. The backend process itself is untouched — from the
// client's side the two are indistinguishable.
func (p *Proxy) Kill() {
	p.mu.Lock()
	p.killed = true
	for c := range p.conns {
		hardClose(c)
	}
	p.mu.Unlock()
}

// Restore resumes normal proxying after a Kill.
func (p *Proxy) Restore() {
	p.mu.Lock()
	p.killed = false
	p.mu.Unlock()
}

// Close shuts the proxy down: listener closed, live connections cut,
// goroutines joined.
func (p *Proxy) Close() {
	if !p.closed.CompareAndSwap(false, true) {
		return
	}
	p.ln.Close()
	p.mu.Lock()
	for c := range p.conns {
		hardClose(c)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// Stats snapshots the campaign so far.
func (p *Proxy) Stats() Stats {
	return Stats{
		Conns:       p.conNs.Load(),
		Killed:      p.kill.Load(),
		Blackholes:  p.holes.Load(),
		Delays:      p.delays.Load(),
		Resets:      p.resets.Load(),
		Truncations: p.truncs.Load(),
		Partials:    p.partials.Load(),
	}
}

func (p *Proxy) String() string {
	st := p.Stats()
	return fmt.Sprintf("chaos %s→%s: %d conns, %d killed, %d blackholed, %d delays, %d resets, %d truncations, %d partials",
		p.Addr(), p.target, st.Conns, st.Killed, st.Blackholes, st.Delays, st.Resets, st.Truncations, st.Partials)
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		if p.killed {
			p.mu.Unlock()
			p.kill.Add(1)
			hardClose(c)
			continue
		}
		idx := p.connSeq
		p.connSeq++
		p.conns[c] = struct{}{}
		p.mu.Unlock()
		p.conNs.Add(1)
		p.wg.Add(1)
		go p.handle(c, idx)
	}
}

// rngFor derives the deterministic RNG for one (connection,
// direction) pair; splitting by direction keeps the draw order
// independent of goroutine scheduling.
func (p *Proxy) rngFor(idx int64, direction int64) *rand.Rand {
	// SplitMix-style mixing so nearby (seed, idx) pairs don't
	// correlate their low bits.
	z := uint64(p.plan.Seed) + uint64(idx)*0x9E3779B97F4A7C15 + uint64(direction)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	return rand.New(rand.NewSource(int64(z)))
}

func (p *Proxy) unregister(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
	c.Close()
}

func (p *Proxy) handle(client net.Conn, idx int64) {
	defer p.wg.Done()
	defer p.unregister(client)

	hole := p.rngFor(idx, 2).Float64() < p.plan.BlackholeProb
	if hole {
		// Swallow the connection: read (so the client's writes
		// succeed) but never answer — the failure mode timeouts exist
		// for.
		p.holes.Add(1)
		io.Copy(io.Discard, client)
		return
	}
	server, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		hardClose(client)
		return
	}
	p.mu.Lock()
	if p.killed {
		p.mu.Unlock()
		hardClose(server)
		return
	}
	p.conns[server] = struct{}{}
	p.mu.Unlock()
	defer p.unregister(server)

	done := make(chan struct{}, 2)
	// Upstream (client → backend): latency only; corrupting requests
	// would test the backend's parser, not the client's resilience.
	go func() {
		p.pump(server, client, p.rngFor(idx, 0), false)
		if tc, ok := server.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	// Downstream (backend → client): the full fault mix.
	p.pump(client, server, p.rngFor(idx, 1), true)
	if tc, ok := client.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	<-done
}

// pump forwards src→dst fragment by fragment, applying the plan's
// faults (downstream only, latency in both directions). It returns
// when either side dies or a fault kills the connection.
func (p *Proxy) pump(dst, src net.Conn, rng *rand.Rand, faulty bool) {
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			frag := buf[:n]
			if p.plan.LatencyProb > 0 && rng.Float64() < p.plan.LatencyProb {
				p.delays.Add(1)
				time.Sleep(p.plan.Latency)
			}
			if faulty && !p.forward(dst, frag, rng) {
				return
			}
			if !faulty {
				if _, werr := dst.Write(frag); werr != nil {
					return
				}
			}
		}
		if err != nil {
			return
		}
	}
}

// forward writes one downstream fragment under the fault plan,
// reporting false when it killed the connection.
func (p *Proxy) forward(dst net.Conn, frag []byte, rng *rand.Rand) bool {
	f := rng.Float64()
	switch {
	case f < p.plan.TruncateProb:
		p.truncs.Add(1)
		dst.Write(frag[:len(frag)/2])
		hardClose(dst)
		return false
	case f < p.plan.TruncateProb+p.plan.ResetProb:
		p.resets.Add(1)
		if _, err := dst.Write(frag); err != nil {
			return false
		}
		hardClose(dst)
		return false
	case f < p.plan.TruncateProb+p.plan.ResetProb+p.plan.PartialProb:
		p.partials.Add(1)
		half := len(frag) / 2
		if half == 0 {
			half = len(frag)
		}
		if _, err := dst.Write(frag[:half]); err != nil {
			return false
		}
		time.Sleep(time.Millisecond)
		if half < len(frag) {
			if _, err := dst.Write(frag[half:]); err != nil {
				return false
			}
		}
		return true
	default:
		_, err := dst.Write(frag)
		return err == nil
	}
}

// hardClose cuts a connection with an RST instead of a graceful FIN —
// what a peer observes when a process is SIGKILLed.
func hardClose(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}
