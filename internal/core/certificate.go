package core

import (
	"encoding/json"
	"fmt"
	"sync"

	"sortnets/internal/bitvec"
	"sortnets/internal/eval"
	"sortnets/internal/network"
)

// A minimality certificate is a serializable, independently checkable
// proof object for Theorem 2.2(i)'s lower bound: one Lemma 2.1 witness
// network per non-sorted string. Any party can re-verify that each
// witness sorts everything except its σ — establishing, without
// trusting this library's construction code, that no 0/1 test set for
// sorting may omit any non-sorted string.

// CertificateEntry pairs a non-sorted string with its witness network.
type CertificateEntry struct {
	Sigma   bitvec.Vec
	Witness *network.Network
}

// Certificate is the full lower-bound proof object for n lines:
// 2ⁿ − n − 1 entries, one per non-sorted string.
type Certificate struct {
	N       int
	Entries []CertificateEntry
}

// MinimalityCertificate constructs the certificate for n lines. Cost
// grows like 2ⁿ constructions; intended for the enumerable regime.
func MinimalityCertificate(n int) Certificate {
	cert := Certificate{N: n}
	it := SorterBinaryTests(n)
	for {
		v, ok := it.Next()
		if !ok {
			return cert
		}
		cert.Entries = append(cert.Entries, CertificateEntry{
			Sigma:   v,
			Witness: MustAlmostSorter(v),
		})
	}
}

// Verify re-checks the whole certificate from scratch: the entry set
// must be exactly the non-sorted strings, and every witness must sort
// everything except its σ. A nil return is a machine-checked proof of
// the Theorem 2.2(i) lower bound for this n.
func (c Certificate) Verify() error { return c.VerifyParallel(1) }

// VerifyParallel is Verify with the entries spread over the shared
// worker pool (workers ≤ 0 means all cores; each entry is an
// independent 2ⁿ witness sweep). The error reported is the one for
// the smallest failing entry index, so the result is deterministic.
func (c Certificate) VerifyParallel(workers int) error {
	want := int64(bitvec.Universe(c.N)) - int64(c.N) - 1
	if int64(len(c.Entries)) != want {
		return fmt.Errorf("core: certificate has %d entries, want 2^n−n−1 = %d",
			len(c.Entries), want)
	}
	seen := make(map[bitvec.Vec]bool, len(c.Entries))
	for i, e := range c.Entries {
		if e.Sigma.N != c.N {
			return fmt.Errorf("core: entry %d has σ of length %d, want %d", i, e.Sigma.N, c.N)
		}
		if e.Sigma.IsSorted() {
			return fmt.Errorf("core: entry %d: σ=%s is sorted", i, e.Sigma)
		}
		if seen[e.Sigma] {
			return fmt.Errorf("core: duplicate entry for σ=%s", e.Sigma)
		}
		seen[e.Sigma] = true
	}
	var mu sync.Mutex
	errs := make(map[int]error)
	hit := eval.ForEachUntil(len(c.Entries), workers, func(i int) bool {
		e := c.Entries[i]
		if err := VerifyAlmostSorter(e.Witness, e.Sigma); err != nil {
			mu.Lock()
			errs[i] = err
			mu.Unlock()
			return true
		}
		return false
	})
	if hit >= 0 {
		mu.Lock()
		defer mu.Unlock()
		return fmt.Errorf("core: entry %d: %v", hit, errs[hit])
	}
	return nil
}

// jsonCertificate is the wire form: σ as a 0/1 string, the witness in
// the network text notation.
type jsonCertificate struct {
	Lines   int         `json:"lines"`
	Entries []jsonEntry `json:"entries"`
}

type jsonEntry struct {
	Sigma   string `json:"sigma"`
	Witness string `json:"witness"`
}

// MarshalJSON implements json.Marshaler.
func (c Certificate) MarshalJSON() ([]byte, error) {
	j := jsonCertificate{Lines: c.N, Entries: make([]jsonEntry, len(c.Entries))}
	for i, e := range c.Entries {
		j.Entries[i] = jsonEntry{Sigma: e.Sigma.String(), Witness: e.Witness.Format()}
	}
	return json.Marshal(j)
}

// UnmarshalJSON implements json.Unmarshaler; the decoded certificate
// still needs Verify to be trusted.
func (c *Certificate) UnmarshalJSON(data []byte) error {
	var j jsonCertificate
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	c.N = j.Lines
	c.Entries = make([]CertificateEntry, len(j.Entries))
	for i, e := range j.Entries {
		sigma, err := bitvec.FromString(e.Sigma)
		if err != nil {
			return fmt.Errorf("core: entry %d: %v", i, err)
		}
		w, err := network.Parse(e.Witness)
		if err != nil {
			return fmt.Errorf("core: entry %d: %v", i, err)
		}
		c.Entries[i] = CertificateEntry{Sigma: sigma, Witness: w}
	}
	return nil
}
