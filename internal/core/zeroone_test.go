package core

import (
	"math/rand"
	"testing"

	"sortnets/internal/bitvec"
	"sortnets/internal/gen"
	"sortnets/internal/network"
	"sortnets/internal/perm"
)

func TestZeroOnePrincipleRandomNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(5)
		w := network.Random(n, rng.Intn(4*n), rng)
		if !ZeroOnePrincipleHolds(w) {
			t.Fatalf("zero-one principle violated by %s", w.Format())
		}
	}
}

func TestIsSorterPermutations(t *testing.T) {
	if !IsSorterPermutations(gen.Sorter(5)) {
		t.Error("real sorter rejected")
	}
	if IsSorterPermutations(network.New(3)) {
		t.Error("empty network accepted")
	}
}

func TestFloydCorrespondence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(9)
		w := network.Random(n, rng.Intn(3*n), rng)
		p := perm.Random(n, rng)
		if !FloydCorrespondenceHolds(w, p) {
			t.Fatalf("Floyd correspondence broken: net %s perm %s", w, p)
		}
	}
}

func TestSelectsBinary(t *testing.T) {
	w := gen.Selection(6, 2)
	if !SelectsBinary(w, 2, bitvec.MustFromString("110100")) {
		t.Error("selection network mis-judged")
	}
	// The empty network cannot 1-select 10.
	if SelectsBinary(network.New(2), 1, bitvec.MustFromString("10")) {
		t.Error("empty network should fail 1-selection of 10")
	}
}

func TestIsSelectorBinary(t *testing.T) {
	for n := 2; n <= 8; n++ {
		for k := 1; k < n; k++ {
			if !IsSelectorBinary(gen.Selection(n, k), k) {
				t.Errorf("Selection(%d,%d) rejected", n, k)
			}
		}
	}
	// A (2,n)-selector is also a (1,n)-selector but not vice versa.
	if !IsSelectorBinary(gen.Selection(6, 2), 1) {
		t.Error("(2,6)-selector should be a (1,6)-selector")
	}
	if IsSelectorBinary(gen.Selection(6, 1), 2) {
		t.Error("(1,6)-selector should not be a (2,6)-selector")
	}
}

func TestIsMergerBinary(t *testing.T) {
	for n := 2; n <= 12; n += 2 {
		if !IsMergerBinary(gen.HalfMerger(n)) {
			t.Errorf("Batcher merger n=%d rejected", n)
		}
	}
	if IsMergerBinary(network.New(6)) {
		t.Error("empty network accepted as merger")
	}
	// Every sorter is also a merger.
	if !IsMergerBinary(gen.Sorter(6)) {
		t.Error("sorter should be accepted as merger")
	}
}

func TestMergesBinaryVacuousOnUnsortedHalves(t *testing.T) {
	w := network.New(4)
	// 10|10 has unsorted halves: outside the merger contract.
	if !MergesBinary(w, bitvec.MustFromString("1010")) {
		t.Error("unsorted halves should be vacuously accepted")
	}
	// 01|10: first half sorted, second not.
	if !MergesBinary(w, bitvec.MustFromString("0110")) {
		t.Error("one unsorted half should be vacuously accepted")
	}
	// 01|01: both sorted, empty network fails to merge.
	if MergesBinary(w, bitvec.MustFromString("0101")) {
		t.Error("empty network should fail on 01|01")
	}
}

func TestMinimalTestSetDecidesSorter(t *testing.T) {
	// End-to-end sufficiency: for random networks, "passes every test
	// in the minimal binary test set" must coincide with "sorts all
	// 2ⁿ inputs". This is the test-set property itself.
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(8)
		// Mix of sparse (likely failing) and dense (likely sorting)
		// networks.
		size := rng.Intn(n * n)
		w := network.Random(n, size, rng)
		passes := true
		it := SorterBinaryTests(n)
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			if !w.ApplyVec(v).IsSorted() {
				passes = false
				break
			}
		}
		if passes != IsSorterBinary(w) {
			t.Fatalf("test set verdict %v != ground truth %v for %s", passes, IsSorterBinary(w), w)
		}
	}
}

func TestMinimalPermTestSetDecidesSorter(t *testing.T) {
	// Permutation-side sufficiency on random networks: passing the
	// C(n,⌊n/2⌋)−1 permutation tests coincides with being a sorter.
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(7)
		w := network.Random(n, rng.Intn(n*n), rng)
		passes := true
		for _, p := range SorterPermTests(n) {
			if out, err := perm.FromValues(w.Apply(p)); err != nil || !out.IsSorted() {
				passes = false
				break
			}
		}
		if passes != IsSorterBinary(w) {
			t.Fatalf("perm test verdict %v != ground truth %v for %s", passes, IsSorterBinary(w), w)
		}
	}
}

func TestMinimalMergerTestSetDecidesMerger(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 120; trial++ {
		n := 2 * (1 + rng.Intn(5))
		w := network.Random(n, rng.Intn(n*n/2), rng)
		passes := true
		it := MergerBinaryTests(n)
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			if !w.ApplyVec(v).IsSorted() {
				passes = false
				break
			}
		}
		if passes != IsMergerBinary(w) {
			t.Fatalf("merger test verdict %v != ground truth %v for %s", passes, IsMergerBinary(w), w)
		}
	}
}

func TestMinimalSelectorTestSetDecidesSelector(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(6)
		k := 1 + rng.Intn(n)
		w := network.Random(n, rng.Intn(n*n), rng)
		passes := true
		it := SelectorBinaryTests(n, k)
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			if !SelectsBinary(w, k, v) {
				passes = false
				break
			}
		}
		if passes != IsSelectorBinary(w, k) {
			t.Fatalf("selector test verdict %v != ground truth %v for %s (k=%d)",
				passes, IsSelectorBinary(w, k), w, k)
		}
	}
}
