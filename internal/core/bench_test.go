package core

import (
	"testing"

	"sortnets/internal/bitvec"
)

// BenchmarkAlmostSorterMid builds H_σ for a mid-complexity σ at n=12.
func BenchmarkAlmostSorterMid(b *testing.B) {
	sigma := bitvec.MustFromString("011010011010")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if MustAlmostSorter(sigma).Size() == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkVerifyAlmostSorter measures the contract check (a full
// binary sweep) at n=12.
func BenchmarkVerifyAlmostSorter(b *testing.B) {
	sigma := bitvec.MustFromString("011010011010")
	h := MustAlmostSorter(sigma)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := VerifyAlmostSorter(h, sigma); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSorterBinaryTestsStream measures streaming the n=16 test
// set (65519 vectors, no materialization).
func BenchmarkSorterBinaryTestsStream(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if bitvec.Count(SorterBinaryTests(16)) != 65519 {
			b.Fatal("wrong count")
		}
	}
}

// BenchmarkMinimalityCertificate builds and verifies the full n=8
// proof object (247 witnesses).
func BenchmarkMinimalityCertificate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := MinimalityCertificate(8)
		if err := c.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}
