package core

import (
	"math/big"
	"testing"

	"sortnets/internal/bitvec"
	"sortnets/internal/comb"
	"sortnets/internal/gen"
	"sortnets/internal/perm"
)

func TestSorterBinaryTestsSize(t *testing.T) {
	// Theorem 2.2(i): |T| = 2ⁿ − n − 1.
	for n := 1; n <= 16; n++ {
		got := int64(bitvec.Count(SorterBinaryTests(n)))
		want := comb.SorterBinaryTestSetSize(n)
		if want.Cmp(big.NewInt(got)) != 0 {
			t.Errorf("n=%d: %d tests, want %s", n, got, want)
		}
	}
}

func TestSorterBinaryTestsContents(t *testing.T) {
	it := SorterBinaryTests(3)
	var got []string
	for {
		v, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, v.String())
	}
	// The four non-sorted strings of Fig. 2, in word order.
	want := map[string]bool{"100": true, "010": true, "110": true, "101": true}
	if len(got) != 4 {
		t.Fatalf("got %v", got)
	}
	for _, s := range got {
		if !want[s] {
			t.Errorf("unexpected test %s", s)
		}
	}
}

func TestSelectorBinaryTestsSize(t *testing.T) {
	// Theorem 2.4(i): |T⁺ₖ| = Σᵢ₌₀..k C(n,i) − k − 1.
	for n := 2; n <= 14; n++ {
		for k := 1; k <= n; k++ {
			got := int64(bitvec.Count(SelectorBinaryTests(n, k)))
			want := comb.SelectorBinaryTestSetSize(n, k)
			if want.Cmp(big.NewInt(got)) != 0 {
				t.Errorf("n=%d k=%d: %d tests, want %s", n, k, got, want)
			}
		}
	}
}

func TestSelectorBinaryTestsContents(t *testing.T) {
	it := SelectorBinaryTests(6, 2)
	for {
		v, ok := it.Next()
		if !ok {
			break
		}
		if v.Zeros() > 2 {
			t.Errorf("%s has %d zeros, want ≤ 2", v, v.Zeros())
		}
		if v.IsSorted() {
			t.Errorf("%s is sorted", v)
		}
	}
}

func TestSelectorTestsNest(t *testing.T) {
	// T⁺₁ ⊆ T⁺₂ ⊆ … ⊆ T⁺ₙ = sorter test set.
	n := 8
	prev := map[bitvec.Vec]bool{}
	for k := 1; k <= n; k++ {
		cur := map[bitvec.Vec]bool{}
		it := SelectorBinaryTests(n, k)
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			cur[v] = true
		}
		for v := range prev {
			if !cur[v] {
				t.Fatalf("k=%d: lost test %s from k−1", k, v)
			}
		}
		prev = cur
	}
	full := map[bitvec.Vec]bool{}
	it := SorterBinaryTests(n)
	for {
		v, ok := it.Next()
		if !ok {
			break
		}
		full[v] = true
	}
	if len(prev) != len(full) {
		t.Errorf("T⁺ₙ has %d tests, sorter set has %d", len(prev), len(full))
	}
}

func TestMergerBinaryTestsSizeAndContents(t *testing.T) {
	for n := 2; n <= 16; n += 2 {
		h := n / 2
		count := 0
		it := MergerBinaryTests(n)
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			count++
			if !v.Slice(0, h).IsSorted() || !v.Slice(h, n).IsSorted() {
				t.Errorf("n=%d: %s has an unsorted half", n, v)
			}
			if v.IsSorted() {
				t.Errorf("n=%d: %s is sorted", n, v)
			}
		}
		if want := h * h; count != want {
			t.Errorf("n=%d: %d tests, want n²/4=%d", n, count, want)
		}
	}
}

func TestMergerBinaryTestsPanicOnOdd(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for odd n")
		}
	}()
	MergerBinaryTests(5)
}

func TestSorterPermTestsSize(t *testing.T) {
	for n := 1; n <= 12; n++ {
		got := int64(len(SorterPermTests(n)))
		want := comb.SorterPermTestSetSize(n)
		if want.Cmp(big.NewInt(got)) != 0 {
			t.Errorf("n=%d: %d perms, want %s", n, got, want)
		}
	}
}

func TestSelectorPermTestsSize(t *testing.T) {
	for n := 2; n <= 11; n++ {
		for k := 1; k <= n; k++ {
			got := int64(len(SelectorPermTests(n, k)))
			want := comb.SelectorPermTestSetSize(n, k)
			if want.Cmp(big.NewInt(got)) != 0 {
				t.Errorf("n=%d k=%d: %d perms, want %s", n, k, got, want)
			}
		}
	}
}

func TestMergerPermTestsSize(t *testing.T) {
	for n := 2; n <= 20; n += 2 {
		if got := len(MergerPermTests(n)); got != n/2 {
			t.Errorf("n=%d: %d perms, want n/2", n, got)
		}
	}
}

func TestPermTestSetsExcludeIdentity(t *testing.T) {
	for _, p := range SorterPermTests(8) {
		if p.IsSorted() {
			t.Error("sorter perm test set contains identity")
		}
	}
	for _, p := range SelectorPermTests(8, 3) {
		if p.IsSorted() {
			t.Error("selector perm test set contains identity")
		}
	}
}

func TestTrueSortersPassAllSorterTests(t *testing.T) {
	// Sufficiency direction on known-good networks: a real sorter
	// passes the whole minimal test set (binary and permutation).
	for n := 2; n <= 10; n++ {
		w := gen.Sorter(n)
		it := SorterBinaryTests(n)
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			if !w.ApplyVec(v).IsSorted() {
				t.Fatalf("n=%d: sorter fails test %s", n, v)
			}
		}
		for _, p := range SorterPermTests(n) {
			if got, err := perm.FromValues(w.Apply(p)); err != nil || !got.IsSorted() {
				t.Fatalf("n=%d: sorter fails perm test %s", n, p)
			}
		}
	}
}

func TestTrueMergersPassAllMergerTests(t *testing.T) {
	for n := 2; n <= 14; n += 2 {
		w := gen.HalfMerger(n)
		it := MergerBinaryTests(n)
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			if !w.ApplyVec(v).IsSorted() {
				t.Fatalf("n=%d: merger fails test %s", n, v)
			}
		}
		for _, p := range MergerPermTests(n) {
			if got, err := perm.FromValues(w.Apply(p)); err != nil || !got.IsSorted() {
				t.Fatalf("n=%d: merger fails τ test %s -> %v", n, p, w.Apply(p))
			}
		}
	}
}

func TestTrueSelectorsPassAllSelectorTests(t *testing.T) {
	for n := 2; n <= 9; n++ {
		for k := 1; k < n; k++ {
			w := gen.Selection(n, k)
			it := SelectorBinaryTests(n, k)
			for {
				v, ok := it.Next()
				if !ok {
					break
				}
				if !SelectsBinary(w, k, v) {
					t.Fatalf("n=%d k=%d: selector fails test %s", n, k, v)
				}
			}
		}
	}
}

func TestSelectorPanicsOnBadK(t *testing.T) {
	for _, f := range []func(){
		func() { SelectorBinaryTests(5, 0) },
		func() { SelectorBinaryTests(5, 6) },
		func() { SelectorPermTests(5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
