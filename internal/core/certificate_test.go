package core

import (
	"encoding/json"
	"testing"

	"sortnets/internal/bitvec"
	"sortnets/internal/network"
)

func TestCertificateBuildsAndVerifies(t *testing.T) {
	for n := 2; n <= 8; n++ {
		c := MinimalityCertificate(n)
		if len(c.Entries) != bitvec.Universe(n)-n-1 {
			t.Fatalf("n=%d: %d entries", n, len(c.Entries))
		}
		if err := c.Verify(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestCertificateJSONRoundTrip(t *testing.T) {
	c := MinimalityCertificate(5)
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var back Certificate
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Verify(); err != nil {
		t.Fatalf("round-tripped certificate invalid: %v", err)
	}
	if back.N != 5 || len(back.Entries) != len(c.Entries) {
		t.Error("shape changed in round trip")
	}
}

func TestCertificateVerifyRejectsCorruption(t *testing.T) {
	base := MinimalityCertificate(4)

	// Missing entry.
	short := Certificate{N: 4, Entries: base.Entries[1:]}
	if short.Verify() == nil {
		t.Error("missing entry accepted")
	}

	// Duplicate entry (replacing another keeps the count right).
	dup := Certificate{N: 4, Entries: append([]CertificateEntry(nil), base.Entries...)}
	dup.Entries[1] = dup.Entries[0]
	if dup.Verify() == nil {
		t.Error("duplicate entry accepted")
	}

	// Wrong witness: a true sorter proves nothing.
	wrong := Certificate{N: 4, Entries: append([]CertificateEntry(nil), base.Entries...)}
	wrong.Entries[0] = CertificateEntry{
		Sigma:   wrong.Entries[0].Sigma,
		Witness: network.MustParse("n=4: [1,2][3,4][1,3][2,4][2,3]"),
	}
	if wrong.Verify() == nil {
		t.Error("sorter witness accepted")
	}

	// Sorted σ.
	sorted := Certificate{N: 4, Entries: append([]CertificateEntry(nil), base.Entries...)}
	sorted.Entries[0] = CertificateEntry{
		Sigma:   bitvec.MustFromString("0011"),
		Witness: sorted.Entries[0].Witness,
	}
	if sorted.Verify() == nil {
		t.Error("sorted σ accepted")
	}

	// Length mismatch.
	mixed := Certificate{N: 5, Entries: base.Entries}
	if mixed.Verify() == nil {
		t.Error("length mismatch accepted")
	}
}

func TestCertificateUnmarshalRejectsGarbage(t *testing.T) {
	var c Certificate
	if err := json.Unmarshal([]byte(`{"lines":2,"entries":[{"sigma":"xx","witness":"n=2:"}]}`), &c); err == nil {
		t.Error("bad sigma accepted")
	}
	if err := json.Unmarshal([]byte(`{"lines":2,"entries":[{"sigma":"10","witness":"n=2: [2,1]"}]}`), &c); err == nil {
		t.Error("bad witness accepted")
	}
	if err := json.Unmarshal([]byte(`{`), &c); err == nil {
		t.Error("truncated JSON accepted")
	}
}
