package core

import (
	"fmt"

	"sortnets/internal/widevec"
)

// Wide-width test sets: beyond 64 lines a zero-one sweep is physically
// impossible (2ⁿ inputs), but the paper's merger and selector test
// sets stay polynomial — n²/4 and Σᵢ₌₀..k C(n,i) − k − 1 — so
// certification keeps working. These iterators mirror
// MergerBinaryTests and SelectorBinaryTests on widevec vectors.

// WideIterator streams wide binary vectors.
type WideIterator interface {
	Next() (widevec.Vec, bool)
}

// CountWide drains a wide iterator.
func CountWide(it WideIterator) int {
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			return n
		}
		n++
	}
}

// MergerWideTests streams the n²/4 merger tests for any even n up to
// widevec.MaxN.
func MergerWideTests(n int) WideIterator {
	if n%2 != 0 || n < 2 {
		panic(fmt.Sprintf("core: merger tests need even n ≥ 2, got %d", n))
	}
	return &mergerWideIter{h: n / 2, i: 1, k: 1}
}

type mergerWideIter struct {
	h, i, k int
}

func (it *mergerWideIter) Next() (widevec.Vec, bool) {
	if it.i > it.h {
		return widevec.Vec{}, false
	}
	v := widevec.Concat(widevec.SortedWithOnes(it.h, it.i), widevec.SortedWithOnes(it.h, it.h-it.k))
	it.k++
	if it.k > it.h {
		it.k = 1
		it.i++
	}
	return v, true
}

// SelectorWideTests streams the minimal (k,n)-selector test set for
// any n up to widevec.MaxN: every non-sorted vector with at most k
// zeros, enumerated by the zero-position combination odometer
// (weight 0 first — the all-ones vector is sorted and skipped — then
// single zeros, and so on).
func SelectorWideTests(n, k int) WideIterator {
	if k < 1 || k > n {
		panic(fmt.Sprintf("core: selector arity k=%d out of range 1..%d", k, n))
	}
	return &selectorWideIter{n: n, k: k, z: 0, pos: nil}
}

type selectorWideIter struct {
	n, k int
	z    int   // current number of zeros
	pos  []int // current zero positions (combination odometer), nil = start of level
}

func (it *selectorWideIter) Next() (widevec.Vec, bool) {
	for {
		if !it.advance() {
			return widevec.Vec{}, false
		}
		v := it.current()
		if !v.IsSorted() {
			return v, true
		}
	}
}

// advance steps the combination odometer, moving to the next zero
// count when the current level is exhausted.
func (it *selectorWideIter) advance() bool {
	for {
		if it.pos == nil {
			if it.z > it.k || it.z > it.n {
				return false
			}
			it.pos = make([]int, it.z)
			for i := range it.pos {
				it.pos[i] = i
			}
			return true
		}
		// Next combination of size z from [0,n).
		i := it.z - 1
		for i >= 0 && it.pos[i] == it.n-it.z+i {
			i--
		}
		if i < 0 {
			it.z++
			it.pos = nil
			continue
		}
		it.pos[i]++
		for j := i + 1; j < it.z; j++ {
			it.pos[j] = it.pos[j-1] + 1
		}
		return true
	}
}

func (it *selectorWideIter) current() widevec.Vec {
	v := widevec.SortedWithOnes(it.n, it.n) // all ones
	for _, p := range it.pos {
		v = v.SetBit(p, 0)
	}
	return v
}
