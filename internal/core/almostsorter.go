package core

import (
	"errors"
	"fmt"

	"sortnets/internal/bitvec"
	"sortnets/internal/gen"
	"sortnets/internal/network"
)

// This file implements Lemma 2.1, the technical heart of the paper:
//
//	For every non-sorted string σ ∈ {0,1}ⁿ there exists a network H_σ
//	that sorts every input except σ.
//
// H_σ is the adversarial witness that forces σ into every test set for
// sorting: a test set missing σ cannot tell H_σ from a true sorter.
// Combined with the zero-one principle this pins the minimal 0/1 test
// set at exactly the 2ⁿ − n − 1 non-sorted strings (Theorem 2.2(i)),
// and via covers it drives the permutation bound too.
//
// The construction is by induction on n, peeling the last line: with
// σ′ = σ₁..σₙ₋₁ non-sorted, take H_σ′ by induction and extend it
// according to the paper's case analysis on σₙ and the last output bit
// of H_σ′(σ′) (Figs. 3–5). Where the 1990 journal text of Fig. 4
// (Case B) is too garbled to transcribe, we use a construction in the
// same inductive spirit and machine-verify it exhaustively in the
// tests; Cases A and C follow the paper directly. When σ′ is sorted
// the paper notes the symmetric argument on the suffix — realized here
// through the reverse-complement duality (network.Mirror).

// ErrSorted is returned when an almost-sorter is requested for a sorted
// string, for which no such network can exist (every network maps a
// sorted input to itself).
var ErrSorted = errors.New("core: no almost-sorter exists for a sorted string")

// AlmostSorter returns the Lemma 2.1 network H_σ: a network on σ.N
// lines that sorts every binary input except σ. It returns ErrSorted if
// σ is sorted and an error for n < 2 (every 0- or 1-line input is
// trivially sorted).
func AlmostSorter(sigma bitvec.Vec) (*network.Network, error) {
	if sigma.N < 2 {
		return nil, fmt.Errorf("core: no non-sorted strings of length %d", sigma.N)
	}
	if sigma.IsSorted() {
		return nil, ErrSorted
	}
	return buildAlmostSorter(sigma), nil
}

// MustAlmostSorter is AlmostSorter panicking on error.
func MustAlmostSorter(sigma bitvec.Vec) *network.Network {
	w, err := AlmostSorter(sigma)
	if err != nil {
		panic(err)
	}
	return w
}

// AlmostSorterCase identifies which branch of the Lemma 2.1 induction
// applies to a non-sorted string, for the experiment that tallies the
// construction per case (Figs. 2–5).
type AlmostSorterCase string

// The construction cases. BaseN2 and BaseN3 are the Fig. 2 base cases;
// A, B, C are the inductive cases of Figs. 3–5 on the peeled prefix;
// Mirrored marks strings whose prefix is sorted, handled through the
// reverse-complement duality (the paper's "the latter case is
// identical, we omit it").
const (
	CaseBaseN2   AlmostSorterCase = "base-n2"
	CaseBaseN3   AlmostSorterCase = "base-n3"
	CaseA        AlmostSorterCase = "A"
	CaseB        AlmostSorterCase = "B"
	CaseC        AlmostSorterCase = "C"
	CaseMirrored AlmostSorterCase = "mirrored"
)

// ClassifyAlmostSorter reports which construction case builds H_σ.
// It panics on sorted strings or n < 2.
func ClassifyAlmostSorter(sigma bitvec.Vec) AlmostSorterCase {
	if sigma.N < 2 || sigma.IsSorted() {
		panic(fmt.Sprintf("core: classify of invalid string %q", sigma))
	}
	switch {
	case sigma.N == 2:
		return CaseBaseN2
	case sigma.N == 3:
		return CaseBaseN3
	}
	n := sigma.N
	prefix := sigma.Slice(0, n-1)
	if prefix.IsSorted() {
		return CaseMirrored
	}
	if sigma.Bit(n-1) == 1 {
		return CaseC
	}
	hp := buildAlmostSorter(prefix)
	if hp.ApplyVec(prefix).Bit(n-2) == 0 {
		return CaseA
	}
	return CaseB
}

func buildAlmostSorter(sigma bitvec.Vec) *network.Network {
	n := sigma.N
	switch n {
	case 2:
		// The only non-sorted string is 10; the empty network sorts
		// everything else (00, 01, 11) and leaves 10 alone.
		return network.New(2)
	case 3:
		return baseN3(sigma)
	}
	prefix := sigma.Slice(0, n-1)
	if !prefix.IsSorted() {
		return buildPrefixCase(sigma, prefix)
	}
	// Prefix sorted ⇒ suffix σ₂..σₙ non-sorted. The reverse-complement
	// rc(σ) then has a non-sorted prefix, and Mirror(H_rc(σ)) sorts
	// exactly {0,1}ⁿ \ {σ} by the duality Mirror(H)(rc(x)) = rc(H(x)).
	rc := sigma.Reverse().Complement()
	return buildAlmostSorter(rc).Mirror()
}

// baseN3 returns the Fig. 2 networks for the four non-sorted strings of
// length 3. Each is two comparators; each is verified exhaustively in
// the tests to sort exactly {0,1}³ \ {σ}.
func baseN3(sigma bitvec.Vec) *network.Network {
	w := network.New(3)
	switch sigma.String() {
	case "100":
		return w.AddPair(1, 2).AddPair(0, 1) // [2,3][1,2]
	case "010":
		return w.AddPair(0, 2).AddPair(0, 1) // [1,3][1,2]
	case "101":
		return w.AddPair(0, 2).AddPair(1, 2) // [1,3][2,3]
	case "110":
		return w.AddPair(0, 1).AddPair(1, 2) // [1,2][2,3]
	}
	panic(fmt.Sprintf("core: %q is not a non-sorted string of length 3", sigma))
}

// buildPrefixCase realizes the inductive step when σ′ = σ₁..σₙ₋₁ is
// non-sorted: construct H_σ′, inspect its (necessarily unsorted)
// output on σ′, and extend per the case analysis.
func buildPrefixCase(sigma, prefix bitvec.Vec) *network.Network {
	n := sigma.N
	hp := buildAlmostSorter(prefix) // n−1 lines
	out := hp.ApplyVec(prefix)      // unsorted by induction

	w := hp.OnLines(n, identityLines(n-1))
	if sigma.Bit(n-1) == 1 {
		return caseC(w, out, n)
	}
	if out.Bit(n-2) == 0 {
		return caseA(w, out, n)
	}
	return caseB(w, out, n)
}

// caseC handles σₙ = 1 (Fig. 5): with k the first line where H_σ′(σ′)
// carries a 1, append the comparators [j, n] for j = 1..k and a sorter
// S(n−k) on lines k+1..n. On σ the ladder never fires (lines above k
// carry 0, line n carries 1), line k keeps its 1, and since σ has at
// least k zeros one of them ends up directly below line k. On any
// other input the ladder drains a stray 1 (or the whole input is
// already handled) and S(n−k) finishes the sort.
func caseC(w *network.Network, out bitvec.Vec, n int) *network.Network {
	k := firstOne(out)
	for j := 0; j <= k; j++ {
		w.AddPair(j, n-1)
	}
	return w.Append(gen.Sorter(n-1-k).OnLines(n, rangeLines(k+1, n)))
}

// caseA handles σₙ = 0 with H_σ′(σ′) ending in 0 (Fig. 3): append the
// comparator C₁ = [n−1, n], the three-line gadget H₁₀₀ on lines
// (k, n−1, n) where line k is the first 1 of H_σ′(σ′), and a sorter
// S(n−1) on the first n−1 lines. On σ, C₁ idles (0,0), H₁₀₀ sees
// exactly 100 — the one input it fails — and strands the 0 on line n
// beneath the 1s the final sorter packs at the bottom of the prefix.
// On every other input either line n already carries the maximum or
// H₁₀₀ sees a sorted or repairable pattern and the tail sorter
// finishes.
func caseA(w *network.Network, out bitvec.Vec, n int) *network.Network {
	k := firstOne(out) // k ≤ n−3 since out ends in 0
	w.AddPair(n-2, n-1)
	h100 := network.New(3).AddPair(1, 2).AddPair(0, 1) // the Fig. 2 H₁₀₀
	w.Append(h100.OnLines(n, []int{k, n - 2, n - 1}))
	return w.Append(gen.Sorter(n-1).OnLines(n, rangeLines(0, n-1)))
}

// caseB handles σₙ = 0 with H_σ′(σ′) ending in 1. The journal figure
// for this case is unreadable in the source text, so we use a
// construction in the same inductive spirit, machine-verified in the
// tests: fire C₁ = [n−1, n] (on σ it drags the trailing 1 down to line
// n, leaving the first n−1 lines holding ρ = H_σ′(σ′) with its last
// bit zeroed), then apply the width-(n−1) almost-sorter H_ρ. On σ the
// prefix is exactly ρ, which H_ρ refuses to sort. On any other input
// the prefix reaching H_ρ differs from ρ: if it came through the
// C₁-swap of a sorted prefix it has the shape 0^a1^b0 whose first n−2
// bits are sorted, while ρ's first n−2 bits are H_σ′(σ′)₁..ₙ₋₂, which
// cannot be sorted (else H_σ′(σ′) = 0^a1^b1 would be sorted).
func caseB(w *network.Network, out bitvec.Vec, n int) *network.Network {
	rho := out.SetBit(n-2, 0)
	w.AddPair(n-2, n-1)
	return w.Append(buildAlmostSorter(rho).OnLines(n, identityLines(n-1)))
}

func firstOne(v bitvec.Vec) int {
	for i := 0; i < v.N; i++ {
		if v.Bit(i) == 1 {
			return i
		}
	}
	panic("core: no 1 in vector")
}

func identityLines(n int) []int { return rangeLines(0, n) }

func rangeLines(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

// VerifyAlmostSorter checks the Lemma 2.1 contract exhaustively: H
// fails σ and sorts every other binary input. It returns nil when the
// contract holds.
func VerifyAlmostSorter(h *network.Network, sigma bitvec.Vec) error {
	if h.N != sigma.N {
		return fmt.Errorf("core: network has %d lines, σ has %d", h.N, sigma.N)
	}
	fails := h.BinaryFailures(2)
	if len(fails) != 1 {
		return fmt.Errorf("core: H_σ for σ=%s fails %d inputs, want exactly 1", sigma, len(fails))
	}
	if fails[0] != sigma {
		return fmt.Errorf("core: H_σ fails %s, want %s", fails[0], sigma)
	}
	return nil
}
