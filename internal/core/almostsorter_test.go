package core

import (
	"math/rand"
	"testing"

	"sortnets/internal/bitvec"
	"sortnets/internal/network"
)

func TestAlmostSorterExhaustive(t *testing.T) {
	// The Lemma 2.1 contract, exhaustively for every non-sorted string
	// up to n=11: H_σ fails σ and sorts everything else.
	for n := 2; n <= 11; n++ {
		it := bitvec.NotSorted(bitvec.All(n))
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			h := MustAlmostSorter(v)
			if err := VerifyAlmostSorter(h, v); err != nil {
				t.Fatalf("n=%d σ=%s case=%s: %v", n, v, ClassifyAlmostSorter(v), err)
			}
		}
	}
}

func TestAlmostSorterLargerSample(t *testing.T) {
	// Random sample at sizes beyond the exhaustive sweep.
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{12, 13, 14, 16} {
		for trial := 0; trial < 25; trial++ {
			v := bitvec.New(n, rng.Uint64()&(uint64(1)<<uint(n)-1))
			if v.IsSorted() {
				continue
			}
			h := MustAlmostSorter(v)
			if err := VerifyAlmostSorter(h, v); err != nil {
				t.Fatalf("n=%d σ=%s: %v", n, v, err)
			}
		}
	}
}

func TestAlmostSorterBaseCases(t *testing.T) {
	// n=2: the empty network is H₁₀.
	h := MustAlmostSorter(bitvec.MustFromString("10"))
	if h.Size() != 0 {
		t.Errorf("H₁₀ should be empty, has %d comparators", h.Size())
	}
	// n=3: the four Fig. 2 networks, each of exactly two comparators.
	for _, s := range []string{"100", "010", "101", "110"} {
		sigma := bitvec.MustFromString(s)
		h := MustAlmostSorter(sigma)
		if h.Size() != 2 {
			t.Errorf("H_%s has %d comparators, want 2", s, h.Size())
		}
		if err := VerifyAlmostSorter(h, sigma); err != nil {
			t.Errorf("H_%s: %v", s, err)
		}
	}
}

func TestAlmostSorterErrors(t *testing.T) {
	if _, err := AlmostSorter(bitvec.MustFromString("0011")); err != ErrSorted {
		t.Errorf("sorted string: err=%v, want ErrSorted", err)
	}
	if _, err := AlmostSorter(bitvec.MustFromString("1")); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := AlmostSorter(bitvec.Vec{}); err == nil {
		t.Error("n=0 should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAlmostSorter should panic on sorted input")
		}
	}()
	MustAlmostSorter(bitvec.MustFromString("01"))
}

func TestClassifyCoversAllCases(t *testing.T) {
	// All five inductive labels must occur in a full sweep, and each
	// classification must agree with an exhaustive re-check.
	counts := map[AlmostSorterCase]int{}
	for n := 2; n <= 9; n++ {
		it := bitvec.NotSorted(bitvec.All(n))
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			counts[ClassifyAlmostSorter(v)]++
		}
	}
	for _, c := range []AlmostSorterCase{CaseBaseN2, CaseBaseN3, CaseA, CaseB, CaseC, CaseMirrored} {
		if counts[c] == 0 {
			t.Errorf("case %s never exercised", c)
		}
	}
	if counts[CaseBaseN2] != 1 {
		t.Errorf("base n=2 count %d, want 1", counts[CaseBaseN2])
	}
	if counts[CaseBaseN3] != 4 {
		t.Errorf("base n=3 count %d, want 4", counts[CaseBaseN3])
	}
}

func TestClassifyCaseExamples(t *testing.T) {
	// σₙ = 1 with non-sorted prefix → Case C.
	if c := ClassifyAlmostSorter(bitvec.MustFromString("10101")); c != CaseC {
		t.Errorf("10101 classified %s, want C", c)
	}
	// Sorted prefix → mirrored.
	if c := ClassifyAlmostSorter(bitvec.MustFromString("01110")); c != CaseMirrored {
		t.Errorf("01110 classified %s, want mirrored", c)
	}
}

func TestAlmostSorterOneInterchangeRemark(t *testing.T) {
	// "It can be observed that H_σ(σ) in each case requires only one
	// more interchange to get sorted."
	for n := 2; n <= 10; n++ {
		it := bitvec.NotSorted(bitvec.All(n))
		for {
			sigma, ok := it.Next()
			if !ok {
				break
			}
			out := MustAlmostSorter(sigma).ApplyVec(sigma)
			if !oneExchangeFromSorted(out) {
				t.Fatalf("n=%d σ=%s: output %s needs more than one exchange", n, sigma, out)
			}
		}
	}
}

// oneExchangeFromSorted reports whether some single comparator [a,b]
// would sort v.
func oneExchangeFromSorted(v bitvec.Vec) bool {
	if v.IsSorted() {
		return false // the lemma's output is never already sorted
	}
	for a := 0; a < v.N; a++ {
		for b := a + 1; b < v.N; b++ {
			if v.Bit(a) > v.Bit(b) {
				if sw := v.SetBit(a, v.Bit(b)).SetBit(b, 1); sw.IsSorted() {
					return true
				}
			}
		}
	}
	return false
}

func TestAlmostSorterForcesMinimality(t *testing.T) {
	// The Theorem 2.2(i) lower-bound argument, executed: for every σ in
	// the minimal test set, H_σ passes every *other* test yet is not a
	// sorter — so a test set without σ accepts a non-sorter.
	n := 7
	tests := bitvec.Collect(SorterBinaryTests(n))
	for _, sigma := range tests {
		h := MustAlmostSorter(sigma)
		if IsSorterBinary(h) {
			t.Fatalf("H_%s is a sorter", sigma)
		}
		for _, tau := range tests {
			if tau == sigma {
				continue
			}
			if !h.ApplyVec(tau).IsSorted() {
				t.Fatalf("H_%s fails another test %s", sigma, tau)
			}
		}
	}
}

func TestAlmostSorterSelectorLowerBound(t *testing.T) {
	// Lemma 2.3: for σ ∈ T⁺ₖ, H_σ (k,n)-selects every input except σ,
	// so every string of T⁺ₖ is forced into any selector test set.
	n := 7
	for k := 1; k <= n; k++ {
		it := SelectorBinaryTests(n, k)
		for {
			sigma, ok := it.Next()
			if !ok {
				break
			}
			h := MustAlmostSorter(sigma)
			if SelectsBinary(h, k, sigma) {
				t.Fatalf("k=%d: H_%s selects σ correctly; want failure", k, sigma)
			}
			all := bitvec.All(n)
			for {
				tau, ok := all.Next()
				if !ok {
					break
				}
				if tau == sigma {
					continue
				}
				if !SelectsBinary(h, k, tau) {
					t.Fatalf("k=%d σ=%s: H_σ mis-selects %s", k, sigma, tau)
				}
			}
		}
	}
}

func TestAlmostSorterSizeGrowth(t *testing.T) {
	// Construction sizes stay polynomial (the recursion depth is n and
	// each level adds O(n log n) from the embedded Batcher sorters).
	// Guard against regressions to exponential blowup.
	maxSize := 0
	it := bitvec.NotSorted(bitvec.All(12))
	for {
		v, ok := it.Next()
		if !ok {
			break
		}
		if s := MustAlmostSorter(v).Size(); s > maxSize {
			maxSize = s
		}
	}
	if maxSize > 2000 {
		t.Errorf("n=12 max network size %d; construction has blown up", maxSize)
	}
}

func TestVerifyAlmostSorterRejectsWrongNetworks(t *testing.T) {
	sigma := bitvec.MustFromString("0110")
	// A real sorter fails the contract (it sorts σ too).
	if err := VerifyAlmostSorter(network.MustParse("n=4: [1,2][3,4][1,3][2,4][2,3]"), sigma); err == nil {
		t.Error("sorter should be rejected as almost-sorter")
	}
	// The empty network fails too much.
	if err := VerifyAlmostSorter(network.New(4), sigma); err == nil {
		t.Error("empty network should be rejected")
	}
	// Line-count mismatch.
	if err := VerifyAlmostSorter(network.New(5), sigma); err == nil {
		t.Error("line mismatch should be rejected")
	}
}

func TestMirroredCaseUsesDuality(t *testing.T) {
	// For a string with sorted prefix, the construction must still
	// satisfy the contract (the duality path).
	for _, s := range []string{"0110", "00110", "011110", "0010", "11110"} {
		sigma := bitvec.MustFromString(s)
		if sigma.IsSorted() {
			t.Fatalf("bad fixture %s", s)
		}
		h := MustAlmostSorter(sigma)
		if err := VerifyAlmostSorter(h, sigma); err != nil {
			t.Errorf("σ=%s: %v", s, err)
		}
	}
}
